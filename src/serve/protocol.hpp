// Wire protocol for `graffix serve`: line-delimited JSON frames.
//
// One request per line, one response line per request, over stdin/stdout
// or a local TCP socket. The grammar is deliberately small (DESIGN.md
// §10): a flat object with an `op` discriminator; responses are
// `{"id":N,"ok":true,...}` or `{"id":N,"ok":false,"error":{...}}`.
//
// Determinism contract: a rendered query response is a pure function of
// (request, graph snapshot). Nothing timing- or scheduling-dependent —
// wall-clock latency, batch occupancy, global round counters shared with
// unrelated lanes — may appear in a query payload; such telemetry is
// only reachable through the `stats` op. This is what makes the
// batched-vs-serial and interleaving differential tests byte-exact.
//
// The JSON parser is hand-rolled (the repo takes no third-party deps):
// recursive descent with a hard nesting cap, returning a typed error for
// every malformed frame instead of asserting — a resident daemon parses
// hostile bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace graffix::serve {

/// Hard cap on one request frame (bytes, newline included) unless the
/// server overrides it. Oversized frames are consumed and answered with
/// `frame_too_large`, never buffered in full.
inline constexpr std::size_t kDefaultMaxFrameBytes = std::size_t{1} << 20;

/// Maximum nodes a query may ask to echo values for.
inline constexpr std::size_t kMaxEchoNodes = 64;

/// Typed error vocabulary. Every fault path in the daemon maps to exactly
/// one of these; `error_code_name` is the wire spelling.
enum class ErrorCode {
  ParseError,       // frame is not valid JSON / not an object
  BadRequest,       // JSON fine, fields missing or mistyped
  UnknownOp,        // unrecognized "op"
  UnknownAlgorithm, // unrecognized "alg"
  UnknownVariant,   // "variant" names no published snapshot
  BadSource,        // source/nodes out of range or a hole slot
  DeadlineExpired,  // request outlived its deadline_ms in queue or flight
  Overloaded,       // bounded queue full — shed-load response
  FrameTooLarge,    // line exceeded the frame cap
  EngineBusy,       // would require a nested sweep (try_sweep refusal)
  ShuttingDown,     // daemon is draining; no new work accepted
  Internal,         // validated request still failed (bug guard)
};

[[nodiscard]] const char* error_code_name(ErrorCode code);

enum class Op { Query, Stats, Transform, Ping, Shutdown };

enum class QueryAlg { Sssp, Bfs, Pagerank, Bc };

[[nodiscard]] const char* query_alg_name(QueryAlg alg);

/// A parsed request frame. String fields carry defaults so handlers never
/// branch on presence except where semantics require it.
struct Request {
  std::uint64_t id = 0;
  Op op = Op::Ping;

  // op == Query
  QueryAlg alg = QueryAlg::Sssp;
  bool has_source = false;
  NodeId source = 0;
  std::vector<NodeId> sources;   // BC multi-source override
  std::vector<NodeId> nodes;     // echo attribute values at these slots
  std::string variant = "base";  // snapshot to query
  double deadline_ms = 0.0;      // 0 = no deadline
  std::uint64_t seed = 42;       // BC sampling seed

  // op == Transform
  std::string name;              // target variant (default: overwrite source)
  std::string kind;              // "none" | "sparsify" | "divergence"
  double drop_fraction = 0.1;    // sparsify knob
  double threshold = 0.3;        // divergence degree-sim threshold
};

struct ParseResult {
  bool ok = false;
  Request request;
  ErrorCode code = ErrorCode::ParseError;
  std::string message;
};

/// Parses one frame (without trailing newline). On failure, `request.id`
/// still carries the frame's id when the parser could recover one, so
/// the error response can be correlated by the client.
[[nodiscard]] ParseResult parse_request(std::string_view line);

// ---- Response rendering -------------------------------------------------

/// Append-only JSON object writer. Keys are emitted in call order, so a
/// response's byte layout is fixed by its render function — the property
/// the differential tests compare on.
class JsonWriter {
 public:
  JsonWriter() : out_("{") {}
  void field_u64(std::string_view key, std::uint64_t v);
  void field_double(std::string_view key, double v);
  void field_bool(std::string_view key, bool v);
  void field_string(std::string_view key, std::string_view v);
  /// Opens `"key":[` — follow with raw_item calls, then close_array().
  void open_array(std::string_view key);
  void raw_item(std::string_view item);
  void close_array();
  /// Opens `"key":{` — nested fields follow, then close_object().
  void open_object(std::string_view key);
  void close_object();
  [[nodiscard]] std::string finish();

 private:
  void comma();
  void key(std::string_view k);
  std::string out_;
  bool first_ = true;
  std::vector<bool> first_stack_;
};

/// Shortest round-trippable decimal for v (printf %.17g); "inf" for
/// unreachable distances.
[[nodiscard]] std::string format_double(double v);

/// Escapes a string for embedding in a JSON literal (quotes not added).
[[nodiscard]] std::string json_escape(std::string_view s);

[[nodiscard]] std::string render_error(std::uint64_t id, ErrorCode code,
                                       std::string_view message);

// ---- Digests ------------------------------------------------------------

/// FNV-1a 64 over raw bytes; query responses carry a digest of the full
/// per-lane attribute vector so tests compare whole answers without
/// shipping |V| values per frame.
[[nodiscard]] std::uint64_t fnv1a64(const void* data, std::size_t len);
[[nodiscard]] std::uint64_t fnv1a64_append(std::uint64_t h, const void* data,
                                           std::size_t len);
[[nodiscard]] std::string hex64(std::uint64_t v);

// ---- Minimal JSON value model (requests only) ---------------------------

struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  /// First value for `key`, or nullptr. Linear scan — request objects
  /// have a handful of keys.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

/// Parses `text` into `out`. Returns false with a message on any
/// malformation (trailing garbage included). Nesting capped at depth 16.
[[nodiscard]] bool parse_json(std::string_view text, JsonValue& out,
                              std::string& error);

}  // namespace graffix::serve
