#include "serve/protocol.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace graffix::serve {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::ParseError: return "parse_error";
    case ErrorCode::BadRequest: return "bad_request";
    case ErrorCode::UnknownOp: return "unknown_op";
    case ErrorCode::UnknownAlgorithm: return "unknown_algorithm";
    case ErrorCode::UnknownVariant: return "unknown_variant";
    case ErrorCode::BadSource: return "bad_source";
    case ErrorCode::DeadlineExpired: return "deadline_expired";
    case ErrorCode::Overloaded: return "overloaded";
    case ErrorCode::FrameTooLarge: return "frame_too_large";
    case ErrorCode::EngineBusy: return "engine_busy";
    case ErrorCode::ShuttingDown: return "shutting_down";
    case ErrorCode::Internal: return "internal";
  }
  return "internal";
}

const char* query_alg_name(QueryAlg alg) {
  switch (alg) {
    case QueryAlg::Sssp: return "sssp";
    case QueryAlg::Bfs: return "bfs";
    case QueryAlg::Pagerank: return "pagerank";
    case QueryAlg::Bc: return "bc";
  }
  return "sssp";
}

// ---- JSON parser --------------------------------------------------------

namespace {

constexpr int kMaxDepth = 16;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  [[nodiscard]] bool eof() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skip_ws() {
    while (!eof()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\r' && c != '\n') break;
      ++pos;
    }
  }

  bool fail(const char* msg) {
    if (error.empty()) {
      error = msg;
      error += " at byte ";
      char buf[24];
      std::snprintf(buf, sizeof buf, "%zu", pos);
      error += buf;
    }
    return false;
  }

  bool consume(char want, const char* what) {
    skip_ws();
    if (eof() || text[pos] != want) return fail(what);
    ++pos;
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (eof()) return fail("unexpected end of input");
    const char c = text[pos];
    switch (c) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out.type = JsonValue::Type::String;
        return parse_string(out.string);
      case 't':
      case 'f': return parse_bool(out);
      case 'n': return parse_null(out);
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.type = JsonValue::Type::Object;
    ++pos;  // '{'
    skip_ws();
    if (!eof() && text[pos] == '}') { ++pos; return true; }
    while (true) {
      skip_ws();
      if (eof() || text[pos] != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':', "expected ':'")) return false;
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (text[pos] == ',') { ++pos; continue; }
      if (text[pos] == '}') { ++pos; return true; }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    out.type = JsonValue::Type::Array;
    ++pos;  // '['
    skip_ws();
    if (!eof() && text[pos] == ']') { ++pos; return true; }
    while (true) {
      JsonValue item;
      if (!parse_value(item, depth + 1)) return false;
      out.array.push_back(std::move(item));
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (text[pos] == ',') { ++pos; continue; }
      if (text[pos] == ']') { ++pos; return true; }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    ++pos;  // opening quote
    out.clear();
    while (true) {
      if (eof()) return fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (eof()) return fail("unterminated escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            // Requests are ASCII in practice; encode BMP code points as
            // UTF-8, reject surrogates (no pair handling).
            if (code >= 0xD800 && code <= 0xDFFF) return fail("surrogate escape");
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return fail("bad escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) return fail("control byte in string");
      out += c;
    }
  }

  bool parse_bool(JsonValue& out) {
    if (text.substr(pos, 4) == "true") {
      out.type = JsonValue::Type::Bool;
      out.boolean = true;
      pos += 4;
      return true;
    }
    if (text.substr(pos, 5) == "false") {
      out.type = JsonValue::Type::Bool;
      out.boolean = false;
      pos += 5;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_null(JsonValue& out) {
    if (text.substr(pos, 4) == "null") {
      out.type = JsonValue::Type::Null;
      pos += 4;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos;
    if (!eof() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    bool digits = false;
    while (!eof()) {
      const char c = text[pos];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        digits = digits || (c >= '0' && c <= '9');
        ++pos;
        continue;
      }
      break;
    }
    if (!digits) return fail("expected value");
    // strtod needs a terminated buffer; numbers are short.
    char buf[64];
    const std::size_t len = pos - start;
    if (len >= sizeof buf) return fail("number too long");
    std::memcpy(buf, text.data() + start, len);
    buf[len] = '\0';
    char* end = nullptr;
    out.number = std::strtod(buf, &end);
    if (end != buf + len) return fail("malformed number");
    if (!std::isfinite(out.number)) return fail("non-finite number");
    out.type = JsonValue::Type::Number;
    return true;
  }
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view k) const {
  for (const auto& [key, value] : object) {
    if (key == k) return &value;
  }
  return nullptr;
}

bool parse_json(std::string_view text, JsonValue& out, std::string& error) {
  Parser p{text, 0, {}};
  if (!p.parse_value(out, 0)) {
    error = p.error;
    return false;
  }
  p.skip_ws();
  if (!p.eof()) {
    p.fail("trailing bytes after value");
    error = p.error;
    return false;
  }
  return true;
}

// ---- Request decoding ---------------------------------------------------

namespace {

/// Reads a nonnegative integer field that must fit `max`. Returns false
/// (with a message) on type or range violations.
bool read_uint(const JsonValue& v, std::uint64_t max, std::uint64_t& out,
               const char* what, std::string& message) {
  if (v.type != JsonValue::Type::Number || v.number < 0.0 ||
      v.number != std::floor(v.number) ||
      v.number > static_cast<double>(max)) {
    message = std::string(what) + " must be an integer in [0, max]";
    return false;
  }
  out = static_cast<std::uint64_t>(v.number);
  return true;
}

ParseResult error_result(std::uint64_t id, ErrorCode code, std::string message) {
  ParseResult r;
  r.ok = false;
  r.request.id = id;
  r.code = code;
  r.message = std::move(message);
  return r;
}

}  // namespace

ParseResult parse_request(std::string_view line) {
  JsonValue root;
  std::string error;
  if (!parse_json(line, root, error)) {
    return error_result(0, ErrorCode::ParseError, error);
  }
  if (root.type != JsonValue::Type::Object) {
    return error_result(0, ErrorCode::ParseError, "frame must be a JSON object");
  }

  std::uint64_t id = 0;
  if (const JsonValue* v = root.find("id")) {
    std::string msg;
    if (!read_uint(*v, std::uint64_t{1} << 53, id, "id", msg)) {
      return error_result(0, ErrorCode::BadRequest, msg);
    }
  }

  const JsonValue* opv = root.find("op");
  if (opv == nullptr || opv->type != JsonValue::Type::String) {
    return error_result(id, ErrorCode::BadRequest, "missing string field 'op'");
  }

  ParseResult r;
  r.ok = true;
  r.request.id = id;
  Request& req = r.request;

  const std::string& op = opv->string;
  if (op == "ping") { req.op = Op::Ping; return r; }
  if (op == "stats") { req.op = Op::Stats; return r; }
  if (op == "shutdown") { req.op = Op::Shutdown; return r; }

  if (op == "query") {
    req.op = Op::Query;
    const JsonValue* algv = root.find("alg");
    if (algv == nullptr || algv->type != JsonValue::Type::String) {
      return error_result(id, ErrorCode::BadRequest, "query needs string 'alg'");
    }
    if (algv->string == "sssp") req.alg = QueryAlg::Sssp;
    else if (algv->string == "bfs") req.alg = QueryAlg::Bfs;
    else if (algv->string == "pagerank" || algv->string == "pr") req.alg = QueryAlg::Pagerank;
    else if (algv->string == "bc") req.alg = QueryAlg::Bc;
    else return error_result(id, ErrorCode::UnknownAlgorithm,
                             "unknown algorithm '" + algv->string + "'");

    std::string msg;
    if (const JsonValue* v = root.find("source")) {
      std::uint64_t s = 0;
      if (!read_uint(*v, kInvalidNode - 1, s, "source", msg)) {
        return error_result(id, ErrorCode::BadSource, msg);
      }
      req.source = static_cast<NodeId>(s);
      req.has_source = true;
    }
    if (const JsonValue* v = root.find("sources")) {
      if (v->type != JsonValue::Type::Array || v->array.size() > 256) {
        return error_result(id, ErrorCode::BadRequest,
                            "'sources' must be an array of at most 256 ids");
      }
      for (const JsonValue& item : v->array) {
        std::uint64_t s = 0;
        if (!read_uint(item, kInvalidNode - 1, s, "sources[]", msg)) {
          return error_result(id, ErrorCode::BadSource, msg);
        }
        req.sources.push_back(static_cast<NodeId>(s));
      }
    }
    if (const JsonValue* v = root.find("nodes")) {
      if (v->type != JsonValue::Type::Array || v->array.size() > kMaxEchoNodes) {
        return error_result(id, ErrorCode::BadRequest,
                            "'nodes' must be an array of at most 64 ids");
      }
      for (const JsonValue& item : v->array) {
        std::uint64_t s = 0;
        if (!read_uint(item, kInvalidNode - 1, s, "nodes[]", msg)) {
          return error_result(id, ErrorCode::BadSource, msg);
        }
        req.nodes.push_back(static_cast<NodeId>(s));
      }
    }
    if (const JsonValue* v = root.find("variant")) {
      if (v->type != JsonValue::Type::String || v->string.empty()) {
        return error_result(id, ErrorCode::BadRequest, "'variant' must be a string");
      }
      req.variant = v->string;
    }
    if (const JsonValue* v = root.find("deadline_ms")) {
      if (v->type != JsonValue::Type::Number || v->number < 0.0) {
        return error_result(id, ErrorCode::BadRequest,
                            "'deadline_ms' must be a nonnegative number");
      }
      req.deadline_ms = v->number;
    }
    if (const JsonValue* v = root.find("seed")) {
      std::uint64_t s = 0;
      if (!read_uint(*v, std::uint64_t{1} << 53, s, "seed", msg)) {
        return error_result(id, ErrorCode::BadRequest, msg);
      }
      req.seed = s;
    }
    const bool needs_source =
        req.alg == QueryAlg::Sssp || req.alg == QueryAlg::Bfs;
    if (needs_source && !req.has_source) {
      return error_result(id, ErrorCode::BadRequest,
                          "sssp/bfs queries need a 'source'");
    }
    return r;
  }

  if (op == "transform") {
    req.op = Op::Transform;
    const JsonValue* kindv = root.find("kind");
    if (kindv == nullptr || kindv->type != JsonValue::Type::String) {
      return error_result(id, ErrorCode::BadRequest, "transform needs string 'kind'");
    }
    req.kind = kindv->string;
    if (req.kind != "none" && req.kind != "sparsify" && req.kind != "divergence") {
      // Renumbering transforms (coalescing, latency clustering) change
      // slot ids, so answers on the new snapshot would not be
      // addressable by client-held ids — rejected by policy.
      return error_result(id, ErrorCode::BadRequest,
                          "transform kind must be none|sparsify|divergence "
                          "(renumbering kinds are not servable)");
    }
    if (const JsonValue* v = root.find("variant")) {
      if (v->type != JsonValue::Type::String || v->string.empty()) {
        return error_result(id, ErrorCode::BadRequest, "'variant' must be a string");
      }
      req.variant = v->string;
    }
    if (const JsonValue* v = root.find("name")) {
      if (v->type != JsonValue::Type::String || v->string.empty()) {
        return error_result(id, ErrorCode::BadRequest, "'name' must be a string");
      }
      req.name = v->string;
    }
    if (req.name.empty()) req.name = req.variant;
    std::string msg;
    if (const JsonValue* v = root.find("seed")) {
      std::uint64_t s = 0;
      if (!read_uint(*v, std::uint64_t{1} << 53, s, "seed", msg)) {
        return error_result(id, ErrorCode::BadRequest, msg);
      }
      req.seed = s;
    }
    if (const JsonValue* v = root.find("drop_fraction")) {
      if (v->type != JsonValue::Type::Number || v->number < 0.0 || v->number >= 1.0) {
        return error_result(id, ErrorCode::BadRequest,
                            "'drop_fraction' must lie in [0, 1)");
      }
      req.drop_fraction = v->number;
    }
    if (const JsonValue* v = root.find("threshold")) {
      if (v->type != JsonValue::Type::Number || v->number <= 0.0 || v->number > 1.0) {
        return error_result(id, ErrorCode::BadRequest,
                            "'threshold' must lie in (0, 1]");
      }
      req.threshold = v->number;
    }
    return r;
  }

  return error_result(id, ErrorCode::UnknownOp, "unknown op '" + op + "'");
}

// ---- Rendering ----------------------------------------------------------

void JsonWriter::comma() {
  if (first_) first_ = false;
  else out_ += ',';
}

void JsonWriter::key(std::string_view k) {
  comma();
  out_ += '"';
  out_ += k;
  out_ += "\":";
}

void JsonWriter::field_u64(std::string_view k, std::uint64_t v) {
  key(k);
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
}

void JsonWriter::field_double(std::string_view k, double v) {
  key(k);
  out_ += format_double(v);
}

void JsonWriter::field_bool(std::string_view k, bool v) {
  key(k);
  out_ += v ? "true" : "false";
}

void JsonWriter::field_string(std::string_view k, std::string_view v) {
  key(k);
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
}

void JsonWriter::open_array(std::string_view k) {
  key(k);
  out_ += '[';
  first_stack_.push_back(first_);
  first_ = true;
}

void JsonWriter::raw_item(std::string_view item) {
  comma();
  out_ += item;
}

void JsonWriter::close_array() {
  out_ += ']';
  first_ = false;
  first_stack_.pop_back();
}

void JsonWriter::open_object(std::string_view k) {
  key(k);
  out_ += '{';
  first_stack_.push_back(first_);
  first_ = true;
}

void JsonWriter::close_object() {
  out_ += '}';
  first_ = false;
  first_stack_.pop_back();
}

std::string JsonWriter::finish() {
  out_ += '}';
  return std::move(out_);
}

std::string format_double(double v) {
  if (std::isinf(v)) return v > 0 ? "\"inf\"" : "\"-inf\"";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string render_error(std::uint64_t id, ErrorCode code,
                         std::string_view message) {
  JsonWriter w;
  w.field_u64("id", id);
  w.field_bool("ok", false);
  w.open_object("error");
  w.field_string("code", error_code_name(code));
  w.field_string("message", message);
  w.close_object();
  return w.finish();
}

std::uint64_t fnv1a64(const void* data, std::size_t len) {
  return fnv1a64_append(0xcbf29ce484222325ULL, data, len);
}

std::uint64_t fnv1a64_append(std::uint64_t h, const void* data,
                             std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace graffix::serve
