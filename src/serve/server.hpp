// The `graffix serve` daemon core.
//
// Load + transform once, then serve many concurrent queries against the
// resident graph (ROADMAP "graph-as-a-service"). Architecture
// (DESIGN.md §10):
//
//   sessions (reader threads)  ->  bounded job queue  ->  dispatcher
//                                                          |  waves
//                                                 batcher (form_units)
//                                                          |
//                                        parallel_for_each_dynamic over
//                                        units on the persistent pool
//
// Control ops (stats, transform, ping, shutdown) execute inline on the
// reader thread — publishing a new copy-on-write snapshot is therefore
// genuinely concurrent with queries draining on the superseded one,
// which keeps serving while it has readers and is freed (shared_ptr)
// when the last drains. Query ops are enqueued with their snapshot
// resolved at admission, so a transform never retroactively changes an
// admitted query's input.
//
// Graceful degradation, never a crash: every fault (malformed frame,
// oversized payload, unknown variant, bad source, queue overflow,
// deadline expiry, nested-sweep attempt, draining) maps to a typed
// error response and the daemon keeps serving.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/csr.hpp"
#include "serve/batcher.hpp"
#include "serve/protocol.hpp"
#include "serve/session.hpp"
#include "util/timer.hpp"

namespace graffix::serve {

struct ServerConfig {
  /// Admission bound: queries beyond this depth get shed-load
  /// (`overloaded`) responses instead of unbounded memory growth.
  std::size_t queue_capacity = 1024;
  std::uint32_t max_batch_lanes = kMaxBatchLanes;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Applied to queries that carry no deadline_ms (0 = none).
  double default_deadline_ms = 0.0;
};

/// Point-in-time metrics snapshot (also rendered by the `stats` op).
struct ServerMetrics {
  std::uint64_t queries_ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t shed = 0;       // overload rejections (subset of errors)
  std::uint64_t control_ops = 0;
  std::uint64_t batches = 0;        // multi-lane units executed
  std::uint64_t batched_lanes = 0;  // lanes across those units
  std::uint64_t units = 0;          // all units (batched + singleton)
  std::uint64_t responses_dropped = 0;  // peer gone before the answer
  std::size_t queue_depth = 0;
  std::size_t queue_peak = 0;
  std::size_t snapshots = 0;       // live published variants
  std::size_t resident_bytes = 0;  // sum over live variants
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  std::map<std::string, std::uint64_t> errors_by_code;
};

class Server {
 public:
  /// Publishes `base_graph` as variant "base", version 1.
  explicit Server(Csr base_graph, ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns the dispatcher; idempotent.
  void start();

  /// Graceful shutdown: stop admitting, drain the queue (queued queries
  /// still get answers), then join every thread. Idempotent.
  void stop();

  /// Attaches a client over raw fds (ownership transferred); the reader
  /// runs on an internal thread joined by stop().
  std::shared_ptr<Session> serve_fds(int in_fd, int out_fd);

  /// Serves stdin/stdout on the calling thread until EOF or shutdown.
  void run_stdio();

  /// Listens on 127.0.0.1 (port 0 = ephemeral) and accepts clients on an
  /// internal thread. Returns the bound port, 0 on failure.
  std::uint16_t listen_tcp(std::uint16_t port);

  [[nodiscard]] ServerMetrics metrics() const;

  /// True once a `shutdown` request was accepted (the CLI exits its
  /// stdio loop on this).
  [[nodiscard]] bool shutdown_requested() const;

  /// Final stats line, rendered for the shutdown report.
  [[nodiscard]] std::string stats_json(std::uint64_t id) const;

  // Session upcalls.
  void handle_frame(const std::shared_ptr<Session>& session,
                    const std::string& line);
  void note_frame_too_long(const std::shared_ptr<Session>& session);

  // Test hooks ------------------------------------------------------------

  /// Parks the dispatcher so tests can fill the queue (overflow) or age
  /// requests past their deadlines deterministically.
  void hold_dispatch_for_test(bool hold);

  /// Live snapshot for a variant (nullptr when unknown). Tests keep
  /// weak_ptrs to assert the COW free-on-last-reader lifecycle.
  [[nodiscard]] std::shared_ptr<const GraphSnapshot> snapshot_for_test(
      const std::string& variant) const;

 private:
  struct Job {
    Request req;
    std::shared_ptr<const GraphSnapshot> snap;
    std::shared_ptr<Session> session;
    WallTimer age;        // started at admission
    double deadline_ms = 0.0;  // 0 = none
  };

  void dispatch_loop();
  void process_wave(std::vector<Job>& wave);
  void run_query_unit(const std::vector<Job*>& unit);
  void run_scalar_query(Job& job);  // pagerank / bc
  void handle_transform(const std::shared_ptr<Session>& session,
                        const Request& req);
  void handle_query(const std::shared_ptr<Session>& session, Request&& req);
  void respond_error(const std::shared_ptr<Session>& session,
                     std::uint64_t id, ErrorCode code,
                     std::string_view message);
  void respond_ok(Job& job, const std::string& line);
  [[nodiscard]] std::shared_ptr<const GraphSnapshot> find_snapshot(
      const std::string& variant) const;

  ServerConfig config_;

  // Snapshot registry (ordered map: deterministic stats iteration and no
  // unordered range-for, per DESIGN.md §7 / lint R2).
  mutable std::mutex registry_mutex_;
  std::map<std::string, std::shared_ptr<const GraphSnapshot>> registry_;
  std::uint64_t next_version_ = 1;

  // Bounded job queue.
  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::vector<Job> queue_;
  bool hold_ = false;
  bool draining_ = false;  // no new admissions
  bool stopping_ = false;  // dispatcher exits once drained
  bool shutdown_requested_ = false;

  std::thread dispatcher_;
  bool started_ = false;
  bool stopped_ = false;
  std::mutex lifecycle_mutex_;

  // Sessions + their reader threads.
  std::mutex sessions_mutex_;
  std::vector<std::shared_ptr<Session>> sessions_;
  std::vector<std::thread> readers_;

  // TCP acceptor.
  int listen_fd_ = -1;
  std::thread acceptor_;

  // Metrics.
  mutable std::mutex metrics_mutex_;
  ServerMetrics counters_;  // latency percentiles filled on read
  std::vector<double> latencies_ms_;
};

}  // namespace graffix::serve
