#include "serve/session.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace graffix::serve {

FdTransport::FdTransport(int in_fd, int out_fd, std::size_t max_frame_bytes)
    : in_fd_(in_fd), out_fd_(out_fd), max_frame_(max_frame_bytes) {}

FdTransport::~FdTransport() {
  if (in_fd_ >= 0) ::close(in_fd_);
  if (out_fd_ >= 0 && out_fd_ != in_fd_) ::close(out_fd_);
}

FdTransport::ReadStatus FdTransport::read_line(std::string& out) {
  bool discarding = false;
  char chunk[4096];
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      if (discarding || nl > max_frame_) {
        buffer_.erase(0, nl + 1);
        return ReadStatus::TooLong;
      }
      out.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return ReadStatus::Line;
    }
    if (!discarding && buffer_.size() > max_frame_) {
      // Overlong frame: stop buffering it, just scan for its newline.
      discarding = true;
      buffer_.clear();
    }
    const ssize_t n = ::read(in_fd_, chunk, sizeof chunk);
    if (n > 0) {
      if (discarding) {
        const char* p = static_cast<const char*>(
            std::memchr(chunk, '\n', static_cast<std::size_t>(n)));
        if (p != nullptr) {
          buffer_.assign(p + 1, static_cast<std::size_t>(chunk + n - (p + 1)));
          return ReadStatus::TooLong;
        }
        continue;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // EOF or hard error: a trailing unterminated fragment is dropped —
    // the peer hung up mid-frame, there is nobody to answer.
    return ReadStatus::Eof;
  }
}

bool FdTransport::write_line(const std::string& line) {
  std::scoped_lock lock(write_mutex_);
  if (write_failed_) return false;
  // One contiguous buffer per frame so concurrent responders cannot
  // interleave bytes even if the kernel splits the write.
  std::string frame;
  frame.reserve(line.size() + 1);
  frame = line;
  frame += '\n';
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(out_fd_, frame.data() + off, frame.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    write_failed_ = true;  // EPIPE et al: peer is gone
    return false;
  }
  return true;
}

void FdTransport::interrupt() {
  // Sockets: unblocks a parked read and fails future writes. ENOTSOCK
  // (pipes, stdio) is fine — those readers unblock at peer close/EOF.
  ::shutdown(in_fd_, SHUT_RDWR);
  if (out_fd_ != in_fd_) ::shutdown(out_fd_, SHUT_RDWR);
}

Session::Session(Server& server, int in_fd, int out_fd,
                 std::size_t max_frame_bytes)
    : server_(server), transport_(in_fd, out_fd, max_frame_bytes) {}

void Session::run_reader(bool stop_on_shutdown) {
  std::string line;
  while (true) {
    const FdTransport::ReadStatus status = transport_.read_line(line);
    if (status == FdTransport::ReadStatus::Eof) break;
    if (status == FdTransport::ReadStatus::TooLong) {
      server_.note_frame_too_long(shared_from_this());
      continue;
    }
    if (!line.empty()) {  // blank keepalive lines are legal
      server_.handle_frame(shared_from_this(), line);
    }
    if (stop_on_shutdown && server_.shutdown_requested()) break;
  }
  // Read-side EOF does NOT poison the session: a stdio client may close
  // stdin after its last request and still collect responses on stdout
  // (the CI smoke workload does exactly this). Only a failed write marks
  // the peer gone.
}

bool Session::send_line(const std::string& line) {
  if (peer_gone_.load(std::memory_order_relaxed)) return false;
  if (!transport_.write_line(line)) {
    peer_gone_.store(true, std::memory_order_relaxed);
    return false;
  }
  return true;
}

}  // namespace graffix::serve
