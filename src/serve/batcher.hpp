// Query batching for `graffix serve`.
//
// The engine's per-lane source residency (PR 2) means K single-source
// SSSP/BFS queries against the same snapshot can share one sweep
// schedule: each relaxation round is one gated sweep whose functor
// relaxes all K lanes' attribute planes, and a vertex is gated in when
// ANY lane still has a finite value there. The batcher groups compatible
// queries (same snapshot, same algorithm) into such multi-source units,
// capped at kMaxBatchLanes.
//
// Byte-identity with per-query serial execution (the differential test's
// contract) holds because each lane's relaxation is an independent
// monotone min-plus fixpoint: lanes only ever *improve* their own plane
// under strict `<`, so the extra functor invocations a co-batched lane
// induces (vertices gated in by OTHER lanes) are no-ops for this lane,
// and the fixpoint plus the per-lane last-changed round are pure
// functions of (graph, source). Response payloads carry only per-lane
// data — never the shared round count or timing — so batched and serial
// renderings are byte-equal.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "serve/protocol.hpp"
#include "sim/engine.hpp"

namespace graffix::serve {

/// Lanes one multi-source unit may carry. 32 keeps the K-wide attribute
/// planes cache-resident for the scale-16 serving preset.
inline constexpr std::uint32_t kMaxBatchLanes = 32;

/// One published copy-on-write graph variant. Immutable after
/// construction; queries hold it by shared_ptr, so a superseded snapshot
/// is freed exactly when its last in-flight reader drains.
struct GraphSnapshot {
  std::string variant;
  std::uint64_t version = 0;
  Csr graph;
  /// Divergence-transform processing order; empty = slot order.
  std::vector<NodeId> warp_order;
  /// Per-vertex sweep items in processing order, built once at publish.
  std::vector<sim::WorkItem> items;

  /// Bytes this snapshot keeps resident (graph + order + items).
  [[nodiscard]] std::size_t resident_bytes() const;
};

[[nodiscard]] std::shared_ptr<const GraphSnapshot> make_snapshot(
    std::string variant, std::uint64_t version, Csr graph,
    std::vector<NodeId> warp_order);

/// Groups a wave of parsed requests into execution units, preserving
/// arrival order of unit leaders. `snapshot_of(i)` must return a stable
/// grouping key (the snapshot pointer) for wave index i.
///
/// Batchable: op Query with alg sssp/bfs — grouped by (snapshot, alg)
/// up to `max_lanes` lanes per unit. Everything else is a singleton.
[[nodiscard]] std::vector<std::vector<std::size_t>> form_units(
    std::span<const Request* const> wave,
    const std::function<const void*(std::size_t)>& snapshot_of,
    std::uint32_t max_lanes);

/// Per-lane result of a multi-source run. `values` aligns with the
/// lane's echo nodes; unreached vertices render as "inf" (SSSP) or -1
/// (BFS level).
struct LaneOutcome {
  bool expired = false;        // deadline fired mid-run; lane frozen
  std::uint64_t digest = 0;    // FNV-1a over the lane's full plane
  NodeId reached = 0;          // vertices with a finite value
  std::uint32_t rounds = 0;    // last round this lane improved
  std::vector<double> values;  // echo values, lane-local
};

struct MultiSourceOutcome {
  bool engine_busy = false;    // try_sweep refused (nested sweep)
  std::vector<LaneOutcome> lanes;
};

struct LaneSpec {
  NodeId source = 0;
  std::span<const NodeId> echo_nodes;
  /// Polled at round boundaries; true freezes the lane and marks it
  /// expired. Null = no deadline.
  std::function<bool()> expired;
};

/// Runs a K-lane SSSP/BFS fixpoint on `engine` (which must be built over
/// `snap.graph`). Sources must be in range and non-hole — validated by
/// the caller. Returns engine_busy without touching anything when the
/// engine is mid-sweep.
[[nodiscard]] MultiSourceOutcome run_multi_source_on(
    sim::Engine& engine, const GraphSnapshot& snap, QueryAlg alg,
    std::span<const LaneSpec> lanes);

/// Convenience wrapper: builds a fresh engine over the snapshot.
[[nodiscard]] MultiSourceOutcome run_multi_source(const GraphSnapshot& snap,
                                                  QueryAlg alg,
                                                  std::span<const LaneSpec> lanes);

}  // namespace graffix::serve
