// One connected client of the serve daemon.
//
// A Session wraps a line-framed transport over a pair of file
// descriptors (a socketpair end, a TCP connection, or stdin/stdout) and
// a reader loop that hands each frame to the Server. Responses may be
// written by any worker thread — the transport serializes writes per
// line — and a failed write (peer disconnected mid-request) poisons the
// session instead of raising SIGPIPE or tearing the daemon down.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>

namespace graffix::serve {

class Server;

/// Buffered line IO over raw fds with the frame cap enforced during the
/// read: an overlong line is drained to its newline and reported as
/// TooLong without ever being buffered whole.
class FdTransport {
 public:
  /// Takes ownership of both fds (closed on destruction; in == out is
  /// fine for sockets).
  FdTransport(int in_fd, int out_fd, std::size_t max_frame_bytes);
  ~FdTransport();
  FdTransport(const FdTransport&) = delete;
  FdTransport& operator=(const FdTransport&) = delete;

  enum class ReadStatus { Line, TooLong, Eof };

  /// Blocks for the next newline-terminated frame (newline stripped).
  ReadStatus read_line(std::string& out);

  /// Writes line + '\n' atomically w.r.t. other writers. False once the
  /// peer is gone.
  bool write_line(const std::string& line);

  /// Unblocks a parked reader where the fd supports it (socket
  /// shutdown); a no-op for pipes, whose readers unblock at peer close.
  void interrupt();

 private:
  int in_fd_;
  int out_fd_;
  std::size_t max_frame_;
  std::string buffer_;  // read-ahead; never exceeds max_frame_ + one chunk
  std::mutex write_mutex_;
  bool write_failed_ = false;
};

class Session : public std::enable_shared_from_this<Session> {
 public:
  Session(Server& server, int in_fd, int out_fd, std::size_t max_frame_bytes);

  /// Reads frames until EOF/interrupt, dispatching each to the server.
  /// Runs on a dedicated thread (serve_fds/TCP) or the caller
  /// (run_stdio). With stop_on_shutdown the loop also exits after a
  /// frame leaves the server in shutdown-requested state — the stdio
  /// reader IS the handler thread, so the check is race-free there.
  void run_reader(bool stop_on_shutdown = false);

  /// False when the peer has disconnected (response dropped).
  bool send_line(const std::string& line);

  void interrupt() { transport_.interrupt(); }
  [[nodiscard]] bool peer_gone() const {
    return peer_gone_.load(std::memory_order_relaxed);
  }

 private:
  Server& server_;
  FdTransport transport_;
  std::atomic<bool> peer_gone_{false};
};

}  // namespace graffix::serve
