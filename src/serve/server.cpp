#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/runners.hpp"
#include "serve/protocol.hpp"
#include "transform/divergence.hpp"
#include "transform/sparsify.hpp"
#include "util/parallel.hpp"

namespace graffix::serve {

namespace {

/// Percentile over a scratch copy (nearest-rank). 0 when empty.
double percentile(std::vector<double>& scratch, double q) {
  if (scratch.empty()) return 0.0;
  std::size_t rank = static_cast<std::size_t>(q * static_cast<double>(scratch.size()));
  if (rank >= scratch.size()) rank = scratch.size() - 1;
  std::nth_element(scratch.begin(),
                   scratch.begin() + static_cast<std::ptrdiff_t>(rank),
                   scratch.end());
  return scratch[rank];
}

}  // namespace

Server::Server(Csr base_graph, ServerConfig config) : config_(std::move(config)) {
  if (config_.max_batch_lanes == 0) config_.max_batch_lanes = 1;
  if (config_.max_batch_lanes > kMaxBatchLanes) {
    config_.max_batch_lanes = kMaxBatchLanes;
  }
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  registry_["base"] =
      make_snapshot("base", next_version_, std::move(base_graph), {});
}

Server::~Server() { stop(); }

void Server::start() {
  std::scoped_lock lk(lifecycle_mutex_);
  if (started_) return;
  started_ = true;
  // A client that disconnects mid-request must surface as a failed
  // write, not a process-killing SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

void Server::stop() {
  {
    std::scoped_lock lk(lifecycle_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  {
    std::scoped_lock lk(queue_mutex_);
    draining_ = true;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  // The dispatcher drains everything already admitted — queued queries
  // still get their answers — then exits.
  if (dispatcher_.joinable()) dispatcher_.join();
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> readers;
  {
    std::scoped_lock lk(sessions_mutex_);
    for (const auto& s : sessions_) s->interrupt();
    readers.swap(readers_);
  }
  for (std::thread& t : readers) {
    if (t.joinable()) t.join();
  }
}

std::shared_ptr<Session> Server::serve_fds(int in_fd, int out_fd) {
  auto session =
      std::make_shared<Session>(*this, in_fd, out_fd, config_.max_frame_bytes);
  std::scoped_lock lk(sessions_mutex_);
  sessions_.push_back(session);
  readers_.emplace_back([session] { session->run_reader(); });
  return session;
}

void Server::run_stdio() {
  auto session = std::make_shared<Session>(*this, ::dup(0), ::dup(1),
                                           config_.max_frame_bytes);
  {
    std::scoped_lock lk(sessions_mutex_);
    sessions_.push_back(session);
  }
  session->run_reader(/*stop_on_shutdown=*/true);
}

std::uint16_t Server::listen_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return 0;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return 0;
  }
  listen_fd_ = fd;
  acceptor_ = std::thread([this] {
    while (true) {
      const int client = ::accept(listen_fd_, nullptr, nullptr);
      if (client < 0) {
        if (errno == EINTR) continue;
        return;  // listen fd shut down: stop()
      }
      serve_fds(client, client);
    }
  });
  return ntohs(addr.sin_port);
}

bool Server::shutdown_requested() const {
  std::scoped_lock lk(queue_mutex_);
  return shutdown_requested_;
}

void Server::hold_dispatch_for_test(bool hold) {
  {
    std::scoped_lock lk(queue_mutex_);
    hold_ = hold;
  }
  queue_cv_.notify_all();
}

std::shared_ptr<const GraphSnapshot> Server::snapshot_for_test(
    const std::string& variant) const {
  return find_snapshot(variant);
}

std::shared_ptr<const GraphSnapshot> Server::find_snapshot(
    const std::string& variant) const {
  std::scoped_lock lk(registry_mutex_);
  const auto it = registry_.find(variant);
  return it == registry_.end() ? nullptr : it->second;
}

// ---- Frame handling (reader threads) ------------------------------------

void Server::note_frame_too_long(const std::shared_ptr<Session>& session) {
  respond_error(session, 0, ErrorCode::FrameTooLarge,
                "frame exceeds max_frame_bytes");
}

void Server::handle_frame(const std::shared_ptr<Session>& session,
                          const std::string& line) {
  ParseResult parsed = parse_request(line);
  if (!parsed.ok) {
    respond_error(session, parsed.request.id, parsed.code, parsed.message);
    return;
  }
  Request& req = parsed.request;
  switch (req.op) {
    case Op::Ping: {
      {
        std::scoped_lock lk(metrics_mutex_);
        counters_.control_ops += 1;
      }
      JsonWriter w;
      w.field_u64("id", req.id);
      w.field_bool("ok", true);
      w.field_bool("pong", true);
      if (!session->send_line(w.finish())) {
        std::scoped_lock lk(metrics_mutex_);
        counters_.responses_dropped += 1;
      }
      return;
    }
    case Op::Stats: {
      {
        std::scoped_lock lk(metrics_mutex_);
        counters_.control_ops += 1;
      }
      if (!session->send_line(stats_json(req.id))) {
        std::scoped_lock lk(metrics_mutex_);
        counters_.responses_dropped += 1;
      }
      return;
    }
    case Op::Shutdown: {
      {
        std::scoped_lock lk(queue_mutex_);
        draining_ = true;
        shutdown_requested_ = true;
      }
      queue_cv_.notify_all();
      {
        std::scoped_lock lk(metrics_mutex_);
        counters_.control_ops += 1;
      }
      JsonWriter w;
      w.field_u64("id", req.id);
      w.field_bool("ok", true);
      w.field_bool("bye", true);
      if (!session->send_line(w.finish())) {
        std::scoped_lock lk(metrics_mutex_);
        counters_.responses_dropped += 1;
      }
      return;
    }
    case Op::Transform:
      handle_transform(session, req);
      return;
    case Op::Query:
      handle_query(session, std::move(req));
      return;
  }
}

void Server::handle_query(const std::shared_ptr<Session>& session,
                          Request&& req) {
  const std::shared_ptr<const GraphSnapshot> snap = find_snapshot(req.variant);
  if (snap == nullptr) {
    respond_error(session, req.id, ErrorCode::UnknownVariant,
                  "no snapshot named '" + req.variant + "'");
    return;
  }
  // Admission-time validation: everything past this point must be
  // runnable, because the runners GRAFFIX_CHECK-abort on bad input.
  const NodeId slots = snap->graph.num_slots();
  if (req.alg == QueryAlg::Sssp || req.alg == QueryAlg::Bfs) {
    if (req.source >= slots || snap->graph.is_hole(req.source)) {
      respond_error(session, req.id, ErrorCode::BadSource,
                    "source is out of range or a hole slot");
      return;
    }
  }
  if (req.alg == QueryAlg::Bc) {
    for (const NodeId s : req.sources) {
      if (s >= slots || snap->graph.is_hole(s)) {
        respond_error(session, req.id, ErrorCode::BadSource,
                      "bc source is out of range or a hole slot");
        return;
      }
    }
  }
  for (const NodeId n : req.nodes) {
    if (n >= slots) {
      respond_error(session, req.id, ErrorCode::BadSource,
                    "echo node is out of range");
      return;
    }
  }

  Job job;
  job.deadline_ms =
      req.deadline_ms > 0.0 ? req.deadline_ms : config_.default_deadline_ms;
  job.req = std::move(req);
  job.snap = snap;
  job.session = session;
  {
    std::scoped_lock lk(queue_mutex_);
    if (draining_ || stopping_) {
      respond_error(session, job.req.id, ErrorCode::ShuttingDown,
                    "daemon is draining");
      return;
    }
    if (queue_.size() >= config_.queue_capacity) {
      {
        std::scoped_lock mlk(metrics_mutex_);
        counters_.shed += 1;
      }
      respond_error(session, job.req.id, ErrorCode::Overloaded,
                    "job queue is full — retry later");
      return;
    }
    queue_.push_back(std::move(job));
    std::scoped_lock mlk(metrics_mutex_);
    counters_.queue_peak = std::max(counters_.queue_peak, queue_.size());
  }
  queue_cv_.notify_one();
}

void Server::handle_transform(const std::shared_ptr<Session>& session,
                              const Request& req) {
  const std::shared_ptr<const GraphSnapshot> src = find_snapshot(req.variant);
  if (src == nullptr) {
    respond_error(session, req.id, ErrorCode::UnknownVariant,
                  "no snapshot named '" + req.variant + "'");
    return;
  }
  Csr graph;
  std::vector<NodeId> warp_order;
  std::uint64_t edges_dropped = 0;
  std::uint64_t edges_added = 0;
  if (req.kind == "none") {
    graph = src->graph;
    warp_order = src->warp_order;
  } else if (req.kind == "sparsify") {
    transform::SparsifyKnobs knobs;
    knobs.drop_fraction = req.drop_fraction;
    knobs.seed = req.seed;
    transform::SparsifyResult result = transform::sparsify_transform(src->graph, knobs);
    graph = std::move(result.graph);
    edges_dropped = result.edges_dropped;
    // Slot ids are preserved but degrees changed; serve in slot order
    // rather than the source's stale warp order.
  } else {  // "divergence" — parse_request admits nothing else
    transform::DivergenceKnobs knobs;
    knobs.degree_sim_threshold = req.threshold;
    transform::DivergenceResult result =
        transform::divergence_transform(src->graph, knobs);
    graph = std::move(result.graph);
    warp_order = std::move(result.warp_order);
    edges_added = result.edges_added;
  }

  std::shared_ptr<const GraphSnapshot> snap;
  {
    std::scoped_lock lk(registry_mutex_);
    const std::uint64_t version = ++next_version_;
    snap = make_snapshot(req.name, version, std::move(graph),
                         std::move(warp_order));
    // Copy-on-write publish: the superseded snapshot stays alive for
    // exactly as long as admitted queries still hold it.
    registry_[req.name] = snap;
  }
  {
    std::scoped_lock lk(metrics_mutex_);
    counters_.control_ops += 1;
  }
  JsonWriter w;
  w.field_u64("id", req.id);
  w.field_bool("ok", true);
  w.field_string("op", "transform");
  w.field_string("variant", snap->variant);
  w.field_u64("version", snap->version);
  w.field_string("kind", req.kind);
  w.field_u64("nodes", snap->graph.num_nodes());
  w.field_u64("edges", snap->graph.num_edges());
  w.field_u64("edges_dropped", edges_dropped);
  w.field_u64("edges_added", edges_added);
  w.field_u64("resident_bytes", snap->resident_bytes());
  if (!session->send_line(w.finish())) {
    std::scoped_lock lk(metrics_mutex_);
    counters_.responses_dropped += 1;
  }
}

// ---- Dispatch (dispatcher thread + worker pool) -------------------------

void Server::dispatch_loop() {
  while (true) {
    std::vector<Job> wave;
    {
      std::unique_lock<std::mutex> lk(queue_mutex_);
      queue_cv_.wait(lk, [&] { return stopping_ || (!queue_.empty() && !hold_); });
      if (queue_.empty() && stopping_) return;
      wave.swap(queue_);
    }
    if (!wave.empty()) process_wave(wave);
  }
}

void Server::process_wave(std::vector<Job>& wave) {
  std::vector<const Request*> reqs;
  reqs.reserve(wave.size());
  for (const Job& job : wave) reqs.push_back(&job.req);
  const std::vector<std::vector<std::size_t>> unit_indices = form_units(
      reqs, [&](std::size_t i) { return static_cast<const void*>(wave[i].snap.get()); },
      config_.max_batch_lanes);
  std::vector<std::vector<Job*>> units(unit_indices.size());
  for (std::size_t u = 0; u < unit_indices.size(); ++u) {
    units[u].reserve(unit_indices[u].size());
    for (const std::size_t i : unit_indices[u]) units[u].push_back(&wave[i]);
  }
  // Units run concurrently on the persistent pool; the engine sweeps
  // inside each unit see in_parallel() and stay serial, so there is
  // exactly one layer of parallelism — across units, never within.
  // A throwing unit answers its own jobs instead of taking down the
  // daemon (or, worse, leaving their sessions waiting forever).
  parallel_for_each_dynamic(units, [&](const std::vector<Job*>& unit, std::size_t) {
    try {
      run_query_unit(unit);
    } catch (const std::exception& e) {
      for (Job* job : unit) {
        respond_error(job->session, job->req.id, ErrorCode::Internal,
                      std::string("internal error: ") + e.what());
      }
    }
  });
}

void Server::run_query_unit(const std::vector<Job*>& unit) {
  if (unit.empty()) return;
  const QueryAlg alg = unit.front()->req.alg;
  if (alg == QueryAlg::Pagerank || alg == QueryAlg::Bc) {
    run_scalar_query(*unit.front());
    return;
  }

  // Multi-source SSSP/BFS unit (K >= 1 lanes, one shared sweep
  // schedule). Requests already past their deadline are answered
  // without joining the batch.
  std::vector<Job*> live;
  // graffix-lint: allow(R6) per-unit staging list bounded by max_batch_lanes; pool workers have no arena of their own
  live.reserve(unit.size());
  for (Job* job : unit) {
    if (job->deadline_ms > 0.0 && job->age.millis() > job->deadline_ms) {
      respond_error(job->session, job->req.id, ErrorCode::DeadlineExpired,
                    "deadline expired before execution");
      continue;
    }
    // graffix-lint: allow(R6) append stays within the reserve above
    live.push_back(job);
  }
  if (live.empty()) return;

  std::vector<LaneSpec> lanes;
  // graffix-lint: allow(R6) per-unit lane specs bounded by max_batch_lanes; sized once per unit
  lanes.reserve(live.size());
  for (Job* job : live) {
    LaneSpec spec;
    spec.source = job->req.source;
    spec.echo_nodes = job->req.nodes;
    if (job->deadline_ms > 0.0) {
      spec.expired = [job] {
        return job->age.millis() > job->deadline_ms;
      };
    }
    // graffix-lint: allow(R6) append stays within the reserve above
    lanes.push_back(std::move(spec));
  }

  const GraphSnapshot& snap = *live.front()->snap;
  const MultiSourceOutcome outcome = run_multi_source(snap, alg, lanes);
  if (outcome.engine_busy) {
    // Unreachable with a per-unit engine; kept as the typed fallback the
    // try_sweep contract promises.
    for (Job* job : live) {
      respond_error(job->session, job->req.id, ErrorCode::EngineBusy,
                    "engine is mid-sweep");
    }
    return;
  }
  {
    std::scoped_lock lk(metrics_mutex_);
    counters_.units += 1;
    if (live.size() > 1) {
      counters_.batches += 1;
      counters_.batched_lanes += live.size();
    }
  }
  for (std::size_t k = 0; k < live.size(); ++k) {
    Job& job = *live[k];
    const LaneOutcome& lane = outcome.lanes[k];
    if (lane.expired) {
      respond_error(job.session, job.req.id, ErrorCode::DeadlineExpired,
                    "deadline expired mid-run");
      continue;
    }
    // Pure function of (request, snapshot) — no timing, no shared round
    // counters — so batched and serial renderings are byte-identical.
    JsonWriter w;
    w.field_u64("id", job.req.id);
    w.field_bool("ok", true);
    w.field_string("alg", query_alg_name(alg));
    w.field_string("variant", snap.variant);
    w.field_u64("version", snap.version);
    w.field_string("digest", hex64(lane.digest));
    w.field_u64("reached", lane.reached);
    w.field_u64("rounds", lane.rounds);
    w.open_array("values");
    for (const double v : lane.values) w.raw_item(format_double(v));
    w.close_array();
    respond_ok(job, w.finish());
  }
}

void Server::run_scalar_query(Job& job) {
  if (job.deadline_ms > 0.0 && job.age.millis() > job.deadline_ms) {
    respond_error(job.session, job.req.id, ErrorCode::DeadlineExpired,
                  "deadline expired before execution");
    return;
  }
  const GraphSnapshot& snap = *job.snap;
  core::RunConfig rc;
  rc.warp_order = snap.warp_order;
  rc.seed = job.req.seed;
  const core::Algorithm alg = job.req.alg == QueryAlg::Pagerank
                                  ? core::Algorithm::PR
                                  : core::Algorithm::BC;
  if (alg == core::Algorithm::BC) rc.bc_sources = job.req.sources;
  if (const char* problem = core::validate_run_config(alg, snap.graph, rc)) {
    respond_error(job.session, job.req.id, ErrorCode::BadRequest, problem);
    return;
  }
  const core::RunOutput out = core::run_algorithm(alg, snap.graph, rc);
  {
    std::scoped_lock lk(metrics_mutex_);
    counters_.units += 1;
  }
  JsonWriter w;
  w.field_u64("id", job.req.id);
  w.field_bool("ok", true);
  w.field_string("alg", query_alg_name(job.req.alg));
  w.field_string("variant", snap.variant);
  w.field_u64("version", snap.version);
  w.field_string("digest",
                 hex64(fnv1a64(out.attr.data(), out.attr.size() * sizeof(double))));
  w.field_u64("iterations", out.iterations);
  w.open_array("values");
  for (const NodeId n : job.req.nodes) {
    w.raw_item(format_double(out.attr.empty() ? 0.0 : out.attr[n]));
  }
  w.close_array();
  respond_ok(job, w.finish());
}

// ---- Responses + metrics ------------------------------------------------

void Server::respond_error(const std::shared_ptr<Session>& session,
                           std::uint64_t id, ErrorCode code,
                           std::string_view message) {
  const bool delivered = session->send_line(render_error(id, code, message));
  std::scoped_lock lk(metrics_mutex_);
  counters_.errors += 1;
  counters_.errors_by_code[error_code_name(code)] += 1;
  if (!delivered) counters_.responses_dropped += 1;
}

void Server::respond_ok(Job& job, const std::string& line) {
  const bool delivered = job.session->send_line(line);
  const double ms = job.age.millis();
  std::scoped_lock lk(metrics_mutex_);
  if (delivered) {
    counters_.queries_ok += 1;
    latencies_ms_.push_back(ms);
  } else {
    counters_.responses_dropped += 1;
  }
}

ServerMetrics Server::metrics() const {
  ServerMetrics m;
  std::vector<double> scratch;
  {
    std::scoped_lock lk(metrics_mutex_);
    m = counters_;
    scratch = latencies_ms_;
  }
  m.p50_ms = percentile(scratch, 0.50);
  m.p95_ms = percentile(scratch, 0.95);
  m.p99_ms = percentile(scratch, 0.99);
  {
    std::scoped_lock lk(queue_mutex_);
    m.queue_depth = queue_.size();
  }
  {
    std::scoped_lock lk(registry_mutex_);
    m.snapshots = registry_.size();
    for (const auto& [name, snap] : registry_) {
      m.resident_bytes += snap->resident_bytes();
    }
  }
  return m;
}

std::string Server::stats_json(std::uint64_t id) const {
  const ServerMetrics m = metrics();
  JsonWriter w;
  w.field_u64("id", id);
  w.field_bool("ok", true);
  w.field_string("op", "stats");
  w.field_u64("queries_ok", m.queries_ok);
  w.field_u64("errors", m.errors);
  w.field_u64("shed", m.shed);
  w.field_u64("control_ops", m.control_ops);
  w.field_u64("units", m.units);
  w.field_u64("batches", m.batches);
  w.field_u64("batched_lanes", m.batched_lanes);
  w.field_u64("responses_dropped", m.responses_dropped);
  w.field_u64("queue_depth", m.queue_depth);
  w.field_u64("queue_peak", m.queue_peak);
  w.field_u64("snapshots", m.snapshots);
  w.field_u64("resident_bytes", m.resident_bytes);
  w.field_double("p50_ms", m.p50_ms);
  w.field_double("p95_ms", m.p95_ms);
  w.field_double("p99_ms", m.p99_ms);
  w.open_object("errors_by_code");
  for (const auto& [code, count] : m.errors_by_code) {
    // graffix-lint: allow(R7) keys are error_code_name() literals drawn from a std::map, so the emit order is the fixed lexicographic one
    w.field_u64(code, count);
  }
  w.close_object();
  return w.finish();
}

}  // namespace graffix::serve
