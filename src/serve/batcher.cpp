#include "serve/batcher.hpp"

#include <cmath>
#include <limits>
#include <utility>

namespace graffix::serve {

std::size_t GraphSnapshot::resident_bytes() const {
  return graph.memory_bytes() + warp_order.size() * sizeof(NodeId) +
         items.size() * sizeof(sim::WorkItem);
}

std::shared_ptr<const GraphSnapshot> make_snapshot(
    std::string variant, std::uint64_t version, Csr graph,
    std::vector<NodeId> warp_order) {
  auto snap = std::make_shared<GraphSnapshot>();
  snap->variant = std::move(variant);
  snap->version = version;
  snap->graph = std::move(graph);
  snap->warp_order = std::move(warp_order);
  snap->items = snap->warp_order.empty()
                    ? sim::items_all_vertices(snap->graph)
                    : sim::items_per_vertex(snap->graph, snap->warp_order);
  return snap;
}

std::vector<std::vector<std::size_t>> form_units(
    std::span<const Request* const> wave,
    const std::function<const void*(std::size_t)>& snapshot_of,
    std::uint32_t max_lanes) {
  if (max_lanes == 0) max_lanes = 1;
  if (max_lanes > kMaxBatchLanes) max_lanes = kMaxBatchLanes;
  std::vector<std::vector<std::size_t>> units;
  // Open group per (snapshot, alg) key; a handful of live variants means
  // a linear scan beats any map here.
  struct Open {
    const void* snap;
    QueryAlg alg;
    std::size_t unit;
  };
  std::vector<Open> open;
  for (std::size_t i = 0; i < wave.size(); ++i) {
    const Request& req = *wave[i];
    const bool batchable =
        req.op == Op::Query &&
        (req.alg == QueryAlg::Sssp || req.alg == QueryAlg::Bfs);
    if (!batchable) {
      units.push_back({i});
      continue;
    }
    const void* snap = snapshot_of(i);
    Open* slot = nullptr;
    for (Open& o : open) {
      if (o.snap == snap && o.alg == req.alg) { slot = &o; break; }
    }
    if (slot != nullptr && units[slot->unit].size() < max_lanes) {
      units[slot->unit].push_back(i);
      continue;
    }
    units.push_back({i});
    if (slot != nullptr) {
      slot->unit = units.size() - 1;
    } else {
      open.push_back({snap, req.alg, units.size() - 1});
    }
  }
  return units;
}

MultiSourceOutcome run_multi_source_on(sim::Engine& engine,
                                       const GraphSnapshot& snap, QueryAlg alg,
                                       std::span<const LaneSpec> lanes) {
  MultiSourceOutcome out;
  const std::size_t lane_count = lanes.size();
  out.lanes.resize(lane_count);
  if (lane_count == 0) return out;
  if (engine.in_sweep()) {
    out.engine_busy = true;
    return out;
  }

  const std::size_t slots = snap.graph.num_slots();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Lane-major planes: dist[slot * K + k]. One cache line serves all
  // lanes of a vertex, which is what makes the K-wide functor cheap.
  std::vector<double> dist(slots * lane_count, kInf);
  for (std::size_t k = 0; k < lane_count; ++k) {
    dist[static_cast<std::size_t>(lanes[k].source) * lane_count + k] = 0.0;
  }
  std::vector<double> next = dist;

  std::vector<std::uint8_t> active(lane_count, 1);
  std::vector<std::uint8_t> lane_changed(lane_count, 0);
  std::vector<std::uint32_t> last_round(lane_count, 0);

  sim::SweepOptions opts;
  opts.weighted = alg == QueryAlg::Sssp && snap.graph.has_weights();
  sim::KernelStats stats;

  // Bellman-Ford needs at most |V|-1 improving rounds on nonnegative
  // weights; the cap is a belt against a (bug-induced) livelock.
  const std::uint32_t round_cap = static_cast<std::uint32_t>(slots) + 2;
  std::uint32_t round = 0;
  while (round < round_cap) {
    for (std::size_t k = 0; k < lane_count; ++k) {
      if (active[k] != 0 && lanes[k].expired && lanes[k].expired()) {
        active[k] = 0;
        out.lanes[k].expired = true;
      }
    }
    bool any_active = false;
    for (const std::uint8_t a : active) any_active = any_active || a != 0;
    if (!any_active) break;

    ++round;
    std::fill(lane_changed.begin(), lane_changed.end(), std::uint8_t{0});
    auto gate = [&](NodeId u) {
      const double* row = &dist[static_cast<std::size_t>(u) * lane_count];
      for (std::size_t k = 0; k < lane_count; ++k) {
        if (active[k] != 0 && std::isfinite(row[k])) return true;
      }
      return false;
    };
    auto fn = [&](NodeId u, NodeId v, Weight w) {
      const double* row = &dist[static_cast<std::size_t>(u) * lane_count];
      double* nrow = &next[static_cast<std::size_t>(v) * lane_count];
      const double step = alg == QueryAlg::Bfs ? 1.0 : static_cast<double>(w);
      bool commit = false;
      for (std::size_t k = 0; k < lane_count; ++k) {
        if (active[k] == 0) continue;
        const double d = row[k];
        if (!std::isfinite(d)) continue;
        const double nd = d + step;
        if (nd < nrow[k]) {
          nrow[k] = nd;
          lane_changed[k] = 1;
          commit = true;
        }
      }
      return commit;
    };
    if (!engine.try_sweep_gated(snap.items, opts, gate, fn, stats)) {
      out.engine_busy = true;
      return out;
    }
    bool any_change = false;
    for (std::size_t k = 0; k < lane_count; ++k) {
      if (lane_changed[k] != 0) {
        last_round[k] = round;
        any_change = true;
      }
    }
    if (!any_change) break;
    dist = next;
  }

  for (std::size_t k = 0; k < lane_count; ++k) {
    LaneOutcome& lane = out.lanes[k];
    lane.rounds = last_round[k];
    std::uint64_t h = fnv1a64(nullptr, 0);
    NodeId reached = 0;
    for (std::size_t s = 0; s < slots; ++s) {
      const double d = dist[s * lane_count + k];
      h = fnv1a64_append(h, &d, sizeof d);
      if (std::isfinite(d)) ++reached;
    }
    lane.digest = h;
    lane.reached = reached;
    lane.values.reserve(lanes[k].echo_nodes.size());
    for (const NodeId n : lanes[k].echo_nodes) {
      lane.values.push_back(dist[static_cast<std::size_t>(n) * lane_count + k]);
    }
  }
  return out;
}

MultiSourceOutcome run_multi_source(const GraphSnapshot& snap, QueryAlg alg,
                                    std::span<const LaneSpec> lanes) {
  sim::Engine engine(snap.graph, sim::SimConfig{});
  return run_multi_source_on(engine, snap, alg, lanes);
}

}  // namespace graffix::serve
