// Shared OpenMP-parallel CSR rebuild path.
//
// Every Graffix transform ends the same way: a new Csr whose adjacency is
// the old adjacency plus some per-node extra arcs (divergence, latency),
// or a fully rewritten per-node arc list (replication, symmetrization).
// Rebuilding that Csr serially dominates preprocessing wall-time at scale
// (Table 5), so the rebuild is centralized here: per-node counts ->
// deterministic parallel exclusive scan -> parallel per-node scatter.
// The output is bit-identical for every thread count, because each slot's
// final edge range is fixed by the scan before any thread writes it (the
// determinism-under-parallelism contract; see DESIGN.md §7).
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "util/types.hpp"

namespace graffix {

/// One arc produced by a transform: insertion target plus the weight the
/// rebuilt graph should carry for it (ignored on unweighted rebuilds).
struct ExtraArc {
  NodeId dst;
  Weight w;
};

/// Rebuilds `base` with `extra[s]` appended (in order) to slot s's
/// adjacency. `extra` must be empty or have base.num_slots() entries.
/// Weights are materialized iff base.has_weights(); the hole mask is
/// carried over from `base` unchanged.
[[nodiscard]] Csr rebuild_with_extras(
    const Csr& base, std::span<const std::vector<ExtraArc>> extra);

/// Memory-lean overload: consumes `base` and frees its arrays in a
/// staggered order — the base targets are released before the new
/// weights array is allocated — so the rebuild peak is roughly
/// max(base, new) + the larger of the two edge arrays instead of
/// base + new. Byte-identical output to the const overload
/// (differential-tested); this is what keeps the paper-scale
/// transform benches under the 2x peak-RSS gate (DESIGN.md §9).
[[nodiscard]] Csr rebuild_with_extras(
    Csr&& base, std::span<const std::vector<ExtraArc>> extra);

/// Builds a Csr directly from per-slot arc lists (for transforms that
/// rewrite adjacency wholesale). `holes` must be empty or match
/// adj.size(); `weighted` selects whether arc weights are materialized.
[[nodiscard]] Csr rebuild_from_adjacency(
    std::span<const std::vector<ExtraArc>> adj, bool weighted,
    std::vector<std::uint8_t> holes);

}  // namespace graffix
