#include "graph/builder.hpp"

#include <algorithm>

#include "util/macros.hpp"
#include "util/parallel.hpp"

namespace graffix {

void GraphBuilder::add_edge(NodeId src, NodeId dst, Weight w) {
  GRAFFIX_DCHECK(src < num_nodes_ && dst < num_nodes_,
                 "edge (%u,%u) out of range (n=%u)", src, dst, num_nodes_);
  edges_.push_back({src, dst, w});
}

void GraphBuilder::add_edges(std::vector<EdgeTriple>&& edges) {
  if (edges_.empty() && edges_.capacity() <= edges.capacity()) {
    edges_ = std::move(edges);
  } else {
    edges_.reserve(edges_.size() + edges.size());
    edges_.insert(edges_.end(), edges.begin(), edges.end());
  }
}

Csr GraphBuilder::build() {
  if (drop_self_loops_) {
    std::erase_if(edges_, [](const EdgeTriple& e) { return e.src == e.dst; });
  }

  std::sort(edges_.begin(), edges_.end(),
            [](const EdgeTriple& a, const EdgeTriple& b) {
              if (a.src != b.src) return a.src < b.src;
              if (a.dst != b.dst) return a.dst < b.dst;
              return a.weight < b.weight;
            });

  if (dedup_ != Dedup::None) {
    // Sorted by (src, dst, weight): unique keeps the first occurrence,
    // which for KeepMinWeight is the cheapest parallel edge.
    auto last = std::unique(edges_.begin(), edges_.end(),
                            [](const EdgeTriple& a, const EdgeTriple& b) {
                              return a.src == b.src && a.dst == b.dst;
                            });
    edges_.erase(last, edges_.end());
  }

  std::vector<EdgeId> offsets(static_cast<std::size_t>(num_nodes_) + 1, 0);
  for (const EdgeTriple& e : edges_) {
    offsets[static_cast<std::size_t>(e.src) + 1]++;
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<NodeId> targets(edges_.size());
  std::vector<Weight> weights(weighted_ ? edges_.size() : 0);
  parallel_for(std::size_t{0}, edges_.size(), [&](std::size_t i) {
    targets[i] = edges_[i].dst;
    if (weighted_) weights[i] = edges_[i].weight;
  });

  edges_.clear();
  edges_.shrink_to_fit();
  return Csr(std::move(offsets), std::move(targets), std::move(weights));
}

}  // namespace graffix
