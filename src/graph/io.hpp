// Graph serialization: whitespace edge lists (SNAP style), DIMACS .gr
// (USA-road distribution format), and a fast binary format for caching
// transformed graphs between bench runs.
#pragma once

#include <string>

#include "graph/csr.hpp"

namespace graffix {

/// Reads "u v [w]" lines; '#' and '%' lines are comments. Node count is
/// 1 + max id unless min_nodes is larger.
[[nodiscard]] Csr read_edge_list(const std::string& path, bool weighted = false,
                                 NodeId min_nodes = 0);

/// Writes "u v [w]" lines; holes are skipped.
void write_edge_list(const Csr& graph, const std::string& path);

/// Reads the 9th DIMACS challenge .gr format ("p sp N M" + "a u v w").
[[nodiscard]] Csr read_dimacs(const std::string& path);

/// Reads a Matrix Market coordinate file (.mtx): general or symmetric
/// pattern/real matrices; symmetric entries are mirrored. 1-based ids.
[[nodiscard]] Csr read_matrix_market(const std::string& path);

/// Writes the graph as a general coordinate .mtx (weights become the
/// value column when present).
void write_matrix_market(const Csr& graph, const std::string& path);

/// Binary round-trip: magic + counts + raw arrays (host endianness).
void write_binary(const Csr& graph, const std::string& path);
[[nodiscard]] Csr read_binary(const std::string& path);

}  // namespace graffix
