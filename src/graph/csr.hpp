// Compressed Sparse Row graph representation, hole-aware.
//
// This mirrors the layout in the paper's Figure 1: an offsets array, an
// edges (targets) array, optional per-edge weights, and per-node attribute
// arrays managed by the algorithms. Graffix's renumbering transform (§2.2)
// deliberately leaves *holes* — slot indices with no corresponding real
// node — so each BFS level starts at a multiple of the chunk size k. A Csr
// therefore distinguishes "slots" (indices into the offsets array,
// including holes) from "nodes" (non-hole slots). A graph with no holes
// has num_slots() == num_nodes() and an empty hole mask.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/macros.hpp"
#include "util/types.hpp"

namespace graffix {

class Csr {
 public:
  Csr() = default;

  /// Takes ownership of prebuilt arrays. offsets.size() == num_slots + 1.
  /// weights must be empty or match targets.size(). hole mask must be
  /// empty (no holes) or have num_slots entries (1 = hole).
  Csr(std::vector<EdgeId> offsets, std::vector<NodeId> targets,
      std::vector<Weight> weights = {}, std::vector<std::uint8_t> holes = {});

  /// Total slot count, including holes.
  [[nodiscard]] NodeId num_slots() const {
    return static_cast<NodeId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }

  /// Real (non-hole) node count.
  [[nodiscard]] NodeId num_nodes() const { return num_nodes_; }

  [[nodiscard]] EdgeId num_edges() const {
    return offsets_.empty() ? 0 : offsets_.back();
  }

  [[nodiscard]] bool has_weights() const { return !weights_.empty(); }
  [[nodiscard]] bool has_holes() const { return !holes_.empty(); }

  [[nodiscard]] bool is_hole(NodeId slot) const {
    GRAFFIX_DCHECK(slot < num_slots(), "slot=%u", slot);
    return !holes_.empty() && holes_[slot] != 0;
  }

  [[nodiscard]] NodeId degree(NodeId slot) const {
    GRAFFIX_DCHECK(slot < num_slots(), "slot=%u", slot);
    return static_cast<NodeId>(offsets_[slot + 1] - offsets_[slot]);
  }

  [[nodiscard]] EdgeId edge_begin(NodeId slot) const { return offsets_[slot]; }
  [[nodiscard]] EdgeId edge_end(NodeId slot) const { return offsets_[slot + 1]; }

  [[nodiscard]] std::span<const NodeId> neighbors(NodeId slot) const {
    return {targets_.data() + offsets_[slot],
            targets_.data() + offsets_[slot + 1]};
  }

  [[nodiscard]] std::span<const Weight> edge_weights(NodeId slot) const {
    GRAFFIX_DCHECK(has_weights(), "graph is unweighted");
    return {weights_.data() + offsets_[slot],
            weights_.data() + offsets_[slot + 1]};
  }

  [[nodiscard]] std::span<const EdgeId> offsets() const { return offsets_; }
  [[nodiscard]] std::span<const NodeId> targets() const { return targets_; }
  [[nodiscard]] std::span<const Weight> weights() const { return weights_; }
  [[nodiscard]] std::span<const std::uint8_t> holes() const { return holes_; }

  /// Heap bytes owned by this graph: the allocated capacity of every
  /// owned array (offsets + targets + weights + hole mask). Used for the
  /// Table 5 "additional space" column and as the denominator of the
  /// bench peak-RSS gates (DESIGN.md §9).
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Destructive disassembly for memory-lean rebuilds (the Csr&&
  /// overload of rebuild_with_extras): moves out the owned arrays so the
  /// caller can free them one at a time mid-rebuild instead of holding
  /// the whole base graph until the new one is complete. The graph is
  /// left valid but empty.
  struct OwnedParts {
    std::vector<EdgeId> offsets;
    std::vector<NodeId> targets;
    std::vector<Weight> weights;
    std::vector<std::uint8_t> holes;
  };
  [[nodiscard]] OwnedParts take_parts() &&;

  /// Returns the transpose (reverse) graph. Holes are preserved as slots
  /// with zero out-degree and the same hole mask.
  [[nodiscard]] Csr transpose() const;

  /// Returns an undirected view: each directed edge mirrored, duplicates
  /// removed. Weights keep the minimum of the two directions.
  [[nodiscard]] Csr symmetrized() const;

 private:
  std::vector<EdgeId> offsets_;   // size num_slots + 1
  std::vector<NodeId> targets_;   // size num_edges
  std::vector<Weight> weights_;   // empty or size num_edges
  std::vector<std::uint8_t> holes_;  // empty or size num_slots
  NodeId num_nodes_ = 0;
};

}  // namespace graffix
