#include "graph/io.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>

#include "graph/builder.hpp"
#include "util/macros.hpp"

namespace graffix {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_or_throw(const std::string& path, const char* mode) {
  FilePtr f(std::fopen(path.c_str(), mode));
  if (!f) {
    throw std::runtime_error("graffix: cannot open '" + path + "'");
  }
  return f;
}

/// Reads one full line into `out` (trailing newline stripped), growing
/// past the fixed fgets buffer. A line longer than the buffer must not be
/// split — the remainder would re-parse as a bogus extra record.
/// Returns false at end of file with nothing read.
bool read_line(std::FILE* f, std::string& out) {
  out.clear();
  char buf[512];
  bool got_any = false;
  while (std::fgets(buf, sizeof(buf), f)) {
    got_any = true;
    out += buf;
    if (!out.empty() && out.back() == '\n') {
      out.pop_back();
      return true;
    }
    // No newline yet: the line continues beyond the buffer (or the file
    // ends without one) — keep reading.
  }
  return got_any;
}

}  // namespace

Csr read_edge_list(const std::string& path, bool weighted, NodeId min_nodes) {
  FilePtr f = open_or_throw(path, "r");
  std::vector<EdgeTriple> edges;
  NodeId max_id = 0;
  std::string line;
  while (read_line(f.get(), line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    unsigned long long u = 0, v = 0;
    double w = 1.0;
    const int got = std::sscanf(line.c_str(), "%llu %llu %lf", &u, &v, &w);
    if (got < 2) continue;
    edges.push_back({static_cast<NodeId>(u), static_cast<NodeId>(v),
                     static_cast<Weight>(w)});
    max_id = std::max({max_id, static_cast<NodeId>(u), static_cast<NodeId>(v)});
  }
  const NodeId n = std::max(min_nodes, edges.empty() ? min_nodes : max_id + 1);
  GraphBuilder builder(n);
  builder.set_weighted(weighted);
  builder.add_edges(std::move(edges));
  return builder.build();
}

void write_edge_list(const Csr& graph, const std::string& path) {
  FilePtr f = open_or_throw(path, "w");
  const NodeId slots = graph.num_slots();
  for (NodeId u = 0; u < slots; ++u) {
    if (graph.is_hole(u)) continue;
    const auto nbrs = graph.neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (graph.has_weights()) {
        std::fprintf(f.get(), "%u %u %g\n", u, nbrs[i],
                     static_cast<double>(graph.edge_weights(u)[i]));
      } else {
        std::fprintf(f.get(), "%u %u\n", u, nbrs[i]);
      }
    }
  }
}

Csr read_dimacs(const std::string& path) {
  FilePtr f = open_or_throw(path, "r");
  std::string line;
  NodeId n = 0;
  std::vector<EdgeTriple> edges;
  while (read_line(f.get(), line)) {
    if (line.empty() || line[0] == 'c') continue;
    if (line[0] == 'p') {
      unsigned long long nn = 0, mm = 0;
      if (std::sscanf(line.c_str(), "p sp %llu %llu", &nn, &mm) == 2) {
        n = static_cast<NodeId>(nn);
        edges.reserve(mm);
      }
      continue;
    }
    if (line[0] == 'a') {
      unsigned long long u = 0, v = 0;
      double w = 1.0;
      if (std::sscanf(line.c_str(), "a %llu %llu %lf", &u, &v, &w) == 3) {
        // DIMACS ids are 1-based.
        edges.push_back({static_cast<NodeId>(u - 1), static_cast<NodeId>(v - 1),
                         static_cast<Weight>(w)});
      }
    }
  }
  GRAFFIX_CHECK(n > 0, "DIMACS file missing 'p sp' header: %s", path.c_str());
  GraphBuilder builder(n);
  builder.set_weighted(true);
  builder.add_edges(std::move(edges));
  return builder.build();
}

Csr read_matrix_market(const std::string& path) {
  FilePtr f = open_or_throw(path, "r");
  std::string line;
  // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
  if (!read_line(f.get(), line) ||
      std::strncmp(line.c_str(), "%%MatrixMarket", 14) != 0) {
    throw std::runtime_error("graffix: '" + path +
                             "' is not a MatrixMarket file");
  }
  bool symmetric = line.find("symmetric") != std::string::npos;
  bool pattern = line.find("pattern") != std::string::npos;
  if (line.find("coordinate") == std::string::npos) {
    throw std::runtime_error("graffix: only coordinate .mtx is supported");
  }

  // Skip comments, read the size line.
  unsigned long long rows = 0, cols = 0, nnz = 0;
  while (read_line(f.get(), line)) {
    if (line.empty() || line[0] == '%') continue;
    if (std::sscanf(line.c_str(), "%llu %llu %llu", &rows, &cols, &nnz) != 3) {
      throw std::runtime_error("graffix: bad .mtx size line in '" + path +
                               "'");
    }
    break;
  }
  const auto n = static_cast<NodeId>(std::max(rows, cols));
  GraphBuilder builder(n);
  builder.set_weighted(!pattern);
  builder.reserve(symmetric ? 2 * nnz : nnz);
  unsigned long long entries = 0;
  while (entries < nnz && read_line(f.get(), line)) {
    if (line.empty() || line[0] == '%') continue;
    unsigned long long r = 0, c = 0;
    double value = 1.0;
    const int got = std::sscanf(line.c_str(), "%llu %llu %lf", &r, &c, &value);
    if (got < 2 || r == 0 || c == 0 || r > n || c > n) {
      throw std::runtime_error("graffix: bad .mtx entry in '" + path + "'");
    }
    ++entries;
    const auto u = static_cast<NodeId>(r - 1);
    const auto v = static_cast<NodeId>(c - 1);
    const auto w = static_cast<Weight>(value);
    builder.add_edge(u, v, w);
    if (symmetric && u != v) builder.add_edge(v, u, w);
  }
  if (entries < nnz) {
    throw std::runtime_error("graffix: truncated .mtx '" + path + "'");
  }
  return builder.build();
}

void write_matrix_market(const Csr& graph, const std::string& path) {
  FilePtr f = open_or_throw(path, "w");
  std::fprintf(f.get(), "%%%%MatrixMarket matrix coordinate %s general\n",
               graph.has_weights() ? "real" : "pattern");
  std::fprintf(f.get(), "%u %u %llu\n", graph.num_slots(), graph.num_slots(),
               static_cast<unsigned long long>(graph.num_edges()));
  for (NodeId u = 0; u < graph.num_slots(); ++u) {
    if (graph.is_hole(u)) continue;
    const auto nbrs = graph.neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (graph.has_weights()) {
        std::fprintf(f.get(), "%u %u %g\n", u + 1, nbrs[i] + 1,
                     static_cast<double>(graph.edge_weights(u)[i]));
      } else {
        std::fprintf(f.get(), "%u %u\n", u + 1, nbrs[i] + 1);
      }
    }
  }
}

namespace {
constexpr std::uint64_t kBinaryMagic = 0x47524658'43535231ULL;  // "GRFXCSR1"
}

void write_binary(const Csr& graph, const std::string& path) {
  FilePtr f = open_or_throw(path, "wb");
  const std::uint64_t magic = kBinaryMagic;
  const std::uint64_t slots = graph.num_slots();
  const std::uint64_t edges = graph.num_edges();
  const std::uint64_t flags = (graph.has_weights() ? 1u : 0u) |
                              (graph.has_holes() ? 2u : 0u);
  std::fwrite(&magic, sizeof(magic), 1, f.get());
  std::fwrite(&slots, sizeof(slots), 1, f.get());
  std::fwrite(&edges, sizeof(edges), 1, f.get());
  std::fwrite(&flags, sizeof(flags), 1, f.get());
  std::fwrite(graph.offsets().data(), sizeof(EdgeId), slots + 1, f.get());
  std::fwrite(graph.targets().data(), sizeof(NodeId), edges, f.get());
  if (graph.has_weights()) {
    std::fwrite(graph.weights().data(), sizeof(Weight), edges, f.get());
  }
  if (graph.has_holes()) {
    std::fwrite(graph.holes().data(), 1, slots, f.get());
  }
}

Csr read_binary(const std::string& path) {
  FilePtr f = open_or_throw(path, "rb");
  std::uint64_t magic = 0, slots = 0, edges = 0, flags = 0;
  auto read_or_throw = [&](void* dst, std::size_t bytes) {
    if (std::fread(dst, 1, bytes, f.get()) != bytes) {
      throw std::runtime_error("graffix: truncated binary graph '" + path + "'");
    }
  };
  read_or_throw(&magic, sizeof(magic));
  if (magic != kBinaryMagic) {
    throw std::runtime_error("graffix: bad magic in '" + path + "'");
  }
  read_or_throw(&slots, sizeof(slots));
  read_or_throw(&edges, sizeof(edges));
  read_or_throw(&flags, sizeof(flags));
  std::vector<EdgeId> offsets(slots + 1);
  std::vector<NodeId> targets(edges);
  read_or_throw(offsets.data(), sizeof(EdgeId) * (slots + 1));
  read_or_throw(targets.data(), sizeof(NodeId) * edges);
  std::vector<Weight> weights;
  if (flags & 1u) {
    weights.resize(edges);
    read_or_throw(weights.data(), sizeof(Weight) * edges);
  }
  std::vector<std::uint8_t> holes;
  if (flags & 2u) {
    holes.resize(slots);
    read_or_throw(holes.data(), slots);
  }
  return Csr(std::move(offsets), std::move(targets), std::move(weights),
             std::move(holes));
}

}  // namespace graffix
