#include "graph/subgraph.hpp"

#include "util/macros.hpp"

namespace graffix {

Subgraph induced_subgraph(const Csr& graph, std::span<const NodeId> nodes) {
  Subgraph result;
  result.local_of_global.assign(graph.num_slots(), kInvalidNode);
  for (NodeId global : nodes) {
    GRAFFIX_CHECK(global < graph.num_slots() && !graph.is_hole(global),
                  "bad subgraph member %u", global);
    if (result.local_of_global[global] != kInvalidNode) continue;  // dup
    result.local_of_global[global] =
        static_cast<NodeId>(result.global_of_local.size());
    result.global_of_local.push_back(global);
  }

  const auto n = static_cast<NodeId>(result.global_of_local.size());
  const bool weighted = graph.has_weights();
  std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
  std::vector<NodeId> targets;
  std::vector<Weight> weights;
  for (NodeId local = 0; local < n; ++local) {
    const NodeId global = result.global_of_local[local];
    const auto nbrs = graph.neighbors(global);
    const auto wts =
        weighted ? graph.edge_weights(global) : std::span<const Weight>{};
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId dst = result.local_of_global[nbrs[i]];
      if (dst == kInvalidNode) continue;
      targets.push_back(dst);
      if (weighted) weights.push_back(wts[i]);
    }
    offsets[local + 1] = targets.size();
  }
  result.graph =
      Csr(std::move(offsets), std::move(targets), std::move(weights));
  return result;
}

}  // namespace graffix
