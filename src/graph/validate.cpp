#include "graph/validate.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace graffix {

namespace {
ValidationReport fail(const char* fmt, unsigned long long a,
                      unsigned long long b) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), fmt, a, b);
  return {false, buf};
}
}  // namespace

ValidationReport validate_graph(const Csr& graph) {
  const NodeId slots = graph.num_slots();
  const auto offsets = graph.offsets();
  for (NodeId s = 0; s < slots; ++s) {
    if (offsets[s] > offsets[s + 1]) {
      return fail("offsets not monotone at slot %llu (next %llu)", s,
                  offsets[s + 1]);
    }
    if (graph.is_hole(s) && graph.degree(s) != 0) {
      return fail("hole slot %llu has out-degree %llu", s, graph.degree(s));
    }
  }
  const auto targets = graph.targets();
  for (std::size_t e = 0; e < targets.size(); ++e) {
    if (targets[e] >= slots) {
      return fail("edge %llu targets out-of-range node %llu", e, targets[e]);
    }
    if (graph.is_hole(targets[e])) {
      return fail("edge %llu points at hole slot %llu", e, targets[e]);
    }
  }
  if (graph.has_weights()) {
    const auto weights = graph.weights();
    for (std::size_t e = 0; e < weights.size(); ++e) {
      if (!std::isfinite(weights[e]) || weights[e] < 0) {
        return fail("edge %llu has bad weight (index %llu)", e, e);
      }
    }
  }
  return {};
}

bool validation_enabled() {
  const char* value = std::getenv("GRAFFIX_VALIDATE");
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

}  // namespace graffix
