// Incremental graph construction: collect (src, dst, weight) triples,
// then build() a sorted, optionally deduplicated Csr.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "util/types.hpp"

namespace graffix {

/// Edge triple used during construction and by the generators.
struct EdgeTriple {
  NodeId src;
  NodeId dst;
  Weight weight;
};

/// Chunk consumer for the streaming generator APIs (gen/*::emit_*):
/// receives consecutive spans of the edge stream. Concatenating every
/// span a sink sees reproduces the materializing generators' edge list
/// bit for bit, for any chunk size.
using EdgeSink = std::function<void(std::span<const EdgeTriple>)>;

class GraphBuilder {
 public:
  enum class Dedup {
    None,           // keep parallel edges
    KeepFirst,      // arbitrary (first in sorted order)
    KeepMinWeight,  // keep the cheapest parallel edge
  };

  explicit GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

  /// Pre-sizes the edge store. Generators and readers that know (or can
  /// bound) their edge count call this up front so add_edge/add_edges
  /// never copy-grows: one allocation instead of log2(m) doublings, and
  /// no 2x transient during the final growth step.
  void reserve_edges(std::size_t edges) { edges_.reserve(edges); }

  /// Deprecated spelling of reserve_edges(), kept for callers.
  void reserve(std::size_t edges) { reserve_edges(edges); }

  void add_edge(NodeId src, NodeId dst, Weight w = Weight{1});

  /// Bulk-append a pre-generated edge list (from the generators). Adopts
  /// the vector outright when the builder is empty; otherwise reserves
  /// the combined size before inserting.
  void add_edges(std::vector<EdgeTriple>&& edges);

  void set_weighted(bool weighted) { weighted_ = weighted; }
  void set_dedup(Dedup mode) { dedup_ = mode; }
  void set_drop_self_loops(bool drop) { drop_self_loops_ = drop; }

  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }
  [[nodiscard]] NodeId node_count() const { return num_nodes_; }

  /// Builds the Csr. The builder is consumed (edge storage released).
  [[nodiscard]] Csr build();

 private:
  NodeId num_nodes_;
  std::vector<EdgeTriple> edges_;
  bool weighted_ = false;
  bool drop_self_loops_ = false;
  Dedup dedup_ = Dedup::None;
};

}  // namespace graffix
