#include "graph/rebuild.hpp"

#include "util/macros.hpp"
#include "util/parallel.hpp"
#include "util/prefix_sum.hpp"

namespace graffix {

Csr rebuild_with_extras(const Csr& base,
                        std::span<const std::vector<ExtraArc>> extra) {
  const NodeId n = base.num_slots();
  GRAFFIX_CHECK(extra.empty() || extra.size() == n,
                "extra-arc list count %zu != slot count %u", extra.size(), n);
  const bool weighted = base.has_weights();

  std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
  parallel_for(NodeId{0}, n, [&](NodeId u) {
    offsets[u] = base.degree(u) + (extra.empty() ? 0 : extra[u].size());
  });
  parallel_exclusive_scan_inplace(std::span<EdgeId>(offsets));

  std::vector<NodeId> targets(offsets.back());
  std::vector<Weight> weights(weighted ? offsets.back() : 0);
  parallel_for_dynamic(NodeId{0}, n, [&](NodeId u) {
    EdgeId pos = offsets[u];
    const auto nbrs = base.neighbors(u);
    const auto wts =
        weighted ? base.edge_weights(u) : std::span<const Weight>{};
    for (std::size_t i = 0; i < nbrs.size(); ++i, ++pos) {
      targets[pos] = nbrs[i];
      if (weighted) weights[pos] = wts[i];
    }
    if (!extra.empty()) {
      for (const ExtraArc& a : extra[u]) {
        targets[pos] = a.dst;
        if (weighted) weights[pos] = a.w;
        ++pos;
      }
    }
  });
  return Csr(std::move(offsets), std::move(targets), std::move(weights),
             {base.holes().begin(), base.holes().end()});
}

Csr rebuild_with_extras(Csr&& base,
                        std::span<const std::vector<ExtraArc>> extra) {
  const NodeId n = base.num_slots();
  GRAFFIX_CHECK(extra.empty() || extra.size() == n,
                "extra-arc list count %zu != slot count %u", extra.size(), n);
  const bool weighted = base.has_weights();
  Csr::OwnedParts parts = std::move(base).take_parts();
  const std::vector<EdgeId>& bofs = parts.offsets;

  std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
  parallel_for(NodeId{0}, n, [&](NodeId u) {
    offsets[u] = (bofs[u + 1] - bofs[u]) +
                 (extra.empty() ? 0 : extra[u].size());
  });
  parallel_exclusive_scan_inplace(std::span<EdgeId>(offsets));

  std::vector<NodeId> targets(offsets.back());
  parallel_for_dynamic(NodeId{0}, n, [&](NodeId u) {
    EdgeId pos = offsets[u];
    for (EdgeId e = bofs[u]; e < bofs[u + 1]; ++e, ++pos) {
      targets[pos] = parts.targets[e];
    }
    if (!extra.empty()) {
      for (const ExtraArc& a : extra[u]) {
        targets[pos++] = a.dst;
      }
    }
  });
  // Staggered free: the base targets die BEFORE the new weights array
  // exists, so the two edge arrays never coexist twice over — this is
  // the overload's whole point.
  std::vector<NodeId>().swap(parts.targets);

  std::vector<Weight> weights(weighted ? offsets.back() : 0);
  if (weighted) {
    parallel_for_dynamic(NodeId{0}, n, [&](NodeId u) {
      EdgeId pos = offsets[u];
      for (EdgeId e = bofs[u]; e < bofs[u + 1]; ++e, ++pos) {
        weights[pos] = parts.weights[e];
      }
      if (!extra.empty()) {
        for (const ExtraArc& a : extra[u]) {
          weights[pos++] = a.w;
        }
      }
    });
    std::vector<Weight>().swap(parts.weights);
  }
  return Csr(std::move(offsets), std::move(targets), std::move(weights),
             std::move(parts.holes));
}

Csr rebuild_from_adjacency(std::span<const std::vector<ExtraArc>> adj,
                           bool weighted, std::vector<std::uint8_t> holes) {
  const auto n = static_cast<NodeId>(adj.size());
  GRAFFIX_CHECK(holes.empty() || holes.size() == adj.size(),
                "hole mask size %zu != slot count %u", holes.size(), n);

  std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
  parallel_for(NodeId{0}, n, [&](NodeId u) { offsets[u] = adj[u].size(); });
  parallel_exclusive_scan_inplace(std::span<EdgeId>(offsets));

  std::vector<NodeId> targets(offsets.back());
  std::vector<Weight> weights(weighted ? offsets.back() : 0);
  parallel_for_dynamic(NodeId{0}, n, [&](NodeId u) {
    EdgeId pos = offsets[u];
    for (const ExtraArc& a : adj[u]) {
      targets[pos] = a.dst;
      if (weighted) weights[pos] = a.w;
      ++pos;
    }
  });
  return Csr(std::move(offsets), std::move(targets), std::move(weights),
             std::move(holes));
}

}  // namespace graffix
