// Induced-subgraph extraction: a compact Csr over a node subset, with
// the id mapping to go back and forth. Used by cluster tooling and handy
// for users dissecting a transform's output (e.g. pulling one
// shared-memory cluster out for inspection).
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace graffix {

struct Subgraph {
  Csr graph;                        // local ids 0..nodes.size()-1
  std::vector<NodeId> global_of_local;  // local -> original slot
  std::vector<NodeId> local_of_global;  // original slot -> local (or
                                        // kInvalidNode if not a member)

  [[nodiscard]] NodeId to_local(NodeId global) const {
    return local_of_global[global];
  }
  [[nodiscard]] NodeId to_global(NodeId local) const {
    return global_of_local[local];
  }
};

/// Extracts the subgraph induced on `nodes` (edges with both endpoints in
/// the set; weights preserved; duplicate members ignored). Hole slots may
/// not be members.
[[nodiscard]] Subgraph induced_subgraph(const Csr& graph,
                                        std::span<const NodeId> nodes);

}  // namespace graffix
