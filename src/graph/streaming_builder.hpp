// Streaming CSR construction: build a Csr from a chunked edge stream
// without ever materializing the whole-graph triple list.
//
// The materializing path (GraphBuilder) holds every EdgeTriple (16 B per
// edge) alongside the arrays it is building — roughly 3x the final graph
// footprint in transient memory, which is what caps the repo at
// scale ~16 while the paper runs scale-26-class inputs. The streaming
// path replays the edge stream twice through the deterministic
// count–scan–scatter discipline (DESIGN.md §7/§9):
//
//   pass 1  count()    per-source degree histogram (self-loops filtered)
//           finish_counts()  exclusive scan -> offsets, allocate arrays
//   pass 2  scatter()  cursor-walk each chunk into its final edge range
//           finish()   parallel per-row sort (+ dedup compaction) -> Csr
//
// Peak transient memory is the final arrays plus one chunk buffer plus
// an n-entry cursor (drawn from the ScratchArena) — about 1x the final
// graph instead of 3x.
//
// Determinism contract: the result is BYTE-IDENTICAL to
// GraphBuilder::build() fed the concatenated stream, for any chunk size
// and any thread count. The scatter is a serial cursor walk over the
// stream (placement independent of chunking), and the per-row sort uses
// the same (dst, weight) order the materializing path's global
// (src, dst, weight) sort induces within a row; elements that compare
// equal are bitwise-identical triples, so unstable sorting cannot
// diverge. tests/streaming_build_test.cpp pins this differentially over
// every Table-1 generator at 1/2/8 threads and chunk sizes
// {1, 4096, whole-graph}.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "util/arena.hpp"
#include "util/types.hpp"

namespace graffix {

/// Default chunk size for the generators' streaming conveniences:
/// 2^20 edges = 16 MiB of staged triples, large enough to amortize the
/// per-chunk sink dispatch, small next to any paper-scale graph.
inline constexpr std::size_t kDefaultStreamChunk = std::size_t{1} << 20;

/// Construction options mirroring the GraphBuilder knobs the generators
/// use; semantics (and output bytes) match GraphBuilder exactly.
struct StreamingCsrOptions {
  bool weighted = false;
  bool drop_self_loops = false;
  GraphBuilder::Dedup dedup = GraphBuilder::Dedup::None;
};

class StreamingCsrBuilder {
 public:
  explicit StreamingCsrBuilder(NodeId num_nodes,
                               const StreamingCsrOptions& options = {});

  /// Pass 1: accumulate per-source degrees for one chunk of the stream.
  void count(std::span<const EdgeTriple> chunk);

  /// Ends pass 1: scans counts into offsets and allocates the edge
  /// arrays. After this, the SAME stream must be replayed via scatter().
  void finish_counts();

  /// Pass 2: place one chunk of the (replayed) stream into its final
  /// edge ranges. Chunks must arrive in the same order and with the
  /// same contents as pass 1 (any chunk *boundaries* are fine).
  void scatter(std::span<const EdgeTriple> chunk);

  /// Sorts each row, applies dedup, and returns the Csr. The builder is
  /// consumed.
  [[nodiscard]] Csr finish();

  [[nodiscard]] NodeId node_count() const { return num_nodes_; }
  /// Edges accepted so far by the current pass (post self-loop filter).
  [[nodiscard]] EdgeId edge_count() const {
    return stage_ == Stage::Counting ? counted_ : scattered_;
  }

 private:
  enum class Stage { Counting, Scattering, Finished };

  NodeId num_nodes_;
  StreamingCsrOptions options_;
  Stage stage_ = Stage::Counting;
  EdgeId counted_ = 0;
  EdgeId scattered_ = 0;
  std::vector<EdgeId> offsets_;    // counts during pass 1, offsets after
  ArenaBuffer<EdgeId> cursor_;     // per-source write position, pass 2
  std::vector<NodeId> targets_;
  std::vector<Weight> weights_;
};

/// A replayable edge stream: invoked with a sink, emits the stream as
/// consecutive chunks. build_streaming_csr calls it twice (count pass,
/// scatter pass); both invocations must produce the identical stream —
/// the generators' emit_* APIs guarantee this by re-deriving every
/// per-block RNG from the seed.
using EdgeEmitter = std::function<void(const EdgeSink&)>;

/// Drives the two-pass build end to end.
[[nodiscard]] Csr build_streaming_csr(NodeId num_nodes,
                                      const StreamingCsrOptions& options,
                                      const EdgeEmitter& emit);

}  // namespace graffix
