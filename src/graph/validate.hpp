// Structural validation of Csr instances. The Graffix transforms make
// aggressive structural edits (holes, replicas, injected edges); every
// transform's output is validated in tests and, cheaply, at bench start.
#pragma once

#include <string>

#include "graph/csr.hpp"

namespace graffix {

struct ValidationReport {
  bool ok = true;
  std::string message;  // first violation found, empty when ok
};

/// Checks: monotone offsets, targets in range, holes have zero out-degree,
/// no edge points *at* a hole, weights finite and non-negative when present.
[[nodiscard]] ValidationReport validate_graph(const Csr& graph);

/// True when the GRAFFIX_VALIDATE environment variable is set to a
/// non-empty value other than "0". Gates the cheap runtime complement to
/// graffix-lint: transforms and Pipeline re-validate their output after
/// every phase and abort with the phase name on violation (DESIGN.md §8).
/// Read per call (not cached) so tests can toggle it.
[[nodiscard]] bool validation_enabled();

}  // namespace graffix
