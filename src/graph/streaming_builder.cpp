#include "graph/streaming_builder.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/macros.hpp"
#include "util/parallel.hpp"
#include "util/prefix_sum.hpp"

namespace graffix {

namespace {
// Row-sort scratch element; a plain aggregate (unlike std::pair) so it
// qualifies for ArenaBuffer's trivially-copyable storage.
struct Arc {
  NodeId dst;
  Weight weight;
};
}  // namespace

StreamingCsrBuilder::StreamingCsrBuilder(NodeId num_nodes,
                                         const StreamingCsrOptions& options)
    : num_nodes_(num_nodes),
      options_(options),
      offsets_(static_cast<std::size_t>(num_nodes) + 1, 0) {}

void StreamingCsrBuilder::count(std::span<const EdgeTriple> chunk) {
  GRAFFIX_CHECK(stage_ == Stage::Counting,
                "count() after finish_counts(); replay order violated");
  for (const EdgeTriple& e : chunk) {
    GRAFFIX_DCHECK(e.src < num_nodes_ && e.dst < num_nodes_,
                   "edge (%u,%u) out of range (n=%u)", e.src, e.dst,
                   num_nodes_);
    if (options_.drop_self_loops && e.src == e.dst) continue;
    ++offsets_[e.src];
    ++counted_;
  }
}

void StreamingCsrBuilder::finish_counts() {
  GRAFFIX_CHECK(stage_ == Stage::Counting, "finish_counts() called twice");
  stage_ = Stage::Scattering;
  parallel_exclusive_scan_inplace(std::span<EdgeId>(offsets_));
  GRAFFIX_CHECK(offsets_.back() == counted_, "scan total %llu != counted %llu",
                static_cast<unsigned long long>(offsets_.back()),
                static_cast<unsigned long long>(counted_));
  targets_.resize(counted_);
  if (options_.weighted) weights_.resize(counted_);
  cursor_ = ArenaBuffer<EdgeId>(num_nodes_);
  parallel_for(NodeId{0}, num_nodes_,
               [&](NodeId u) { cursor_[u] = offsets_[u]; });
}

void StreamingCsrBuilder::scatter(std::span<const EdgeTriple> chunk) {
  GRAFFIX_CHECK(stage_ == Stage::Scattering,
                "scatter() before finish_counts() or after finish()");
  // Serial cursor walk: each edge's final slot is a pure function of the
  // stream prefix, so placement is independent of chunk boundaries and
  // thread count (the rows are canonicalized by sorting in finish()
  // anyway; this keeps even the pre-sort arrays deterministic).
  const bool weighted = options_.weighted;
  const bool drop = options_.drop_self_loops;
  for (const EdgeTriple& e : chunk) {
    if (drop && e.src == e.dst) continue;
    GRAFFIX_DCHECK(e.src < num_nodes_, "src %u out of range", e.src);
    const EdgeId pos = cursor_[e.src]++;
    targets_[pos] = e.dst;
    if (weighted) weights_[pos] = e.weight;
    ++scattered_;
  }
}

Csr StreamingCsrBuilder::finish() {
  GRAFFIX_CHECK(stage_ == Stage::Scattering, "finish() before scatter pass");
  stage_ = Stage::Finished;
  GRAFFIX_CHECK(scattered_ == counted_,
                "scatter pass saw %llu edges, count pass saw %llu — the two "
                "emitter invocations produced different streams",
                static_cast<unsigned long long>(scattered_),
                static_cast<unsigned long long>(counted_));
  const NodeId n = num_nodes_;
  for (NodeId u = 0; u < n; ++u) {
    GRAFFIX_CHECK(cursor_[u] == offsets_[u + 1],
                  "row %u under/overfilled: cursor %llu vs end %llu", u,
                  static_cast<unsigned long long>(cursor_[u]),
                  static_cast<unsigned long long>(offsets_[u + 1]));
  }
  cursor_.reset();

  const EdgeId m = offsets_.back();
  const bool weighted = options_.weighted;
  const bool dedup = options_.dedup != GraphBuilder::Dedup::None;
  ArenaBuffer<EdgeId> keep;
  if (dedup) keep = ArenaBuffer<EdgeId>(n, EdgeId{0});

  if (m > 0) {
    // Canonicalize each row to the order the materializing path's global
    // (src, dst, weight) sort induces. Tasks cover contiguous row ranges
    // cut at ~equal edge counts (hub rows dominate the work on skewed
    // graphs); each task reuses one arena scratch buffer across its rows.
    const auto workers = static_cast<std::size_t>(effective_workers());
    const std::size_t n_tasks =
        std::min<std::size_t>(n, std::max<std::size_t>(workers * 8, 1));
    std::vector<NodeId> bounds(n_tasks + 1, 0);
    bounds[n_tasks] = n;
    for (std::size_t t = 1; t < n_tasks; ++t) {
      const EdgeId target = m / n_tasks * t;
      const auto it = std::lower_bound(offsets_.begin(),
                                       offsets_.begin() + n, target);
      bounds[t] = static_cast<NodeId>(it - offsets_.begin());
    }
    parallel_tasks(n_tasks, [&](std::size_t t) {
      const NodeId lo = bounds[t];
      const NodeId hi = bounds[t + 1];
      if (weighted) {
        std::size_t max_len = 0;
        for (NodeId u = lo; u < hi; ++u) {
          max_len = std::max<std::size_t>(max_len,
                                          offsets_[u + 1] - offsets_[u]);
        }
        ArenaBuffer<Arc> row(max_len);
        for (NodeId u = lo; u < hi; ++u) {
          const EdgeId begin = offsets_[u];
          const auto len = static_cast<std::size_t>(offsets_[u + 1] - begin);
          if (len > 1) {
            for (std::size_t i = 0; i < len; ++i) {
              row[i] = {targets_[begin + i], weights_[begin + i]};
            }
            // Ties under (dst, weight) are bitwise-identical pairs, so
            // the unstable sort cannot produce divergent arrays.
            std::sort(row.begin(), row.begin() + len,
                      [](const Arc& a, const Arc& b) {
                        if (a.dst != b.dst) return a.dst < b.dst;
                        return a.weight < b.weight;
                      });
            for (std::size_t i = 0; i < len; ++i) {
              targets_[begin + i] = row[i].dst;
              weights_[begin + i] = row[i].weight;
            }
          }
          if (dedup) {
            EdgeId write = 0;
            for (std::size_t i = 0; i < len; ++i) {
              if (i == 0 || targets_[begin + i] != targets_[begin + write - 1]) {
                targets_[begin + write] = targets_[begin + i];
                weights_[begin + write] = weights_[begin + i];
                ++write;
              }
            }
            keep[u] = write;
          }
        }
      } else {
        for (NodeId u = lo; u < hi; ++u) {
          const EdgeId begin = offsets_[u];
          const auto len = static_cast<std::size_t>(offsets_[u + 1] - begin);
          if (len > 1) {
            std::sort(targets_.begin() + static_cast<std::ptrdiff_t>(begin),
                      targets_.begin() +
                          static_cast<std::ptrdiff_t>(begin + len));
          }
          if (dedup) {
            const auto first =
                targets_.begin() + static_cast<std::ptrdiff_t>(begin);
            keep[u] = static_cast<EdgeId>(
                std::unique(first, first + static_cast<std::ptrdiff_t>(len)) -
                first);
          }
        }
      }
    });
  }

  if (dedup) {
    // Left-pack the kept prefixes. Rows only ever move left (write <=
    // their old start), so a single ascending pass is safe in place.
    EdgeId write = 0;
    for (NodeId u = 0; u < n; ++u) {
      const EdgeId start = offsets_[u];
      const EdgeId k = keep[u];
      if (write != start && k > 0) {
        std::memmove(targets_.data() + write, targets_.data() + start,
                     k * sizeof(NodeId));
        if (weighted) {
          std::memmove(weights_.data() + write, weights_.data() + start,
                       k * sizeof(Weight));
        }
      }
      offsets_[u] = write;
      write += k;
    }
    offsets_[n] = write;
    targets_.resize(write);
    targets_.shrink_to_fit();
    if (weighted) {
      weights_.resize(write);
      weights_.shrink_to_fit();
    }
  }

  return Csr(std::move(offsets_), std::move(targets_), std::move(weights_));
}

Csr build_streaming_csr(NodeId num_nodes, const StreamingCsrOptions& options,
                        const EdgeEmitter& emit) {
  StreamingCsrBuilder builder(num_nodes, options);
  emit([&](std::span<const EdgeTriple> chunk) { builder.count(chunk); });
  builder.finish_counts();
  emit([&](std::span<const EdgeTriple> chunk) { builder.scatter(chunk); });
  return builder.finish();
}

}  // namespace graffix
