#include "graph/csr.hpp"

#include <algorithm>
#include <numeric>

#include "graph/rebuild.hpp"
#include "util/arena.hpp"
#include "util/parallel.hpp"
#include "util/prefix_sum.hpp"

namespace graffix {

namespace {

/// Below this edge count the parallel transpose's per-thread histograms
/// cost more than they save; fall back to the single-pass serial path.
constexpr std::size_t kParallelTransposeMinEdges = 1u << 14;

}  // namespace

Csr::Csr(std::vector<EdgeId> offsets, std::vector<NodeId> targets,
         std::vector<Weight> weights, std::vector<std::uint8_t> holes)
    : offsets_(std::move(offsets)),
      targets_(std::move(targets)),
      weights_(std::move(weights)),
      holes_(std::move(holes)) {
  GRAFFIX_CHECK(!offsets_.empty(), "offsets must have at least one entry");
  GRAFFIX_CHECK(offsets_.back() == targets_.size(),
                "offsets/targets mismatch: %llu vs %zu",
                static_cast<unsigned long long>(offsets_.back()),
                targets_.size());
  GRAFFIX_CHECK(weights_.empty() || weights_.size() == targets_.size(),
                "weights size mismatch");
  GRAFFIX_CHECK(holes_.empty() || holes_.size() == offsets_.size() - 1,
                "hole mask size mismatch");
  const NodeId slots = num_slots();
  if (holes_.empty()) {
    num_nodes_ = slots;
  } else {
    NodeId real = 0;
    for (NodeId s = 0; s < slots; ++s) {
      if (holes_[s] == 0) ++real;
    }
    num_nodes_ = real;
  }
}

std::size_t Csr::memory_bytes() const {
  // capacity(), not size(): the vectors own capacity() elements of heap
  // whether or not they are in use, and the bench memory gates compare
  // this number against RSS — undercounting slack would make the 2x
  // peak-memory ceiling look tighter than it is.
  return offsets_.capacity() * sizeof(EdgeId) +
         targets_.capacity() * sizeof(NodeId) +
         weights_.capacity() * sizeof(Weight) +
         holes_.capacity() * sizeof(std::uint8_t);
}

Csr::OwnedParts Csr::take_parts() && {
  OwnedParts parts{std::move(offsets_), std::move(targets_),
                   std::move(weights_), std::move(holes_)};
  offsets_.assign(1, 0);  // restore the empty-graph invariant
  targets_.clear();
  weights_.clear();
  holes_.clear();
  num_nodes_ = 0;
  return parts;
}

Csr Csr::transpose() const {
  const NodeId slots = num_slots();
  const std::size_t m = targets_.size();
  // Algorithm selection keys on the workers that can actually run
  // concurrently: the block-histogram path does strictly more work than
  // the serial counting sort, so picking it under an oversubscribed
  // pool (logical threads > cores) would pay its overhead with no
  // parallelism to recoup it. Both paths are bit-identical.
  const int threads = effective_workers();

  if (threads <= 1 || m < kParallelTransposeMinEdges) {
    // Serial counting sort: within each reversed row, arcs appear in
    // increasing source order (and original edge order per source).
    std::vector<EdgeId> counts(static_cast<std::size_t>(slots) + 1, 0);
    for (NodeId t : targets_) counts[static_cast<std::size_t>(t) + 1]++;
    std::partial_sum(counts.begin(), counts.end(), counts.begin());
    std::vector<NodeId> rtargets(m);
    std::vector<Weight> rweights(weights_.empty() ? 0 : m);
    ArenaBuffer<EdgeId> cursor(slots);
    std::copy(counts.begin(), counts.end() - 1, cursor.begin());
    for (NodeId u = 0; u < slots; ++u) {
      const EdgeId lo = offsets_[u];
      const EdgeId hi = offsets_[u + 1];
      for (EdgeId e = lo; e < hi; ++e) {
        const NodeId v = targets_[e];
        const EdgeId pos = cursor[v]++;
        rtargets[pos] = u;
        if (!rweights.empty()) rweights[pos] = weights_[e];
      }
    }
    return Csr(std::move(counts), std::move(rtargets), std::move(rweights),
               holes_);
  }

  // Parallel counting sort over contiguous source blocks. Per-(block,
  // target) histograms fix every edge's final position before the
  // scatter, so the output is bit-identical to the serial path for any
  // thread count. Work is indexed by block id (not thread id) so the
  // result does not depend on how OpenMP sizes the team.
  const auto T = static_cast<std::size_t>(threads);
  const std::size_t chunk = (static_cast<std::size_t>(slots) + T - 1) / T;
  const auto block_range = [&](std::size_t b) {
    const auto lo = static_cast<NodeId>(
        std::min(b * chunk, static_cast<std::size_t>(slots)));
    const auto hi = static_cast<NodeId>(
        std::min(lo + chunk, static_cast<std::size_t>(slots)));
    return std::pair<NodeId, NodeId>{lo, hi};
  };
  // Arena-pooled: this T*slots histogram is the transpose's dominant
  // scratch and is re-acquired on every call in the transform pipeline.
  ArenaBuffer<EdgeId> block_counts(T * slots, EdgeId{0});
  std::vector<EdgeId> offsets(static_cast<std::size_t>(slots) + 1, 0);
  std::vector<NodeId> rtargets(m);
  std::vector<Weight> rweights(weights_.empty() ? 0 : m);

  parallel_for(std::size_t{0}, T, [&](std::size_t b) {
    const auto [lo, hi] = block_range(b);
    EdgeId* counts = block_counts.data() + b * slots;
    for (NodeId u = lo; u < hi; ++u) {
      for (EdgeId e = offsets_[u]; e < offsets_[u + 1]; ++e) {
        counts[targets_[e]]++;
      }
    }
  });
  parallel_for(NodeId{0}, slots, [&](NodeId v) {
    EdgeId total = 0;
    for (std::size_t b = 0; b < T; ++b) {
      total += block_counts[b * slots + v];
    }
    offsets[v] = total;
  });
  parallel_exclusive_scan_inplace(std::span<EdgeId>(offsets));
  // Convert each block's count into its running write base.
  parallel_for(NodeId{0}, slots, [&](NodeId v) {
    EdgeId running = offsets[v];
    for (std::size_t b = 0; b < T; ++b) {
      const EdgeId c = block_counts[b * slots + v];
      block_counts[b * slots + v] = running;
      running += c;
    }
  });
  parallel_for(std::size_t{0}, T, [&](std::size_t b) {
    const auto [lo, hi] = block_range(b);
    EdgeId* cursor = block_counts.data() + b * slots;
    for (NodeId u = lo; u < hi; ++u) {
      for (EdgeId e = offsets_[u]; e < offsets_[u + 1]; ++e) {
        const NodeId v = targets_[e];
        const EdgeId pos = cursor[v]++;
        rtargets[pos] = u;
        if (!rweights.empty()) rweights[pos] = weights_[e];
      }
    }
  });
  return Csr(std::move(offsets), std::move(rtargets), std::move(rweights),
             holes_);
}

Csr Csr::symmetrized() const {
  const NodeId slots = num_slots();
  const bool weighted = has_weights();
  // Row u of the undirected view = out-neighbors of u plus in-neighbors
  // of u (from the transpose), sorted by (dst, weight) with duplicate
  // destinations collapsed onto the cheapest arc — the same (src, dst,
  // weight) order and KeepMinWeight dedup GraphBuilder would produce.
  const Csr rev = transpose();
  std::vector<std::vector<ExtraArc>> und(slots);
  parallel_for_dynamic(NodeId{0}, slots, [&](NodeId u) {
    auto& list = und[u];
    const auto out = neighbors(u);
    const auto in = rev.neighbors(u);
    list.reserve(out.size() + in.size());
    const auto out_w = weighted ? edge_weights(u) : std::span<const Weight>{};
    const auto in_w = weighted ? rev.edge_weights(u) : std::span<const Weight>{};
    for (std::size_t i = 0; i < out.size(); ++i) {
      list.push_back({out[i], weighted ? out_w[i] : Weight{1}});
    }
    for (std::size_t i = 0; i < in.size(); ++i) {
      list.push_back({in[i], weighted ? in_w[i] : Weight{1}});
    }
    std::sort(list.begin(), list.end(), [](const ExtraArc& a, const ExtraArc& b) {
      if (a.dst != b.dst) return a.dst < b.dst;
      return a.w < b.w;
    });
    list.erase(std::unique(list.begin(), list.end(),
                           [](const ExtraArc& a, const ExtraArc& b) {
                             return a.dst == b.dst;
                           }),
               list.end());
  });
  // Hole rows have no arcs in either direction (validate() forbids real
  // nodes pointing at holes upstream), so the mask carries over as-is.
  return rebuild_from_adjacency(und, weighted, {holes_.begin(), holes_.end()});
}

}  // namespace graffix
