#include "graph/csr.hpp"

#include <algorithm>
#include <numeric>

#include "graph/builder.hpp"
#include "util/parallel.hpp"

namespace graffix {

Csr::Csr(std::vector<EdgeId> offsets, std::vector<NodeId> targets,
         std::vector<Weight> weights, std::vector<std::uint8_t> holes)
    : offsets_(std::move(offsets)),
      targets_(std::move(targets)),
      weights_(std::move(weights)),
      holes_(std::move(holes)) {
  GRAFFIX_CHECK(!offsets_.empty(), "offsets must have at least one entry");
  GRAFFIX_CHECK(offsets_.back() == targets_.size(),
                "offsets/targets mismatch: %llu vs %zu",
                static_cast<unsigned long long>(offsets_.back()),
                targets_.size());
  GRAFFIX_CHECK(weights_.empty() || weights_.size() == targets_.size(),
                "weights size mismatch");
  GRAFFIX_CHECK(holes_.empty() || holes_.size() == offsets_.size() - 1,
                "hole mask size mismatch");
  const NodeId slots = num_slots();
  if (holes_.empty()) {
    num_nodes_ = slots;
  } else {
    NodeId real = 0;
    for (NodeId s = 0; s < slots; ++s) {
      if (holes_[s] == 0) ++real;
    }
    num_nodes_ = real;
  }
}

std::size_t Csr::memory_bytes() const {
  return offsets_.size() * sizeof(EdgeId) + targets_.size() * sizeof(NodeId) +
         weights_.size() * sizeof(Weight) + holes_.size();
}

Csr Csr::transpose() const {
  const NodeId slots = num_slots();
  std::vector<EdgeId> counts(static_cast<std::size_t>(slots) + 1, 0);
  for (NodeId t : targets_) counts[static_cast<std::size_t>(t) + 1]++;
  std::partial_sum(counts.begin(), counts.end(), counts.begin());
  std::vector<NodeId> rtargets(targets_.size());
  std::vector<Weight> rweights(weights_.empty() ? 0 : targets_.size());
  std::vector<EdgeId> cursor(counts.begin(), counts.end() - 1);
  for (NodeId u = 0; u < slots; ++u) {
    const EdgeId lo = offsets_[u];
    const EdgeId hi = offsets_[u + 1];
    for (EdgeId e = lo; e < hi; ++e) {
      const NodeId v = targets_[e];
      const EdgeId pos = cursor[v]++;
      rtargets[pos] = u;
      if (!rweights.empty()) rweights[pos] = weights_[e];
    }
  }
  return Csr(std::move(counts), std::move(rtargets), std::move(rweights),
             holes_);
}

Csr Csr::symmetrized() const {
  GraphBuilder builder(num_slots());
  builder.set_weighted(has_weights());
  const NodeId slots = num_slots();
  for (NodeId u = 0; u < slots; ++u) {
    const EdgeId lo = offsets_[u];
    const EdgeId hi = offsets_[u + 1];
    for (EdgeId e = lo; e < hi; ++e) {
      const NodeId v = targets_[e];
      const Weight w = has_weights() ? weights_[e] : Weight{1};
      builder.add_edge(u, v, w);
      builder.add_edge(v, u, w);
    }
  }
  builder.set_dedup(GraphBuilder::Dedup::KeepMinWeight);
  Csr sym = builder.build();
  // Re-attach the hole mask: symmetrization never adds edges to holes'
  // adjacency unless a real node pointed at a hole slot, which validate()
  // forbids upstream.
  return Csr(std::vector<EdgeId>(sym.offsets().begin(), sym.offsets().end()),
             std::vector<NodeId>(sym.targets().begin(), sym.targets().end()),
             std::vector<Weight>(sym.weights().begin(), sym.weights().end()),
             holes_);
}

}  // namespace graffix
