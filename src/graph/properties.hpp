// Structural graph properties used by the Graffix transforms and the
// experiment harness: degree statistics, local clustering coefficients
// (§3 drives cluster selection off these), BFS levels, and a pseudo-
// diameter estimate (the shared-memory technique sizes its inner
// iteration count t from subgraph diameters).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace graffix {

struct DegreeStats {
  NodeId min = 0;
  NodeId max = 0;
  double mean = 0.0;
  double stddev = 0.0;
};

/// Out-degree statistics over non-hole slots.
[[nodiscard]] DegreeStats degree_stats(const Csr& graph);

/// Local clustering coefficient of every slot (holes get 0). The graph is
/// treated as undirected, per §3 of the paper. For nodes whose degree
/// exceeds degree_cap, neighbors are subsampled deterministically to bound
/// the O(d^2) triangle check on power-law hubs.
[[nodiscard]] std::vector<double> clustering_coefficients(
    const Csr& graph, NodeId degree_cap = 128);

/// Mean clustering coefficient over non-hole slots.
[[nodiscard]] double average_clustering_coefficient(
    std::span<const double> cc, const Csr& graph);

/// BFS levels from a single source over out-edges; unreachable slots and
/// holes get kInvalidNode... levels fit in NodeId.
[[nodiscard]] std::vector<NodeId> bfs_levels(const Csr& graph, NodeId source);

/// Pseudo-diameter via double sweep from the given seed.
[[nodiscard]] NodeId pseudo_diameter(const Csr& graph, NodeId seed = 0);

/// Exact diameter of a small subgraph induced on `nodes` (BFS from each
/// member, edges restricted to the member set). Used to size the shared-
/// memory inner iteration count t ~ 2 * diameter (§3).
[[nodiscard]] NodeId induced_subgraph_diameter(const Csr& graph,
                                               std::span<const NodeId> nodes);

/// Number of weakly connected components (undirected view).
[[nodiscard]] NodeId weakly_connected_components(const Csr& graph);

/// Power-of-two degree histogram over non-hole slots: bucket[i] counts
/// nodes with degree in [2^(i-1), 2^i) (bucket 0 = degree 0). Used by
/// the stats tooling to eyeball skew — a power-law graph has a long,
/// slowly-decaying tail; ER and road graphs concentrate in 1-2 buckets.
[[nodiscard]] std::vector<NodeId> degree_histogram(const Csr& graph);

/// Quantiles (e.g. {0.5, 0.9, 0.99}) of a per-node metric over non-hole
/// slots, by sorting a copy. Values for hole slots are ignored.
[[nodiscard]] std::vector<double> metric_quantiles(
    const Csr& graph, std::span<const double> per_slot,
    std::span<const double> quantiles);

}  // namespace graffix
