#include "graph/properties.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "util/parallel.hpp"

namespace graffix {

DegreeStats degree_stats(const Csr& graph) {
  DegreeStats stats;
  const NodeId slots = graph.num_slots();
  if (graph.num_nodes() == 0) return stats;
  stats.min = kInvalidNode;
  double sum = 0.0, sum_sq = 0.0;
  NodeId count = 0;
  for (NodeId s = 0; s < slots; ++s) {
    if (graph.is_hole(s)) continue;
    const NodeId d = graph.degree(s);
    stats.min = std::min(stats.min, d);
    stats.max = std::max(stats.max, d);
    sum += d;
    sum_sq += static_cast<double>(d) * d;
    ++count;
  }
  stats.mean = sum / count;
  stats.stddev = std::sqrt(std::max(0.0, sum_sq / count - stats.mean * stats.mean));
  return stats;
}

std::vector<double> clustering_coefficients(const Csr& graph,
                                            NodeId degree_cap) {
  const Csr und = graph.symmetrized();
  const NodeId slots = und.num_slots();
  std::vector<double> cc(slots, 0.0);

  // Sorted adjacency for O(log d) membership tests.
  // und comes from GraphBuilder, whose output is sorted by (src, dst).
  parallel_for_dynamic(NodeId{0}, slots, [&](NodeId u) {
    if (und.is_hole(u)) return;
    auto nbrs = und.neighbors(u);
    // Drop self loops from the count.
    std::vector<NodeId> uniq;
    // graffix-lint: allow(R6) per-vertex neighbor scratch, degree-bounded; lives only for this task
    uniq.reserve(nbrs.size());
    for (NodeId v : nbrs) {
      // graffix-lint: allow(R6) append stays within the reserve above
      if (v != u && (uniq.empty() || uniq.back() != v)) uniq.push_back(v);
    }
    NodeId d = static_cast<NodeId>(uniq.size());
    if (d < 2) return;
    // Deterministic subsample for hubs: take a strided subset.
    std::vector<NodeId> sample;
    if (d > degree_cap) {
      // graffix-lint: allow(R6) hub subsample scratch, capped at degree_cap; lives only for this task
      sample.reserve(degree_cap);
      const double stride = static_cast<double>(d) / degree_cap;
      for (NodeId i = 0; i < degree_cap; ++i) {
        // graffix-lint: allow(R6) append stays within the reserve above
        sample.push_back(uniq[static_cast<std::size_t>(i * stride)]);
      }
      uniq.swap(sample);
      d = degree_cap;
    }
    std::uint64_t links = 0;
    for (NodeId i = 0; i < d; ++i) {
      auto vn = und.neighbors(uniq[i]);
      for (NodeId j = i + 1; j < d; ++j) {
        if (std::binary_search(vn.begin(), vn.end(), uniq[j])) ++links;
      }
    }
    cc[u] = 2.0 * static_cast<double>(links) /
            (static_cast<double>(d) * (d - 1));
  });
  return cc;
}

double average_clustering_coefficient(std::span<const double> cc,
                                      const Csr& graph) {
  double sum = 0.0;
  NodeId count = 0;
  for (NodeId s = 0; s < graph.num_slots(); ++s) {
    if (graph.is_hole(s)) continue;
    sum += cc[s];
    ++count;
  }
  return count == 0 ? 0.0 : sum / count;
}

std::vector<NodeId> bfs_levels(const Csr& graph, NodeId source) {
  const NodeId slots = graph.num_slots();
  std::vector<NodeId> level(slots, kInvalidNode);
  GRAFFIX_CHECK(source < slots && !graph.is_hole(source),
                "bad BFS source %u", source);
  std::vector<NodeId> frontier{source};
  level[source] = 0;
  NodeId depth = 0;
  while (!frontier.empty()) {
    ++depth;
    std::vector<NodeId> next;
    for (NodeId u : frontier) {
      for (NodeId v : graph.neighbors(u)) {
        if (level[v] == kInvalidNode) {
          level[v] = depth;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return level;
}

NodeId pseudo_diameter(const Csr& graph, NodeId seed) {
  if (graph.num_nodes() == 0) return 0;
  const NodeId slots = graph.num_slots();
  while (seed < slots && graph.is_hole(seed)) ++seed;
  if (seed >= slots) return 0;
  const Csr und = graph.symmetrized();

  NodeId best = 0;
  NodeId start = seed;
  for (int sweep = 0; sweep < 2; ++sweep) {
    auto levels = bfs_levels(und, start);
    NodeId far_node = start, far_level = 0;
    for (NodeId s = 0; s < slots; ++s) {
      if (levels[s] != kInvalidNode && levels[s] > far_level) {
        far_level = levels[s];
        far_node = s;
      }
    }
    best = std::max(best, far_level);
    start = far_node;
  }
  return best;
}

NodeId induced_subgraph_diameter(const Csr& graph,
                                 std::span<const NodeId> nodes) {
  if (nodes.size() <= 1) return 0;
  std::unordered_map<NodeId, NodeId> index;
  index.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    index.emplace(nodes[i], static_cast<NodeId>(i));
  }
  const auto n = static_cast<NodeId>(nodes.size());
  // Build local undirected adjacency.
  std::vector<std::vector<NodeId>> adj(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId v : graph.neighbors(nodes[i])) {
      auto it = index.find(v);
      if (it != index.end() && it->second != i) {
        adj[i].push_back(it->second);
        adj[it->second].push_back(i);
      }
    }
  }
  NodeId diameter = 0;
  std::vector<NodeId> level(n);
  std::vector<NodeId> queue(n);
  for (NodeId src = 0; src < n; ++src) {
    std::fill(level.begin(), level.end(), kInvalidNode);
    level[src] = 0;
    NodeId head = 0, tail = 0;
    queue[tail++] = src;
    while (head < tail) {
      const NodeId u = queue[head++];
      for (NodeId v : adj[u]) {
        if (level[v] == kInvalidNode) {
          level[v] = level[u] + 1;
          diameter = std::max(diameter, level[v]);
          queue[tail++] = v;
        }
      }
    }
  }
  return diameter;
}

std::vector<NodeId> degree_histogram(const Csr& graph) {
  std::vector<NodeId> buckets(1, 0);
  for (NodeId s = 0; s < graph.num_slots(); ++s) {
    if (graph.is_hole(s)) continue;
    const NodeId d = graph.degree(s);
    const std::size_t bucket =
        d == 0 ? 0 : 32 - static_cast<std::size_t>(__builtin_clz(d));
    if (bucket >= buckets.size()) buckets.resize(bucket + 1, 0);
    buckets[bucket]++;
  }
  return buckets;
}

std::vector<double> metric_quantiles(const Csr& graph,
                                     std::span<const double> per_slot,
                                     std::span<const double> quantiles) {
  std::vector<double> values;
  values.reserve(graph.num_nodes());
  for (NodeId s = 0; s < graph.num_slots(); ++s) {
    if (!graph.is_hole(s)) values.push_back(per_slot[s]);
  }
  std::sort(values.begin(), values.end());
  std::vector<double> out;
  out.reserve(quantiles.size());
  for (double q : quantiles) {
    if (values.empty()) {
      out.push_back(0.0);
      continue;
    }
    const auto index = static_cast<std::size_t>(
        std::min<double>(q * static_cast<double>(values.size()),
                         static_cast<double>(values.size() - 1)));
    out.push_back(values[index]);
  }
  return out;
}

NodeId weakly_connected_components(const Csr& graph) {
  const Csr und = graph.symmetrized();
  const NodeId slots = und.num_slots();
  std::vector<std::uint8_t> visited(slots, 0);
  NodeId components = 0;
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < slots; ++s) {
    if (visited[s] || und.is_hole(s)) continue;
    ++components;
    visited[s] = 1;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (NodeId v : und.neighbors(u)) {
        if (!visited[v]) {
          visited[v] = 1;
          stack.push_back(v);
        }
      }
    }
  }
  return components;
}

}  // namespace graffix
