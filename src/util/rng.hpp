// Deterministic, splittable random number generation.
//
// All randomized components (generators, samplers, tie-breaking) draw from
// these engines so that every experiment is reproducible from a single
// 64-bit seed. SplitMix64 is used for seeding/splitting; Pcg32 is the
// workhorse stream generator (small state, good quality, trivially
// per-thread splittable for parallel edge generation).
#pragma once

#include <cstdint>

namespace graffix {

/// SplitMix64: statistically strong 64-bit mixer; ideal for deriving
/// independent seeds for per-thread generators.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// PCG32 (XSH-RR variant): 64-bit state, 32-bit output.
class Pcg32 {
 public:
  constexpr Pcg32() : Pcg32(0x853c49e6748fea9bULL, 0xda3e39cb94b95bdbULL) {}
  constexpr Pcg32(std::uint64_t seed, std::uint64_t stream = 1)
      : state_(0), inc_((stream << 1u) | 1u) {
    next_u32();
    state_ += seed;
    next_u32();
  }

  constexpr std::uint32_t next_u32() {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  constexpr std::uint64_t next_u64() {
    return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  constexpr std::uint32_t next_bounded(std::uint32_t bound) {
    if (bound <= 1) return 0;
    std::uint64_t m = static_cast<std::uint64_t>(next_u32()) * bound;
    auto lo = static_cast<std::uint32_t>(m);
    if (lo < bound) {
      std::uint32_t threshold = (0u - bound) % bound;
      while (lo < threshold) {
        m = static_cast<std::uint64_t>(next_u32()) * bound;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// Uniform double in [0, 1) with 53 random bits.
  constexpr double next_double() {
    return static_cast<double>(next_u64() >> 11) *
           (1.0 / 9007199254740992.0);  // 2^-53
  }

  /// Uniform float in [0, 1).
  constexpr float next_float() {
    return static_cast<float>(next_u32() >> 8) * (1.0f / 16777216.0f);
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Derive the i-th independent generator from a master seed.
inline Pcg32 make_stream(std::uint64_t master_seed, std::uint64_t stream_index) {
  SplitMix64 mixer(master_seed ^ (stream_index * 0x9e3779b97f4a7c15ULL));
  std::uint64_t s = mixer.next();
  return Pcg32(s, mixer.next() | 1u);
}

}  // namespace graffix
