// Exclusive prefix sums — the workhorse of CSR construction and of the
// renumbering / replication transforms.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include <omp.h>

#include "util/parallel.hpp"

namespace graffix {

/// In-place exclusive scan; returns the total sum.
template <typename T>
T exclusive_scan_inplace(std::span<T> values) {
  T running{};
  for (auto& v : values) {
    T next = running + v;
    v = running;
    running = next;
  }
  return running;
}

/// Out-of-place exclusive scan: out[i] = sum of in[0..i). out may have one
/// extra trailing slot which then receives the total.
template <typename T>
T exclusive_scan(std::span<const T> in, std::span<T> out) {
  T running{};
  const std::size_t n = in.size();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = running;
    running += in[i];
  }
  if (out.size() > n) out[n] = running;
  return running;
}

/// Two-pass parallel exclusive scan for large arrays. Deterministic:
/// result is independent of thread count.
template <typename T>
T parallel_exclusive_scan_inplace(std::span<T> values) {
  const std::size_t n = values.size();
  if (n < (1u << 14)) return exclusive_scan_inplace(values);

  // Each member of the team owns exactly one chunk, so the partition
  // count must equal the real team size — and capping it at
  // effective_workers() keeps oversubscribed pools from splitting one
  // core's work into context-switching fragments. The scan result is
  // independent of the partition count either way.
  const int threads = effective_workers();
  std::vector<T> block_sums(static_cast<std::size_t>(threads) + 1, T{});
  const std::size_t chunk = (n + threads - 1) / threads;

#pragma omp parallel num_threads(threads)
  {
    const int t = omp_get_thread_num();
    const std::size_t lo = std::min(static_cast<std::size_t>(t) * chunk, n);
    const std::size_t hi = std::min(lo + chunk, n);
    T local{};
    for (std::size_t i = lo; i < hi; ++i) local += values[i];
    block_sums[static_cast<std::size_t>(t) + 1] = local;
#pragma omp barrier
#pragma omp single
    {
      for (int b = 1; b <= threads; ++b) block_sums[b] += block_sums[b - 1];
    }
    T running = block_sums[static_cast<std::size_t>(t)];
    for (std::size_t i = lo; i < hi; ++i) {
      T next = running + values[i];
      values[i] = running;
      running = next;
    }
  }
  return block_sums.back();
}

}  // namespace graffix
