// Fundamental integer and floating-point types used across Graffix.
//
// Node ids are 32-bit: the paper's largest graph (twitter, 41.6M nodes,
// plus replica slots) fits comfortably, and halving the id width is what
// makes the coalescing story work (more ids per 128B transaction).
// Edge ids are 64-bit since edge counts exceed 2^32 at paper scale.
#pragma once

#include <cstdint>
#include <limits>

namespace graffix {

using NodeId = std::uint32_t;
using EdgeId = std::uint64_t;
using Weight = float;

/// Sentinel for "no node" / unnumbered / hole slots.
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
/// Sentinel distance for unreached vertices.
inline constexpr Weight kInfWeight = std::numeric_limits<Weight>::infinity();

}  // namespace graffix
