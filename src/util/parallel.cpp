#include "util/parallel.hpp"

namespace graffix {

namespace {
int g_override_threads = 0;
/// Hardware default captured before the first override so that
/// set_num_threads(0) can actually restore it (omp_get_max_threads()
/// reflects any prior omp_set_num_threads, so it must be read before
/// the first pin).
int g_default_threads = 0;
}  // namespace

int num_threads() {
  if (g_override_threads > 0) return g_override_threads;
  return omp_get_max_threads();
}

void set_num_threads(int n) {
  if (g_default_threads == 0) g_default_threads = omp_get_max_threads();
  g_override_threads = n > 0 ? n : 0;
  omp_set_num_threads(n > 0 ? n : g_default_threads);
}

bool in_parallel() { return omp_in_parallel() != 0; }

int effective_workers() {
  const int procs = omp_get_num_procs();
  const int threads = num_threads();
  return threads < procs ? threads : procs;
}

}  // namespace graffix
