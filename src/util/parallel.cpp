#include "util/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "util/macros.hpp"

namespace graffix {

namespace {
int g_override_threads = 0;
/// Hardware default captured before the first override so that
/// set_num_threads(0) can actually restore it (omp_get_max_threads()
/// reflects any prior omp_set_num_threads, so it must be read before
/// the first pin).
int g_default_threads = 0;

/// Set while a thread is executing pool tasks: permanently on pool
/// worker threads, and on the caller for the duration of its own
/// dispatch. in_parallel() reads this — omp_in_parallel() cannot see
/// std::thread workers, and the nested-region guards (engine chunking,
/// BC fan-out, prefix-sum policy) rely on in_parallel() being true
/// inside pool task bodies.
thread_local bool tl_pool_worker = false;

/// Persistent worker team behind the parallel_* wrappers.
///
/// Design (and why it is safe):
///  - Workers are spawned lazily up to the widest dispatch seen (minus
///    the caller), parked on a condition variable between jobs, and
///    joined by the singleton's destructor at process exit — no
///    detached threads, and every synchronization edge goes through
///    std primitives, so the pool is fully visible to TSan (unlike
///    libgomp's futex barriers, which need tsan.supp).
///  - A job is a stack-allocated descriptor published under the mutex;
///    `generation_` distinguishes it from the previous job for workers
///    that raced their wakeup. Task indices are claimed with an atomic
///    counter, so scheduling is dynamic and the *caller participates*:
///    it drains the queue alongside the workers. That makes dispatch
///    robust by construction — if no worker ever joins (machine busy,
///    forked child with dead threads), the caller simply runs every
///    task itself and the wait below is a no-op.
///  - Teardown of the descriptor is safe because the caller closes the
///    job (job_ = nullptr, so no new worker can join) and then waits
///    until `active` — the count of workers currently inside the job —
///    drops to zero. A worker's final action on the job is that
///    fetch_sub; the wake-the-caller notify that follows never touches
///    the descriptor.
class WorkerPool {
 public:
  static WorkerPool& instance() {
    static WorkerPool pool;
    return pool;
  }

  void dispatch(std::size_t n_tasks, int width, detail::PoolTask task,
                void* ctx) {
    GRAFFIX_CHECK(!tl_pool_worker,
                  "pool dispatch from inside a pool task: nested parallel "
                  "regions must serialize (check in_parallel())");
    // One job slot: independent top-level dispatchers (e.g. two user
    // threads each driving their own engine) queue here instead of
    // stomping each other's published job. Workers never take this lock.
    std::lock_guard<std::mutex> dispatch_lk(dispatch_m_);
    Job job;
    job.task = task;
    job.ctx = ctx;
    job.n_tasks = n_tasks;
    job.max_helpers = width - 1;
    ensure_workers(job.max_helpers);
    {
      std::lock_guard<std::mutex> lk(m_);
      job_ = &job;
      ++generation_;
    }
    cv_.notify_all();
    // The caller is the first worker; helpers join concurrently.
    tl_pool_worker = true;
    try {
      run_tasks(job);
    } catch (...) {
      tl_pool_worker = false;
      close_and_drain(job);
      throw;
    }
    tl_pool_worker = false;
    close_and_drain(job);
  }

  int spawned() const {
    std::lock_guard<std::mutex> lk(m_);
    return static_cast<int>(threads_.size());
  }

 private:
  struct Job {
    detail::PoolTask task = nullptr;
    void* ctx = nullptr;
    std::size_t n_tasks = 0;
    int max_helpers = 0;
    int joined = 0;  // guarded by m_
    std::atomic<std::size_t> next{0};
    std::atomic<int> active{0};  // helpers currently inside the job
  };

  /// Workers beyond this would thrash any machine we target; also bounds
  /// the spawn that direct pool_dispatch tests can request.
  static constexpr int kMaxWorkers = 64;

  WorkerPool() = default;

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lk(m_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  static void run_tasks(Job& job) {
    std::size_t i;
    while ((i = job.next.fetch_add(1, std::memory_order_relaxed)) <
           job.n_tasks) {
      job.task(job.ctx, i);
    }
  }

  void close_and_drain(Job& job) {
    std::unique_lock<std::mutex> lk(m_);
    job_ = nullptr;
    done_cv_.wait(lk, [&] {
      return job.active.load(std::memory_order_acquire) == 0;
    });
  }

  void ensure_workers(int helpers) {
    if (helpers > kMaxWorkers) helpers = kMaxWorkers;
    std::lock_guard<std::mutex> lk(m_);
    while (static_cast<int>(threads_.size()) < helpers) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  void worker_loop() {
    tl_pool_worker = true;  // pool threads never run anything else
    std::uint64_t seen = 0;
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lk(m_);
        cv_.wait(lk, [&] {
          return shutdown_ || (job_ != nullptr && generation_ != seen);
        });
        if (shutdown_) return;
        seen = generation_;
        if (job_->joined >= job_->max_helpers) continue;
        job = job_;
        ++job->joined;
        job->active.fetch_add(1, std::memory_order_relaxed);
      }
      run_tasks(*job);
      if (job->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last helper out wakes the caller; taking the lock orders this
        // notify after the caller entered its wait.
        std::lock_guard<std::mutex> lk(m_);
        done_cv_.notify_all();
      }
    }
  }

  std::mutex dispatch_m_;  // serializes top-level dispatchers
  mutable std::mutex m_;
  std::condition_variable cv_;       // workers park here between jobs
  std::condition_variable done_cv_;  // caller waits here for helpers
  std::vector<std::thread> threads_;
  Job* job_ = nullptr;         // guarded by m_
  std::uint64_t generation_ = 0;  // guarded by m_
  bool shutdown_ = false;         // guarded by m_
};

}  // namespace

int num_threads() {
  if (g_override_threads > 0) return g_override_threads;
  return omp_get_max_threads();
}

void set_num_threads(int n) {
  if (g_default_threads == 0) g_default_threads = omp_get_max_threads();
  g_override_threads = n > 0 ? n : 0;
  omp_set_num_threads(n > 0 ? n : g_default_threads);
}

bool in_parallel() { return omp_in_parallel() != 0 || tl_pool_worker; }

int effective_workers() {
  const int procs = omp_get_num_procs();
  const int threads = num_threads();
  return threads < procs ? threads : procs;
}

namespace detail {

void pool_dispatch(std::size_t n_tasks, int width, PoolTask task, void* ctx) {
  if (n_tasks == 0) return;
  if (width <= 1 || n_tasks == 1) {
    for (std::size_t i = 0; i < n_tasks; ++i) task(ctx, i);
    return;
  }
  WorkerPool::instance().dispatch(n_tasks, width, task, ctx);
}

bool pool_worker_active() noexcept { return tl_pool_worker; }

int pool_spawned_for_test() noexcept { return WorkerPool::instance().spawned(); }

}  // namespace detail

}  // namespace graffix
