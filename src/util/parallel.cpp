#include "util/parallel.hpp"

namespace graffix {

namespace {
int g_override_threads = 0;
}

int num_threads() {
  if (g_override_threads > 0) return g_override_threads;
  return omp_get_max_threads();
}

void set_num_threads(int n) {
  g_override_threads = n;
  if (n > 0) omp_set_num_threads(n);
}

}  // namespace graffix
