#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace graffix {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void vlog(LogLevel level, const char* fmt, std::va_list args) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::fprintf(stderr, "[graffix %s] ", level_tag(level));
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}
}  // namespace detail

#define GRAFFIX_DEFINE_LOG(name, level)          \
  void name(const char* fmt, ...) {              \
    std::va_list args;                           \
    va_start(args, fmt);                         \
    detail::vlog(level, fmt, args);              \
    va_end(args);                                \
  }

GRAFFIX_DEFINE_LOG(log_debug, LogLevel::Debug)
GRAFFIX_DEFINE_LOG(log_info, LogLevel::Info)
GRAFFIX_DEFINE_LOG(log_warn, LogLevel::Warn)
GRAFFIX_DEFINE_LOG(log_error, LogLevel::Error)

#undef GRAFFIX_DEFINE_LOG

}  // namespace graffix
