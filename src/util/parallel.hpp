// Structured host parallelism.
//
// Graffix's preprocessing transforms, the exact host algorithms, and the
// SIMT engine's sweep phases are parallelized with these helpers rather
// than raw threading primitives so that grain size, determinism
// requirements, and thread counts are controlled in one place (per the
// repo's HPC guidelines: all parallelism is explicit and scoped; no
// detached threads).
//
// The for-style wrappers dispatch onto a single persistent worker pool
// (util/parallel.cpp): workers are spawned once and parked on a condition
// variable between jobs, so hot paths that launch many small parallel
// regions per iteration (the engine runs one per sweep phase) pay a wake
// instead of a full thread fork/join. The caller always participates as
// the first worker and tasks are claimed with an atomic counter, so an
// idle or dead pool can never stall a dispatch. OpenMP remains only in
// the reduction helpers below (telemetry-only by policy) and in
// util/prefix_sum.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include <omp.h>

namespace graffix {

/// Number of worker threads parallel regions will use.
int num_threads();

/// Override the worker count (0 = hardware default). Used by tests to pin
/// determinism-sensitive paths.
void set_num_threads(int n);

/// True when called from inside an active parallel region — either an
/// OpenMP team or a worker-pool task (including the caller participating
/// in its own dispatch). Nested helpers use this to stay serial instead
/// of oversubscribing: skipping the region entirely avoids dispatch
/// overhead on hot paths (the SIMT engine checks this when its sweeps run
/// under a source-parallel caller).
bool in_parallel();

/// Number of workers that can actually make progress at once:
/// min(num_threads(), processor count). Pinning a pool wider than the
/// machine (the determinism tests do this on purpose) oversubscribes,
/// which never speeds up CPU-bound deterministic work — it only adds
/// context-switch overhead. Fan-out *sizing* decisions (engine sweep
/// chunks, BC source fan-out, bench matrices) use this; outputs are
/// bit-identical either way (DESIGN.md §7), so it only affects speed.
int effective_workers();

/// RAII thread-count pin: sets num_threads(n) for the enclosing scope and
/// restores the hardware default (0) on exit. The determinism tests sweep
/// 1/2/8 workers around code that can ASSERT out mid-scope; a raw
/// set_num_threads pair leaks the pin past the failing test, poisoning
/// every later test in the binary.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(int n) { set_num_threads(n); }
  ~ScopedNumThreads() { set_num_threads(0); }
  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;
};

namespace detail {

/// Type-erased task body: invoked as task(ctx, index) for each claimed
/// index in [0, n_tasks).
using PoolTask = void (*)(void* ctx, std::size_t index);

/// Dispatches indices [0, n_tasks) over the persistent worker pool with
/// at most `width` threads (caller + width-1 pool workers) and returns
/// when every index has been executed. Indices are claimed dynamically
/// with an atomic counter, so bodies may have uneven cost. Must not be
/// called from inside a parallel region (the template wrappers below
/// serialize instead); bodies must not throw from pool workers.
void pool_dispatch(std::size_t n_tasks, int width, PoolTask task, void* ctx);

/// True on a thread currently executing a pool task (workers, and the
/// caller while it participates in its own dispatch).
bool pool_worker_active() noexcept;

/// Worker threads the pool has actually spawned so far (testing only).
int pool_spawned_for_test() noexcept;

}  // namespace detail

/// Runs body(t) for every task index t in [0, n_tasks) on the persistent
/// pool, clamped to effective_workers(). Tasks are claimed dynamically;
/// the body must be safe to run concurrently for distinct indices. This
/// is the building block the engine's sweep phases use directly: each
/// task is one pre-sized chunk of warp blocks.
template <typename Body>
void parallel_tasks(std::size_t n_tasks, Body&& body) {
  if (n_tasks == 0) return;
  const int width = effective_workers();
  if (n_tasks == 1 || width <= 1 || in_parallel()) {
    for (std::size_t i = 0; i < n_tasks; ++i) body(i);
    return;
  }
  using B = std::remove_reference_t<Body>;
  B* ptr = std::addressof(body);
  detail::pool_dispatch(
      n_tasks, width,
      [](void* ctx, std::size_t i) { (*static_cast<B*>(ctx))(i); },
      const_cast<void*>(static_cast<const void*>(ptr)));
}

/// parallel_for over [begin, end) with static partitioning: the range is
/// split into effective_workers() contiguous slices. The body must be
/// safe to run concurrently for distinct indices.
template <typename Index, typename Body>
void parallel_for(Index begin, Index end, Body&& body) {
  const auto n = static_cast<std::int64_t>(end) - static_cast<std::int64_t>(begin);
  if (n <= 0) return;
  const int width = effective_workers();
  if (width <= 1 || n == 1 || in_parallel()) {
    for (std::int64_t i = 0; i < n; ++i) body(static_cast<Index>(begin + i));
    return;
  }
  const auto slices = static_cast<std::int64_t>(width) < n
                          ? static_cast<std::int64_t>(width)
                          : n;
  const std::int64_t per = n / slices;
  const std::int64_t rem = n % slices;
  auto slice_begin = [&](std::int64_t s) {
    return s * per + (s < rem ? s : rem);
  };
  parallel_tasks(static_cast<std::size_t>(slices), [&](std::size_t s) {
    const auto t = static_cast<std::int64_t>(s);
    const std::int64_t hi = slice_begin(t + 1);
    for (std::int64_t i = slice_begin(t); i < hi; ++i) {
      body(static_cast<Index>(begin + i));
    }
  });
}

/// parallel_for with dynamic scheduling for irregular per-index work
/// (e.g. neighbor enumeration over skewed degree distributions): the
/// range is cut into grain-sized tasks claimed dynamically.
template <typename Index, typename Body>
void parallel_for_dynamic(Index begin, Index end, Body&& body,
                          std::int64_t grain = 256) {
  const auto n = static_cast<std::int64_t>(end) - static_cast<std::int64_t>(begin);
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  const std::int64_t n_tasks = (n + grain - 1) / grain;
  parallel_tasks(static_cast<std::size_t>(n_tasks), [&](std::size_t c) {
    const std::int64_t lo = static_cast<std::int64_t>(c) * grain;
    const std::int64_t hi = lo + grain < n ? lo + grain : n;
    for (std::int64_t i = lo; i < hi; ++i) {
      body(static_cast<Index>(begin + i));
    }
  });
}

/// Applies body(item) to every element of an index/work list with
/// dynamic scheduling at the given grain. Thin sugar over
/// parallel_for_dynamic for the batched greedy phases, whose rounds are
/// sets of candidate positions with wildly uneven per-candidate work
/// (grain 1 is the right default there — a batch member can be a hub
/// anchor doing an O(d^2) sibling scan while its neighbor is a no-op).
template <typename List, typename Body>
void parallel_for_each_dynamic(const List& items, Body&& body,
                               std::int64_t grain = 1) {
  parallel_for_dynamic(
      std::size_t{0}, items.size(), [&](std::size_t i) { body(items[i], i); },
      grain);
}

/// Deterministic any-reduction with dynamic scheduling: runs body(i) ->
/// bool over [begin, end) exactly like parallel_for_dynamic and returns
/// whether ANY body returned true. Every body runs (no short-circuit —
/// bodies usually carry the real work); each grain-sized task records
/// its verdict in its own slot and the slots are OR-folded after the
/// join, so the result is a pure function of the bodies, never of which
/// thread observed a flag first. Replaces the relaxed atomic-bool
/// "changed" idiom, which was correct only by grace of the join barrier
/// and invited load/store-ordering mistakes (DESIGN.md §7).
template <typename Index, typename Body>
bool parallel_for_dynamic_any(Index begin, Index end, Body&& body,
                              std::int64_t grain = 256) {
  const auto n =
      static_cast<std::int64_t>(end) - static_cast<std::int64_t>(begin);
  if (n <= 0) return false;
  if (grain < 1) grain = 1;
  const auto n_tasks = static_cast<std::size_t>((n + grain - 1) / grain);
  std::vector<std::uint8_t> hit(n_tasks, 0);
  parallel_tasks(n_tasks, [&](std::size_t c) {
    const std::int64_t lo = static_cast<std::int64_t>(c) * grain;
    const std::int64_t hi = lo + grain < n ? lo + grain : n;
    std::uint8_t h = 0;
    for (std::int64_t i = lo; i < hi; ++i) {
      if (body(static_cast<Index>(begin + i))) h = 1;
    }
    hit[c] = h;
  });
  std::uint8_t any = 0;
  for (const std::uint8_t h : hit) any |= h;
  return any != 0;
}

/// Deterministic segmented append: runs body(i, segment) over
/// [begin, end) in grain-sized tasks, each appending to a private
/// segment vector, then concatenates the segments onto `out` in
/// ascending task order (within a task, in call order). The output
/// order is thus a pure function of task boundaries and the bodies —
/// never of thread scheduling. This is the host-side analogue of the
/// engine SideChannel's per-record append merge (DESIGN.md §7); BFS
/// frontier generation uses it. Bodies run concurrently for distinct
/// tasks and must not touch `out` directly; the single-task / nested /
/// one-worker case appends straight into `out` in the same order.
template <typename Index, typename T, typename Body>
void parallel_append(Index begin, Index end, std::vector<T>& out, Body&& body,
                     std::int64_t grain = 256) {
  const auto n =
      static_cast<std::int64_t>(end) - static_cast<std::int64_t>(begin);
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  const auto n_tasks = static_cast<std::size_t>((n + grain - 1) / grain);
  if (n_tasks == 1 || effective_workers() <= 1 || in_parallel()) {
    for (std::int64_t i = 0; i < n; ++i) {
      body(static_cast<Index>(begin + i), out);
    }
    return;
  }
  std::vector<std::vector<T>> segments(n_tasks);
  parallel_tasks(n_tasks, [&](std::size_t c) {
    std::vector<T>& seg = segments[c];
    const std::int64_t lo = static_cast<std::int64_t>(c) * grain;
    const std::int64_t hi = lo + grain < n ? lo + grain : n;
    for (std::int64_t i = lo; i < hi; ++i) {
      body(static_cast<Index>(begin + i), seg);
    }
  });
  std::size_t total = out.size();
  for (const auto& seg : segments) total += seg.size();
  out.reserve(total);
  for (const auto& seg : segments) {
    out.insert(out.end(), seg.begin(), seg.end());
  }
}

/// Sum-reduction over [begin, end): returns sum of body(i). The
/// reduction order depends on the team, so only timing/telemetry may
/// use this (DESIGN.md §7) — never totals that feed outputs.
template <typename Index, typename Body>
double parallel_reduce_sum(Index begin, Index end, Body&& body) {
  const auto n = static_cast<std::int64_t>(end) - static_cast<std::int64_t>(begin);
  double total = 0.0;
  // graffix-lint: allow(R3) telemetry-only by policy (DESIGN.md §7): this helper may never feed totals into outputs
#pragma omp parallel for schedule(static) reduction(+ : total) \
    num_threads(effective_workers())
  for (std::int64_t i = 0; i < n; ++i) {
    total += body(static_cast<Index>(begin + i));
  }
  return total;
}

/// Max-reduction over [begin, end).
template <typename Index, typename Body>
auto parallel_reduce_max(Index begin, Index end, Body&& body)
    -> decltype(body(begin)) {
  using Value = decltype(body(begin));
  const auto n = static_cast<std::int64_t>(end) - static_cast<std::int64_t>(begin);
  Value best{};
  bool first = true;
#pragma omp parallel num_threads(effective_workers())
  {
    Value local{};
    bool local_first = true;
#pragma omp for schedule(static) nowait
    for (std::int64_t i = 0; i < n; ++i) {
      Value v = body(static_cast<Index>(begin + i));
      if (local_first || v > local) {
        local = v;
        local_first = false;
      }
    }
#pragma omp critical
    {
      if (!local_first && (first || local > best)) {
        best = local;
        first = false;
      }
    }
  }
  return best;
}

}  // namespace graffix
