// Structured host parallelism built on OpenMP.
//
// Graffix's preprocessing transforms and the exact host algorithms are
// parallelized with these helpers rather than raw pragmas so that grain
// size, determinism requirements, and thread counts are controlled in one
// place (per the repo's HPC guidelines: all parallelism is explicit and
// scoped; no detached threads).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include <omp.h>

namespace graffix {

/// Number of worker threads OpenMP will use.
int num_threads();

/// Override the worker count (0 = hardware default). Used by tests to pin
/// determinism-sensitive paths.
void set_num_threads(int n);

/// True when called from inside an active OpenMP parallel region. Nested
/// helpers use this to stay serial instead of oversubscribing: inner
/// regions get single-thread teams by default, but skipping the region
/// entirely avoids the fork/join overhead on hot paths (the SIMT engine
/// checks this when its sweeps run under a source-parallel caller).
bool in_parallel();

/// Number of workers that can actually make progress at once:
/// min(num_threads(), processor count). Pinning a pool wider than the
/// machine (the determinism tests do this on purpose) oversubscribes,
/// which never speeds up CPU-bound deterministic work — it only adds
/// context-switch overhead. Fan-out *sizing* decisions (engine sweep
/// chunks, BC source fan-out, bench matrices) use this; outputs are
/// bit-identical either way (DESIGN.md §7), so it only affects speed.
int effective_workers();

/// parallel_for over [begin, end) with static scheduling. The body must be
/// safe to run concurrently for distinct indices.
///
/// All wrappers cap the actual OpenMP team at effective_workers():
/// callers that partition work by num_threads() logical blocks keep
/// doing so (blocks queue over the smaller team), so outputs never
/// change — only the fork width does.
template <typename Index, typename Body>
void parallel_for(Index begin, Index end, Body&& body) {
  const auto n = static_cast<std::int64_t>(end) - static_cast<std::int64_t>(begin);
  if (n <= 0) return;
#pragma omp parallel for schedule(static) num_threads(effective_workers())
  for (std::int64_t i = 0; i < n; ++i) {
    body(static_cast<Index>(begin + i));
  }
}

/// parallel_for with dynamic scheduling for irregular per-index work
/// (e.g. neighbor enumeration over skewed degree distributions).
template <typename Index, typename Body>
void parallel_for_dynamic(Index begin, Index end, Body&& body,
                          std::int64_t grain = 256) {
  const auto n = static_cast<std::int64_t>(end) - static_cast<std::int64_t>(begin);
  if (n <= 0) return;
#pragma omp parallel for schedule(dynamic, grain) \
    num_threads(effective_workers())
  for (std::int64_t i = 0; i < n; ++i) {
    body(static_cast<Index>(begin + i));
  }
}

/// Applies body(item) to every element of an index/work list with
/// dynamic scheduling at the given grain. Thin sugar over
/// parallel_for_dynamic for the batched greedy phases, whose rounds are
/// sets of candidate positions with wildly uneven per-candidate work
/// (grain 1 is the right default there — a batch member can be a hub
/// anchor doing an O(d^2) sibling scan while its neighbor is a no-op).
template <typename List, typename Body>
void parallel_for_each_dynamic(const List& items, Body&& body,
                               std::int64_t grain = 1) {
  parallel_for_dynamic(
      std::size_t{0}, items.size(), [&](std::size_t i) { body(items[i], i); },
      grain);
}

/// Sum-reduction over [begin, end): returns sum of body(i). The
/// reduction order depends on the team, so only timing/telemetry may
/// use this (DESIGN.md §7) — never totals that feed outputs.
template <typename Index, typename Body>
double parallel_reduce_sum(Index begin, Index end, Body&& body) {
  const auto n = static_cast<std::int64_t>(end) - static_cast<std::int64_t>(begin);
  double total = 0.0;
  // graffix-lint: allow(R3) telemetry-only by policy (DESIGN.md §7): this helper may never feed totals into outputs
#pragma omp parallel for schedule(static) reduction(+ : total) \
    num_threads(effective_workers())
  for (std::int64_t i = 0; i < n; ++i) {
    total += body(static_cast<Index>(begin + i));
  }
  return total;
}

/// Max-reduction over [begin, end).
template <typename Index, typename Body>
auto parallel_reduce_max(Index begin, Index end, Body&& body)
    -> decltype(body(begin)) {
  using Value = decltype(body(begin));
  const auto n = static_cast<std::int64_t>(end) - static_cast<std::int64_t>(begin);
  Value best{};
  bool first = true;
#pragma omp parallel num_threads(effective_workers())
  {
    Value local{};
    bool local_first = true;
#pragma omp for schedule(static) nowait
    for (std::int64_t i = 0; i < n; ++i) {
      Value v = body(static_cast<Index>(begin + i));
      if (local_first || v > local) {
        local = v;
        local_first = false;
      }
    }
#pragma omp critical
    {
      if (!local_first && (first || local > best)) {
        best = local;
        first = false;
      }
    }
  }
  return best;
}

}  // namespace graffix
