// Minimal leveled logger. Bench harnesses set the level from --verbose;
// library code logs at Debug/Info and never writes to stdout (reserved for
// table output).
#pragma once

#include <cstdarg>

namespace graffix {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void vlog(LogLevel level, const char* fmt, std::va_list args);
}

#if defined(__GNUC__)
#define GRAFFIX_PRINTF(a, b) __attribute__((format(printf, a, b)))
#else
#define GRAFFIX_PRINTF(a, b)
#endif

void log_debug(const char* fmt, ...) GRAFFIX_PRINTF(1, 2);
void log_info(const char* fmt, ...) GRAFFIX_PRINTF(1, 2);
void log_warn(const char* fmt, ...) GRAFFIX_PRINTF(1, 2);
void log_error(const char* fmt, ...) GRAFFIX_PRINTF(1, 2);

}  // namespace graffix
