// Pooled scratch allocation and process-memory telemetry.
//
// Paper-scale rebuilds and sweeps are allocation-churn-bound as much as
// compute-bound: every CSR rebuild, transpose, and batched greedy phase
// used to allocate multi-hundred-megabyte scratch, free it, and allocate
// it again on the next call, so the allocator's high-water mark — not the
// live data — set the process footprint, and page faults on the refill
// dominated small runs. ScratchArena keeps those buffers alive between
// uses: released blocks park on per-size-class free lists and the next
// acquire of the same class reuses them, so a steady-state pipeline
// touches the kernel allocator once per distinct high-water size.
//
// Three access styles, all backed by the one process-global pool:
//   - ScratchArena::global().acquire()/release() — raw blocks.
//   - ArenaBuffer<T> — RAII typed scratch span (trivial T only); the
//     default acquire is UNINITIALIZED, the (n, fill) form value-fills.
//   - ArenaVector<T> — std::vector with an arena-backed allocator, for
//     call sites that need vector semantics (growth, assign) but should
//     recycle their backing store across calls.
//
// Telemetry: the pool tracks outstanding bytes and their high-water mark
// (arena_peak_bytes()), and this header also exposes the process RSS
// counters the bench harness stamps into every JSON table
// (peak_rss_bytes/current_rss_bytes), so "how much memory did this
// take" is a recorded receipt rather than a claim. DESIGN.md §9.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

namespace graffix {

class ScratchArena {
 public:
  /// The process-global pool every helper below draws from.
  /// Intentionally leaked (never destroyed): scratch owners with static
  /// storage duration may release after main() returns.
  static ScratchArena& global();

  /// Returns a 64-byte-aligned block of at least `bytes` (rounded up to
  /// the size class), reusing a pooled block when one is available.
  /// Contents are unspecified. bytes == 0 returns nullptr.
  [[nodiscard]] void* acquire(std::size_t bytes);

  /// Returns a block to the pool. `p` must come from acquire() with the
  /// same `bytes` request (the class is re-derived from it).
  void release(void* p, std::size_t bytes) noexcept;

  /// Bytes currently acquired and not yet released.
  [[nodiscard]] std::size_t outstanding_bytes() const;
  /// High-water mark of outstanding_bytes() since construction or the
  /// last reset_peak().
  [[nodiscard]] std::size_t peak_bytes() const;
  /// Bytes parked on the free lists, ready for reuse.
  [[nodiscard]] std::size_t pooled_bytes() const;
  /// Acquires served from the pool vs. from the system allocator.
  [[nodiscard]] std::uint64_t reuse_count() const;
  [[nodiscard]] std::uint64_t alloc_count() const;

  /// Restarts the high-water accounting from the current outstanding
  /// level (per-phase accounting in the benches).
  void reset_peak();

  /// Frees every pooled (idle) block back to the system. Outstanding
  /// blocks are unaffected.
  void trim();

  ScratchArena();
  ~ScratchArena();
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

 private:
  struct Impl;
  Impl* impl_;
};

/// RAII typed scratch buffer drawn from the global pool. Restricted to
/// trivially-copyable, trivially-destructible T: the pool hands back raw
/// recycled storage, so nothing is constructed or destroyed — the
/// default form is UNINITIALIZED and must be fully written before read.
template <typename T>
class ArenaBuffer {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "ArenaBuffer is raw recycled storage; non-trivial types "
                "would skip construction/destruction");

 public:
  ArenaBuffer() = default;

  /// Uninitialized buffer of n elements.
  explicit ArenaBuffer(std::size_t n)
      : data_(static_cast<T*>(ScratchArena::global().acquire(n * sizeof(T)))),
        size_(n) {}

  /// Value-filled buffer of n elements.
  ArenaBuffer(std::size_t n, const T& fill) : ArenaBuffer(n) {
    for (std::size_t i = 0; i < size_; ++i) data_[i] = fill;
  }

  ~ArenaBuffer() { reset(); }

  ArenaBuffer(ArenaBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  ArenaBuffer& operator=(ArenaBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  ArenaBuffer(const ArenaBuffer&) = delete;
  ArenaBuffer& operator=(const ArenaBuffer&) = delete;

  void reset() {
    if (data_ != nullptr) {
      ScratchArena::global().release(data_, size_ * sizeof(T));
      data_ = nullptr;
      size_ = 0;
    }
  }

  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] T* begin() { return data_; }
  [[nodiscard]] T* end() { return data_ + size_; }
  [[nodiscard]] const T* begin() const { return data_; }
  [[nodiscard]] const T* end() const { return data_ + size_; }
  [[nodiscard]] std::span<T> span() { return {data_, size_}; }
  [[nodiscard]] std::span<const T> span() const { return {data_, size_}; }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

/// std allocator adapter over the global pool: vector growth doubles, the
/// pool's power-of-two size classes cache exactly those blocks, so a
/// vector that is destroyed and rebuilt every call (rebuild scratch,
/// batch round lists, engine replay tables) stops round-tripping through
/// the system allocator.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  ArenaAllocator() noexcept = default;
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>&) noexcept {}  // NOLINT

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(ScratchArena::global().acquire(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ScratchArena::global().release(p, n * sizeof(T));
  }

  friend bool operator==(const ArenaAllocator&, const ArenaAllocator&) {
    return true;
  }
  friend bool operator!=(const ArenaAllocator&, const ArenaAllocator&) {
    return false;
  }
};

template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

/// Convenience accessors for the global pool's telemetry.
[[nodiscard]] std::size_t arena_peak_bytes();
[[nodiscard]] std::size_t arena_outstanding_bytes();
[[nodiscard]] std::size_t arena_pooled_bytes();
void arena_reset_peak();

/// Lifetime peak resident-set size of this process in bytes (getrusage
/// ru_maxrss). 0 where the platform offers no counter. Monotone: this
/// never decreases, so per-phase deltas need current_rss_bytes().
[[nodiscard]] std::size_t peak_rss_bytes();

/// Current resident-set size in bytes (/proc/self/statm). 0 where
/// unavailable.
[[nodiscard]] std::size_t current_rss_bytes();

}  // namespace graffix
