// Assertion and checking macros.
//
// GRAFFIX_CHECK is always on (cheap invariant checks at API boundaries);
// GRAFFIX_DCHECK compiles away in release builds and guards hot loops.
#pragma once

#include <cstdio>
#include <cstdlib>

#define GRAFFIX_CHECK(cond, ...)                                          \
  do {                                                                    \
    if (!(cond)) [[unlikely]] {                                           \
      std::fprintf(stderr, "GRAFFIX_CHECK failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__, #cond);                            \
      std::fprintf(stderr, "  " __VA_ARGS__);                             \
      std::fprintf(stderr, "\n");                                         \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define GRAFFIX_DCHECK(cond, ...) \
  do {                            \
  } while (0)
#else
#define GRAFFIX_DCHECK(cond, ...) GRAFFIX_CHECK(cond, __VA_ARGS__)
#endif
