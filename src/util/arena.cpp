#include "util/arena.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <mutex>
#include <new>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif
#if defined(__linux__)
#include <cstdio>
#include <unistd.h>
#endif

#include "util/macros.hpp"

namespace graffix {

namespace {

/// Smallest block the pool hands out; anything under this shares the
/// 256-byte class so tiny vectors do not fragment the lists.
constexpr std::size_t kMinClassBytes = 256;
constexpr std::size_t kAlignment = 64;  // cache line

/// Size class = next power of two >= max(bytes, kMinClassBytes).
std::size_t class_bytes(std::size_t bytes) {
  return std::bit_ceil(std::max(bytes, kMinClassBytes));
}

std::size_t class_index(std::size_t bytes) {
  return static_cast<std::size_t>(std::countr_zero(class_bytes(bytes)));
}

}  // namespace

struct ScratchArena::Impl {
  mutable std::mutex mu;
  // Free lists indexed by log2(class size); 64 covers every possible
  // size_t class.
  std::array<std::vector<void*>, 64> free_lists;
  std::size_t outstanding = 0;
  std::size_t peak = 0;
  std::size_t pooled = 0;
  std::uint64_t reuses = 0;
  std::uint64_t allocs = 0;
};

ScratchArena::ScratchArena() : impl_(new Impl) {}

ScratchArena::~ScratchArena() {
  trim();
  delete impl_;
}

ScratchArena& ScratchArena::global() {
  // Deliberately leaked: ArenaVector members of objects with static
  // storage duration may deallocate during exit, after a function-local
  // static pool would already be gone.
  static ScratchArena* arena = new ScratchArena;
  return *arena;
}

void* ScratchArena::acquire(std::size_t bytes) {
  if (bytes == 0) return nullptr;
  const std::size_t cls = class_bytes(bytes);
  const std::size_t idx = class_index(bytes);
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    auto& list = impl_->free_lists[idx];
    if (!list.empty()) {
      void* p = list.back();
      list.pop_back();
      impl_->pooled -= cls;
      impl_->outstanding += cls;
      impl_->peak = std::max(impl_->peak, impl_->outstanding);
      ++impl_->reuses;
      return p;
    }
    impl_->outstanding += cls;
    impl_->peak = std::max(impl_->peak, impl_->outstanding);
    ++impl_->allocs;
  }
  // System allocation happens outside the lock; on failure the
  // accounting is rolled back before the exception propagates.
  try {
    return ::operator new(cls, std::align_val_t{kAlignment});
  } catch (...) {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->outstanding -= cls;
    throw;
  }
}

void ScratchArena::release(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  const std::size_t cls = class_bytes(bytes);
  const std::size_t idx = class_index(bytes);
  std::lock_guard<std::mutex> lock(impl_->mu);
  GRAFFIX_DCHECK(impl_->outstanding >= cls,
                 "arena release of %zu bytes exceeds outstanding %zu", cls,
                 impl_->outstanding);
  impl_->outstanding -= cls;
  impl_->pooled += cls;
  impl_->free_lists[idx].push_back(p);
}

std::size_t ScratchArena::outstanding_bytes() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->outstanding;
}

std::size_t ScratchArena::peak_bytes() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->peak;
}

std::size_t ScratchArena::pooled_bytes() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->pooled;
}

std::uint64_t ScratchArena::reuse_count() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->reuses;
}

std::uint64_t ScratchArena::alloc_count() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->allocs;
}

void ScratchArena::reset_peak() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->peak = impl_->outstanding;
}

void ScratchArena::trim() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (std::size_t idx = 0; idx < impl_->free_lists.size(); ++idx) {
    auto& list = impl_->free_lists[idx];
    for (void* p : list) {
      ::operator delete(p, std::align_val_t{kAlignment});
    }
    impl_->pooled -= list.size() * (std::size_t{1} << idx);
    list.clear();
  }
}

std::size_t arena_peak_bytes() { return ScratchArena::global().peak_bytes(); }
std::size_t arena_outstanding_bytes() {
  return ScratchArena::global().outstanding_bytes();
}
std::size_t arena_pooled_bytes() {
  return ScratchArena::global().pooled_bytes();
}
void arena_reset_peak() { ScratchArena::global().reset_peak(); }

std::size_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

std::size_t current_rss_bytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long vm_pages = 0, rss_pages = 0;
  const int got = std::fscanf(f, "%llu %llu", &vm_pages, &rss_pages);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<std::size_t>(rss_pages) *
         static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
#else
  return peak_rss_bytes();
#endif
}

}  // namespace graffix
