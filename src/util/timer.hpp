// Wall-clock timing utilities for preprocessing-overhead measurements
// (Table 5) and harness reporting.
#pragma once

#include <chrono>

namespace graffix {

/// Monotonic wall-clock timer. start() resets; seconds() reads elapsed.
class WallTimer {
 public:
  WallTimer() { start(); }

  void start() { begin_ = Clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - begin_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point begin_;
};

/// Accumulates elapsed time into a double on destruction; handy for
/// attributing time to phases across loop iterations.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double& sink) : sink_(sink) {}
  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;
  ~ScopedAccumulator() { sink_ += timer_.seconds(); }

 private:
  double& sink_;
  WallTimer timer_;
};

}  // namespace graffix
