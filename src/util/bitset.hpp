// Fixed-size concurrent bitset for frontier bookkeeping in the parallel
// traversals (BFS forest construction, FW-BW SCC, data-driven sweeps).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace graffix {

/// Bitset supporting concurrent set/test. Clearing is not thread-safe and
/// must happen between parallel phases.
class AtomicBitset {
 public:
  AtomicBitset() = default;
  explicit AtomicBitset(std::size_t bits) { resize(bits); }

  void resize(std::size_t bits) {
    bits_ = bits;
    words_ = std::vector<std::atomic<std::uint64_t>>((bits + 63) / 64);
    clear();
  }

  [[nodiscard]] std::size_t size() const { return bits_; }

  void clear() {
    for (auto& w : words_) w.store(0, std::memory_order_relaxed);
  }

  /// Atomically set bit i; returns true if this call flipped it 0 -> 1.
  bool set(std::size_t i) {
    const std::uint64_t mask = 1ULL << (i & 63);
    const std::uint64_t prev =
        words_[i >> 6].fetch_or(mask, std::memory_order_relaxed);
    return (prev & mask) == 0;
  }

  [[nodiscard]] bool test(std::size_t i) const {
    const std::uint64_t mask = 1ULL << (i & 63);
    return (words_[i >> 6].load(std::memory_order_relaxed) & mask) != 0;
  }

  /// Population count; not synchronized with concurrent writers.
  [[nodiscard]] std::size_t count() const {
    std::size_t total = 0;
    for (const auto& w : words_) {
      total += static_cast<std::size_t>(
          __builtin_popcountll(w.load(std::memory_order_relaxed)));
    }
    return total;
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::atomic<std::uint64_t>> words_;
};

}  // namespace graffix
