#include "gen/road_grid.hpp"

#include <vector>

#include "graph/builder.hpp"
#include "graph/streaming_builder.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"

namespace graffix {

namespace {

/// Serial lattice walk — the single source of truth for both paths.
/// Calls push(e) for every edge in stream order; the RNG draw sequence
/// is fixed by the visit order, so the stream is replayable.
template <typename Push>
void walk_road_grid(const RoadGridParams& params, Push&& push) {
  const NodeId w = params.width;
  const NodeId h = params.height;
  auto id = [w](NodeId x, NodeId y) { return y * w + x; };

  Pcg32 rng = make_stream(params.seed, 0);
  auto add_bidir = [&](NodeId a, NodeId b) {
    const Weight weight =
        params.weighted ? 1.0f + rng.next_float() * (params.max_weight - 1.0f)
                        : 1.0f;
    push(EdgeTriple{a, b, weight});
    push(EdgeTriple{b, a, weight});
  };

  for (NodeId y = 0; y < h; ++y) {
    for (NodeId x = 0; x < w; ++x) {
      const NodeId u = id(x, y);
      if (x + 1 < w && rng.next_double() >= params.removal_fraction) {
        add_bidir(u, id(x + 1, y));
      }
      if (y + 1 < h && rng.next_double() >= params.removal_fraction) {
        add_bidir(u, id(x, y + 1));
      }
      if (x + 1 < w && y + 1 < h &&
          rng.next_double() < params.diagonal_fraction) {
        add_bidir(u, id(x + 1, y + 1));
      }
    }
  }
}

}  // namespace

Csr generate_road_grid(const RoadGridParams& params) {
  const NodeId n = params.width * params.height;
  GraphBuilder builder(n);
  builder.set_weighted(params.weighted);
  // Exact bound: <= 3 bidirectional arcs per cell.
  builder.reserve_edges(static_cast<std::size_t>(n) * 6);
  walk_road_grid(params, [&](const EdgeTriple& e) {
    builder.add_edge(e.src, e.dst, e.weight);
  });
  return builder.build();
}

void emit_road_grid(const RoadGridParams& params, std::size_t chunk_edges,
                    const EdgeSink& sink) {
  const auto n = static_cast<std::size_t>(params.width) * params.height;
  // 0 = whole stream in one span; 6n is the exact upper bound.
  const std::size_t chunk = chunk_edges == 0 ? std::max<std::size_t>(n * 6, 1)
                                             : chunk_edges;
  ArenaBuffer<EdgeTriple> stage(chunk);
  std::size_t len = 0;
  walk_road_grid(params, [&](const EdgeTriple& e) {
    stage[len++] = e;
    if (len == chunk) {
      sink(std::span<const EdgeTriple>(stage.data(), len));
      len = 0;
    }
  });
  if (len > 0) {
    sink(std::span<const EdgeTriple>(stage.data(), len));
  }
}

Csr generate_road_grid_streaming(const RoadGridParams& params,
                                 std::size_t chunk_edges) {
  const NodeId n = params.width * params.height;
  StreamingCsrOptions o;
  o.weighted = params.weighted;
  return build_streaming_csr(n, o, [&](const EdgeSink& sink) {
    emit_road_grid(params, chunk_edges, sink);
  });
}

}  // namespace graffix
