#include "gen/road_grid.hpp"

#include <vector>

#include "graph/builder.hpp"
#include "util/rng.hpp"

namespace graffix {

Csr generate_road_grid(const RoadGridParams& params) {
  const NodeId w = params.width;
  const NodeId h = params.height;
  const NodeId n = w * h;
  auto id = [w](NodeId x, NodeId y) { return y * w + x; };

  GraphBuilder builder(n);
  builder.set_weighted(params.weighted);
  builder.reserve(static_cast<std::size_t>(n) * 5);
  Pcg32 rng = make_stream(params.seed, 0);

  auto add_bidir = [&](NodeId a, NodeId b) {
    const Weight weight =
        params.weighted ? 1.0f + rng.next_float() * (params.max_weight - 1.0f)
                        : 1.0f;
    builder.add_edge(a, b, weight);
    builder.add_edge(b, a, weight);
  };

  for (NodeId y = 0; y < h; ++y) {
    for (NodeId x = 0; x < w; ++x) {
      const NodeId u = id(x, y);
      if (x + 1 < w && rng.next_double() >= params.removal_fraction) {
        add_bidir(u, id(x + 1, y));
      }
      if (y + 1 < h && rng.next_double() >= params.removal_fraction) {
        add_bidir(u, id(x, y + 1));
      }
      if (x + 1 < w && y + 1 < h &&
          rng.next_double() < params.diagonal_fraction) {
        add_bidir(u, id(x + 1, y + 1));
      }
    }
  }
  return builder.build();
}

}  // namespace graffix
