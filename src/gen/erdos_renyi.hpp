// Erdős–Rényi G(n, m) generator — the paper's random26 input (GTgraph
// "random"). Near-uniform degrees, in contrast to R-MAT's skew; this is
// the regime where Graffix's divergence technique has the least headroom.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace graffix {

struct ErdosRenyiParams {
  std::uint32_t scale = 14;        // num_nodes = 2^scale
  std::uint32_t edge_factor = 16;  // num_edges = edge_factor * num_nodes
  bool weighted = true;
  Weight max_weight = 100.0f;
  std::uint64_t seed = 0xe2d05beef;
};

[[nodiscard]] Csr generate_erdos_renyi(const ErdosRenyiParams& params);

}  // namespace graffix
