// Erdős–Rényi G(n, m) generator — the paper's random26 input (GTgraph
// "random"). Near-uniform degrees, in contrast to R-MAT's skew; this is
// the regime where Graffix's divergence technique has the least headroom.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"
#include "graph/streaming_builder.hpp"

namespace graffix {

struct ErdosRenyiParams {
  std::uint32_t scale = 14;        // num_nodes = 2^scale
  std::uint32_t edge_factor = 16;  // num_edges = edge_factor * num_nodes
  bool weighted = true;
  Weight max_weight = 100.0f;
  std::uint64_t seed = 0xe2d05beef;
};

[[nodiscard]] Csr generate_erdos_renyi(const ErdosRenyiParams& params);

/// Streams the generator's edge list to `sink` in spans of `chunk_edges`
/// (0 = one whole-stream span); replayable, bit-identical to the
/// materializing path's edge vector on concatenation.
void emit_erdos_renyi(const ErdosRenyiParams& params, std::size_t chunk_edges,
                      const EdgeSink& sink);

/// Byte-identical to generate_erdos_renyi via the two-pass streaming
/// build (one chunk of transient memory instead of the triple list).
[[nodiscard]] Csr generate_erdos_renyi_streaming(
    const ErdosRenyiParams& params,
    std::size_t chunk_edges = kDefaultStreamChunk);

}  // namespace graffix
