#include "gen/erdos_renyi.hpp"

#include <vector>

#include "graph/builder.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace graffix {

Csr generate_erdos_renyi(const ErdosRenyiParams& params) {
  const NodeId n = NodeId{1} << params.scale;
  const EdgeId m = static_cast<EdgeId>(params.edge_factor) * n;

  constexpr EdgeId kBlock = 1 << 14;
  const EdgeId num_blocks = (m + kBlock - 1) / kBlock;
  std::vector<EdgeTriple> edges(m);
  parallel_for(EdgeId{0}, num_blocks, [&](EdgeId blk) {
    Pcg32 rng = make_stream(params.seed, blk);
    const EdgeId lo = blk * kBlock;
    const EdgeId hi = std::min(lo + kBlock, m);
    for (EdgeId e = lo; e < hi; ++e) {
      const NodeId u = rng.next_bounded(n);
      const NodeId v = rng.next_bounded(n);
      const Weight w = params.weighted
                           ? 1.0f + rng.next_float() * (params.max_weight - 1.0f)
                           : 1.0f;
      edges[e] = {u, v, w};
    }
  });

  GraphBuilder builder(n);
  builder.set_weighted(params.weighted);
  builder.set_drop_self_loops(true);
  builder.add_edges(std::move(edges));
  return builder.build();
}

}  // namespace graffix
