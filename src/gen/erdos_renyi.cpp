#include "gen/erdos_renyi.hpp"

#include <vector>

#include "gen/block_emit.hpp"
#include "graph/builder.hpp"
#include "graph/streaming_builder.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace graffix {

namespace {

/// Writes block `blk`'s `count` edges — the single source of truth both
/// the materializing and streaming paths draw from.
void fill_er_block(const ErdosRenyiParams& p, NodeId n, EdgeId blk,
                   EdgeTriple* out, EdgeId count) {
  Pcg32 rng = make_stream(p.seed, blk);
  for (EdgeId i = 0; i < count; ++i) {
    const NodeId u = rng.next_bounded(n);
    const NodeId v = rng.next_bounded(n);
    const Weight w =
        p.weighted ? 1.0f + rng.next_float() * (p.max_weight - 1.0f) : 1.0f;
    out[i] = {u, v, w};
  }
}

}  // namespace

Csr generate_erdos_renyi(const ErdosRenyiParams& params) {
  const NodeId n = NodeId{1} << params.scale;
  const EdgeId m = static_cast<EdgeId>(params.edge_factor) * n;

  const EdgeId num_blocks = (m + kGenBlock - 1) / kGenBlock;
  std::vector<EdgeTriple> edges(m);
  parallel_for(EdgeId{0}, num_blocks, [&](EdgeId blk) {
    const EdgeId lo = blk * kGenBlock;
    const EdgeId hi = std::min(lo + kGenBlock, m);
    fill_er_block(params, n, blk, edges.data() + lo, hi - lo);
  });

  GraphBuilder builder(n);
  builder.set_weighted(params.weighted);
  builder.set_drop_self_loops(true);
  builder.add_edges(std::move(edges));
  return builder.build();
}

void emit_erdos_renyi(const ErdosRenyiParams& params, std::size_t chunk_edges,
                      const EdgeSink& sink) {
  const NodeId n = NodeId{1} << params.scale;
  const EdgeId m = static_cast<EdgeId>(params.edge_factor) * n;
  emit_blocked_stream(m, chunk_edges, sink,
                      [&](EdgeId blk, EdgeTriple* out, EdgeId count) {
                        fill_er_block(params, n, blk, out, count);
                      });
}

Csr generate_erdos_renyi_streaming(const ErdosRenyiParams& params,
                                   std::size_t chunk_edges) {
  const NodeId n = NodeId{1} << params.scale;
  StreamingCsrOptions o;
  o.weighted = params.weighted;
  o.drop_self_loops = true;
  return build_streaming_csr(n, o, [&](const EdgeSink& sink) {
    emit_erdos_renyi(params, chunk_edges, sink);
  });
}

}  // namespace graffix
