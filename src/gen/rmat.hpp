// GTgraph-style R-MAT generator (Chakrabarti et al.), the generator the
// paper uses for its rmat26 input. Recursive quadrant descent with
// probabilities (a, b, c, d); a >> d yields the skewed power-law degree
// distributions Graffix's thresholds are tuned for.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace graffix {

struct RmatParams {
  std::uint32_t scale = 14;        // num_nodes = 2^scale
  std::uint32_t edge_factor = 16;  // num_edges = edge_factor * num_nodes
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
  bool weighted = true;
  Weight max_weight = 100.0f;  // weights uniform in [1, max_weight]
  bool dedup = false;          // paper graphs keep multi-edges out
  std::uint64_t seed = 0x5eedbeef;
};

/// Generates a directed R-MAT graph. Deterministic for a fixed seed,
/// independent of thread count.
[[nodiscard]] Csr generate_rmat(const RmatParams& params);

}  // namespace graffix
