// GTgraph-style R-MAT generator (Chakrabarti et al.), the generator the
// paper uses for its rmat26 input. Recursive quadrant descent with
// probabilities (a, b, c, d); a >> d yields the skewed power-law degree
// distributions Graffix's thresholds are tuned for.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"
#include "graph/streaming_builder.hpp"

namespace graffix {

struct RmatParams {
  std::uint32_t scale = 14;        // num_nodes = 2^scale
  std::uint32_t edge_factor = 16;  // num_edges = edge_factor * num_nodes
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
  bool weighted = true;
  Weight max_weight = 100.0f;  // weights uniform in [1, max_weight]
  bool dedup = false;          // paper graphs keep multi-edges out
  std::uint64_t seed = 0x5eedbeef;
};

/// Generates a directed R-MAT graph. Deterministic for a fixed seed,
/// independent of thread count.
[[nodiscard]] Csr generate_rmat(const RmatParams& params);

/// Streams the generator's edge list to `sink` in spans of `chunk_edges`
/// (0 = one whole-stream span). Concatenating the spans reproduces
/// generate_rmat's internal edge vector bit for bit; replayable —
/// repeated calls emit the identical stream.
void emit_rmat(const RmatParams& params, std::size_t chunk_edges,
               const EdgeSink& sink);

/// Builds the same Csr as generate_rmat (byte-identical) through the
/// two-pass streaming path: peak transient memory is one chunk plus the
/// final arrays instead of the whole triple list.
[[nodiscard]] Csr generate_rmat_streaming(
    const RmatParams& params, std::size_t chunk_edges = kDefaultStreamChunk);

}  // namespace graffix
