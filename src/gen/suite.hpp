// The paper's five-graph input suite (Table 1) at configurable scale.
//
// The paper's graphs are billion-edge; the presets reproduce each graph's
// *regime* (degree distribution + diameter class) at a scale set by the
// caller so benches run on commodity machines. See DESIGN.md §2.
#pragma once

#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/streaming_builder.hpp"

namespace graffix {

enum class GraphPreset {
  Rmat26,       // heavy-tailed R-MAT, edge factor 16
  Random26,     // Erdős–Rényi, same node/edge count as Rmat26
  LiveJournal,  // social network: milder skew, small diameter, ef 14
  UsaRoad,      // road lattice: uniform small degrees, large diameter
  Twitter,      // extreme skew, densest (ef 32)
};

struct SuiteEntry {
  GraphPreset preset;
  std::string name;  // paper's row label
  Csr graph;
};

[[nodiscard]] const char* preset_name(GraphPreset preset);

/// True for the presets the paper classifies as power-law/scale-free
/// (drives the per-class default connectedness thresholds, §5.2).
[[nodiscard]] bool preset_is_power_law(GraphPreset preset);

/// Instantiate one preset. `scale` plays the role of the paper's "26":
/// node count ~= 2^scale (the road grid rounds to a rectangle).
[[nodiscard]] Csr make_preset(GraphPreset preset, std::uint32_t scale,
                              std::uint64_t seed = 42);

/// Byte-identical to make_preset via the streaming build: the raw graph
/// never exists as a triple list (peak transient memory is one chunk +
/// the final arrays; the id permutation still rebuilds at ~2x). This is
/// the entry point for paper-scale instantiation (DESIGN.md §9).
[[nodiscard]] Csr make_preset_streaming(
    GraphPreset preset, std::uint32_t scale, std::uint64_t seed = 42,
    std::size_t chunk_edges = kDefaultStreamChunk);

/// Streams the preset's RAW generator edge list (before the id
/// permutation make_preset applies) in spans of `chunk_edges`
/// (0 = one whole-stream span); replayable.
void emit_preset(GraphPreset preset, std::uint32_t scale, std::uint64_t seed,
                 std::size_t chunk_edges, const EdgeSink& sink);

/// The full Table 1 suite in paper row order.
[[nodiscard]] std::vector<SuiteEntry> make_suite(std::uint32_t scale,
                                                 std::uint64_t seed = 42);

/// All presets in paper order.
[[nodiscard]] std::vector<GraphPreset> all_presets();

}  // namespace graffix
