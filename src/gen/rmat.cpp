#include "gen/rmat.hpp"

#include <vector>

#include "graph/builder.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace graffix {

namespace {

EdgeTriple rmat_edge(const RmatParams& p, Pcg32& rng, NodeId n) {
  NodeId u = 0, v = 0;
  NodeId step = n >> 1;
  // Noise on the quadrant probabilities (GTgraph applies +-10% jitter per
  // level to avoid perfectly self-similar artifacts).
  while (step > 0) {
    const double r = rng.next_double();
    double a = p.a * (0.9 + 0.2 * rng.next_double());
    double b = p.b * (0.9 + 0.2 * rng.next_double());
    double c = p.c * (0.9 + 0.2 * rng.next_double());
    double d = p.d * (0.9 + 0.2 * rng.next_double());
    const double norm = a + b + c + d;
    a /= norm;
    b /= norm;
    c /= norm;
    if (r < a) {
      // top-left: nothing to add
    } else if (r < a + b) {
      v += step;
    } else if (r < a + b + c) {
      u += step;
    } else {
      u += step;
      v += step;
    }
    step >>= 1;
  }
  const Weight w =
      p.weighted ? 1.0f + rng.next_float() * (p.max_weight - 1.0f) : 1.0f;
  return {u, v, w};
}

}  // namespace

Csr generate_rmat(const RmatParams& params) {
  const NodeId n = NodeId{1} << params.scale;
  const EdgeId m = static_cast<EdgeId>(params.edge_factor) * n;

  // Deterministic parallel generation: fixed per-block streams.
  constexpr EdgeId kBlock = 1 << 14;
  const EdgeId num_blocks = (m + kBlock - 1) / kBlock;
  std::vector<EdgeTriple> edges(m);
  parallel_for(EdgeId{0}, num_blocks, [&](EdgeId blk) {
    Pcg32 rng = make_stream(params.seed, blk);
    const EdgeId lo = blk * kBlock;
    const EdgeId hi = std::min(lo + kBlock, m);
    for (EdgeId e = lo; e < hi; ++e) {
      edges[e] = rmat_edge(params, rng, n);
    }
  });

  GraphBuilder builder(n);
  builder.set_weighted(params.weighted);
  builder.set_drop_self_loops(true);
  if (params.dedup) builder.set_dedup(GraphBuilder::Dedup::KeepMinWeight);
  builder.add_edges(std::move(edges));
  return builder.build();
}

}  // namespace graffix
