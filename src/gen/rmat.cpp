#include "gen/rmat.hpp"

#include <vector>

#include "gen/block_emit.hpp"
#include "graph/builder.hpp"
#include "graph/streaming_builder.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace graffix {

namespace {

EdgeTriple rmat_edge(const RmatParams& p, Pcg32& rng, NodeId n) {
  NodeId u = 0, v = 0;
  NodeId step = n >> 1;
  // Noise on the quadrant probabilities (GTgraph applies +-10% jitter per
  // level to avoid perfectly self-similar artifacts).
  while (step > 0) {
    const double r = rng.next_double();
    double a = p.a * (0.9 + 0.2 * rng.next_double());
    double b = p.b * (0.9 + 0.2 * rng.next_double());
    double c = p.c * (0.9 + 0.2 * rng.next_double());
    double d = p.d * (0.9 + 0.2 * rng.next_double());
    const double norm = a + b + c + d;
    a /= norm;
    b /= norm;
    c /= norm;
    if (r < a) {
      // top-left: nothing to add
    } else if (r < a + b) {
      v += step;
    } else if (r < a + b + c) {
      u += step;
    } else {
      u += step;
      v += step;
    }
    step >>= 1;
  }
  const Weight w =
      p.weighted ? 1.0f + rng.next_float() * (p.max_weight - 1.0f) : 1.0f;
  return {u, v, w};
}

/// Writes block `blk`'s `count` edges — the single source of truth both
/// the materializing and streaming paths draw from.
void fill_rmat_block(const RmatParams& p, NodeId n, EdgeId blk,
                     EdgeTriple* out, EdgeId count) {
  Pcg32 rng = make_stream(p.seed, blk);
  for (EdgeId i = 0; i < count; ++i) {
    out[i] = rmat_edge(p, rng, n);
  }
}

StreamingCsrOptions rmat_csr_options(const RmatParams& params) {
  StreamingCsrOptions o;
  o.weighted = params.weighted;
  o.drop_self_loops = true;
  o.dedup = params.dedup ? GraphBuilder::Dedup::KeepMinWeight
                         : GraphBuilder::Dedup::None;
  return o;
}

}  // namespace

Csr generate_rmat(const RmatParams& params) {
  const NodeId n = NodeId{1} << params.scale;
  const EdgeId m = static_cast<EdgeId>(params.edge_factor) * n;

  // Deterministic parallel generation: fixed per-block streams.
  const EdgeId num_blocks = (m + kGenBlock - 1) / kGenBlock;
  std::vector<EdgeTriple> edges(m);
  parallel_for(EdgeId{0}, num_blocks, [&](EdgeId blk) {
    const EdgeId lo = blk * kGenBlock;
    const EdgeId hi = std::min(lo + kGenBlock, m);
    fill_rmat_block(params, n, blk, edges.data() + lo, hi - lo);
  });

  GraphBuilder builder(n);
  builder.set_weighted(params.weighted);
  builder.set_drop_self_loops(true);
  if (params.dedup) builder.set_dedup(GraphBuilder::Dedup::KeepMinWeight);
  builder.add_edges(std::move(edges));
  return builder.build();
}

void emit_rmat(const RmatParams& params, std::size_t chunk_edges,
               const EdgeSink& sink) {
  const NodeId n = NodeId{1} << params.scale;
  const EdgeId m = static_cast<EdgeId>(params.edge_factor) * n;
  emit_blocked_stream(m, chunk_edges, sink,
                      [&](EdgeId blk, EdgeTriple* out, EdgeId count) {
                        fill_rmat_block(params, n, blk, out, count);
                      });
}

Csr generate_rmat_streaming(const RmatParams& params,
                            std::size_t chunk_edges) {
  const NodeId n = NodeId{1} << params.scale;
  return build_streaming_csr(n, rmat_csr_options(params),
                             [&](const EdgeSink& sink) {
                               emit_rmat(params, chunk_edges, sink);
                             });
}

}  // namespace graffix
