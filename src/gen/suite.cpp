#include "gen/suite.hpp"

#include <cmath>
#include <utility>

#include "gen/erdos_renyi.hpp"
#include "gen/permute.hpp"
#include "gen/rmat.hpp"
#include "gen/road_grid.hpp"
#include "util/macros.hpp"

namespace graffix {

const char* preset_name(GraphPreset preset) {
  switch (preset) {
    case GraphPreset::Rmat26:
      return "rmat26";
    case GraphPreset::Random26:
      return "random26";
    case GraphPreset::LiveJournal:
      return "LiveJournal";
    case GraphPreset::UsaRoad:
      return "USA-road";
    case GraphPreset::Twitter:
      return "twitter";
  }
  return "?";
}

bool preset_is_power_law(GraphPreset preset) {
  return preset != GraphPreset::UsaRoad;
}

namespace {

/// Generator parameters for one preset — the single source of truth the
/// materializing and streaming paths both instantiate from.
struct PresetSpec {
  enum class Kind { Rmat, ErdosRenyi, RoadGrid };
  Kind kind = Kind::Rmat;
  RmatParams rmat;
  ErdosRenyiParams er;
  RoadGridParams road;
};

PresetSpec preset_spec(GraphPreset preset, std::uint32_t scale,
                       std::uint64_t seed) {
  PresetSpec s;
  switch (preset) {
    case GraphPreset::Rmat26: {
      s.kind = PresetSpec::Kind::Rmat;
      s.rmat.scale = scale;
      s.rmat.edge_factor = 16;
      s.rmat.seed = seed ^ 0x11;
      return s;
    }
    case GraphPreset::Random26: {
      s.kind = PresetSpec::Kind::ErdosRenyi;
      s.er.scale = scale;
      s.er.edge_factor = 16;
      s.er.seed = seed ^ 0x22;
      return s;
    }
    case GraphPreset::LiveJournal: {
      // Social network: milder skew than rmat26 (paper LJ: 4.8M nodes,
      // 68.9M edges => edge factor ~14).
      s.kind = PresetSpec::Kind::Rmat;
      s.rmat.scale = scale;
      s.rmat.edge_factor = 14;
      s.rmat.a = 0.48;
      s.rmat.b = 0.22;
      s.rmat.c = 0.22;
      s.rmat.d = 0.08;
      s.rmat.seed = seed ^ 0x33;
      return s;
    }
    case GraphPreset::UsaRoad: {
      // Rectangle with ~2^scale nodes; paper USA-road has E/V ~ 2.4 which
      // the lattice's 4-connectivity (minus removals) matches.
      s.kind = PresetSpec::Kind::RoadGrid;
      const auto side =
          static_cast<NodeId>(std::lround(std::sqrt(std::pow(2.0, scale))));
      s.road.width = side;
      s.road.height = side;
      s.road.seed = seed ^ 0x44;
      return s;
    }
    case GraphPreset::Twitter: {
      // Extreme skew, densest graph in the suite (paper: ef ~35).
      s.kind = PresetSpec::Kind::Rmat;
      s.rmat.scale = scale;
      s.rmat.edge_factor = 32;
      s.rmat.a = 0.62;
      s.rmat.b = 0.18;
      s.rmat.c = 0.15;
      s.rmat.d = 0.05;
      s.rmat.seed = seed ^ 0x55;
      return s;
    }
  }
  GRAFFIX_CHECK(false, "unknown preset");
  return s;
}

/// Raw generator output for one preset (before id permutation).
Csr make_preset_raw(GraphPreset preset, std::uint32_t scale,
                    std::uint64_t seed) {
  const PresetSpec s = preset_spec(preset, scale, seed);
  switch (s.kind) {
    case PresetSpec::Kind::Rmat:
      return generate_rmat(s.rmat);
    case PresetSpec::Kind::ErdosRenyi:
      return generate_erdos_renyi(s.er);
    case PresetSpec::Kind::RoadGrid:
      return generate_road_grid(s.road);
  }
  GRAFFIX_CHECK(false, "unknown preset kind");
  return {};
}

/// Streaming-path counterpart of make_preset_raw; byte-identical output.
Csr make_preset_raw_streaming(GraphPreset preset, std::uint32_t scale,
                              std::uint64_t seed, std::size_t chunk_edges) {
  const PresetSpec s = preset_spec(preset, scale, seed);
  switch (s.kind) {
    case PresetSpec::Kind::Rmat:
      return generate_rmat_streaming(s.rmat, chunk_edges);
    case PresetSpec::Kind::ErdosRenyi:
      return generate_erdos_renyi_streaming(s.er, chunk_edges);
    case PresetSpec::Kind::RoadGrid:
      return generate_road_grid_streaming(s.road, chunk_edges);
  }
  GRAFFIX_CHECK(false, "unknown preset kind");
  return {};
}

}  // namespace

Csr make_preset(GraphPreset preset, std::uint32_t scale, std::uint64_t seed) {
  GRAFFIX_CHECK(scale >= 6 && scale <= 26, "scale %u out of range", scale);
  Csr raw = make_preset_raw(preset, scale, seed);
  // Permute ids as GTgraph/SNAP distributions do: synthetic generators
  // otherwise leave artificial id locality that no real input has (see
  // gen/permute.hpp).
  return permute_vertices(raw, seed ^ 0x77);
}

Csr make_preset_streaming(GraphPreset preset, std::uint32_t scale,
                          std::uint64_t seed, std::size_t chunk_edges) {
  GRAFFIX_CHECK(scale >= 6 && scale <= 26, "scale %u out of range", scale);
  // The raw build streams (never holds the triple list); the id
  // permutation then rebuilds in place at ~2x the final graph — still
  // the peak-memory win over the materializing path's ~3x, and the only
  // ordering that keeps the output byte-identical to make_preset
  // (permute_vertices preserves raw intra-row order, so permuting
  // before/inside the build would produce different rows).
  Csr raw = make_preset_raw_streaming(preset, scale, seed, chunk_edges);
  return permute_vertices(std::move(raw), seed ^ 0x77);
}

void emit_preset(GraphPreset preset, std::uint32_t scale, std::uint64_t seed,
                 std::size_t chunk_edges, const EdgeSink& sink) {
  GRAFFIX_CHECK(scale >= 6 && scale <= 26, "scale %u out of range", scale);
  const PresetSpec s = preset_spec(preset, scale, seed);
  switch (s.kind) {
    case PresetSpec::Kind::Rmat:
      emit_rmat(s.rmat, chunk_edges, sink);
      return;
    case PresetSpec::Kind::ErdosRenyi:
      emit_erdos_renyi(s.er, chunk_edges, sink);
      return;
    case PresetSpec::Kind::RoadGrid:
      emit_road_grid(s.road, chunk_edges, sink);
      return;
  }
  GRAFFIX_CHECK(false, "unknown preset kind");
}

std::vector<SuiteEntry> make_suite(std::uint32_t scale, std::uint64_t seed) {
  std::vector<SuiteEntry> suite;
  for (GraphPreset preset : all_presets()) {
    suite.push_back(
        {preset, preset_name(preset), make_preset(preset, scale, seed)});
  }
  return suite;
}

std::vector<GraphPreset> all_presets() {
  return {GraphPreset::Rmat26, GraphPreset::Random26, GraphPreset::LiveJournal,
          GraphPreset::UsaRoad, GraphPreset::Twitter};
}

}  // namespace graffix
