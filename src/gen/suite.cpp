#include "gen/suite.hpp"

#include <cmath>

#include "gen/erdos_renyi.hpp"
#include "gen/permute.hpp"
#include "gen/rmat.hpp"
#include "gen/road_grid.hpp"
#include "util/macros.hpp"

namespace graffix {

const char* preset_name(GraphPreset preset) {
  switch (preset) {
    case GraphPreset::Rmat26:
      return "rmat26";
    case GraphPreset::Random26:
      return "random26";
    case GraphPreset::LiveJournal:
      return "LiveJournal";
    case GraphPreset::UsaRoad:
      return "USA-road";
    case GraphPreset::Twitter:
      return "twitter";
  }
  return "?";
}

bool preset_is_power_law(GraphPreset preset) {
  return preset != GraphPreset::UsaRoad;
}

namespace {

/// Raw generator output for one preset (before id permutation).
Csr make_preset_raw(GraphPreset preset, std::uint32_t scale,
                    std::uint64_t seed) {
  switch (preset) {
    case GraphPreset::Rmat26: {
      RmatParams p;
      p.scale = scale;
      p.edge_factor = 16;
      p.seed = seed ^ 0x11;
      return generate_rmat(p);
    }
    case GraphPreset::Random26: {
      ErdosRenyiParams p;
      p.scale = scale;
      p.edge_factor = 16;
      p.seed = seed ^ 0x22;
      return generate_erdos_renyi(p);
    }
    case GraphPreset::LiveJournal: {
      // Social network: milder skew than rmat26 (paper LJ: 4.8M nodes,
      // 68.9M edges => edge factor ~14).
      RmatParams p;
      p.scale = scale;
      p.edge_factor = 14;
      p.a = 0.48;
      p.b = 0.22;
      p.c = 0.22;
      p.d = 0.08;
      p.seed = seed ^ 0x33;
      return generate_rmat(p);
    }
    case GraphPreset::UsaRoad: {
      // Rectangle with ~2^scale nodes; paper USA-road has E/V ~ 2.4 which
      // the lattice's 4-connectivity (minus removals) matches.
      RoadGridParams p;
      const auto side = static_cast<NodeId>(
          std::lround(std::sqrt(std::pow(2.0, scale))));
      p.width = side;
      p.height = side;
      p.seed = seed ^ 0x44;
      return generate_road_grid(p);
    }
    case GraphPreset::Twitter: {
      // Extreme skew, densest graph in the suite (paper: ef ~35).
      RmatParams p;
      p.scale = scale;
      p.edge_factor = 32;
      p.a = 0.62;
      p.b = 0.18;
      p.c = 0.15;
      p.d = 0.05;
      p.seed = seed ^ 0x55;
      return generate_rmat(p);
    }
  }
  GRAFFIX_CHECK(false, "unknown preset");
  return {};
}

}  // namespace

Csr make_preset(GraphPreset preset, std::uint32_t scale, std::uint64_t seed) {
  GRAFFIX_CHECK(scale >= 6 && scale <= 26, "scale %u out of range", scale);
  Csr raw = make_preset_raw(preset, scale, seed);
  // Permute ids as GTgraph/SNAP distributions do: synthetic generators
  // otherwise leave artificial id locality that no real input has (see
  // gen/permute.hpp).
  return permute_vertices(raw, seed ^ 0x77);
}

std::vector<SuiteEntry> make_suite(std::uint32_t scale, std::uint64_t seed) {
  std::vector<SuiteEntry> suite;
  for (GraphPreset preset : all_presets()) {
    suite.push_back(
        {preset, preset_name(preset), make_preset(preset, scale, seed)});
  }
  return suite;
}

std::vector<GraphPreset> all_presets() {
  return {GraphPreset::Rmat26, GraphPreset::Random26, GraphPreset::LiveJournal,
          GraphPreset::UsaRoad, GraphPreset::Twitter};
}

}  // namespace graffix
