// Shared chunked-emission driver for the block-parallel generators.
//
// rmat and erdos_renyi generate edge e from the per-block RNG stream
// make_stream(seed, e / kGenBlock), so the whole edge list is a pure
// function of the seed and can be REPLAYED: emit_blocked_stream() walks
// the blocks in order, fills a bounded staging buffer in parallel
// (kGenBlock-sized groups, same per-block streams as the materializing
// path), and hands the stream to the sink in consecutive spans of the
// requested chunk size. Concatenating every span reproduces the
// materializing generator's edge vector bit for bit — for any chunk
// size and any thread count — which is what lets
// build_streaming_csr() call the same emitter twice (count pass,
// scatter pass) without ever holding the whole triple list.
//
// Peak staging memory is chunk_edges - 1 carried-over edges plus one
// round of blocks (>= one chunk's worth, >= 4 blocks per worker so the
// parallel fill has work), capped at the stream length.
#pragma once

#include <algorithm>
#include <cstring>
#include <span>

#include "graph/builder.hpp"
#include "util/arena.hpp"
#include "util/parallel.hpp"
#include "util/types.hpp"

namespace graffix {

/// Block size shared by every block-parallel generator; edge e draws
/// from make_stream(seed, e / kGenBlock). Changing this changes every
/// generated graph.
inline constexpr EdgeId kGenBlock = EdgeId{1} << 14;

/// Streams `m` generator edges to `sink` in spans of `chunk_edges`
/// (final span may be shorter; 0 means one whole-stream span).
/// `fill_block(blk, out, count)` must write block blk's `count` edges —
/// the same bytes the materializing path puts at [blk * kGenBlock, ...).
template <typename FillBlock>
void emit_blocked_stream(EdgeId m, std::size_t chunk_edges,
                         const EdgeSink& sink, FillBlock&& fill_block) {
  if (m == 0) return;
  const auto chunk =
      chunk_edges == 0 ? static_cast<std::size_t>(m) : chunk_edges;
  const EdgeId num_blocks = (m + kGenBlock - 1) / kGenBlock;
  const auto workers = static_cast<EdgeId>(effective_workers());
  const EdgeId blocks_per_round = std::min<EdgeId>(
      num_blocks,
      std::max<EdgeId>((chunk + kGenBlock - 1) / kGenBlock, workers * 4));
  const auto stage_cap = std::min<std::size_t>(
      (chunk - 1) + static_cast<std::size_t>(blocks_per_round * kGenBlock),
      static_cast<std::size_t>(m));
  ArenaBuffer<EdgeTriple> stage(stage_cap);

  std::size_t pending = 0;  // staged edges not yet handed to the sink
  for (EdgeId blk0 = 0; blk0 < num_blocks; blk0 += blocks_per_round) {
    const EdgeId blk1 = std::min(blk0 + blocks_per_round, num_blocks);
    parallel_for(blk0, blk1, [&](EdgeId blk) {
      const EdgeId lo = blk * kGenBlock;
      const EdgeId hi = std::min(lo + kGenBlock, m);
      fill_block(blk, stage.data() + pending +
                          static_cast<std::size_t>(lo - blk0 * kGenBlock),
                 hi - lo);
    });
    pending += static_cast<std::size_t>(std::min(blk1 * kGenBlock, m) -
                                        blk0 * kGenBlock);
    std::size_t off = 0;
    while (pending - off >= chunk) {
      sink(std::span<const EdgeTriple>(stage.data() + off, chunk));
      off += chunk;
    }
    if (off > 0) {
      if (pending > off) {
        std::memmove(stage.data(), stage.data() + off,
                     (pending - off) * sizeof(EdgeTriple));
      }
      pending -= off;
    }
  }
  if (pending > 0) {
    sink(std::span<const EdgeTriple>(stage.data(), pending));
  }
}

}  // namespace graffix
