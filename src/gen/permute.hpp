// Random vertex-id permutation.
//
// GTgraph and the SNAP distributions hand out graphs whose vertex ids
// carry no locality; synthetic R-MAT output, by contrast, clusters low
// ids artificially (the recursive quadrant bias). The suite presets
// permute ids after generation so the exact baselines see realistic
// (uncoalesced) gather patterns — which is precisely the starting point
// Graffix's renumbering is designed for.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace graffix {

/// Relabels vertices by a seeded random bijection. Neighbor order within
/// each adjacency is preserved (targets are remapped in place).
[[nodiscard]] Csr permute_vertices(const Csr& graph, std::uint64_t seed);

/// Memory-lean overload: consumes `graph`, freeing its arrays in a
/// staggered order mid-permute (base targets before the new weights
/// allocate). Byte-identical output to the const overload.
[[nodiscard]] Csr permute_vertices(Csr&& graph, std::uint64_t seed);

}  // namespace graffix
