// Long-diameter road-network synthesizer standing in for the DIMACS
// USA-road graph (see DESIGN.md substitutions). A width x height lattice
// with 4-connectivity, a fraction of diagonal shortcuts, and a small
// fraction of removed streets. Degrees are small and near-uniform and the
// diameter is O(width + height) — the two properties the paper's road-
// network rows depend on (low connectedness threshold, low degreeSim).
#pragma once

#include <cstdint>

#include "graph/csr.hpp"
#include "graph/streaming_builder.hpp"

namespace graffix {

struct RoadGridParams {
  NodeId width = 128;
  NodeId height = 128;
  double diagonal_fraction = 0.05;  // extra diagonal shortcut probability
  double removal_fraction = 0.03;   // probability a lattice edge is dropped
  bool weighted = true;
  Weight max_weight = 50.0f;
  std::uint64_t seed = 0x60ad60ad;
};

/// Generates a directed (symmetric) road-like lattice.
[[nodiscard]] Csr generate_road_grid(const RoadGridParams& params);

/// Streams the lattice walk's edge list to `sink` in spans of
/// `chunk_edges` (0 = one whole-stream span); replayable, bit-identical
/// to the materializing path's edge sequence on concatenation.
void emit_road_grid(const RoadGridParams& params, std::size_t chunk_edges,
                    const EdgeSink& sink);

/// Byte-identical to generate_road_grid via the two-pass streaming
/// build.
[[nodiscard]] Csr generate_road_grid_streaming(
    const RoadGridParams& params,
    std::size_t chunk_edges = kDefaultStreamChunk);

}  // namespace graffix
