#include "gen/permute.hpp"

#include <numeric>
#include <vector>

#include "util/arena.hpp"
#include "util/macros.hpp"
#include "util/rng.hpp"

namespace graffix {

namespace {

/// Seeded Fisher-Yates bijection old id -> new id (arena scratch).
ArenaBuffer<NodeId> make_bijection(NodeId n, std::uint64_t seed) {
  ArenaBuffer<NodeId> new_id(n);
  std::iota(new_id.begin(), new_id.end(), NodeId{0});
  Pcg32 rng = make_stream(seed, 0x9e);
  for (NodeId i = n; i > 1; --i) {
    std::swap(new_id[i - 1], new_id[rng.next_bounded(i)]);
  }
  return new_id;
}

std::vector<EdgeId> permuted_offsets(const Csr& graph,
                                     const ArenaBuffer<NodeId>& new_id) {
  const NodeId n = graph.num_slots();
  std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    offsets[new_id[u] + 1] = graph.degree(u);
  }
  for (NodeId s = 0; s < n; ++s) offsets[s + 1] += offsets[s];
  return offsets;
}

}  // namespace

Csr permute_vertices(const Csr& graph, std::uint64_t seed) {
  GRAFFIX_CHECK(!graph.has_holes(), "permute expects an untransformed graph");
  const NodeId n = graph.num_slots();
  const ArenaBuffer<NodeId> new_id = make_bijection(n, seed);
  std::vector<EdgeId> offsets = permuted_offsets(graph, new_id);

  std::vector<NodeId> targets(graph.num_edges());
  std::vector<Weight> weights(graph.has_weights() ? graph.num_edges() : 0);
  for (NodeId u = 0; u < n; ++u) {
    const auto nbrs = graph.neighbors(u);
    EdgeId pos = offsets[new_id[u]];
    for (std::size_t i = 0; i < nbrs.size(); ++i, ++pos) {
      targets[pos] = new_id[nbrs[i]];
      if (!weights.empty()) weights[pos] = graph.edge_weights(u)[i];
    }
  }
  return Csr(std::move(offsets), std::move(targets), std::move(weights));
}

Csr permute_vertices(Csr&& graph, std::uint64_t seed) {
  GRAFFIX_CHECK(!graph.has_holes(), "permute expects an untransformed graph");
  const NodeId n = graph.num_slots();
  const ArenaBuffer<NodeId> new_id = make_bijection(n, seed);
  std::vector<EdgeId> offsets = permuted_offsets(graph, new_id);

  const bool weighted = graph.has_weights();
  const EdgeId m = graph.num_edges();
  Csr::OwnedParts parts = std::move(graph).take_parts();
  const std::vector<EdgeId>& bofs = parts.offsets;

  // Two passes with staggered frees (same discipline as the Csr&&
  // rebuild_with_extras): the base targets die before the new weights
  // array exists, so the permute peak is one edge array smaller than
  // the const overload's. Output bytes are identical.
  std::vector<NodeId> targets(m);
  for (NodeId u = 0; u < n; ++u) {
    EdgeId pos = offsets[new_id[u]];
    for (EdgeId e = bofs[u]; e < bofs[u + 1]; ++e, ++pos) {
      targets[pos] = new_id[parts.targets[e]];
    }
  }
  std::vector<NodeId>().swap(parts.targets);

  std::vector<Weight> weights(weighted ? m : 0);
  if (weighted) {
    for (NodeId u = 0; u < n; ++u) {
      EdgeId pos = offsets[new_id[u]];
      for (EdgeId e = bofs[u]; e < bofs[u + 1]; ++e, ++pos) {
        weights[pos] = parts.weights[e];
      }
    }
    std::vector<Weight>().swap(parts.weights);
  }
  return Csr(std::move(offsets), std::move(targets), std::move(weights));
}

}  // namespace graffix
