#include "gen/permute.hpp"

#include <numeric>
#include <vector>

#include "util/macros.hpp"
#include "util/rng.hpp"

namespace graffix {

Csr permute_vertices(const Csr& graph, std::uint64_t seed) {
  GRAFFIX_CHECK(!graph.has_holes(), "permute expects an untransformed graph");
  const NodeId n = graph.num_slots();
  std::vector<NodeId> new_id(n);
  std::iota(new_id.begin(), new_id.end(), NodeId{0});
  Pcg32 rng = make_stream(seed, 0x9e);
  for (NodeId i = n; i > 1; --i) {
    std::swap(new_id[i - 1], new_id[rng.next_bounded(i)]);
  }

  std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    offsets[new_id[u] + 1] = graph.degree(u);
  }
  for (NodeId s = 0; s < n; ++s) offsets[s + 1] += offsets[s];

  std::vector<NodeId> targets(graph.num_edges());
  std::vector<Weight> weights(graph.has_weights() ? graph.num_edges() : 0);
  for (NodeId u = 0; u < n; ++u) {
    const auto nbrs = graph.neighbors(u);
    EdgeId pos = offsets[new_id[u]];
    for (std::size_t i = 0; i < nbrs.size(); ++i, ++pos) {
      targets[pos] = new_id[nbrs[i]];
      if (!weights.empty()) weights[pos] = graph.edge_weights(u)[i];
    }
  }
  return Csr(std::move(offsets), std::move(targets), std::move(weights));
}

}  // namespace graffix
