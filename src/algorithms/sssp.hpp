// Single-source shortest paths (host references).
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace graffix {

/// Serial Dijkstra with a binary heap — exact ground truth for accuracy
/// metrics. Requires non-negative weights; an unweighted graph is treated
/// as all-ones.
[[nodiscard]] std::vector<Weight> sssp_dijkstra(const Csr& graph, NodeId source);

/// Parallel Bellman-Ford (round-based relax-to-fixpoint); used to
/// cross-check Dijkstra and as the shape of the device kernel.
[[nodiscard]] std::vector<Weight> sssp_bellman_ford(const Csr& graph,
                                                    NodeId source,
                                                    std::uint32_t max_rounds = 0);

}  // namespace graffix
