// PageRank power iteration (host reference).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace graffix {

struct PagerankParams {
  double damping = 0.85;
  double tolerance = 1e-7;      // L1 delta convergence threshold
  std::uint32_t max_iterations = 100;
};

struct PagerankResult {
  std::vector<double> rank;  // per slot; holes get 0
  std::uint32_t iterations = 0;
};

/// Pull-based power iteration. Dangling mass is redistributed uniformly,
/// so ranks sum to 1 over non-hole slots.
[[nodiscard]] PagerankResult pagerank(const Csr& graph,
                                      const PagerankParams& params = {});

}  // namespace graffix
