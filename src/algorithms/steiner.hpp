// 2-approximate Steiner tree (Kou, Markowsky & Berman 1981) — the
// paper's §1 amortization example: the algorithm runs SSSP from every
// terminal, so preprocessing the graph once with a Graffix transform is
// amortized across all of them. The library version lets callers plug in
// any distance oracle (exact Dijkstra by default, or the simulated
// approximate SSSP as examples/steiner_tree.cpp does).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace graffix {

struct SteinerResult {
  /// Total weight of the terminal spanning structure (the 2-approx cost:
  /// the MST of the terminal distance graph).
  double cost = 0.0;
  /// Pairs (terminal index a, terminal index b) of the chosen MST edges.
  std::vector<std::pair<std::size_t, std::size_t>> tree_edges;
  /// True when every terminal is reachable from the others.
  bool connected = false;
};

/// Distance oracle: full distance vector from one source node.
using DistanceOracle =
    std::function<std::vector<double>(NodeId source)>;

/// KMB 2-approximation over the terminal set using the given oracle.
[[nodiscard]] SteinerResult steiner_2approx(std::span<const NodeId> terminals,
                                            const DistanceOracle& oracle);

/// Convenience overload: exact Dijkstra on `graph` as the oracle.
[[nodiscard]] SteinerResult steiner_2approx(const Csr& graph,
                                            std::span<const NodeId> terminals);

}  // namespace graffix
