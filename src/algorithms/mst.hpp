// Minimum spanning tree / forest (host references): Kruskal with
// union-find for exact ground truth, and parallel Borůvka mirroring the
// LonestarGPU-style device algorithm. The input directed graph is
// interpreted as undirected (each arc is an undirected candidate edge),
// matching how the paper's MST baseline consumes the shared inputs.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace graffix {

struct MstResult {
  double total_weight = 0.0;
  EdgeId edges_in_forest = 0;
  NodeId components = 0;  // trees in the forest (isolated nodes included)
};

/// Serial Kruskal. Exact.
[[nodiscard]] MstResult mst_kruskal(const Csr& graph);

/// Parallel Borůvka (minimum edge per component + hooking + compression).
[[nodiscard]] MstResult mst_boruvka(const Csr& graph);

}  // namespace graffix
