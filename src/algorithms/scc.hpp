// Strongly connected components (host references): iterative Tarjan for
// exact ground truth, plus a parallel FW-BW-Trim implementation mirroring
// the Hong et al. style algorithm the paper's SCC baseline uses.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace graffix {

struct SccResult {
  std::vector<NodeId> component;  // per-slot component label; holes invalid
  NodeId count = 0;
};

/// Iterative Tarjan. Exact, serial.
[[nodiscard]] SccResult scc_tarjan(const Csr& graph);

/// Forward-Backward with trimming. Exact, host-parallel BFS reachability.
[[nodiscard]] SccResult scc_fw_bw(const Csr& graph);

}  // namespace graffix
