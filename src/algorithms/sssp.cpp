#include "algorithms/sssp.hpp"

#include <atomic>
#include <queue>

#include "util/macros.hpp"
#include "util/parallel.hpp"

namespace graffix {

std::vector<Weight> sssp_dijkstra(const Csr& graph, NodeId source) {
  const NodeId slots = graph.num_slots();
  GRAFFIX_CHECK(source < slots && !graph.is_hole(source), "bad source %u",
                source);
  std::vector<Weight> dist(slots, kInfWeight);
  dist[source] = 0;
  using Entry = std::pair<Weight, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.push({0, source});
  // Invariant spans hoisted out of the pop loop: the CSR arrays never
  // move while we relax, so indexing by edge id beats re-fetching the
  // per-node spans (and re-asking has_weights()) on every pop.
  const auto offsets = graph.offsets();
  const auto targets = graph.targets();
  const auto weights = graph.weights();
  const bool weighted = graph.has_weights();
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    const EdgeId end = offsets[u + 1];
    for (EdgeId e = offsets[u]; e < end; ++e) {
      const NodeId v = targets[e];
      const Weight nd = d + (weighted ? weights[e] : Weight{1});
      if (nd < dist[v]) {
        dist[v] = nd;
        heap.push({nd, v});
      }
    }
  }
  return dist;
}

std::vector<Weight> sssp_bellman_ford(const Csr& graph, NodeId source,
                                      std::uint32_t max_rounds) {
  const NodeId slots = graph.num_slots();
  GRAFFIX_CHECK(source < slots && !graph.is_hole(source), "bad source %u",
                source);
  if (max_rounds == 0) max_rounds = slots + 1;
  // Atomic-min relaxation on float bit patterns (non-negative floats
  // preserve order as unsigned integers).
  std::vector<std::atomic<Weight>> dist(slots);
  for (auto& d : dist) d.store(kInfWeight, std::memory_order_relaxed);
  dist[source].store(0, std::memory_order_relaxed);

  // Cross-round progress detection goes through the deterministic
  // any-reduction (per-task verdicts OR-folded after the join) instead
  // of the old relaxed atomic-bool store/load pair, which was ordered
  // against the next round's check only by grace of the dispatch
  // barrier. The per-task fold makes the round count a pure function of
  // which relaxations succeeded — the distances themselves were already
  // deterministic (atomic-min fixpoint).
  bool changed = true;
  for (std::uint32_t round = 0; round < max_rounds && changed; ++round) {
    changed = parallel_for_dynamic_any(NodeId{0}, slots, [&](NodeId u) {
      if (graph.is_hole(u)) return false;
      const Weight du = dist[u].load(std::memory_order_relaxed);
      if (du == kInfWeight) return false;
      const auto nbrs = graph.neighbors(u);
      const bool weighted = graph.has_weights();
      const auto wts =
          weighted ? graph.edge_weights(u) : std::span<const Weight>{};
      bool relaxed_any = false;
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const Weight nd = du + (weighted ? wts[i] : Weight{1});
        Weight cur = dist[nbrs[i]].load(std::memory_order_relaxed);
        while (nd < cur) {
          if (dist[nbrs[i]].compare_exchange_weak(cur, nd,
                                                  std::memory_order_relaxed)) {
            relaxed_any = true;
            break;
          }
        }
      }
      return relaxed_any;
    });
  }
  std::vector<Weight> out(slots);
  for (NodeId s = 0; s < slots; ++s) out[s] = dist[s].load();
  return out;
}

}  // namespace graffix
