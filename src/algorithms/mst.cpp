#include "algorithms/mst.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "util/macros.hpp"
#include "util/parallel.hpp"

namespace graffix {

namespace {

struct UnionFind {
  std::vector<NodeId> parent;

  explicit UnionFind(NodeId n) : parent(n) {
    std::iota(parent.begin(), parent.end(), NodeId{0});
  }

  NodeId find(NodeId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }

  bool unite(NodeId a, NodeId b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (a < b) std::swap(a, b);
    parent[a] = b;
    return true;
  }
};

struct UEdge {
  NodeId u, v;
  Weight w;
};

std::vector<UEdge> undirected_edges(const Csr& graph) {
  std::vector<UEdge> edges;
  edges.reserve(graph.num_edges());
  const NodeId slots = graph.num_slots();
  for (NodeId u = 0; u < slots; ++u) {
    const auto nbrs = graph.neighbors(u);
    const bool weighted = graph.has_weights();
    const auto wts =
        weighted ? graph.edge_weights(u) : std::span<const Weight>{};
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId v = nbrs[i];
      if (v == u) continue;
      edges.push_back({u, v, weighted ? wts[i] : Weight{1}});
    }
  }
  return edges;
}

}  // namespace

MstResult mst_kruskal(const Csr& graph) {
  const NodeId slots = graph.num_slots();
  auto edges = undirected_edges(graph);
  std::sort(edges.begin(), edges.end(), [](const UEdge& a, const UEdge& b) {
    if (a.w != b.w) return a.w < b.w;
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  });

  UnionFind uf(slots);
  MstResult result;
  for (const UEdge& e : edges) {
    if (uf.unite(e.u, e.v)) {
      result.total_weight += e.w;
      ++result.edges_in_forest;
    }
  }
  NodeId roots = 0;
  for (NodeId s = 0; s < slots; ++s) {
    if (!graph.is_hole(s) && uf.find(s) == s) ++roots;
  }
  result.components = roots;
  return result;
}

MstResult mst_boruvka(const Csr& graph) {
  const NodeId slots = graph.num_slots();
  auto edges = undirected_edges(graph);

  std::vector<NodeId> comp(slots);
  std::iota(comp.begin(), comp.end(), NodeId{0});

  MstResult result;
  bool merged = true;
  while (merged) {
    merged = false;
    // Minimum outgoing edge per component. Ties broken by (w, u, v) for
    // determinism.
    struct Best {
      Weight w = kInfWeight;
      NodeId u = kInvalidNode;
      NodeId v = kInvalidNode;
    };
    std::vector<Best> best(slots);
    for (const UEdge& e : edges) {
      const NodeId cu = comp[e.u];
      const NodeId cv = comp[e.v];
      if (cu == cv) continue;
      auto better = [](const UEdge& edge, const Best& cur) {
        if (edge.w != cur.w) return edge.w < cur.w;
        if (edge.u != cur.u) return edge.u < cur.u;
        return edge.v < cur.v;
      };
      if (better(e, best[cu])) best[cu] = {e.w, e.u, e.v};
      if (better(e, best[cv])) best[cv] = {e.w, e.u, e.v};
    }
    // Hook: add each component's best edge (deduplicating the symmetric
    // pair via union-find semantics on comp labels).
    UnionFind uf(slots);
    for (NodeId s = 0; s < slots; ++s) uf.parent[s] = comp[s];
    for (NodeId c = 0; c < slots; ++c) {
      if (best[c].u == kInvalidNode) continue;
      if (uf.unite(best[c].u, best[c].v)) {
        result.total_weight += best[c].w;
        ++result.edges_in_forest;
        merged = true;
      }
    }
    if (!merged) break;
    // Compress labels.
    parallel_for(NodeId{0}, slots, [&](NodeId s) { comp[s] = uf.find(s); });
  }

  NodeId roots = 0;
  for (NodeId s = 0; s < slots; ++s) {
    if (!graph.is_hole(s) && comp[s] == s) ++roots;
  }
  // Count components properly (labels may not be self-rooted for holes).
  result.components = roots;
  return result;
}

}  // namespace graffix
