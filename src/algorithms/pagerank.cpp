#include "algorithms/pagerank.hpp"

#include <cmath>

#include "util/parallel.hpp"

namespace graffix {

PagerankResult pagerank(const Csr& graph, const PagerankParams& params) {
  const NodeId slots = graph.num_slots();
  const NodeId n = graph.num_nodes();
  PagerankResult result;
  result.rank.assign(slots, 0.0);
  if (n == 0) return result;

  const Csr reverse = graph.transpose();
  std::vector<NodeId> out_degree(slots);
  for (NodeId s = 0; s < slots; ++s) out_degree[s] = graph.degree(s);

  std::vector<double> rank(slots, 0.0);
  std::vector<double> next(slots, 0.0);
  const double init = 1.0 / n;
  for (NodeId s = 0; s < slots; ++s) {
    if (!graph.is_hole(s)) rank[s] = init;
  }

  const double base = (1.0 - params.damping) / n;
  for (std::uint32_t iter = 0; iter < params.max_iterations; ++iter) {
    ++result.iterations;
    // Dangling nodes leak their rank uniformly.
    double dangling = parallel_reduce_sum(NodeId{0}, slots, [&](NodeId s) {
      return (!graph.is_hole(s) && out_degree[s] == 0) ? rank[s] : 0.0;
    });
    const double dangling_share = params.damping * dangling / n;
    parallel_for_dynamic(NodeId{0}, slots, [&](NodeId v) {
      if (graph.is_hole(v)) return;
      double sum = 0.0;
      for (NodeId u : reverse.neighbors(v)) {
        sum += rank[u] / out_degree[u];
      }
      next[v] = base + dangling_share + params.damping * sum;
    });
    const double delta = parallel_reduce_sum(NodeId{0}, slots, [&](NodeId s) {
      return graph.is_hole(s) ? 0.0 : std::abs(next[s] - rank[s]);
    });
    rank.swap(next);
    if (delta < params.tolerance) break;
  }
  result.rank = std::move(rank);
  return result;
}

}  // namespace graffix
