#include "algorithms/bc.hpp"

#include <algorithm>

#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace graffix {

namespace {

/// One Brandes source pass; accumulates dependencies into `bc`.
void brandes_source(const Csr& graph, NodeId source, std::vector<double>& bc,
                    std::vector<NodeId>& level, std::vector<double>& sigma,
                    std::vector<double>& delta, std::vector<NodeId>& order) {
  const NodeId slots = graph.num_slots();
  std::fill(level.begin(), level.end(), kInvalidNode);
  std::fill(sigma.begin(), sigma.end(), 0.0);
  std::fill(delta.begin(), delta.end(), 0.0);
  order.clear();

  // Forward pass: BFS DAG with path counts.
  level[source] = 0;
  sigma[source] = 1.0;
  std::size_t head = 0;
  order.push_back(source);
  while (head < order.size()) {
    const NodeId u = order[head++];
    for (NodeId v : graph.neighbors(u)) {
      if (level[v] == kInvalidNode) {
        level[v] = level[u] + 1;
        order.push_back(v);
      }
      if (level[v] == level[u] + 1) {
        sigma[v] += sigma[u];
      }
    }
  }

  // Backward pass in reverse BFS order: delta accumulation (Eq. 1).
  for (std::size_t i = order.size(); i-- > 0;) {
    const NodeId u = order[i];
    for (NodeId v : graph.neighbors(u)) {
      if (level[v] == level[u] + 1 && sigma[v] > 0.0) {
        delta[u] += sigma[u] / sigma[v] * (1.0 + delta[v]);
      }
    }
    if (u != source) bc[u] += delta[u];
  }
  (void)slots;
}

}  // namespace

std::vector<double> betweenness_centrality(const Csr& graph,
                                           std::span<const NodeId> sources) {
  const NodeId slots = graph.num_slots();
  std::vector<double> bc(slots, 0.0);

  // Sources are partitioned into fixed-size blocks keyed by block id
  // (never by thread id, DESIGN.md §7): each block accumulates its
  // sources in source order into a private per-slot array, and blocks
  // are absorbed into `bc` in ascending block order, so the FP sum
  // grouping — and therefore the output — is bit-identical at every
  // thread count. (The previous raw `#pragma omp critical` merge summed
  // per-thread partials in team completion order, which was not.)
  // Blocks run in bounded-memory waves: a wave holds at most kWave
  // per-slot accumulators regardless of the source count.
  constexpr std::size_t kSourcesPerBlock = 32;
  constexpr std::size_t kWave = 64;
  const std::size_t num_blocks =
      (sources.size() + kSourcesPerBlock - 1) / kSourcesPerBlock;
  std::vector<std::vector<double>> block_bc(std::min(kWave, num_blocks));
  for (std::size_t wave_lo = 0; wave_lo < num_blocks; wave_lo += kWave) {
    const std::size_t wave_hi = std::min(wave_lo + kWave, num_blocks);
    parallel_for_dynamic(
        wave_lo, wave_hi,
        [&](std::size_t blk) {
          auto& local_bc = block_bc[blk - wave_lo];
          local_bc.assign(slots, 0.0);
          // graffix-lint: allow(R6) per-block BFS scratch amortized over 32 sources; pooling across blocks would share state between concurrent tasks
          std::vector<NodeId> level(slots);
          // graffix-lint: allow(R6) per-block scratch, same amortization as `level` above
          std::vector<double> sigma(slots);
          // graffix-lint: allow(R6) per-block scratch, same amortization as `level` above
          std::vector<double> delta(slots);
          std::vector<NodeId> order;
          // graffix-lint: allow(R6) one reserve per 32-source block; the per-source push_backs in brandes_source stay within it
          order.reserve(slots);
          const std::size_t lo = blk * kSourcesPerBlock;
          const std::size_t hi =
              std::min(lo + kSourcesPerBlock, sources.size());
          for (std::size_t i = lo; i < hi; ++i) {
            brandes_source(graph, sources[i], local_bc, level, sigma, delta,
                           order);
          }
        },
        1);
    // Absorb the wave parallel across slots: each slot's chain folds the
    // blocks in ascending block order — the same per-slot FP grouping
    // the serial blk-outer/s-inner loop produced — and distinct slots
    // never interact, so the absorb parallelizes without reassociating
    // anything (the serial walk used to cost O(waves * blocks * slots)
    // on one core).
    parallel_for(NodeId{0}, slots, [&](NodeId s) {
      double acc = bc[s];
      for (std::size_t blk = wave_lo; blk < wave_hi; ++blk) {
        acc += block_bc[blk - wave_lo][s];
      }
      bc[s] = acc;
    });
  }
  return bc;
}

std::vector<double> betweenness_centrality_all(const Csr& graph) {
  std::vector<NodeId> sources;
  const NodeId slots = graph.num_slots();
  sources.reserve(graph.num_nodes());
  for (NodeId s = 0; s < slots; ++s) {
    if (!graph.is_hole(s)) sources.push_back(s);
  }
  return betweenness_centrality(graph, sources);
}

std::vector<NodeId> sample_bc_sources(const Csr& graph, std::size_t count,
                                      std::uint64_t seed) {
  std::vector<NodeId> candidates;
  const NodeId slots = graph.num_slots();
  for (NodeId s = 0; s < slots; ++s) {
    if (!graph.is_hole(s) && graph.degree(s) > 0) candidates.push_back(s);
  }
  if (candidates.size() <= count) return candidates;
  Pcg32 rng = make_stream(seed, 0xbc);
  // Partial Fisher-Yates for the first `count` entries.
  for (std::size_t i = 0; i < count; ++i) {
    const auto j =
        i + rng.next_bounded(static_cast<std::uint32_t>(candidates.size() - i));
    std::swap(candidates[i], candidates[j]);
  }
  candidates.resize(count);
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

}  // namespace graffix
