#include "algorithms/steiner.hpp"

#include <cmath>
#include <limits>

#include "algorithms/sssp.hpp"
#include "util/macros.hpp"

namespace graffix {

SteinerResult steiner_2approx(std::span<const NodeId> terminals,
                              const DistanceOracle& oracle) {
  SteinerResult result;
  const std::size_t k = terminals.size();
  if (k == 0) return result;
  if (k == 1) {
    result.connected = true;
    return result;
  }

  // Terminal distance matrix: one oracle call per terminal.
  std::vector<std::vector<double>> dist(k, std::vector<double>(k, 0.0));
  for (std::size_t i = 0; i < k; ++i) {
    const auto from_i = oracle(terminals[i]);
    for (std::size_t j = 0; j < k; ++j) {
      dist[i][j] = from_i[terminals[j]];
    }
  }

  // Prim's MST over the complete terminal graph.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<bool> in_tree(k, false);
  std::vector<double> best(k, kInf);
  std::vector<std::size_t> parent(k, k);
  best[0] = 0.0;
  std::size_t joined = 0;
  for (std::size_t round = 0; round < k; ++round) {
    std::size_t pick = k;
    for (std::size_t i = 0; i < k; ++i) {
      if (!in_tree[i] && (pick == k || best[i] < best[pick])) pick = i;
    }
    if (pick == k || !std::isfinite(best[pick])) break;
    in_tree[pick] = true;
    ++joined;
    if (parent[pick] != k) {
      result.cost += best[pick];
      result.tree_edges.emplace_back(parent[pick], pick);
    }
    for (std::size_t i = 0; i < k; ++i) {
      if (!in_tree[i] && dist[pick][i] < best[i]) {
        best[i] = dist[pick][i];
        parent[i] = pick;
      }
    }
  }
  result.connected = joined == k;
  return result;
}

SteinerResult steiner_2approx(const Csr& graph,
                              std::span<const NodeId> terminals) {
  return steiner_2approx(terminals, [&](NodeId source) {
    const auto d = sssp_dijkstra(graph, source);
    return std::vector<double>(d.begin(), d.end());
  });
}

}  // namespace graffix
