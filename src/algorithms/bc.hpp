// Betweenness centrality via Brandes' algorithm (host reference),
// matching the paper's Algorithm 1: per-source forward BFS building the
// shortest-path DAG (sigma counts), backward dependency accumulation.
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace graffix {

/// Exact Brandes BC restricted to the given sources (pass all non-hole
/// slots for full exact BC). Parallelized over sources with per-thread
/// accumulators; deterministic.
[[nodiscard]] std::vector<double> betweenness_centrality(
    const Csr& graph, std::span<const NodeId> sources);

/// All-sources exact BC (small graphs / tests).
[[nodiscard]] std::vector<double> betweenness_centrality_all(const Csr& graph);

/// Deterministic source sample used by both exact and approximate BC runs
/// so that their attribute vectors are comparable (see DESIGN.md).
[[nodiscard]] std::vector<NodeId> sample_bc_sources(const Csr& graph,
                                                    std::size_t count,
                                                    std::uint64_t seed);

}  // namespace graffix
