#include "algorithms/scc.hpp"

#include <algorithm>

#include "util/macros.hpp"
#include "util/parallel.hpp"

namespace graffix {

SccResult scc_tarjan(const Csr& graph) {
  const NodeId slots = graph.num_slots();
  SccResult result;
  result.component.assign(slots, kInvalidNode);

  // Iterative Tarjan with an explicit frame stack.
  std::vector<NodeId> index(slots, kInvalidNode);
  std::vector<NodeId> lowlink(slots, 0);
  std::vector<std::uint8_t> on_stack(slots, 0);
  std::vector<NodeId> stack;
  struct Frame {
    NodeId node;
    EdgeId next_edge;
  };
  std::vector<Frame> frames;
  NodeId next_index = 0;

  for (NodeId root = 0; root < slots; ++root) {
    if (graph.is_hole(root) || index[root] != kInvalidNode) continue;
    frames.push_back({root, graph.edge_begin(root)});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;

    while (!frames.empty()) {
      Frame& frame = frames.back();
      const NodeId u = frame.node;
      if (frame.next_edge < graph.edge_end(u)) {
        const NodeId v = graph.targets()[frame.next_edge++];
        if (index[v] == kInvalidNode) {
          index[v] = lowlink[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = 1;
          frames.push_back({v, graph.edge_begin(v)});
        } else if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
      } else {
        if (lowlink[u] == index[u]) {
          NodeId member;
          do {
            member = stack.back();
            stack.pop_back();
            on_stack[member] = 0;
            result.component[member] = result.count;
          } while (member != u);
          ++result.count;
        }
        frames.pop_back();
        if (!frames.empty()) {
          const NodeId parent = frames.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
        }
      }
    }
  }
  return result;
}

namespace {

/// BFS reachability restricted to slots whose region == `region`.
void reach(const Csr& graph, NodeId pivot, const std::vector<NodeId>& region,
           NodeId region_id, std::vector<std::uint8_t>& mark) {
  std::vector<NodeId> frontier{pivot};
  mark[pivot] = 1;
  while (!frontier.empty()) {
    std::vector<NodeId> next;
    for (NodeId u : frontier) {
      for (NodeId v : graph.neighbors(u)) {
        if (!mark[v] && region[v] == region_id) {
          mark[v] = 1;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
}

}  // namespace

SccResult scc_fw_bw(const Csr& graph) {
  const NodeId slots = graph.num_slots();
  const Csr reverse = graph.transpose();
  SccResult result;
  result.component.assign(slots, kInvalidNode);

  // region[v]: id of the live subproblem v belongs to; kInvalidNode once
  // assigned to a component.
  std::vector<NodeId> region(slots, 0);
  for (NodeId s = 0; s < slots; ++s) {
    if (graph.is_hole(s)) region[s] = kInvalidNode;
  }

  // Trim: repeatedly peel vertices with no in- or out-edges within their
  // region; each is its own singleton SCC.
  bool trimmed = true;
  while (trimmed) {
    trimmed = false;
    for (NodeId u = 0; u < slots; ++u) {
      if (region[u] == kInvalidNode) continue;
      bool has_out = false;
      for (NodeId v : graph.neighbors(u)) {
        if (region[v] == region[u]) {
          has_out = true;
          break;
        }
      }
      bool has_in = false;
      if (has_out) {
        for (NodeId v : reverse.neighbors(u)) {
          if (region[v] == region[u]) {
            has_in = true;
            break;
          }
        }
      }
      if (!has_out || !has_in) {
        result.component[u] = result.count++;
        region[u] = kInvalidNode;
        trimmed = true;
      }
    }
  }

  std::vector<NodeId> worklist;
  for (NodeId s = 0; s < slots; ++s) {
    if (region[s] == 0) {
      worklist.push_back(0);
      break;
    }
  }
  NodeId next_region = 1;
  std::vector<std::uint8_t> fw(slots), bw(slots);
  while (!worklist.empty()) {
    const NodeId region_id = worklist.back();
    worklist.pop_back();
    // Find a pivot in this region.
    NodeId pivot = kInvalidNode;
    for (NodeId s = 0; s < slots; ++s) {
      if (region[s] == region_id) {
        pivot = s;
        break;
      }
    }
    if (pivot == kInvalidNode) continue;

    std::fill(fw.begin(), fw.end(), 0);
    std::fill(bw.begin(), bw.end(), 0);
    reach(graph, pivot, region, region_id, fw);
    reach(reverse, pivot, region, region_id, bw);

    const NodeId scc_label = result.count++;
    NodeId r_fw = kInvalidNode, r_bw = kInvalidNode, r_rest = kInvalidNode;
    for (NodeId s = 0; s < slots; ++s) {
      if (region[s] != region_id) continue;
      if (fw[s] && bw[s]) {
        result.component[s] = scc_label;
        region[s] = kInvalidNode;
      } else if (fw[s]) {
        if (r_fw == kInvalidNode) {
          r_fw = next_region++;
          worklist.push_back(r_fw);
        }
        region[s] = r_fw;
      } else if (bw[s]) {
        if (r_bw == kInvalidNode) {
          r_bw = next_region++;
          worklist.push_back(r_bw);
        }
        region[s] = r_bw;
      } else {
        if (r_rest == kInvalidNode) {
          r_rest = next_region++;
          worklist.push_back(r_rest);
        }
        region[s] = r_rest;
      }
    }
  }
  return result;
}

}  // namespace graffix
