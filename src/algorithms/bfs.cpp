#include "algorithms/bfs.hpp"

#include <atomic>

#include "util/bitset.hpp"
#include "util/macros.hpp"
#include "util/parallel.hpp"

namespace graffix {

std::vector<NodeId> parallel_bfs(const Csr& graph, NodeId source) {
  const NodeId slots = graph.num_slots();
  GRAFFIX_CHECK(source < slots && !graph.is_hole(source), "bad source %u",
                source);
  std::vector<NodeId> level(slots, kInvalidNode);
  level[source] = 0;
  std::vector<NodeId> frontier{source};
  AtomicBitset next_mask(slots);
  NodeId depth = 0;
  while (!frontier.empty()) {
    ++depth;
    next_mask.clear();
    parallel_for_dynamic(std::size_t{0}, frontier.size(), [&](std::size_t i) {
      const NodeId u = frontier[i];
      for (NodeId v : graph.neighbors(u)) {
        if (level[v] == kInvalidNode && next_mask.set(v)) {
          level[v] = depth;
        }
      }
    });
    std::vector<NodeId> next;
    for (NodeId s = 0; s < slots; ++s) {
      if (next_mask.test(s)) next.push_back(s);
    }
    frontier.swap(next);
  }
  return level;
}

}  // namespace graffix
