#include "algorithms/bfs.hpp"

#include <algorithm>
#include <atomic>

#include "util/bitset.hpp"
#include "util/macros.hpp"
#include "util/parallel.hpp"

namespace graffix {

std::vector<NodeId> parallel_bfs(const Csr& graph, NodeId source) {
  const NodeId slots = graph.num_slots();
  GRAFFIX_CHECK(source < slots && !graph.is_hole(source), "bad source %u",
                source);
  std::vector<NodeId> level(slots, kInvalidNode);
  level[source] = 0;
  std::vector<NodeId> frontier{source};
  AtomicBitset next_mask(slots);
  NodeId depth = 0;
  while (!frontier.empty()) {
    ++depth;
    next_mask.clear();
    // Frontier generation via the segmented-append helper: each task
    // collects the vertices it claims (the next_mask CAS arbitrates
    // duplicates) into a private segment and the segments concatenate
    // in task order. Which task wins a contended claim is scheduling-
    // dependent, so the concatenation is canonicalized with one sort —
    // restoring exactly the ascending order the old O(slots)-per-level
    // mask rescan produced, without paying O(slots) on every level of
    // a narrow frontier. Levels are deterministic either way (every
    // discovery this wave assigns the same depth).
    std::vector<NodeId> next;
    parallel_append(
        std::size_t{0}, frontier.size(), next,
        [&](std::size_t i, std::vector<NodeId>& seg) {
          const NodeId u = frontier[i];
          for (NodeId v : graph.neighbors(u)) {
            if (level[v] == kInvalidNode && next_mask.set(v)) {
              // graffix-lint: allow(R5) only the winner of the next_mask CAS claim writes level[v], and every candidate writer this wave carries the same depth
              level[v] = depth;
              seg.push_back(v);
            }
          }
        });
    std::sort(next.begin(), next.end());
    frontier.swap(next);
  }
  return level;
}

}  // namespace graffix
