// Parallel breadth-first search (host reference).
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace graffix {

/// Level-synchronous parallel BFS over out-edges. Unreachable slots and
/// holes end at kInvalidNode.
[[nodiscard]] std::vector<NodeId> parallel_bfs(const Csr& graph, NodeId source);

}  // namespace graffix
