// Round-based conflict-free batching for the order-dependent greedy
// transform phases (DESIGN.md §7, "batched greedy phases").
//
// The serial greedy phases (latency scenario-1/2 edge insertion,
// replication candidate application) walk a sorted candidate list in
// order, mutating shared adjacency state as they go. Batching preserves
// the serial semantics exactly: each round scans the pending candidates
// in serial order and admits a candidate iff its read/write footprint
// (a set of adjacency rows) is disjoint from the footprint of EVERY
// pending candidate scanned before it this round, admitted or deferred.
// An admitted candidate therefore commutes with all earlier pending
// work — no earlier pending candidate can read or write any row it
// touches — so applying the whole batch concurrently and re-scanning
// the survivors next round reproduces the serial result byte for byte
// at any thread count.
//
// Global edge budgets are order-sensitive in a way row footprints are
// not (every candidate reads the shared arcs-added counter), so the
// scan additionally reserves each scanned candidate's worst-case arc
// cost: a candidate is admitted only while the running reservation
// still fits the budget, which guarantees no admitted candidate's
// serial budget check could have fired. When the first pending
// candidate no longer fits, every candidate before it has been applied,
// its exact serial counter is reconstructible, and it runs under the
// serial reference semantics (including the hard budget break).
//
// The pre-batching serial loops are kept as the reference oracle:
// setting GRAFFIX_SERIAL_TRANSFORMS=1 in the environment (or
// set_serial_transforms_for_test) forces them process-wide, and
// tests/transform_differential_test.cpp pins batched == serial on the
// whole generator suite.
#pragma once

#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "util/arena.hpp"
#include "util/parallel.hpp"
#include "util/types.hpp"

namespace graffix::transform {

/// True when the serial reference oracle is forced: the greedy phases
/// run their original strictly-serial loops instead of conflict-free
/// batching. Driven by the GRAFFIX_SERIAL_TRANSFORMS environment
/// variable (any value except "0"), read once per process.
[[nodiscard]] bool serial_transforms();

/// Test override: 1 forces serial, 0 forces batched, -1 restores the
/// environment-variable behavior. Prefer the ScopedSerialTransforms
/// RAII guard below — a raw set leaks the override into later tests
/// when an ASSERT fails or the body throws before the restore line.
void set_serial_transforms_for_test(int force);

/// RAII form of set_serial_transforms_for_test: forces the given mode
/// (1 = serial oracle, 0 = batched) for the guard's lifetime and
/// restores the environment-driven selection on scope exit.
class ScopedSerialTransforms {
 public:
  explicit ScopedSerialTransforms(int force) {
    set_serial_transforms_for_test(force);
  }
  ~ScopedSerialTransforms() { set_serial_transforms_for_test(-1); }
  ScopedSerialTransforms(const ScopedSerialTransforms&) = delete;
  ScopedSerialTransforms& operator=(const ScopedSerialTransforms&) = delete;
};

/// Epoch-stamped row-claim set: O(1) clear, O(1) claim/lookup. One
/// instance is reused across all rounds of a phase so the stamp array is
/// allocated once.
class RowClaims {
 public:
  explicit RowClaims(std::size_t rows) : stamp_(rows, 0) {}

  /// Forgets all claims (epoch bump; the stamp array is rewritten only
  /// on the ~never-happens epoch wraparound).
  void clear() {
    if (++epoch_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      epoch_ = 1;
    }
  }

  [[nodiscard]] bool claimed(NodeId row) const {
    return stamp_[row] == epoch_;
  }
  void claim(NodeId row) { stamp_[row] = epoch_; }

  [[nodiscard]] bool any_claimed(std::span<const NodeId> rows) const {
    for (NodeId row : rows) {
      if (claimed(row)) return true;
    }
    return false;
  }
  void claim_all(std::span<const NodeId> rows) {
    for (NodeId row : rows) claim(row);
  }

 private:
  // Arena-pooled: one stamp array per transform phase, reacquired for
  // every phase of every transform in a pipeline run.
  ArenaVector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;  // 0 is never a live epoch
};

/// Per-phase batching telemetry (printed by the Table 5 bench).
struct BatchTelemetry {
  std::uint64_t rounds = 0;        // conflict-free rounds executed
  std::uint64_t batched = 0;       // candidates applied inside batches
  std::uint64_t serial_steps = 0;  // budget-tail candidates run serially
  std::uint64_t max_batch = 0;     // largest single batch
};

/// Drives one greedy phase through conflict-free rounds.
///
/// Candidates are identified by their position in the phase's sorted
/// list (0..n_candidates), which IS the serial processing order.
/// Callbacks:
///   footprint(idx, rows)  — appends the adjacency rows candidate idx
///                           reads or writes, evaluated on current state.
///   cost_cap(idx)         — worst-case arcs the candidate can insert
///                           (an upper bound valid for the candidate's
///                           eventual serial execution, e.g. the
///                           per-anchor knob cap).
///   apply(idx)            — executes the candidate, returns arcs
///                           inserted. Called from a parallel loop for
///                           batch members; admission guarantees members
///                           touch disjoint rows and that `arcs_used`
///                           stays at its round-entry value while the
///                           batch runs.
///   serial_step(idx, serial_arcs_before)
///                         — executes the candidate under the exact
///                           serial semantics (per-insertion budget
///                           checks against the reconstructed serial
///                           counter), returns arcs inserted.
///
/// `arcs_used` is the phase's shared arcs-added counter (may carry
/// arcs from an earlier phase); the phase ends early once it reaches
/// `budget`, mirroring the serial loops' top-of-loop break. Phases with
/// no budget semantics pass budget = UINT64_MAX and a zero cost_cap.
template <typename FootprintFn, typename CostFn, typename ApplyFn,
          typename SerialStepFn>
BatchTelemetry run_budgeted_rounds(std::size_t n_candidates, RowClaims& claims,
                                   std::uint64_t budget,
                                   std::uint64_t& arcs_used,
                                   FootprintFn&& footprint, CostFn&& cost_cap,
                                   ApplyFn&& apply, SerialStepFn&& serial_step) {
  BatchTelemetry telemetry;
  const std::uint64_t entry_arcs = arcs_used;
  // Round scratch is arena-pooled: the same five lists are torn down and
  // rebuilt for every phase of every transform, so steady-state pipeline
  // runs reuse the pooled blocks instead of re-touching the kernel
  // allocator (DESIGN.md §9).
  ArenaVector<std::uint32_t> pending(n_candidates);
  std::iota(pending.begin(), pending.end(), 0u);
  // Arcs actually inserted per candidate position; prefix sums over it
  // reconstruct the exact serial counter for the budget-tail path.
  ArenaVector<std::uint64_t> actual(n_candidates, 0);
  ArenaVector<std::uint32_t> batch, kept;
  std::vector<NodeId> rows;
  while (!pending.empty()) {
    claims.clear();
    batch.clear();
    kept.clear();
    std::uint64_t reserved = 0;  // worst-case arcs of scanned candidates
    bool budget_stop = false;
    std::size_t scan = 0;
    for (; scan < pending.size(); ++scan) {
      const std::uint32_t idx = pending[scan];
      const std::uint64_t cost = cost_cap(idx);
      if (arcs_used + reserved + cost > budget) {
        budget_stop = true;
        break;
      }
      // Reserve even when deferring: a deferred candidate still runs
      // before every later candidate in serial order, so later
      // admissions must leave room for its worst case.
      reserved += cost;
      rows.clear();
      footprint(idx, rows);
      if (claims.any_claimed(rows)) {
        kept.push_back(idx);
      } else {
        batch.push_back(idx);
      }
      claims.claim_all(rows);
    }
    if (budget_stop && batch.empty() && kept.empty()) {
      // First pending candidate: everything before it (in serial order)
      // has been applied, so its serial counter is exact.
      const std::uint32_t idx = pending.front();
      std::uint64_t serial_before = entry_arcs;
      for (std::uint32_t i = 0; i < idx; ++i) serial_before += actual[i];
      if (serial_before >= budget) {
        // The serial loop breaks here; monotonicity of the serial
        // counter means it would also have broken before every later
        // candidate (none of which can have been admitted: admission
        // proves the serial counter stays below the budget).
        pending.clear();
        break;
      }
      const std::uint64_t got = serial_step(idx, serial_before);
      actual[idx] = got;
      arcs_used += got;
      ++telemetry.serial_steps;
      pending.erase(pending.begin());
      continue;
    }
    if (!batch.empty()) {
      parallel_for_each_dynamic(
          batch, [&](std::uint32_t idx, std::size_t) { actual[idx] = apply(idx); });
      for (std::uint32_t idx : batch) arcs_used += actual[idx];
      telemetry.batched += batch.size();
      telemetry.max_batch = std::max<std::uint64_t>(telemetry.max_batch,
                                                    batch.size());
    }
    ++telemetry.rounds;
    if (budget_stop) {
      kept.insert(kept.end(), pending.begin() + scan, pending.end());
    }
    pending.swap(kept);
  }
  return telemetry;
}

}  // namespace graffix::transform
