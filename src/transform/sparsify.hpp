// Comparator: algorithm-agnostic approximation by edge sparsification,
// standing in for Singh & Nasre's earlier approximate-computing baseline
// (TMSCS 2018, the paper's reference [28]). The paper positions Graffix
// against it: "the average inaccuracy using their method is close to
// 20%. In contrast, Graffix incurs only half of its precision loss."
//
// The 2018 work drops graph elements uniformly to shrink the work; this
// module implements the edge-dropping variant with a drop-fraction knob
// so `bench_extension_vs_sparsification` can reproduce the comparison:
// at matched speedups, structured (Graffix) approximation should lose
// roughly half the accuracy of unstructured dropping.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace graffix::transform {

struct SparsifyKnobs {
  /// Fraction of edges dropped uniformly at random.
  double drop_fraction = 0.1;
  /// Keep at least one outgoing edge per vertex (prevents creating
  /// artificial sinks, which would disconnect SSSP/BC wholesale).
  bool keep_one_edge_per_vertex = true;
  std::uint64_t seed = 0x5a55;
};

struct SparsifyResult {
  Csr graph;
  std::uint64_t edges_dropped = 0;
};

/// Uniform random edge dropping. Deterministic for a fixed seed.
[[nodiscard]] SparsifyResult sparsify_transform(const Csr& graph,
                                                const SparsifyKnobs& knobs);

}  // namespace graffix::transform
