// Transform-boundary invariant checking — the runtime complement to
// graffix-lint (DESIGN.md §8). graffix-lint catches policy violations at
// build time; these checks catch *structural* violations (a transform
// emitting a malformed CSR or an inconsistent replica map) at run time.
// They are free unless GRAFFIX_VALIDATE=1 is set, in which case every
// transform phase re-validates its output and aborts with the phase name
// on the first violation.
#pragma once

#include "graph/validate.hpp"
#include "transform/confluence.hpp"

namespace graffix::transform {

/// Replica-group bijectivity: group_of_slot and groups must describe the
/// same relation. Checks that group_of_slot covers every slot, that each
/// listed member is in range, a non-hole, and maps back to its group,
/// that no slot appears in two groups, and that every slot with an
/// assigned group is listed — i.e. membership is a bijection between
/// {slots with group_of_slot != kInvalidNode} and the union of groups.
[[nodiscard]] ValidationReport validate_replica_groups(
    const Csr& graph, const ReplicaMap& replicas);

/// When GRAFFIX_VALIDATE is on: validates the graph (and, when given,
/// the replica map) and aborts naming `phase` on the first violation.
/// No-op otherwise. Phase names are hierarchical, e.g.
/// "coalescing/renumber", "pipeline/combined".
void check_transform_phase(const char* phase, const Csr& graph,
                           const ReplicaMap* replicas = nullptr);

}  // namespace graffix::transform
