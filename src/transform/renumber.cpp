#include "transform/renumber.hpp"

#include <algorithm>
#include <numeric>
#include <span>

#include "util/macros.hpp"
#include "util/parallel.hpp"
#include "util/prefix_sum.hpp"

namespace graffix::transform {

namespace {

/// BFS levels with downward relaxation across multiple roots (§2.2):
/// roots picked in decreasing out-degree among unvisited nodes; a later
/// traversal may lower levels of already-visited nodes.
std::vector<NodeId> forest_levels(const Csr& graph) {
  const NodeId n = graph.num_slots();
  std::vector<NodeId> level(n, kInvalidNode);
  std::vector<std::uint8_t> visited(n, 0);

  std::vector<NodeId> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), NodeId{0});
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](NodeId a, NodeId b) {
                     return graph.degree(a) > graph.degree(b);
                   });

  std::vector<NodeId> queue;
  for (NodeId root : by_degree) {
    if (visited[root]) continue;
    visited[root] = 1;
    level[root] = 0;
    queue.clear();
    queue.push_back(root);
    std::size_t head = 0;
    while (head < queue.size()) {
      const NodeId u = queue[head++];
      const NodeId next_level = level[u] + 1;
      for (NodeId v : graph.neighbors(u)) {
        if (next_level < level[v]) {
          level[v] = next_level;
          visited[v] = 1;
          queue.push_back(v);
        }
      }
    }
  }
  return level;
}

}  // namespace

RenumberResult renumber_bfs_forest(const Csr& graph, std::uint32_t k) {
  GRAFFIX_CHECK(k >= 1 && k <= 32, "chunk size %u out of [1,32]", k);
  GRAFFIX_CHECK(!graph.has_holes(),
                "renumbering expects an untransformed graph");
  const NodeId n = graph.num_slots();

  RenumberResult result;
  result.chunk_size = k;
  result.slot_of_node.assign(n, kInvalidNode);
  if (n == 0) {
    result.num_slots = 0;
    return result;
  }

  const std::vector<NodeId> level = forest_levels(graph);
  NodeId num_levels = 0;
  for (NodeId v = 0; v < n; ++v) {
    GRAFFIX_DCHECK(level[v] != kInvalidNode, "node %u unleveled", v);
    num_levels = std::max(num_levels, level[v] + 1);
  }

  std::vector<std::vector<NodeId>> by_level(num_levels);
  for (NodeId v = 0; v < n; ++v) by_level[level[v]].push_back(v);

  // Level 0 = the BFS roots, numbered in root pick order (decreasing
  // out-degree, stable by id).
  std::stable_sort(by_level[0].begin(), by_level[0].end(),
                   [&](NodeId a, NodeId b) {
                     return graph.degree(a) > graph.degree(b);
                   });

  const auto align_up = [k](NodeId x) {
    return static_cast<NodeId>((x + k - 1) / k * k);
  };

  NodeId gid = 0;
  result.level_start.push_back(0);
  for (NodeId v : by_level[0]) result.slot_of_node[v] = gid++;

  for (NodeId i = 0; i + 1 < num_levels; ++i) {
    gid = align_up(gid);
    result.level_start.push_back(gid);

    // Members of level i in slot order — the round-robin visits the j-th
    // neighbor of each parent in the order the parents will be processed.
    std::vector<NodeId> parents = by_level[i];
    // graffix-lint: allow(R4) comparator is a total order: slot_of_node is injective over the already-placed parents
    std::sort(parents.begin(), parents.end(), [&](NodeId a, NodeId b) {
      return result.slot_of_node[a] < result.slot_of_node[b];
    });
    NodeId max_degree = 0;
    for (NodeId p : parents) max_degree = std::max(max_degree, graph.degree(p));

    for (NodeId j = 0; j < max_degree; ++j) {
      for (NodeId p : parents) {
        if (graph.degree(p) <= j) continue;
        const NodeId child = graph.neighbors(p)[j];
        if (level[child] == i + 1 &&
            result.slot_of_node[child] == kInvalidNode) {
          result.slot_of_node[child] = gid++;
        }
      }
    }
    // Defensive: number any level-(i+1) nodes not reached through a
    // parent's adjacency position (cannot happen at level fixpoint, but
    // keeps the bijection total).
    for (NodeId v : by_level[i + 1]) {
      if (result.slot_of_node[v] == kInvalidNode) {
        result.slot_of_node[v] = gid++;
      }
    }
  }

  result.num_slots = align_up(gid);
  result.node_of_slot.assign(result.num_slots, kInvalidNode);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId s = result.slot_of_node[v];
    GRAFFIX_DCHECK(s < result.num_slots, "slot overflow");
    GRAFFIX_DCHECK(result.node_of_slot[s] == kInvalidNode, "slot clash");
    result.node_of_slot[s] = v;
  }

  // Levels per slot from the level_start boundaries.
  result.level_of_slot.assign(result.num_slots, 0);
  for (NodeId lvl = 0; lvl < result.num_levels(); ++lvl) {
    const NodeId lo = result.level_start[lvl];
    const NodeId hi = (lvl + 1 < result.num_levels())
                          ? result.level_start[lvl + 1]
                          : result.num_slots;
    for (NodeId s = lo; s < hi; ++s) result.level_of_slot[s] = lvl;
  }
  return result;
}

Csr apply_renumbering(const Csr& graph, const RenumberResult& renumber) {
  // Parallel permuted rebuild: per-slot degrees -> deterministic scan ->
  // per-slot scatter. Each slot's edge range is fixed before the scatter,
  // so the output is identical for every thread count.
  const NodeId slots = renumber.num_slots;
  std::vector<EdgeId> offsets(static_cast<std::size_t>(slots) + 1, 0);
  std::vector<std::uint8_t> holes(slots, 0);
  parallel_for(NodeId{0}, slots, [&](NodeId s) {
    if (renumber.is_hole_slot(s)) {
      holes[s] = 1;
    } else {
      offsets[s] = graph.degree(renumber.node_of_slot[s]);
    }
  });
  parallel_exclusive_scan_inplace(std::span<EdgeId>(offsets));

  std::vector<NodeId> targets(graph.num_edges());
  std::vector<Weight> weights(graph.has_weights() ? graph.num_edges() : 0);
  parallel_for_dynamic(NodeId{0}, slots, [&](NodeId s) {
    if (holes[s]) return;
    const NodeId old = renumber.node_of_slot[s];
    const auto nbrs = graph.neighbors(old);
    EdgeId pos = offsets[s];
    for (std::size_t i = 0; i < nbrs.size(); ++i, ++pos) {
      targets[pos] = renumber.slot_of_node[nbrs[i]];
      if (!weights.empty()) weights[pos] = graph.edge_weights(old)[i];
    }
  });
  return Csr(std::move(offsets), std::move(targets), std::move(weights),
             std::move(holes));
}

}  // namespace graffix::transform
