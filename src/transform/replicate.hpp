// Step 2 of the coalescing transform (Algorithm 2, ReplicateVertex):
// fill the renumbered graph's holes with replicas of well-connected nodes.
//
// The slot array is viewed as chunks of size k (one warp processes two
// k=16 chunks). For every (node n, chunk C) pair with
//
//   connectedness(n, C) = edges from n into C / non-hole nodes of C
//
// at or above the threshold, n is replicated into a free hole in a chunk
// at C's parent level — preferring the chunk that actually holds BFS
// parents of C's members — so that when the warp covering that parent
// chunk enumerates neighbors, the replica's accesses into C coalesce with
// its siblings'. The replica takes over n's edges into C and gains a few
// 2-hop edges inside C (the controlled approximation). Candidates beyond
// the available holes are dropped in decreasing edge-count order (§2.3).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "transform/batch.hpp"
#include "transform/confluence.hpp"
#include "transform/knobs.hpp"
#include "transform/renumber.hpp"

namespace graffix::transform {

struct ReplicationResult {
  Csr graph;            // holes filled by replicas; unfilled holes remain
  ReplicaMap replicas;  // slot-level groups (primary first)
  std::uint64_t edges_moved = 0;  // from primaries to replicas
  std::uint64_t edges_added = 0;  // new 2-hop edges (the approximation)
  NodeId holes_total = 0;
  NodeId holes_filled = 0;
  /// Wall-clock seconds spent in the greedy candidate-application phase
  /// (the Table 5 per-phase scaling rows).
  double greedy_seconds = 0.0;
  /// Conflict-free round structure of the apply phase (all-batched
  /// zeros when the serial reference oracle is forced).
  BatchTelemetry batching;
};

/// Applies replication to a renumbered, hole-aware graph.
[[nodiscard]] ReplicationResult replicate_into_holes(
    const Csr& renumbered, const RenumberResult& renumber,
    const CoalescingKnobs& knobs);

}  // namespace graffix::transform
