#include "transform/confluence.hpp"

#include <atomic>
#include <cmath>

#include "util/parallel.hpp"

namespace graffix::transform {

namespace {
template <typename T>
std::size_t finite_mean_impl(const ReplicaMap& map, std::span<T> attr) {
  // Replica groups partition the slots they touch (group_of_slot maps
  // each slot to at most one group), so per-group parallelism is
  // race-free; within a group the accumulation order is fixed, so the
  // merged values are independent of thread count.
  std::atomic<std::size_t> merges{0};
  parallel_for_dynamic(std::size_t{0}, map.groups.size(), [&](std::size_t g) {
    const auto& group = map.groups[g];
    if (group.size() < 2) return;
    double sum = 0.0;
    std::size_t finite = 0;
    for (NodeId s : group) {
      if (std::isfinite(static_cast<double>(attr[s]))) {
        sum += static_cast<double>(attr[s]);
        ++finite;
      }
    }
    if (finite == 0) return;
    merges.fetch_add(1, std::memory_order_relaxed);
    const T merged = static_cast<T>(sum / static_cast<double>(finite));
    // graffix-lint: allow(R5) replica groups partition the slot space, so no two tasks touch the same attr[s]
    for (NodeId s : group) attr[s] = merged;
  });
  return merges.load();
}
}  // namespace

std::size_t merge_replicas_finite_mean(const ReplicaMap& map,
                                       std::span<float> attr) {
  return finite_mean_impl(map, attr);
}

std::size_t merge_replicas_finite_mean(const ReplicaMap& map,
                                       std::span<double> attr) {
  return finite_mean_impl(map, attr);
}

}  // namespace graffix::transform
