#include "transform/confluence.hpp"

#include <cmath>

namespace graffix::transform {

namespace {
template <typename T>
std::size_t finite_mean_impl(const ReplicaMap& map, std::span<T> attr) {
  std::size_t merges = 0;
  for (const auto& group : map.groups) {
    if (group.size() < 2) continue;
    double sum = 0.0;
    std::size_t finite = 0;
    for (NodeId s : group) {
      if (std::isfinite(static_cast<double>(attr[s]))) {
        sum += static_cast<double>(attr[s]);
        ++finite;
      }
    }
    if (finite == 0) continue;
    ++merges;
    const T merged = static_cast<T>(sum / static_cast<double>(finite));
    for (NodeId s : group) attr[s] = merged;
  }
  return merges;
}
}  // namespace

std::size_t merge_replicas_finite_mean(const ReplicaMap& map,
                                       std::span<float> attr) {
  return finite_mean_impl(map, attr);
}

std::size_t merge_replicas_finite_mean(const ReplicaMap& map,
                                       std::span<double> attr) {
  return finite_mean_impl(map, attr);
}

}  // namespace graffix::transform
