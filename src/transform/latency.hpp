// §3 memory-latency transform: clustering-coefficient driven
// shared-memory clusters plus CC-boosting edge insertion.
//
// Nodes whose CC clears the threshold anchor clusters (the node plus its
// immediate neighbors) that the simulator keeps resident in shared
// memory. Two edge-insertion schemes add the controlled approximation:
// (1) nodes just below the threshold get edges between neighbor pairs
// that share a common neighbor, lifting them over the cutoff; (2) nodes
// already above it get edges between their least-connected neighbors,
// densifying the cluster. A global edge budget bounds the inaccuracy.
// Each cluster is processed for t ~ 2 x (subgraph diameter) inner
// iterations (§3's reuse guideline).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "transform/batch.hpp"
#include "transform/knobs.hpp"

namespace graffix::transform {

struct Cluster {
  std::vector<NodeId> members;  // anchor first
  std::uint32_t inner_iterations = 1;  // t
};

struct ClusterSchedule {
  std::vector<Cluster> clusters;
  /// Per-slot cluster id; kInvalidNode when not resident. A slot belongs
  /// to at most one cluster.
  std::vector<NodeId> resident;

  [[nodiscard]] bool empty() const { return clusters.empty(); }
  [[nodiscard]] std::size_t resident_count() const {
    std::size_t count = 0;
    for (const auto& c : clusters) count += c.members.size();
    return count;
  }
};

struct LatencyResult {
  Csr graph;  // original plus inserted edges (same node ids, no holes)
  ClusterSchedule schedule;
  std::uint64_t edges_added = 0;
  double extra_space_fraction = 0.0;
  double mean_cc_before = 0.0;
  double mean_cc_after = 0.0;
  /// Wall-clock seconds spent in the scenario-1/2 greedy insertion
  /// phases (the Table 5 per-phase scaling rows).
  double greedy_seconds = 0.0;
  /// Conflict-free round structure of the greedy phases (all-batched
  /// zeros when the serial reference oracle is forced).
  BatchTelemetry batching;
};

/// Runs the latency transform. With an edge budget of 0 no edges are
/// inserted and only naturally high-CC clusters are scheduled (exact
/// structure; useful for ablation).
[[nodiscard]] LatencyResult latency_transform(const Csr& graph,
                                              const LatencyKnobs& knobs);

}  // namespace graffix::transform
