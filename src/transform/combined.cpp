#include "transform/combined.hpp"

#include "transform/validate.hpp"
#include "util/timer.hpp"

namespace graffix::transform {

CombinedResult combined_transform(const Csr& graph,
                                  const CombinedKnobs& knobs) {
  WallTimer timer;
  CombinedResult result;
  result.graph = graph;

  if (knobs.coalescing.has_value()) {
    CoalescingResult stage = coalescing_transform(result.graph,
                                                  *knobs.coalescing);
    result.graph = std::move(stage.graph);
    result.renumber = std::move(stage.renumber);
    result.replicas = std::move(stage.replicas);
    result.edges_added += stage.edges_added;
    check_transform_phase("combined/coalescing", result.graph,
                          &result.replicas);
  }

  if (knobs.latency.has_value()) {
    LatencyResult stage = latency_transform(result.graph, *knobs.latency);
    result.graph = std::move(stage.graph);
    result.schedule = std::move(stage.schedule);
    result.edges_added += stage.edges_added;

    // Replicated slots stay out of shared-memory clusters: their values
    // are rewritten by the confluence every iteration, so inner-round
    // refinements on them are immediately invalidated and the two
    // approximations fight each other (measurably slower convergence).
    if (!result.replicas.empty() && !result.schedule.empty()) {
      ClusterSchedule filtered;
      filtered.resident.assign(result.graph.num_slots(), kInvalidNode);
      for (const Cluster& cluster : result.schedule.clusters) {
        Cluster kept;
        kept.inner_iterations = cluster.inner_iterations;
        for (NodeId member : cluster.members) {
          if (result.replicas.group_of_slot[member] == kInvalidNode) {
            kept.members.push_back(member);
          }
        }
        if (kept.members.size() < 3) continue;
        const auto id = static_cast<NodeId>(filtered.clusters.size());
        for (NodeId member : kept.members) filtered.resident[member] = id;
        filtered.clusters.push_back(std::move(kept));
      }
      result.schedule = std::move(filtered);
    }
    check_transform_phase("combined/latency", result.graph,
                          result.replicas.empty() ? nullptr
                                                  : &result.replicas);
  }

  if (knobs.divergence.has_value()) {
    DivergenceKnobs divergence = *knobs.divergence;
    // Never reshuffle a chunk-aligned layout (see header).
    if (result.renumber.has_value()) divergence.preserve_order = true;
    DivergenceResult stage = divergence_transform(result.graph, divergence);
    result.graph = std::move(stage.graph);
    if (!divergence.preserve_order) {
      result.warp_order = std::move(stage.warp_order);
    }
    result.edges_added += stage.edges_added;
    check_transform_phase("combined/divergence", result.graph,
                          result.replicas.empty() ? nullptr
                                                  : &result.replicas);
  }

  const double before = static_cast<double>(graph.memory_bytes());
  const double after = static_cast<double>(result.graph.memory_bytes());
  result.extra_space_fraction = before == 0.0 ? 0.0 : (after - before) / before;
  result.preprocessing_seconds = timer.seconds();
  return result;
}

}  // namespace graffix::transform
