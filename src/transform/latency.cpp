#include "transform/latency.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/properties.hpp"
#include "graph/rebuild.hpp"
#include "transform/batch.hpp"
#include "transform/validate.hpp"
#include "util/parallel.hpp"
#include "util/macros.hpp"
#include "util/timer.hpp"

namespace graffix::transform {

namespace {

using Arc = ExtraArc;

/// Sorted undirected adjacency with weights (min over directions). Row u
/// merges u's out-neighbors with its in-neighbors (from the transpose),
/// so each row is built independently — parallel and deterministic.
std::vector<std::vector<Arc>> undirected_adjacency(const Csr& graph) {
  const NodeId n = graph.num_slots();
  std::vector<std::vector<Arc>> und(n);
  const bool weighted = graph.has_weights();
  const Csr rev = graph.transpose();
  parallel_for_dynamic(NodeId{0}, n, [&](NodeId u) {
    auto& list = und[u];
    const auto out = graph.neighbors(u);
    const auto in = rev.neighbors(u);
    list.reserve(out.size() + in.size());
    const auto out_w =
        weighted ? graph.edge_weights(u) : std::span<const Weight>{};
    const auto in_w =
        weighted ? rev.edge_weights(u) : std::span<const Weight>{};
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (out[i] == u) continue;
      list.push_back({out[i], weighted ? out_w[i] : Weight{1}});
    }
    for (std::size_t i = 0; i < in.size(); ++i) {
      if (in[i] == u) continue;
      list.push_back({in[i], weighted ? in_w[i] : Weight{1}});
    }
    // graffix-lint: allow(R4) comparator is a total order on Arc values ((dst, w) lexicographic); ties are value-identical arcs
    std::sort(list.begin(), list.end(), [](const Arc& a, const Arc& b) {
      if (a.dst != b.dst) return a.dst < b.dst;
      return a.w < b.w;
    });
    list.erase(std::unique(list.begin(), list.end(),
                           [](const Arc& a, const Arc& b) {
                             return a.dst == b.dst;
                           }),
               list.end());
  });
  return und;
}

bool und_has_edge(const std::vector<std::vector<Arc>>& und, NodeId a,
                  NodeId b) {
  const auto& list = und[a];
  auto it = std::lower_bound(
      list.begin(), list.end(), b,
      [](const Arc& arc, NodeId x) { return arc.dst < x; });
  return it != list.end() && it->dst == b;
}

Weight und_weight(const std::vector<std::vector<Arc>>& und, NodeId a,
                  NodeId b) {
  const auto& list = und[a];
  auto it = std::lower_bound(
      list.begin(), list.end(), b,
      [](const Arc& arc, NodeId x) { return arc.dst < x; });
  return (it != list.end() && it->dst == b) ? it->w : Weight{1};
}

void und_insert(std::vector<std::vector<Arc>>& und, NodeId a, NodeId b,
                Weight w) {
  auto insert_one = [&](NodeId x, NodeId y) {
    auto& list = und[x];
    auto it = std::lower_bound(
        list.begin(), list.end(), y,
        [](const Arc& arc, NodeId z) { return arc.dst < z; });
    list.insert(it, {y, w});
  };
  insert_one(a, b);
  insert_one(b, a);
}

/// Common neighbor other than the anchor `exclude` (siblings of an anchor
/// trivially share the anchor itself).
bool have_common_neighbor(const std::vector<std::vector<Arc>>& und, NodeId a,
                          NodeId b, NodeId exclude) {
  const auto& la = und[a];
  const auto& lb = und[b];
  std::size_t i = 0, j = 0;
  while (i < la.size() && j < lb.size()) {
    if (la[i].dst == lb[j].dst) {
      if (la[i].dst != exclude) return true;
      ++i;
      ++j;
    } else if (la[i].dst < lb[j].dst) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

/// Local clustering coefficient from the undirected adjacency.
double local_cc(const std::vector<std::vector<Arc>>& und, NodeId n,
                NodeId degree_cap) {
  const auto& nbrs = und[n];
  const auto d = static_cast<NodeId>(std::min<std::size_t>(
      nbrs.size(), degree_cap));
  if (d < 2) return 0.0;
  std::uint64_t links = 0;
  for (NodeId i = 0; i < d; ++i) {
    for (NodeId j = i + 1; j < d; ++j) {
      if (und_has_edge(und, nbrs[i].dst, nbrs[j].dst)) ++links;
    }
  }
  return 2.0 * static_cast<double>(links) /
         (static_cast<double>(d) * (d - 1));
}

}  // namespace

LatencyResult latency_transform(const Csr& graph, const LatencyKnobs& knobs) {
  // Hole-aware: hole slots have empty adjacency, so they never become
  // anchors, siblings, or insertion endpoints; the mask is carried
  // through so the transform composes with the coalescing output.
  constexpr NodeId kDegreeCap = 64;  // bound O(d^2) sibling scans on hubs

  LatencyResult result;
  const NodeId n = graph.num_slots();
  auto und = undirected_adjacency(graph);

  // Initial CCs (computed on the undirected view, as in §3). The O(d^2)
  // sibling scans dominate preprocessing time (Table 5), so they run in
  // parallel; each u writes only cc[u], so the result is deterministic.
  std::vector<double> cc(n, 0.0);
  parallel_for_dynamic(NodeId{0}, n,
                       [&](NodeId u) { cc[u] = local_cc(und, u, kDegreeCap); });
  {
    double sum = 0.0;
    for (NodeId u = 0; u < n; ++u) sum += cc[u];
    result.mean_cc_before = n == 0 ? 0.0 : sum / n;
  }

  const auto budget = static_cast<std::uint64_t>(
      knobs.edge_budget_fraction * static_cast<double>(graph.num_edges()));

  // New directed arcs to splice into the graph.
  std::vector<std::vector<Arc>> extra(n);
  std::uint64_t arcs_added = 0;

  // Candidate lists sorted by CC (descending) with deterministic ties.
  std::vector<NodeId> near_nodes, high_nodes;
  for (NodeId u = 0; u < n; ++u) {
    if (und[u].size() < 2 || und[u].size() > kDegreeCap) continue;
    if (cc[u] >= knobs.cc_threshold) {
      high_nodes.push_back(u);
    } else if (cc[u] >= knobs.cc_threshold - knobs.near_delta) {
      near_nodes.push_back(u);
    }
  }
  auto by_cc_desc = [&](NodeId a, NodeId b) {
    if (cc[a] != cc[b]) return cc[a] > cc[b];
    return a < b;
  };
  // graffix-lint: allow(R4) by_cc_desc is a total order: node-id ascending tie-break, node ids unique
  std::sort(near_nodes.begin(), near_nodes.end(), by_cc_desc);
  // graffix-lint: allow(R4) by_cc_desc is a total order: node-id ascending tie-break, node ids unique
  std::sort(high_nodes.begin(), high_nodes.end(), by_cc_desc);

  // --- Greedy insertion phases (scenario 1 + 2) ------------------------
  // One directed arc per insertion: the clustering coefficient is
  // defined on the undirected view (§3), so a single arc raises it just
  // as well, while a reciprocal pair would create a 2-cycle whose rank
  // oscillation measurably slows PageRank-style iterations.
  auto insert_pair = [&](NodeId a, NodeId b, Weight w) {
    if (b < a) std::swap(a, b);
    extra[a].push_back({b, w});
    und_insert(und, a, b, w);
  };

  // One scenario-1 anchor, exactly as the serial greedy loop executes
  // it: lift the near-threshold node over the cutoff by linking sibling
  // pairs that already share a common neighbor (pass 1, the paper's
  // "preferentially"), falling back to arbitrary non-adjacent sibling
  // pairs (pass 2) while the CC deficit is unmet. `arcs_at_entry` is
  // the global arcs-added count a serial run sees on entry; insertions
  // stop once the running count reaches the budget. Touches only rows
  // in the anchor's closed neighborhood, which is what makes the
  // conflict-free batching below serial-exact (transform/batch.hpp).
  auto scenario1_anchor = [&](NodeId u,
                              std::uint64_t arcs_at_entry) -> std::uint64_t {
    const auto d = static_cast<NodeId>(und[u].size());
    const double pairs = static_cast<double>(d) * (d - 1) / 2.0;
    const auto needed = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(
            std::ceil((knobs.cc_threshold - cc[u]) * pairs)),
        knobs.max_edges_per_anchor);
    std::uint64_t added_here = 0;
    // Snapshot the sibling list: inserted edges must not extend it.
    std::vector<NodeId> siblings;
    siblings.reserve(d);
    for (const Arc& a : und[u]) siblings.push_back(a.dst);
    for (int pass = 0; pass < 2 && added_here < needed; ++pass) {
      for (NodeId i = 0; i < d && added_here < needed; ++i) {
        for (NodeId j = i + 1; j < d && added_here < needed; ++j) {
          if (arcs_at_entry + added_here >= budget) break;
          const NodeId a = siblings[i], b = siblings[j];
          if (und_has_edge(und, a, b)) continue;
          if (pass == 0 && !have_common_neighbor(und, a, b, u)) continue;
          insert_pair(a, b, und_weight(und, u, a) + und_weight(und, u, b));
          ++added_here;
        }
      }
    }
    if (added_here > 0) cc[u] = local_cc(und, u, kDegreeCap);
    return added_here;
  };

  // One scenario-2 anchor: densify the cluster around an already-high-CC
  // node by linking its least-connected sibling pair (one insertion per
  // anchor keeps the approximation small; the budget is the hard stop,
  // enforced by the caller's top-of-loop check / batch admission).
  auto scenario2_anchor = [&](NodeId u) -> std::uint64_t {
    std::vector<NodeId> siblings;
    siblings.reserve(und[u].size());
    for (const Arc& a : und[u]) siblings.push_back(a.dst);
    // Connectivity of each sibling to the other siblings.
    std::vector<std::pair<NodeId, NodeId>> conn;  // (links, sibling)
    conn.reserve(siblings.size());
    for (NodeId s : siblings) {
      NodeId links = 0;
      for (NodeId t : siblings) {
        if (t != s && und_has_edge(und, s, t)) ++links;
      }
      conn.emplace_back(links, s);
    }
    // graffix-lint: allow(R4) default less over (links, sibling-id) pairs is a total order: sibling ids are unique
    std::sort(conn.begin(), conn.end());
    for (std::size_t i = 0; i < conn.size(); ++i) {
      for (std::size_t j = i + 1; j < conn.size(); ++j) {
        const NodeId a = conn[i].second, b = conn[j].second;
        if (und_has_edge(und, a, b)) continue;
        insert_pair(a, b, und_weight(und, u, a) + und_weight(und, u, b));
        return 1;
      }
    }
    return 0;
  };

  {
    WallTimer greedy_timer;
    if (serial_transforms()) {
      // Serial reference oracle (GRAFFIX_SERIAL_TRANSFORMS): the
      // original strictly-ordered greedy loops.
      for (NodeId u : near_nodes) {
        if (arcs_added >= budget) break;
        arcs_added += scenario1_anchor(u, arcs_added);
      }
      for (NodeId u : high_nodes) {
        if (arcs_added >= budget) break;
        arcs_added += scenario2_anchor(u);
      }
    } else {
      // Conflict-free batched rounds, byte-identical to the oracle: an
      // anchor's reads and writes stay inside its closed neighborhood,
      // so that neighborhood is its row footprint.
      RowClaims claims(n);
      auto footprint = [&](const std::vector<NodeId>& list, std::uint32_t i,
                           std::vector<NodeId>& rows) {
        const NodeId u = list[i];
        rows.push_back(u);
        for (const Arc& a : und[u]) rows.push_back(a.dst);
      };
      const BatchTelemetry s1 = run_budgeted_rounds(
          near_nodes.size(), claims, budget, arcs_added,
          [&](std::uint32_t i, std::vector<NodeId>& rows) {
            footprint(near_nodes, i, rows);
          },
          [&](std::uint32_t) {
            return std::uint64_t{knobs.max_edges_per_anchor};
          },
          [&](std::uint32_t i) {
            // Admission proved the budget cannot bind for any batch
            // member, so the shared round-entry counter is exact.
            return scenario1_anchor(near_nodes[i], arcs_added);
          },
          [&](std::uint32_t i, std::uint64_t serial_before) {
            return scenario1_anchor(near_nodes[i], serial_before);
          });
      const BatchTelemetry s2 = run_budgeted_rounds(
          high_nodes.size(), claims, budget, arcs_added,
          [&](std::uint32_t i, std::vector<NodeId>& rows) {
            footprint(high_nodes, i, rows);
          },
          [&](std::uint32_t) { return std::uint64_t{1}; },
          [&](std::uint32_t i) { return scenario2_anchor(high_nodes[i]); },
          [&](std::uint32_t i, std::uint64_t) {
            return scenario2_anchor(high_nodes[i]);
          });
      result.batching.rounds = s1.rounds + s2.rounds;
      result.batching.batched = s1.batched + s2.batched;
      result.batching.serial_steps = s1.serial_steps + s2.serial_steps;
      result.batching.max_batch = std::max(s1.max_batch, s2.max_batch);
    }
    result.greedy_seconds = greedy_timer.seconds();
  }
  result.edges_added = arcs_added;

  // Rebuild the Csr with the extra arcs appended (shared parallel path).
  result.graph = rebuild_with_extras(graph, extra);

  {
    parallel_for_dynamic(NodeId{0}, n, [&](NodeId u) {
      cc[u] = local_cc(und, u, kDegreeCap);
    });
    double sum = 0.0;
    for (NodeId u = 0; u < n; ++u) sum += cc[u];
    result.mean_cc_after = n == 0 ? 0.0 : sum / n;
  }

  // Cluster selection on the boosted graph: among nodes clearing the CC
  // threshold, anchor the highest-degree ones first — they pull the most
  // gather traffic into shared memory (reuse is what the technique buys).
  std::vector<NodeId> anchors;
  for (NodeId u = 0; u < n; ++u) {
    if (cc[u] >= knobs.cc_threshold && und[u].size() >= 2) anchors.push_back(u);
  }
  // graffix-lint: allow(R4) comparator is a total order: (degree desc, cc desc, node-id asc), node ids unique
  std::sort(anchors.begin(), anchors.end(), [&](NodeId a, NodeId b) {
    if (und[a].size() != und[b].size()) return und[a].size() > und[b].size();
    return by_cc_desc(a, b);
  });

  ClusterSchedule& schedule = result.schedule;
  schedule.resident.assign(n, kInvalidNode);
  for (NodeId anchor : anchors) {
    if (schedule.clusters.size() >= knobs.max_clusters) break;
    if (schedule.resident[anchor] != kInvalidNode) continue;
    Cluster cluster;
    cluster.members.push_back(anchor);
    for (const Arc& a : und[anchor]) {
      if (cluster.members.size() >= knobs.cluster_cap) break;
      if (schedule.resident[a.dst] == kInvalidNode && a.dst != anchor) {
        cluster.members.push_back(a.dst);
      }
    }
    if (cluster.members.size() < 3) continue;
    const auto id = static_cast<NodeId>(schedule.clusters.size());
    for (NodeId m : cluster.members) schedule.resident[m] = id;
    const NodeId diameter =
        induced_subgraph_diameter(result.graph, cluster.members);
    cluster.inner_iterations = static_cast<std::uint32_t>(std::max(
        1.0, knobs.t_diameter_factor * static_cast<double>(diameter)));
    schedule.clusters.push_back(std::move(cluster));
  }

  const double before = static_cast<double>(graph.memory_bytes());
  const double after = static_cast<double>(result.graph.memory_bytes());
  result.extra_space_fraction = before == 0.0 ? 0.0 : (after - before) / before;
  check_transform_phase("latency", result.graph);
  return result;
}

}  // namespace graffix::transform
