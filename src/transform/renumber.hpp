// Step 1 of the coalescing transform (Algorithm 2 in the paper):
// BFS-forest vertex renumbering with chunk-aligned levels.
//
// Roots are picked in decreasing out-degree order among unvisited nodes;
// BFS relaxes levels downward across traversals (a later root can lower
// the level of an already-visited node, as in the paper's Figure 2
// walkthrough). Ids are then assigned level by level: level 0 nodes
// first, then for each level i the j-th unnumbered neighbors of level-i
// nodes in round-robin order. Every level's ids start at a multiple of
// the chunk size k, which creates *holes* — unoccupied slots the
// replication step later fills.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace graffix::transform {

struct RenumberResult {
  std::uint32_t chunk_size = 0;
  NodeId num_slots = 0;  // includes holes; multiple of chunk_size
  /// Old node id -> new slot.
  std::vector<NodeId> slot_of_node;
  /// Slot -> old node id; kInvalidNode for holes.
  std::vector<NodeId> node_of_slot;
  /// BFS-forest level of every slot (holes inherit their level's value).
  std::vector<NodeId> level_of_slot;
  /// First slot of each level; level_start[i] is a multiple of chunk_size.
  std::vector<NodeId> level_start;

  [[nodiscard]] NodeId num_levels() const {
    return static_cast<NodeId>(level_start.size());
  }
  [[nodiscard]] bool is_hole_slot(NodeId slot) const {
    return node_of_slot[slot] == kInvalidNode;
  }
  [[nodiscard]] NodeId hole_count() const {
    return num_slots - static_cast<NodeId>(slot_of_node.size());
  }
};

/// Computes the Graffix renumbering for chunk size k (1 <= k <= 32).
[[nodiscard]] RenumberResult renumber_bfs_forest(const Csr& graph,
                                                 std::uint32_t k);

/// Materializes the renumbered, hole-aware isomorph of `graph`: slot s
/// carries old node node_of_slot[s] with targets remapped through
/// slot_of_node. Neighbor order is preserved.
[[nodiscard]] Csr apply_renumbering(const Csr& graph,
                                    const RenumberResult& renumber);

/// Projects a per-slot attribute vector back onto original node ids
/// (attr_nodes[v] = attr_slots[slot_of_node[v]]).
template <typename T>
std::vector<T> project_to_nodes(const RenumberResult& renumber,
                                std::span<const T> attr_slots) {
  std::vector<T> out(renumber.slot_of_node.size());
  for (std::size_t v = 0; v < out.size(); ++v) {
    out[v] = attr_slots[renumber.slot_of_node[v]];
  }
  return out;
}

}  // namespace graffix::transform
