// Composition of the three Graffix techniques — the paper's closing
// claim ("our techniques do not compete with the existing GPU-specific
// optimizations, but complement those. They can be combined for improved
// benefits.") made concrete.
//
// Order of application and why it is the only consistent one:
//   1. Coalescing first: renumbering defines the slot layout everything
//      else keys off. Later stages only ADD edges, never renumber, so
//      the chunk alignment and the replica map stay valid.
//   2. Latency second: clusters are selected on the (possibly
//      renumbered) graph; the schedule stores slot sets, which survive
//      stage 3's edge additions (the runner splits boundary/cluster
//      edges from the final graph).
//   3. Divergence last, in preserve_order mode when stage 1 ran: the
//      warps are then the chunk-aligned slot ranges and only the degree
//      normalization applies (reordering would shear the renumbered
//      layout off its warps).
#pragma once

#include <optional>

#include "transform/coalescing.hpp"
#include "transform/divergence.hpp"
#include "transform/latency.hpp"

namespace graffix::transform {

/// Which stages to run. Any subset composes; an empty selection returns
/// the input unchanged.
struct CombinedKnobs {
  std::optional<CoalescingKnobs> coalescing;
  std::optional<LatencyKnobs> latency;
  std::optional<DivergenceKnobs> divergence;
};

struct CombinedResult {
  Csr graph;  // final transformed graph
  /// Stage artifacts; disengaged when the stage was not selected.
  std::optional<RenumberResult> renumber;
  ReplicaMap replicas;                      // empty when coalescing off
  ClusterSchedule schedule;                 // empty when latency off
  std::vector<NodeId> warp_order;           // empty when order preserved
  std::uint64_t edges_added = 0;
  double extra_space_fraction = 0.0;
  double preprocessing_seconds = 0.0;
};

[[nodiscard]] CombinedResult combined_transform(const Csr& graph,
                                                const CombinedKnobs& knobs);

}  // namespace graffix::transform
