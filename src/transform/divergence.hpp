// §4 thread-divergence transform: degree bucketing + degree
// normalization via 2-hop edge insertion.
//
// Nodes are bucket-sorted by out-degree; warps are formed over the sorted
// order so warp members have similar degrees. Within each warp, a node
// whose degree deficit relative to the warp max is small —
// degreeSim = 1 - deg/maxDeg <= threshold — is topped up to
// boost_to x maxDeg by adding edges to its 2-hop neighbors; the weight of
// a new edge is the sum of the two hops it shortcuts (§4's rule for
// weighted algorithms), so the propagated information stays conservative
// for shortest-path-like computations.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "transform/knobs.hpp"

namespace graffix::transform {

struct DivergenceResult {
  Csr graph;  // original plus inserted 2-hop edges (same ids, no holes)
  /// Slot processing order (the bucket sort): warp w covers
  /// warp_order[w*warp_size .. (w+1)*warp_size).
  std::vector<NodeId> warp_order;
  std::uint64_t edges_added = 0;
  double extra_space_fraction = 0.0;
  /// Mean SIMD-efficiency proxy before/after, computed from degrees:
  /// sum(deg) / sum(warp_max_deg * warp_size).
  double degree_uniformity_before = 0.0;
  double degree_uniformity_after = 0.0;
};

/// Runs the divergence transform. threshold = 0 only bucket-sorts (an
/// exact transformation; the ablation baseline).
[[nodiscard]] DivergenceResult divergence_transform(const Csr& graph,
                                                    const DivergenceKnobs& knobs);

/// Memory-lean overload for paper-scale graphs: consumes `graph` so the
/// final rebuild can free the base arrays mid-flight (the Csr&&
/// rebuild_with_extras path). Identical result to the const overload.
[[nodiscard]] DivergenceResult divergence_transform(Csr&& graph,
                                                    const DivergenceKnobs& knobs);

}  // namespace graffix::transform
