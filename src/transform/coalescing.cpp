#include "transform/coalescing.hpp"

#include "transform/validate.hpp"

namespace graffix::transform {

CoalescingResult coalescing_transform(const Csr& graph,
                                      const CoalescingKnobs& knobs) {
  CoalescingResult result;
  result.renumber = renumber_bfs_forest(graph, knobs.chunk_size);
  Csr renumbered = apply_renumbering(graph, result.renumber);
  check_transform_phase("coalescing/renumber", renumbered);

  ReplicationResult rep =
      replicate_into_holes(renumbered, result.renumber, knobs);
  result.graph = std::move(rep.graph);
  result.replicas = std::move(rep.replicas);
  result.edges_moved = rep.edges_moved;
  result.edges_added = rep.edges_added;
  result.holes_total = rep.holes_total;
  result.holes_filled = rep.holes_filled;
  result.greedy_seconds = rep.greedy_seconds;
  result.batching = rep.batching;
  check_transform_phase("coalescing/replicate", result.graph,
                        &result.replicas);

  const double before = static_cast<double>(graph.memory_bytes());
  const double after = static_cast<double>(result.graph.memory_bytes());
  result.extra_space_fraction = before == 0.0 ? 0.0 : (after - before) / before;
  return result;
}

}  // namespace graffix::transform
