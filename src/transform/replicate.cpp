#include "transform/replicate.hpp"

#include <algorithm>
#include <unordered_map>

#include "graph/rebuild.hpp"
#include "util/macros.hpp"
#include "util/parallel.hpp"

namespace graffix::transform {

namespace {

struct Candidate {
  NodeId node;      // primary slot to replicate
  NodeId chunk;     // chunk the node is well connected to
  NodeId edge_count;
};

}  // namespace

ReplicationResult replicate_into_holes(const Csr& renumbered,
                                       const RenumberResult& renumber,
                                       const CoalescingKnobs& knobs) {
  const std::uint32_t k = knobs.chunk_size;
  const NodeId slots = renumbered.num_slots();
  GRAFFIX_CHECK(slots % k == 0, "slot count %u not chunk aligned", slots);
  const NodeId num_chunks = slots / k;
  const bool weighted = renumbered.has_weights();

  ReplicationResult result;

  // connectedness can exceed 1.0 on multigraphs (parallel arcs into a
  // sparse chunk), so thresholds above 1.0 explicitly mean "replication
  // disabled" — the exactness ablation relies on this.
  if (knobs.connectedness_threshold > 1.0) {
    result.graph = renumbered;
    result.replicas.group_of_slot.assign(slots, kInvalidNode);
    for (NodeId s = 0; s < slots; ++s) {
      if (renumbered.is_hole(s)) ++result.holes_total;
    }
    return result;
  }

  // --- Chunk geometry -----------------------------------------------------
  // Levels never straddle chunks (level starts are multiples of k).
  std::vector<NodeId> chunk_level(num_chunks);
  std::vector<NodeId> chunk_nonholes(num_chunks, 0);
  std::vector<std::vector<NodeId>> chunk_holes(num_chunks);
  for (NodeId s = 0; s < slots; ++s) {
    const NodeId c = s / k;
    if (s % k == 0) chunk_level[c] = renumber.level_of_slot[s];
    if (renumbered.is_hole(s)) {
      chunk_holes[c].push_back(s);
      ++result.holes_total;
    } else {
      ++chunk_nonholes[c];
    }
  }
  const NodeId num_levels = renumber.num_levels();
  std::vector<std::uint8_t> level_has_holes(num_levels, 0);
  std::vector<NodeId> level_free_holes(num_levels, 0);
  for (NodeId c = 0; c < num_chunks; ++c) {
    if (!chunk_holes[c].empty()) {
      level_has_holes[chunk_level[c]] = 1;
      level_free_holes[chunk_level[c]] +=
          static_cast<NodeId>(chunk_holes[c].size());
    }
  }

  // --- Candidate enumeration (lines 22-29 of Algorithm 2) -----------------
  // Edges from each node n to each chunk C whose parent level has holes.
  std::vector<Candidate> candidates;
  {
    // Candidate enumeration is the transform's hot loop; per-thread
    // buffers keep it deterministic (the global sort below fixes the
    // final order regardless of thread count). The team is capped at
    // the workers that can actually run concurrently.
    const int threads = effective_workers();
    std::vector<std::vector<Candidate>> local(threads);
#pragma omp parallel num_threads(threads)
    {
      const int t = omp_get_thread_num();
      std::unordered_map<NodeId, NodeId> counts;  // chunk -> edge count
#pragma omp for schedule(dynamic, 256)
      for (std::int64_t n64 = 0; n64 < static_cast<std::int64_t>(slots);
           ++n64) {
        const auto n = static_cast<NodeId>(n64);
        if (renumbered.is_hole(n)) continue;
        counts.clear();
        for (NodeId v : renumbered.neighbors(n)) {
          const NodeId c = v / k;
          const NodeId lvl = chunk_level[c];
          if (lvl == 0 || !level_has_holes[lvl - 1]) continue;
          counts[c]++;
        }
        for (const auto& [c, cnt] : counts) {
          if (chunk_nonholes[c] == 0) continue;
          const double connectedness =
              static_cast<double>(cnt) / static_cast<double>(chunk_nonholes[c]);
          if (connectedness >= knobs.connectedness_threshold && cnt >= 2) {
            local[t].push_back({n, c, cnt});
          }
        }
      }
    }
    for (auto& chunk_list : local) {
      candidates.insert(candidates.end(), chunk_list.begin(),
                        chunk_list.end());
    }
  }
  // Higher edge-count first; deterministic tie-break.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.edge_count != b.edge_count) return a.edge_count > b.edge_count;
              if (a.node != b.node) return a.node < b.node;
              return a.chunk < b.chunk;
            });

  // --- Parent-chunk preference ---------------------------------------------
  // For a chunk C, prefer placing replicas in the level-(l-1) chunk holding
  // the most in-neighbors (BFS parents) of C's members.
  const Csr reverse = renumbered.transpose();
  auto parent_chunk_hint = [&](NodeId c) -> NodeId {
    const NodeId lvl = chunk_level[c];
    if (lvl == 0) return kInvalidNode;
    std::unordered_map<NodeId, NodeId> score;
    const NodeId lo = c * k, hi = lo + k;
    for (NodeId s = lo; s < hi; ++s) {
      if (renumbered.is_hole(s)) continue;
      for (NodeId p : reverse.neighbors(s)) {
        const NodeId pc = p / k;
        if (chunk_level[pc] == lvl - 1) score[pc]++;
      }
    }
    NodeId best = kInvalidNode, best_score = 0;
    for (const auto& [pc, sc] : score) {
      if (chunk_holes[pc].empty()) continue;
      if (sc > best_score || (sc == best_score && pc < best)) {
        best = pc;
        best_score = sc;
      }
    }
    return best;
  };

  // --- Mutable adjacency ----------------------------------------------------
  using Arc = ExtraArc;
  std::vector<std::vector<Arc>> adj(slots);
  std::vector<std::uint8_t> holes(slots, 0);
  parallel_for_dynamic(NodeId{0}, slots, [&](NodeId s) {
    holes[s] = renumbered.is_hole(s) ? 1 : 0;
    const auto nbrs = renumbered.neighbors(s);
    adj[s].reserve(nbrs.size());
    const auto wts =
        weighted ? renumbered.edge_weights(s) : std::span<const Weight>{};
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      adj[s].push_back({nbrs[i], weighted ? wts[i] : Weight{1}});
    }
  });

  ReplicaMap& map = result.replicas;
  map.group_of_slot.assign(slots, kInvalidNode);

  // --- Replication (lines 29-35) -------------------------------------------
  for (const Candidate& cand : candidates) {
    const NodeId lvl = chunk_level[cand.chunk];
    if (lvl == 0 || level_free_holes[lvl - 1] == 0) continue;
    // Never replicate a replica, and respect the per-node copy cap.
    if (map.group_of_slot[cand.node] != kInvalidNode) {
      const auto& group = map.groups[map.group_of_slot[cand.node]];
      if (group[0] != cand.node) continue;
      if (group.size() > knobs.max_replicas_per_node) continue;
    }

    // Pick the hole: parent-chunk hint, else any chunk with a free hole at
    // the parent level.
    NodeId target_chunk = parent_chunk_hint(cand.chunk);
    if (target_chunk == kInvalidNode) {
      for (NodeId c = 0; c < num_chunks; ++c) {
        if (chunk_level[c] == lvl - 1 && !chunk_holes[c].empty()) {
          target_chunk = c;
          break;
        }
      }
    }
    if (target_chunk == kInvalidNode) continue;
    const NodeId replica = chunk_holes[target_chunk].back();
    chunk_holes[target_chunk].pop_back();
    --level_free_holes[lvl - 1];
    holes[replica] = 0;

    // Move n's edges into the chunk onto the replica.
    const NodeId chunk_lo = cand.chunk * k;
    const NodeId chunk_hi = chunk_lo + k;
    auto in_chunk = [&](NodeId v) { return v >= chunk_lo && v < chunk_hi; };
    std::vector<Arc> moved;
    auto& primary_adj = adj[cand.node];
    for (auto it = primary_adj.begin(); it != primary_adj.end();) {
      if (in_chunk(it->dst)) {
        moved.push_back(*it);
        it = primary_adj.erase(it);
      } else {
        ++it;
      }
    }
    result.edges_moved += moved.size();

    // New 2-hop edges inside the chunk (the approximation knob).
    std::uint32_t added = 0;
    std::vector<Arc> extra;
    for (const Arc& hop1 : moved) {
      if (added >= knobs.max_new_edges_per_replica) break;
      for (const Arc& hop2 : adj[hop1.dst]) {
        if (added >= knobs.max_new_edges_per_replica) break;
        const NodeId q = hop2.dst;
        if (!in_chunk(q) || q == cand.node || q == replica) continue;
        const bool exists =
            std::any_of(moved.begin(), moved.end(),
                        [q](const Arc& a) { return a.dst == q; }) ||
            std::any_of(extra.begin(), extra.end(),
                        [q](const Arc& a) { return a.dst == q; });
        if (exists) continue;
        extra.push_back({q, hop1.w + hop2.w});
        ++added;
      }
    }
    result.edges_added += extra.size();

    auto& replica_adj = adj[replica];
    replica_adj = std::move(moved);
    replica_adj.insert(replica_adj.end(), extra.begin(), extra.end());

    // Record the replica group.
    NodeId group = map.group_of_slot[cand.node];
    if (group == kInvalidNode) {
      group = static_cast<NodeId>(map.groups.size());
      map.groups.push_back({cand.node});
      map.group_of_slot[cand.node] = group;
    }
    map.groups[group].push_back(replica);
    map.group_of_slot[replica] = group;
    ++result.holes_filled;
  }

  // --- Rebuild the Csr (shared parallel path) -------------------------------
  result.graph = rebuild_from_adjacency(adj, weighted, std::move(holes));
  return result;
}

}  // namespace graffix::transform
