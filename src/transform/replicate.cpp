#include "transform/replicate.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "graph/rebuild.hpp"
#include "util/macros.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace graffix::transform {

namespace {

struct Candidate {
  NodeId node;      // primary slot to replicate
  NodeId chunk;     // chunk the node is well connected to
  NodeId edge_count;
};

/// Outcome of the serial reserve pass for one surviving candidate: the
/// hole slot it will occupy. Reservation only touches bookkeeping state
/// (hole pools, replica groups, counters) that the apply phase never
/// writes, so applies can run in conflict-free batched rounds afterwards
/// without changing any reserve decision.
struct Reservation {
  NodeId node;     // primary being replicated
  NodeId chunk;    // chunk the primary is well connected to
  NodeId replica;  // hole slot the replica occupies
};

}  // namespace

ReplicationResult replicate_into_holes(const Csr& renumbered,
                                       const RenumberResult& renumber,
                                       const CoalescingKnobs& knobs) {
  const std::uint32_t k = knobs.chunk_size;
  const NodeId slots = renumbered.num_slots();
  GRAFFIX_CHECK(slots % k == 0, "slot count %u not chunk aligned", slots);
  const NodeId num_chunks = slots / k;
  const bool weighted = renumbered.has_weights();

  ReplicationResult result;

  // connectedness can exceed 1.0 on multigraphs (parallel arcs into a
  // sparse chunk), so thresholds above 1.0 explicitly mean "replication
  // disabled" — the exactness ablation relies on this.
  if (knobs.connectedness_threshold > 1.0) {
    result.graph = renumbered;
    result.replicas.group_of_slot.assign(slots, kInvalidNode);
    for (NodeId s = 0; s < slots; ++s) {
      if (renumbered.is_hole(s)) ++result.holes_total;
    }
    return result;
  }

  // --- Chunk geometry -----------------------------------------------------
  // Levels never straddle chunks (level starts are multiples of k).
  std::vector<NodeId> chunk_level(num_chunks);
  std::vector<NodeId> chunk_nonholes(num_chunks, 0);
  std::vector<std::vector<NodeId>> chunk_holes(num_chunks);
  for (NodeId s = 0; s < slots; ++s) {
    const NodeId c = s / k;
    if (s % k == 0) chunk_level[c] = renumber.level_of_slot[s];
    if (renumbered.is_hole(s)) {
      chunk_holes[c].push_back(s);
      ++result.holes_total;
    } else {
      ++chunk_nonholes[c];
    }
  }
  const NodeId num_levels = renumber.num_levels();
  std::vector<std::uint8_t> level_has_holes(num_levels, 0);
  std::vector<NodeId> level_free_holes(num_levels, 0);
  for (NodeId c = 0; c < num_chunks; ++c) {
    if (!chunk_holes[c].empty()) {
      level_has_holes[chunk_level[c]] = 1;
      level_free_holes[chunk_level[c]] +=
          static_cast<NodeId>(chunk_holes[c].size());
    }
  }

  // --- Candidate enumeration (lines 22-29 of Algorithm 2) -----------------
  // Edges from each node n to each chunk C whose parent level has holes.
  std::vector<Candidate> candidates;
  {
    // Candidate enumeration is the transform's hot loop. Work is keyed
    // by fixed slot blocks, not thread ids (DESIGN.md §7): each block
    // collects its candidates in slot order into its own list and the
    // lists are concatenated in ascending block order, so even the
    // pre-sort candidate sequence is independent of the team size.
    constexpr NodeId kSlotsPerBlock = 4096;
    const NodeId num_blocks = (slots + kSlotsPerBlock - 1) / kSlotsPerBlock;
    std::vector<std::vector<Candidate>> block_lists(num_blocks);
    parallel_for_dynamic(NodeId{0}, num_blocks, [&](NodeId blk) {
      std::unordered_map<NodeId, NodeId> counts;  // chunk -> edge count
      const NodeId lo = blk * kSlotsPerBlock;
      const NodeId hi = std::min<NodeId>(lo + kSlotsPerBlock, slots);
      for (NodeId n = lo; n < hi; ++n) {
        if (renumbered.is_hole(n)) continue;
        counts.clear();
        for (NodeId v : renumbered.neighbors(n)) {
          const NodeId c = v / k;
          const NodeId lvl = chunk_level[c];
          if (lvl == 0 || !level_has_holes[lvl - 1]) continue;
          counts[c]++;
        }
        // graffix-lint: allow(R2) candidate order is fixed downstream by the total-order sort over (edge_count, node, chunk)
        for (const auto& [c, cnt] : counts) {
          if (chunk_nonholes[c] == 0) continue;
          const double connectedness =
              static_cast<double>(cnt) / static_cast<double>(chunk_nonholes[c]);
          if (connectedness >= knobs.connectedness_threshold && cnt >= 2) {
            block_lists[blk].push_back({n, c, cnt});
          }
        }
      }
    }, 1);
    for (auto& block_list : block_lists) {
      candidates.insert(candidates.end(), block_list.begin(),
                        block_list.end());
    }
  }
  // Higher edge-count first; deterministic tie-break.
  // graffix-lint: allow(R4) comparator is a total order: (edge_count desc, node asc, chunk asc) and (node, chunk) pairs are distinct
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.edge_count != b.edge_count) return a.edge_count > b.edge_count;
              if (a.node != b.node) return a.node < b.node;
              return a.chunk < b.chunk;
            });

  // --- Parent-chunk preference ---------------------------------------------
  // For a chunk C, prefer placing replicas in the level-(l-1) chunk holding
  // the most in-neighbors (BFS parents) of C's members. The full
  // (score desc, chunk asc) preference list per distinct candidate chunk
  // is a pure function of the immutable reverse graph, so it is computed
  // up front in parallel; the reserve pass walks it to the first chunk
  // that still has a free hole — exactly the argmax the old per-candidate
  // scan produced, evaluated against the live hole pools.
  const Csr reverse = renumbered.transpose();
  std::unordered_map<NodeId, std::uint32_t> hint_index;  // chunk -> list
  std::vector<std::vector<NodeId>> hint_lists;
  {
    std::vector<NodeId> distinct;
    for (const Candidate& cand : candidates) {
      if (hint_index.emplace(cand.chunk, distinct.size()).second) {
        distinct.push_back(cand.chunk);
      }
    }
    hint_lists.resize(distinct.size());
    parallel_for_dynamic(std::size_t{0}, distinct.size(), [&](std::size_t i) {
      const NodeId c = distinct[i];
      const NodeId lvl = chunk_level[c];
      if (lvl == 0) return;
      std::unordered_map<NodeId, NodeId> score;
      const NodeId lo = c * k, hi = lo + k;
      for (NodeId s = lo; s < hi; ++s) {
        if (renumbered.is_hole(s)) continue;
        for (NodeId p : reverse.neighbors(s)) {
          const NodeId pc = p / k;
          if (chunk_level[pc] == lvl - 1) score[pc]++;
        }
      }
      std::vector<std::pair<NodeId, NodeId>> ranked;  // (chunk, score)
      // graffix-lint: allow(R6) per-chunk ranking scratch, bounded by the distinct parent-chunk count; lives only for this task
      ranked.reserve(score.size());
      // graffix-lint: allow(R2) insertion order is fixed by the total-order sort on (score desc, chunk asc) just below
      for (const auto& [pc, sc] : score) ranked.emplace_back(pc, sc);  // graffix-lint: allow(R6) append stays within the reserve above
      // graffix-lint: allow(R4) comparator is a total order: chunk ids are unique map keys, so the (score desc, chunk asc) tie-break never ties
      std::sort(ranked.begin(), ranked.end(),
                [](const auto& a, const auto& b) {
                  if (a.second != b.second) return a.second > b.second;
                  return a.first < b.first;
                });
      hint_lists[i].reserve(ranked.size());
      for (const auto& [pc, sc] : ranked) hint_lists[i].push_back(pc);
    });
  }

  // --- Per-level free-hole chunk lists ---------------------------------
  // Chunks of each level that started with holes, in ascending id order.
  // Hole pools only ever shrink, so a cursor that skips empty chunks at
  // the head finds the same chunk as the old O(num_chunks) ascending
  // fallback scan — without rescanning the prefix per candidate.
  std::vector<std::vector<NodeId>> level_free_chunks(num_levels);
  std::vector<std::size_t> level_cursor(num_levels, 0);
  for (NodeId c = 0; c < num_chunks; ++c) {
    if (!chunk_holes[c].empty()) level_free_chunks[chunk_level[c]].push_back(c);
  }
  auto first_free_chunk = [&](NodeId lvl) -> NodeId {
    auto& list = level_free_chunks[lvl];
    std::size_t& cur = level_cursor[lvl];
    while (cur < list.size() && chunk_holes[list[cur]].empty()) ++cur;
    return cur < list.size() ? list[cur] : kInvalidNode;
  };

  // --- Mutable adjacency ----------------------------------------------------
  using Arc = ExtraArc;
  std::vector<std::vector<Arc>> adj(slots);
  std::vector<std::uint8_t> holes(slots, 0);
  parallel_for_dynamic(NodeId{0}, slots, [&](NodeId s) {
    holes[s] = renumbered.is_hole(s) ? 1 : 0;
    const auto nbrs = renumbered.neighbors(s);
    adj[s].reserve(nbrs.size());
    const auto wts =
        weighted ? renumbered.edge_weights(s) : std::span<const Weight>{};
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      adj[s].push_back({nbrs[i], weighted ? wts[i] : Weight{1}});
    }
  });

  ReplicaMap& map = result.replicas;
  map.group_of_slot.assign(slots, kInvalidNode);

  // --- Replication (lines 29-35) -------------------------------------------
  // Split into reserve (serial, exact) and apply (batchable). The
  // reserve step reads and writes only bookkeeping state — hole pools,
  // free-hole counters, replica groups — which the apply step never
  // touches, so running every reservation first and the edge rewiring
  // afterwards is order-equivalent to the original interleaved loop.
  auto reserve_one = [&](const Candidate& cand) -> std::optional<Reservation> {
    const NodeId lvl = chunk_level[cand.chunk];
    if (lvl == 0 || level_free_holes[lvl - 1] == 0) return std::nullopt;
    // Never replicate a replica, and respect the per-node copy cap.
    if (map.group_of_slot[cand.node] != kInvalidNode) {
      const auto& group = map.groups[map.group_of_slot[cand.node]];
      if (group[0] != cand.node) return std::nullopt;
      if (group.size() > knobs.max_replicas_per_node) return std::nullopt;
    }

    // Pick the hole: parent-chunk hint, else the lowest-id chunk with a
    // free hole at the parent level.
    NodeId target_chunk = kInvalidNode;
    if (auto it = hint_index.find(cand.chunk); it != hint_index.end()) {
      for (NodeId pc : hint_lists[it->second]) {
        if (!chunk_holes[pc].empty()) {
          target_chunk = pc;
          break;
        }
      }
    }
    if (target_chunk == kInvalidNode) target_chunk = first_free_chunk(lvl - 1);
    if (target_chunk == kInvalidNode) return std::nullopt;
    const NodeId replica = chunk_holes[target_chunk].back();
    chunk_holes[target_chunk].pop_back();
    --level_free_holes[lvl - 1];
    holes[replica] = 0;

    // Record the replica group.
    NodeId group = map.group_of_slot[cand.node];
    if (group == kInvalidNode) {
      group = static_cast<NodeId>(map.groups.size());
      map.groups.push_back({cand.node});
      map.group_of_slot[cand.node] = group;
    }
    map.groups[group].push_back(replica);
    map.group_of_slot[replica] = group;
    ++result.holes_filled;
    return Reservation{cand.node, cand.chunk, replica};
  };

  // Rewires edges for one reservation; returns (moved, added). Reads
  // adj rows of the primary and of the chunk's original non-hole slots,
  // writes the primary's and the replica's rows — the reservation's row
  // footprint for conflict-free batching (replica slots are original
  // holes, which no other reservation's 2-hop scan can read: edges only
  // ever point at original non-holes).
  auto apply_reservation =
      [&](const Reservation& res) -> std::pair<std::uint64_t, std::uint64_t> {
    // Move n's edges into the chunk onto the replica.
    const NodeId chunk_lo = res.chunk * k;
    const NodeId chunk_hi = chunk_lo + k;
    auto in_chunk = [&](NodeId v) { return v >= chunk_lo && v < chunk_hi; };
    std::vector<Arc> moved;
    auto& primary_adj = adj[res.node];
    for (auto it = primary_adj.begin(); it != primary_adj.end();) {
      if (in_chunk(it->dst)) {
        moved.push_back(*it);
        it = primary_adj.erase(it);
      } else {
        ++it;
      }
    }

    // New 2-hop edges inside the chunk (the approximation knob).
    std::uint32_t added = 0;
    std::vector<Arc> extra;
    for (const Arc& hop1 : moved) {
      if (added >= knobs.max_new_edges_per_replica) break;
      for (const Arc& hop2 : adj[hop1.dst]) {
        if (added >= knobs.max_new_edges_per_replica) break;
        const NodeId q = hop2.dst;
        if (!in_chunk(q) || q == res.node || q == res.replica) continue;
        const bool exists =
            std::any_of(moved.begin(), moved.end(),
                        [q](const Arc& a) { return a.dst == q; }) ||
            std::any_of(extra.begin(), extra.end(),
                        [q](const Arc& a) { return a.dst == q; });
        if (exists) continue;
        extra.push_back({q, hop1.w + hop2.w});
        ++added;
      }
    }

    auto& replica_adj = adj[res.replica];
    const std::uint64_t n_moved = moved.size();
    replica_adj = std::move(moved);
    replica_adj.insert(replica_adj.end(), extra.begin(), extra.end());
    return {n_moved, extra.size()};
  };

  {
    WallTimer greedy_timer;
    if (serial_transforms()) {
      // Serial reference oracle (GRAFFIX_SERIAL_TRANSFORMS): reserve and
      // apply interleaved per candidate, as the original loop ran.
      for (const Candidate& cand : candidates) {
        if (const auto res = reserve_one(cand)) {
          const auto [moved, added] = apply_reservation(*res);
          result.edges_moved += moved;
          result.edges_added += added;
        }
      }
    } else {
      // Reserve everything serially (exact), then apply in conflict-free
      // batched rounds. There is no edge budget here, so the driver runs
      // with an unbounded budget and zero per-candidate cost.
      std::vector<Reservation> reservations;
      for (const Candidate& cand : candidates) {
        if (const auto res = reserve_one(cand)) reservations.push_back(*res);
      }
      std::vector<std::uint64_t> moved_by(reservations.size(), 0);
      std::vector<std::uint64_t> added_by(reservations.size(), 0);
      RowClaims claims(slots);
      std::uint64_t arcs_unused = 0;
      result.batching = run_budgeted_rounds(
          reservations.size(), claims, UINT64_MAX, arcs_unused,
          [&](std::uint32_t i, std::vector<NodeId>& rows) {
            const Reservation& res = reservations[i];
            rows.push_back(res.node);
            rows.push_back(res.replica);
            const NodeId lo = res.chunk * k, hi = lo + k;
            for (NodeId s = lo; s < hi; ++s) {
              if (!renumbered.is_hole(s)) rows.push_back(s);
            }
          },
          [&](std::uint32_t) { return std::uint64_t{0}; },
          [&](std::uint32_t i) {
            std::tie(moved_by[i], added_by[i]) =
                apply_reservation(reservations[i]);
            return std::uint64_t{0};
          },
          [&](std::uint32_t i, std::uint64_t) {
            std::tie(moved_by[i], added_by[i]) =
                apply_reservation(reservations[i]);
            return std::uint64_t{0};
          });
      for (std::size_t i = 0; i < reservations.size(); ++i) {
        result.edges_moved += moved_by[i];
        result.edges_added += added_by[i];
      }
    }
    result.greedy_seconds = greedy_timer.seconds();
  }

  // --- Rebuild the Csr (shared parallel path) -------------------------------
  result.graph = rebuild_from_adjacency(adj, weighted, std::move(holes));
  return result;
}

}  // namespace graffix::transform
