// Replica bookkeeping and the confluence (merge) operator of §2.4.
//
// Node replication leaves several slots representing one logical node;
// after every kernel iteration their attribute values are merged. The
// paper's default operator is the algorithm-agnostic arithmetic mean;
// algorithm-aware operators (min for distances, sum for dependencies) are
// provided for the ablation benches.
#pragma once

#include <span>
#include <vector>

#include "util/types.hpp"

namespace graffix::transform {

/// Groups of slots that represent the same logical node.
struct ReplicaMap {
  /// groups[g] lists the member slots; groups[g][0] is the primary (the
  /// original node's slot).
  std::vector<std::vector<NodeId>> groups;
  /// Per-slot group id, kInvalidNode when the slot is unreplicated.
  std::vector<NodeId> group_of_slot;

  [[nodiscard]] bool empty() const { return groups.empty(); }
  [[nodiscard]] std::size_t replica_count() const {
    std::size_t count = 0;
    for (const auto& g : groups) count += g.size() - 1;
    return count;
  }
};

enum class MergeOp {
  Mean,  // paper's algorithm-agnostic default
  Min,   // algorithm-aware: distances
  Max,
  Sum,   // algorithm-aware: path counts / dependencies
};

/// Merges every replica group's attribute values in place; all members of
/// a group end with the merged value. Returns the number of merges.
template <typename T>
std::size_t merge_replicas(const ReplicaMap& map, std::span<T> attr,
                           MergeOp op) {
  std::size_t merges = 0;
  for (const auto& group : map.groups) {
    if (group.size() < 2) continue;
    ++merges;
    T merged{};
    switch (op) {
      case MergeOp::Mean: {
        double sum = 0.0;
        for (NodeId s : group) sum += static_cast<double>(attr[s]);
        merged = static_cast<T>(sum / static_cast<double>(group.size()));
        break;
      }
      case MergeOp::Min: {
        merged = attr[group[0]];
        for (NodeId s : group) merged = attr[s] < merged ? attr[s] : merged;
        break;
      }
      case MergeOp::Max: {
        merged = attr[group[0]];
        for (NodeId s : group) merged = attr[s] > merged ? attr[s] : merged;
        break;
      }
      case MergeOp::Sum: {
        double sum = 0.0;
        for (NodeId s : group) sum += static_cast<double>(attr[s]);
        merged = static_cast<T>(sum);
        break;
      }
    }
    for (NodeId s : group) attr[s] = merged;
  }
  return merges;
}

/// Mean-merge variant that skips non-finite values (distances of replicas
/// not yet reached stay infinite and must not poison the mean).
std::size_t merge_replicas_finite_mean(const ReplicaMap& map,
                                       std::span<float> attr);
std::size_t merge_replicas_finite_mean(const ReplicaMap& map,
                                       std::span<double> attr);

}  // namespace graffix::transform
