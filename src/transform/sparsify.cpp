#include "transform/sparsify.hpp"

#include <vector>

#include "util/macros.hpp"
#include "util/rng.hpp"

namespace graffix::transform {

SparsifyResult sparsify_transform(const Csr& graph,
                                  const SparsifyKnobs& knobs) {
  GRAFFIX_CHECK(knobs.drop_fraction >= 0.0 && knobs.drop_fraction <= 1.0,
                "drop fraction out of range");
  const NodeId n = graph.num_slots();
  const bool weighted = graph.has_weights();
  Pcg32 rng = make_stream(knobs.seed, 0xd20b);

  SparsifyResult result;
  std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
  std::vector<NodeId> targets;
  std::vector<Weight> weights;
  targets.reserve(graph.num_edges());
  if (weighted) weights.reserve(graph.num_edges());

  for (NodeId u = 0; u < n; ++u) {
    const auto nbrs = graph.neighbors(u);
    const auto wts =
        weighted ? graph.edge_weights(u) : std::span<const Weight>{};
    const std::size_t before = targets.size();
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (rng.next_double() < knobs.drop_fraction) {
        ++result.edges_dropped;
        continue;
      }
      targets.push_back(nbrs[i]);
      if (weighted) weights.push_back(wts[i]);
    }
    if (knobs.keep_one_edge_per_vertex && targets.size() == before &&
        !nbrs.empty()) {
      // Resurrect one kept edge (the first) so the vertex keeps pushing.
      targets.push_back(nbrs[0]);
      if (weighted) weights.push_back(wts[0]);
      --result.edges_dropped;
    }
    offsets[u + 1] = targets.size();
  }
  result.graph = Csr(std::move(offsets), std::move(targets),
                     std::move(weights),
                     {graph.holes().begin(), graph.holes().end()});
  return result;
}

}  // namespace graffix::transform
