#include "transform/validate.hpp"

#include <cstdio>

#include "util/macros.hpp"

namespace graffix::transform {

namespace {
ValidationReport fail(const char* fmt, unsigned long long a,
                      unsigned long long b) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), fmt, a, b);
  return {false, buf};
}
}  // namespace

ValidationReport validate_replica_groups(const Csr& graph,
                                         const ReplicaMap& replicas) {
  if (replicas.groups.empty() && replicas.group_of_slot.empty()) return {};
  const NodeId slots = graph.num_slots();
  if (replicas.group_of_slot.size() != slots) {
    return fail("group_of_slot has %llu entries for %llu slots",
                replicas.group_of_slot.size(), slots);
  }
  std::vector<std::uint8_t> listed(slots, 0);
  unsigned long long members_total = 0;
  for (std::size_t g = 0; g < replicas.groups.size(); ++g) {
    const auto& group = replicas.groups[g];
    if (group.empty()) return fail("replica group %llu is empty", g, 0);
    for (const NodeId member : group) {
      if (member >= slots) {
        return fail("replica group %llu lists out-of-range slot %llu", g,
                    member);
      }
      if (listed[member] != 0) {
        return fail("slot %llu appears in more than one replica group (%llu)",
                    member, g);
      }
      listed[member] = 1;
      ++members_total;
      if (graph.is_hole(member)) {
        return fail("replica group %llu lists hole slot %llu", g, member);
      }
      if (replicas.group_of_slot[member] != static_cast<NodeId>(g)) {
        return fail("slot %llu does not map back to its replica group %llu",
                    member, g);
      }
    }
  }
  unsigned long long assigned = 0;
  for (NodeId s = 0; s < slots; ++s) {
    if (replicas.group_of_slot[s] != kInvalidNode) {
      if (replicas.group_of_slot[s] >= replicas.groups.size()) {
        return fail("slot %llu maps to nonexistent replica group %llu", s,
                    replicas.group_of_slot[s]);
      }
      ++assigned;
    }
  }
  if (assigned != members_total) {
    return fail(
        "group_of_slot assigns %llu slots but the groups list %llu members",
        assigned, members_total);
  }
  return {};
}

void check_transform_phase(const char* phase, const Csr& graph,
                           const ReplicaMap* replicas) {
  if (!validation_enabled()) return;
  ValidationReport report = validate_graph(graph);
  if (report.ok && replicas != nullptr) {
    report = validate_replica_groups(graph, *replicas);
  }
  GRAFFIX_CHECK(report.ok,
                "GRAFFIX_VALIDATE: transform phase '%s' produced an invalid "
                "graph: %s",
                phase, report.message.c_str());
}

}  // namespace graffix::transform
