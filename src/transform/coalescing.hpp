// Driver for the full §2 coalescing transform: renumber, then replicate.
#pragma once

#include "transform/replicate.hpp"

namespace graffix::transform {

struct CoalescingResult {
  Csr graph;                 // renumbered + replicated
  RenumberResult renumber;   // old-id <-> slot mapping
  ReplicaMap replicas;
  std::uint64_t edges_moved = 0;
  std::uint64_t edges_added = 0;
  NodeId holes_total = 0;
  NodeId holes_filled = 0;

  /// Extra space w.r.t. the original graph (Table 5's space column).
  double extra_space_fraction = 0.0;

  /// Wall-clock seconds of the replication greedy phase plus its
  /// conflict-free round structure (Table 5 per-phase scaling rows).
  double greedy_seconds = 0.0;
  BatchTelemetry batching;

  /// Projects a per-slot attribute vector back to original node ids.
  template <typename T>
  [[nodiscard]] std::vector<T> project(std::span<const T> attr_slots) const {
    return project_to_nodes<T>(renumber, attr_slots);
  }
};

/// Runs the coalescing transform. With knobs.connectedness_threshold > 1
/// no replication happens and the result is an exact isomorph (useful for
/// ablation and tests).
[[nodiscard]] CoalescingResult coalescing_transform(const Csr& graph,
                                                    const CoalescingKnobs& knobs);

}  // namespace graffix::transform
