#include "transform/divergence.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "util/macros.hpp"

namespace graffix::transform {

namespace {

double degree_uniformity(const std::vector<NodeId>& order,
                         const std::vector<NodeId>& degree,
                         std::uint32_t warp_size) {
  std::uint64_t useful = 0, issued = 0;
  for (std::size_t base = 0; base < order.size(); base += warp_size) {
    const std::size_t hi = std::min(order.size(), base + warp_size);
    NodeId max_deg = 0;
    for (std::size_t i = base; i < hi; ++i) {
      max_deg = std::max(max_deg, degree[order[i]]);
      useful += degree[order[i]];
    }
    issued += static_cast<std::uint64_t>(max_deg) * warp_size;
  }
  return issued == 0 ? 1.0
                     : static_cast<double>(useful) / static_cast<double>(issued);
}

}  // namespace

DivergenceResult divergence_transform(const Csr& graph,
                                      const DivergenceKnobs& knobs) {
  // Hole-aware: holes ride along as zero-degree slots (they are never
  // boosted and bucket to the tail / stay in place under preserve_order).
  const NodeId n = graph.num_slots();
  const std::uint32_t ws = knobs.warp_size;
  const bool weighted = graph.has_weights();

  DivergenceResult result;

  std::vector<NodeId> degree(n);
  for (NodeId u = 0; u < n; ++u) degree[u] = graph.degree(u);

  // Bucket sort by degree: nodes land in power-of-two degree buckets
  // ("similar degrees together", §4) rather than a full sort — this is
  // what the paper's bucket sort does, and the residual intra-warp
  // spread is exactly what the edge-insertion step then normalizes.
  // Buckets descending (hub warps first), stable by id within a bucket.
  // All degrees below 8 share one bucket: a warp cannot lose a
  // meaningful lane fraction to single-digit degree spread, and leaving
  // near-uniform graphs (roads, ER) in their original order preserves
  // whatever locality that order carries.
  auto bucket_of = [](NodeId d) {
    return d < 8 ? 3u : 32u - static_cast<unsigned>(__builtin_clz(d));
  };
  result.warp_order.resize(n);
  std::iota(result.warp_order.begin(), result.warp_order.end(), NodeId{0});
  if (!knobs.preserve_order) {
    std::stable_sort(result.warp_order.begin(), result.warp_order.end(),
                     [&](NodeId a, NodeId b) {
                       return bucket_of(degree[a]) > bucket_of(degree[b]);
                     });
  }

  result.degree_uniformity_before =
      degree_uniformity(result.warp_order, degree, ws);

  const auto budget = static_cast<std::uint64_t>(
      knobs.edge_budget_fraction * static_cast<double>(graph.num_edges()));

  std::vector<std::vector<std::pair<NodeId, Weight>>> extra(n);
  std::uint64_t added_total = 0;

  std::unordered_set<NodeId> existing;
  for (std::size_t base = 0; base < result.warp_order.size() && added_total < budget;
       base += ws) {
    const std::size_t hi = std::min(result.warp_order.size(), base + ws);
    NodeId max_deg = 0;
    for (std::size_t i = base; i < hi; ++i) {
      max_deg = std::max(max_deg, degree[result.warp_order[i]]);
    }
    if (max_deg == 0) continue;
    const auto target = static_cast<NodeId>(knobs.boost_to * max_deg);

    for (std::size_t i = base; i < hi && added_total < budget; ++i) {
      const NodeId u = result.warp_order[i];
      const NodeId d = degree[u];
      if (d == 0 || d >= target) continue;
      const double degree_sim =
          1.0 - static_cast<double>(d) / static_cast<double>(max_deg);
      if (degree_sim > knobs.degree_sim_threshold) continue;

      NodeId needed = target - d;
      existing.clear();
      existing.insert(u);
      for (NodeId v : graph.neighbors(u)) existing.insert(v);

      // 2-hop destinations, in adjacency order for determinism.
      const auto nbrs = graph.neighbors(u);
      const auto wts =
          weighted ? graph.edge_weights(u) : std::span<const Weight>{};
      for (std::size_t p = 0;
           p < nbrs.size() && needed > 0 && added_total < budget; ++p) {
        const NodeId mid = nbrs[p];
        const Weight w1 = weighted ? wts[p] : Weight{1};
        const auto hops = graph.neighbors(mid);
        const auto hop_wts =
            weighted ? graph.edge_weights(mid) : std::span<const Weight>{};
        for (std::size_t q = 0;
             q < hops.size() && needed > 0 && added_total < budget; ++q) {
          const NodeId dst = hops[q];
          if (existing.contains(dst)) continue;
          const Weight w2 = weighted ? hop_wts[q] : Weight{1};
          extra[u].emplace_back(dst, w1 + w2);
          existing.insert(dst);
          --needed;
          ++added_total;
          if (added_total >= budget) break;
        }
      }
    }
  }
  result.edges_added = added_total;

  // Rebuild the Csr with extra arcs appended per node.
  std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    offsets[u + 1] = offsets[u] + graph.degree(u) + extra[u].size();
  }
  std::vector<NodeId> targets(offsets.back());
  std::vector<Weight> weights(weighted ? offsets.back() : 0);
  for (NodeId u = 0; u < n; ++u) {
    EdgeId pos = offsets[u];
    const auto nbrs = graph.neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i, ++pos) {
      targets[pos] = nbrs[i];
      if (weighted) weights[pos] = graph.edge_weights(u)[i];
    }
    for (const auto& [dst, w] : extra[u]) {
      targets[pos] = dst;
      if (weighted) weights[pos] = w;
      ++pos;
    }
  }
  result.graph = Csr(std::move(offsets), std::move(targets), std::move(weights),
                     {graph.holes().begin(), graph.holes().end()});

  std::vector<NodeId> new_degree(n);
  for (NodeId u = 0; u < n; ++u) new_degree[u] = result.graph.degree(u);
  result.degree_uniformity_after =
      degree_uniformity(result.warp_order, new_degree, ws);

  const double before = static_cast<double>(graph.memory_bytes());
  const double after = static_cast<double>(result.graph.memory_bytes());
  result.extra_space_fraction = before == 0.0 ? 0.0 : (after - before) / before;
  return result;
}

}  // namespace graffix::transform
