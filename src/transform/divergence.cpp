#include "transform/divergence.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "graph/rebuild.hpp"
#include "transform/validate.hpp"
#include "util/macros.hpp"
#include "util/parallel.hpp"

namespace graffix::transform {

namespace {

double degree_uniformity(const std::vector<NodeId>& order,
                         const std::vector<NodeId>& degree,
                         std::uint32_t warp_size) {
  const std::size_t groups = (order.size() + warp_size - 1) / warp_size;
  // Per-warp-group tallies in parallel; integer sums are order-invariant,
  // so the serial accumulation below is thread-count independent.
  std::vector<std::uint64_t> useful(groups, 0), issued(groups, 0);
  parallel_for(std::size_t{0}, groups, [&](std::size_t g) {
    const std::size_t base = g * warp_size;
    const std::size_t hi = std::min(order.size(), base + warp_size);
    NodeId max_deg = 0;
    for (std::size_t i = base; i < hi; ++i) {
      max_deg = std::max(max_deg, degree[order[i]]);
      useful[g] += degree[order[i]];
    }
    issued[g] = static_cast<std::uint64_t>(max_deg) * warp_size;
  });
  std::uint64_t useful_total = 0, issued_total = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    useful_total += useful[g];
    issued_total += issued[g];
  }
  return issued_total == 0 ? 1.0
                           : static_cast<double>(useful_total) /
                                 static_cast<double>(issued_total);
}

/// Shared implementation. When `owned` is non-null it aliases `graph`
/// and the rebuild may consume it (staggered frees; see rebuild.hpp) —
/// `graph` must not be read after the rebuild in that case.
DivergenceResult divergence_transform_impl(const Csr& graph,
                                           const DivergenceKnobs& knobs,
                                           Csr* owned) {
  // Hole-aware: holes ride along as zero-degree slots (they are never
  // boosted and bucket to the tail / stay in place under preserve_order).
  const NodeId n = graph.num_slots();
  const std::uint32_t ws = knobs.warp_size;
  const bool weighted = graph.has_weights();

  DivergenceResult result;

  std::vector<NodeId> degree(n);
  parallel_for(NodeId{0}, n, [&](NodeId u) { degree[u] = graph.degree(u); });

  // Bucket sort by degree: nodes land in power-of-two degree buckets
  // ("similar degrees together", §4) rather than a full sort — this is
  // what the paper's bucket sort does, and the residual intra-warp
  // spread is exactly what the edge-insertion step then normalizes.
  // Buckets descending (hub warps first), stable by id within a bucket.
  // All degrees below 8 share one bucket: a warp cannot lose a
  // meaningful lane fraction to single-digit degree spread, and leaving
  // near-uniform graphs (roads, ER) in their original order preserves
  // whatever locality that order carries.
  auto bucket_of = [](NodeId d) {
    return d < 8 ? 3u : 32u - static_cast<unsigned>(__builtin_clz(d));
  };
  result.warp_order.resize(n);
  std::iota(result.warp_order.begin(), result.warp_order.end(), NodeId{0});
  if (!knobs.preserve_order) {
    std::stable_sort(result.warp_order.begin(), result.warp_order.end(),
                     [&](NodeId a, NodeId b) {
                       return bucket_of(degree[a]) > bucket_of(degree[b]);
                     });
  }

  result.degree_uniformity_before =
      degree_uniformity(result.warp_order, degree, ws);

  const auto budget = static_cast<std::uint64_t>(
      knobs.edge_budget_fraction * static_cast<double>(graph.num_edges()));

  // --- 2-hop candidate enumeration ----------------------------------------
  // Phase 1 (parallel): each warp position enumerates its node's 2-hop
  // boost candidates independently — per-node candidate lists depend only
  // on the warp's max degree and the node's adjacency, not on the global
  // budget, so this pass is embarrassingly parallel and deterministic.
  // Phase 2 (serial, cheap) walks warp order and truncates at the global
  // budget, which reproduces the sequential semantics exactly.
  const std::size_t groups = (result.warp_order.size() + ws - 1) / ws;
  std::vector<NodeId> warp_max(groups, 0);
  parallel_for(std::size_t{0}, groups, [&](std::size_t g) {
    const std::size_t base = g * ws;
    const std::size_t hi = std::min(result.warp_order.size(), base + ws);
    for (std::size_t i = base; i < hi; ++i) {
      warp_max[g] = std::max(warp_max[g], degree[result.warp_order[i]]);
    }
  });

  std::vector<std::vector<ExtraArc>> candidates(n);
  const std::size_t enumerate_upto =
      budget == 0 ? 0 : result.warp_order.size();
  parallel_for_dynamic(
      std::size_t{0}, enumerate_upto, [&](std::size_t i) {
        const NodeId max_deg = warp_max[i / ws];
        if (max_deg == 0) return;
        const auto target = static_cast<NodeId>(knobs.boost_to * max_deg);
        const NodeId u = result.warp_order[i];
        const NodeId d = degree[u];
        if (d == 0 || d >= target) return;
        const double degree_sim =
            1.0 - static_cast<double>(d) / static_cast<double>(max_deg);
        if (degree_sim > knobs.degree_sim_threshold) return;

        NodeId needed = target - d;
        std::unordered_set<NodeId> existing;
        existing.insert(u);
        for (NodeId v : graph.neighbors(u)) existing.insert(v);

        // 2-hop destinations, in adjacency order for determinism.
        const auto nbrs = graph.neighbors(u);
        const auto wts =
            weighted ? graph.edge_weights(u) : std::span<const Weight>{};
        for (std::size_t p = 0; p < nbrs.size() && needed > 0; ++p) {
          const NodeId mid = nbrs[p];
          const Weight w1 = weighted ? wts[p] : Weight{1};
          const auto hops = graph.neighbors(mid);
          const auto hop_wts =
              weighted ? graph.edge_weights(mid) : std::span<const Weight>{};
          for (std::size_t q = 0; q < hops.size() && needed > 0; ++q) {
            const NodeId dst = hops[q];
            if (existing.contains(dst)) continue;
            const Weight w2 = weighted ? hop_wts[q] : Weight{1};
            candidates[u].push_back({dst, w1 + w2});
            existing.insert(dst);
            --needed;
          }
        }
      });

  std::vector<std::vector<ExtraArc>> extra(n);
  std::uint64_t added_total = 0;
  for (std::size_t i = 0;
       i < result.warp_order.size() && added_total < budget; ++i) {
    const NodeId u = result.warp_order[i];
    auto& cand = candidates[u];
    if (cand.empty()) continue;
    const auto keep = static_cast<std::size_t>(
        std::min<std::uint64_t>(cand.size(), budget - added_total));
    cand.resize(keep);
    added_total += keep;
    extra[u] = std::move(cand);
  }
  result.edges_added = added_total;
  // At paper scale the n outer headers alone are tens of MiB; drop the
  // (now hollowed-out) candidate table before the rebuild allocates the
  // new edge arrays so the two never coexist at peak (DESIGN.md §9).
  std::vector<std::vector<ExtraArc>>().swap(candidates);

  // Rebuild the Csr with extra arcs appended per node. `graph` is dead
  // after this line when the caller handed us ownership.
  const double before = static_cast<double>(graph.memory_bytes());
  result.graph = owned != nullptr ? rebuild_with_extras(std::move(*owned), extra)
                                  : rebuild_with_extras(graph, extra);

  std::vector<NodeId> new_degree(n);
  parallel_for(NodeId{0}, n,
               [&](NodeId u) { new_degree[u] = result.graph.degree(u); });
  result.degree_uniformity_after =
      degree_uniformity(result.warp_order, new_degree, ws);

  const double after = static_cast<double>(result.graph.memory_bytes());
  result.extra_space_fraction = before == 0.0 ? 0.0 : (after - before) / before;
  check_transform_phase("divergence", result.graph);
  return result;
}

}  // namespace

DivergenceResult divergence_transform(const Csr& graph,
                                      const DivergenceKnobs& knobs) {
  return divergence_transform_impl(graph, knobs, nullptr);
}

DivergenceResult divergence_transform(Csr&& graph,
                                      const DivergenceKnobs& knobs) {
  return divergence_transform_impl(graph, knobs, &graph);
}

}  // namespace graffix::transform
