#include "transform/batch.hpp"

#include <cstdlib>
#include <cstring>

namespace graffix::transform {

namespace {

// -1 = follow the environment; 0/1 = forced by a test.
int g_serial_override = -1;

bool env_serial() {
  static const bool forced = [] {
    const char* value = std::getenv("GRAFFIX_SERIAL_TRANSFORMS");
    return value != nullptr && std::strcmp(value, "0") != 0;
  }();
  return forced;
}

}  // namespace

bool serial_transforms() {
  if (g_serial_override >= 0) return g_serial_override != 0;
  return env_serial();
}

void set_serial_transforms_for_test(int force) { g_serial_override = force; }

}  // namespace graffix::transform
