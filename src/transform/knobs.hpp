// The tunable approximation knobs — one struct per technique, defaults
// matching the paper's experimental settings (§5).
#pragma once

#include <cstdint>

namespace graffix::transform {

/// §2: memory-coalescing transform (renumber + replicate).
struct CoalescingKnobs {
  /// Chunk size k (1 <= k <= warp size); levels start at multiples of k.
  /// Paper uses k = 16.
  std::uint32_t chunk_size = 16;
  /// Connectedness threshold for replication: 0.6 for power-law graphs,
  /// 0.4 for road networks (§5.2).
  double connectedness_threshold = 0.6;
  /// Cap on new 2-hop edges added per replica (the paper adds "only a
  /// few" per replica by restricting the view to one chunk).
  std::uint32_t max_new_edges_per_replica = 8;
  /// Cap on copies per node. The arithmetic-mean confluence of a group
  /// with g members converges at rate (g-1)/g per iteration, so huge hub
  /// groups pay their coalescing win back in extra iterations.
  std::uint32_t max_replicas_per_node = 4;
};

/// §3: memory-latency transform (clustering-coefficient clusters in
/// shared memory).
struct LatencyKnobs {
  /// Nodes with CC >= threshold anchor shared-memory clusters; the paper
  /// recommends keeping this "relatively high".
  double cc_threshold = 0.8;
  /// Nodes with CC in [threshold - near_delta, threshold) are promoted by
  /// edge insertion (scenario 1 in §3).
  double near_delta = 0.15;
  /// Global limit on inserted edges, as a fraction of |E| ("we maintain a
  /// global limit for the number of edges added").
  double edge_budget_fraction = 0.05;
  /// Cap on insertions per anchor node ("only a few edges are added in
  /// this manner") — without it a large near-threshold anchor would grow
  /// a clique over its whole neighborhood.
  std::uint32_t max_edges_per_anchor = 8;
  /// Maximum cluster size (anchor + neighbors) so attributes fit in the
  /// simulated shared memory.
  std::uint32_t cluster_cap = 256;
  /// Maximum number of clusters scheduled.
  std::uint32_t max_clusters = 4096;
  /// Inner iteration multiplier: t = t_diameter_factor * diameter.
  double t_diameter_factor = 2.0;
};

/// §4: thread-divergence transform (degree bucketing + normalization).
struct DivergenceKnobs {
  /// Nodes whose degreeSim = 1 - deg/warpMax is positive but at most this
  /// threshold get boosted (paper sweeps this in Fig. 9, best ~0.3).
  double degree_sim_threshold = 0.3;
  /// Boost target as a fraction of the warp's max degree (paper: 85%).
  double boost_to = 0.85;
  /// Warp width used for grouping.
  std::uint32_t warp_size = 32;
  /// Global limit on inserted edges as a fraction of |E|.
  double edge_budget_fraction = 0.10;
  /// Keep the existing slot order instead of bucket-sorting. Used when
  /// composing with the coalescing transform, whose chunk-aligned layout
  /// must not be reshuffled; warps are then the fixed slot ranges and
  /// only the degree normalization applies.
  bool preserve_order = false;
};

}  // namespace graffix::transform
