// Work decomposition for the SIMT engine.
//
// One WorkItem is what one lane processes during a sweep: a source slot
// plus a contiguous range of its adjacency. The plain strategies emit one
// item per vertex; the Tigr-like strategy splits high-degree vertices into
// several items (virtual nodes) so each lane's range is bounded.
//
// Work lists built from an *invariant* slot list (the warp order used by
// every topology-driven sweep) are themselves invariant whenever the
// strategy's decomposition is a pure function of (graph, slots) — see
// baselines::Strategy::work_is_slot_invariant. Runners exploit this by
// building such layouts once per driver (and once per cluster in the
// shared Layout) and reusing them across iterations; a cached layout is
// only valid for the exact (graph, order, strategy) triple it was built
// from, so swapping any of those means building a new driver.
//
// Work lists built from a *frontier* (data-driven sweeps) are rebuilt per
// sweep from the active list. Frontiers produced inside a sweep — SSSP's
// changed set, BC forward's next wave — come out of the deterministic
// side-channel append merge (sim::SideChannel, DESIGN.md §7), so the slot
// list a frontier work list is built from is byte-identical at any thread
// count or chunking, and so is the resulting WorkItem layout.
#pragma once

#include <cstdint>

#include "util/types.hpp"

namespace graffix::sim {

struct WorkItem {
  NodeId src;        // slot whose edges this lane walks
  EdgeId edge_begin; // first edge index in the Csr targets array
  NodeId edge_count; // number of edges this item covers
};

/// How lanes' loads from the edges array coalesce.
enum class EdgeLoadMode {
  /// Each lane streams its own adjacency range: segments counted from the
  /// actual byte addresses (the common CSR layout).
  Csr,
  /// Tigr-style edge-array coalescing: the edge array is laid out so that
  /// lanes of a warp read consecutive words; one transaction per active
  /// step regardless of source scatter.
  IdealWarpPacked,
};

/// Which memory space serves node-attribute accesses during a sweep.
enum class AttrSpace {
  Global,
  Shared,  // cluster phases: all attributes resident in shared memory
};

}  // namespace graffix::sim
