// Counters accumulated by the SIMT engine during a run. These are the
// raw observables the cost model converts into simulated cycles, and the
// quantities the unit tests assert on directly (transactions for known
// access patterns, SIMD efficiency for known degree layouts).
#pragma once

#include <cstdint>

namespace graffix::sim {

struct KernelStats {
  std::uint64_t sweeps = 0;             // kernel launches
  std::uint64_t warp_steps = 0;         // lockstep instruction steps issued
  std::uint64_t lane_slots = 0;         // warp_steps * warp_size
  std::uint64_t active_lanes = 0;       // lanes doing real work
  std::uint64_t edge_transactions = 0;  // edges/weights array segments
  std::uint64_t attr_transactions = 0;  // node-attribute gather segments
  std::uint64_t attr_ideal_transactions = 0;  // lower bound (fully packed)
  std::uint64_t shared_accesses = 0;    // attr accesses served from smem
  std::uint64_t bank_conflicts = 0;     // serialized smem bank accesses
  std::uint64_t atomic_commits = 0;     // successful attribute updates
  std::uint64_t atomic_conflicts = 0;   // intra-step same-address collisions
  std::uint64_t aux_ops = 0;            // confluence merges, filter items...

  /// Fraction of issued lane slots doing useful work (1.0 = no divergence).
  [[nodiscard]] double simd_efficiency() const {
    return lane_slots == 0
               ? 1.0
               : static_cast<double>(active_lanes) / static_cast<double>(lane_slots);
  }

  /// Ratio of the minimum possible attribute transactions to the ones
  /// actually issued (1.0 = perfectly coalesced).
  [[nodiscard]] double coalescing_efficiency() const {
    return attr_transactions == 0
               ? 1.0
               : static_cast<double>(attr_ideal_transactions) /
                     static_cast<double>(attr_transactions);
  }

  /// Global gather transactions issued per useful lane — the cost of
  /// feeding one edge's destination attribute. Lower is better; this is
  /// the fairest cross-run coalescing comparison since it normalizes by
  /// work actually done (iteration counts may differ between runs).
  [[nodiscard]] double gather_transactions_per_lane() const {
    return active_lanes == 0
               ? 0.0
               : static_cast<double>(attr_transactions) /
                     static_cast<double>(active_lanes);
  }

  /// Fraction of attribute traffic served from shared memory.
  [[nodiscard]] double shared_fraction() const {
    const double total = static_cast<double>(shared_accesses) +
                         static_cast<double>(attr_transactions);
    return total == 0.0 ? 0.0 : static_cast<double>(shared_accesses) / total;
  }

  KernelStats& operator+=(const KernelStats& other);

  /// Counter-for-counter equality — the determinism tests compare serial
  /// and sharded sweeps with this, so it must stay exact (no tolerance).
  [[nodiscard]] bool operator==(const KernelStats& other) const = default;
};

}  // namespace graffix::sim
