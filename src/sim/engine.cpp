#include "sim/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

namespace graffix::sim {

namespace {
// Process-wide testing knobs (see the header): driver-level differential
// tests cannot reach the engines run_sssp / run_bc construct privately,
// and 1-core CI boxes never shard on their own — these force the grouped
// path and observe that it ran, across every engine at once.
std::atomic<std::size_t> g_sweep_chunks{0};
std::atomic<std::uint64_t> g_grouped_replays{0};
}  // namespace

void set_global_sweep_chunks_for_test(std::size_t n) {
  g_sweep_chunks.store(n, std::memory_order_relaxed);
}

std::size_t global_sweep_chunks_for_test() {
  return g_sweep_chunks.load(std::memory_order_relaxed);
}

std::uint64_t global_grouped_replays_for_test() {
  return g_grouped_replays.load(std::memory_order_relaxed);
}

namespace detail {
void note_grouped_replay() {
  g_grouped_replays.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail

thread_local std::size_t SideChannel::tl_rec_ = 0;

void SideChannel::begin_grouped(std::size_t n_records) {
  n_records_ = n_records;
  if (n_sums_ > 0) rec_sum_.assign(n_records * n_sums_, 0.0);
  rec_tag_.assign(n_records, 0);
  rec_append_.assign(n_records, kInvalidNode);
  grouped_ = true;
}

void SideChannel::merge_grouped() {
  grouped_ = false;
  for (std::size_t r = 0; r < n_records_; ++r) {
    const std::uint8_t tag = rec_tag_[r];
    if (tag != 0) {
      for (std::size_t k = 0; k < n_sums_; ++k) {
        if (((tag >> k) & 1) != 0) sums_[k] += rec_sum_[r * n_sums_ + k];
      }
      flags_ |= static_cast<std::uint8_t>(tag >> 4);
    }
    const NodeId appended = rec_append_[r];
    if (appended != kInvalidNode) out_->push_back(appended);
  }
}

std::size_t Engine::sweep_chunk_count(std::size_t n_blocks) const {
  if (chunks_override_ > 0) return std::min(chunks_override_, n_blocks);
  if (const std::size_t g = global_sweep_chunks_for_test(); g > 0) {
    return std::min(g, n_blocks);
  }
  if (n_blocks < kMinBlocksToShard || in_parallel()) return 1;
  // Oversubscribed pools (more threads pinned than processors) cannot
  // speed up the accounting phase — shard by what the machine can
  // actually run. One-worker machines stay on the fused serial path.
  const auto workers = static_cast<std::size_t>(effective_workers());
  if (workers <= 1) return 1;
  return std::max<std::size_t>(
      1, std::min(workers * kChunksPerWorker, n_blocks / kMinBlocksPerChunk));
}

void Engine::account_block(std::span<const WorkItem> items,
                           const SweepOptions& opts, std::size_t b,
                           const BlockMeta& meta, SweepScratch& sc,
                           KernelStats& st) const {
  const std::uint32_t ws = config_.warp_size;
  const auto targets = graph_->targets();
  const bool csr_mode = opts.edge_mode == EdgeLoadMode::Csr;
  const bool ideal_mode = opts.edge_mode == EdgeLoadMode::IdealWarpPacked;
  const bool shared_attr = opts.attr_space == AttrSpace::Shared;
  const bool have_resident = !opts.resident.empty();
  const std::uint64_t edge_bytes = config_.edge_bytes;
  const std::uint64_t attr_bytes = config_.attr_bytes;
  const std::uint64_t seg_bytes = config_.transaction_bytes;
  const std::uint32_t banks = config_.shared_banks;
  const std::size_t base = b * ws;
  const std::uint64_t bits = meta.bits;
  const std::uint32_t lanes = meta.lanes;
  const NodeId max_len = meta.max_len;
  // Source-side residency is invariant across an item's edges: fetch it
  // once per gated-in lane instead of once per edge.
  for (std::uint32_t l = 0; l < lanes; ++l) {
    if (!((bits >> l) & 1)) continue;
    sc.lane_res[l] =
        have_resident ? opts.resident[items[base + l].src] : kInvalidNode;
  }
  std::fill_n(sc.lane_edge_seg.begin(), lanes, ~std::uint64_t{0});
  // Every step issues one warp instruction and occupies ws lane slots.
  st.warp_steps += max_len;
  st.lane_slots += static_cast<std::uint64_t>(max_len) * ws;
  for (NodeId j = 0; j < max_len; ++j) {
    sc.epoch += 1;  // invalidates the bank + segment scratch in O(1)
    std::uint32_t active = 0;
    std::uint32_t edge_segs = 0;
    std::uint32_t attr_segs = 0;
    std::uint32_t shared_hits = 0;
    for (std::uint32_t l = 0; l < lanes; ++l) {
      const WorkItem& item = items[base + l];
      if (!((bits >> l) & 1) || j >= item.edge_count) continue;
      ++active;
      const EdgeId e = item.edge_begin + j;
      const NodeId v = targets[e];
      if (csr_mode) {
        // A lane streams its adjacency sequentially: consecutive
        // positions share a 32B sector and hit in cache, so a lane
        // only pays when it crosses into a new sector.
        const std::uint64_t seg = (e * edge_bytes) / seg_bytes;
        if (seg != sc.lane_edge_seg[l]) {
          sc.lane_edge_seg[l] = seg;
          ++edge_segs;
        }
      }
      const bool resident_pair = sc.lane_res[l] != kInvalidNode &&
                                 sc.lane_res[l] == opts.resident[v];
      if (shared_attr || resident_pair) {
        ++shared_hits;
        // Bank-conflict bookkeeping: lanes hitting different words in
        // the same bank serialize; same-word hits broadcast for free.
        const std::uint32_t bank = v % banks;
        if (sc.bank_epoch[bank] == sc.epoch && sc.bank_word[bank] != v) {
          st.bank_conflicts += 1;
        }
        sc.bank_word[bank] = v;
        sc.bank_epoch[bank] = sc.epoch;
      } else {
        attr_segs += sc.insert_attr_seg((v * attr_bytes) / seg_bytes);
      }
    }
    if (ideal_mode && active > 0) edge_segs = 1;
    if (opts.weighted) edge_segs *= 2;  // parallel weights stream
    if (opts.edges_resident) {
      st.shared_accesses += active;
      edge_segs = 0;
    }
    st.active_lanes += active;
    st.edge_transactions += edge_segs;
    st.attr_transactions += attr_segs;
    st.shared_accesses += shared_hits;
    // Lower bound: `active` gathers of attr_bytes each, fully packed.
    const std::uint64_t global_attr = active - shared_hits;
    st.attr_ideal_transactions +=
        (global_attr * attr_bytes + seg_bytes - 1) / seg_bytes;
  }
}

void Engine::charge_uniform_kernel(std::uint64_t n_items, double tx_per_item,
                                   KernelStats& stats) const {
  if (n_items == 0) return;
  stats.sweeps += 1;
  const std::uint32_t ws = config_.warp_size;
  const std::uint64_t steps = (n_items + ws - 1) / ws;
  stats.warp_steps += steps;
  stats.lane_slots += steps * ws;
  stats.active_lanes += n_items;
  stats.aux_ops += n_items;
  // Uniform streaming access: perfectly coalesced. Ceil, not round: a
  // partial trailing segment still occupies a full bus transaction, and
  // a kernel that touches any bytes owes at least one.
  const double bytes =
      static_cast<double>(n_items) * tx_per_item * config_.attr_bytes;
  const auto tx = static_cast<std::uint64_t>(
      std::ceil(bytes / config_.transaction_bytes));
  stats.attr_transactions += tx;
  stats.attr_ideal_transactions += tx;
}

std::vector<WorkItem> items_per_vertex(const Csr& graph,
                                       std::span<const NodeId> slots) {
  std::vector<WorkItem> items;
  items.reserve(slots.size());
  for (NodeId s : slots) {
    items.push_back({s, graph.edge_begin(s), graph.degree(s)});
  }
  return items;
}

std::vector<WorkItem> items_all_vertices(const Csr& graph) {
  std::vector<WorkItem> items;
  items.reserve(graph.num_nodes());
  const NodeId slots = graph.num_slots();
  for (NodeId s = 0; s < slots; ++s) {
    if (graph.is_hole(s)) continue;
    items.push_back({s, graph.edge_begin(s), graph.degree(s)});
  }
  return items;
}

}  // namespace graffix::sim
