#include "sim/engine.hpp"

#include <cmath>

namespace graffix::sim {

void Engine::charge_uniform_kernel(std::uint64_t n_items, double tx_per_item,
                                   KernelStats& stats) const {
  if (n_items == 0) return;
  stats.sweeps += 1;
  const std::uint32_t ws = config_.warp_size;
  const std::uint64_t steps = (n_items + ws - 1) / ws;
  stats.warp_steps += steps;
  stats.lane_slots += steps * ws;
  stats.active_lanes += n_items;
  stats.aux_ops += n_items;
  // Uniform streaming access: perfectly coalesced. Ceil, not round: a
  // partial trailing segment still occupies a full bus transaction, and
  // a kernel that touches any bytes owes at least one.
  const double bytes =
      static_cast<double>(n_items) * tx_per_item * config_.attr_bytes;
  const auto tx = static_cast<std::uint64_t>(
      std::ceil(bytes / config_.transaction_bytes));
  stats.attr_transactions += tx;
  stats.attr_ideal_transactions += tx;
}

std::vector<WorkItem> items_per_vertex(const Csr& graph,
                                       std::span<const NodeId> slots) {
  std::vector<WorkItem> items;
  items.reserve(slots.size());
  for (NodeId s : slots) {
    items.push_back({s, graph.edge_begin(s), graph.degree(s)});
  }
  return items;
}

std::vector<WorkItem> items_all_vertices(const Csr& graph) {
  std::vector<WorkItem> items;
  items.reserve(graph.num_nodes());
  const NodeId slots = graph.num_slots();
  for (NodeId s = 0; s < slots; ++s) {
    if (graph.is_hole(s)) continue;
    items.push_back({s, graph.edge_begin(s), graph.degree(s)});
  }
  return items;
}

}  // namespace graffix::sim
