// Configuration of the SIMT execution model.
//
// This is the repo's stand-in for the paper's NVIDIA K40c (see DESIGN.md
// §2): a deterministic cost model in which the only things that matter
// are the ones Graffix manipulates — memory-transaction counts
// (coalescing), the global/shared access mix (latency), and active-lane
// fractions (divergence). Defaults approximate K40c ratios; absolute
// seconds are not meaningful, relative times are.
#pragma once

#include <cstdint>

namespace graffix::sim {

struct SimConfig {
  /// Threads per warp; also the coalescing window.
  std::uint32_t warp_size = 32;
  /// Bytes served by one global-memory transaction. Kepler-class GPUs
  /// (the paper's K40c) serve non-cached global loads as 32-byte L2
  /// sectors, which is what makes scattered gathers so expensive there.
  std::uint32_t transaction_bytes = 32;
  /// Bytes per node-attribute element and per edges-array element.
  std::uint32_t attr_bytes = 4;
  std::uint32_t edge_bytes = 4;

  /// Cycles to issue one warp instruction step.
  double issue_cycles = 2.0;
  /// Unhidden latency of one global-memory transaction.
  double global_latency = 300.0;
  /// Latency of one shared-memory access (per warp step).
  double shared_latency = 4.0;
  /// Shared memory bank geometry: Kepler has 32 banks of 4-byte words;
  /// lanes hitting different words in one bank serialize.
  std::uint32_t shared_banks = 32;
  /// Extra cycles per serialized bank access beyond the first.
  double bank_conflict_cycles = 2.0;
  /// Cycles per atomic RMW that actually commits.
  double atomic_cycles = 12.0;
  /// Extra serialization cycles per same-address conflict inside a step.
  double atomic_conflict_cycles = 8.0;
  /// Fixed cycles per kernel launch (one sweep = one launch).
  double launch_cycles = 20000.0;

  /// Latency hiding: with W resident warps, effective latency is
  /// global_latency / clamp(W / warps_to_hide, 1, max_overlap).
  std::uint32_t warps_to_hide = 48;
  double max_overlap = 16.0;

  /// Device shape, used only to convert cycles to seconds.
  std::uint32_t num_sms = 15;     // K40c: 15 SMX
  double clock_ghz = 0.745;       // K40c boost

  /// Shared memory capacity per thread-block in attribute elements;
  /// bounds the cluster sizes the latency technique may schedule.
  std::uint32_t shared_capacity_elems = 12288;  // 48 KiB / 4 B

  /// Occupancy cost of shared-memory residency: blocks that stage
  /// cluster subgraphs into shared memory fit fewer warps per SM, so the
  /// run's latency hiding degrades with the resident fraction r as
  /// warps_eff = warps / (1 + smem_occupancy_penalty * r). This is what
  /// makes very low CC thresholds counter-productive (§5.3's "low
  /// threshold -> diminished benefits" discussion).
  double smem_occupancy_penalty = 0.25;
};

}  // namespace graffix::sim
