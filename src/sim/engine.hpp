// Lockstep SIMT engine.
//
// Executes vertex-centric push sweeps over a Csr the way a GPU warp
// would: items are packed into warps of warp_size lanes; the warp steps
// through neighbor position j = 0..max_item_len-1 in lockstep; at each
// step the engine records which lanes are active (divergence), groups the
// lanes' edge-array and node-attribute byte addresses into
// transaction_bytes segments (coalescing), and invokes the caller's edge
// functor, which performs the *functional* update and reports whether it
// committed (atomic traffic).
//
// A sweep runs in two phases (DESIGN.md §7):
//
//   Phase A (accounting) — gate evaluation plus all memory accounting
//   (divergence, edge/attr transactions, shared hits, bank conflicts).
//   Lane destinations are topology-only, so warp blocks are independent
//   here and the phase shards contiguous block ranges across threads;
//   each chunk accumulates into its own KernelStats, reduced in chunk
//   (= warp block) order. All counters are integer sums, so the totals
//   are bit-identical at any thread count. Phase A also records each
//   block's metadata (gate bitmask, lane count, longest gated-in item)
//   and a compacted per-chunk list of live block ids.
//
//   Phase B (functional) — replays warps serially in warp/lane order and
//   invokes the caller's functor. Functors may read state written by
//   earlier commits of the same sweep (Bellman-Ford-style propagation),
//   so this phase never runs in parallel: atomic_commits/atomic_conflicts
//   and all functional state match the fully serial engine exactly.
//   Phase B walks only the live blocks Phase A compacted and reuses the
//   recorded metadata, so gated-out regions and gate/metadata recompute
//   cost nothing here.
//
// When the chunking policy yields a single chunk (small sweeps, nested
// parallelism, a one-worker machine), the sweep takes a *fused* path
// instead: a cheap O(items) gate prepass records the same per-block
// metadata, then one walk over the live blocks runs accounting and the
// functional replay back-to-back per block while the block's items and
// edges are cache-hot. The prepass keeps gate-evaluation timing
// identical to the two-phase path (every gate fires before any fn()),
// so the fused path produces byte-identical KernelStats and functional
// state for ANY pure gate — even one that is not sweep-stable — which
// is what lets one-thread and sharded runs agree bit-for-bit.
//
// Contract for gates: a gate must be *sweep-stable* — its value for any
// source may not depend on commits made by this sweep's functor, because
// Phase A evaluates every gate before Phase B runs any fn(). All in-repo
// gates qualify (SSSP gates on a snapshot, BC's level==depth can never be
// produced by a same-sweep write of depth+1, SCC flags are not written
// mid-propagation); the determinism tests pin this. Gates and functors
// must tolerate concurrent *gate* invocation from worker threads.
//
// Identical inputs give identical stats and results at every thread
// count, including 1. A single Engine instance is not thread-safe; use
// one engine per thread of control (forked drivers each own one).
//
// This is the substitution substrate for the paper's K40c — see DESIGN.md.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "sim/config.hpp"
#include "sim/stats.hpp"
#include "sim/work.hpp"
#include "util/macros.hpp"
#include "util/parallel.hpp"

namespace graffix::sim {

/// Per-sweep options.
struct SweepOptions {
  EdgeLoadMode edge_mode = EdgeLoadMode::Csr;
  AttrSpace attr_space = AttrSpace::Global;
  /// Edge/weight arrays already staged into shared memory (cluster inner
  /// iterations after the first): edge traffic becomes shared accesses.
  bool edges_resident = false;
  /// Cluster residency: resident[slot] == cluster id, kInvalidNode if not
  /// resident. When src and dst share a cluster the attribute access is
  /// served from shared memory (the latency technique's effect, §3).
  std::span<const NodeId> resident = {};
  /// Count a weights-array stream alongside the edges array.
  bool weighted = false;
  /// Whether this sweep is its own kernel launch. Cluster inner
  /// iterations run inside one launch and set this to false.
  bool charge_launch = true;
};

/// Per-chunk accounting scratch. Bank words and the distinct-segment set
/// are epoch-stamped: bumping `epoch` invalidates every entry in O(1)
/// instead of refilling shared_banks words each warp step. The segment
/// set is a small open-addressed hash table (capacity >= 4*warp_size, a
/// power of two, so it can never fill from <= warp_size inserts per
/// step), replacing the previous O(warp_size) linear scan per insert.
struct SweepScratch {
  std::vector<std::uint64_t> lane_edge_seg;
  std::vector<NodeId> lane_res;  // per-lane source residency cluster
  std::vector<NodeId> bank_word;
  std::vector<std::uint64_t> bank_epoch;
  std::vector<std::uint64_t> seg_key;
  std::vector<std::uint64_t> seg_epoch;
  std::uint64_t epoch = 0;
  std::uint32_t seg_mask = 0;

  void ensure(std::uint32_t warp_size, std::uint32_t banks) {
    if (lane_edge_seg.size() != warp_size) {
      lane_edge_seg.assign(warp_size, ~std::uint64_t{0});
      lane_res.assign(warp_size, kInvalidNode);
    }
    bool rewound = false;
    if (bank_word.size() != banks) {
      bank_word.assign(banks, kInvalidNode);
      bank_epoch.assign(banks, 0);
      rewound = true;
    }
    std::uint32_t cap = 4;
    while (cap < 4 * warp_size) cap *= 2;
    if (seg_key.size() != cap) {
      seg_key.assign(cap, 0);
      seg_epoch.assign(cap, 0);
      seg_mask = cap - 1;
      rewound = true;
    }
    if (rewound) {
      // Rewinding the epoch invalidates the stamps of BOTH tables, not
      // just the one that was resized: a stale stamp left at e.g. 1
      // would read as valid the moment the rewound epoch reaches 1
      // again (false "already present" segments undercount attr
      // transactions; false bank hits overcount conflicts).
      epoch = 0;
      std::fill(bank_epoch.begin(), bank_epoch.end(), 0);
      std::fill(seg_epoch.begin(), seg_epoch.end(), 0);
    }
  }

  /// Returns 1 if `seg` is new this epoch, 0 if already present. Stamps
  /// start at 0 and `epoch` is pre-incremented per step, so zero-filled
  /// tables are never falsely valid.
  std::uint32_t insert_attr_seg(std::uint64_t seg) {
    std::uint64_t h = seg * 0x9e3779b97f4a7c15ull;
    h ^= h >> 29;
    std::uint32_t slot = static_cast<std::uint32_t>(h) & seg_mask;
    while (true) {
      if (seg_epoch[slot] != epoch) {
        seg_epoch[slot] = epoch;
        seg_key[slot] = seg;
        return 1;
      }
      if (seg_key[slot] == seg) return 0;
      slot = (slot + 1) & seg_mask;
    }
  }
};

class Engine {
 public:
  Engine(const Csr& graph, SimConfig config)
      : graph_(&graph), config_(config) {
    GRAFFIX_CHECK(config_.warp_size > 0 && config_.warp_size <= 64,
                  "warp size %u", config_.warp_size);
  }

  [[nodiscard]] const SimConfig& config() const { return config_; }
  [[nodiscard]] const Csr& graph() const { return *graph_; }

  /// Runs one lockstep sweep over `items`. For every edge (u -> v, w)
  /// covered by an item, calls fn(u, v, w) -> bool; true means the lane
  /// committed an atomic update to v's attribute.
  ///
  /// Functional state lives entirely in the caller; the engine only
  /// observes addresses and commit flags.
  template <typename EdgeFn>
  void sweep(std::span<const WorkItem> items, const SweepOptions& opts,
             EdgeFn&& fn, KernelStats& stats) {
    sweep_gated(items, opts, [](NodeId) { return true; },
                std::forward<EdgeFn>(fn), stats);
  }

  /// sweep() with per-source gating: lanes whose gate(src) is false idle
  /// for the whole item (they still occupy lane slots — that idling IS
  /// thread divergence — but issue no memory traffic), exactly like a
  /// kernel thread that loads its vertex's state, finds nothing to do,
  /// and falls through. The gate's own coalesced state load is charged
  /// by the caller as a uniform kernel. Gates must be sweep-stable; see
  /// the file comment.
  template <typename Gate, typename EdgeFn>
  void sweep_gated(std::span<const WorkItem> items, const SweepOptions& opts,
                   Gate&& gate, EdgeFn&& fn, KernelStats& stats) {
    if (opts.charge_launch) stats.sweeps += 1;
    if (items.empty()) return;
    const std::uint32_t ws = config_.warp_size;
    const std::size_t n_blocks = (items.size() + ws - 1) / ws;
    const std::size_t n_chunks = sweep_chunk_count(n_blocks);
    block_meta_.resize(n_blocks);
    lane_dst_.resize(ws);
    lane_active_.resize(ws);

    // Evaluates the gate for every lane of block b, records {bits,
    // lanes, max_len}, and reports whether the block has any work. The
    // warp runs until its longest gated-in item is exhausted (thread
    // divergence: shorter and gated-out lanes idle).
    auto eval_gate = [&](std::size_t b) {
      const std::size_t base = b * ws;
      const auto lanes = static_cast<std::uint32_t>(
          std::min<std::size_t>(ws, items.size() - base));
      std::uint64_t bits = 0;
      NodeId max_len = 0;
      for (std::uint32_t l = 0; l < lanes; ++l) {
        const WorkItem& item = items[base + l];
        if (!gate(item.src)) continue;
        bits |= std::uint64_t{1} << l;
        max_len = std::max(max_len, item.edge_count);
      }
      block_meta_[b] = {bits, max_len, lanes};
      return max_len > 0;
    };

    if (chunk_live_.size() < n_chunks) chunk_live_.resize(n_chunks);

    // ---- Fused serial path ----------------------------------------------
    // One chunk means no parallelism to exploit, so skip the phase
    // barrier: after the O(items) gate prepass, each live block runs its
    // accounting and functional replay back-to-back while its items and
    // edges are cache-hot — the pre-sharding single-traversal cost. The
    // prepass is what keeps gate timing identical to the two-phase path
    // (every gate fires before any fn()); see the file comment.
    if (n_chunks == 1 && chunks_override_ == 0) {
      auto& live = chunk_live_[0];
      live.clear();
      for (std::size_t b = 0; b < n_blocks; ++b) {
        if (eval_gate(b)) live.push_back(b);
      }
      if (scratch_.empty()) scratch_.resize(1);
      SweepScratch& sc = scratch_[0];
      sc.ensure(ws, config_.shared_banks);
      for (const std::size_t b : live) {
        account_block(items, opts, b, block_meta_[b], sc, stats);
        functional_block(items, b, block_meta_[b], fn, stats);
      }
      return;
    }

    // ---- Phase A: gate evaluation + memory accounting -------------------
    if (scratch_.size() < n_chunks) scratch_.resize(n_chunks);
    chunk_stats_.assign(n_chunks, KernelStats{});
    const std::size_t blocks_per = n_blocks / n_chunks;
    const std::size_t blocks_rem = n_blocks % n_chunks;
    auto chunk_begin = [&](std::size_t c) {
      return c * blocks_per + std::min(c, blocks_rem);
    };
    auto account = [&](std::size_t c) {
      SweepScratch& sc = scratch_[c];
      sc.ensure(ws, config_.shared_banks);
      KernelStats& st = chunk_stats_[c];
      auto& live = chunk_live_[c];
      live.clear();
      const std::size_t block_end = chunk_begin(c + 1);
      for (std::size_t b = chunk_begin(c); b < block_end; ++b) {
        if (!eval_gate(b)) continue;
        live.push_back(b);
        account_block(items, opts, b, block_meta_[b], sc, st);
      }
    };
    if (n_chunks == 1) {
      account(0);
    } else {
      // Chunks are already coarse (>= kMinBlocksPerChunk blocks each),
      // so grain 1 just load-balances them across the team.
      parallel_for_dynamic(std::size_t{0}, n_chunks, account, /*grain=*/1);
    }
    // Chunks cover ascending block ranges; reducing in chunk order keeps
    // the accumulation order identical to the serial engine (the counters
    // are integer sums, so this is belt-and-braces).
    for (std::size_t c = 0; c < n_chunks; ++c) stats += chunk_stats_[c];

    // ---- Phase B: functional phase + atomic accounting ------------------
    // Always serial, in warp/lane order. Only the live blocks Phase A
    // compacted are visited (per-chunk lists concatenate to ascending
    // block order), and the recorded metadata means nothing is
    // re-derived — the replay cost is proportional to active work.
    for (std::size_t c = 0; c < n_chunks; ++c) {
      for (const std::size_t b : chunk_live_[c]) {
        functional_block(items, b, block_meta_[b], fn, stats);
      }
    }
  }

  /// Charges a uniform auxiliary kernel (confluence merges, frontier
  /// filters): n items, each touching `tx_per_item` global words.
  void charge_uniform_kernel(std::uint64_t n_items, double tx_per_item,
                             KernelStats& stats) const;

  /// Testing only: forces the two-phase path with min(n, blocks) chunks
  /// regardless of thread count or machine shape, so fused-vs-sharded
  /// equivalence can be pinned on any box. 0 restores the automatic
  /// policy (shard by actual hardware concurrency).
  void set_sweep_chunks_for_test(std::size_t n) { chunks_override_ = n; }

 private:
  /// Per-block metadata recorded during gate evaluation and reused by
  /// both accounting and the functional replay.
  struct BlockMeta {
    std::uint64_t bits;  // gate bitmask: lane l is gated-in iff bit l
    NodeId max_len;      // longest gated-in item (warp step count)
    std::uint32_t lanes; // items in this block (partial tail warp < ws)
  };

  /// Below this many warp blocks the fork/join cost outweighs the
  /// accounting work and the sweep stays on one chunk (which also takes
  /// the fused path).
  static constexpr std::size_t kMinBlocksToShard = 64;
  /// A chunk must carry at least this many blocks: finer sharding spends
  /// more on scheduling than the per-block accounting it distributes.
  static constexpr std::size_t kMinBlocksPerChunk = 16;
  /// Chunks per worker when blocks allow it — enough slack for dynamic
  /// load balancing over skewed degree distributions without shredding
  /// the iteration space.
  static constexpr std::size_t kChunksPerWorker = 4;

  /// Chunking policy for one sweep: sized by the actual block count and
  /// by the hardware concurrency actually available (oversubscribed
  /// pools never help; see util/parallel.hpp effective_workers).
  [[nodiscard]] std::size_t sweep_chunk_count(std::size_t n_blocks) const;

  /// Memory accounting for one warp block (gate bits already recorded in
  /// `meta`). Topology-only: never calls the gate or the functor.
  void account_block(std::span<const WorkItem> items, const SweepOptions& opts,
                     std::size_t b, const BlockMeta& meta, SweepScratch& sc,
                     KernelStats& st) const;

  /// Functional replay of one warp block in lane order: invokes fn and
  /// charges atomic commits/conflicts. Lanes of the same step committing
  /// to the same destination serialize.
  template <typename EdgeFn>
  void functional_block(std::span<const WorkItem> items, std::size_t b,
                        const BlockMeta& meta, EdgeFn&& fn,
                        KernelStats& stats) {
    const std::uint32_t ws = config_.warp_size;
    const auto targets = graph_->targets();
    const auto weights = graph_->weights();
    const bool has_weights = !weights.empty();
    const std::size_t base = b * ws;
    const std::uint64_t bits = meta.bits;
    const std::uint32_t lanes = meta.lanes;
    for (NodeId j = 0; j < meta.max_len; ++j) {
      std::uint32_t commits = 0;
      for (std::uint32_t l = 0; l < lanes; ++l) {
        const WorkItem& item = items[base + l];
        if (!((bits >> l) & 1) || j >= item.edge_count) {
          lane_active_[l] = 0;
          continue;
        }
        lane_active_[l] = 1;
        const EdgeId e = item.edge_begin + j;
        const NodeId v = targets[e];
        lane_dst_[l] = v;
        const Weight w = has_weights ? weights[e] : Weight{1};
        if (fn(item.src, v, w)) {
          ++commits;
          for (std::uint32_t p = 0; p < l; ++p) {
            if (lane_active_[p] && lane_dst_[p] == v) {
              stats.atomic_conflicts += 1;
              break;
            }
          }
        }
      }
      stats.atomic_commits += commits;
    }
  }

  const Csr* graph_;
  SimConfig config_;
  std::vector<NodeId> lane_dst_;
  std::vector<std::uint8_t> lane_active_;
  std::vector<BlockMeta> block_meta_;  // per warp block, one sweep's worth
  std::vector<std::vector<std::size_t>> chunk_live_;  // live block ids
  std::vector<KernelStats> chunk_stats_;
  std::vector<SweepScratch> scratch_;
  std::size_t chunks_override_ = 0;  // testing only; 0 = automatic
};

/// Builds one WorkItem per listed slot covering its whole adjacency.
[[nodiscard]] std::vector<WorkItem> items_per_vertex(
    const Csr& graph, std::span<const NodeId> slots);

/// Builds items for all non-hole slots in slot order.
[[nodiscard]] std::vector<WorkItem> items_all_vertices(const Csr& graph);

}  // namespace graffix::sim
