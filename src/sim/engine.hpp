// Lockstep SIMT engine.
//
// Executes vertex-centric push sweeps over a Csr the way a GPU warp
// would: items are packed into warps of warp_size lanes; the warp steps
// through neighbor position j = 0..max_item_len-1 in lockstep; at each
// step the engine records which lanes are active (divergence), groups the
// lanes' edge-array and node-attribute byte addresses into
// transaction_bytes segments (coalescing), and invokes the caller's edge
// functor, which performs the *functional* update and reports whether it
// committed (atomic traffic).
//
// A sweep runs in two phases (DESIGN.md §7):
//
//   Phase A (accounting) — gate evaluation plus all memory accounting
//   (divergence, edge/attr transactions, shared hits, bank conflicts).
//   Lane destinations are topology-only, so warp blocks are independent
//   here and the phase shards contiguous block ranges across threads;
//   each chunk accumulates into its own KernelStats, reduced in chunk
//   (= warp block) order. All counters are integer sums, so the totals
//   are bit-identical at any thread count. Phase A also records each
//   block's metadata (gate bitmask, lane count, longest gated-in item)
//   and a compacted per-chunk list of live block ids.
//
//   Phase B (functional) — replays live blocks and invokes the caller's
//   functor. For an *uncertified* functor (SweepOptions::functor.merge ==
//   MergeKind::None, the default) the replay is serial in warp/lane
//   order: functors may read state written by earlier commits of the
//   same sweep (Bellman-Ford-style propagation), so
//   atomic_commits/atomic_conflicts and all functional state match the
//   fully serial engine exactly. For a functor *certified* as a
//   commutative-monoid merge (see FunctorTraits) the replay runs
//   block-parallel: candidate updates are grouped by merge target and
//   each target's candidates are absorbed in serial warp/lane order, so
//   functional state AND stats stay byte-identical to the serial oracle
//   — see "Commutative replay contract" in DESIGN.md §7.
//
// When the chunking policy yields a single chunk (small sweeps, nested
// parallelism, a one-worker machine), the sweep takes a *fused* path
// instead: a cheap O(items) gate prepass records the same per-block
// metadata, then one walk over the live blocks runs accounting and the
// functional replay back-to-back per block while the block's items and
// edges are cache-hot. The prepass keeps gate-evaluation timing
// identical to the two-phase path (every gate fires before any fn()),
// so the fused path produces byte-identical KernelStats and functional
// state for ANY pure gate — even one that is not sweep-stable — which
// is what lets one-thread and sharded runs agree bit-for-bit.
//
// Contract for gates: a gate must be *sweep-stable* — its value for any
// source may not depend on commits made by this sweep's functor, because
// Phase A evaluates every gate before Phase B runs any fn(). All in-repo
// gates qualify (SSSP gates on a snapshot, BC's level==depth can never be
// produced by a same-sweep write of depth+1, SCC flags are not written
// mid-propagation); the determinism tests pin this. Gates and functors
// must tolerate concurrent *gate* invocation from worker threads.
//
// Identical inputs give identical stats and results at every thread
// count, including 1. A single Engine instance is not thread-safe; use
// one engine per thread of control (forked drivers each own one). A
// sweep that re-enters the same engine (e.g. a functor driving another
// sweep) dies loudly on the in-sweep guard instead of silently
// corrupting the shared per-sweep scratch.
//
// This is the substitution substrate for the paper's K40c — see DESIGN.md.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "sim/config.hpp"
#include "sim/stats.hpp"
#include "sim/work.hpp"
#include "util/arena.hpp"
#include "util/macros.hpp"
#include "util/parallel.hpp"

namespace graffix::sim {

/// How a functor folds one candidate edge update into its target's state.
enum class MergeKind : std::uint8_t {
  /// Order-sensitive (Gauss-Seidel chains, shared side effects, or
  /// simply unaudited): Phase B replays serially. The safe default.
  None,
  /// Tropical min-plus absorb: state' = min(state, candidate). SSSP
  /// relaxations and BFS level claims.
  Min,
  /// Plus-monoid accumulation: state' = state + candidate. PageRank rank
  /// scatter/gather, BC sigma propagation.
  Sum,
  /// Any other per-target fold absorbed in warp/lane order (BC
  /// dependency accumulation). The engine never interprets the merge —
  /// the kind only documents the algebra being attested.
  Absorb,
};

/// Which endpoint's state the functor merges into.
enum class MergeTarget : std::uint8_t {
  Dst,  ///< push functors: fn(u, v, w) writes state indexed by v
  Src,  ///< pull functors (transpose sweeps): fn writes state indexed by u
};

/// Caller's certification that an edge functor is a commutative-monoid
/// merge, which lets Phase B replay warp blocks in parallel.
///
/// Setting merge != None attests, for every fn(u, v, w) call of the
/// sweep, with t = (target == Dst ? v : u):
///
///   1. fn reads only sweep-stable state (not written by any functor
///      call of this sweep) plus state indexed by t;
///   2. fn writes only state indexed by t, and has no other side
///      effects — no shared accumulators, no appends to shared lists;
///   3. distinct targets' updates commute (they touch disjoint state),
///      so only the relative order of same-target calls can matter.
///
/// Under that contract the engine guarantees same-target calls are
/// absorbed in exactly the serial warp/lane replay order. Integer and
/// exact merges (Min/Max selection) are trivially order-safe; rounded FP
/// accumulation (Sum of floats) is ALSO bit-identical to the serial
/// engine because each target's additions happen in the serial order —
/// no FP reassociation can leak in. The engine cannot check any of
/// this; the replay-equivalence differential tests pin the in-repo
/// certified functors against the serial oracle instead.
struct FunctorTraits {
  MergeKind merge = MergeKind::None;
  MergeTarget target = MergeTarget::Dst;

  [[nodiscard]] bool certified() const { return merge != MergeKind::None; }
};

/// Deterministic side-channel reductions (DESIGN.md §7).
///
/// The FunctorTraits contract forbids side effects outside the merge
/// target's state, which locks out functors that also maintain *sweep
/// aggregates*: SSSP relax sums FP improvement magnitudes for stall
/// detection and appends changed vertices; BC forward appends the next
/// frontier. A SideChannel is the sanctioned escape hatch: the functor
/// routes those effects through add()/raise()/append(), and the channel
/// guarantees the observable results — rounded FP sums, flag values, and
/// append order — are byte-identical to the serial oracle at any thread
/// count or chunking.
///
/// Two modes:
///   - Direct (default): every op applies immediately in call order.
///     Serial replays (fused path, uncertified functors, cluster inner
///     rounds) use this — call order IS serial lex order there.
///   - Grouped capture: during the grouped replay the engine brackets
///     each absorb call with begin_call(r), so ops land in per-RECORD
///     scratch. Per-record, not per-chunk: merging per-chunk FP partials
///     would reassociate the sums and break bit-identity. After the
///     absorb, merge_grouped() folds the records in one serial walk in
///     ascending record index — which is exactly the serial (block,
///     step, lane) call order — so sums round identically, flags agree,
///     and appends concatenate in serial discovery order. The walk is
///     serial O(records) but touches ~5 bytes per record; the parallel
///     absorb it follows does far more work per record.
///
/// Functor-side contract: at most one append() per functor call (an
/// edge functor discovers at most its own target), and sum/flag indices
/// must be < the counts fixed at construction. Wire a channel into a
/// sweep via SweepOptions::side; the same channel may serve several
/// sequential sweeps (boundary + cluster parts of one launch) — each
/// merges before the next begins, preserving the serial interleaving.
class SideChannel {
 public:
  /// Per-channel FP accumulator capacity; flags share the tag byte with
  /// the sums, so both are capped at 4.
  static constexpr std::size_t kMaxSums = 4;
  static constexpr std::size_t kMaxFlags = 4;

  explicit SideChannel(std::size_t n_sums = 0) : n_sums_(n_sums) {
    GRAFFIX_CHECK(n_sums <= kMaxSums, "SideChannel: %zu sums > cap %zu",
                  n_sums, kMaxSums);
    reset();
  }

  /// Destination list for append(); may be rebound between sweeps (BC
  /// rebinds per wave). Null means append() must not be called.
  void bind_appends(std::vector<NodeId>* out) { out_ = out; }

  /// Zeroes sums and flags for the next iteration. Does NOT clear the
  /// bound append list — the caller owns its lifecycle.
  void reset() {
    for (double& s : sums_) s = 0.0;
    flags_ = 0;
  }

  /// Accumulates v into sum k, in serial call order either immediately
  /// (direct mode) or via the per-record merge (grouped capture).
  void add(std::size_t k, double v) {
    if (grouped_) {
      rec_sum_[tl_rec_ * n_sums_ + k] += v;
      rec_tag_[tl_rec_] |= static_cast<std::uint8_t>(1u << k);
    } else {
      sums_[k] += v;
    }
  }

  /// Raises boolean flag k (OR-fold; order-free by construction).
  void raise(std::size_t k) {
    if (grouped_) {
      rec_tag_[tl_rec_] |= static_cast<std::uint8_t>(0x10u << k);
    } else {
      flags_ |= static_cast<std::uint8_t>(1u << k);
    }
  }

  /// Appends v to the bound list, in serial discovery order.
  void append(NodeId v) {
    if (grouped_) {
      GRAFFIX_CHECK(rec_append_[tl_rec_] == kInvalidNode,
                    "SideChannel: a functor call may append at most once");
      rec_append_[tl_rec_] = v;
    } else {
      out_->push_back(v);
    }
  }

  [[nodiscard]] double sum(std::size_t k) const { return sums_[k]; }
  [[nodiscard]] bool flag(std::size_t k) const {
    return ((flags_ >> k) & 1) != 0;
  }

  // Engine-facing hooks (grouped replay only; see Engine::replay_grouped).
  void begin_grouped(std::size_t n_records);
  void begin_call(std::size_t r) { tl_rec_ = r; }
  void merge_grouped();

 private:
  std::size_t n_sums_;
  double sums_[kMaxSums] = {};
  std::uint8_t flags_ = 0;
  bool grouped_ = false;
  std::vector<NodeId>* out_ = nullptr;
  std::size_t n_records_ = 0;
  // Per-record capture scratch, arena-pooled like the engine's replay
  // tables. rec_tag_ bits 0-3 mark touched sums, bits 4-7 raised flags;
  // untouched records are skipped in the merge so spurious +0.0 folds
  // (and their -0.0 edge cases) can never perturb the totals.
  ArenaVector<double> rec_sum_;
  ArenaVector<std::uint8_t> rec_tag_;
  ArenaVector<NodeId> rec_append_;
  // The absorb's current record index. thread_local (absorb workers set
  // it independently) and shared across channels — safe because engines
  // are non-reentrant and every absorb call is bracketed by begin_call.
  static thread_local std::size_t tl_rec_;
};

/// Testing only, process-wide analogues of Engine's per-instance knobs
/// for drivers that own their engines privately (run_sssp / run_bc):
/// forces every engine's chunk policy to min(n, blocks) when n > 0, and
/// counts grouped replays across all engines. Atomics — forked BC
/// drivers consult them from pool workers. Prefer the
/// ScopedGlobalSweepChunks RAII guard below.
void set_global_sweep_chunks_for_test(std::size_t n);
[[nodiscard]] std::size_t global_sweep_chunks_for_test();
[[nodiscard]] std::uint64_t global_grouped_replays_for_test();

namespace detail {
/// Bumps the process-wide grouped-replay counter (engine-internal).
void note_grouped_replay();
}  // namespace detail

/// Per-sweep options.
struct SweepOptions {
  EdgeLoadMode edge_mode = EdgeLoadMode::Csr;
  AttrSpace attr_space = AttrSpace::Global;
  /// Edge/weight arrays already staged into shared memory (cluster inner
  /// iterations after the first): edge traffic becomes shared accesses.
  bool edges_resident = false;
  /// Cluster residency: resident[slot] == cluster id, kInvalidNode if not
  /// resident. When src and dst share a cluster the attribute access is
  /// served from shared memory (the latency technique's effect, §3).
  std::span<const NodeId> resident = {};
  /// Count a weights-array stream alongside the edges array.
  bool weighted = false;
  /// Whether this sweep is its own kernel launch. Cluster inner
  /// iterations run inside one launch and set this to false.
  bool charge_launch = true;
  /// Commutativity certification for this sweep's functor; defaults to
  /// uncertified (serial replay).
  FunctorTraits functor = {};
  /// Optional side-channel the functor routes its sweep aggregates
  /// through. Only the grouped replay interacts with it (per-record
  /// capture + in-order merge); serial paths leave it in direct mode,
  /// where ops apply in call order anyway.
  SideChannel* side = nullptr;
};

/// Per-chunk accounting scratch. Bank words and the distinct-segment set
/// are epoch-stamped: bumping `epoch` invalidates every entry in O(1)
/// instead of refilling shared_banks words each warp step. The segment
/// set is a small open-addressed hash table (capacity >= 4*warp_size, a
/// power of two, so it can never fill from <= warp_size inserts per
/// step), replacing the previous O(warp_size) linear scan per insert.
/// The replay lane tables (lane_dst/lane_active) live here too — they
/// are written during Phase B and the atomic-accounting replay, so they
/// must be per-worker, never engine members (two blocks replaying
/// concurrently would otherwise corrupt each other's conflict scans).
struct SweepScratch {
  // Arena-pooled (ArenaVector): each sweep chunk tears these down with
  // its Engine; pooling hands the blocks to the next Engine instead of
  // round-tripping through the kernel allocator (DESIGN.md §9).
  ArenaVector<std::uint64_t> lane_edge_seg;
  ArenaVector<NodeId> lane_res;  // per-lane source residency cluster
  ArenaVector<NodeId> lane_dst;  // per-lane destination this warp step
  ArenaVector<std::uint8_t> lane_active;
  ArenaVector<NodeId> bank_word;
  ArenaVector<std::uint64_t> bank_epoch;
  ArenaVector<std::uint64_t> seg_key;
  ArenaVector<std::uint64_t> seg_epoch;
  std::uint64_t epoch = 0;
  std::uint32_t seg_mask = 0;

  void ensure(std::uint32_t warp_size, std::uint32_t banks) {
    if (lane_edge_seg.size() != warp_size) {
      lane_edge_seg.assign(warp_size, ~std::uint64_t{0});
      lane_res.assign(warp_size, kInvalidNode);
      lane_dst.assign(warp_size, kInvalidNode);
      lane_active.assign(warp_size, 0);
    }
    bool rewound = false;
    if (bank_word.size() != banks) {
      bank_word.assign(banks, kInvalidNode);
      bank_epoch.assign(banks, 0);
      rewound = true;
    }
    std::uint32_t cap = 4;
    while (cap < 4 * warp_size) cap *= 2;
    if (seg_key.size() != cap) {
      seg_key.assign(cap, 0);
      seg_epoch.assign(cap, 0);
      seg_mask = cap - 1;
      rewound = true;
    }
    if (rewound) {
      // Rewinding the epoch invalidates the stamps of BOTH tables, not
      // just the one that was resized: a stale stamp left at e.g. 1
      // would read as valid the moment the rewound epoch reaches 1
      // again (false "already present" segments undercount attr
      // transactions; false bank hits overcount conflicts).
      epoch = 0;
      std::fill(bank_epoch.begin(), bank_epoch.end(), 0);
      std::fill(seg_epoch.begin(), seg_epoch.end(), 0);
    }
  }

  /// Returns 1 if `seg` is new this epoch, 0 if already present. Stamps
  /// start at 0 and `epoch` is pre-incremented per step, so zero-filled
  /// tables are never falsely valid.
  std::uint32_t insert_attr_seg(std::uint64_t seg) {
    std::uint64_t h = seg * 0x9e3779b97f4a7c15ull;
    h ^= h >> 29;
    std::uint32_t slot = static_cast<std::uint32_t>(h) & seg_mask;
    while (true) {
      if (seg_epoch[slot] != epoch) {
        seg_epoch[slot] = epoch;
        seg_key[slot] = seg;
        return 1;
      }
      if (seg_key[slot] == seg) return 0;
      slot = (slot + 1) & seg_mask;
    }
  }
};

class Engine {
 public:
  Engine(const Csr& graph, SimConfig config)
      : graph_(&graph), config_(config) {
    GRAFFIX_CHECK(config_.warp_size > 0 && config_.warp_size <= 64,
                  "warp size %u", config_.warp_size);
  }

  [[nodiscard]] const SimConfig& config() const { return config_; }
  [[nodiscard]] const Csr& graph() const { return *graph_; }

  /// Runs one lockstep sweep over `items`. For every edge (u -> v, w)
  /// covered by an item, calls fn(u, v, w) -> bool; true means the lane
  /// committed an atomic update to v's attribute.
  ///
  /// Functional state lives entirely in the caller; the engine only
  /// observes addresses and commit flags.
  template <typename EdgeFn>
  void sweep(std::span<const WorkItem> items, const SweepOptions& opts,
             EdgeFn&& fn, KernelStats& stats) {
    sweep_gated(items, opts, [](NodeId) { return true; },
                std::forward<EdgeFn>(fn), stats);
  }

  /// sweep() with per-source gating: lanes whose gate(src) is false idle
  /// for the whole item (they still occupy lane slots — that idling IS
  /// thread divergence — but issue no memory traffic), exactly like a
  /// kernel thread that loads its vertex's state, finds nothing to do,
  /// and falls through. The gate's own coalesced state load is charged
  /// by the caller as a uniform kernel. Gates must be sweep-stable; see
  /// the file comment.
  template <typename Gate, typename EdgeFn>
  void sweep_gated(std::span<const WorkItem> items, const SweepOptions& opts,
                   Gate&& gate, EdgeFn&& fn, KernelStats& stats) {
    if (opts.charge_launch) stats.sweeps += 1;
    if (items.empty()) return;
    // The engine's per-sweep scratch (block_meta_, chunk lists, replay
    // buffers) is shared mutable state: a nested sweep on the same
    // engine — a functor or gate driving another sweep, or two drivers
    // sharing one engine across threads — would corrupt it silently.
    // Die loudly instead (GRAFFIX_CHECK is always on; the flag costs
    // one byte and two writes per sweep).
    GRAFFIX_CHECK(!in_sweep_,
                  "Engine::sweep_gated re-entered mid-sweep: an Engine is "
                  "not reentrant — use one engine per thread of control");
    in_sweep_ = true;
    struct SweepGuard {
      bool* flag;
      ~SweepGuard() { *flag = false; }
    } sweep_guard{&in_sweep_};
    const std::uint32_t ws = config_.warp_size;
    const std::size_t n_blocks = (items.size() + ws - 1) / ws;
    const std::size_t n_chunks = sweep_chunk_count(n_blocks);
    block_meta_.resize(n_blocks);

    // Evaluates the gate for every lane of block b, records {bits,
    // lanes, max_len, recs}, and reports whether the block has any work.
    // The warp runs until its longest gated-in item is exhausted (thread
    // divergence: shorter and gated-out lanes idle).
    auto eval_gate = [&](std::size_t b) {
      const std::size_t base = b * ws;
      const auto lanes = static_cast<std::uint32_t>(
          std::min<std::size_t>(ws, items.size() - base));
      std::uint64_t bits = 0;
      NodeId max_len = 0;
      std::uint64_t recs = 0;
      for (std::uint32_t l = 0; l < lanes; ++l) {
        const WorkItem& item = items[base + l];
        if (!gate(item.src)) continue;
        bits |= std::uint64_t{1} << l;
        max_len = std::max(max_len, item.edge_count);
        recs += item.edge_count;
      }
      block_meta_[b] = {bits, recs, max_len, lanes};
      return max_len > 0;
    };

    // graffix-lint: allow(R6) vector-of-vectors (inner lists keep their capacity across sweeps); the arena only serves flat trivially-copyable scratch
    if (chunk_live_.size() < n_chunks) chunk_live_.resize(n_chunks);

    // ---- Fused serial path ----------------------------------------------
    // One chunk means no parallelism to exploit, so skip the phase
    // barrier: after the O(items) gate prepass, each live block runs its
    // accounting and functional replay back-to-back while its items and
    // edges are cache-hot — the pre-sharding single-traversal cost. The
    // prepass is what keeps gate timing identical to the two-phase path
    // (every gate fires before any fn()); see the file comment.
    if (n_chunks == 1 && chunks_override_ == 0 &&
        global_sweep_chunks_for_test() == 0) {
      auto& live = chunk_live_[0];
      live.clear();
      for (std::size_t b = 0; b < n_blocks; ++b) {
        if (eval_gate(b)) live.push_back(b);
      }
      // graffix-lint: allow(R6) SweepScratch owns nested buffers (non-trivial); grows once to the worker/chunk count, then steady-state
      if (scratch_.empty()) scratch_.resize(1);
      SweepScratch& sc = scratch_[0];
      sc.ensure(ws, config_.shared_banks);
      for (const std::size_t b : live) {
        account_block(items, opts, b, block_meta_[b], sc, stats);
        functional_block(items, b, block_meta_[b], sc, fn, stats);
      }
      return;
    }

    // ---- Phase A: gate evaluation + memory accounting -------------------
    // graffix-lint: allow(R6) SweepScratch owns nested buffers (non-trivial); grows once to the worker/chunk count, then steady-state
    if (scratch_.size() < n_chunks) scratch_.resize(n_chunks);
    chunk_stats_.assign(n_chunks, KernelStats{});
    const std::size_t blocks_per = n_blocks / n_chunks;
    const std::size_t blocks_rem = n_blocks % n_chunks;
    auto chunk_begin = [&](std::size_t c) {
      return c * blocks_per + std::min(c, blocks_rem);
    };
    auto account = [&](std::size_t c) {
      SweepScratch& sc = scratch_[c];
      sc.ensure(ws, config_.shared_banks);
      KernelStats& st = chunk_stats_[c];
      auto& live = chunk_live_[c];
      live.clear();
      const std::size_t block_end = chunk_begin(c + 1);
      for (std::size_t b = chunk_begin(c); b < block_end; ++b) {
        if (!eval_gate(b)) continue;
        live.push_back(b);
        account_block(items, opts, b, block_meta_[b], sc, st);
      }
    };
    if (n_chunks == 1) {
      account(0);
    } else {
      // Chunks are already coarse (>= kMinBlocksPerChunk blocks each),
      // so one pool task per chunk just load-balances them.
      parallel_tasks(n_chunks, account);
    }
    // Chunks cover ascending block ranges; reducing in chunk order keeps
    // the accumulation order identical to the serial engine (the counters
    // are integer sums, so this is belt-and-braces).
    for (std::size_t c = 0; c < n_chunks; ++c) stats += chunk_stats_[c];

    // ---- Phase B: functional phase + atomic accounting ------------------
    // Certified commutative-monoid functors replay block-parallel via
    // per-target grouping; everything else replays serially in warp/lane
    // order. Either way, only the live blocks Phase A compacted are
    // visited (per-chunk lists concatenate to ascending block order) and
    // the recorded metadata means nothing is re-derived — the replay
    // cost is proportional to active work.
    if (opts.functor.certified()) {
      replay_grouped(items, opts, n_chunks, fn, stats);
    } else {
      SweepScratch& sc = scratch_[0];  // ensured by Phase A chunk 0
      for (std::size_t c = 0; c < n_chunks; ++c) {
        for (const std::size_t b : chunk_live_[c]) {
          functional_block(items, b, block_meta_[b], sc, fn, stats);
        }
      }
    }
  }

  /// True while a sweep is executing on this engine — the state behind
  /// the reentrancy guard above. Callers that cannot afford the abort
  /// (the serve daemon) probe this before dispatching.
  [[nodiscard]] bool in_sweep() const { return in_sweep_; }

  /// sweep_gated() that refuses instead of aborting when the engine is
  /// already mid-sweep: returns false and leaves `stats` and all caller
  /// state untouched. A resident daemon must map a malformed request
  /// that would drive a nested sweep to a typed error response —
  /// GRAFFIX_CHECK would take every connected client down with it.
  template <typename Gate, typename EdgeFn>
  [[nodiscard]] bool try_sweep_gated(std::span<const WorkItem> items,
                                     const SweepOptions& opts, Gate&& gate,
                                     EdgeFn&& fn, KernelStats& stats) {
    if (in_sweep_) return false;
    sweep_gated(items, opts, std::forward<Gate>(gate),
                std::forward<EdgeFn>(fn), stats);
    return true;
  }

  /// Charges a uniform auxiliary kernel (confluence merges, frontier
  /// filters): n items, each touching `tx_per_item` global words.
  void charge_uniform_kernel(std::uint64_t n_items, double tx_per_item,
                             KernelStats& stats) const;

  /// Testing only: forces the two-phase path with min(n, blocks) chunks
  /// regardless of thread count or machine shape, so fused-vs-sharded
  /// equivalence can be pinned on any box. 0 restores the automatic
  /// policy (shard by actual hardware concurrency). Prefer the
  /// ScopedSweepChunks RAII guard below — a raw set leaks the override
  /// when an ASSERT fails before the restore line.
  void set_sweep_chunks_for_test(std::size_t n) { chunks_override_ = n; }

  /// Testing only: how many sweeps took the grouped (parallel-capable)
  /// replay path since construction. Lets tests assert that a certified
  /// functor actually exercised the grouped replay and that an
  /// order-sensitive one fell back to serial.
  [[nodiscard]] std::uint64_t grouped_replays_for_test() const {
    return grouped_replays_;
  }

 private:
  /// Per-block metadata recorded during gate evaluation and reused by
  /// accounting, the functional replay, and the grouped-replay record
  /// layout.
  struct BlockMeta {
    std::uint64_t bits;  // gate bitmask: lane l is gated-in iff bit l
    std::uint64_t recs;  // gated-in lane-steps = replay records emitted
    NodeId max_len;      // longest gated-in item (warp step count)
    std::uint32_t lanes; // items in this block (partial tail warp < ws)
  };

  /// One candidate edge update captured for the grouped replay.
  struct ReplayRec {
    NodeId u;
    NodeId v;
    Weight w;
  };

  /// Below this many warp blocks the fork/join cost outweighs the
  /// accounting work and the sweep stays on one chunk (which also takes
  /// the fused path).
  static constexpr std::size_t kMinBlocksToShard = 64;
  /// A chunk must carry at least this many blocks: finer sharding spends
  /// more on scheduling than the per-block accounting it distributes.
  static constexpr std::size_t kMinBlocksPerChunk = 16;
  /// Chunks per worker when blocks allow it — enough slack for dynamic
  /// load balancing over skewed degree distributions without shredding
  /// the iteration space. The grouped replay re-coarsens to one replay
  /// chunk per kChunksPerWorker accounting chunks (~= one per worker):
  /// its per-chunk histograms cost O(chunks * slots) memory, so slack
  /// that helps Phase A would hurt here.
  static constexpr std::size_t kChunksPerWorker = 4;

  /// Chunking policy for one sweep: sized by the actual block count and
  /// by the hardware concurrency actually available (oversubscribed
  /// pools never help; see util/parallel.hpp effective_workers).
  [[nodiscard]] std::size_t sweep_chunk_count(std::size_t n_blocks) const;

  /// Memory accounting for one warp block (gate bits already recorded in
  /// `meta`). Topology-only: never calls the gate or the functor.
  void account_block(std::span<const WorkItem> items, const SweepOptions& opts,
                     std::size_t b, const BlockMeta& meta, SweepScratch& sc,
                     KernelStats& st) const;

  /// Functional replay of one warp block in lane order: invokes fn and
  /// charges atomic commits/conflicts. Lanes of the same step committing
  /// to the same destination serialize. The lane tables live in the
  /// caller-provided scratch so concurrent replays of distinct blocks
  /// (and nested engines) cannot alias.
  template <typename EdgeFn>
  void functional_block(std::span<const WorkItem> items, std::size_t b,
                        const BlockMeta& meta, SweepScratch& sc, EdgeFn&& fn,
                        KernelStats& stats) {
    const std::uint32_t ws = config_.warp_size;
    const auto targets = graph_->targets();
    const auto weights = graph_->weights();
    const bool has_weights = !weights.empty();
    const std::size_t base = b * ws;
    const std::uint64_t bits = meta.bits;
    const std::uint32_t lanes = meta.lanes;
    for (NodeId j = 0; j < meta.max_len; ++j) {
      std::uint32_t commits = 0;
      for (std::uint32_t l = 0; l < lanes; ++l) {
        const WorkItem& item = items[base + l];
        if (!((bits >> l) & 1) || j >= item.edge_count) {
          sc.lane_active[l] = 0;
          continue;
        }
        sc.lane_active[l] = 1;
        const EdgeId e = item.edge_begin + j;
        const NodeId v = targets[e];
        sc.lane_dst[l] = v;
        const Weight w = has_weights ? weights[e] : Weight{1};
        if (fn(item.src, v, w)) {
          ++commits;
          for (std::uint32_t p = 0; p < l; ++p) {
            if (sc.lane_active[p] && sc.lane_dst[p] == v) {
              stats.atomic_conflicts += 1;
              break;
            }
          }
        }
      }
      stats.atomic_commits += commits;
    }
  }

  /// Grouped (parallel-capable) replay for certified functors.
  ///
  /// Serial replay visits candidate updates in lex order (block b, step
  /// j, lane l). Under the FunctorTraits contract only the relative
  /// order of *same-target* calls is observable, so the replay:
  ///
  ///   1. emits every candidate record block-major (= lex order) and
  ///      histograms records per merge target, per replay chunk;
  ///   2. turns the histograms into per-(chunk, target) write cursors
  ///      with a count–scan–scatter (the graph/rebuild idiom), giving
  ///      each target a contiguous index list whose order is exactly
  ///      the serial lex order — for ANY chunking, because chunks cover
  ///      ascending block ranges and the scatter walks each chunk's
  ///      records in lex order;
  ///   3. absorbs each target's candidates in that order, in parallel
  ///      across targets, recording each call's commit flag. Per-target
  ///      FP accumulation order equals the serial engine's, so even
  ///      rounded float sums are bit-identical;
  ///   4. re-walks the blocks (parallel over replay chunks, per-worker
  ///      lane tables) replaying the stored commit flags through the
  ///      exact serial commit/conflict accounting, and reduces the
  ///      per-chunk stats in ascending block order.
  ///
  /// Every pass writes disjoint slots at positions fixed by the record
  /// layout alone, so stats and functional state are byte-identical to
  /// the serial oracle at ANY thread count or chunking. Tasks run on
  /// the persistent pool; on a one-worker machine they execute inline
  /// on the caller, in ascending order.
  template <typename EdgeFn>
  void replay_grouped(std::span<const WorkItem> items, const SweepOptions& opts,
                      std::size_t n_chunks, EdgeFn&& fn, KernelStats& stats) {
    grouped_replays_ += 1;
    detail::note_grouped_replay();
    const std::uint32_t ws = config_.warp_size;
    const auto targets = graph_->targets();
    const auto weights = graph_->weights();
    const bool has_weights = !weights.empty();
    const bool by_dst = opts.functor.target == MergeTarget::Dst;
    const std::size_t n_slots = graph_->num_slots();
    // Replay chunks: groups of kChunksPerWorker accounting chunks, so
    // the histogram footprint tracks workers, not Phase A's 4x slack.
    const std::size_t n_replay =
        (n_chunks + kChunksPerWorker - 1) / kChunksPerWorker;
    auto phase_hi = [&](std::size_t rc) {
      return std::min((rc + 1) * kChunksPerWorker, n_chunks);
    };

    // Pass 1 (serial, tiny): record bases. Blocks are laid out in lex
    // order: per-chunk live lists concatenate ascending.
    chunk_rec_begin_.assign(n_chunks + 1, 0);
    if (blk_rec_base_.size() < block_meta_.size()) {
      blk_rec_base_.resize(block_meta_.size());
    }
    std::size_t total = 0;
    for (std::size_t c = 0; c < n_chunks; ++c) {
      chunk_rec_begin_[c] = total;
      for (const std::size_t b : chunk_live_[c]) {
        blk_rec_base_[b] = total;
        total += static_cast<std::size_t>(block_meta_[b].recs);
      }
    }
    chunk_rec_begin_[n_chunks] = total;
    if (total == 0) return;
    GRAFFIX_CHECK(total <= 0xffffffffull,
                  "grouped replay: %zu records overflow the u32 order index",
                  total);
    rec_.resize(total);
    rec_commit_.resize(total);
    rec_order_.resize(total);
    cnt_.resize(n_replay * n_slots);
    if (tgt_off_.size() < n_slots + 1) tgt_off_.resize(n_slots + 1);
    // Arm the side channel's per-record capture: record index == serial
    // call order, so its post-absorb merge reproduces the serial fold.
    SideChannel* const side = opts.side;
    if (side != nullptr) side->begin_grouped(total);

    // Pass 2: emit records block-major and histogram per (chunk, target).
    parallel_tasks(n_replay, [&](std::size_t rc) {
      std::uint64_t* cnt = cnt_.data() + rc * n_slots;
      std::fill_n(cnt, n_slots, std::uint64_t{0});
      const std::size_t p_hi = phase_hi(rc);
      for (std::size_t pc = rc * kChunksPerWorker; pc < p_hi; ++pc) {
        for (const std::size_t b : chunk_live_[pc]) {
          const BlockMeta& meta = block_meta_[b];
          const std::size_t base = b * ws;
          std::size_t r = blk_rec_base_[b];
          for (NodeId j = 0; j < meta.max_len; ++j) {
            for (std::uint32_t l = 0; l < meta.lanes; ++l) {
              const WorkItem& item = items[base + l];
              if (!((meta.bits >> l) & 1) || j >= item.edge_count) continue;
              const EdgeId e = item.edge_begin + j;
              const NodeId v = targets[e];
              // graffix-lint: allow(R5) r walks [blk_rec_base_[b], +meta.recs), and blocks are partitioned across replay chunks — record ranges are disjoint by construction
              rec_[r] = {item.src, v, has_weights ? weights[e] : Weight{1}};
              cnt[by_dst ? v : item.src] += 1;
              ++r;
            }
          }
        }
      }
    });

    // Pass 3: per-target offsets + per-(chunk, target) write cursors.
    // Two sweeps over even slot ranges with a tiny serial scan between
    // them; every cursor ends up absolute, ordered (ascending chunk,
    // within-chunk lex) = global lex order per target.
    range_total_.assign(n_replay + 1, 0);
    const std::size_t slots_per = n_slots / n_replay;
    const std::size_t slots_rem = n_slots % n_replay;
    auto slot_begin = [&](std::size_t t) {
      return t * slots_per + std::min(t, slots_rem);
    };
    parallel_tasks(n_replay, [&](std::size_t t) {
      std::uint64_t sum = 0;
      const std::size_t s_hi = slot_begin(t + 1);
      for (std::size_t s = slot_begin(t); s < s_hi; ++s) {
        for (std::size_t rc = 0; rc < n_replay; ++rc) {
          sum += cnt_[rc * n_slots + s];
        }
      }
      range_total_[t] = sum;
    });
    std::uint64_t running = 0;
    for (std::size_t t = 0; t < n_replay; ++t) {
      const std::uint64_t tmp = range_total_[t];
      range_total_[t] = running;
      running += tmp;
    }
    parallel_tasks(n_replay, [&](std::size_t t) {
      std::uint64_t cur = range_total_[t];
      const std::size_t s_hi = slot_begin(t + 1);
      for (std::size_t s = slot_begin(t); s < s_hi; ++s) {
        tgt_off_[s] = cur;
        for (std::size_t rc = 0; rc < n_replay; ++rc) {
          std::uint64_t& c = cnt_[rc * n_slots + s];
          const std::uint64_t n = c;
          c = cur;
          cur += n;
        }
      }
    });
    tgt_off_[n_slots] = total;

    // Pass 4: scatter record ids to their target's list.
    parallel_tasks(n_replay, [&](std::size_t rc) {
      std::uint64_t* cur = cnt_.data() + rc * n_slots;
      const std::size_t lo = chunk_rec_begin_[rc * kChunksPerWorker];
      const std::size_t hi = chunk_rec_begin_[phase_hi(rc)];
      for (std::size_t r = lo; r < hi; ++r) {
        const NodeId key = by_dst ? rec_[r].v : rec_[r].u;
        rec_order_[cur[key]++] = static_cast<std::uint32_t>(r);
      }
    });

    // Pass 5: absorb each target's candidates in serial lex order,
    // parallel across record-balanced target ranges.
    absorb_split_.assign(n_replay + 1, 0);
    absorb_split_[n_replay] = n_slots;
    for (std::size_t p = 1; p < n_replay; ++p) {
      const std::uint64_t pos = static_cast<std::uint64_t>(total) * p / n_replay;
      const auto it = std::lower_bound(tgt_off_.begin(),
                                       tgt_off_.begin() + n_slots + 1, pos);
      absorb_split_[p] = static_cast<std::size_t>(it - tgt_off_.begin());
      if (absorb_split_[p] > n_slots) absorb_split_[p] = n_slots;
    }
    parallel_tasks(n_replay, [&](std::size_t p) {
      const std::size_t s_hi = absorb_split_[p + 1];
      for (std::size_t s = absorb_split_[p]; s < s_hi; ++s) {
        const std::uint64_t i_hi = tgt_off_[s + 1];
        for (std::uint64_t i = tgt_off_[s]; i < i_hi; ++i) {
          const std::uint32_t r = rec_order_[i];
          const ReplayRec& rec = rec_[r];
          if (side != nullptr) side->begin_call(r);
          rec_commit_[r] = fn(rec.u, rec.v, rec.w) ? 1 : 0;
        }
      }
    });
    // Fold the captured side effects in ascending record order — the
    // serial (block, step, lane) call order — before anything reads the
    // channel. Pass 6 only replays commit flags; it never calls fn.
    if (side != nullptr) side->merge_grouped();

    // Pass 6: replay the stored commit flags through the serial
    // commit/conflict accounting, per replay chunk, reduced ascending.
    replay_stats_.assign(n_replay, KernelStats{});
    parallel_tasks(n_replay, [&](std::size_t rc) {
      KernelStats& st = replay_stats_[rc];
      SweepScratch& sc = scratch_[rc];  // ensured by Phase A (rc < n_chunks)
      const std::size_t p_hi = phase_hi(rc);
      for (std::size_t pc = rc * kChunksPerWorker; pc < p_hi; ++pc) {
        for (const std::size_t b : chunk_live_[pc]) {
          const BlockMeta& meta = block_meta_[b];
          const std::size_t base = b * ws;
          std::size_t r = blk_rec_base_[b];
          for (NodeId j = 0; j < meta.max_len; ++j) {
            std::uint32_t commits = 0;
            for (std::uint32_t l = 0; l < meta.lanes; ++l) {
              const WorkItem& item = items[base + l];
              if (!((meta.bits >> l) & 1) || j >= item.edge_count) {
                sc.lane_active[l] = 0;
                continue;
              }
              sc.lane_active[l] = 1;
              const NodeId v = rec_[r].v;
              sc.lane_dst[l] = v;
              if (rec_commit_[r]) {
                ++commits;
                for (std::uint32_t p = 0; p < l; ++p) {
                  if (sc.lane_active[p] && sc.lane_dst[p] == v) {
                    st.atomic_conflicts += 1;
                    break;
                  }
                }
              }
              ++r;
            }
            st.atomic_commits += commits;
          }
        }
      }
    });
    for (std::size_t rc = 0; rc < n_replay; ++rc) stats += replay_stats_[rc];
  }

  const Csr* graph_;
  SimConfig config_;
  ArenaVector<BlockMeta> block_meta_;  // per warp block, one sweep's worth
  std::vector<std::vector<std::size_t>> chunk_live_;  // live block ids
  ArenaVector<KernelStats> chunk_stats_;
  std::vector<SweepScratch> scratch_;
  // Grouped-replay scratch; persistent across sweeps to amortize
  // allocation (resize keeps capacity in steady state) and arena-pooled
  // so successive Engine instances inherit each other's blocks.
  ArenaVector<ReplayRec> rec_;            // candidates, block-major = lex
  ArenaVector<std::uint8_t> rec_commit_;  // fn's verdict per record
  ArenaVector<std::uint32_t> rec_order_;  // record ids grouped by target
  ArenaVector<std::uint64_t> cnt_;        // per-(chunk, target) cursors
  ArenaVector<std::uint64_t> tgt_off_;    // per-target group begin
  ArenaVector<std::uint64_t> range_total_;
  ArenaVector<std::size_t> absorb_split_;
  ArenaVector<std::size_t> blk_rec_base_;
  ArenaVector<std::size_t> chunk_rec_begin_;
  ArenaVector<KernelStats> replay_stats_;
  std::uint64_t grouped_replays_ = 0;
  std::size_t chunks_override_ = 0;  // testing only; 0 = automatic
  bool in_sweep_ = false;            // reentrancy guard
};

/// RAII form of Engine::set_sweep_chunks_for_test: restores the
/// automatic chunking policy on scope exit, so a throwing test body or a
/// failed ASSERT cannot leak a forced chunk count into later tests.
class ScopedSweepChunks {
 public:
  ScopedSweepChunks(Engine& engine, std::size_t n) : engine_(&engine) {
    engine_->set_sweep_chunks_for_test(n);
  }
  ~ScopedSweepChunks() { engine_->set_sweep_chunks_for_test(0); }
  ScopedSweepChunks(const ScopedSweepChunks&) = delete;
  ScopedSweepChunks& operator=(const ScopedSweepChunks&) = delete;

 private:
  Engine* engine_;
};

/// RAII form of set_global_sweep_chunks_for_test: forces the chunk
/// policy of EVERY engine in the process (driver-owned engines included)
/// and restores the automatic policy on scope exit. Not nestable; the
/// driver-level replay-equivalence tests are its only intended user.
class ScopedGlobalSweepChunks {
 public:
  explicit ScopedGlobalSweepChunks(std::size_t n) {
    set_global_sweep_chunks_for_test(n);
  }
  ~ScopedGlobalSweepChunks() { set_global_sweep_chunks_for_test(0); }
  ScopedGlobalSweepChunks(const ScopedGlobalSweepChunks&) = delete;
  ScopedGlobalSweepChunks& operator=(const ScopedGlobalSweepChunks&) = delete;
};

/// Builds one WorkItem per listed slot covering its whole adjacency.
[[nodiscard]] std::vector<WorkItem> items_per_vertex(
    const Csr& graph, std::span<const NodeId> slots);

/// Builds items for all non-hole slots in slot order.
[[nodiscard]] std::vector<WorkItem> items_all_vertices(const Csr& graph);

}  // namespace graffix::sim
