// Lockstep SIMT engine.
//
// Executes vertex-centric push sweeps over a Csr the way a GPU warp
// would: items are packed into warps of warp_size lanes; the warp steps
// through neighbor position j = 0..max_item_len-1 in lockstep; at each
// step the engine records which lanes are active (divergence), groups the
// lanes' edge-array and node-attribute byte addresses into
// transaction_bytes segments (coalescing), and invokes the caller's edge
// functor, which performs the *functional* update and reports whether it
// committed (atomic traffic). The engine is single-threaded and fully
// deterministic: identical inputs give identical stats and results.
//
// This is the substitution substrate for the paper's K40c — see DESIGN.md.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "sim/config.hpp"
#include "sim/stats.hpp"
#include "sim/work.hpp"
#include "util/macros.hpp"

namespace graffix::sim {

/// Per-sweep options.
struct SweepOptions {
  EdgeLoadMode edge_mode = EdgeLoadMode::Csr;
  AttrSpace attr_space = AttrSpace::Global;
  /// Edge/weight arrays already staged into shared memory (cluster inner
  /// iterations after the first): edge traffic becomes shared accesses.
  bool edges_resident = false;
  /// Cluster residency: resident[slot] == cluster id, kInvalidNode if not
  /// resident. When src and dst share a cluster the attribute access is
  /// served from shared memory (the latency technique's effect, §3).
  std::span<const NodeId> resident = {};
  /// Count a weights-array stream alongside the edges array.
  bool weighted = false;
  /// Whether this sweep is its own kernel launch. Cluster inner
  /// iterations run inside one launch and set this to false.
  bool charge_launch = true;
};

class Engine {
 public:
  Engine(const Csr& graph, SimConfig config)
      : graph_(&graph), config_(config) {
    GRAFFIX_CHECK(config_.warp_size > 0 && config_.warp_size <= 64,
                  "warp size %u", config_.warp_size);
  }

  [[nodiscard]] const SimConfig& config() const { return config_; }
  [[nodiscard]] const Csr& graph() const { return *graph_; }

  /// Runs one lockstep sweep over `items`. For every edge (u -> v, w)
  /// covered by an item, calls fn(u, v, w) -> bool; true means the lane
  /// committed an atomic update to v's attribute.
  ///
  /// Functional state lives entirely in the caller; the engine only
  /// observes addresses and commit flags.
  template <typename EdgeFn>
  void sweep(std::span<const WorkItem> items, const SweepOptions& opts,
             EdgeFn&& fn, KernelStats& stats) {
    sweep_gated(items, opts, [](NodeId) { return true; },
                std::forward<EdgeFn>(fn), stats);
  }

  /// sweep() with per-source gating: lanes whose gate(src) is false idle
  /// for the whole item (they still occupy lane slots — that idling IS
  /// thread divergence — but issue no memory traffic), exactly like a
  /// kernel thread that loads its vertex's state, finds nothing to do,
  /// and falls through. The gate's own coalesced state load is charged
  /// by the caller as a uniform kernel.
  template <typename Gate, typename EdgeFn>
  void sweep_gated(std::span<const WorkItem> items, const SweepOptions& opts,
                   Gate&& gate, EdgeFn&& fn, KernelStats& stats) {
    if (opts.charge_launch) stats.sweeps += 1;
    const std::uint32_t ws = config_.warp_size;
    const auto offsets = graph_->offsets();
    (void)offsets;
    const auto targets = graph_->targets();
    const auto weights = graph_->weights();
    const std::uint64_t seg_bytes = config_.transaction_bytes;

    // Scratch reused across warps.
    lane_dst_.resize(ws);
    lane_active_.resize(ws);
    seg_scratch_.resize(2 * ws);

    lane_gated_.resize(ws);
    lane_edge_seg_.resize(ws);
    bank_word_.resize(config_.shared_banks);
    for (std::size_t base = 0; base < items.size(); base += ws) {
      std::fill(lane_edge_seg_.begin(), lane_edge_seg_.end(),
                ~std::uint64_t{0});
      const std::uint32_t lanes =
          static_cast<std::uint32_t>(std::min<std::size_t>(ws, items.size() - base));
      // Warp runs until its longest gated-in item is exhausted (thread
      // divergence: shorter and gated-out lanes idle).
      NodeId max_len = 0;
      for (std::uint32_t l = 0; l < lanes; ++l) {
        lane_gated_[l] = gate(items[base + l].src) ? 1 : 0;
        if (lane_gated_[l]) {
          max_len = std::max(max_len, items[base + l].edge_count);
        }
      }
      for (NodeId j = 0; j < max_len; ++j) {
        stats.warp_steps += 1;
        stats.lane_slots += ws;
        std::uint32_t active = 0;
        std::uint32_t edge_segs = 0;
        std::uint32_t attr_segs = 0;
        std::uint32_t shared_hits = 0;
        seg_fill_[0] = seg_fill_[1] = 0;
        std::fill(bank_word_.begin(), bank_word_.end(), kInvalidNode);

        for (std::uint32_t l = 0; l < lanes; ++l) {
          const WorkItem& item = items[base + l];
          if (!lane_gated_[l] || j >= item.edge_count) {
            lane_active_[l] = 0;
            continue;
          }
          lane_active_[l] = 1;
          ++active;
          const EdgeId e = item.edge_begin + j;
          const NodeId v = targets[e];
          lane_dst_[l] = v;
          if (opts.edge_mode == EdgeLoadMode::Csr) {
            // A lane streams its adjacency sequentially: consecutive
            // positions share a 32B sector and hit in cache, so a lane
            // only pays when it crosses into a new sector.
            const std::uint64_t seg = (e * config_.edge_bytes) / seg_bytes;
            if (seg != lane_edge_seg_[l]) {
              lane_edge_seg_[l] = seg;
              ++edge_segs;
            }
          }
          const bool resident_pair =
              !opts.resident.empty() &&
              opts.resident[item.src] != kInvalidNode &&
              opts.resident[item.src] == opts.resident[v];
          if (opts.attr_space == AttrSpace::Shared || resident_pair) {
            ++shared_hits;
            // Bank-conflict bookkeeping: lanes hitting different words in
            // the same bank serialize; same-word hits broadcast for free.
            const std::uint32_t bank = v % config_.shared_banks;
            if (bank_word_[bank] != kInvalidNode && bank_word_[bank] != v) {
              stats.bank_conflicts += 1;
            }
            bank_word_[bank] = v;
          } else {
            attr_segs += insert_segment(
                (static_cast<std::uint64_t>(v) * config_.attr_bytes) / seg_bytes,
                /*stream=*/1);
          }
        }

        if (opts.edge_mode == EdgeLoadMode::IdealWarpPacked && active > 0) {
          edge_segs = 1;
        }
        if (opts.weighted) edge_segs *= 2;  // parallel weights stream
        if (opts.edges_resident) {
          stats.shared_accesses += active;
          edge_segs = 0;
        }

        stats.active_lanes += active;
        stats.edge_transactions += edge_segs;
        stats.attr_transactions += attr_segs;
        stats.shared_accesses += shared_hits;
        // Lower bound: `active` gathers of attr_bytes each, fully packed.
        const std::uint64_t global_attr = active - shared_hits;
        stats.attr_ideal_transactions +=
            (global_attr * config_.attr_bytes + seg_bytes - 1) / seg_bytes;

        // Functional phase + atomic accounting. Conflicts: lanes of the
        // same step committing to the same destination serialize.
        std::uint32_t commits = 0;
        for (std::uint32_t l = 0; l < lanes; ++l) {
          if (!lane_active_[l]) continue;
          const WorkItem& item = items[base + l];
          const EdgeId e = item.edge_begin + j;
          const Weight w = weights.empty() ? Weight{1} : weights[e];
          if (fn(item.src, lane_dst_[l], w)) {
            ++commits;
            for (std::uint32_t p = 0; p < l; ++p) {
              if (lane_active_[p] && lane_dst_[p] == lane_dst_[l]) {
                stats.atomic_conflicts += 1;
                break;
              }
            }
          }
        }
        stats.atomic_commits += commits;
      }
    }
  }

  /// Charges a uniform auxiliary kernel (confluence merges, frontier
  /// filters): n items, each touching `tx_per_item` global words.
  void charge_uniform_kernel(std::uint64_t n_items, double tx_per_item,
                             KernelStats& stats) const;

 private:
  // Distinct-segment insertion using two tiny per-step scratch sets
  // (stream 0 = edges array, 1 = attributes). Returns 1 if new.
  std::uint32_t insert_segment(std::uint64_t seg, std::uint32_t stream) {
    const std::uint32_t lo = stream * config_.warp_size;
    const std::uint32_t hi = lo + seg_fill_[stream];
    for (std::uint32_t i = lo; i < hi; ++i) {
      if (seg_scratch_[i] == seg) return 0;
    }
    seg_scratch_[hi] = seg;
    ++seg_fill_[stream];
    return 1;
  }

  const Csr* graph_;
  SimConfig config_;
  std::vector<NodeId> lane_dst_;
  std::vector<std::uint8_t> lane_active_;
  std::vector<std::uint8_t> lane_gated_;
  std::vector<std::uint64_t> lane_edge_seg_;
  std::vector<NodeId> bank_word_;
  std::vector<std::uint64_t> seg_scratch_;
  std::uint32_t seg_fill_[2] = {0, 0};
};

/// Builds one WorkItem per listed slot covering its whole adjacency.
[[nodiscard]] std::vector<WorkItem> items_per_vertex(
    const Csr& graph, std::span<const NodeId> slots);

/// Builds items for all non-hole slots in slot order.
[[nodiscard]] std::vector<WorkItem> items_all_vertices(const Csr& graph);

}  // namespace graffix::sim
