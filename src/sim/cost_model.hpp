// Converts KernelStats into simulated cycles and seconds.
//
// Model (see DESIGN.md §2): every warp step pays an issue cost; every
// memory transaction pays the global latency divided by a latency-hiding
// factor derived from how many warps the launch keeps resident; shared
// accesses pay the (tiny) shared latency; committed atomics and intra-step
// conflicts serialize. The absolute constants are calibration, the
// *monotonicities* are the contract: fewer transactions, fewer wasted
// lanes, or a higher shared fraction always means fewer cycles.
#pragma once

#include <cstdint>

#include "sim/config.hpp"
#include "sim/stats.hpp"

namespace graffix::sim {

struct CostBreakdown {
  double issue_cycles = 0;
  double global_memory_cycles = 0;
  double shared_memory_cycles = 0;
  double atomic_cycles = 0;
  double launch_cycles = 0;
  double aux_cycles = 0;

  [[nodiscard]] double total_cycles() const {
    return issue_cycles + global_memory_cycles + shared_memory_cycles +
           atomic_cycles + launch_cycles + aux_cycles;
  }
};

class CostModel {
 public:
  explicit CostModel(SimConfig config) : config_(config) {}

  /// avg_resident_warps: average warps per launch, used for latency hiding.
  [[nodiscard]] CostBreakdown cycles(const KernelStats& stats,
                                     double avg_resident_warps) const;

  [[nodiscard]] double seconds(const KernelStats& stats,
                               double avg_resident_warps) const;

  [[nodiscard]] double hiding_factor(double resident_warps) const;

 private:
  SimConfig config_;
};

}  // namespace graffix::sim
