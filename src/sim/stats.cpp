#include "sim/stats.hpp"

namespace graffix::sim {

KernelStats& KernelStats::operator+=(const KernelStats& other) {
  sweeps += other.sweeps;
  warp_steps += other.warp_steps;
  lane_slots += other.lane_slots;
  active_lanes += other.active_lanes;
  edge_transactions += other.edge_transactions;
  attr_transactions += other.attr_transactions;
  attr_ideal_transactions += other.attr_ideal_transactions;
  shared_accesses += other.shared_accesses;
  bank_conflicts += other.bank_conflicts;
  atomic_commits += other.atomic_commits;
  atomic_conflicts += other.atomic_conflicts;
  aux_ops += other.aux_ops;
  return *this;
}

}  // namespace graffix::sim
