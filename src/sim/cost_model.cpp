#include "sim/cost_model.hpp"

#include <algorithm>

namespace graffix::sim {

double CostModel::hiding_factor(double resident_warps) const {
  const double factor = resident_warps / static_cast<double>(config_.warps_to_hide);
  return std::clamp(factor, 1.0, config_.max_overlap);
}

CostBreakdown CostModel::cycles(const KernelStats& stats,
                                double avg_resident_warps) const {
  CostBreakdown b;
  const double hide = hiding_factor(avg_resident_warps);
  const double eff_latency = config_.global_latency / hide;
  b.issue_cycles = static_cast<double>(stats.warp_steps) * config_.issue_cycles;
  b.global_memory_cycles =
      static_cast<double>(stats.edge_transactions + stats.attr_transactions) *
      eff_latency;
  b.shared_memory_cycles =
      static_cast<double>(stats.shared_accesses) * config_.shared_latency /
          static_cast<double>(config_.warp_size) +
      static_cast<double>(stats.bank_conflicts) * config_.bank_conflict_cycles;
  b.atomic_cycles =
      static_cast<double>(stats.atomic_commits) * config_.atomic_cycles /
          static_cast<double>(config_.warp_size) +
      static_cast<double>(stats.atomic_conflicts) *
          config_.atomic_conflict_cycles;
  b.launch_cycles = static_cast<double>(stats.sweeps) * config_.launch_cycles;
  b.aux_cycles = static_cast<double>(stats.aux_ops) * 0.5;
  return b;
}

double CostModel::seconds(const KernelStats& stats,
                          double avg_resident_warps) const {
  const double total = cycles(stats, avg_resident_warps).total_cycles();
  // Work spreads across SMs; the cycle counts above are totals, so divide
  // by device-wide throughput.
  const double device_hz =
      static_cast<double>(config_.num_sms) * config_.clock_ghz * 1e9;
  return total / device_hz;
}

}  // namespace graffix::sim
