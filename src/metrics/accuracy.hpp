// Inaccuracy metrics, following §5 of the paper:
//  - SSSP / PR / BC: average absolute difference between per-vertex
//    attribute values of the exact and approximate runs, normalized by
//    the exact mean so it reads as a percentage;
//  - SCC: relative difference in the number of components;
//  - MST: relative difference in forest weight.
#pragma once

#include <span>
#include <vector>

#include "util/types.hpp"

namespace graffix::metrics {

struct AttributeError {
  double inaccuracy_pct = 0.0;   // mean |exact - approx| / mean |exact| * 100
  double mean_abs_error = 0.0;   // unnormalized
  std::size_t compared = 0;      // finite pairs
  std::size_t mismatched_reach = 0;  // one side finite, the other not
};

/// Compares per-node attribute vectors (same id space). Pairs where both
/// sides are non-finite (e.g. both unreached in SSSP) agree and are
/// skipped; pairs where exactly one side is finite are counted in
/// mismatched_reach and excluded from the mean.
[[nodiscard]] AttributeError attribute_error(std::span<const double> exact,
                                             std::span<const double> approx);

/// |exact - approx| / max(exact, eps) * 100 for scalar outcomes (SCC
/// component counts, MST weights).
[[nodiscard]] double scalar_inaccuracy_pct(double exact, double approx);

/// Speedup of approx over exact (exact_time / approx_time).
[[nodiscard]] double speedup(double exact_time, double approx_time);

/// Geometric mean of positive values; zero-size input yields 1.
[[nodiscard]] double geomean(std::span<const double> values);

}  // namespace graffix::metrics
