#include "metrics/table.hpp"

#include <cstdio>

#include "util/macros.hpp"

namespace graffix::metrics {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  GRAFFIX_CHECK(cells.size() == headers_.size(),
                "row has %zu cells, table has %zu columns", cells.size(),
                headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_rule() { rows_.emplace_back(); }

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out += "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    out += "\n";
  };
  auto emit_rule = [&] {
    out += "+";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      out += std::string(widths[c] + 2, '-') + "+";
    }
    out += "\n";
  };

  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_rule();
    } else {
      emit_row(row);
    }
  }
  emit_rule();
  return out;
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

std::string Table::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::speedup(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2fx", value);
  return buf;
}

std::string Table::pct(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, value);
  return buf;
}

}  // namespace graffix::metrics
