#include "metrics/accuracy.hpp"

#include <cmath>

#include "util/macros.hpp"

namespace graffix::metrics {

AttributeError attribute_error(std::span<const double> exact,
                               std::span<const double> approx) {
  GRAFFIX_CHECK(exact.size() == approx.size(),
                "attribute vectors differ in size: %zu vs %zu", exact.size(),
                approx.size());
  AttributeError err;
  double abs_sum = 0.0;
  double exact_sum = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    const bool ef = std::isfinite(exact[i]);
    const bool af = std::isfinite(approx[i]);
    if (!ef && !af) continue;  // both unreached: agreement
    if (ef != af) {
      ++err.mismatched_reach;
      continue;
    }
    abs_sum += std::abs(exact[i] - approx[i]);
    exact_sum += std::abs(exact[i]);
    ++err.compared;
  }
  if (err.compared > 0) {
    err.mean_abs_error = abs_sum / static_cast<double>(err.compared);
    const double exact_mean = exact_sum / static_cast<double>(err.compared);
    err.inaccuracy_pct =
        exact_mean > 0.0 ? 100.0 * err.mean_abs_error / exact_mean
                         : (err.mean_abs_error > 0.0 ? 100.0 : 0.0);
  }
  return err;
}

double scalar_inaccuracy_pct(double exact, double approx) {
  const double denom = std::max(std::abs(exact), 1e-12);
  return 100.0 * std::abs(exact - approx) / denom;
}

double speedup(double exact_time, double approx_time) {
  return approx_time <= 0.0 ? 0.0 : exact_time / approx_time;
}

double geomean(std::span<const double> values) {
  if (values.empty()) return 1.0;
  double log_sum = 0.0;
  for (double v : values) {
    log_sum += std::log(std::max(v, 1e-12));
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace graffix::metrics
