// Minimal ASCII table printer for the bench harness — prints rows in the
// paper's table layout so EXPERIMENTS.md can diff paper vs measured.
#pragma once

#include <string>
#include <vector>

namespace graffix::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// A horizontal separator row.
  void add_rule();

  /// Renders to a string (header + rules + rows, right-padded columns).
  [[nodiscard]] std::string render() const;

  /// Convenience: renders and writes to stdout.
  void print() const;

  /// Formats a double with the given precision.
  [[nodiscard]] static std::string num(double value, int precision = 2);
  /// Formats "1.23x" speedup cells.
  [[nodiscard]] static std::string speedup(double value);
  /// Formats "12%" inaccuracy cells.
  [[nodiscard]] static std::string pct(double value, int precision = 0);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty row = rule
};

}  // namespace graffix::metrics
