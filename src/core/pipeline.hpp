// graffix::Pipeline — the library's primary public entry point.
//
// Owns an input graph, applies one Graffix transform (the paper evaluates
// the three techniques independently), and runs simulated-device
// algorithms on either the transformed or the original graph with all
// transform artifacts (warp order, replicas, clusters) wired through
// automatically. Results on the transformed graph can be projected back
// to original node ids for accuracy evaluation.
//
// Typical use (see examples/quickstart.cpp):
//
//   graffix::Pipeline pipeline(std::move(graph));
//   pipeline.apply_coalescing({.chunk_size = 16,
//                              .connectedness_threshold = 0.6});
//   auto exact  = pipeline.run_exact(graffix::core::Algorithm::PR);
//   auto approx = pipeline.run(graffix::core::Algorithm::PR);
//   auto ranks  = pipeline.project(approx.attr);   // per original node id
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/runners.hpp"
#include "transform/coalescing.hpp"
#include "transform/combined.hpp"
#include "transform/divergence.hpp"
#include "transform/latency.hpp"

namespace graffix {

enum class Technique { None, Coalescing, Latency, Divergence, Combined };

[[nodiscard]] const char* technique_name(Technique technique);

class Pipeline {
 public:
  explicit Pipeline(Csr graph);

  /// Apply one transform (replacing any previously applied one). Each
  /// returns the transform's report for inspection.
  const transform::CoalescingResult& apply_coalescing(
      const transform::CoalescingKnobs& knobs);
  const transform::LatencyResult& apply_latency(
      const transform::LatencyKnobs& knobs);
  const transform::DivergenceResult& apply_divergence(
      const transform::DivergenceKnobs& knobs);
  /// Apply any combination of the three techniques in the consistent
  /// order (coalescing -> latency -> divergence); see transform/combined.hpp.
  const transform::CombinedResult& apply_combined(
      const transform::CombinedKnobs& knobs);

  /// Drop the applied transform; run() falls back to the original graph.
  void reset();

  [[nodiscard]] Technique technique() const { return technique_; }
  [[nodiscard]] const Csr& original() const { return original_; }
  /// The graph run() executes on (transformed if a technique is applied).
  [[nodiscard]] const Csr& current() const;

  /// Wall-clock seconds spent in the last apply_* (Table 5's time column).
  [[nodiscard]] double preprocessing_seconds() const {
    return preprocessing_seconds_;
  }
  /// Wall-clock seconds of the applied transform's greedy phase — the
  /// batched scenario-1/2 insertion (latency) or replica application
  /// (coalescing). Zero for techniques without a greedy phase.
  [[nodiscard]] double greedy_phase_seconds() const;
  /// Extra space of the transformed graph relative to the original.
  [[nodiscard]] double extra_space_fraction() const;
  /// Arcs inserted by the applied transform (the approximation volume).
  [[nodiscard]] std::uint64_t edges_added() const;

  /// Runs on the current graph with the transform artifacts wired into
  /// the config (fields warp_order/replicas/clusters are overwritten).
  [[nodiscard]] core::RunOutput run(core::Algorithm alg,
                                    core::RunConfig config = {}) const;
  /// Runs on the original, untransformed graph (the exact comparator).
  [[nodiscard]] core::RunOutput run_exact(core::Algorithm alg,
                                          core::RunConfig config = {}) const;

  /// Slot in current() representing original node v.
  [[nodiscard]] NodeId slot_of_node(NodeId v) const;
  /// Projects a per-slot attribute vector onto original node ids.
  [[nodiscard]] std::vector<double> project(
      std::span<const double> attr_slots) const;

 private:
  Csr original_;
  Technique technique_ = Technique::None;
  std::optional<transform::CoalescingResult> coalescing_;
  std::optional<transform::LatencyResult> latency_;
  std::optional<transform::DivergenceResult> divergence_;
  std::optional<transform::CombinedResult> combined_;
  double preprocessing_seconds_ = 0.0;
};

}  // namespace graffix
