// Umbrella header: the Graffix public API.
//
//   #include "core/graffix.hpp"
//
// pulls in the graph types, generators, the three transforms, the SIMT
// simulator, the algorithm runners, and the Pipeline/experiment drivers.
#pragma once

#include "algorithms/bc.hpp"
#include "algorithms/bfs.hpp"
#include "algorithms/mst.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/scc.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/steiner.hpp"
#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "core/runners.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/permute.hpp"
#include "gen/rmat.hpp"
#include "gen/road_grid.hpp"
#include "gen/suite.hpp"
#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "graph/subgraph.hpp"
#include "graph/validate.hpp"
#include "metrics/accuracy.hpp"
#include "metrics/table.hpp"
#include "transform/coalescing.hpp"
#include "transform/divergence.hpp"
#include "transform/latency.hpp"
#include "transform/renumber.hpp"
#include "transform/replicate.hpp"
