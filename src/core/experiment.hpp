// Experiment grid runner: evaluates (graph x algorithm x technique x
// baseline) cells exactly the way the paper's Tables 6-14 and Figures
// 7-9 do — one exact run on the original graph, one approximate run on
// the transformed graph, speedup from simulated seconds and inaccuracy
// from §5's per-algorithm metric.
#pragma once

#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "gen/suite.hpp"
#include "metrics/accuracy.hpp"

namespace graffix::core {

struct ExperimentConfig {
  std::uint32_t scale = 13;
  std::uint64_t seed = 42;
  sim::SimConfig sim;
  baselines::BaselineId baseline = baselines::BaselineId::TopologyDriven;
  Technique technique = Technique::Coalescing;

  transform::CoalescingKnobs coalescing;
  transform::LatencyKnobs latency;
  transform::DivergenceKnobs divergence;
  /// Apply the paper's per-graph-class thresholds (connectedness 0.6 for
  /// power-law graphs / 0.4 for road networks, §5.2) instead of the knob
  /// structs' values.
  bool auto_thresholds = true;

  std::vector<Algorithm> algorithms = all_algorithms();
  std::uint32_t bc_sources = 6;
  /// Replica merge cadence (ablation; 1 = paper default).
  std::uint32_t confluence_every = 1;
};

struct ExperimentRow {
  std::string graph;
  Algorithm algorithm = Algorithm::SSSP;
  double exact_seconds = 0.0;
  double approx_seconds = 0.0;
  double speedup = 0.0;
  double inaccuracy_pct = 0.0;
  std::uint32_t exact_iterations = 0;
  std::uint32_t approx_iterations = 0;
};

struct PreprocessReport {
  std::string graph;
  double seconds = 0.0;
  /// Seconds inside the transform's greedy phase (the batched
  /// scenario-1/2 insertion or replica application) — the Table 5
  /// per-phase scaling rows. Subset of `seconds`.
  double phase_seconds = 0.0;
  double extra_space_pct = 0.0;
  std::uint64_t edges_added = 0;
};

/// Resolves the technique's knobs for one graph class (applies the
/// auto-threshold rule).
[[nodiscard]] ExperimentConfig resolve_for_graph(ExperimentConfig config,
                                                 GraphPreset preset);

/// Applies config.technique to the pipeline using the (resolved) knobs.
void apply_technique(Pipeline& pipeline, const ExperimentConfig& config);

/// Runs every configured algorithm for one suite graph. The transform is
/// applied once and reused across algorithms (the paper's amortization
/// argument).
[[nodiscard]] std::vector<ExperimentRow> run_graph(const SuiteEntry& entry,
                                                   const ExperimentConfig& config);

/// Full table over the whole Table 1 suite.
[[nodiscard]] std::vector<ExperimentRow> run_table(const ExperimentConfig& config);

/// Exact-only baseline timings (Tables 2-4): no transform, just the
/// baseline's simulated execution time per (graph, algorithm).
[[nodiscard]] std::vector<ExperimentRow> run_exact_table(
    const ExperimentConfig& config);

/// Preprocessing cost per suite graph (Table 5 rows for one technique).
[[nodiscard]] std::vector<PreprocessReport> run_preprocessing(
    const ExperimentConfig& config);

/// Geomean of the rows' speedups and inaccuracies.
struct GeomeanSummary {
  double speedup = 1.0;
  double inaccuracy_pct = 0.0;
};
[[nodiscard]] GeomeanSummary summarize(std::span<const ExperimentRow> rows);

}  // namespace graffix::core
