#include "core/experiment.hpp"

#include <algorithm>
#include <memory>

#include "algorithms/bc.hpp"
#include "util/macros.hpp"
#include "util/parallel.hpp"

namespace graffix::core {

namespace {

/// Deterministic SSSP source: the maximum-out-degree node (ties to the
/// smallest id), the same rule the renumbering uses for its first root.
NodeId pick_sssp_source(const Csr& graph) {
  NodeId best = 0;
  NodeId best_degree = 0;
  const NodeId n = graph.num_slots();
  for (NodeId v = 0; v < n; ++v) {
    if (!graph.is_hole(v) && graph.degree(v) > best_degree) {
      best = v;
      best_degree = graph.degree(v);
    }
  }
  return best;
}

double cell_inaccuracy(Algorithm alg, const RunOutput& exact,
                       const RunOutput& approx, const Pipeline& pipeline) {
  switch (alg) {
    case Algorithm::SSSP:
    case Algorithm::PR:
    case Algorithm::BC: {
      const std::vector<double> projected = pipeline.project(approx.attr);
      return metrics::attribute_error(exact.attr, projected).inaccuracy_pct;
    }
    case Algorithm::SCC:
    case Algorithm::MST:
      return metrics::scalar_inaccuracy_pct(exact.scalar, approx.scalar);
  }
  return 0.0;
}

}  // namespace

ExperimentConfig resolve_for_graph(ExperimentConfig config,
                                   GraphPreset preset) {
  if (!config.auto_thresholds) return config;
  // §5.2: connectedness 0.6 for scale-free graphs, 0.4 for road networks.
  config.coalescing.connectedness_threshold =
      preset_is_power_law(preset) ? 0.6 : 0.4;
  // §5.3: the CC threshold is tuned per graph. These are the tuned values
  // for this repo's generator suite (see EXPERIMENTS.md).
  config.latency.near_delta = 0.25;
  config.latency.edge_budget_fraction = 0.05;
  switch (preset) {
    case GraphPreset::Rmat26:
      config.latency.cc_threshold = 0.40;
      break;
    case GraphPreset::Random26:
      // ER clustering is ~ef/n: every cluster must be built by the
      // lifting step. The paper accepts its highest inaccuracies here
      // (random26 T2 rows run 11-18%).
      config.latency.cc_threshold = 0.12;
      config.latency.edge_budget_fraction = 0.05;
      break;
    case GraphPreset::LiveJournal:
      config.latency.cc_threshold = 0.35;
      break;
    case GraphPreset::UsaRoad:
      // Grids: hop-based metrics (BC levels) are very sensitive to
      // shortcut chords, so boosting is kept minimal — clusters come
      // from the natural diagonal triangles.
      config.latency.cc_threshold = 0.25;
      config.latency.near_delta = 0.15;
      config.latency.edge_budget_fraction = 0.02;
      break;
    case GraphPreset::Twitter:
      config.latency.cc_threshold = 0.40;
      break;
  }
  // §5.4: low thresholds keep the added-edge volume small. The paper's
  // guideline sets the threshold low when bucket degrees are already
  // near-uniform (roads, ER) — there the normalization has little to
  // win and every inserted edge is pure extra work.
  switch (preset) {
    case GraphPreset::Rmat26:
    case GraphPreset::LiveJournal:
    case GraphPreset::Twitter:
      config.divergence.degree_sim_threshold = 0.30;
      break;
    case GraphPreset::Random26:
    case GraphPreset::UsaRoad:
      config.divergence.degree_sim_threshold = 0.15;
      break;
  }
  return config;
}

void apply_technique(Pipeline& pipeline, const ExperimentConfig& config) {
  switch (config.technique) {
    case Technique::None:
      pipeline.reset();
      break;
    case Technique::Coalescing:
      pipeline.apply_coalescing(config.coalescing);
      break;
    case Technique::Latency:
      pipeline.apply_latency(config.latency);
      break;
    case Technique::Divergence:
      pipeline.apply_divergence(config.divergence);
      break;
    case Technique::Combined:
      pipeline.apply_combined({.coalescing = config.coalescing,
                               .latency = config.latency,
                               .divergence = config.divergence});
      break;
  }
}

std::vector<ExperimentRow> run_graph(const SuiteEntry& entry,
                                     const ExperimentConfig& base_config) {
  const ExperimentConfig config = resolve_for_graph(base_config, entry.preset);
  Pipeline pipeline(entry.graph);
  apply_technique(pipeline, config);

  const NodeId sssp_source = pick_sssp_source(entry.graph);
  const std::vector<NodeId> bc_nodes =
      sample_bc_sources(entry.graph, config.bc_sources, config.seed);
  std::vector<NodeId> bc_slots(bc_nodes.size());
  for (std::size_t i = 0; i < bc_nodes.size(); ++i) {
    bc_slots[i] = pipeline.slot_of_node(bc_nodes[i]);
  }

  // One task per (algorithm, exact|approx) cell: Pipeline::run/run_exact
  // only read the pipeline's transform artifacts, so the cells are
  // independent and run concurrently. Rows are assembled in algorithm
  // order afterwards, so the table is identical at any thread count.
  struct Cell {
    RunOutput exact;
    RunOutput approx;
  };
  std::vector<Cell> cells(config.algorithms.size());
  auto run_cell = [&](std::size_t t) {
    const Algorithm alg = config.algorithms[t / 2];
    RunConfig rc;
    rc.sim = config.sim;
    rc.baseline = config.baseline;
    rc.seed = config.seed;
    rc.confluence_every = config.confluence_every;
    if (t % 2 == 0) {
      rc.sssp_source = sssp_source;
      rc.bc_sources = bc_nodes;
      cells[t / 2].exact = pipeline.run_exact(alg, rc);
    } else {
      rc.sssp_source = pipeline.slot_of_node(sssp_source);
      rc.bc_sources = bc_slots;
      cells[t / 2].approx = pipeline.run(alg, rc);
    }
  };
  const std::size_t n_tasks = 2 * cells.size();
  if (n_tasks > 1 && effective_workers() > 1 && !in_parallel()) {
    parallel_for_dynamic(std::size_t{0}, n_tasks, run_cell, /*grain=*/1);
  } else {
    for (std::size_t t = 0; t < n_tasks; ++t) run_cell(t);
  }

  std::vector<ExperimentRow> rows;
  rows.reserve(cells.size());
  for (std::size_t a = 0; a < cells.size(); ++a) {
    const RunOutput& exact = cells[a].exact;
    const RunOutput& approx = cells[a].approx;
    ExperimentRow row;
    row.graph = entry.name;
    row.algorithm = config.algorithms[a];
    row.exact_seconds = exact.sim_seconds;
    row.approx_seconds = approx.sim_seconds;
    row.speedup = metrics::speedup(exact.sim_seconds, approx.sim_seconds);
    row.inaccuracy_pct =
        cell_inaccuracy(config.algorithms[a], exact, approx, pipeline);
    row.exact_iterations = exact.iterations;
    row.approx_iterations = approx.iterations;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<ExperimentRow> run_table(const ExperimentConfig& config) {
  std::vector<ExperimentRow> rows;
  // Graphs stay sequential: each one's transform phase and its
  // (algorithm x exact/approx) cells are internally parallel already,
  // and one resident transformed graph at a time bounds peak memory.
  for (const SuiteEntry& entry : make_suite(config.scale, config.seed)) {
    auto graph_rows = run_graph(entry, config);
    rows.insert(rows.end(), graph_rows.begin(), graph_rows.end());
  }
  // Paper tables group rows by algorithm, then graph.
  std::stable_sort(rows.begin(), rows.end(),
                   [](const ExperimentRow& a, const ExperimentRow& b) {
                     return static_cast<int>(a.algorithm) <
                            static_cast<int>(b.algorithm);
                   });
  return rows;
}

std::vector<ExperimentRow> run_exact_table(const ExperimentConfig& config) {
  // No transform here, so every (graph x algorithm) cell of the matrix
  // is independent: build the per-graph contexts up front, run the flat
  // cell list concurrently, and emit rows in (graph, algorithm) order.
  const std::vector<SuiteEntry> suite = make_suite(config.scale, config.seed);
  const std::size_t n_algs = config.algorithms.size();
  struct GraphCtx {
    std::unique_ptr<Pipeline> pipeline;
    NodeId sssp_source = 0;
    std::vector<NodeId> bc_nodes;
  };
  std::vector<GraphCtx> ctx(suite.size());
  for (std::size_t g = 0; g < suite.size(); ++g) {
    ctx[g].pipeline = std::make_unique<Pipeline>(suite[g].graph);
    ctx[g].sssp_source = pick_sssp_source(suite[g].graph);
    ctx[g].bc_nodes =
        sample_bc_sources(suite[g].graph, config.bc_sources, config.seed);
  }

  std::vector<RunOutput> outs(suite.size() * n_algs);
  auto run_cell = [&](std::size_t t) {
    const GraphCtx& c = ctx[t / n_algs];
    RunConfig rc;
    rc.sim = config.sim;
    rc.baseline = config.baseline;
    rc.seed = config.seed;
    rc.sssp_source = c.sssp_source;
    rc.bc_sources = c.bc_nodes;
    outs[t] = c.pipeline->run_exact(config.algorithms[t % n_algs], rc);
  };
  if (outs.size() > 1 && effective_workers() > 1 && !in_parallel()) {
    parallel_for_dynamic(std::size_t{0}, outs.size(), run_cell, /*grain=*/1);
  } else {
    for (std::size_t t = 0; t < outs.size(); ++t) run_cell(t);
  }

  std::vector<ExperimentRow> rows;
  rows.reserve(outs.size());
  for (std::size_t t = 0; t < outs.size(); ++t) {
    ExperimentRow row;
    row.graph = suite[t / n_algs].name;
    row.algorithm = config.algorithms[t % n_algs];
    row.exact_seconds = outs[t].sim_seconds;
    row.exact_iterations = outs[t].iterations;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<PreprocessReport> run_preprocessing(const ExperimentConfig& config) {
  std::vector<PreprocessReport> reports;
  for (const SuiteEntry& entry : make_suite(config.scale, config.seed)) {
    const ExperimentConfig resolved = resolve_for_graph(config, entry.preset);
    Pipeline pipeline(entry.graph);
    apply_technique(pipeline, resolved);
    PreprocessReport report;
    report.graph = entry.name;
    report.seconds = pipeline.preprocessing_seconds();
    report.phase_seconds = pipeline.greedy_phase_seconds();
    report.extra_space_pct = 100.0 * pipeline.extra_space_fraction();
    report.edges_added = pipeline.edges_added();
    reports.push_back(std::move(report));
  }
  return reports;
}

GeomeanSummary summarize(std::span<const ExperimentRow> rows) {
  std::vector<double> speedups, inaccuracies;
  speedups.reserve(rows.size());
  inaccuracies.reserve(rows.size());
  for (const ExperimentRow& row : rows) {
    speedups.push_back(row.speedup);
    // Geomean over percentages, floored at 0.1% so an exactly-zero cell
    // does not zero out the aggregate (the paper reports single-digit
    // geomeans over nonzero cells).
    inaccuracies.push_back(std::max(row.inaccuracy_pct, 0.1));
  }
  GeomeanSummary summary;
  summary.speedup = metrics::geomean(speedups);
  summary.inaccuracy_pct = metrics::geomean(inaccuracies);
  return summary;
}

}  // namespace graffix::core
