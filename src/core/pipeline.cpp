#include "core/pipeline.hpp"

#include "transform/validate.hpp"
#include "util/macros.hpp"
#include "util/timer.hpp"

namespace graffix {

const char* technique_name(Technique technique) {
  switch (technique) {
    case Technique::None:
      return "none";
    case Technique::Coalescing:
      return "coalescing";
    case Technique::Latency:
      return "latency";
    case Technique::Divergence:
      return "divergence";
    case Technique::Combined:
      return "combined";
  }
  return "?";
}

Pipeline::Pipeline(Csr graph) : original_(std::move(graph)) {
  GRAFFIX_CHECK(!original_.has_holes(),
                "Pipeline expects an untransformed input graph");
}

const transform::CoalescingResult& Pipeline::apply_coalescing(
    const transform::CoalescingKnobs& knobs) {
  reset();
  WallTimer timer;
  coalescing_ = transform::coalescing_transform(original_, knobs);
  preprocessing_seconds_ = timer.seconds();
  technique_ = Technique::Coalescing;
  transform::check_transform_phase("pipeline/coalescing", coalescing_->graph,
                                   &coalescing_->replicas);
  return *coalescing_;
}

const transform::LatencyResult& Pipeline::apply_latency(
    const transform::LatencyKnobs& knobs) {
  reset();
  WallTimer timer;
  latency_ = transform::latency_transform(original_, knobs);
  preprocessing_seconds_ = timer.seconds();
  technique_ = Technique::Latency;
  transform::check_transform_phase("pipeline/latency", latency_->graph);
  return *latency_;
}

const transform::DivergenceResult& Pipeline::apply_divergence(
    const transform::DivergenceKnobs& knobs) {
  reset();
  WallTimer timer;
  divergence_ = transform::divergence_transform(original_, knobs);
  preprocessing_seconds_ = timer.seconds();
  technique_ = Technique::Divergence;
  transform::check_transform_phase("pipeline/divergence", divergence_->graph);
  return *divergence_;
}

const transform::CombinedResult& Pipeline::apply_combined(
    const transform::CombinedKnobs& knobs) {
  reset();
  WallTimer timer;
  combined_ = transform::combined_transform(original_, knobs);
  preprocessing_seconds_ = timer.seconds();
  technique_ = Technique::Combined;
  transform::check_transform_phase(
      "pipeline/combined", combined_->graph,
      combined_->replicas.empty() ? nullptr : &combined_->replicas);
  return *combined_;
}

void Pipeline::reset() {
  technique_ = Technique::None;
  coalescing_.reset();
  latency_.reset();
  divergence_.reset();
  combined_.reset();
  preprocessing_seconds_ = 0.0;
}

double Pipeline::greedy_phase_seconds() const {
  switch (technique_) {
    case Technique::Coalescing:
      return coalescing_->greedy_seconds;
    case Technique::Latency:
      return latency_->greedy_seconds;
    case Technique::None:
    case Technique::Divergence:
    case Technique::Combined:
      break;
  }
  return 0.0;
}

const Csr& Pipeline::current() const {
  switch (technique_) {
    case Technique::None:
      return original_;
    case Technique::Coalescing:
      return coalescing_->graph;
    case Technique::Latency:
      return latency_->graph;
    case Technique::Divergence:
      return divergence_->graph;
    case Technique::Combined:
      return combined_->graph;
  }
  return original_;
}

double Pipeline::extra_space_fraction() const {
  switch (technique_) {
    case Technique::None:
      return 0.0;
    case Technique::Coalescing:
      return coalescing_->extra_space_fraction;
    case Technique::Latency:
      return latency_->extra_space_fraction;
    case Technique::Divergence:
      return divergence_->extra_space_fraction;
    case Technique::Combined:
      return combined_->extra_space_fraction;
  }
  return 0.0;
}

std::uint64_t Pipeline::edges_added() const {
  switch (technique_) {
    case Technique::None:
      return 0;
    case Technique::Coalescing:
      return coalescing_->edges_added;
    case Technique::Latency:
      return latency_->edges_added;
    case Technique::Divergence:
      return divergence_->edges_added;
    case Technique::Combined:
      return combined_->edges_added;
  }
  return 0;
}

core::RunOutput Pipeline::run(core::Algorithm alg,
                              core::RunConfig config) const {
  config.warp_order = {};
  config.replicas = nullptr;
  config.clusters = nullptr;
  switch (technique_) {
    case Technique::None:
      break;
    case Technique::Coalescing:
      config.replicas = &coalescing_->replicas;
      break;
    case Technique::Latency:
      config.clusters = &latency_->schedule;
      break;
    case Technique::Divergence:
      config.warp_order = divergence_->warp_order;
      break;
    case Technique::Combined:
      if (!combined_->replicas.empty()) config.replicas = &combined_->replicas;
      if (!combined_->schedule.empty()) config.clusters = &combined_->schedule;
      if (!combined_->warp_order.empty()) {
        config.warp_order = combined_->warp_order;
      }
      break;
  }
  return core::run_algorithm(alg, current(), config);
}

core::RunOutput Pipeline::run_exact(core::Algorithm alg,
                                    core::RunConfig config) const {
  config.warp_order = {};
  config.replicas = nullptr;
  config.clusters = nullptr;
  return core::run_algorithm(alg, original_, config);
}

NodeId Pipeline::slot_of_node(NodeId v) const {
  if (technique_ == Technique::Coalescing) {
    return coalescing_->renumber.slot_of_node[v];
  }
  if (technique_ == Technique::Combined && combined_->renumber.has_value()) {
    return combined_->renumber->slot_of_node[v];
  }
  return v;
}

std::vector<double> Pipeline::project(
    std::span<const double> attr_slots) const {
  if (technique_ == Technique::Coalescing) {
    return coalescing_->project(attr_slots);
  }
  if (technique_ == Technique::Combined && combined_->renumber.has_value()) {
    return transform::project_to_nodes<double>(*combined_->renumber,
                                               attr_slots);
  }
  return {attr_slots.begin(), attr_slots.end()};
}

}  // namespace graffix
