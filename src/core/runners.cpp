#include "core/runners.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <optional>
#include <unordered_set>

#include "algorithms/bc.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"
#include "util/bitset.hpp"
#include "util/macros.hpp"
#include "util/parallel.hpp"

namespace graffix::core {

const char* algorithm_name(Algorithm alg) {
  switch (alg) {
    case Algorithm::SSSP:
      return "SSSP";
    case Algorithm::MST:
      return "MST";
    case Algorithm::SCC:
      return "SCC";
    case Algorithm::PR:
      return "PR";
    case Algorithm::BC:
      return "BC";
  }
  return "?";
}

std::vector<Algorithm> all_algorithms() {
  return {Algorithm::SSSP, Algorithm::MST, Algorithm::SCC, Algorithm::PR,
          Algorithm::BC};
}

namespace {

using baselines::Strategy;
using sim::Engine;
using sim::KernelStats;
using sim::SweepOptions;
using sim::WorkItem;
using transform::ClusterSchedule;
using transform::ReplicaMap;

/// Shared machinery for all runners: work-list construction respecting
/// the warp order, global sweeps, cluster inner sweeps, confluence, and
/// the final stats -> seconds conversion.
///
/// The warp layout and the cluster/boundary graph split are immutable
/// once built, so they live in a read-only Layout that forked drivers
/// share: run_bc runs one fork per Brandes source (possibly
/// concurrently) without rebuilding the split, then folds the forks'
/// counters back in source order.
class Driver {
 public:
  /// Immutable per-run layout shared between a driver and its forks.
  struct Layout {
    std::vector<NodeId> order;
    std::vector<NodeId> pos;
    bool has_clusters = false;
    Csr cluster_graph;
    Csr boundary_graph;
    std::vector<std::vector<WorkItem>> cluster_items;
  };

  /// uses_weights: whether the algorithm actually streams the weights
  /// array (SSSP/MST); PR/BC/SCC ignore weights and must not pay for
  /// them. Passing a layout forks the driver: it reuses the warp order
  /// and cluster split but accumulates its own stats from zero.
  Driver(const Csr& graph, const RunConfig& config, bool uses_weights,
         std::shared_ptr<const Layout> layout = nullptr)
      : graph_(graph),
        config_(config),
        strategy_(baselines::make_strategy(config.baseline)),
        layout_(layout != nullptr ? std::move(layout)
                                  : build_layout(graph, config)) {
    opts_.edge_mode = strategy_->edge_load_mode();
    opts_.weighted = uses_weights && graph.has_weights();
    engine_.emplace(exec_graph(), config.sim);
    if (layout_->has_clusters) {
      cluster_engine_.emplace(layout_->cluster_graph, config.sim);
    }
  }

  [[nodiscard]] bool data_driven() const { return strategy_->data_driven(); }
  [[nodiscard]] const std::vector<NodeId>& order() const {
    return layout_->order;
  }
  [[nodiscard]] const Csr& graph() const { return graph_; }
  [[nodiscard]] KernelStats& stats() { return stats_; }
  [[nodiscard]] std::shared_ptr<const Layout> layout() const {
    return layout_;
  }
  [[nodiscard]] std::uint64_t primary_items() const { return primary_items_; }
  [[nodiscard]] std::uint64_t primary_launches() const {
    return primary_launches_;
  }

  /// Folds a fork's accumulated counters into this driver, as if its
  /// sweeps had run here. Callers fold forks in source order so the
  /// totals accumulate exactly as a single serial driver would.
  void absorb(const KernelStats& stats, std::uint64_t items,
              std::uint64_t launches) {
    stats_ += stats;
    primary_items_ += items;
    primary_launches_ += launches;
  }

  /// Global sweep over `active` slots (reordered into warp order here).
  /// `traits` certifies the functor for the engine's grouped parallel
  /// replay (see sim::FunctorTraits); the default is uncertified, which
  /// replays serially and is always safe. A certified functor with sweep
  /// aggregates (stall sums, frontier appends) routes them through
  /// `side`, which both the boundary and cluster engines merge
  /// deterministically (sim::SideChannel).
  template <typename Fn>
  void sweep(std::vector<NodeId>& active, Fn&& fn,
             sim::FunctorTraits traits = {}, sim::SideChannel* side = nullptr) {
    order_active(active);
    sweep_impl(active, [](NodeId) { return true; }, std::forward<Fn>(fn),
               traits, side);
  }

  /// Global sweep over every slot in warp order.
  template <typename Fn>
  void sweep_all(Fn&& fn, sim::FunctorTraits traits = {},
                 sim::SideChannel* side = nullptr) {
    sweep_impl(layout_->order, [](NodeId) { return true; },
               std::forward<Fn>(fn), traits, side);
  }

  /// Topology-driven sweep with a per-vertex gate: every slot is assigned
  /// to a lane, but lanes whose gate(src) fails only load their state and
  /// idle (the classic "if (!active(v)) return;" kernel prologue). This
  /// is what keeps topology-driven baselines from paying full gather
  /// traffic for untouched vertices while still paying divergence.
  template <typename Gate, typename Fn>
  void sweep_all_gated(Gate&& gate, Fn&& fn, sim::FunctorTraits traits = {},
                       sim::SideChannel* side = nullptr) {
    sweep_impl(layout_->order, std::forward<Gate>(gate), std::forward<Fn>(fn),
               traits, side);
  }

  /// One round of shared-memory inner iterations: every cluster selected
  /// by `want(cluster_index)` is swept once over its intra-cluster edges
  /// with attributes in shared memory. Round 0 stages the subgraph's
  /// edges into shared memory (and is charged as one kernel launch);
  /// later rounds reuse them (§3's temporal-reuse argument).
  template <typename Fn, typename Want>
  void cluster_phase_round(std::uint32_t round, Fn&& fn, Want&& want) {
    if (config_.clusters == nullptr || config_.clusters->empty()) return;
    bool any = false;
    // Round 0 streams the cluster edges in (the staging load itself);
    // later rounds within the same launch reuse them (§3).
    const SweepOptions copts = cluster_opts(/*edges_resident=*/round > 0);
    const auto& clusters = config_.clusters->clusters;
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      if (!want(c)) continue;
      any = true;
      const auto& items = layout_->cluster_items[c];
      cluster_engine_->sweep(items, copts, fn, stats_);
    }
    if (any && round == 0) stats_.sweeps += 1;  // the phase is one launch
  }

  /// Full shared-memory phase (§3): each cluster selected by `want` runs
  /// its own inner_iterations rounds.
  template <typename Fn, typename Want>
  void cluster_phase(Fn&& fn, Want&& want) {
    if (config_.clusters == nullptr || config_.clusters->empty()) return;
    const auto& clusters = config_.clusters->clusters;
    std::uint32_t max_rounds = 0;
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      if (want(c)) max_rounds = std::max(max_rounds, clusters[c].inner_iterations);
    }
    for (std::uint32_t r = 0; r < max_rounds; ++r) {
      cluster_phase_round(r, fn, [&](std::size_t c) {
        return want(c) && clusters[c].inner_iterations > r;
      });
    }
  }

  [[nodiscard]] const transform::ClusterSchedule* clusters() const {
    return config_.clusters;
  }

 private:
  /// One logical kernel over the given slots. With a cluster schedule
  /// (§3), the kernel is split in two parts that together cover exactly
  /// the same edges: the boundary part (all edges that leave or cross
  /// clusters) runs against global memory, while each cluster's internal
  /// edges are processed with attributes — and, after the first launch,
  /// the staged subgraph itself — resident in shared memory.
  template <typename Gate, typename Fn>
  void sweep_impl(std::span<const NodeId> slots_in_order, Gate&& gate,
                  Fn&& fn, sim::FunctorTraits traits = {},
                  sim::SideChannel* side = nullptr) {
    const std::span<const WorkItem> work = work_for(slots_in_order);
    track_primary(work.size());
    // Each lane's gate check is one coalesced state load.
    engine_->charge_uniform_kernel(work.size(), 1.0, stats_);
    stats_.sweeps -= 1;  // the gate load is part of this launch
    SweepOptions opts = opts_;
    opts.functor = traits;
    opts.side = side;
    engine_->sweep_gated(work, opts, gate, fn, stats_);
    if (has_clusters()) {
      const std::span<const WorkItem> cwork = cluster_work_for(slots_in_order);
      if (!cwork.empty()) {
        // Shared memory does not survive kernel launches: every sweep
        // re-streams the cluster edges from global memory (that IS the
        // staging load); only inner rounds within one launch (see
        // cluster_phase_round) get resident edges. Not its own launch:
        // it is part of the boundary sweep's. The functor is the same
        // one, so the certification carries over.
        primary_items_ += cwork.size();
        SweepOptions copts = cluster_opts(false);
        copts.functor = traits;
        copts.side = side;
        cluster_engine_->sweep_gated(cwork, copts, gate, fn, stats_);
      }
      charge_staging(slots_in_order.size());
    }
    charge_aux(slots_in_order.size());
  }

  /// True when `slots` is this driver's invariant warp-order list and
  /// the strategy's decomposition is a pure function of (graph, slots) —
  /// the conditions under which a work layout built once stays valid for
  /// the driver's whole lifetime. (Graph, order, and strategy are all
  /// fixed at construction, so cached layouts never need invalidating;
  /// swapping any of them means building a new Driver.)
  [[nodiscard]] bool invariant_order(std::span<const NodeId> slots) const {
    return strategy_->work_is_slot_invariant() &&
           slots.data() == layout_->order.data() &&
           slots.size() == layout_->order.size();
  }

  /// Work list for one boundary sweep: cached across iterations for the
  /// invariant warp-order list, rebuilt per sweep for frontiers.
  [[nodiscard]] std::span<const WorkItem> work_for(
      std::span<const NodeId> slots) {
    if (invariant_order(slots)) {
      if (!cached_work_built_) {
        strategy_->make_work(exec_graph(), slots, cached_work_);
        cached_work_built_ = true;
      }
      return cached_work_;
    }
    strategy_->make_work(exec_graph(), slots, work_);
    return work_;
  }

  /// Per-vertex items over the intra-cluster subgraph for the resident
  /// members of `slots`, cached like work_for.
  [[nodiscard]] std::span<const WorkItem> cluster_work_for(
      std::span<const NodeId> slots) {
    const bool invariant = invariant_order(slots);
    if (invariant && cached_cluster_work_built_) return cached_cluster_work_;
    std::vector<WorkItem>& out = invariant ? cached_cluster_work_ : cluster_work_;
    out.clear();
    const Csr& cgraph = layout_->cluster_graph;
    const auto& resident = config_.clusters->resident;
    for (NodeId s : slots) {
      if (resident[s] == kInvalidNode) continue;
      const NodeId d = cgraph.degree(s);
      if (d > 0) out.push_back({s, cgraph.edge_begin(s), d});
    }
    if (invariant) cached_cluster_work_built_ = true;
    return out;
  }

  /// Options for a shared-memory cluster sweep (the boundary sweep's
  /// cluster part and the inner refinement rounds share everything but
  /// edge residency).
  [[nodiscard]] SweepOptions cluster_opts(bool edges_resident) const {
    SweepOptions copts;
    copts.edge_mode = opts_.edge_mode;
    copts.weighted = opts_.weighted;
    copts.attr_space = sim::AttrSpace::Shared;
    copts.charge_launch = false;
    copts.edges_resident = edges_resident;
    return copts;
  }

  [[nodiscard]] bool has_clusters() const { return layout_->has_clusters; }

  /// Graph the boundary sweeps execute on.
  [[nodiscard]] const Csr& exec_graph() const {
    return has_clusters() ? layout_->boundary_graph : graph_;
  }

  /// Reorders `active` into ascending warp position — exactly the order
  /// the previous comparator std::sort produced — in O(n) plus a scan of
  /// the touched bitmap span: scatter each slot to its position with
  /// epoch-stamped duplicate counts, then walk set position bits in
  /// ascending word/bit order. Steady-state it allocates nothing; tiny
  /// frontiers take an insertion sort instead, since scanning the bitmap
  /// span would dominate them.
  void order_active(std::vector<NodeId>& active) {
    const auto& pos = layout_->pos;
    const auto& order = layout_->order;
    if (active.size() < 2) return;
    if (active.size() <= 32) {
      for (std::size_t i = 1; i < active.size(); ++i) {
        const NodeId a = active[i];
        std::size_t k = i;
        while (k > 0 && pos[active[k - 1]] > pos[a]) {
          active[k] = active[k - 1];
          --k;
        }
        active[k] = a;
      }
      return;
    }
    if (pos_epoch_.empty()) {
      pos_count_.assign(pos.size(), 0);
      pos_epoch_.assign(pos.size(), 0);
      pos_word_.assign((pos.size() + 63) / 64, 0);
    }
    pos_gen_ += 1;
    std::size_t wmin = std::numeric_limits<std::size_t>::max();
    std::size_t wmax = 0;
    for (const NodeId a : active) {
      const NodeId p = pos[a];
      if (pos_epoch_[p] != pos_gen_) {
        pos_epoch_[p] = pos_gen_;
        pos_count_[p] = 0;
      }
      pos_count_[p] += 1;
      const std::size_t w = p / 64;
      pos_word_[w] |= std::uint64_t{1} << (p % 64);
      wmin = std::min(wmin, w);
      wmax = std::max(wmax, w);
    }
    std::size_t k = 0;
    for (std::size_t w = wmin; w <= wmax; ++w) {
      std::uint64_t bits = pos_word_[w];
      if (bits == 0) continue;
      pos_word_[w] = 0;
      while (bits != 0) {
        const auto p = static_cast<NodeId>(
            w * 64 + static_cast<std::size_t>(std::countr_zero(bits)));
        bits &= bits - 1;
        for (std::uint32_t c = pos_count_[p]; c > 0; --c) {
          active[k++] = order[p];
        }
      }
    }
  }

 public:

  /// Confluence (§2.4): finite-mean merge of every replica group; members
  /// whose value changed are appended to `changed` (so data-driven runs
  /// re-activate them).
  void confluence(std::span<double> attr, std::vector<NodeId>* changed) {
    if (config_.replicas == nullptr || config_.replicas->empty()) return;
    std::uint64_t touched = 0;
    for (const auto& group : config_.replicas->groups) {
      if (group.size() < 2) continue;
      double sum = 0.0;
      std::size_t finite = 0;
      for (NodeId s : group) {
        if (std::isfinite(attr[s])) {
          sum += attr[s];
          ++finite;
        }
      }
      touched += group.size();
      if (finite == 0) continue;
      const double merged = sum / static_cast<double>(finite);
      for (NodeId s : group) {
        // Relative epsilon: mean-merge perturbations decay geometrically
        // toward the joint fixpoint; without a tolerance the run would
        // chase ulp-level oscillations forever.
        if (std::abs(attr[s] - merged) >
            config_.confluence_epsilon * (1.0 + std::abs(merged))) {
          attr[s] = merged;
          if (changed != nullptr) changed->push_back(s);
        } else {
          attr[s] = merged;
        }
      }
    }
    engine_->charge_uniform_kernel(touched, 2.0, stats_);
  }

  /// Label confluence for SCC colors / MST components. The merge MUST
  /// follow the algorithm's propagation direction (max for SCC's forward
  /// max-coloring, min for MST's hook-to-smaller), otherwise merge and
  /// propagation ping-pong forever.
  void confluence_labels(std::span<NodeId> labels, std::vector<NodeId>* changed,
                         bool take_max) {
    if (config_.replicas == nullptr || config_.replicas->empty()) return;
    std::uint64_t touched = 0;
    for (const auto& group : config_.replicas->groups) {
      if (group.size() < 2) continue;
      NodeId merged = take_max ? 0 : kInvalidNode;
      bool any = false;
      for (NodeId s : group) {
        if (labels[s] == kInvalidNode) continue;
        any = true;
        merged = take_max ? std::max(merged, labels[s])
                          : std::min(merged, labels[s]);
      }
      touched += group.size();
      if (!any) continue;
      for (NodeId s : group) {
        if (labels[s] != merged && labels[s] != kInvalidNode) {
          labels[s] = merged;
          if (changed != nullptr) changed->push_back(s);
        }
      }
    }
    engine_->charge_uniform_kernel(touched, 2.0, stats_);
  }

  /// Charges a plain streaming kernel (attribute init / reset / reduce).
  void charge_stream(std::uint64_t items, double tx_per_item = 1.0) {
    engine_->charge_uniform_kernel(items, tx_per_item, stats_);
  }

  /// Converts accumulated stats into simulated seconds. Latency hiding is
  /// derived from the *primary* sweeps only — the graph kernels are what
  /// keep warps resident; tiny bookkeeping kernels must not dilute it.
  /// Shared-memory residency costs occupancy (see SimConfig).
  [[nodiscard]] double seconds() const {
    const sim::CostModel model(config_.sim);
    const double launches = std::max<double>(1.0, static_cast<double>(primary_launches_));
    double avg_warps =
        static_cast<double>(primary_items_) /
        (launches * static_cast<double>(config_.sim.warp_size));
    if (has_clusters()) {
      const double resident_fraction =
          static_cast<double>(config_.clusters->resident_count()) /
          std::max<double>(1.0, graph_.num_slots());
      avg_warps /=
          1.0 + config_.sim.smem_occupancy_penalty * resident_fraction;
    }
    return model.seconds(stats_, avg_warps);
  }

 private:
  void track_primary(std::size_t items) {
    primary_items_ += items;
    primary_launches_ += 1;
  }

  void charge_aux(std::size_t active_count) {
    const std::uint64_t aux = strategy_->aux_items_per_sweep(active_count);
    if (aux > 0) engine_->charge_uniform_kernel(aux, 1.0, stats_);
  }

  /// Shared-memory residency is not free: every sweep that benefits from
  /// resident clusters stages their attributes in (and writes dirty ones
  /// back). The charge scales with the fraction of the graph the sweep
  /// touches — frontier sweeps only stage the clusters they process.
  void charge_staging(std::size_t active_count) {
    if (config_.clusters == nullptr || config_.clusters->empty()) return;
    const double fraction =
        std::min(1.0, static_cast<double>(active_count) /
                          std::max<double>(1.0, graph_.num_slots()));
    const auto items = static_cast<std::uint64_t>(
        fraction * static_cast<double>(config_.clusters->resident_count()));
    // ~32B per member per launch: attribute load + writeback, block
    // synchronization, and shared-memory bookkeeping. This is what makes
    // sparse (low-reuse) clusters a net loss, per §5.3's discussion.
    if (items > 0) engine_->charge_uniform_kernel(items, 8.0, stats_);
  }

  /// Builds the immutable layout: the warp order, its inverse, and (with
  /// a cluster schedule) the cluster/boundary graph split.
  [[nodiscard]] static std::shared_ptr<const Layout> build_layout(
      const Csr& graph, const RunConfig& config) {
    auto layout = std::make_shared<Layout>();
    const NodeId slots = graph.num_slots();
    if (!config.warp_order.empty()) {
      GRAFFIX_CHECK(config.warp_order.size() == graph.num_slots(),
                    "warp order covers %zu of %u slots",
                    config.warp_order.size(), graph.num_slots());
      layout->order.assign(config.warp_order.begin(), config.warp_order.end());
    } else {
      // Hole slots stay in the warp layout as idle lanes: the coalescing
      // transform's chunk alignment depends on warp w covering slots
      // [w*32, w*32+32) exactly (§2.2-2.3); compacting holes out would
      // shear every later chunk off its warp.
      layout->order.resize(slots);
      std::iota(layout->order.begin(), layout->order.end(), NodeId{0});
    }
    layout->pos.assign(slots, kInvalidNode);
    for (std::size_t i = 0; i < layout->order.size(); ++i) {
      layout->pos[layout->order[i]] = static_cast<NodeId>(i);
    }
    if (config.clusters != nullptr && !config.clusters->empty()) {
      build_cluster_split(graph, *config.clusters, *layout);
    }
    return layout;
  }

  /// Splits the input graph into the intra-cluster subgraph (processed in
  /// shared memory) and the complementary boundary graph. Every edge of
  /// the input lands in exactly one of the two.
  static void build_cluster_split(const Csr& graph,
                                  const ClusterSchedule& schedule,
                                  Layout& layout) {
    const NodeId slots = graph.num_slots();
    const auto& resident = schedule.resident;
    const bool weighted = graph.has_weights();

    auto is_internal = [&](NodeId u, NodeId v) {
      return resident[u] != kInvalidNode && resident[u] == resident[v];
    };

    std::vector<EdgeId> coff(static_cast<std::size_t>(slots) + 1, 0);
    std::vector<EdgeId> boff(static_cast<std::size_t>(slots) + 1, 0);
    for (NodeId u = 0; u < slots; ++u) {
      for (NodeId v : graph.neighbors(u)) {
        (is_internal(u, v) ? coff : boff)[u + 1]++;
      }
    }
    for (NodeId u = 0; u < slots; ++u) {
      coff[u + 1] += coff[u];
      boff[u + 1] += boff[u];
    }
    std::vector<NodeId> ctargets(coff.back()), btargets(boff.back());
    std::vector<Weight> cweights(weighted ? coff.back() : 0);
    std::vector<Weight> bweights(weighted ? boff.back() : 0);
    std::vector<EdgeId> ccur(coff.begin(), coff.end() - 1);
    std::vector<EdgeId> bcur(boff.begin(), boff.end() - 1);
    for (NodeId u = 0; u < slots; ++u) {
      const auto nbrs = graph.neighbors(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const NodeId v = nbrs[i];
        if (is_internal(u, v)) {
          ctargets[ccur[u]] = v;
          if (weighted) cweights[ccur[u]] = graph.edge_weights(u)[i];
          ++ccur[u];
        } else {
          btargets[bcur[u]] = v;
          if (weighted) bweights[bcur[u]] = graph.edge_weights(u)[i];
          ++bcur[u];
        }
      }
    }
    std::vector<std::uint8_t> holes(graph.holes().begin(),
                                    graph.holes().end());
    layout.has_clusters = true;
    layout.cluster_graph = Csr(std::move(coff), std::move(ctargets),
                               std::move(cweights), holes);
    layout.boundary_graph = Csr(std::move(boff), std::move(btargets),
                                std::move(bweights), std::move(holes));
    layout.cluster_items.resize(schedule.clusters.size());
    for (std::size_t c = 0; c < schedule.clusters.size(); ++c) {
      for (NodeId m : schedule.clusters[c].members) {
        layout.cluster_items[c].push_back({m, layout.cluster_graph.edge_begin(m),
                                           layout.cluster_graph.degree(m)});
      }
    }
  }

  const Csr& graph_;
  const RunConfig& config_;
  std::optional<Engine> engine_;
  std::unique_ptr<Strategy> strategy_;
  std::shared_ptr<const Layout> layout_;
  std::vector<WorkItem> work_;  // frontier sweeps: rebuilt per sweep
  // Invariant warp-order layouts, built lazily once per driver and
  // reused every iteration (see work_for / invariant_order).
  std::vector<WorkItem> cached_work_;
  bool cached_work_built_ = false;
  SweepOptions opts_;
  KernelStats stats_;
  std::uint64_t primary_items_ = 0;
  std::uint64_t primary_launches_ = 0;

  std::optional<Engine> cluster_engine_;
  std::vector<WorkItem> cluster_work_;
  std::vector<WorkItem> cached_cluster_work_;
  bool cached_cluster_work_built_ = false;

  // order_active() scratch: duplicate counts + touched-position bitmap,
  // both epoch-stamped so no per-sweep clearing is needed.
  std::vector<std::uint32_t> pos_count_;
  std::vector<std::uint64_t> pos_epoch_;
  std::vector<std::uint64_t> pos_word_;
  std::uint64_t pos_gen_ = 0;
};

// ---------------------------------------------------------------------------
// SSSP
// ---------------------------------------------------------------------------

RunOutput run_sssp(const Csr& graph, const RunConfig& config) {
  const NodeId slots = graph.num_slots();
  Driver driver(graph, config, /*uses_weights=*/true);
  RunOutput out;
  out.attr.assign(slots, std::numeric_limits<double>::infinity());
  auto& dist = out.attr;

  NodeId source = config.sssp_source;
  GRAFFIX_CHECK(source < slots && !graph.is_hole(source), "bad source %u",
                source);
  dist[source] = 0.0;
  driver.charge_stream(slots);  // distance initialization

  // Jacobi (level-synchronous) semantics: one sweep = one kernel launch
  // reading the previous iteration's distances; a relaxation travels one
  // hop per launch, as on the device. `dist` is the stable snapshot,
  // `next` accumulates this sweep's improvements.
  std::vector<double> next(dist);
  AtomicBitset changed_mask(slots);
  std::vector<NodeId> active{source};
  std::vector<NodeId> changed;
  // Relaxation tolerance matches the confluence epsilon: once the
  // mean-merge perturbation is below it, relax must not chase the
  // residual either (the two tolerances together bound the oscillation).
  const double eps = config.confluence_epsilon;

  // Stall detection for the approximate paths: replica-merge residuals
  // decay geometrically, and chains of replica groups can keep the
  // changed set non-empty for dozens of iterations after all real
  // progress is done. We track (a) discoveries (a vertex turning finite
  // — always real progress) and (b) the total improvement relative to
  // the magnitudes involved, and stop after two consecutive iterations
  // of neither.
  //
  // Certified {Min, Dst} for grouped replay (DESIGN.md §7): the min-plus
  // core reads the sweep-stable `dist` snapshot plus target state
  // (next[v], the changed-mask bit), writes only target state — and the
  // stall aggregates plus the changed list, which used to pin this
  // functor serial, flow through a SideChannel: the grouped replay
  // captures them per record and folds them in serial (block, step,
  // lane) order, so the rounded sums, the discovery flag, and the
  // changed-list order are byte-identical to the serial oracle.
  enum : std::size_t { kImprovement = 0, kImprovementBase = 1 };
  constexpr std::size_t kDiscovered = 0;
  sim::SideChannel side(/*n_sums=*/2);
  side.bind_appends(&changed);
  const sim::FunctorTraits relax_traits{sim::MergeKind::Min,
                                        sim::MergeTarget::Dst};
  auto relax = [&](NodeId u, NodeId v, Weight w) {
    const double nd = dist[u] + static_cast<double>(w);
    if (nd < next[v] - eps * (1.0 + std::abs(nd))) {
      if (std::isfinite(next[v])) {
        side.add(kImprovement, next[v] - nd);
      } else {
        side.raise(kDiscovered);
      }
      side.add(kImprovementBase, 1.0 + std::abs(nd));
      next[v] = nd;
      if (changed_mask.set(v)) side.append(v);
      return true;
    }
    return false;
  };
  // Cluster inner iterations are sequential micro-launches inside shared
  // memory: they may read their own updates (that is their whole point,
  // per §3's t ~ 2x diameter reuse argument), so relax against `next`.
  // That Gauss-Seidel read keeps THIS functor uncertified — no side
  // channel can fix an order-sensitive value chain — so its sweeps
  // replay serially and the shared channel stays in direct mode there.
  auto cluster_relax = [&](NodeId u, NodeId v, Weight w) {
    const double nd = next[u] + static_cast<double>(w);
    if (nd < next[v] - eps * (1.0 + std::abs(nd))) {
      if (std::isfinite(next[v])) {
        side.add(kImprovement, next[v] - nd);
      } else {
        side.raise(kDiscovered);
      }
      side.add(kImprovementBase, 1.0 + std::abs(nd));
      next[v] = nd;
      if (changed_mask.set(v)) side.append(v);
      return true;
    }
    return false;
  };

  std::uint32_t stalled = 0;
  while (out.iterations < config.max_iterations) {
    ++out.iterations;
    changed.clear();
    changed_mask.clear();
    side.reset();
    if (driver.data_driven()) {
      driver.sweep(active, relax, relax_traits, &side);
    } else {
      driver.sweep_all_gated(
          [&](NodeId u) { return std::isfinite(dist[u]); }, relax,
          relax_traits, &side);
    }
    // Only clusters that actually received new information this
    // iteration run their inner refinement rounds — under data-driven
    // execution most clusters see no frontier traffic most iterations,
    // and sweeping them anyway would swamp the small frontier sweeps.
    // Moreover, inner rounds only pay off against the work-inefficient
    // topology-driven baseline; on frontier baselines (already
    // work-optimal) the shared-memory benefit is the residency discount
    // alone, so the refinement is skipped entirely there.
    if (!driver.data_driven() && config.clusters != nullptr &&
        !config.clusters->empty()) {
      std::vector<std::uint8_t> touched(config.clusters->clusters.size(), 0);
      const auto& resident = config.clusters->resident;
      for (NodeId s : changed) {
        if (resident[s] != kInvalidNode) touched[resident[s]] = 1;
      }
      driver.cluster_phase(cluster_relax,
                           [&](std::size_t c) { return touched[c] != 0; });
    }
    if (out.iterations % std::max(1u, config.confluence_every) == 0) {
      driver.confluence(next, &changed);
    }
    if (changed.empty() && config.confluence_every > 1 &&
        config.replicas != nullptr && !config.replicas->empty()) {
      // Deferred-confluence cadences can stall: if every edge out of a
      // region was moved onto replicas, progress resumes only through a
      // merge. Force one before concluding the fixpoint was reached.
      driver.confluence(next, &changed);
    }
    dist = next;
    if (config.collect_trace) out.trace.push_back({out.iterations, driver.stats()});
    if (changed.empty()) break;
    if (!side.flag(kDiscovered) &&
        side.sum(kImprovement) <
            100.0 * eps * std::max(1.0, side.sum(kImprovementBase))) {
      if (++stalled >= 2) break;
    } else {
      stalled = 0;
    }
    if (driver.data_driven()) {
      // Deduplicate (cluster phase / confluence may repeat slots).
      std::sort(changed.begin(), changed.end());
      changed.erase(std::unique(changed.begin(), changed.end()), changed.end());
      active = changed;
    }
  }
  // A final merge always runs so replica copies agree in the output
  // regardless of the confluence cadence.
  if (config.confluence_every > 1) driver.confluence(dist, nullptr);
  out.attr = dist;
  out.stats = driver.stats();
  out.sim_seconds = driver.seconds();
  return out;
}

// ---------------------------------------------------------------------------
// PageRank
// ---------------------------------------------------------------------------

RunOutput run_pagerank(const Csr& graph, const RunConfig& config) {
  const NodeId slots = graph.num_slots();
  // Pull mode gathers along in-edges: the driver sweeps the transpose
  // while out-degrees (for the contribution denominators) come from the
  // forward graph. The functor's (u, v) is then (destination, source).
  std::optional<Csr> reverse;
  if (config.pr_pull) reverse.emplace(graph.transpose());
  Driver driver(config.pr_pull ? *reverse : graph, config,
                /*uses_weights=*/false);
  RunOutput out;

  NodeId n_eff = graph.num_nodes();
  if (n_eff == 0) return out;
  std::vector<double> rank(slots, 0.0), next(slots, 0.0);
  std::vector<NodeId> degree(slots);
  for (NodeId s = 0; s < slots; ++s) {
    degree[s] = graph.degree(s);
    if (!graph.is_hole(s)) rank[s] = 1.0 / n_eff;
  }
  driver.charge_stream(slots);

  const double base = (1.0 - config.pr_damping) / n_eff;
  // Convergence is measured across the *whole* iteration pipeline
  // (sweep + cluster refinement + confluence): the approximation stages
  // keep a mid-iteration delta floor, but the composite map contracts.
  std::vector<double> rank_at_start(slots);
  for (std::uint32_t iter = 0; iter < config.pr_max_iterations; ++iter) {
    ++out.iterations;
    rank_at_start = rank;
    std::fill(next.begin(), next.end(), 0.0);
    driver.charge_stream(slots);  // zeroing the accumulator

    // Clusters (if any) act purely as a residency discount here: the
    // engine serves intra-cluster gathers from shared memory. Inner
    // refinement rounds are reserved for monotone relaxations (SSSP) —
    // for PR they would fight the global power iteration's convergence.
    // Both functors are certified plus-monoid merges (grouped parallel
    // replay, DESIGN.md §7): they read only sweep-stable state (rank and
    // degree are not written during the sweep) plus the accumulator slot
    // of their merge target, write only that slot, and have no other
    // side effects. Per-target absorption order equals the serial replay
    // order, so the rounded double sums are bit-identical to the serial
    // engine.
    if (config.pr_pull) {
      // Transpose sweep: u is the gathering vertex, v its in-neighbor.
      // No atomic commit — each lane owns next[u].
      driver.sweep_all(
          [&](NodeId u, NodeId v, Weight) {
            next[u] += rank[v] / degree[v];
            return false;
          },
          {sim::MergeKind::Sum, sim::MergeTarget::Src});
    } else {
      driver.sweep_all(
          [&](NodeId u, NodeId v, Weight) {
            next[v] += rank[u] / degree[u];
            return true;
          },
          {sim::MergeKind::Sum, sim::MergeTarget::Dst});
    }

    double dangling = 0.0;
    for (NodeId s = 0; s < slots; ++s) {
      if (!graph.is_hole(s) && degree[s] == 0) dangling += rank[s];
    }
    const double dangling_share = config.pr_damping * dangling / n_eff;
    driver.charge_stream(slots);  // dangling reduction

    for (NodeId s = 0; s < slots; ++s) {
      if (graph.is_hole(s)) continue;
      rank[s] = base + dangling_share + config.pr_damping * next[s];
    }
    driver.charge_stream(slots);  // apply kernel

    if (out.iterations % std::max(1u, config.confluence_every) == 0) {
      driver.confluence(rank, nullptr);
    }
    double delta = 0.0;
    for (NodeId s = 0; s < slots; ++s) {
      if (!graph.is_hole(s)) delta += std::abs(rank[s] - rank_at_start[s]);
    }
    driver.charge_stream(slots);  // convergence reduction
    if (config.collect_trace) out.trace.push_back({out.iterations, driver.stats()});
    if (delta < config.pr_tolerance) break;
  }

  if (config.confluence_every > 1) driver.confluence(rank, nullptr);
  out.attr.assign(rank.begin(), rank.end());
  out.stats = driver.stats();
  out.sim_seconds = driver.seconds();
  return out;
}

// ---------------------------------------------------------------------------
// Betweenness centrality (Algorithm 1 of the paper)
// ---------------------------------------------------------------------------

RunOutput run_bc(const Csr& graph, const RunConfig& config) {
  const NodeId slots = graph.num_slots();
  Driver driver(graph, config, /*uses_weights=*/false);
  RunOutput out;
  out.attr.assign(slots, 0.0);
  auto& bc = out.attr;

  std::vector<NodeId> sources;
  if (!config.bc_sources.empty()) {
    sources.assign(config.bc_sources.begin(), config.bc_sources.end());
  } else {
    sources = sample_bc_sources(graph, config.bc_sample_count, config.seed);
  }

  // Each Brandes pass owns its level/sigma/delta arrays and runs on a
  // forked driver sharing the base driver's layout, so sources are
  // independent and can run concurrently. Every pass fills a full-size
  // contribution vector; bc sums, stats, primary-sweep counters, and the
  // cumulative trace are folded back in source order afterwards, which
  // makes the output bit-identical at any thread count — and identical
  // to the old single-driver serial loop, whose per-source counter
  // increments these sums merely regroup (DESIGN.md §7).
  struct SourceResult {
    std::vector<double> contrib;
    KernelStats stats;
    std::uint64_t primary_items = 0;
    std::uint64_t primary_launches = 0;
  };

  const ReplicaMap* replicas = config.replicas;

  auto run_source = [&](NodeId source, SourceResult& res) {
    Driver drv(graph, config, /*uses_weights=*/false, driver.layout());
    // graffix-lint: allow(R6) per-source BFS attributes; each source task owns its own copy, so pooling would race
    std::vector<NodeId> level(slots, kInvalidNode);
    // graffix-lint: allow(R6) per-source scratch, same ownership as `level` above
    std::vector<double> sigma(slots, 0.0), delta(slots, 0.0);
    std::vector<std::vector<NodeId>> by_level;
    drv.charge_stream(slots, 3.0);  // per-source attribute reset

    // Algorithm-aware confluence for BC (the §2.4 option the paper notes
    // gives better accuracy): a replica has no in-edges, so its logical
    // level and path count are its primary's — copy them after each
    // forward sweep so the edges moved onto the replica keep propagating.
    // Newly leveled replicas are handed back so data-driven frontiers can
    // schedule them.
    auto sync_replicas_forward = [&](NodeId frontier_depth,
                                     std::vector<NodeId>* discovered) {
      if (replicas == nullptr || replicas->empty()) return;
      std::uint64_t touched = 0;
      for (const auto& group : replicas->groups) {
        const NodeId primary = group[0];
        touched += group.size();
        if (level[primary] == kInvalidNode) continue;
        for (std::size_t i = 1; i < group.size(); ++i) {
          const NodeId replica = group[i];
          if (level[replica] == kInvalidNode) {
            level[replica] = level[primary];
            if (discovered != nullptr && level[replica] == frontier_depth) {
              discovered->push_back(replica);
            }
          }
          sigma[replica] = sigma[primary];
        }
      }
      drv.charge_stream(touched, 2.0);
    };

    // graffix-lint: allow(R6) per-source frontier history (vector of per-level lists); sizes are data-dependent per source
    by_level.assign(1, {source});
    level[source] = 0;
    sigma[source] = 1.0;

    // Forward pass: level-synchronous BFS DAG with sigma accumulation.
    // Replica levels/sigmas are synced *before* each depth's sweep so a
    // replica whose primary was just discovered propagates in the same
    // wave it would have as part of the original node.
    NodeId depth = 0;
    // Certified {Sum, Dst} for grouped replay (DESIGN.md §7): the sigma
    // accumulation is a clean plus-merge into the target — level[u] and
    // sigma[u] are sweep-stable for every recorded call (a level-d
    // vertex is never written this sweep: only kInvalidNode slots
    // transition, to depth+1) and level[v]/sigma[v] are target state.
    // The frontier discovery, which used to pin this functor serial,
    // appends through a SideChannel: per-record capture concatenated in
    // serial (block, step, lane) order makes the next frontier's
    // contents AND order byte-identical to the serial oracle.
    sim::SideChannel frontier_side;
    const sim::FunctorTraits forward_traits{sim::MergeKind::Sum,
                                            sim::MergeTarget::Dst};
    while (true) {
      sync_replicas_forward(depth, &by_level[depth]);
      std::vector<NodeId> next_frontier;
      frontier_side.bind_appends(&next_frontier);
      auto forward = [&](NodeId u, NodeId v, Weight) {
        if (level[u] != depth) return false;
        if (level[v] == kInvalidNode) {
          level[v] = depth + 1;
          frontier_side.append(v);
        }
        if (level[v] == depth + 1) {
          sigma[v] += sigma[u];
          return true;
        }
        return false;
      };
      if (drv.data_driven()) {
        std::vector<NodeId> frontier = by_level[depth];
        drv.sweep(frontier, forward, forward_traits, &frontier_side);
      } else {
        drv.sweep_all_gated([&](NodeId u) { return level[u] == depth; },
                            forward, forward_traits, &frontier_side);
      }
      if (next_frontier.empty()) break;
      ++depth;
      // graffix-lint: allow(R6) appends a moved-from frontier (pointer steal, no element copy) to the per-source history
      by_level.push_back(std::move(next_frontier));
    }

    // Backward pass: dependency accumulation level by level (Eq. 1).
    for (NodeId d = depth + 1; d-- > 0;) {
      // Certified plus-merge into the SOURCE side (grouped parallel
      // replay, DESIGN.md §7): within one depth-d sweep the functor
      // writes only delta[u] (u at level d) and reads delta[v]/sigma[v]
      // for v at level d+1 — state no call of this sweep writes — plus
      // level/sigma, which are frozen after the forward pass. Per-u
      // absorption order equals the serial replay order, so the rounded
      // double accumulation is bit-identical to the serial engine.
      const sim::FunctorTraits backward_traits{sim::MergeKind::Sum,
                                               sim::MergeTarget::Src};
      auto backward = [&](NodeId u, NodeId v, Weight) {
        if (level[u] != d) return false;
        if (level[v] == d + 1 && sigma[v] > 0.0 && sigma[u] > 0.0) {
          delta[u] += sigma[u] / sigma[v] * (1.0 + delta[v]);
          return true;
        }
        return false;
      };
      if (drv.data_driven()) {
        std::vector<NodeId> frontier = by_level[d];
        drv.sweep(frontier, backward, backward_traits);
      } else {
        drv.sweep_all_gated([&](NodeId u) { return level[u] == d; },
                            backward, backward_traits);
      }
    }
    // Copies of a node accumulate dependency through disjoint out-edge
    // subsets; the logical delta is their sum, credited to the primary
    // (the projection back to node ids reads primaries only).
    if (replicas != nullptr && !replicas->empty()) {
      std::uint64_t touched = 0;
      for (const auto& group : replicas->groups) {
        touched += group.size();
        for (std::size_t i = 1; i < group.size(); ++i) {
          delta[group[0]] += delta[group[i]];
          delta[group[i]] = 0.0;
        }
      }
      drv.charge_stream(touched, 2.0);
    }
    res.contrib.assign(slots, 0.0);
    for (NodeId s = 0; s < slots; ++s) {
      if (s != source && level[s] != kInvalidNode) res.contrib[s] = delta[s];
    }
    drv.charge_stream(slots);  // bc accumulation
    res.stats = drv.stats();
    res.primary_items = drv.primary_items();
    res.primary_launches = drv.primary_launches();
  };

  // One fork per source even on one thread: a single code path cannot
  // drift between thread counts. Nested callers (the bench matrix) keep
  // the source loop serial — the inner engine shards then. The fan-out
  // is sized by the concurrency actually available: oversubscribing a
  // smaller machine would only slow the sources down.
  std::vector<SourceResult> results(sources.size());
  if (sources.size() > 1 && effective_workers() > 1 && !in_parallel()) {
    parallel_for_dynamic(
        std::size_t{0}, results.size(),
        [&](std::size_t k) { run_source(sources[k], results[k]); },
        /*grain=*/1);
  } else {
    for (std::size_t k = 0; k < results.size(); ++k) {
      run_source(sources[k], results[k]);
    }
  }

  // Ordered reduction: contributions are added in source order (fixed FP
  // accumulation order), counters in source order (integer sums).
  for (std::size_t k = 0; k < results.size(); ++k) {
    ++out.iterations;
    const SourceResult& res = results[k];
    driver.absorb(res.stats, res.primary_items, res.primary_launches);
    for (NodeId s = 0; s < slots; ++s) bc[s] += res.contrib[s];
    if (config.collect_trace) {
      out.trace.push_back({out.iterations, driver.stats()});
    }
  }

  out.stats = driver.stats();
  out.sim_seconds = driver.seconds();
  return out;
}

// ---------------------------------------------------------------------------
// SCC (forward-max coloring with backward confirmation)
// ---------------------------------------------------------------------------

RunOutput run_scc(const Csr& graph, const RunConfig& config) {
  const NodeId slots = graph.num_slots();
  Driver forward_driver(graph, config, /*uses_weights=*/false);
  const Csr reverse = graph.transpose();
  Driver backward_driver(reverse, config, /*uses_weights=*/false);
  RunOutput out;

  std::vector<std::uint8_t> live(slots, 0);
  NodeId live_count = 0;
  for (NodeId s = 0; s < slots; ++s) {
    if (!graph.is_hole(s)) {
      live[s] = 1;
      ++live_count;
    }
  }

  std::vector<NodeId> color(slots, kInvalidNode);
  std::vector<std::uint8_t> in_scc(slots, 0);
  NodeId scc_count = 0;

  while (live_count > 0 && out.iterations < config.max_iterations) {
    ++out.iterations;
    // 1. Reset colors for live nodes.
    std::vector<NodeId> frontier;
    for (NodeId s = 0; s < slots; ++s) {
      if (live[s]) {
        color[s] = s;
        frontier.push_back(s);
      }
    }
    forward_driver.charge_stream(live_count);

    // 2. Forward max-color propagation to fixpoint (Jacobi semantics:
    // colors travel one hop per launch).
    AtomicBitset changed_mask(slots);
    std::vector<NodeId> changed;
    std::vector<NodeId> next_color = color;
    auto propagate = [&](NodeId u, NodeId v, Weight) {
      if (!live[u] || !live[v]) return false;
      if (color[u] > next_color[v]) {
        next_color[v] = color[u];
        if (changed_mask.set(v)) changed.push_back(v);
        return true;
      }
      return false;
    };
    // Color propagation is monotone (colors only grow, via sweep and via
    // the max-merge confluence), so this terminates in <= slots rounds;
    // the cap is a belt against future non-monotone edits.
    for (NodeId guard = 0; !frontier.empty() && guard <= slots; ++guard) {
      changed.clear();
      changed_mask.clear();
      if (forward_driver.data_driven()) {
        forward_driver.sweep(frontier, propagate);
      } else {
        forward_driver.sweep_all_gated(
            [&](NodeId u) { return live[u] != 0; }, propagate);
      }
      forward_driver.confluence_labels(next_color, &changed, /*take_max=*/true);
      color = next_color;
      frontier = changed;
    }

    // 3. Backward confirmation from every color root, restricted to the
    //    root's color class.
    std::fill(in_scc.begin(), in_scc.end(), 0);
    std::vector<NodeId> back_frontier;
    for (NodeId s = 0; s < slots; ++s) {
      if (live[s] && color[s] == s) {
        in_scc[s] = 1;
        back_frontier.push_back(s);
      }
    }
    backward_driver.charge_stream(live_count);

    std::vector<std::uint8_t> next_in_scc = in_scc;
    auto confirm = [&](NodeId u, NodeId v, Weight) {
      // Edge u->v in the reverse graph = edge v->u in the original.
      if (!live[u] || !live[v]) return false;
      if (in_scc[u] && !next_in_scc[v] && color[v] == color[u]) {
        next_in_scc[v] = 1;
        if (changed_mask.set(v)) changed.push_back(v);
        return true;
      }
      return false;
    };
    // A replica is the same logical node as its primary: once either
    // copy is confirmed, all live same-color copies are — this lets the
    // backward reach continue through the out-edges that replication
    // moved onto the copies (otherwise sparse graphs shatter).
    auto sync_in_scc = [&] {
      if (config.replicas == nullptr || config.replicas->empty()) return;
      std::uint64_t touched = 0;
      for (const auto& group : config.replicas->groups) {
        touched += group.size();
        bool confirmed = false;
        for (NodeId s : group) {
          if (live[s] && next_in_scc[s]) confirmed = true;
        }
        if (!confirmed) continue;
        for (NodeId s : group) {
          if (live[s] && !next_in_scc[s]) {
            next_in_scc[s] = 1;
            if (changed_mask.set(s)) changed.push_back(s);
          }
        }
      }
      backward_driver.charge_stream(touched, 2.0);
    };
    for (NodeId guard = 0; !back_frontier.empty() && guard <= slots; ++guard) {
      changed.clear();
      changed_mask.clear();
      if (backward_driver.data_driven()) {
        backward_driver.sweep(back_frontier, confirm);
      } else {
        backward_driver.sweep_all_gated(
            [&](NodeId u) { return live[u] && in_scc[u]; }, confirm);
      }
      sync_in_scc();
      in_scc = next_in_scc;
      back_frontier = changed;
    }

    // 4. Retire confirmed SCC members. Their colors become invalid so the
    // confluence never merges stale colors of dead replicas into live
    // group members (that would starve later rounds of roots).
    //
    // Components are counted over *logical* nodes: a replica slot is the
    // same node as its primary (§2.4), so replica-only components do not
    // increase the count — only classes containing at least one primary
    // do.
    std::unordered_set<NodeId> roots_this_round;
    const ReplicaMap* replicas = config.replicas;
    auto is_primary = [&](NodeId s) {
      if (replicas == nullptr || replicas->group_of_slot.empty()) return true;
      const NodeId g = replicas->group_of_slot[s];
      return g == kInvalidNode || replicas->groups[g][0] == s;
    };
    for (NodeId s = 0; s < slots; ++s) {
      if (live[s] && in_scc[s]) {
        if (is_primary(s)) roots_this_round.insert(color[s]);
        live[s] = 0;
        color[s] = kInvalidNode;
        --live_count;
      }
    }
    scc_count += static_cast<NodeId>(roots_this_round.size());
    forward_driver.charge_stream(slots);
    if (config.collect_trace) {
      TracePoint point{out.iterations, forward_driver.stats()};
      point.stats += backward_driver.stats();
      out.trace.push_back(std::move(point));
    }
  }

  out.scalar = static_cast<double>(scc_count);
  out.stats = forward_driver.stats();
  out.stats += backward_driver.stats();
  // Combine timings: each driver models its own launches.
  out.sim_seconds = forward_driver.seconds() + backward_driver.seconds();
  return out;
}

// ---------------------------------------------------------------------------
// MST (Borůvka)
// ---------------------------------------------------------------------------

RunOutput run_mst(const Csr& graph, const RunConfig& config) {
  const NodeId slots = graph.num_slots();
  Driver driver(graph, config, /*uses_weights=*/true);
  RunOutput out;

  std::vector<NodeId> comp(slots);
  std::iota(comp.begin(), comp.end(), NodeId{0});
  driver.charge_stream(slots);

  struct Best {
    Weight w = kInfWeight;
    NodeId u = kInvalidNode;
    NodeId v = kInvalidNode;
  };
  std::vector<Best> best(slots);

  auto better = [](Weight w, NodeId u, NodeId v, const Best& cur) {
    if (w != cur.w) return w < cur.w;
    if (u != cur.u) return u < cur.u;
    return v < cur.v;
  };

  for (std::uint32_t round = 0; round < 64; ++round) {
    ++out.iterations;
    std::fill(best.begin(), best.end(), Best{});
    driver.charge_stream(slots);

    driver.sweep_all([&](NodeId u, NodeId v, Weight w) {
      if (u == v) return false;
      const NodeId cu = comp[u];
      const NodeId cv = comp[v];
      if (cu == cv) return false;
      bool committed = false;
      if (better(w, u, v, best[cu])) {
        best[cu] = {w, u, v};
        committed = true;
      }
      if (better(w, u, v, best[cv])) {
        best[cv] = {w, u, v};
        committed = true;
      }
      return committed;
    });
    // Hook + compress on the host side of the device loop (charged as
    // streaming kernels, as LonestarGPU's pointer-jumping kernels are).
    std::vector<NodeId> parent(slots);
    std::iota(parent.begin(), parent.end(), NodeId{0});
    for (NodeId s = 0; s < slots; ++s) parent[s] = comp[s];
    auto find = [&](NodeId x) {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    bool merged = false;
    for (NodeId c = 0; c < slots; ++c) {
      if (best[c].u == kInvalidNode) continue;
      NodeId a = find(best[c].u);
      NodeId b = find(best[c].v);
      if (a == b) continue;
      if (a < b) std::swap(a, b);
      parent[a] = b;
      out.scalar += static_cast<double>(best[c].w);
      merged = true;
    }
    driver.charge_stream(slots, 2.0);
    if (!merged) {
      if (config.collect_trace) {
        out.trace.push_back({out.iterations, driver.stats()});
      }
      break;
    }
    std::vector<NodeId> changed;
    for (NodeId s = 0; s < slots; ++s) comp[s] = find(s);
    driver.confluence_labels(comp, &changed, /*take_max=*/false);
    driver.charge_stream(slots, 2.0);
    if (config.collect_trace) out.trace.push_back({out.iterations, driver.stats()});
  }

  out.stats = driver.stats();
  out.sim_seconds = driver.seconds();
  return out;
}

}  // namespace

RunOutput run_algorithm(Algorithm alg, const Csr& graph,
                        const RunConfig& config) {
  switch (alg) {
    case Algorithm::SSSP:
      return run_sssp(graph, config);
    case Algorithm::MST:
      return run_mst(graph, config);
    case Algorithm::SCC:
      return run_scc(graph, config);
    case Algorithm::PR:
      return run_pagerank(graph, config);
    case Algorithm::BC:
      return run_bc(graph, config);
  }
  GRAFFIX_CHECK(false, "unknown algorithm");
  return {};
}

const char* validate_run_config(Algorithm alg, const Csr& graph,
                                const RunConfig& config) {
  const NodeId slots = graph.num_slots();
  if (!config.warp_order.empty() && config.warp_order.size() != slots) {
    return "warp_order size does not match graph slots";
  }
  if (config.max_iterations == 0) return "max_iterations must be >= 1";
  switch (alg) {
    case Algorithm::SSSP:
      if (config.sssp_source >= slots) return "sssp source out of range";
      if (graph.is_hole(config.sssp_source)) return "sssp source is a hole slot";
      break;
    case Algorithm::BC:
      for (const NodeId s : config.bc_sources) {
        if (s >= slots) return "bc source out of range";
        if (graph.is_hole(s)) return "bc source is a hole slot";
      }
      if (config.bc_sources.empty() && config.bc_sample_count == 0) {
        return "bc_sample_count must be >= 1 when no sources are given";
      }
      break;
    case Algorithm::PR:
      if (!(config.pr_damping > 0.0 && config.pr_damping < 1.0)) {
        return "pr_damping must lie in (0, 1)";
      }
      if (config.pr_max_iterations == 0) return "pr_max_iterations must be >= 1";
      break;
    case Algorithm::MST:
    case Algorithm::SCC:
      break;
  }
  return nullptr;
}

}  // namespace graffix::core
