// Simulated-device algorithm runners: the five paper algorithms (SSSP,
// MST, SCC, PR, BC) expressed as iterative vertex-centric sweeps on the
// SIMT engine, parameterized by a baseline execution strategy and the
// optional Graffix transform artifacts (warp order, replica map, cluster
// schedule).
//
// One runner invocation produces BOTH the functional output (attribute
// values on the input graph, whatever graph that is — original for exact
// runs, transformed for approximate runs) and the simulated execution
// time derived from the engine's stats. Accuracy and speedup are
// computed by the caller from two invocations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "baselines/strategy.hpp"
#include "graph/csr.hpp"
#include "sim/config.hpp"
#include "sim/stats.hpp"
#include "transform/confluence.hpp"
#include "transform/latency.hpp"

namespace graffix::core {

enum class Algorithm { SSSP, MST, SCC, PR, BC };

[[nodiscard]] const char* algorithm_name(Algorithm alg);
[[nodiscard]] std::vector<Algorithm> all_algorithms();  // paper row order

struct RunConfig {
  sim::SimConfig sim;
  baselines::BaselineId baseline = baselines::BaselineId::TopologyDriven;

  /// Processing order of slots (divergence transform); empty = id order.
  std::span<const NodeId> warp_order = {};
  /// Replica groups to merge after every sweep (coalescing transform).
  const transform::ReplicaMap* replicas = nullptr;
  /// Shared-memory cluster schedule (latency transform).
  const transform::ClusterSchedule* clusters = nullptr;

  std::uint32_t max_iterations = 100000;
  /// Relative change below which a confluence merge does not re-activate
  /// a vertex. Mean-merges approach their joint fixpoint geometrically;
  /// chasing them to machine precision would add ~30 no-progress
  /// iterations per replica pair.
  double confluence_epsilon = 1e-4;
  /// Merge replica attributes every N iterations (paper default: every
  /// iteration; the end-of-run alternative §2.4 mentions is modeled by a
  /// large value — a final merge always runs before results are read).
  std::uint32_t confluence_every = 1;
  /// Record a TracePoint per iteration (see RunOutput::trace).
  bool collect_trace = false;
  /// SSSP source (slot id in the input graph).
  NodeId sssp_source = 0;
  /// BC sources (slot ids); empty = runner samples bc_sample_count.
  std::span<const NodeId> bc_sources = {};
  std::uint32_t bc_sample_count = 8;
  /// PR settings (mirrors the host reference).
  double pr_damping = 0.85;
  double pr_tolerance = 1e-6;
  std::uint32_t pr_max_iterations = 60;
  /// Pull-mode PR: each vertex gathers from its in-neighbors (the
  /// transpose graph) instead of scattering to out-neighbors. Same
  /// fixpoint, no atomics, different access pattern — the classic GPU
  /// push-vs-pull ablation (bench_ablation_pr_pull).
  bool pr_pull = false;
  std::uint64_t seed = 42;
};

/// One point of a run trace: cumulative engine stats at the end of an
/// iteration (SSSP/PR/MST round, SCC coloring round, BC source).
struct TracePoint {
  std::uint32_t iteration = 0;
  sim::KernelStats stats;
};

struct RunOutput {
  /// Per-slot attribute: SSSP distance, PR rank, BC centrality. Empty for
  /// SCC and MST.
  std::vector<double> attr;
  /// SCC: component count. MST: forest weight. 0 otherwise.
  double scalar = 0.0;
  sim::KernelStats stats;
  double sim_seconds = 0.0;
  std::uint32_t iterations = 0;
  /// Filled when RunConfig::collect_trace is set.
  std::vector<TracePoint> trace;
};

/// Runs `alg` on `graph` under `config`.
[[nodiscard]] RunOutput run_algorithm(Algorithm alg, const Csr& graph,
                                      const RunConfig& config);

/// Preflight for run_algorithm: returns nullptr when `config` is runnable
/// on `graph`, else a static string describing the first problem. The
/// runners GRAFFIX_CHECK-abort on bad sources and malformed knobs — fine
/// for a bench binary, fatal for the serve daemon, which validates here
/// first and maps failures to typed error responses.
[[nodiscard]] const char* validate_run_config(Algorithm alg, const Csr& graph,
                                              const RunConfig& config);

}  // namespace graffix::core
