// Execution-strategy emulations of the paper's three exact baselines
// (see DESIGN.md §2 substitutions):
//
//   Baseline-I  (LonestarGPU family): topology-driven — every vertex is
//               processed every iteration; plain CSR edge loads.
//   Tigr        : data-driven, virtual node splitting (each work item
//               covers at most split_bound edges) and edge-array
//               coalescing (ideal edge loads). These are exactly the two
//               optimizations the paper credits for Graffix's smaller
//               headroom over Tigr in Tables 9/11.
//   Gunrock     : data-driven frontiers with an explicit filter kernel
//               charged per compaction.
//
// A strategy turns the current active set into the warp-shaped work list
// the SIMT engine executes, and declares its edge-load mode and
// per-iteration auxiliary cost.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "sim/engine.hpp"
#include "sim/work.hpp"

namespace graffix::baselines {

enum class BaselineId {
  TopologyDriven,  // Baseline-I
  TigrLike,        // Baseline-II
  GunrockLike,     // Baseline-III
};

[[nodiscard]] const char* baseline_name(BaselineId id);

class Strategy {
 public:
  virtual ~Strategy() = default;

  [[nodiscard]] virtual BaselineId id() const = 0;
  [[nodiscard]] const char* name() const { return baseline_name(id()); }

  /// Whether sweeps should be restricted to the frontier of updated
  /// vertices (data-driven) or run over all vertices (topology-driven).
  [[nodiscard]] virtual bool data_driven() const = 0;

  [[nodiscard]] virtual sim::EdgeLoadMode edge_load_mode() const = 0;

  /// Builds the work list for one sweep. `active` lists the slots to
  /// process, already in the desired processing order (the divergence
  /// transform's warp order is applied by the runner before this call).
  virtual void make_work(const Csr& graph, std::span<const NodeId> active,
                         std::vector<sim::WorkItem>& out) const = 0;

  /// Whether make_work is a pure function of (graph, active): if so, the
  /// work list for a fixed slot list never changes across iterations and
  /// runners may build it once and reuse it (the Driver caches the
  /// layout for the invariant warp-order list, so topology-driven sweeps
  /// stop paying O(n) construction per iteration). A strategy whose
  /// decomposition depends on mutable per-iteration state (adaptive
  /// load balancing, degree-feedback splitting) must return false.
  [[nodiscard]] virtual bool work_is_slot_invariant() const = 0;

  /// Auxiliary per-sweep cost in "uniform kernel items" (e.g. Gunrock's
  /// filter touches every active element once).
  [[nodiscard]] virtual std::uint64_t aux_items_per_sweep(
      std::size_t active_count) const = 0;
};

[[nodiscard]] std::unique_ptr<Strategy> make_strategy(BaselineId id);

/// All three baselines in paper order (Tables 2, 3, 4).
[[nodiscard]] std::vector<BaselineId> all_baselines();

}  // namespace graffix::baselines
