#include "baselines/strategy.hpp"

#include "util/macros.hpp"

namespace graffix::baselines {

const char* baseline_name(BaselineId id) {
  switch (id) {
    case BaselineId::TopologyDriven:
      return "Baseline-I";
    case BaselineId::TigrLike:
      return "Tigr";
    case BaselineId::GunrockLike:
      return "Gunrock";
  }
  return "?";
}

namespace {

class TopologyDriven final : public Strategy {
 public:
  [[nodiscard]] BaselineId id() const override {
    return BaselineId::TopologyDriven;
  }
  [[nodiscard]] bool data_driven() const override { return false; }
  [[nodiscard]] sim::EdgeLoadMode edge_load_mode() const override {
    return sim::EdgeLoadMode::Csr;
  }
  void make_work(const Csr& graph, std::span<const NodeId> active,
                 std::vector<sim::WorkItem>& out) const override {
    out.clear();
    out.reserve(active.size());
    for (NodeId s : active) {
      out.push_back({s, graph.edge_begin(s), graph.degree(s)});
    }
  }
  // One item per listed slot, straight from the CSR: pure in (graph,
  // active), so the all-vertices layout is cacheable across iterations.
  [[nodiscard]] bool work_is_slot_invariant() const override { return true; }
  [[nodiscard]] std::uint64_t aux_items_per_sweep(std::size_t) const override {
    return 0;
  }
};

class TigrLike final : public Strategy {
 public:
  /// Tigr's virtual-node bound: no physical vertex presents more than
  /// this many edges to one lane.
  static constexpr NodeId kSplitBound = 32;

  [[nodiscard]] BaselineId id() const override { return BaselineId::TigrLike; }
  [[nodiscard]] bool data_driven() const override { return true; }
  [[nodiscard]] sim::EdgeLoadMode edge_load_mode() const override {
    return sim::EdgeLoadMode::IdealWarpPacked;
  }
  void make_work(const Csr& graph, std::span<const NodeId> active,
                 std::vector<sim::WorkItem>& out) const override {
    out.clear();
    out.reserve(active.size());
    for (NodeId s : active) {
      const EdgeId begin = graph.edge_begin(s);
      const NodeId degree = graph.degree(s);
      for (NodeId off = 0; off < degree; off += kSplitBound) {
        out.push_back({s, begin + off, std::min(kSplitBound, degree - off)});
      }
      if (degree == 0) out.push_back({s, begin, 0});
    }
  }
  // The virtual-node split depends only on each slot's degree, which is
  // fixed for a given graph — still pure in (graph, active).
  [[nodiscard]] bool work_is_slot_invariant() const override { return true; }
  [[nodiscard]] std::uint64_t aux_items_per_sweep(
      std::size_t active_count) const override {
    // Virtual-to-physical bookkeeping touches each active vertex once.
    return active_count;
  }
};

class GunrockLike final : public Strategy {
 public:
  [[nodiscard]] BaselineId id() const override {
    return BaselineId::GunrockLike;
  }
  [[nodiscard]] bool data_driven() const override { return true; }
  [[nodiscard]] sim::EdgeLoadMode edge_load_mode() const override {
    return sim::EdgeLoadMode::Csr;
  }
  void make_work(const Csr& graph, std::span<const NodeId> active,
                 std::vector<sim::WorkItem>& out) const override {
    out.clear();
    out.reserve(active.size());
    for (NodeId s : active) {
      out.push_back({s, graph.edge_begin(s), graph.degree(s)});
    }
  }
  // Same per-vertex decomposition as Baseline-I; the frontier filter is
  // charged via aux_items_per_sweep, not encoded in the work list.
  [[nodiscard]] bool work_is_slot_invariant() const override { return true; }
  [[nodiscard]] std::uint64_t aux_items_per_sweep(
      std::size_t active_count) const override {
    // Advance + filter: frontier compaction reads and writes each active
    // element (Gunrock's filter operator).
    return 2 * active_count;
  }
};

}  // namespace

std::unique_ptr<Strategy> make_strategy(BaselineId id) {
  switch (id) {
    case BaselineId::TopologyDriven:
      return std::make_unique<TopologyDriven>();
    case BaselineId::TigrLike:
      return std::make_unique<TigrLike>();
    case BaselineId::GunrockLike:
      return std::make_unique<GunrockLike>();
  }
  GRAFFIX_CHECK(false, "unknown baseline");
  return nullptr;
}

std::vector<BaselineId> all_baselines() {
  return {BaselineId::TopologyDriven, BaselineId::TigrLike,
          BaselineId::GunrockLike};
}

}  // namespace graffix::baselines
