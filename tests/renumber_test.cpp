// Renumbering (Algorithm 2, step 1) tests: bijection onto non-hole
// slots, chunk-aligned level starts, hole-count bound, isomorphism of the
// applied renumbering, and the paper's Figure 1 -> Figure 2 walkthrough.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "algorithms/sssp.hpp"
#include "gen/rmat.hpp"
#include "gen/road_grid.hpp"
#include "graph/builder.hpp"
#include "graph/validate.hpp"
#include "transform/renumber.hpp"

namespace graffix::transform {
namespace {

/// A 20-node graph consistent with the paper's Figure 1/2 walkthrough:
/// BFS from 0 visits {0,4,5,6,7,8,13,14,15,17}; BFS from 1 covers
/// {1,10,12,18} and lowers 15, 17 to level 1; BFS from 2 covers
/// {2,11,19}; 3, 9 and 16 are their own roots. Final levels: {0,1,2,3,9,
/// 16} at level 0, everything else at level 1.
Csr figure1_graph() {
  GraphBuilder b(20);
  const std::pair<int, int> edges[] = {
      {0, 4},  {0, 5},  {0, 6},  {0, 7},  {0, 8},  {0, 13}, {0, 14},
      {1, 0},  {1, 10}, {1, 12}, {1, 15}, {1, 17}, {1, 18},
      {2, 0},  {2, 11}, {2, 19},
      {3, 19},
      {4, 5},  {6, 17}, {7, 15},
      {9, 8},  {16, 2},
  };
  for (auto [u, v] : edges) {
    b.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return b.build();
}

Csr small_rmat(std::uint32_t scale = 9) {
  RmatParams p;
  p.scale = scale;
  p.edge_factor = 8;
  return generate_rmat(p);
}

class RenumberParam : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RenumberParam, BijectionOntoNonHoleSlots) {
  const std::uint32_t k = GetParam();
  Csr g = small_rmat();
  const RenumberResult r = renumber_bfs_forest(g, k);
  ASSERT_EQ(r.slot_of_node.size(), g.num_nodes());
  std::set<NodeId> used;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const NodeId s = r.slot_of_node[v];
    ASSERT_LT(s, r.num_slots);
    ASSERT_TRUE(used.insert(s).second) << "slot " << s << " reused";
    ASSERT_EQ(r.node_of_slot[s], v);
  }
  // Slots not used are holes.
  for (NodeId s = 0; s < r.num_slots; ++s) {
    EXPECT_EQ(used.count(s) == 0, r.is_hole_slot(s));
  }
  EXPECT_EQ(r.hole_count(), r.num_slots - g.num_nodes());
}

TEST_P(RenumberParam, LevelStartsAreChunkMultiples) {
  const std::uint32_t k = GetParam();
  const RenumberResult r = renumber_bfs_forest(small_rmat(), k);
  for (NodeId start : r.level_start) {
    EXPECT_EQ(start % k, 0u) << "level start " << start;
  }
  EXPECT_EQ(r.num_slots % k, 0u);
}

TEST_P(RenumberParam, PerLevelHoleCountBelowK) {
  const std::uint32_t k = GetParam();
  const RenumberResult r = renumber_bfs_forest(small_rmat(), k);
  // Holes only pad the tail of each level: fewer than k per level.
  std::vector<NodeId> holes_per_level(r.num_levels(), 0);
  for (NodeId s = 0; s < r.num_slots; ++s) {
    if (r.is_hole_slot(s)) holes_per_level[r.level_of_slot[s]]++;
  }
  for (NodeId lvl = 0; lvl < r.num_levels(); ++lvl) {
    EXPECT_LT(holes_per_level[lvl], k) << "level " << lvl;
  }
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, RenumberParam,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u));

TEST(Renumber, ChunkOneCreatesNoHoles) {
  const RenumberResult r = renumber_bfs_forest(small_rmat(), 1);
  EXPECT_EQ(r.hole_count(), 0u);
}

TEST(Renumber, LevelsAreMonotoneInSlots) {
  const RenumberResult r = renumber_bfs_forest(small_rmat(), 16);
  for (NodeId s = 1; s < r.num_slots; ++s) {
    EXPECT_GE(r.level_of_slot[s], r.level_of_slot[s - 1]);
  }
}

TEST(Renumber, HighestDegreeNodeGetsSlotZero) {
  Csr g = figure1_graph();
  const RenumberResult r = renumber_bfs_forest(g, 8);
  // Node 0 has out-degree 7, the maximum.
  EXPECT_EQ(r.slot_of_node[0], 0u);
  EXPECT_EQ(r.level_of_slot[0], 0u);
}

TEST(Renumber, Figure1LevelStructure) {
  // Paper walkthrough: vertices {0,1,2,3,9,16} end at level 0, all others
  // at level 1 (BFS from 1 lowers 15 and 17 to level 1).
  Csr g = figure1_graph();
  const RenumberResult r = renumber_bfs_forest(g, 8);
  ASSERT_EQ(r.num_levels(), 2u);
  const std::set<NodeId> level0{0, 1, 2, 3, 9, 16};
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const NodeId lvl = r.level_of_slot[r.slot_of_node[v]];
    EXPECT_EQ(lvl, level0.count(v) ? 0u : 1u) << "node " << v;
  }
  // 6 roots at level 0 with k=8 -> level 1 starts at slot 8; 14 level-1
  // nodes -> 22 ids, padded to 24 slots with holes at 6,7,22,23 (Fig. 3).
  ASSERT_EQ(r.level_start.size(), 2u);
  EXPECT_EQ(r.level_start[1], 8u);
  EXPECT_EQ(r.num_slots, 24u);
  EXPECT_TRUE(r.is_hole_slot(6));
  EXPECT_TRUE(r.is_hole_slot(7));
  EXPECT_TRUE(r.is_hole_slot(22));
  EXPECT_TRUE(r.is_hole_slot(23));
  EXPECT_EQ(r.hole_count(), 4u);
}

TEST(Renumber, AppliedGraphIsValidIsomorph) {
  Csr g = small_rmat();
  const RenumberResult r = renumber_bfs_forest(g, 16);
  Csr rg = apply_renumbering(g, r);
  EXPECT_TRUE(validate_graph(rg).ok);
  EXPECT_EQ(rg.num_nodes(), g.num_nodes());
  EXPECT_EQ(rg.num_edges(), g.num_edges());
  // Per-node degree preserved under the permutation.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(rg.degree(r.slot_of_node[v]), g.degree(v));
  }
}

TEST(Renumber, SsspInvariantUnderIsomorphism) {
  // Exactness property: distances on the renumbered graph equal the
  // original distances modulo the permutation.
  RmatParams p;
  p.scale = 8;
  p.edge_factor = 8;
  Csr g = generate_rmat(p);
  const RenumberResult r = renumber_bfs_forest(g, 16);
  Csr rg = apply_renumbering(g, r);

  const NodeId source = 0;
  const auto d_orig = sssp_dijkstra(g, source);
  const auto d_new = sssp_dijkstra(rg, r.slot_of_node[source]);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(d_orig[v], d_new[r.slot_of_node[v]]) << "node " << v;
  }
}

TEST(Renumber, WeightsFollowEdges) {
  GraphBuilder b(4);
  b.set_weighted(true);
  b.add_edge(0, 1, 5.0f);
  b.add_edge(0, 2, 6.0f);
  b.add_edge(1, 3, 7.0f);
  Csr g = b.build();
  const RenumberResult r = renumber_bfs_forest(g, 4);
  Csr rg = apply_renumbering(g, r);
  // Edge 1->3 must keep weight 7 wherever it landed.
  const NodeId s1 = r.slot_of_node[1];
  const NodeId s3 = r.slot_of_node[3];
  const auto nbrs = rg.neighbors(s1);
  const auto wts = rg.edge_weights(s1);
  bool found = false;
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (nbrs[i] == s3) {
      EXPECT_FLOAT_EQ(wts[i], 7.0f);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Renumber, RoadGridLevelsAreBfsRings) {
  RoadGridParams p;
  p.width = 8;
  p.height = 8;
  p.removal_fraction = 0.0;
  p.diagonal_fraction = 0.0;
  Csr g = generate_road_grid(p);
  const RenumberResult r = renumber_bfs_forest(g, 16);
  // Lattice BFS from one root: many levels (ring structure).
  EXPECT_GE(r.num_levels(), 7u);
}

TEST(Renumber, SingleNodeGraph) {
  GraphBuilder b(1);
  Csr g = b.build();
  const RenumberResult r = renumber_bfs_forest(g, 16);
  EXPECT_EQ(r.num_slots, 16u);
  EXPECT_EQ(r.slot_of_node[0], 0u);
  EXPECT_EQ(r.hole_count(), 15u);
}

}  // namespace
}  // namespace graffix::transform
