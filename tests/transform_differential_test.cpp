// Differential tests for the batched greedy phases (DESIGN.md §7,
// "batched greedy phases"): the conflict-free round-based execution of
// the latency scenario-1/2 insertion and the replication candidate
// application must be BYTE-IDENTICAL to the serial reference oracle
// (GRAFFIX_SERIAL_TRANSFORMS) on every Table-1 generator graph, at every
// thread count. This is the acceptance gate for the ISSUE-4 tentpole:
// the batching is an execution strategy, never a semantic change.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gen/suite.hpp"
#include "graph/csr.hpp"
#include "transform/batch.hpp"
#include "transform/latency.hpp"
#include "transform/renumber.hpp"
#include "transform/replicate.hpp"
#include "util/parallel.hpp"

namespace graffix::transform {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};
constexpr std::uint32_t kScale = 10;
constexpr std::uint64_t kSeed = 7;

/// Pins the worker pool, runs fn, restores the hardware default.
template <typename Fn>
auto at_threads(int t, Fn&& fn) {
  set_num_threads(t);
  auto result = fn();
  set_num_threads(0);
  return result;
}

void expect_same_csr(const Csr& a, const Csr& b, const std::string& what) {
  ASSERT_EQ(a.num_slots(), b.num_slots()) << what;
  ASSERT_EQ(a.num_edges(), b.num_edges()) << what;
  EXPECT_TRUE(std::equal(a.offsets().begin(), a.offsets().end(),
                         b.offsets().begin()))
      << what << ": offsets differ";
  EXPECT_TRUE(std::equal(a.targets().begin(), a.targets().end(),
                         b.targets().begin()))
      << what << ": targets differ";
  ASSERT_EQ(a.has_weights(), b.has_weights()) << what;
  if (a.has_weights()) {
    EXPECT_TRUE(std::equal(a.weights().begin(), a.weights().end(),
                           b.weights().begin()))
        << what << ": weights differ";
  }
  ASSERT_EQ(a.has_holes(), b.has_holes()) << what;
  if (a.has_holes()) {
    EXPECT_TRUE(
        std::equal(a.holes().begin(), a.holes().end(), b.holes().begin()))
        << what << ": holes differ";
  }
}

// --- latency ---------------------------------------------------------

void expect_same_latency(const LatencyResult& oracle, const LatencyResult& got,
                         const std::string& what) {
  expect_same_csr(oracle.graph, got.graph, what);
  EXPECT_EQ(oracle.edges_added, got.edges_added) << what;
  EXPECT_EQ(oracle.schedule.resident, got.schedule.resident) << what;
  ASSERT_EQ(oracle.schedule.clusters.size(), got.schedule.clusters.size())
      << what;
  for (std::size_t c = 0; c < oracle.schedule.clusters.size(); ++c) {
    EXPECT_EQ(oracle.schedule.clusters[c].members,
              got.schedule.clusters[c].members)
        << what << " cluster " << c;
    EXPECT_EQ(oracle.schedule.clusters[c].inner_iterations,
              got.schedule.clusters[c].inner_iterations)
        << what << " cluster " << c;
  }
  EXPECT_DOUBLE_EQ(oracle.mean_cc_before, got.mean_cc_before) << what;
  EXPECT_DOUBLE_EQ(oracle.mean_cc_after, got.mean_cc_after) << what;
}

void run_latency_differential(const LatencyKnobs& knobs,
                              const char* knob_label) {
  std::uint64_t total_added = 0;
  std::uint64_t total_batched = 0;
  for (const SuiteEntry& entry : make_suite(kScale, kSeed)) {
    const LatencyResult oracle = [&] {
      ScopedSerialTransforms serial_mode(1);
      return at_threads(1, [&] { return latency_transform(entry.graph, knobs); });
    }();
    EXPECT_EQ(oracle.batching.rounds, 0u)
        << entry.name << ": oracle must not report batched rounds";
    ScopedSerialTransforms batched_mode(0);
    for (int t : kThreadCounts) {
      const LatencyResult got =
          at_threads(t, [&] { return latency_transform(entry.graph, knobs); });
      expect_same_latency(oracle, got,
                          std::string(knob_label) + " | " + entry.name +
                              " | threads=" + std::to_string(t));
      total_batched += got.batching.batched;
    }
    total_added += oracle.edges_added;
  }
  // Non-vacuity: the greedy phases must have inserted edges somewhere in
  // the suite AND the batched path must actually have batched work —
  // otherwise the equality above proves nothing.
  EXPECT_GT(total_added, 0u) << knob_label;
  EXPECT_GT(total_batched, 0u) << knob_label;
}

TEST(TransformDifferential, LatencyMatchesSerialOracleDefaultKnobs) {
  run_latency_differential(LatencyKnobs{}, "default");
}

TEST(TransformDifferential, LatencyMatchesSerialOracleAggressiveKnobs) {
  LatencyKnobs knobs;
  knobs.cc_threshold = 0.4;
  knobs.near_delta = 0.3;
  knobs.edge_budget_fraction = 0.1;
  run_latency_differential(knobs, "aggressive");
}

TEST(TransformDifferential, LatencyMatchesSerialOracleTightBudget) {
  // A budget small enough that the reservation logic's serial tail (the
  // budget-stop path of run_budgeted_rounds) engages on the dense
  // presets: the oracle's per-insertion budget break must be reproduced
  // exactly at the batch boundary.
  LatencyKnobs knobs;
  knobs.cc_threshold = 0.4;
  knobs.near_delta = 0.3;
  knobs.edge_budget_fraction = 0.002;
  run_latency_differential(knobs, "tight-budget");
}

// --- replication -----------------------------------------------------

void expect_same_replication(const ReplicationResult& oracle,
                             const ReplicationResult& got,
                             const std::string& what) {
  expect_same_csr(oracle.graph, got.graph, what);
  EXPECT_EQ(oracle.replicas.groups, got.replicas.groups) << what;
  EXPECT_EQ(oracle.replicas.group_of_slot, got.replicas.group_of_slot) << what;
  EXPECT_EQ(oracle.edges_moved, got.edges_moved) << what;
  EXPECT_EQ(oracle.edges_added, got.edges_added) << what;
  EXPECT_EQ(oracle.holes_total, got.holes_total) << what;
  EXPECT_EQ(oracle.holes_filled, got.holes_filled) << what;
}

void run_replication_differential(double threshold) {
  std::uint64_t total_filled = 0;
  std::uint64_t total_batched = 0;
  for (const SuiteEntry& entry : make_suite(kScale, kSeed)) {
    const RenumberResult renumber = renumber_bfs_forest(entry.graph, 16);
    const Csr renumbered = apply_renumbering(entry.graph, renumber);
    CoalescingKnobs knobs;
    knobs.connectedness_threshold = threshold;
    const ReplicationResult oracle = [&] {
      ScopedSerialTransforms serial_mode(1);
      return at_threads(
          1, [&] { return replicate_into_holes(renumbered, renumber, knobs); });
    }();
    ScopedSerialTransforms batched_mode(0);
    for (int t : kThreadCounts) {
      const ReplicationResult got = at_threads(
          t, [&] { return replicate_into_holes(renumbered, renumber, knobs); });
      expect_same_replication(oracle, got,
                              "thr=" + std::to_string(threshold) + " | " +
                                  entry.name +
                                  " | threads=" + std::to_string(t));
      total_batched += got.batching.batched;
    }
    total_filled += oracle.holes_filled;
  }
  EXPECT_GT(total_filled, 0u) << "threshold " << threshold;
  EXPECT_GT(total_batched, 0u) << "threshold " << threshold;
}

TEST(TransformDifferential, ReplicationMatchesSerialOracleThreshold06) {
  run_replication_differential(0.6);
}

TEST(TransformDifferential, ReplicationMatchesSerialOracleThreshold04) {
  run_replication_differential(0.4);
}

TEST(TransformDifferential, ReplicationMatchesSerialOracleThreshold03) {
  run_replication_differential(0.3);
}

}  // namespace
}  // namespace graffix::transform
