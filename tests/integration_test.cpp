// End-to-end integration tests exercising the whole stack the way the
// paper's headline evaluation does: generate a suite graph, apply each
// technique at paper-default knobs, run algorithms on the simulator
// against each baseline, and check the qualitative contracts — speedups
// materialize through the intended mechanism (coalescing efficiency,
// shared fraction, SIMD efficiency) while inaccuracy stays bounded.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "graph/validate.hpp"

namespace graffix::core {
namespace {

ExperimentConfig base_config(Technique technique) {
  ExperimentConfig config;
  config.scale = 10;
  config.technique = technique;
  config.bc_sources = 2;
  return config;
}

TEST(Integration, CoalescingImprovesCoalescingEfficiency) {
  const auto suite = make_suite(10);
  const ExperimentConfig config =
      resolve_for_graph(base_config(Technique::Coalescing), suite[0].preset);
  Pipeline pipeline(suite[0].graph);
  apply_technique(pipeline, config);
  EXPECT_TRUE(validate_graph(pipeline.current()).ok);

  RunConfig rc;
  const auto exact = pipeline.run_exact(Algorithm::PR, rc);
  const auto approx = pipeline.run(Algorithm::PR, rc);
  // Renumbering + replication must reduce the gather traffic needed per
  // unit of useful work (iteration counts differ, so compare per lane).
  EXPECT_LT(approx.stats.gather_transactions_per_lane(),
            exact.stats.gather_transactions_per_lane());
}

TEST(Integration, LatencyTechniqueMovesTrafficToSharedMemory) {
  const auto suite = make_suite(10);
  const ExperimentConfig config =
      resolve_for_graph(base_config(Technique::Latency), suite[0].preset);
  Pipeline pipeline(suite[0].graph);
  apply_technique(pipeline, config);
  const auto approx = pipeline.run(Algorithm::PR, {});
  const auto exact = pipeline.run_exact(Algorithm::PR, {});
  EXPECT_GT(approx.stats.shared_fraction(), exact.stats.shared_fraction());
}

TEST(Integration, DivergenceTechniqueRaisesSimdEfficiency) {
  const auto suite = make_suite(10);
  const ExperimentConfig config =
      resolve_for_graph(base_config(Technique::Divergence), suite[0].preset);
  Pipeline pipeline(suite[0].graph);
  apply_technique(pipeline, config);
  const auto approx = pipeline.run(Algorithm::PR, {});
  const auto exact = pipeline.run_exact(Algorithm::PR, {});
  EXPECT_GT(approx.stats.simd_efficiency(), exact.stats.simd_efficiency());
}

class TechniqueIntegration : public ::testing::TestWithParam<Technique> {};

TEST_P(TechniqueIntegration, InaccuracyBoundedOnRmat) {
  const auto suite = make_suite(9);
  ExperimentConfig config = base_config(GetParam());
  config.scale = 9;
  config.algorithms = {Algorithm::SSSP, Algorithm::PR};
  const auto rows = run_graph(suite[0], config);
  for (const auto& row : rows) {
    // The paper's worst cell is 19%; allow slack for the small scale.
    EXPECT_LT(row.inaccuracy_pct, 40.0)
        << algorithm_name(row.algorithm);
  }
}

TEST_P(TechniqueIntegration, SpeedupWithinPlausibleBand) {
  const auto suite = make_suite(9);
  ExperimentConfig config = base_config(GetParam());
  config.scale = 9;
  config.algorithms = {Algorithm::PR};
  const auto rows = run_graph(suite[0], config);
  for (const auto& row : rows) {
    EXPECT_GT(row.speedup, 0.5);
    EXPECT_LT(row.speedup, 5.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTechniques, TechniqueIntegration,
                         ::testing::Values(Technique::Coalescing,
                                           Technique::Latency,
                                           Technique::Divergence));

TEST(Integration, FullSweepAcrossBaselinesRuns) {
  // Smoke: every baseline completes every algorithm on a small rmat.
  const auto suite = make_suite(8);
  for (auto baseline : baselines::all_baselines()) {
    ExperimentConfig config = base_config(Technique::Divergence);
    config.scale = 8;
    config.baseline = baseline;
    config.algorithms = all_algorithms();
    const auto rows = run_graph(suite[0], config);
    EXPECT_EQ(rows.size(), 5u);
    for (const auto& row : rows) {
      EXPECT_GT(row.exact_seconds, 0.0)
          << baselines::baseline_name(baseline) << " "
          << algorithm_name(row.algorithm);
    }
  }
}

TEST(Integration, TigrIsFasterThanTopologyDriven) {
  // Table 2 vs Table 3 shape: Tigr's exact times beat Baseline-I.
  const auto suite = make_suite(10);
  ExperimentConfig config = base_config(Technique::None);
  config.algorithms = {Algorithm::SSSP};
  Pipeline pipeline(suite[0].graph);
  RunConfig topo;
  topo.baseline = baselines::BaselineId::TopologyDriven;
  RunConfig tigr;
  tigr.baseline = baselines::BaselineId::TigrLike;
  const auto a = pipeline.run_exact(Algorithm::SSSP, topo);
  const auto b = pipeline.run_exact(Algorithm::SSSP, tigr);
  EXPECT_LT(b.sim_seconds, a.sim_seconds);
}

TEST(Integration, RoadNetworkPunishesTopologyDriven) {
  // The USA-road row of Tables 2/4: topology-driven SSSP pays the full
  // diameter in all-vertex sweeps; data-driven frontiers do not.
  const auto suite = make_suite(10);
  Pipeline pipeline(suite[3].graph);  // USA-road
  RunConfig topo;
  topo.baseline = baselines::BaselineId::TopologyDriven;
  RunConfig gunrock;
  gunrock.baseline = baselines::BaselineId::GunrockLike;
  const auto a = pipeline.run_exact(Algorithm::SSSP, topo);
  const auto b = pipeline.run_exact(Algorithm::SSSP, gunrock);
  EXPECT_GT(a.sim_seconds / b.sim_seconds, 2.0);
}

}  // namespace
}  // namespace graffix::core
