// Generator tests: determinism, size contracts, degree-distribution
// regimes (R-MAT skew vs ER uniformity vs road-grid flatness), and the
// Table 1 suite presets.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>

#include "gen/erdos_renyi.hpp"
#include "gen/permute.hpp"
#include "gen/rmat.hpp"
#include "gen/road_grid.hpp"
#include "gen/suite.hpp"
#include "graph/builder.hpp"
#include "graph/properties.hpp"
#include "graph/validate.hpp"

namespace graffix {
namespace {

TEST(Rmat, SizeContract) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  Csr g = generate_rmat(p);
  EXPECT_EQ(g.num_nodes(), 1u << 10);
  // Self loops are dropped, so slightly fewer edges than requested.
  EXPECT_LE(g.num_edges(), 8u << 10);
  EXPECT_GE(g.num_edges(), (8u << 10) * 9 / 10);
  EXPECT_TRUE(validate_graph(g).ok);
}

TEST(Rmat, Deterministic) {
  RmatParams p;
  p.scale = 9;
  Csr a = generate_rmat(p);
  Csr b = generate_rmat(p);
  EXPECT_EQ(std::vector<NodeId>(a.targets().begin(), a.targets().end()),
            std::vector<NodeId>(b.targets().begin(), b.targets().end()));
}

TEST(Rmat, SeedChangesGraph) {
  RmatParams p;
  p.scale = 9;
  Csr a = generate_rmat(p);
  p.seed ^= 0x1234;
  Csr b = generate_rmat(p);
  EXPECT_NE(std::vector<NodeId>(a.targets().begin(), a.targets().end()),
            std::vector<NodeId>(b.targets().begin(), b.targets().end()));
}

TEST(Rmat, SkewedDegreeDistribution) {
  RmatParams p;
  p.scale = 12;
  p.edge_factor = 16;
  Csr g = generate_rmat(p);
  const DegreeStats stats = degree_stats(g);
  // Power-law-ish: max degree far above the mean.
  EXPECT_GT(stats.max, 8 * stats.mean);
  EXPECT_GT(stats.stddev, stats.mean);
}

TEST(Rmat, WeightsInRange) {
  RmatParams p;
  p.scale = 8;
  p.max_weight = 10.0f;
  Csr g = generate_rmat(p);
  ASSERT_TRUE(g.has_weights());
  for (Weight w : g.weights()) {
    ASSERT_GE(w, 1.0f);
    ASSERT_LE(w, 10.0f);
  }
}

TEST(ErdosRenyi, NearUniformDegrees) {
  ErdosRenyiParams p;
  p.scale = 12;
  p.edge_factor = 16;
  Csr g = generate_erdos_renyi(p);
  const DegreeStats stats = degree_stats(g);
  // Poisson(16): stddev ~ 4, max well below R-MAT hubs.
  EXPECT_LT(stats.stddev, stats.mean);
  EXPECT_LT(stats.max, 5 * stats.mean);
  EXPECT_TRUE(validate_graph(g).ok);
}

TEST(ErdosRenyi, Deterministic) {
  ErdosRenyiParams p;
  p.scale = 9;
  Csr a = generate_erdos_renyi(p);
  Csr b = generate_erdos_renyi(p);
  EXPECT_EQ(std::vector<NodeId>(a.targets().begin(), a.targets().end()),
            std::vector<NodeId>(b.targets().begin(), b.targets().end()));
}

TEST(RoadGrid, SizeAndDegrees) {
  RoadGridParams p;
  p.width = 32;
  p.height = 32;
  Csr g = generate_road_grid(p);
  EXPECT_EQ(g.num_nodes(), 1024u);
  const DegreeStats stats = degree_stats(g);
  // Lattice: degrees small and tight.
  EXPECT_LE(stats.max, 8u);
  EXPECT_GE(stats.mean, 2.0);
  EXPECT_TRUE(validate_graph(g).ok);
}

TEST(RoadGrid, LargeDiameter) {
  RoadGridParams p;
  p.width = 48;
  p.height = 48;
  p.removal_fraction = 0.0;
  Csr g = generate_road_grid(p);
  // Manhattan-ish diameter ~ width + height.
  EXPECT_GE(pseudo_diameter(g), 48u);
}

TEST(RoadGrid, SymmetricEdges) {
  RoadGridParams p;
  p.width = 16;
  p.height = 16;
  Csr g = generate_road_grid(p);
  // Every arc has its reverse.
  for (NodeId u = 0; u < g.num_slots(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      const auto back = g.neighbors(v);
      ASSERT_TRUE(std::find(back.begin(), back.end(), u) != back.end())
          << u << "->" << v;
    }
  }
}

TEST(Suite, AllFivePresets) {
  const auto suite = make_suite(8);
  ASSERT_EQ(suite.size(), 5u);
  EXPECT_EQ(suite[0].name, "rmat26");
  EXPECT_EQ(suite[1].name, "random26");
  EXPECT_EQ(suite[2].name, "LiveJournal");
  EXPECT_EQ(suite[3].name, "USA-road");
  EXPECT_EQ(suite[4].name, "twitter");
  for (const auto& entry : suite) {
    EXPECT_GT(entry.graph.num_nodes(), 0u) << entry.name;
    EXPECT_GT(entry.graph.num_edges(), 0u) << entry.name;
    EXPECT_TRUE(validate_graph(entry.graph).ok) << entry.name;
  }
}

TEST(Suite, PowerLawClassification) {
  EXPECT_TRUE(preset_is_power_law(GraphPreset::Rmat26));
  EXPECT_TRUE(preset_is_power_law(GraphPreset::Twitter));
  EXPECT_FALSE(preset_is_power_law(GraphPreset::UsaRoad));
}

TEST(Suite, TwitterIsDensest) {
  const auto suite = make_suite(9);
  const double twitter_ef = static_cast<double>(suite[4].graph.num_edges()) /
                            suite[4].graph.num_nodes();
  const double rmat_ef = static_cast<double>(suite[0].graph.num_edges()) /
                         suite[0].graph.num_nodes();
  EXPECT_GT(twitter_ef, rmat_ef);
}

TEST(Suite, RoadHasLargestDiameter) {
  const auto suite = make_suite(10);
  const NodeId road_diameter = pseudo_diameter(suite[3].graph);
  const NodeId rmat_diameter = pseudo_diameter(suite[0].graph);
  EXPECT_GT(road_diameter, rmat_diameter);
}

TEST(Permute, IsAnIsomorphism) {
  RmatParams p;
  p.scale = 9;
  Csr g = generate_rmat(p);
  Csr permuted = permute_vertices(g, 5);
  EXPECT_EQ(permuted.num_nodes(), g.num_nodes());
  EXPECT_EQ(permuted.num_edges(), g.num_edges());
  EXPECT_TRUE(validate_graph(permuted).ok);
  // Degree multiset is preserved.
  std::vector<NodeId> d1, d2;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    d1.push_back(g.degree(v));
    d2.push_back(permuted.degree(v));
  }
  std::sort(d1.begin(), d1.end());
  std::sort(d2.begin(), d2.end());
  EXPECT_EQ(d1, d2);
}

TEST(Permute, DeterministicAndSeedSensitive) {
  RmatParams p;
  p.scale = 8;
  Csr g = generate_rmat(p);
  Csr a = permute_vertices(g, 5);
  Csr b = permute_vertices(g, 5);
  Csr c = permute_vertices(g, 6);
  EXPECT_EQ(std::vector<NodeId>(a.targets().begin(), a.targets().end()),
            std::vector<NodeId>(b.targets().begin(), b.targets().end()));
  EXPECT_NE(std::vector<NodeId>(a.targets().begin(), a.targets().end()),
            std::vector<NodeId>(c.targets().begin(), c.targets().end()));
}

TEST(Permute, ConsumingOverloadIsByteIdentical) {
  RmatParams p;
  p.scale = 9;
  Csr g = generate_rmat(p);
  const Csr ref = permute_vertices(g, 5);
  const Csr got = permute_vertices(std::move(g), 5);
  EXPECT_EQ(std::vector<EdgeId>(ref.offsets().begin(), ref.offsets().end()),
            std::vector<EdgeId>(got.offsets().begin(), got.offsets().end()));
  EXPECT_EQ(std::vector<NodeId>(ref.targets().begin(), ref.targets().end()),
            std::vector<NodeId>(got.targets().begin(), got.targets().end()));
  ASSERT_EQ(ref.has_weights(), got.has_weights());
  EXPECT_EQ(std::vector<Weight>(ref.weights().begin(), ref.weights().end()),
            std::vector<Weight>(got.weights().begin(), got.weights().end()));
}

TEST(Permute, WeightsFollowEdges) {
  GraphBuilder b(3);
  b.set_weighted(true);
  b.add_edge(0, 1, 2.5f);
  b.add_edge(1, 2, 7.5f);
  Csr g = b.build();
  Csr permuted = permute_vertices(g, 9);
  // Total weight is invariant.
  double before = 0, after = 0;
  for (Weight w : g.weights()) before += w;
  for (Weight w : permuted.weights()) after += w;
  EXPECT_DOUBLE_EQ(before, after);
}

TEST(Permute, DestroysArtificialLocality) {
  // R-MAT raw output clusters low ids; after permutation the mean
  // |u - v| gap across edges approaches the random expectation n/3.
  RmatParams p;
  p.scale = 12;
  Csr g = generate_rmat(p);
  Csr permuted = permute_vertices(g, 13);
  auto mean_gap = [](const Csr& graph) {
    double total = 0;
    for (NodeId u = 0; u < graph.num_slots(); ++u) {
      for (NodeId v : graph.neighbors(u)) {
        total += std::abs(static_cast<double>(u) - v);
      }
    }
    return total / graph.num_edges();
  };
  EXPECT_GT(mean_gap(permuted), mean_gap(g));
}

TEST(Suite, ScaleGrowsGraph) {
  Csr small = make_preset(GraphPreset::Rmat26, 8);
  Csr large = make_preset(GraphPreset::Rmat26, 10);
  EXPECT_GT(large.num_nodes(), small.num_nodes());
  EXPECT_GT(large.num_edges(), small.num_edges());
}

}  // namespace
}  // namespace graffix
