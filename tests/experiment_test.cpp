// Experiment grid tests: threshold auto-resolution (§5.2/§5.3/§5.4
// rules), per-cell speedup/inaccuracy production, exact tables, and
// preprocessing reports. Runs at tiny scale to stay fast.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace graffix::core {
namespace {

ExperimentConfig tiny_config(Technique technique) {
  ExperimentConfig config;
  config.scale = 8;
  config.technique = technique;
  config.bc_sources = 2;
  // Keep the suite small: SSSP + PR exercise both frontier and all-active
  // paths.
  config.algorithms = {Algorithm::SSSP, Algorithm::PR};
  return config;
}

TEST(Experiment, AutoThresholdsFollowPaperRules) {
  ExperimentConfig config;
  config.auto_thresholds = true;
  const auto power_law = resolve_for_graph(config, GraphPreset::Rmat26);
  EXPECT_DOUBLE_EQ(power_law.coalescing.connectedness_threshold, 0.6);
  const auto road = resolve_for_graph(config, GraphPreset::UsaRoad);
  EXPECT_DOUBLE_EQ(road.coalescing.connectedness_threshold, 0.4);
  EXPECT_LT(road.latency.cc_threshold, power_law.latency.cc_threshold);
}

TEST(Experiment, ManualThresholdsRespected) {
  ExperimentConfig config;
  config.auto_thresholds = false;
  config.coalescing.connectedness_threshold = 0.42;
  const auto resolved = resolve_for_graph(config, GraphPreset::Rmat26);
  EXPECT_DOUBLE_EQ(resolved.coalescing.connectedness_threshold, 0.42);
}

TEST(Experiment, RunGraphProducesOneRowPerAlgorithm) {
  const auto suite = make_suite(8);
  const auto rows = run_graph(suite[0], tiny_config(Technique::Divergence));
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& row : rows) {
    EXPECT_EQ(row.graph, "rmat26");
    EXPECT_GT(row.exact_seconds, 0.0);
    EXPECT_GT(row.approx_seconds, 0.0);
    EXPECT_GT(row.speedup, 0.0);
    EXPECT_GE(row.inaccuracy_pct, 0.0);
  }
}

TEST(Experiment, ExactTableHasNoApproxColumns) {
  ExperimentConfig config = tiny_config(Technique::None);
  config.algorithms = {Algorithm::PR};
  const auto rows = run_exact_table(config);
  ASSERT_EQ(rows.size(), 5u);  // five suite graphs
  for (const auto& row : rows) {
    EXPECT_GT(row.exact_seconds, 0.0);
    EXPECT_DOUBLE_EQ(row.approx_seconds, 0.0);
  }
}

TEST(Experiment, PreprocessingReportCoversSuite) {
  const auto reports = run_preprocessing(tiny_config(Technique::Coalescing));
  ASSERT_EQ(reports.size(), 5u);
  for (const auto& report : reports) {
    EXPECT_GE(report.seconds, 0.0);
    EXPECT_GE(report.extra_space_pct, 0.0);
  }
}

TEST(Experiment, SummarizeComputesGeomeans)
{
  std::vector<ExperimentRow> rows(2);
  rows[0].speedup = 1.0;
  rows[0].inaccuracy_pct = 4.0;
  rows[1].speedup = 4.0;
  rows[1].inaccuracy_pct = 9.0;
  const auto summary = summarize(rows);
  EXPECT_DOUBLE_EQ(summary.speedup, 2.0);
  EXPECT_DOUBLE_EQ(summary.inaccuracy_pct, 6.0);
}

TEST(Experiment, TableRowsGroupedByAlgorithm) {
  ExperimentConfig config = tiny_config(Technique::Divergence);
  config.algorithms = {Algorithm::SSSP, Algorithm::PR};
  const auto rows = run_table(config);
  ASSERT_EQ(rows.size(), 10u);  // 2 algorithms x 5 graphs
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(rows[i].algorithm, Algorithm::SSSP);
  }
  for (std::size_t i = 5; i < 10; ++i) {
    EXPECT_EQ(rows[i].algorithm, Algorithm::PR);
  }
}

TEST(Experiment, InaccuracyZeroWhenTechniqueAddsNothing) {
  // Divergence with threshold 0 only reorders: exact results.
  ExperimentConfig config = tiny_config(Technique::Divergence);
  config.auto_thresholds = false;
  config.divergence.degree_sim_threshold = 0.0;
  const auto suite = make_suite(8);
  const auto rows = run_graph(suite[1], config);  // random26
  for (const auto& row : rows) {
    EXPECT_NEAR(row.inaccuracy_pct, 0.0, 1e-6);
  }
}

}  // namespace
}  // namespace graffix::core
