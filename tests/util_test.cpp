// Unit tests for the util substrate: RNG determinism and distribution,
// prefix sums (serial vs parallel equivalence), atomic bitset semantics,
// and the parallel_for helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "util/arena.hpp"
#include "util/bitset.hpp"
#include "util/parallel.hpp"
#include "util/prefix_sum.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace graffix {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Pcg32, DeterministicAcrossInstances) {
  Pcg32 a(7, 3), b(7, 3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u32(), b.next_u32());
  }
}

TEST(Pcg32, BoundedStaysInRange) {
  Pcg32 rng(123);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_bounded(17), 17u);
  }
}

TEST(Pcg32, BoundedZeroAndOne) {
  Pcg32 rng(5);
  EXPECT_EQ(rng.next_bounded(0), 0u);
  EXPECT_EQ(rng.next_bounded(1), 0u);
}

TEST(Pcg32, DoubleInUnitInterval) {
  Pcg32 rng(99);
  double min = 1.0, max = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    min = std::min(min, x);
    max = std::max(max, x);
  }
  EXPECT_LT(min, 0.05);
  EXPECT_GT(max, 0.95);
}

TEST(Pcg32, FloatInUnitInterval) {
  Pcg32 rng(77);
  for (int i = 0; i < 10000; ++i) {
    const float x = rng.next_float();
    ASSERT_GE(x, 0.0f);
    ASSERT_LT(x, 1.0f);
  }
}

TEST(Pcg32, BoundedIsRoughlyUniform) {
  Pcg32 rng(2024);
  constexpr std::uint32_t kBuckets = 8;
  std::vector<int> counts(kBuckets, 0);
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) counts[rng.next_bounded(kBuckets)]++;
  for (std::uint32_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(MakeStream, IndependentStreams) {
  Pcg32 a = make_stream(42, 0);
  Pcg32 b = make_stream(42, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(MakeStream, Reproducible) {
  Pcg32 a = make_stream(7, 5);
  Pcg32 b = make_stream(7, 5);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(ExclusiveScan, InPlaceSmall) {
  std::vector<int> v{3, 1, 4, 1, 5};
  const int total = exclusive_scan_inplace(std::span<int>(v));
  EXPECT_EQ(total, 14);
  EXPECT_EQ(v, (std::vector<int>{0, 3, 4, 8, 9}));
}

TEST(ExclusiveScan, OutOfPlaceWithTotalSlot) {
  std::vector<int> in{2, 2, 2};
  std::vector<int> out(4, -1);
  const int total = exclusive_scan<int>(in, out);
  EXPECT_EQ(total, 6);
  EXPECT_EQ(out, (std::vector<int>{0, 2, 4, 6}));
}

TEST(ExclusiveScan, EmptyInput) {
  std::vector<int> v;
  EXPECT_EQ(exclusive_scan_inplace(std::span<int>(v)), 0);
}

TEST(ParallelScan, MatchesSerialOnLargeInput) {
  constexpr std::size_t n = 1 << 16;
  std::vector<std::uint64_t> a(n), b(n);
  Pcg32 rng(9);
  for (std::size_t i = 0; i < n; ++i) a[i] = b[i] = rng.next_bounded(100);
  const auto t1 = exclusive_scan_inplace(std::span<std::uint64_t>(a));
  const auto t2 = parallel_exclusive_scan_inplace(std::span<std::uint64_t>(b));
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(a, b);
}

TEST(AtomicBitset, SetReturnsTrueOnce) {
  AtomicBitset bits(100);
  EXPECT_TRUE(bits.set(7));
  EXPECT_FALSE(bits.set(7));
  EXPECT_TRUE(bits.test(7));
  EXPECT_FALSE(bits.test(8));
}

TEST(AtomicBitset, CountAndClear) {
  AtomicBitset bits(200);
  for (std::size_t i = 0; i < 200; i += 3) bits.set(i);
  EXPECT_EQ(bits.count(), 67u);
  bits.clear();
  EXPECT_EQ(bits.count(), 0u);
}

TEST(AtomicBitset, ConcurrentSetsCountEachBitOnce) {
  AtomicBitset bits(1 << 12);
  std::atomic<int> first_sets{0};
  parallel_for(0, 1 << 14, [&](int i) {
    if (bits.set(static_cast<std::size_t>(i) % (1 << 12))) {
      first_sets.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(first_sets.load(), 1 << 12);
  EXPECT_EQ(bits.count(), static_cast<std::size_t>(1 << 12));
}

TEST(SetNumThreads, ZeroRestoresHardwareDefault) {
  // Regression: set_num_threads(0) used to clear only the bookkeeping
  // override without calling omp_set_num_threads, so the OpenMP pool
  // stayed pinned at the last explicit count forever.
  const int hw = num_threads();
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3);
  EXPECT_EQ(omp_get_max_threads(), 3);
  set_num_threads(0);
  EXPECT_EQ(num_threads(), hw);
  EXPECT_EQ(omp_get_max_threads(), hw);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  constexpr int n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  std::atomic<bool> called{false};
  parallel_for(5, 5, [&](int) { called = true; });
  parallel_for(5, 3, [&](int) { called = true; });
  EXPECT_FALSE(called.load());
}

TEST(ParallelReduce, SumMatchesSerial) {
  constexpr int n = 5000;
  const double sum = parallel_reduce_sum(0, n, [](int i) { return double(i); });
  EXPECT_DOUBLE_EQ(sum, n * (n - 1) / 2.0);
}

TEST(ParallelReduce, MaxFindsMaximum) {
  std::vector<int> v(1000);
  Pcg32 rng(3);
  for (auto& x : v) x = static_cast<int>(rng.next_bounded(1000000));
  v[531] = 2000000;
  const int got =
      parallel_reduce_max(std::size_t{0}, v.size(), [&](std::size_t i) { return v[i]; });
  EXPECT_EQ(got, 2000000);
}

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer timer;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(timer.seconds(), 0.0);
  EXPECT_LT(timer.seconds(), 10.0);
}

TEST(ScopedAccumulator, AddsOnDestruction) {
  double total = 0.0;
  {
    ScopedAccumulator acc(total);
  }
  EXPECT_GE(total, 0.0);
}

TEST(Arena, AcquireIsAlignedAndRoundsToSizeClass) {
  ScratchArena arena;
  void* p = arena.acquire(100);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  // 100 bytes shares the minimum 256-byte class.
  EXPECT_EQ(arena.outstanding_bytes(), 256u);
  arena.release(p, 100);
  EXPECT_EQ(arena.outstanding_bytes(), 0u);
}

TEST(Arena, ZeroBytesIsNullAndNullReleaseIsNoop) {
  ScratchArena arena;
  EXPECT_EQ(arena.acquire(0), nullptr);
  arena.release(nullptr, 0);
  EXPECT_EQ(arena.outstanding_bytes(), 0u);
  EXPECT_EQ(arena.alloc_count(), 0u);
}

TEST(Arena, ReleaseParksBlockAndNextAcquireReusesIt) {
  ScratchArena arena;
  void* p = arena.acquire(1000);
  const std::size_t cls = arena.outstanding_bytes();  // 1024
  arena.release(p, 1000);
  EXPECT_EQ(arena.outstanding_bytes(), 0u);
  EXPECT_EQ(arena.pooled_bytes(), cls);
  void* q = arena.acquire(1000);
  EXPECT_EQ(q, p);  // served from the free list, not the system
  EXPECT_EQ(arena.reuse_count(), 1u);
  EXPECT_EQ(arena.alloc_count(), 1u);
  EXPECT_EQ(arena.pooled_bytes(), 0u);
  arena.release(q, 1000);
}

TEST(Arena, PeakTracksHighWaterAndResetRestartsFromOutstanding) {
  ScratchArena arena;
  void* a = arena.acquire(1 << 10);
  void* b = arena.acquire(1 << 12);
  const std::size_t high = arena.outstanding_bytes();
  arena.release(b, 1 << 12);
  EXPECT_EQ(arena.peak_bytes(), high);
  arena.reset_peak();
  EXPECT_EQ(arena.peak_bytes(), arena.outstanding_bytes());
  arena.release(a, 1 << 10);
}

TEST(Arena, TrimFreesPooledBlocksOnly) {
  ScratchArena arena;
  void* keep = arena.acquire(1 << 16);
  void* park = arena.acquire(1 << 16);
  arena.release(park, 1 << 16);
  EXPECT_GT(arena.pooled_bytes(), 0u);
  const std::size_t outstanding = arena.outstanding_bytes();
  arena.trim();
  EXPECT_EQ(arena.pooled_bytes(), 0u);
  EXPECT_EQ(arena.outstanding_bytes(), outstanding);
  arena.release(keep, 1 << 16);
}

TEST(ArenaBuffer, FillMoveAndRelease) {
  const std::size_t before = arena_outstanding_bytes();
  {
    ArenaBuffer<int> buf(16, 7);
    for (int v : buf) EXPECT_EQ(v, 7);
    EXPECT_GT(arena_outstanding_bytes(), before);
    ArenaBuffer<int> other(std::move(buf));
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_EQ(other.size(), 16u);
    EXPECT_EQ(other[15], 7);
  }
  // Destruction returned the block to the global pool.
  EXPECT_EQ(arena_outstanding_bytes(), before);
}

TEST(ArenaVector, WorksAsVectorAndRecyclesBacking) {
  {
    ArenaVector<int> v;
    v.assign(1000, 3);
    v.push_back(4);
    long long sum = 0;
    for (int x : v) sum += x;
    EXPECT_EQ(sum, 3004);
  }
  // The freed backing store is parked for the next ArenaVector.
  const std::uint64_t reuses_before = ScratchArena::global().reuse_count();
  {
    ArenaVector<int> v;
    v.assign(1000, 1);
  }
  EXPECT_GT(ScratchArena::global().reuse_count(), reuses_before);
}

TEST(ArenaTelemetry, RssCountersReportNonZero) {
  EXPECT_GT(peak_rss_bytes(), 0u);
  EXPECT_GT(current_rss_bytes(), 0u);
}

}  // namespace
}  // namespace graffix
