// CLI parsing and end-to-end subcommand tests (the `graffix` tool).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "cli_commands.hpp"
#include "graph/io.hpp"

namespace graffix::cli {
namespace {

Args make_args(std::vector<std::string> argv_strings) {
  std::vector<char*> argv;
  argv.reserve(argv_strings.size());
  for (auto& s : argv_strings) argv.push_back(s.data());
  return parse_args(static_cast<int>(argv.size()), argv.data());
}

TEST(CliArgs, ParsesCommandPositionalAndOptions) {
  const Args args = make_args({"graffix", "run", "g.bin", "--algorithm",
                               "pr", "--scale", "12", "-o", "out.bin"});
  EXPECT_EQ(args.command, "run");
  ASSERT_EQ(args.positional.size(), 1u);
  EXPECT_EQ(args.positional[0], "g.bin");
  EXPECT_EQ(args.get("algorithm", ""), "pr");
  EXPECT_EQ(args.get_int("scale", 0), 12);
  EXPECT_EQ(args.get("output", ""), "out.bin");
}

TEST(CliArgs, TrailingFlagWithoutValueBecomesTrue) {
  // Flags greedily take the next token as their value, so boolean flags
  // must come last (documented in cli_commands.hpp).
  const Args args = make_args({"graffix", "stats", "g.txt", "--verbose"});
  EXPECT_EQ(args.get("verbose", ""), "true");
  ASSERT_EQ(args.positional.size(), 1u);
  EXPECT_EQ(args.positional[0], "g.txt");
}

TEST(CliArgs, MissingKeysFallBack) {
  const Args args = make_args({"graffix", "stats"});
  EXPECT_EQ(args.get("nope", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(args.get_double("nope", 0.25), 0.25);
  EXPECT_EQ(args.get_int("nope", 7), 7);
  EXPECT_EQ(args.find("nope"), nullptr);
}

TEST(CliArgs, NoArgumentsMeansHelp) {
  const Args args = make_args({"graffix"});
  EXPECT_EQ(args.command, "help");
}

TEST(CliParse, TechniqueNames) {
  EXPECT_EQ(parse_technique("none"), Technique::None);
  EXPECT_EQ(parse_technique("coalescing"), Technique::Coalescing);
  EXPECT_EQ(parse_technique("latency"), Technique::Latency);
  EXPECT_EQ(parse_technique("divergence"), Technique::Divergence);
  EXPECT_EQ(parse_technique("combined"), Technique::Combined);
}

TEST(CliParse, AlgorithmNames) {
  EXPECT_EQ(parse_algorithm("sssp"), core::Algorithm::SSSP);
  EXPECT_EQ(parse_algorithm("mst"), core::Algorithm::MST);
  EXPECT_EQ(parse_algorithm("scc"), core::Algorithm::SCC);
  EXPECT_EQ(parse_algorithm("pr"), core::Algorithm::PR);
  EXPECT_EQ(parse_algorithm("bc"), core::Algorithm::BC);
}

TEST(CliParse, UnknownNamesExit) {
  EXPECT_EXIT((void)parse_technique("bogus"), ::testing::ExitedWithCode(2),
              "unknown technique");
  EXPECT_EXIT((void)parse_algorithm("bogus"), ::testing::ExitedWithCode(2),
              "unknown algorithm");
}

class CliEndToEnd : public ::testing::Test {
 protected:
  std::string path(const char* name) {
    const auto p = std::filesystem::temp_directory_path() /
                   (std::string("graffix_cli_") + name);
    created_.push_back(p.string());
    return p.string();
  }
  void TearDown() override {
    for (const auto& p : created_) std::remove(p.c_str());
  }
  std::vector<std::string> created_;
};

TEST_F(CliEndToEnd, GenerateStatsTransformRunRoundTrip) {
  const std::string graph_file = path("g.bin");
  const std::string transformed = path("t.bin");

  EXPECT_EQ(cmd_generate(make_args({"graffix", "generate", "rmat26",
                                    "--scale", "9", "-o", graph_file})),
            0);
  EXPECT_EQ(cmd_stats(make_args({"graffix", "stats", graph_file})), 0);
  EXPECT_EQ(cmd_transform(make_args({"graffix", "transform", graph_file,
                                     "--technique", "coalescing",
                                     "--threshold", "0.4", "-o",
                                     transformed})),
            0);
  // The transformed binary has holes and loads back.
  const Csr back = read_binary(transformed);
  EXPECT_TRUE(back.has_holes());
  EXPECT_EQ(cmd_run(make_args({"graffix", "run", graph_file, "--algorithm",
                               "pr", "--technique", "divergence"})),
            0);
}

TEST_F(CliEndToEnd, CompareRunsAllTechniques) {
  EXPECT_EQ(cmd_compare(make_args({"graffix", "compare", "rmat26", "--scale",
                                   "9", "--algorithm", "pr"})),
            0);
}

TEST_F(CliEndToEnd, RunWritesTraceCsv) {
  const std::string trace = path("trace.csv");
  EXPECT_EQ(cmd_run(make_args({"graffix", "run", "rmat26", "--scale", "9",
                               "--algorithm", "sssp", "--technique",
                               "divergence", "--trace", trace})),
            0);
  std::FILE* f = std::fopen(trace.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char header[128] = {};
  ASSERT_NE(std::fgets(header, sizeof(header), f), nullptr);
  EXPECT_NE(std::strstr(header, "iteration"), nullptr);
  std::fclose(f);
}

TEST_F(CliEndToEnd, PresetsLoadDirectly) {
  EXPECT_EQ(cmd_stats(make_args({"graffix", "stats", "USA-road", "--scale",
                                 "8"})),
            0);
}

TEST_F(CliEndToEnd, GenerateEdgeListOutput) {
  const std::string out = path("g.txt");
  EXPECT_EQ(cmd_generate(make_args({"graffix", "generate", "random26",
                                    "--scale", "8", "-o", out})),
            0);
  const Csr back = read_edge_list(out, /*weighted=*/true);
  EXPECT_GT(back.num_edges(), 0u);
}

}  // namespace
}  // namespace graffix::cli
