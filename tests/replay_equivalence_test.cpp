// Replay-equivalence contract for the grouped Phase B (DESIGN.md §7,
// "commutative replay contract"): for every certified functor shape the
// algorithms actually use — min-merge (SSSP relax, BFS levels),
// sum-merge (PageRank push and pull), ordered absorb (BC backward
// contributions) — the grouped parallel replay must produce KernelStats
// and attribute bits IDENTICAL to the serial replay oracle, at every
// thread count and chunking, including a partial tail warp and a fully
// gated-out block. An intentionally order-sensitive functor must take
// the serial fallback (never the grouped path) and still match the
// fused serial oracle. The engine's reentrancy guard — the latent bug
// fix that makes any of this legal — is pinned by death tests: nested
// sweeps on one engine die loudly instead of corrupting scratch.
//
// The side-channel shapes extend the contract to functors with scalar
// escapes (sim::SideChannel): the runner's certified SSSP relax (stall
// sums + discovery flag + changed-list appends, exact-threshold tie
// rejections included) and BC forward (frontier appends, down to the
// empty final wave and a full-frontier sweep) must reproduce every
// side-channel value and the append ORDER bit-for-bit. Driver-level
// tests then force the global chunk policy and pin full run_algorithm
// outputs (attr, stats, sim_seconds, trace) for run_sssp and run_bc
// against the unforced one-thread baseline while proving — via the
// process-wide grouped-replay counter — that both drivers actually
// took the grouped path.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "core/runners.hpp"
#include "gen/suite.hpp"
#include "graph/csr.hpp"
#include "sim/engine.hpp"
#include "util/bitset.hpp"
#include "util/parallel.hpp"

namespace graffix {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};
constexpr std::size_t kChunkCounts[] = {2, 8};
// Side-channel matrix (ISSUE 8): single-chunk, mid, and one-chunk-per-
// block — 4096 exceeds every block count used here, so the policy clamp
// makes it the "whole" (maximally sharded) configuration.
constexpr std::size_t kSideChunkCounts[] = {1, 4, 4096};

/// Pins the worker pool, runs fn, restores the hardware default.
template <typename Fn>
auto at_threads(int t, Fn&& fn) {
  set_num_threads(t);
  auto result = fn();
  set_num_threads(0);
  return result;
}

NodeId busiest_node(const Csr& g) {
  NodeId best = 0, best_degree = 0;
  for (NodeId v = 0; v < g.num_slots(); ++v) {
    if (!g.is_hole(v) && g.degree(v) > best_degree) {
      best = v;
      best_degree = g.degree(v);
    }
  }
  return best;
}

/// Everything one functor-shape run must reproduce bit-for-bit, plus
/// which replay path the engine actually took.
struct SweepRun {
  sim::KernelStats stats;
  std::vector<double> attr;
  std::uint64_t grouped = 0;  // grouped_replays_for_test() at run end
};

void expect_same_run(const SweepRun& oracle, const SweepRun& got,
                     const std::string& what) {
  EXPECT_EQ(got.stats, oracle.stats) << what << ": stats differ";
  ASSERT_EQ(got.attr.size(), oracle.attr.size()) << what;
  EXPECT_EQ(std::memcmp(got.attr.data(), oracle.attr.data(),
                        got.attr.size() * sizeof(double)),
            0)
      << what << ": attribute bits differ";
}

/// One functor shape: given (certified?, forced chunk count) runs the
/// full sweep sequence on a fresh engine and returns the run record.
/// chunks == 0 leaves the automatic policy (the fused serial path at
/// one thread on any machine — the reference oracle).
using ShapeFn = std::function<SweepRun(bool certified, std::size_t chunks)>;

/// Drives the full differential matrix for one shape: fused serial
/// oracle vs grouped replay at every (chunks, threads) cell, plus the
/// uncertified two-phase run that pins the serial-replay fallback
/// against the same oracle.
void run_shape_differential(const ShapeFn& shape, const char* name,
                            std::span<const std::size_t> chunk_list) {
  const SweepRun oracle =
      at_threads(1, [&] { return shape(/*certified=*/false, /*chunks=*/0); });
  EXPECT_EQ(oracle.grouped, 0u) << name << ": oracle must replay serially";
  EXPECT_GT(oracle.stats.atomic_commits, 0u)
      << name << ": vacuous shape proves nothing";

  for (std::size_t chunks : chunk_list) {
    // Serial-replay fallback on the two-phase path: identical too.
    const SweepRun fallback = at_threads(
        8, [&] { return shape(/*certified=*/false, chunks); });
    EXPECT_EQ(fallback.grouped, 0u)
        << name << ": uncertified functor must never take the grouped path";
    expect_same_run(oracle, fallback,
                    std::string(name) + " | serial fallback | chunks=" +
                        std::to_string(chunks));
    for (int t : kThreadCounts) {
      const SweepRun got =
          at_threads(t, [&] { return shape(/*certified=*/true, chunks); });
      EXPECT_GT(got.grouped, 0u)
          << name << ": certified functor never reached the grouped replay";
      expect_same_run(oracle, got,
                      std::string(name) + " | grouped | chunks=" +
                          std::to_string(chunks) +
                          " threads=" + std::to_string(t));
    }
  }
}

void run_shape_differential(const ShapeFn& shape, const char* name) {
  run_shape_differential(shape, name, kChunkCounts);
}

/// Work list with a genuinely partial tail warp (3 items dropped) and a
/// gate window [dead_lo, dead_hi) covering one full non-tail warp block
/// that stays dead for the whole run — the two block shapes where the
/// grouped record layout could plausibly diverge from the serial walk.
struct ShapeInputs {
  Csr graph;
  std::vector<sim::WorkItem> all_items;
  std::span<const sim::WorkItem> items;
  NodeId source = 0;
  NodeId dead_lo = 0;
  NodeId dead_hi = 0;
};

ShapeInputs make_inputs() {
  ShapeInputs in;
  in.graph = make_preset(GraphPreset::Rmat26, 11, 13);
  in.all_items = sim::items_all_vertices(in.graph);
  const std::uint32_t ws = sim::SimConfig{}.warp_size;
  in.items = std::span<const sim::WorkItem>(in.all_items.data(),
                                            in.all_items.size() - 3);
  EXPECT_NE(in.items.size() % ws, 0u);  // tail warp genuinely partial
  in.source = busiest_node(in.graph);
  // No holes in the preset, so slot == item index and the window covers
  // exactly one warp block; avoid the source's own block.
  const std::size_t dead_b = (in.source / ws == 5) ? 6 : 5;
  in.dead_lo = static_cast<NodeId>(dead_b * ws);
  in.dead_hi = in.dead_lo + ws;
  return in;
}

/// True for sources outside the dead window (composed into every gate).
bool live_src(const ShapeInputs& in, NodeId u) {
  return u < in.dead_lo || u >= in.dead_hi;
}

// --- the five certified shapes + the order-sensitive one -------------

/// SSSP-style Jacobi min-plus: relaxes next[] from a stable dist[]
/// snapshot — the exact shape the bench engine_sweep cell certifies.
ShapeFn minplus_shape(const ShapeInputs& in) {
  return [&in](bool certified, std::size_t chunks) {
    SweepRun r;
    sim::Engine engine(in.graph, sim::SimConfig{});
    const sim::ScopedSweepChunks forced(engine, chunks);
    sim::SweepOptions opts;
    opts.weighted = in.graph.has_weights();
    if (certified) {
      opts.functor = {sim::MergeKind::Min, sim::MergeTarget::Dst};
    }
    std::vector<double> dist(in.graph.num_slots(),
                             std::numeric_limits<double>::infinity());
    dist[in.source] = 0.0;
    std::vector<double> next(dist);
    for (int s = 0; s < 3; ++s) {
      engine.sweep_gated(
          in.items, opts,
          [&](NodeId u) { return live_src(in, u) && std::isfinite(dist[u]); },
          [&](NodeId u, NodeId v, Weight w) {
            const double nd = dist[u] + static_cast<double>(w);
            if (nd < next[v]) {
              next[v] = nd;
              return true;
            }
            return false;
          },
          r.stats);
      dist = next;
    }
    r.attr = std::move(dist);
    r.grouped = engine.grouped_replays_for_test();
    return r;
  };
}

/// BFS-style Jacobi level merge: integer min into next_level[].
ShapeFn bfs_shape(const ShapeInputs& in) {
  return [&in](bool certified, std::size_t chunks) {
    constexpr std::uint32_t kUnset = 0xffffffffu;
    SweepRun r;
    sim::Engine engine(in.graph, sim::SimConfig{});
    const sim::ScopedSweepChunks forced(engine, chunks);
    sim::SweepOptions opts;
    opts.weighted = false;
    if (certified) {
      opts.functor = {sim::MergeKind::Min, sim::MergeTarget::Dst};
    }
    std::vector<std::uint32_t> level(in.graph.num_slots(), kUnset);
    level[in.source] = 0;
    std::vector<std::uint32_t> next(level);
    for (int s = 0; s < 3; ++s) {
      engine.sweep_gated(
          in.items, opts,
          [&](NodeId u) { return live_src(in, u) && level[u] != kUnset; },
          [&](NodeId u, NodeId v, Weight) {
            const std::uint32_t nl = level[u] + 1;
            if (nl < next[v]) {
              next[v] = nl;
              return true;
            }
            return false;
          },
          r.stats);
      level = next;
    }
    r.attr.assign(level.begin(), level.end());
    r.grouped = engine.grouped_replays_for_test();
    return r;
  };
}

/// PageRank push: FP sum merged into next[v] — the shape where the
/// per-target accumulation ORDER is observable in the bits, so this is
/// the test that would catch any chunking-dependent absorb order.
ShapeFn pr_push_shape(const ShapeInputs& in) {
  return [&in](bool certified, std::size_t chunks) {
    SweepRun r;
    sim::Engine engine(in.graph, sim::SimConfig{});
    const sim::ScopedSweepChunks forced(engine, chunks);
    sim::SweepOptions opts;
    opts.weighted = false;
    if (certified) {
      opts.functor = {sim::MergeKind::Sum, sim::MergeTarget::Dst};
    }
    const std::size_t n = in.graph.num_slots();
    std::vector<double> rank(n, 1.0 / static_cast<double>(n));
    std::vector<double> next(n, 0.15 / static_cast<double>(n));
    for (int s = 0; s < 2; ++s) {
      engine.sweep_gated(
          in.items, opts,
          [&](NodeId u) { return live_src(in, u) && in.graph.degree(u) > 0; },
          [&](NodeId u, NodeId v, Weight) {
            next[v] += 0.85 * rank[u] / static_cast<double>(in.graph.degree(u));
            return true;
          },
          r.stats);
      rank.swap(next);
      std::fill(next.begin(), next.end(), 0.15 / static_cast<double>(n));
    }
    r.attr = std::move(rank);
    r.grouped = engine.grouped_replays_for_test();
    return r;
  };
}

/// PageRank pull: FP sum merged into the SOURCE side (next[u] gathers
/// from stable rank[v]) — exercises MergeTarget::Src grouping.
ShapeFn pr_pull_shape(const ShapeInputs& in) {
  return [&in](bool certified, std::size_t chunks) {
    SweepRun r;
    sim::Engine engine(in.graph, sim::SimConfig{});
    const sim::ScopedSweepChunks forced(engine, chunks);
    sim::SweepOptions opts;
    opts.weighted = false;
    if (certified) {
      opts.functor = {sim::MergeKind::Sum, sim::MergeTarget::Src};
    }
    const std::size_t n = in.graph.num_slots();
    std::vector<double> rank(n, 1.0 / static_cast<double>(n));
    std::vector<double> next(n, 0.15 / static_cast<double>(n));
    for (int s = 0; s < 2; ++s) {
      engine.sweep_gated(
          in.items, opts, [&](NodeId u) { return live_src(in, u); },
          [&](NodeId u, NodeId v, Weight) {
            const NodeId deg = std::max<NodeId>(in.graph.degree(v), 1);
            next[u] += 0.85 * rank[v] / static_cast<double>(deg);
            return true;
          },
          r.stats);
      rank.swap(next);
      std::fill(next.begin(), next.end(), 0.15 / static_cast<double>(n));
    }
    r.attr = std::move(rank);
    r.grouped = engine.grouped_replays_for_test();
    return r;
  };
}

/// BC-backward-style ordered absorb: delta[u] accumulates sigma-weighted
/// contributions read from sweep-stable arrays (sigma, prev).
ShapeFn bc_absorb_shape(const ShapeInputs& in) {
  return [&in](bool certified, std::size_t chunks) {
    SweepRun r;
    sim::Engine engine(in.graph, sim::SimConfig{});
    const sim::ScopedSweepChunks forced(engine, chunks);
    sim::SweepOptions opts;
    opts.weighted = false;
    if (certified) {
      opts.functor = {sim::MergeKind::Absorb, sim::MergeTarget::Src};
    }
    const std::size_t n = in.graph.num_slots();
    // Deterministic stand-ins for path counts and child deltas.
    std::vector<double> sigma(n), prev(n);
    for (std::size_t v = 0; v < n; ++v) {
      sigma[v] = 1.0 + static_cast<double>(in.graph.degree(
                           static_cast<NodeId>(v)));
      prev[v] = static_cast<double>((v * 2654435761u) & 0xff) / 256.0;
    }
    std::vector<double> delta(n, 0.0);
    engine.sweep_gated(
        in.items, opts, [&](NodeId u) { return live_src(in, u); },
        [&](NodeId u, NodeId v, Weight) {
          delta[u] += (sigma[u] / sigma[v]) * (1.0 + prev[v]);
          return true;
        },
        r.stats);
    r.attr = std::move(delta);
    r.grouped = engine.grouped_replays_for_test();
    return r;
  };
}

TEST(ReplayEquivalence, MinPlusMatchesSerialReplay) {
  const ShapeInputs in = make_inputs();
  run_shape_differential(minplus_shape(in), "sssp-minplus");
}

TEST(ReplayEquivalence, BfsLevelMatchesSerialReplay) {
  const ShapeInputs in = make_inputs();
  run_shape_differential(bfs_shape(in), "bfs-level");
}

TEST(ReplayEquivalence, PageRankPushSumMatchesSerialReplay) {
  const ShapeInputs in = make_inputs();
  run_shape_differential(pr_push_shape(in), "pr-push-sum");
}

TEST(ReplayEquivalence, PageRankPullSumMatchesSerialReplay) {
  const ShapeInputs in = make_inputs();
  run_shape_differential(pr_pull_shape(in), "pr-pull-sum");
}

TEST(ReplayEquivalence, BcAbsorbMatchesSerialReplay) {
  const ShapeInputs in = make_inputs();
  run_shape_differential(bc_absorb_shape(in), "bc-absorb");
}

// --- side-channel shapes (ISSUE 8) -----------------------------------

/// The runner's certified SSSP relax, side channel included: the stall
/// aggregates (improvement sum 0, base sum 1), the discovery flag, and
/// the changed list — every value the driver's stall and frontier
/// decisions read — are folded into attr alongside the stall verdict
/// evaluated at the exact runner threshold, so the memcmp pins the
/// decisions themselves, not just the distances. With `weighted ==
/// false` the unit-step relaxation makes equal-length paths collide at
/// the exact commit threshold (nd == next[v]); those ties must be
/// REJECTED identically by the serial and grouped replays, and sum 2
/// counts them so the tie case is proven to occur, never vacuous.
ShapeFn sssp_relax_side_shape(const ShapeInputs& in, bool weighted) {
  return [&in, weighted](bool certified, std::size_t chunks) {
    const double eps = weighted ? 1e-9 : 0.0;
    SweepRun r;
    sim::Engine engine(in.graph, sim::SimConfig{});
    const sim::ScopedSweepChunks forced(engine, chunks);
    sim::SweepOptions opts;
    opts.weighted = weighted && in.graph.has_weights();
    if (certified) {
      opts.functor = {sim::MergeKind::Min, sim::MergeTarget::Dst};
    }
    sim::SideChannel side(/*n_sums=*/3);
    opts.side = &side;
    const std::size_t n = in.graph.num_slots();
    std::vector<double> dist(n, std::numeric_limits<double>::infinity());
    dist[in.source] = 0.0;
    std::vector<double> next(dist);
    std::vector<NodeId> changed;
    AtomicBitset changed_mask(n);
    side.bind_appends(&changed);
    for (int s = 0; s < 3; ++s) {
      changed.clear();
      changed_mask.clear();
      side.reset();
      engine.sweep_gated(
          in.items, opts,
          [&](NodeId u) { return live_src(in, u) && std::isfinite(dist[u]); },
          [&](NodeId u, NodeId v, Weight w) {
            const double step = weighted ? static_cast<double>(w) : 1.0;
            const double nd = dist[u] + step;
            if (nd < next[v] - eps * (1.0 + std::abs(nd))) {
              if (std::isfinite(next[v])) {
                side.add(0, next[v] - nd);
              } else {
                side.raise(0);
              }
              side.add(1, 1.0 + std::abs(nd));
              next[v] = nd;
              if (changed_mask.set(v)) side.append(v);
              return true;
            }
            if (nd == next[v]) side.add(2, 1.0);  // exact-threshold tie
            return false;
          },
          r.stats);
      r.attr.push_back(side.sum(0));
      r.attr.push_back(side.sum(1));
      r.attr.push_back(side.flag(0) ? 1.0 : 0.0);
      r.attr.push_back(side.sum(2));
      // The runner's stall verdict, bit for bit: a one-ULP drift in the
      // sums could flip this comparison near the threshold.
      r.attr.push_back((!side.flag(0) &&
                        side.sum(0) < 100.0 * eps * std::max(1.0, side.sum(1)))
                           ? 1.0
                           : 0.0);
      r.attr.push_back(static_cast<double>(changed.size()));
      for (NodeId v : changed) r.attr.push_back(static_cast<double>(v));
      dist = next;
    }
    r.attr.insert(r.attr.end(), dist.begin(), dist.end());
    r.grouped = engine.grouped_replays_for_test();
    return r;
  };
}

/// The runner's certified BC forward: level-synchronous sigma sums with
/// the next frontier escaping through side.append. Each wave's frontier
/// — size AND contents, in discovery order — goes into attr, so the
/// memcmp pins the exact slot order the next wave's work list is built
/// from. The matrix covers the empty final wave (the loop's exit
/// decision) and, after the BFS drains, one full-frontier sweep: every
/// slot gated in at once (dead window included), the maximal-records /
/// near-zero-append extreme of the same shape.
ShapeFn bc_forward_side_shape(const ShapeInputs& in) {
  return [&in](bool certified, std::size_t chunks) {
    SweepRun r;
    sim::Engine engine(in.graph, sim::SimConfig{});
    const sim::ScopedSweepChunks forced(engine, chunks);
    sim::SweepOptions opts;
    opts.weighted = false;
    if (certified) {
      opts.functor = {sim::MergeKind::Sum, sim::MergeTarget::Dst};
    }
    sim::SideChannel side;
    opts.side = &side;
    const std::size_t n = in.graph.num_slots();
    std::vector<NodeId> level(n, kInvalidNode);
    std::vector<double> sigma(n, 0.0);
    level[in.source] = 0;
    sigma[in.source] = 1.0;
    NodeId depth = 0;
    std::vector<NodeId> frontier;
    side.bind_appends(&frontier);
    auto forward = [&](NodeId u, NodeId v, Weight) {
      if (level[u] != depth) return false;
      if (level[v] == kInvalidNode) {
        level[v] = depth + 1;
        side.append(v);
      }
      if (level[v] == depth + 1) {
        sigma[v] += sigma[u];
        return true;
      }
      return false;
    };
    while (depth < static_cast<NodeId>(n)) {
      frontier.clear();
      engine.sweep_gated(
          in.items, opts,
          [&](NodeId u) { return live_src(in, u) && level[u] == depth; },
          forward, r.stats);
      r.attr.push_back(static_cast<double>(frontier.size()));
      for (NodeId v : frontier) r.attr.push_back(static_cast<double>(v));
      if (frontier.empty()) break;  // the empty-frontier exit decision
      ++depth;
    }
    frontier.clear();
    engine.sweep_gated(in.items, opts, [](NodeId) { return true; }, forward,
                       r.stats);
    r.attr.push_back(static_cast<double>(frontier.size()));
    for (NodeId v : frontier) r.attr.push_back(static_cast<double>(v));
    r.attr.insert(r.attr.end(), sigma.begin(), sigma.end());
    for (NodeId lv : level) r.attr.push_back(static_cast<double>(lv));
    r.grouped = engine.grouped_replays_for_test();
    return r;
  };
}

TEST(SideChannelEquivalence, SsspRelaxMatchesSerialReplay) {
  const ShapeInputs in = make_inputs();
  run_shape_differential(sssp_relax_side_shape(in, /*weighted=*/true),
                         "sssp-relax-side", kSideChunkCounts);
}

TEST(SideChannelEquivalence, SsspRelaxTiesAtThresholdMatchSerialReplay) {
  const ShapeInputs in = make_inputs();
  const ShapeFn shape = sssp_relax_side_shape(in, /*weighted=*/false);
  // The tie case must actually occur: with unit steps, multiple equal-
  // length parents per target are guaranteed on an rmat graph, and each
  // rejected exactly-at-threshold candidate bumps sum 2 (attr slot 3 of
  // some sweep). Probe the serial oracle for a nonzero total first so
  // the differential below cannot pass vacuously.
  const SweepRun probe =
      at_threads(1, [&] { return shape(/*certified=*/false, /*chunks=*/0); });
  double ties = 0.0;
  std::size_t at = 0;
  for (int s = 0; s < 3; ++s) {
    ties += probe.attr[at + 3];
    at += 6 + static_cast<std::size_t>(probe.attr[at + 5]);
  }
  EXPECT_GT(ties, 0.0) << "no exact-threshold tie ever reached the functor";
  run_shape_differential(shape, "sssp-relax-ties", kSideChunkCounts);
}

TEST(SideChannelEquivalence, BcForwardFrontierMatchesSerialReplay) {
  const ShapeInputs in = make_inputs();
  run_shape_differential(bc_forward_side_shape(in), "bc-forward-side",
                         kSideChunkCounts);
}

// --- driver-level grouped-path certification (ISSUE 8) ----------------

bool same_double_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

core::RunOutput run_driver(core::Algorithm alg, baselines::BaselineId baseline,
                           const Csr& g, NodeId source) {
  core::RunConfig cfg;
  cfg.baseline = baseline;
  cfg.collect_trace = true;
  cfg.sssp_source = source;
  cfg.bc_sample_count = 4;
  return core::run_algorithm(alg, g, cfg);
}

void expect_same_output(const core::RunOutput& oracle,
                        const core::RunOutput& got, const std::string& what) {
  EXPECT_EQ(got.stats, oracle.stats) << what << ": stats differ";
  EXPECT_EQ(got.iterations, oracle.iterations) << what;
  EXPECT_TRUE(same_double_bits(got.sim_seconds, oracle.sim_seconds))
      << what << ": sim_seconds bits differ";
  EXPECT_TRUE(same_double_bits(got.scalar, oracle.scalar)) << what;
  ASSERT_EQ(got.attr.size(), oracle.attr.size()) << what;
  EXPECT_EQ(std::memcmp(got.attr.data(), oracle.attr.data(),
                        got.attr.size() * sizeof(double)),
            0)
      << what << ": attr bits differ";
  ASSERT_EQ(got.trace.size(), oracle.trace.size()) << what;
  for (std::size_t i = 0; i < got.trace.size(); ++i) {
    EXPECT_EQ(got.trace[i].iteration, oracle.trace[i].iteration) << what;
    EXPECT_EQ(got.trace[i].stats, oracle.trace[i].stats)
        << what << ": trace[" << i << "] stats differ";
  }
}

/// Runs the real driver (private engine and all) with the process-wide
/// chunk policy forced, at every thread count, and pins the COMPLETE
/// RunOutput against the unforced one-thread baseline. The global
/// grouped-replay counter must advance during each forced run — the
/// proof that the driver's certified sweeps actually took the grouped
/// path rather than quietly matching via the serial fallback.
void run_driver_grouped_differential(core::Algorithm alg,
                                     baselines::BaselineId baseline,
                                     const char* name) {
  const Csr g = make_preset(GraphPreset::Rmat26, 11, 13);
  const NodeId source = busiest_node(g);
  const core::RunOutput oracle =
      at_threads(1, [&] { return run_driver(alg, baseline, g, source); });
  EXPECT_GT(oracle.stats.atomic_commits, 0u) << name;
  constexpr std::size_t kDriverChunks[] = {1, 4096};
  for (std::size_t chunks : kDriverChunks) {
    for (int t : kThreadCounts) {
      const std::uint64_t before = sim::global_grouped_replays_for_test();
      const core::RunOutput got = at_threads(t, [&] {
        const sim::ScopedGlobalSweepChunks forced(chunks);
        return run_driver(alg, baseline, g, source);
      });
      EXPECT_GT(sim::global_grouped_replays_for_test(), before)
          << name << ": driver never reached the grouped replay (chunks="
          << chunks << " threads=" << t << ")";
      expect_same_output(oracle, got,
                         std::string(name) + " | chunks=" +
                             std::to_string(chunks) +
                             " threads=" + std::to_string(t));
    }
  }
}

TEST(DriverGroupedPath, SsspTopologyDrivenBitIdentical) {
  run_driver_grouped_differential(core::Algorithm::SSSP,
                                  baselines::BaselineId::TopologyDriven,
                                  "run_sssp/topology");
}

TEST(DriverGroupedPath, SsspGunrockLikeBitIdentical) {
  run_driver_grouped_differential(core::Algorithm::SSSP,
                                  baselines::BaselineId::GunrockLike,
                                  "run_sssp/gunrock");
}

TEST(DriverGroupedPath, BcTopologyDrivenBitIdentical) {
  run_driver_grouped_differential(core::Algorithm::BC,
                                  baselines::BaselineId::TopologyDriven,
                                  "run_bc/topology");
}

TEST(ReplayEquivalence, OrderSensitiveFunctorTakesSerialFallback) {
  // Gauss-Seidel relaxation reads the SAME array it merges into, so
  // cross-target order is observable: it cannot be certified, and an
  // uncertified functor must replay serially on the two-phase path and
  // still match the fused serial engine bit for bit.
  const ShapeInputs in = make_inputs();
  auto run = [&](std::size_t chunks) {
    SweepRun r;
    sim::Engine engine(in.graph, sim::SimConfig{});
    const sim::ScopedSweepChunks forced(engine, chunks);
    sim::SweepOptions opts;
    opts.weighted = in.graph.has_weights();
    std::vector<double> dist(in.graph.num_slots(),
                             std::numeric_limits<double>::infinity());
    dist[in.source] = 0.0;
    for (int s = 0; s < 3; ++s) {
      engine.sweep_gated(
          in.items, opts,
          [&](NodeId u) { return live_src(in, u) && std::isfinite(dist[u]); },
          [&](NodeId u, NodeId v, Weight w) {
            const double nd = dist[u] + static_cast<double>(w);
            if (nd < dist[v]) {
              dist[v] = nd;
              return true;
            }
            return false;
          },
          r.stats);
    }
    r.attr = std::move(dist);
    r.grouped = engine.grouped_replays_for_test();
    return r;
  };
  const SweepRun oracle = at_threads(1, [&] { return run(0); });
  EXPECT_EQ(oracle.grouped, 0u);
  EXPECT_GT(oracle.stats.atomic_commits, 0u);
  for (std::size_t chunks : kChunkCounts) {
    for (int t : kThreadCounts) {
      const SweepRun got = at_threads(t, [&] { return run(chunks); });
      EXPECT_EQ(got.grouped, 0u)
          << "order-sensitive functor escaped onto the grouped path";
      expect_same_run(oracle, got,
                      "gauss-seidel | chunks=" + std::to_string(chunks) +
                          " threads=" + std::to_string(t));
    }
  }
}

// --- reentrancy guard (the latent-bug fix) ---------------------------

TEST(EngineReentrancy, SequentialSharingWorks) {
  // Two logical drivers issuing sweeps on ONE engine strictly in turn is
  // legal: the per-sweep scratch is quiescent between sweeps. This is
  // the "work" half of "work or die loudly".
  const Csr g = make_preset(GraphPreset::Rmat26, 10, 13);
  const auto items = sim::items_all_vertices(g);
  sim::Engine engine(g, sim::SimConfig{});
  sim::SweepOptions opts;
  opts.weighted = g.has_weights();
  sim::KernelStats a_stats, b_stats;
  std::vector<double> a_attr(g.num_slots(), 0.0), b_attr(g.num_slots(), 0.0);
  for (int s = 0; s < 2; ++s) {
    engine.sweep(
        items, opts,
        [&](NodeId u, NodeId v, Weight) {
          a_attr[v] += a_attr[u] + 1.0;
          return true;
        },
        a_stats);
    engine.sweep(
        items, opts,
        [&](NodeId u, NodeId v, Weight) {
          b_attr[v] += b_attr[u] + 2.0;
          return true;
        },
        b_stats);
  }
  EXPECT_GT(a_stats.atomic_commits, 0u);
  EXPECT_EQ(a_stats.atomic_commits, b_stats.atomic_commits);
}

TEST(EngineReentrancyDeathTest, NestedSweepDiesLoudly) {
  // A functor (or gate) that drives another sweep on the SAME engine
  // would silently corrupt block_meta_/chunk scratch before this PR's
  // guard; now it must abort with a diagnostic naming the contract.
  // Threadsafe style: the worker pool may hold live threads by the time
  // this test forks, and "fast" style forbids that.
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const Csr g = make_preset(GraphPreset::Rmat26, 10, 13);
  const auto items = sim::items_all_vertices(g);
  const auto nested = [&] {
    sim::Engine engine(g, sim::SimConfig{});
    sim::SweepOptions opts;
    opts.weighted = g.has_weights();
    sim::KernelStats outer;
    sim::KernelStats inner;
    engine.sweep(
        items, opts,
        [&](NodeId, NodeId, Weight) {
          engine.sweep(items, opts,
                       [](NodeId, NodeId, Weight) { return false; }, inner);
          return false;
        },
        outer);
  };
  EXPECT_DEATH(nested(), "re-entered mid-sweep");
}

TEST(EngineReentrancyDeathTest, NestedGateSweepDiesLoudly) {
  // Same contract from the gate side: gates run during Phase A, where a
  // nested sweep would race the chunk accounting itself.
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const Csr g = make_preset(GraphPreset::Rmat26, 10, 13);
  const auto items = sim::items_all_vertices(g);
  const auto nested_gate = [&] {
    sim::Engine engine(g, sim::SimConfig{});
    sim::SweepOptions opts;
    opts.weighted = g.has_weights();
    sim::KernelStats outer;
    sim::KernelStats inner;
    engine.sweep_gated(
        items, opts,
        [&](NodeId) {
          engine.sweep(items, opts,
                       [](NodeId, NodeId, Weight) { return false; }, inner);
          return true;
        },
        [](NodeId, NodeId, Weight) { return false; }, outer);
  };
  EXPECT_DEATH(nested_gate(), "re-entered mid-sweep");
}

}  // namespace
}  // namespace graffix
