// Fault-injection matrix for `graffix serve`: every injected fault —
// malformed frames, oversized payloads, bad sources, queue overflow,
// deadline expiry, mid-request disconnect, shutdown races — must produce
// a typed error response (or a counted drop) while the daemon keeps
// serving. Nothing here may crash, hang, or wedge the queue.
#include <gtest/gtest.h>

#include <chrono>
#include <iterator>
#include <memory>
#include <string>
#include <thread>

#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve_test_util.hpp"

namespace graffix::serve {
namespace {

using graffix::serve::testing::LineClient;
using graffix::serve::testing::connect_client;

Csr tiny_graph() {
  GraphBuilder b(4);
  b.add_edge(0, 1, 1.0F);
  b.add_edge(1, 2, 1.0F);
  b.add_edge(2, 3, 1.0F);
  return b.build();
}

bool has_error_code(const std::string& line, const char* code) {
  return line.find(std::string("\"code\":\"") + code + "\"") !=
         std::string::npos;
}

/// The liveness probe after every fault: the daemon must still answer.
void expect_still_serving(LineClient& client, std::uint64_t id) {
  client.send(R"({"id":)" + std::to_string(id) +
              R"(,"op":"query","alg":"bfs","source":0})");
  const std::string line = client.recv_or_die();
  EXPECT_NE(line.find(R"("ok":true)"), std::string::npos) << line;
}

TEST(ServeFault, MalformedFramesGetTypedErrors) {
  Server server(tiny_graph());
  server.start();
  auto client = connect_client(server);

  struct Fault {
    const char* frame;
    const char* code;
  };
  const Fault faults[] = {
      {"{this is not json", "parse_error"},
      {R"("just a string")", "parse_error"},
      {R"({"id":1,"op":"q"} trailing)", "parse_error"},
      {R"({"id":2,"op":"frobnicate"})", "unknown_op"},
      {R"({"id":3,"op":"query","alg":"apsp","source":0})", "unknown_algorithm"},
      {R"({"id":4,"op":"query","alg":"sssp"})", "bad_request"},
      {R"({"id":5,"op":"query","alg":"sssp","source":999})", "bad_source"},
      {R"({"id":6,"op":"query","alg":"bfs","source":0,"nodes":[99]})",
       "bad_source"},
      {R"({"id":7,"op":"query","alg":"bfs","source":0,"variant":"ghost"})",
       "unknown_variant"},
      {R"({"id":8,"op":"transform","kind":"latency"})", "bad_request"},
      {R"({"id":9,"op":"transform","kind":"none","variant":"ghost"})",
       "unknown_variant"},
  };
  std::uint64_t probe_id = 100;
  for (const Fault& fault : faults) {
    client->send(fault.frame);
    const std::string line = client->recv_or_die();
    EXPECT_TRUE(has_error_code(line, fault.code))
        << "frame: " << fault.frame << "\ngot:   " << line;
    expect_still_serving(*client, probe_id++);
  }

  const ServerMetrics m = server.metrics();
  EXPECT_EQ(m.errors, std::size(faults));
  EXPECT_EQ(m.queries_ok, std::size(faults));  // one probe per fault
  server.stop();
}

TEST(ServeFault, OversizedFrameIsSheddedNotBuffered) {
  ServerConfig cfg;
  cfg.max_frame_bytes = 256;
  Server server(tiny_graph(), cfg);
  server.start();
  auto client = connect_client(server);

  // 4 KiB of garbage on one line: consumed and answered, never parsed.
  std::string big(4096, 'x');
  client->send(big);
  const std::string line = client->recv_or_die();
  EXPECT_TRUE(has_error_code(line, "frame_too_large")) << line;
  // The stream is re-synchronized at the newline: the next frame parses.
  expect_still_serving(*client, 1);
  server.stop();
}

TEST(ServeFault, QueueOverflowShedsLoadThenRecovers) {
  ServerConfig cfg;
  cfg.queue_capacity = 2;
  Server server(tiny_graph(), cfg);
  server.start();
  server.hold_dispatch_for_test(true);  // queue can only fill
  auto client = connect_client(server);

  client->send(R"({"id":1,"op":"query","alg":"bfs","source":0})");
  client->send(R"({"id":2,"op":"query","alg":"bfs","source":1})");
  client->send(R"({"id":3,"op":"query","alg":"bfs","source":2})");
  // Shed responses are written inline at admission, so it arrives first.
  const std::string shed = client->recv_or_die();
  EXPECT_EQ(LineClient::extract_id(shed), 3U);
  EXPECT_TRUE(has_error_code(shed, "overloaded")) << shed;

  // The admitted queries still complete once the dispatcher resumes.
  server.hold_dispatch_for_test(false);
  const auto ok = client->recv_by_id(2);
  ASSERT_EQ(ok.size(), 2U);
  EXPECT_NE(ok.at(1).find(R"("ok":true)"), std::string::npos);
  EXPECT_NE(ok.at(2).find(R"("ok":true)"), std::string::npos);

  const ServerMetrics m = server.metrics();
  EXPECT_EQ(m.shed, 1U);
  EXPECT_EQ(m.queue_peak, 2U);
  expect_still_serving(*client, 4);
  server.stop();
}

TEST(ServeFault, DeadlineExpiryIsTypedAndNonFatal) {
  Server server(tiny_graph());
  server.start();
  server.hold_dispatch_for_test(true);
  auto client = connect_client(server);

  // 1 ms deadline, then hold the queue well past it.
  client->send(
      R"({"id":1,"op":"query","alg":"sssp","source":0,"deadline_ms":1})");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.hold_dispatch_for_test(false);
  const std::string line = client->recv_or_die();
  EXPECT_TRUE(has_error_code(line, "deadline_expired")) << line;
  // A deadline generous enough to actually run is honored.
  client->send(
      R"({"id":2,"op":"query","alg":"sssp","source":0,"deadline_ms":60000})");
  const std::string ok = client->recv_or_die();
  EXPECT_NE(ok.find(R"("ok":true)"), std::string::npos) << ok;
  server.stop();
}

TEST(ServeFault, MidRequestDisconnectIsCountedNotFatal) {
  Server server(tiny_graph());
  server.start();
  server.hold_dispatch_for_test(true);
  auto doomed = connect_client(server);
  doomed->send(R"({"id":1,"op":"query","alg":"bfs","source":0})");
  // The client vanishes while its query is still queued; the write of
  // the response must fail quietly (SIGPIPE ignored) and be counted.
  doomed->close_all();
  server.hold_dispatch_for_test(false);

  bool dropped = false;
  for (int i = 0; i < 200 && !dropped; ++i) {
    dropped = server.metrics().responses_dropped >= 1;
    if (!dropped) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(dropped) << "undeliverable response must be counted as dropped";

  // A fresh client is served as if nothing happened.
  auto client = connect_client(server);
  expect_still_serving(*client, 2);
  server.stop();
}

TEST(ServeFault, ShutdownDrainsThenRefusesNewWork) {
  Server server(tiny_graph());
  server.start();
  auto client = connect_client(server);

  client->send(R"({"id":1,"op":"shutdown"})");
  EXPECT_EQ(client->recv_or_die(), R"({"id":1,"ok":true,"bye":true})");
  EXPECT_TRUE(server.shutdown_requested());

  // Post-shutdown queries are refused with a typed error, not ignored.
  client->send(R"({"id":2,"op":"query","alg":"bfs","source":0})");
  const std::string line = client->recv_or_die();
  EXPECT_TRUE(has_error_code(line, "shutting_down")) << line;
  server.stop();
}

TEST(ServeFault, StatsKeepsPerCodeTallies) {
  Server server(tiny_graph());
  server.start();
  auto client = connect_client(server);
  client->send("{bad");
  client->recv_or_die();
  client->send("{worse");
  client->recv_or_die();
  client->send(R"({"id":1,"op":"query","alg":"bfs","source":77})");
  client->recv_or_die();

  client->send(R"({"id":2,"op":"stats"})");
  const std::string stats = client->recv_or_die();
  EXPECT_NE(stats.find(R"("parse_error":2)"), std::string::npos) << stats;
  EXPECT_NE(stats.find(R"("bad_source":1)"), std::string::npos) << stats;

  const ServerMetrics m = server.metrics();
  EXPECT_EQ(m.errors_by_code.at("parse_error"), 2U);
  EXPECT_EQ(m.errors_by_code.at("bad_source"), 1U);
  server.stop();
}

}  // namespace
}  // namespace graffix::serve
