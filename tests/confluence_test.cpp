// Confluence (§2.4) tests: merge operators, finite-mean handling of
// unreached replicas, idempotence, and no-op behavior on unreplicated
// slots.
#include <gtest/gtest.h>

#include <limits>

#include "transform/confluence.hpp"

namespace graffix::transform {
namespace {

ReplicaMap two_groups() {
  ReplicaMap map;
  map.groups = {{0, 3}, {1, 4, 5}};
  map.group_of_slot = {0, 1, kInvalidNode, 0, 1, 1};
  return map;
}

TEST(Confluence, MeanMergesGroups) {
  const ReplicaMap map = two_groups();
  std::vector<double> attr{2.0, 3.0, 99.0, 4.0, 6.0, 9.0};
  const std::size_t merges = merge_replicas(map, std::span<double>(attr),
                                            MergeOp::Mean);
  EXPECT_EQ(merges, 2u);
  EXPECT_DOUBLE_EQ(attr[0], 3.0);
  EXPECT_DOUBLE_EQ(attr[3], 3.0);
  EXPECT_DOUBLE_EQ(attr[1], 6.0);
  EXPECT_DOUBLE_EQ(attr[4], 6.0);
  EXPECT_DOUBLE_EQ(attr[5], 6.0);
  // Unreplicated slot untouched.
  EXPECT_DOUBLE_EQ(attr[2], 99.0);
}

TEST(Confluence, MinMaxSumOperators) {
  const ReplicaMap map = two_groups();
  std::vector<double> attr{2.0, 3.0, 0.0, 4.0, 6.0, 9.0};
  auto copy = attr;
  merge_replicas(map, std::span<double>(copy), MergeOp::Min);
  EXPECT_DOUBLE_EQ(copy[0], 2.0);
  EXPECT_DOUBLE_EQ(copy[3], 2.0);
  EXPECT_DOUBLE_EQ(copy[1], 3.0);

  copy = attr;
  merge_replicas(map, std::span<double>(copy), MergeOp::Max);
  EXPECT_DOUBLE_EQ(copy[0], 4.0);
  EXPECT_DOUBLE_EQ(copy[5], 9.0);

  copy = attr;
  merge_replicas(map, std::span<double>(copy), MergeOp::Sum);
  EXPECT_DOUBLE_EQ(copy[0], 6.0);
  EXPECT_DOUBLE_EQ(copy[1], 18.0);
}

TEST(Confluence, MeanIsIdempotent) {
  const ReplicaMap map = two_groups();
  std::vector<double> attr{2.0, 3.0, 0.0, 4.0, 6.0, 9.0};
  merge_replicas(map, std::span<double>(attr), MergeOp::Mean);
  auto once = attr;
  merge_replicas(map, std::span<double>(attr), MergeOp::Mean);
  EXPECT_EQ(attr, once);
}

TEST(Confluence, FiniteMeanSkipsInfinities) {
  const ReplicaMap map = two_groups();
  constexpr double inf = std::numeric_limits<double>::infinity();
  std::vector<double> attr{2.0, inf, 0.0, inf, inf, inf};
  const std::size_t merges =
      merge_replicas_finite_mean(map, std::span<double>(attr));
  // Group {0,3}: only 2.0 finite -> both become 2.0 (replica adopts the
  // reached value instead of becoming NaN/inf-poisoned).
  EXPECT_EQ(merges, 1u);
  EXPECT_DOUBLE_EQ(attr[0], 2.0);
  EXPECT_DOUBLE_EQ(attr[3], 2.0);
  // Group {1,4,5}: all infinite -> untouched.
  EXPECT_EQ(attr[1], inf);
  EXPECT_EQ(attr[4], inf);
}

TEST(Confluence, FloatOverloadWorks) {
  const ReplicaMap map = two_groups();
  std::vector<float> attr{1.0f, 2.0f, 0.0f, 3.0f, 4.0f, 6.0f};
  merge_replicas_finite_mean(map, std::span<float>(attr));
  EXPECT_FLOAT_EQ(attr[0], 2.0f);
  EXPECT_FLOAT_EQ(attr[1], 4.0f);
}

TEST(Confluence, EmptyMapIsNoop) {
  ReplicaMap map;
  std::vector<double> attr{1.0, 2.0};
  EXPECT_EQ(merge_replicas(map, std::span<double>(attr), MergeOp::Mean), 0u);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.replica_count(), 0u);
}

TEST(Confluence, ReplicaCount) {
  const ReplicaMap map = two_groups();
  EXPECT_EQ(map.replica_count(), 3u);  // one in group 0, two in group 1
  EXPECT_FALSE(map.empty());
}

}  // namespace
}  // namespace graffix::transform
