// Latency transform (§3) tests: edges are only added (never removed),
// the budget bounds insertions, cluster membership is disjoint and
// matches the resident index, inner iteration counts follow the
// 2x-diameter rule, and CC actually increases.
#include <gtest/gtest.h>

#include <set>

#include "gen/rmat.hpp"
#include "gen/road_grid.hpp"
#include "graph/builder.hpp"
#include "graph/validate.hpp"
#include "transform/latency.hpp"

namespace graffix::transform {
namespace {

Csr clustered_graph() {
  // Two triangles joined by a path: high-CC anchors exist.
  GraphBuilder b(8);
  auto undirected = [&](NodeId u, NodeId v) {
    b.add_edge(u, v);
    b.add_edge(v, u);
  };
  undirected(0, 1);
  undirected(1, 2);
  undirected(2, 0);
  undirected(3, 4);
  undirected(4, 5);
  undirected(5, 3);
  undirected(2, 6);
  undirected(6, 7);
  undirected(7, 3);
  return b.build();
}

Csr small_rmat(std::uint32_t scale = 10) {
  RmatParams p;
  p.scale = scale;
  p.edge_factor = 8;
  return generate_rmat(p);
}

LatencyKnobs knobs(double threshold = 0.5, double budget = 0.1) {
  LatencyKnobs k;
  k.cc_threshold = threshold;
  k.near_delta = 0.3;
  k.edge_budget_fraction = budget;
  return k;
}

TEST(Latency, OutputIsValid) {
  const auto result = latency_transform(small_rmat(), knobs());
  EXPECT_TRUE(validate_graph(result.graph).ok);
}

TEST(Latency, OnlyAddsEdges) {
  Csr g = small_rmat();
  const auto result = latency_transform(g, knobs());
  EXPECT_EQ(result.graph.num_edges(), g.num_edges() + result.edges_added);
  // Every original edge survives in place (extra arcs are appended).
  for (NodeId u = 0; u < g.num_slots(); ++u) {
    const auto before = g.neighbors(u);
    const auto after = result.graph.neighbors(u);
    ASSERT_GE(after.size(), before.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
      EXPECT_EQ(after[i], before[i]);
    }
  }
}

TEST(Latency, BudgetBoundsInsertions) {
  Csr g = small_rmat();
  const auto result = latency_transform(g, knobs(0.3, 0.02));
  EXPECT_LE(result.edges_added,
            static_cast<std::uint64_t>(0.02 * g.num_edges()) + 2);
}

TEST(Latency, ZeroBudgetAddsNothing) {
  Csr g = small_rmat();
  const auto result = latency_transform(g, knobs(0.5, 0.0));
  EXPECT_EQ(result.edges_added, 0u);
  EXPECT_EQ(result.graph.num_edges(), g.num_edges());
}

TEST(Latency, TriangleAnchorsBecomeClusters) {
  const auto result = latency_transform(clustered_graph(), knobs(0.9, 0.0));
  // Triangle members have CC 1.0 >= 0.9: at least one cluster forms.
  ASSERT_FALSE(result.schedule.empty());
  // A cluster anchored at a triangle node has the anchor + >= 2 members.
  EXPECT_GE(result.schedule.clusters[0].members.size(), 3u);
}

TEST(Latency, ClustersAreDisjointAndIndexed) {
  const auto result = latency_transform(small_rmat(), knobs(0.3));
  const auto& schedule = result.schedule;
  std::set<NodeId> seen;
  for (std::size_t c = 0; c < schedule.clusters.size(); ++c) {
    for (NodeId m : schedule.clusters[c].members) {
      EXPECT_TRUE(seen.insert(m).second) << "slot " << m << " in two clusters";
      ASSERT_LT(m, schedule.resident.size());
      EXPECT_EQ(schedule.resident[m], static_cast<NodeId>(c));
    }
  }
  for (NodeId s = 0; s < result.graph.num_slots(); ++s) {
    if (!seen.count(s)) {
      EXPECT_EQ(schedule.resident[s], kInvalidNode);
    }
  }
}

TEST(Latency, InnerIterationsFollowDiameterRule) {
  LatencyKnobs k = knobs(0.9, 0.0);
  k.t_diameter_factor = 2.0;
  const auto result = latency_transform(clustered_graph(), k);
  for (const auto& cluster : result.schedule.clusters) {
    // Triangle cluster: diameter 1 -> t = 2.
    EXPECT_GE(cluster.inner_iterations, 1u);
    EXPECT_LE(cluster.inner_iterations,
              2 * cluster.members.size());
  }
}

TEST(Latency, ClusterSizeRespectsCap) {
  LatencyKnobs k = knobs(0.2, 0.1);
  k.cluster_cap = 8;
  const auto result = latency_transform(small_rmat(), k);
  for (const auto& cluster : result.schedule.clusters) {
    EXPECT_LE(cluster.members.size(), 8u);
  }
}

TEST(Latency, MeanCcDoesNotDecrease) {
  const auto result = latency_transform(small_rmat(), knobs(0.3, 0.1));
  EXPECT_GE(result.mean_cc_after, result.mean_cc_before - 1e-12);
}

TEST(Latency, EdgeInsertionRaisesCcWhenBudgetAllows) {
  // Near-threshold square: 4-cycle has CC 0; with a chord the corner CCs
  // rise. Use a wheel-ish graph where scenario 1 applies.
  GraphBuilder b(5);
  auto undirected = [&](NodeId u, NodeId v) {
    b.add_edge(u, v);
    b.add_edge(v, u);
  };
  // Center 0 adjacent to 1,2,3,4; one chord 1-2 -> CC(0) = 1/6 ~ 0.17.
  undirected(0, 1);
  undirected(0, 2);
  undirected(0, 3);
  undirected(0, 4);
  undirected(1, 2);
  LatencyKnobs k;
  k.cc_threshold = 0.3;
  k.near_delta = 0.2;   // 0.17 is in [0.1, 0.3): scenario 1 fires
  k.edge_budget_fraction = 1.0;
  const auto result = latency_transform(b.build(), k);
  EXPECT_GT(result.edges_added, 0u);
  EXPECT_GT(result.mean_cc_after, result.mean_cc_before);
}

TEST(Latency, WeightedNewEdgesUseTwoHopSum) {
  GraphBuilder b(4);
  b.set_weighted(true);
  auto undirected = [&](NodeId u, NodeId v, Weight w) {
    b.add_edge(u, v, w);
    b.add_edge(v, u, w);
  };
  // Anchor 0 with siblings 1,2,3; sibling pair (1,2) linked -> CC(0)=1/3.
  undirected(0, 1, 2.0f);
  undirected(0, 2, 3.0f);
  undirected(0, 3, 5.0f);
  undirected(1, 2, 1.0f);
  LatencyKnobs k;
  k.cc_threshold = 0.5;
  k.near_delta = 0.2;  // CC(0) = 1/3 in [0.3, 0.5)
  k.edge_budget_fraction = 1.0;
  const auto result = latency_transform(b.build(), k);
  ASSERT_GT(result.edges_added, 0u);
  // Any inserted arc's weight equals the sum of the two hops through the
  // anchor: pairs from {2,3,5} -> sums in {5,7,8}.
  const std::set<float> valid{5.0f, 7.0f, 8.0f};
  for (NodeId u = 0; u < result.graph.num_slots(); ++u) {
    const auto before_deg = u < 4 ? 2 + (u == 0 ? 1 : 0) : 0;
    (void)before_deg;
    const auto nbrs = result.graph.neighbors(u);
    const auto wts = result.graph.edge_weights(u);
    const auto orig_deg = (u == 0) ? 3u : (u <= 2 ? 2u : 1u);
    for (std::size_t i = orig_deg; i < nbrs.size(); ++i) {
      EXPECT_TRUE(valid.count(wts[i])) << "weight " << wts[i];
    }
  }
}

TEST(Latency, GoldenScheduleOnFixedGraph) {
  // Exact cluster selection on the two-triangle graph with insertion off
  // (threshold 0.9, budget 0): the four CC=1.0 triangle corners are the
  // anchor candidates, all with undirected degree 2, so the (degree
  // desc, cc desc, id) order is 0, 1, 4, 5. Anchor 0 claims its triangle
  // {0, 1, 2}; anchor 1 is then resident and skipped; anchor 4 claims
  // {4, 3, 5} (members follow the sorted adjacency row); anchor 5 is
  // resident. Path nodes 6 and 7 (CC 0) stay unscheduled. Each triangle
  // has induced diameter 1 -> t = 2 * 1 = 2.
  const auto result = latency_transform(clustered_graph(), knobs(0.9, 0.0));
  const auto& schedule = result.schedule;
  ASSERT_EQ(schedule.clusters.size(), 2u);
  EXPECT_EQ(schedule.clusters[0].members, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(schedule.clusters[1].members, (std::vector<NodeId>{4, 3, 5}));
  EXPECT_EQ(schedule.clusters[0].inner_iterations, 2u);
  EXPECT_EQ(schedule.clusters[1].inner_iterations, 2u);
  EXPECT_EQ(schedule.resident,
            (std::vector<NodeId>{0, 0, 0, 1, 1, 1, kInvalidNode,
                                 kInvalidNode}));
  EXPECT_EQ(schedule.resident_count(), 6u);
}

TEST(Latency, DegreeCapExcludesHubsFromInsertion) {
  // kDegreeCap = 64 bounds the O(d^2) sibling scans: a hub whose
  // undirected degree exceeds the cap is excluded from the scenario-1/2
  // candidate lists, and its CC is computed over the first 64 sorted
  // neighbors only. Hub 70 has neighbors 0..69 with sibling edges
  // (0,1), (2,3), (4,5), (6,7) — all among the first 64 — so its capped
  // CC is 2*4/(64*63) ~ 0.00198, inside the near window
  // [0.01 - 0.0085, 0.01). Were the hub a candidate, pass 2 would link
  // arbitrary non-adjacent sibling pairs (there are thousands); the
  // degree cap keeps it out, no other node qualifies (pair members have
  // CC 1.0 and their only sibling pair is already adjacent; the rest
  // have degree 1), so NOTHING may be inserted.
  GraphBuilder b(71);
  auto undirected = [&](NodeId u, NodeId v) {
    b.add_edge(u, v);
    b.add_edge(v, u);
  };
  for (NodeId v = 0; v < 70; ++v) undirected(70, v);
  undirected(0, 1);
  undirected(2, 3);
  undirected(4, 5);
  undirected(6, 7);
  LatencyKnobs k;
  k.cc_threshold = 0.01;
  k.near_delta = 0.0085;
  k.edge_budget_fraction = 1.0;  // the budget must not be the limiter
  const auto result = latency_transform(b.build(), k);
  EXPECT_EQ(result.edges_added, 0u);
  // The capped hub CC is stable and exact: 4 links among the first 64
  // neighbors; pair members contribute CC 1.0 each; the rest 0.
  const double hub_cc = 2.0 * 4.0 / (64.0 * 63.0);
  EXPECT_DOUBLE_EQ(result.mean_cc_before, (hub_cc + 8.0) / 71.0);
  EXPECT_DOUBLE_EQ(result.mean_cc_after, result.mean_cc_before);
}

TEST(Latency, RoadGridFormsClustersAfterBoost) {
  RoadGridParams p;
  p.width = 24;
  p.height = 24;
  p.diagonal_fraction = 0.15;
  Csr g = generate_road_grid(p);
  LatencyKnobs k = knobs(0.25, 0.15);
  k.near_delta = 0.25;
  const auto result = latency_transform(g, k);
  EXPECT_TRUE(validate_graph(result.graph).ok);
  EXPECT_FALSE(result.schedule.empty());
}

}  // namespace
}  // namespace graffix::transform
