// Shared harness for the serve-layer tests: an in-process line client
// over a socketpair end, plus response collection helpers. Tests drive a
// real Server through the same byte protocol external clients use.
#pragma once

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include <sys/socket.h>
#include <unistd.h>

#include "serve/server.hpp"

namespace graffix::serve::testing {

/// Blocking line-framed client over one socket fd.
class LineClient {
 public:
  explicit LineClient(int fd) : fd_(fd) {}
  ~LineClient() { close_all(); }
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  void send_raw(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
  }

  void send(const std::string& line) { send_raw(line + "\n"); }

  /// Blocks for the next response line; false on EOF.
  bool recv_line(std::string& out) {
    while (true) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        out.assign(buffer_, 0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  std::string recv_or_die() {
    std::string line;
    EXPECT_TRUE(recv_line(line)) << "server closed the connection";
    return line;
  }

  /// Reads n response lines and keys them by their "id" field.
  std::map<std::uint64_t, std::string> recv_by_id(std::size_t n) {
    std::map<std::uint64_t, std::string> out;
    for (std::size_t i = 0; i < n; ++i) {
      std::string line;
      if (!recv_line(line)) break;
      out[extract_id(line)] = line;
    }
    return out;
  }

  static std::uint64_t extract_id(const std::string& line) {
    unsigned long long id = 0;
    std::sscanf(line.c_str(), "{\"id\":%llu", &id);
    return id;
  }

  void shutdown_write() { ::shutdown(fd_, SHUT_WR); }

  void close_all() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_;
  std::string buffer_;
};

/// Connects a LineClient to the server via a socketpair.
inline std::unique_ptr<LineClient> connect_client(Server& server) {
  int sv[2] = {-1, -1};
  EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sv));
  server.serve_fds(sv[0], sv[0]);
  return std::make_unique<LineClient>(sv[1]);
}

}  // namespace graffix::serve::testing
