// Property tests for the greedy transform phases under randomized knobs
// (fixed seeds): invariants that must hold for ANY knob setting, batched
// or serial —
//   latency: the edge budget is a hard cap, hole masks survive, every
//     inserted arc is a 2-hop shortcut whose weight is exactly the sum
//     of its two hops through a common neighbor;
//   replication: groups and group_of_slot agree, primaries lead their
//     groups, replicas occupy former holes only, the per-node copy cap
//     holds, and holes_filled counts exactly the replicas.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "gen/suite.hpp"
#include "graph/csr.hpp"
#include "transform/coalescing.hpp"
#include "transform/latency.hpp"
#include "transform/renumber.hpp"
#include "transform/replicate.hpp"

namespace graffix::transform {
namespace {

/// xorshift64* — deterministic knob randomization.
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545F4914F6CDD1Dull;
  }
  double uniform() {  // [0, 1)
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
  std::uint32_t below(std::uint32_t n) {
    return static_cast<std::uint32_t>(next() % n);
  }
};

/// Sorted undirected neighbor/weight view of a CSR (min weight over the
/// two directions), mirroring the transform's own definition.
struct UndView {
  std::vector<std::vector<std::pair<NodeId, Weight>>> rows;

  explicit UndView(const Csr& g) : rows(g.num_slots()) {
    const bool weighted = g.has_weights();
    for (NodeId u = 0; u < g.num_slots(); ++u) {
      const auto nbrs = g.neighbors(u);
      const auto wts = weighted ? g.edge_weights(u) : std::span<const Weight>{};
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (nbrs[i] == u) continue;
        const Weight w = weighted ? wts[i] : Weight{1};
        rows[u].emplace_back(nbrs[i], w);
        rows[nbrs[i]].emplace_back(u, w);
      }
    }
    for (auto& row : rows) {
      std::sort(row.begin(), row.end());
      row.erase(std::unique(row.begin(), row.end(),
                            [](const auto& a, const auto& b) {
                              return a.first == b.first;
                            }),
                row.end());
    }
  }

  [[nodiscard]] bool weight_of(NodeId a, NodeId b, Weight& w) const {
    const auto& row = rows[a];
    auto it = std::lower_bound(
        row.begin(), row.end(), b,
        [](const auto& e, NodeId x) { return e.first < x; });
    if (it == row.end() || it->first != b) return false;
    w = it->second;
    return true;
  }
};

// --- latency ---------------------------------------------------------

void check_latency_invariants(const Csr& input, const LatencyKnobs& knobs,
                              const std::string& what) {
  const LatencyResult result = latency_transform(input, knobs);

  // Hard budget cap.
  const auto budget = static_cast<std::uint64_t>(
      knobs.edge_budget_fraction * static_cast<double>(input.num_edges()));
  EXPECT_LE(result.edges_added, budget) << what;

  // Arc conservation: output = input + inserted.
  EXPECT_EQ(result.graph.num_edges(), input.num_edges() + result.edges_added)
      << what;

  // Hole-mask preservation: the transform never fills or creates holes,
  // and hole rows stay empty.
  ASSERT_EQ(result.graph.num_slots(), input.num_slots()) << what;
  for (NodeId s = 0; s < input.num_slots(); ++s) {
    EXPECT_EQ(result.graph.is_hole(s), input.is_hole(s)) << what << " slot "
                                                         << s;
    if (input.is_hole(s)) {
      EXPECT_EQ(result.graph.degree(s), 0u) << what << " hole slot " << s;
    }
  }

  // Every inserted arc (the per-row suffix beyond the input degree) is a
  // 2-hop shortcut: endpoints share a neighbor x in the RESULT graph's
  // undirected view with w == w(x,a) + w(x,b) exactly (float addition of
  // the two hop weights — no tolerance).
  const UndView und(result.graph);
  std::uint64_t inserted_seen = 0;
  for (NodeId a = 0; a < input.num_slots(); ++a) {
    const auto before = input.degree(a);
    const auto nbrs = result.graph.neighbors(a);
    const auto wts = result.graph.has_weights()
                         ? result.graph.edge_weights(a)
                         : std::span<const Weight>{};
    for (std::size_t i = before; i < nbrs.size(); ++i) {
      ++inserted_seen;
      const NodeId b = nbrs[i];
      const Weight w = result.graph.has_weights() ? wts[i] : Weight{1};
      EXPECT_LT(a, b) << what << ": inserted arcs are stored low->high";
      const bool weighted = result.graph.has_weights();
      bool two_hop = false;
      for (const auto& [x, wxa] : und.rows[a]) {
        if (x == b) continue;
        Weight wxb;
        if (!und.weight_of(x, b, wxb)) continue;
        // Unweighted inputs have no weight to corroborate — a common
        // neighbor alone witnesses the 2-hop shape.
        if (!weighted || w == wxa + wxb) {
          two_hop = true;
          break;
        }
      }
      EXPECT_TRUE(two_hop)
          << what << ": inserted arc " << a << "->" << b << " w=" << w
          << " has no 2-hop witness";
    }
  }
  EXPECT_EQ(inserted_seen, result.edges_added) << what;
}

TEST(TransformProperty, LatencyInvariantsUnderRandomKnobs) {
  Rng rng{0x5eed0001u};
  const Csr rmat = make_preset(GraphPreset::Rmat26, 9, 11);
  const Csr road = make_preset(GraphPreset::UsaRoad, 9, 11);
  for (int trial = 0; trial < 6; ++trial) {
    LatencyKnobs knobs;
    knobs.cc_threshold = 0.3 + 0.6 * rng.uniform();
    knobs.near_delta = 0.4 * rng.uniform();
    knobs.edge_budget_fraction = 0.2 * rng.uniform();
    knobs.max_edges_per_anchor = rng.below(12);
    const std::string what = "trial " + std::to_string(trial);
    check_latency_invariants(rmat, knobs, what + " rmat");
    check_latency_invariants(road, knobs, what + " road");
  }
}

TEST(TransformProperty, LatencyPreservesHolesOfRenumberedInput) {
  // The transform composes with the coalescing output: feed it a
  // renumbered graph WITH holes and check the mask survives.
  const Csr g = make_preset(GraphPreset::Rmat26, 9, 11);
  const RenumberResult renumber = renumber_bfs_forest(g, 16);
  const Csr renumbered = apply_renumbering(g, renumber);
  ASSERT_TRUE(renumbered.has_holes());
  LatencyKnobs knobs;
  knobs.cc_threshold = 0.4;
  knobs.near_delta = 0.3;
  knobs.edge_budget_fraction = 0.1;
  check_latency_invariants(renumbered, knobs, "renumbered-with-holes");
}

// --- replication -----------------------------------------------------

void check_replication_invariants(const Csr& renumbered,
                                  const RenumberResult& renumber,
                                  const CoalescingKnobs& knobs,
                                  const std::string& what) {
  const ReplicationResult result =
      replicate_into_holes(renumbered, renumber, knobs);
  const ReplicaMap& map = result.replicas;

  // groups <-> group_of_slot bijection.
  std::set<NodeId> grouped;
  std::uint64_t replicas_total = 0;
  for (std::size_t gid = 0; gid < map.groups.size(); ++gid) {
    const auto& group = map.groups[gid];
    ASSERT_GE(group.size(), 2u) << what << " group " << gid;
    // Per-node copy cap (primary + at most max_replicas_per_node copies).
    EXPECT_LE(group.size(),
              static_cast<std::size_t>(knobs.max_replicas_per_node) + 1)
        << what << " group " << gid;
    // Primary first, a real node; replicas occupy former holes only.
    EXPECT_FALSE(renumbered.is_hole(group[0])) << what << " group " << gid;
    for (std::size_t i = 1; i < group.size(); ++i) {
      EXPECT_TRUE(renumbered.is_hole(group[i]))
          << what << " replica slot " << group[i];
      EXPECT_FALSE(result.graph.is_hole(group[i]))
          << what << " replica slot " << group[i];
      ++replicas_total;
    }
    for (NodeId s : group) {
      EXPECT_EQ(map.group_of_slot[s], static_cast<NodeId>(gid)) << what;
      EXPECT_TRUE(grouped.insert(s).second)
          << what << " slot " << s << " in two groups";
    }
  }
  for (NodeId s = 0; s < result.graph.num_slots(); ++s) {
    if (!grouped.count(s)) {
      EXPECT_EQ(map.group_of_slot[s], kInvalidNode) << what << " slot " << s;
    }
  }

  // holes_filled counts exactly the replicas; totals are conserved.
  EXPECT_EQ(result.holes_filled, replicas_total) << what;
  EXPECT_LE(result.holes_filled, result.holes_total) << what;
  EXPECT_EQ(result.graph.num_edges(),
            renumbered.num_edges() + result.edges_added)
      << what;
}

TEST(TransformProperty, ReplicationInvariantsUnderRandomKnobs) {
  Rng rng{0x5eed0002u};
  const Csr rmat = make_preset(GraphPreset::Rmat26, 9, 11);
  const Csr lj = make_preset(GraphPreset::LiveJournal, 9, 11);
  for (const Csr* g : {&rmat, &lj}) {
    const RenumberResult renumber = renumber_bfs_forest(*g, 16);
    const Csr renumbered = apply_renumbering(*g, renumber);
    for (int trial = 0; trial < 6; ++trial) {
      CoalescingKnobs knobs;
      knobs.connectedness_threshold = 0.2 + 0.7 * rng.uniform();
      knobs.max_new_edges_per_replica = rng.below(13);
      knobs.max_replicas_per_node = 1 + rng.below(6);
      check_replication_invariants(
          renumbered, renumber, knobs,
          "trial " + std::to_string(trial) + " g" +
              std::to_string(g == &rmat ? 0 : 1));
    }
  }
}

}  // namespace
}  // namespace graffix::transform
