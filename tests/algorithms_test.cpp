// Host reference algorithm tests: analytic results on small graphs and
// cross-validation between independent implementations (Dijkstra vs
// Bellman-Ford, Tarjan vs FW-BW, Kruskal vs Borůvka) on generated graphs.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "algorithms/bc.hpp"
#include "algorithms/bfs.hpp"
#include "algorithms/mst.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/scc.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/steiner.hpp"
#include "gen/rmat.hpp"
#include "gen/road_grid.hpp"
#include "graph/builder.hpp"

namespace graffix {
namespace {

Csr weighted_diamond() {
  GraphBuilder b(4);
  b.set_weighted(true);
  b.add_edge(0, 1, 1.0f);
  b.add_edge(0, 2, 4.0f);
  b.add_edge(1, 3, 2.0f);
  b.add_edge(2, 3, 1.0f);
  return b.build();
}

Csr directed_cycle(NodeId n) {
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) b.add_edge(i, (i + 1) % n);
  return b.build();
}

Csr small_rmat(std::uint32_t scale = 9) {
  RmatParams p;
  p.scale = scale;
  p.edge_factor = 8;
  return generate_rmat(p);
}

TEST(ParallelBfs, PathLevels) {
  GraphBuilder b(5);
  for (NodeId i = 0; i + 1 < 5; ++i) b.add_edge(i, i + 1);
  Csr g = b.build();
  const auto levels = parallel_bfs(g, 0);
  for (NodeId i = 0; i < 5; ++i) EXPECT_EQ(levels[i], i);
}

TEST(ParallelBfs, MatchesSerialOnRmat) {
  Csr g = small_rmat();
  const auto par = parallel_bfs(g, 0);
  // Serial reference via Dijkstra on unit weights.
  GraphBuilder b(g.num_nodes());
  for (NodeId u = 0; u < g.num_slots(); ++u) {
    for (NodeId v : g.neighbors(u)) b.add_edge(u, v);
  }
  Csr unweighted = b.build();
  const auto dist = sssp_dijkstra(unweighted, 0);
  for (NodeId v = 0; v < g.num_slots(); ++v) {
    if (dist[v] == kInfWeight) {
      EXPECT_EQ(par[v], kInvalidNode) << v;
    } else {
      EXPECT_EQ(static_cast<Weight>(par[v]), dist[v]) << v;
    }
  }
}

TEST(Sssp, DijkstraOnDiamond) {
  const auto dist = sssp_dijkstra(weighted_diamond(), 0);
  EXPECT_FLOAT_EQ(dist[0], 0.0f);
  EXPECT_FLOAT_EQ(dist[1], 1.0f);
  EXPECT_FLOAT_EQ(dist[2], 4.0f);
  EXPECT_FLOAT_EQ(dist[3], 3.0f);  // 0->1->3
}

TEST(Sssp, UnreachableIsInfinite) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const auto dist = sssp_dijkstra(b.build(), 0);
  EXPECT_EQ(dist[2], kInfWeight);
}

TEST(Sssp, BellmanFordMatchesDijkstra) {
  Csr g = small_rmat();
  const auto d1 = sssp_dijkstra(g, 0);
  const auto d2 = sssp_bellman_ford(g, 0);
  for (NodeId v = 0; v < g.num_slots(); ++v) {
    if (d1[v] == kInfWeight) {
      EXPECT_EQ(d2[v], kInfWeight);
    } else {
      EXPECT_NEAR(d1[v], d2[v], 1e-3) << v;
    }
  }
}

TEST(Pagerank, SumsToOne) {
  Csr g = small_rmat();
  const auto result = pagerank(g);
  const double total =
      std::accumulate(result.rank.begin(), result.rank.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
  EXPECT_GT(result.iterations, 1u);
}

TEST(Pagerank, UniformOnCycle) {
  Csr g = directed_cycle(8);
  const auto result = pagerank(g);
  for (NodeId v = 0; v < 8; ++v) {
    EXPECT_NEAR(result.rank[v], 1.0 / 8, 1e-9);
  }
}

TEST(Pagerank, HubOutranksLeaves) {
  // Star pointing at the center: center absorbs rank.
  GraphBuilder b(6);
  for (NodeId leaf = 1; leaf < 6; ++leaf) b.add_edge(leaf, 0);
  const auto result = pagerank(b.build());
  for (NodeId leaf = 1; leaf < 6; ++leaf) {
    EXPECT_GT(result.rank[0], result.rank[leaf]);
  }
}

TEST(Pagerank, DanglingMassRedistributed) {
  // 0 -> 1, 1 dangling; ranks must still sum to 1.
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const auto result = pagerank(b.build());
  EXPECT_NEAR(result.rank[0] + result.rank[1], 1.0, 1e-9);
  EXPECT_GT(result.rank[1], result.rank[0]);
}

TEST(Bc, PathCenterHasHighestCentrality) {
  // Undirected path 0-1-2-3-4: node 2 lies on the most shortest paths.
  GraphBuilder b(5);
  for (NodeId i = 0; i + 1 < 5; ++i) {
    b.add_edge(i, i + 1);
    b.add_edge(i + 1, i);
  }
  Csr g = b.build();
  const auto bc = betweenness_centrality_all(g);
  EXPECT_GT(bc[2], bc[1]);
  EXPECT_GT(bc[1], bc[0]);
  // Analytic: on a 5-path, bc(center) = 2 * (2*2) = ... directed both
  // ways counts each ordered pair once: center lies on 2x2x2 = 8 ordered
  // pairs' shortest paths.
  EXPECT_DOUBLE_EQ(bc[2], 8.0);
}

TEST(Bc, StarCenterDominates) {
  GraphBuilder b(6);
  for (NodeId leaf = 1; leaf < 6; ++leaf) {
    b.add_edge(0, leaf);
    b.add_edge(leaf, 0);
  }
  const auto bc = betweenness_centrality_all(b.build());
  EXPECT_GT(bc[0], 0.0);
  for (NodeId leaf = 1; leaf < 6; ++leaf) EXPECT_DOUBLE_EQ(bc[leaf], 0.0);
  // Center lies on all 5*4 = 20 leaf-to-leaf shortest paths.
  EXPECT_DOUBLE_EQ(bc[0], 20.0);
}

TEST(Bc, SampledSourcesAreDeterministic) {
  Csr g = small_rmat();
  const auto s1 = sample_bc_sources(g, 10, 7);
  const auto s2 = sample_bc_sources(g, 10, 7);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1.size(), 10u);
  const auto s3 = sample_bc_sources(g, 10, 8);
  EXPECT_NE(s1, s3);
}

TEST(Scc, CycleIsOneComponent) {
  const auto result = scc_tarjan(directed_cycle(6));
  EXPECT_EQ(result.count, 1u);
}

TEST(Scc, DagIsAllSingletons) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  const auto result = scc_tarjan(b.build());
  EXPECT_EQ(result.count, 4u);
}

TEST(Scc, TwoCyclesBridged) {
  GraphBuilder b(6);
  // Cycle {0,1,2}, cycle {3,4,5}, bridge 2->3.
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(5, 3);
  b.add_edge(2, 3);
  const auto result = scc_tarjan(b.build());
  EXPECT_EQ(result.count, 2u);
  EXPECT_EQ(result.component[0], result.component[1]);
  EXPECT_NE(result.component[0], result.component[3]);
}

TEST(Scc, FwBwMatchesTarjanOnRmat) {
  Csr g = small_rmat(8);
  const auto tarjan = scc_tarjan(g);
  const auto fwbw = scc_fw_bw(g);
  EXPECT_EQ(fwbw.count, tarjan.count);
}

TEST(Scc, FwBwMatchesTarjanOnRoad) {
  RoadGridParams p;
  p.width = 12;
  p.height = 12;
  Csr g = generate_road_grid(p);
  EXPECT_EQ(scc_fw_bw(g).count, scc_tarjan(g).count);
}

TEST(Mst, TriangleChoosesTwoCheapest) {
  GraphBuilder b(3);
  b.set_weighted(true);
  b.add_edge(0, 1, 1.0f);
  b.add_edge(1, 2, 2.0f);
  b.add_edge(2, 0, 10.0f);
  const auto result = mst_kruskal(b.build());
  EXPECT_DOUBLE_EQ(result.total_weight, 3.0);
  EXPECT_EQ(result.edges_in_forest, 2u);
  EXPECT_EQ(result.components, 1u);
}

TEST(Mst, ForestOnDisconnectedGraph) {
  GraphBuilder b(4);
  b.set_weighted(true);
  b.add_edge(0, 1, 1.0f);
  b.add_edge(2, 3, 2.0f);
  const auto result = mst_kruskal(b.build());
  EXPECT_DOUBLE_EQ(result.total_weight, 3.0);
  EXPECT_EQ(result.components, 2u);
}

TEST(Mst, BoruvkaMatchesKruskalOnRmat) {
  Csr g = small_rmat(9);
  const auto kruskal = mst_kruskal(g);
  const auto boruvka = mst_boruvka(g);
  EXPECT_NEAR(kruskal.total_weight, boruvka.total_weight,
              1e-6 * std::max(1.0, kruskal.total_weight));
  EXPECT_EQ(kruskal.edges_in_forest, boruvka.edges_in_forest);
}

TEST(Mst, BoruvkaMatchesKruskalOnRoad) {
  RoadGridParams p;
  p.width = 16;
  p.height = 16;
  Csr g = generate_road_grid(p);
  const auto kruskal = mst_kruskal(g);
  const auto boruvka = mst_boruvka(g);
  EXPECT_NEAR(kruskal.total_weight, boruvka.total_weight,
              1e-6 * std::max(1.0, kruskal.total_weight));
}

TEST(Steiner, PathTerminals) {
  // Weighted path 0-1-2-3-4, terminals {0, 4}: cost = path length.
  GraphBuilder b(5);
  b.set_weighted(true);
  for (NodeId i = 0; i + 1 < 5; ++i) {
    b.add_edge(i, i + 1, 2.0f);
    b.add_edge(i + 1, i, 2.0f);
  }
  Csr g = b.build();
  const std::vector<NodeId> terminals{0, 4};
  const auto result = steiner_2approx(g, terminals);
  EXPECT_TRUE(result.connected);
  EXPECT_DOUBLE_EQ(result.cost, 8.0);
  ASSERT_EQ(result.tree_edges.size(), 1u);
}

TEST(Steiner, StarTerminals) {
  // Star with center 0 and leaves 1..4 (unit edges), terminals = leaves:
  // KMB cost = MST of leaf-pairwise distances (all 2) = 3 edges x 2 = 6;
  // optimal Steiner tree is 4 (using the center), ratio 1.5 <= 2.
  GraphBuilder b(5);
  b.set_weighted(true);
  for (NodeId leaf = 1; leaf < 5; ++leaf) {
    b.add_edge(0, leaf, 1.0f);
    b.add_edge(leaf, 0, 1.0f);
  }
  Csr g = b.build();
  const std::vector<NodeId> terminals{1, 2, 3, 4};
  const auto result = steiner_2approx(g, terminals);
  EXPECT_TRUE(result.connected);
  EXPECT_DOUBLE_EQ(result.cost, 6.0);
  EXPECT_LE(result.cost, 2.0 * 4.0);  // the 2-approx guarantee
}

TEST(Steiner, DisconnectedTerminalsReported) {
  GraphBuilder b(4);
  b.set_weighted(true);
  b.add_edge(0, 1, 1.0f);
  b.add_edge(1, 0, 1.0f);
  Csr g = b.build();
  const std::vector<NodeId> terminals{0, 3};
  const auto result = steiner_2approx(g, terminals);
  EXPECT_FALSE(result.connected);
}

TEST(Steiner, TrivialTerminalSets) {
  Csr g = weighted_diamond();
  EXPECT_TRUE(steiner_2approx(g, std::vector<NodeId>{2}).connected);
  EXPECT_DOUBLE_EQ(steiner_2approx(g, std::vector<NodeId>{2}).cost, 0.0);
  EXPECT_FALSE(steiner_2approx(g, std::vector<NodeId>{}).connected);
}

TEST(Steiner, CustomOracleIsUsed) {
  // An oracle that pretends everything is at distance 1.
  const std::vector<NodeId> terminals{0, 1, 2};
  std::size_t calls = 0;
  const auto result = steiner_2approx(
      terminals, [&](NodeId) {
        ++calls;
        return std::vector<double>(3, 1.0);
      });
  EXPECT_EQ(calls, 3u);
  EXPECT_TRUE(result.connected);
  EXPECT_DOUBLE_EQ(result.cost, 2.0);
}

}  // namespace
}  // namespace graffix
