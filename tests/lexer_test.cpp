// Unit tests for the graffix-lint lexer layer (tools/lint/lexer.hpp):
// the phase-2 line splicer, the literal/comment scanner, and the token
// stream the parse layer consumes. Every corner documented in the
// header is pinned here: raw strings with custom delimiters, the
// non-nesting of block comments, `//` adjacent to string literals,
// digit separators vs char literals, and backslash-newline splicing
// (including its suspension inside raw strings).
#include "lexer.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace lint = graffix::lint;

namespace {

// Joins the code text of every scanned line — convenient for asserting
// on what the rule layer "sees" without caring about line boundaries.
std::string all_code(const std::vector<lint::ScannedLine>& lines) {
  std::string out;
  for (const auto& l : lines) {
    out += l.code;
    out += '\n';
  }
  return out;
}

std::string all_comments(const std::vector<lint::ScannedLine>& lines) {
  std::string out;
  for (const auto& l : lines) {
    out += l.comment;
    out += '\n';
  }
  return out;
}

}  // namespace

// --- Basic scanning -------------------------------------------------------

TEST(LexerScan, SplitsCodeAndLineComment) {
  const auto lines = lint::scan_lines("int x = 1;  // trailing note\n");
  ASSERT_GE(lines.size(), 1u);
  EXPECT_EQ(lines[0].code.substr(0, 10), "int x = 1;");
  EXPECT_NE(lines[0].comment.find("trailing note"), std::string::npos);
  EXPECT_EQ(lines[0].code.find("trailing"), std::string::npos);
}

TEST(LexerScan, StringContentsAreBlanked) {
  const auto lines = lint::scan_lines(
      "const char* s = \"#pragma omp parallel for\";\n");
  ASSERT_GE(lines.size(), 1u);
  // The delimiters survive (so the tokenizer still sees a string token)
  // but the payload is gone: quoted rule patterns can never fire.
  EXPECT_EQ(lines[0].code.find("pragma"), std::string::npos);
  EXPECT_NE(lines[0].code.find('"'), std::string::npos);
}

// --- Raw strings ----------------------------------------------------------

TEST(LexerRawString, CustomDelimiterIsHonored) {
  // The `)"` inside the literal must NOT close it — only `)xy"` does.
  const auto lines = lint::scan_lines(
      "auto s = R\"xy(contains )\" and rand() too)xy\"; int after = rand();\n");
  ASSERT_GE(lines.size(), 1u);
  // Payload (including the embedded rand()) is blanked...
  EXPECT_EQ(lines[0].code.find("contains"), std::string::npos);
  // ...but code after the true terminator is scanned normally.
  EXPECT_NE(lines[0].code.find("after"), std::string::npos);
  EXPECT_NE(lines[0].code.find("rand"), std::string::npos);
}

TEST(LexerRawString, MultiLinePayloadIsBlanked) {
  const auto lines = lint::scan_lines(
      "auto s = R\"(line one\n"
      "#pragma omp parallel for\n"
      "line three)\"; int tail = 0;\n");
  ASSERT_GE(lines.size(), 3u);
  const std::string code = all_code(lines);
  EXPECT_EQ(code.find("pragma"), std::string::npos);
  EXPECT_NE(code.find("tail"), std::string::npos);
}

TEST(LexerRawString, ReadsAsOneStringToken) {
  const auto lines = lint::scan_lines("auto s = R\"xy(payload)xy\";\n");
  const auto toks = lint::tokenize(lines);
  int strings = 0;
  for (const auto& t : toks) {
    if (t.kind == lint::Token::Kind::String) ++strings;
  }
  EXPECT_EQ(strings, 1);
}

// --- Comments -------------------------------------------------------------

TEST(LexerComment, BlockCommentsDoNotNest) {
  // Per the standard, the first */ ends the comment regardless of any
  // interior /* — so `still_code` must be scanned as code.
  const auto lines =
      lint::scan_lines("/* outer /* inner */ still_code = 1; */\n");
  ASSERT_GE(lines.size(), 1u);
  EXPECT_NE(lines[0].code.find("still_code"), std::string::npos);
}

TEST(LexerComment, MultiLineBlockCommentIsStripped) {
  const auto lines = lint::scan_lines(
      "int a = 1; /* spans\n"
      "two lines */ int b = 2;\n");
  ASSERT_GE(lines.size(), 2u);
  EXPECT_NE(lines[0].code.find("a"), std::string::npos);
  EXPECT_EQ(lines[1].code.find("two"), std::string::npos);
  EXPECT_NE(lines[1].code.find("b"), std::string::npos);
}

TEST(LexerComment, SlashSlashAfterClosingQuoteIsAComment) {
  const auto lines =
      lint::scan_lines("const char* s = \"text\"; // after the literal\n");
  ASSERT_GE(lines.size(), 1u);
  EXPECT_NE(lines[0].comment.find("after the literal"), std::string::npos);
  EXPECT_EQ(lines[0].code.find("after"), std::string::npos);
}

TEST(LexerComment, SlashSlashInsideLiteralIsNotAComment) {
  const auto lines =
      lint::scan_lines("const char* url = \"http://example\"; int x = 1;\n");
  ASSERT_GE(lines.size(), 1u);
  // Nothing was treated as a comment, and the code after the literal
  // survives.
  EXPECT_TRUE(lines[0].comment.empty());
  EXPECT_NE(lines[0].code.find('x'), std::string::npos);
}

// --- Char literals and digit separators -----------------------------------

TEST(LexerDigits, SeparatorDoesNotOpenCharLiteral) {
  // If the ' in 1'000'000 opened a char literal, the ; would be
  // swallowed and `y` would land inside a literal.
  const auto lines = lint::scan_lines("int x = 1'000'000; int y = 2;\n");
  ASSERT_GE(lines.size(), 1u);
  EXPECT_NE(lines[0].code.find('y'), std::string::npos);
  const auto toks = lint::tokenize(lines);
  for (const auto& t : toks) {
    EXPECT_NE(t.kind, lint::Token::Kind::CharLit) << t.text;
  }
}

TEST(LexerDigits, PrefixedCharLiteralStillScans) {
  // u8'a' IS a char literal even though the ' follows an identifier
  // character — the prefix rule must not be confused with separators.
  const auto lines = lint::scan_lines("auto c = u8'a'; int z = 3;\n");
  ASSERT_GE(lines.size(), 1u);
  // If the ' were treated as a digit separator the literal would leak
  // into the code text; as a char literal its payload is blanked and
  // the statement after it scans normally.
  EXPECT_NE(lines[0].code.find('z'), std::string::npos);
  const auto toks = lint::tokenize(lines);
  int char_lits = 0;
  for (const auto& t : toks) {
    if (t.kind == lint::Token::Kind::CharLit) ++char_lits;
  }
  EXPECT_EQ(char_lits, 1);
}

TEST(LexerDigits, EscapedQuoteInCharLiteral) {
  const auto lines = lint::scan_lines("char q = '\\''; int w = 4;\n");
  ASSERT_GE(lines.size(), 1u);
  EXPECT_NE(lines[0].code.find('w'), std::string::npos);
}

// --- Phase-2 splicing -----------------------------------------------------

TEST(LexerSplice, ContinuedPragmaIsOneLogicalLine) {
  const auto lines = lint::scan_lines(
      "#pragma omp \\\n"
      "    parallel for\n"
      "int x = 0;\n");
  ASSERT_GE(lines.size(), 3u);
  // Spliced content attributes to the FIRST physical line...
  EXPECT_NE(lines[0].code.find("parallel for"), std::string::npos);
  // ...and the continued physical line is left empty so numbering stays
  // 1:1 with the file.
  EXPECT_TRUE(lines[1].code.empty());
  EXPECT_NE(lines[2].code.find('x'), std::string::npos);
}

TEST(LexerSplice, SplicedLineCommentSwallowsNextLine) {
  // A line comment ending in a backslash continues onto the next
  // physical line (a classic gotcha) — `hidden` must NOT be code.
  const auto lines = lint::scan_lines(
      "// comment continues \\\n"
      "int hidden = 1;\n"
      "int visible = 2;\n");
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(all_code(lines).find("hidden"), std::string::npos);
  EXPECT_NE(all_code(lines).find("visible"), std::string::npos);
  EXPECT_NE(all_comments(lines).find("hidden"), std::string::npos);
}

TEST(LexerSplice, RawStringSuspendsSplicing) {
  // Inside a raw string a backslash-newline is literal content, not a
  // splice — the terminator on the next line must still close it.
  const auto lines = lint::scan_lines(
      "auto s = R\"(line with trailing backslash \\\n"
      ")\"; int tail = 5;\n");
  ASSERT_GE(lines.size(), 2u);
  EXPECT_NE(all_code(lines).find("tail"), std::string::npos);
}

TEST(LexerSplice, SplicedStringLiteralStaysBlanked) {
  const auto lines = lint::scan_lines(
      "const char* s = \"first \\\n"
      "second\"; int done = 6;\n");
  ASSERT_GE(lines.size(), 2u);
  const std::string code = all_code(lines);
  EXPECT_EQ(code.find("first"), std::string::npos);
  EXPECT_EQ(code.find("second"), std::string::npos);
  EXPECT_NE(code.find("done"), std::string::npos);
}

// --- Tokenization ---------------------------------------------------------

TEST(LexerTokens, KindsAndOrder) {
  const auto toks =
      lint::tokenize(lint::scan_lines("int n = 42; f(\"s\");\n"));
  ASSERT_GE(toks.size(), 9u);
  EXPECT_EQ(toks[0].kind, lint::Token::Kind::Ident);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[1].text, "n");
  EXPECT_EQ(toks[2].text, "=");
  EXPECT_EQ(toks[3].kind, lint::Token::Kind::Number);
  EXPECT_EQ(toks[3].text, "42");
}

TEST(LexerTokens, PreprocessorLinesAreSkipped) {
  const auto toks = lint::tokenize(lint::scan_lines(
      "#include <vector>\n"
      "#if defined(X)\n"
      "int kept = 1;\n"
      "#endif\n"));
  // Only the non-pp line contributes tokens: pp-conditionals would
  // otherwise unbalance the parse layer's brace matching.
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[1].text, "kept");
}

TEST(LexerTokens, LongestMatchPunctuation) {
  const auto toks =
      lint::tokenize(lint::scan_lines("a <<= b; c->d; e <=> f; g::h;\n"));
  std::vector<std::string> puncts;
  for (const auto& t : toks) {
    if (t.kind == lint::Token::Kind::Punct) puncts.push_back(t.text);
  }
  ASSERT_GE(puncts.size(), 4u);
  EXPECT_EQ(puncts[0], "<<=");
  EXPECT_EQ(puncts[1], ";");
  EXPECT_EQ(puncts[2], "->");
  // <=> then ::
  bool saw_spaceship = false, saw_scope = false;
  for (const auto& p : puncts) {
    if (p == "<=>") saw_spaceship = true;
    if (p == "::") saw_scope = true;
  }
  EXPECT_TRUE(saw_spaceship);
  EXPECT_TRUE(saw_scope);
}

TEST(LexerTokens, LineNumbersTrackPhysicalLines) {
  const auto toks = lint::tokenize(lint::scan_lines(
      "int a;\n"
      "\n"
      "int b;\n"));
  ASSERT_EQ(toks.size(), 6u);
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[3].line, 3);
}

TEST(LexerTokens, SplicedTokensReportFirstPhysicalLine) {
  const auto toks = lint::tokenize(lint::scan_lines(
      "int ab\\\n"
      "cd = 1;\n"
      "int next = 2;\n"));
  // `abcd` is one identifier on logical line 1; `next` stays on line 3.
  ASSERT_GE(toks.size(), 5u);
  EXPECT_EQ(toks[1].text, "abcd");
  EXPECT_EQ(toks[1].line, 1);
  bool found_next = false;
  for (const auto& t : toks) {
    if (t.text == "next") {
      EXPECT_EQ(t.line, 3);
      found_next = true;
    }
  }
  EXPECT_TRUE(found_next);
}
