// Unit tests for the persistent worker pool behind parallel_tasks /
// parallel_for (util/parallel.{hpp,cpp}). These drive detail::
// pool_dispatch directly with an explicit width so real pool threads
// are exercised even on a one-core box, where effective_workers()
// would otherwise serialize every template wrapper inline.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/parallel.hpp"

namespace graffix {
namespace {

struct DispatchProbe {
  std::vector<std::atomic<std::uint32_t>> hits;
  std::atomic<std::uint32_t> not_in_parallel{0};
  std::atomic<std::uint32_t> not_pool_active{0};

  explicit DispatchProbe(std::size_t n) : hits(n) {}
};

void probe_task(void* ctx, std::size_t i) {
  auto* p = static_cast<DispatchProbe*>(ctx);
  p->hits[i].fetch_add(1, std::memory_order_relaxed);
  // Every task — on a worker OR on the participating caller — runs
  // inside a parallel region as far as nesting guards are concerned.
  if (!in_parallel()) p->not_in_parallel.fetch_add(1);
  if (!detail::pool_worker_active()) p->not_pool_active.fetch_add(1);
}

TEST(WorkerPool, DispatchRunsEveryIndexExactlyOnce) {
  constexpr std::size_t kTasks = 4096;
  DispatchProbe probe(kTasks);
  ASSERT_FALSE(detail::pool_worker_active());
  detail::pool_dispatch(kTasks, /*width=*/4, probe_task, &probe);
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(probe.hits[i].load(), 1u) << "index " << i;
  }
  EXPECT_EQ(probe.not_in_parallel.load(), 0u);
  EXPECT_EQ(probe.not_pool_active.load(), 0u);
  // The dispatch is a barrier: the caller's pool-participation flag must
  // be restored before control returns.
  EXPECT_FALSE(detail::pool_worker_active());
  EXPECT_FALSE(in_parallel());
  // width 4 = caller + up to 3 pool workers, spawned lazily but spawned
  // for real — this is what puts the pool under the TSan shard.
  EXPECT_GE(detail::pool_spawned_for_test(), 3);
}

TEST(WorkerPool, RedispatchReusesWorkers) {
  DispatchProbe warmup(64);
  detail::pool_dispatch(64, /*width=*/4, probe_task, &warmup);
  const int spawned = detail::pool_spawned_for_test();
  EXPECT_GE(spawned, 3);
  // Persistent team: later dispatches at the same width must not spawn
  // — fork/join per sweep is exactly what this pool exists to avoid.
  for (int round = 0; round < 50; ++round) {
    DispatchProbe probe(64);
    detail::pool_dispatch(64, /*width=*/4, probe_task, &probe);
    for (std::size_t i = 0; i < 64; ++i) {
      EXPECT_EQ(probe.hits[i].load(), 1u);
    }
  }
  EXPECT_EQ(detail::pool_spawned_for_test(), spawned);
}

TEST(WorkerPool, SerialPathsSkipThePool) {
  // n_tasks <= 1 or width <= 1 runs inline on the caller with no
  // parallel-region flag: a nested sweep sizing itself off in_parallel()
  // must still see a serial context.
  DispatchProbe probe(1);
  detail::pool_dispatch(1, /*width=*/8, probe_task, &probe);
  EXPECT_EQ(probe.hits[0].load(), 1u);
  EXPECT_EQ(probe.not_in_parallel.load(), 1u);
  EXPECT_EQ(probe.not_pool_active.load(), 1u);

  DispatchProbe narrow(16);
  detail::pool_dispatch(16, /*width=*/1, probe_task, &narrow);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(narrow.hits[i].load(), 1u);
  }
  EXPECT_EQ(narrow.not_in_parallel.load(), 16u);
}

struct NestedProbe {
  std::atomic<std::uint32_t> outer{0};
  std::atomic<std::uint32_t> inner{0};
  std::atomic<std::uint32_t> inner_escaped{0};
};

TEST(WorkerPool, NestedParallelTasksSerializeInsteadOfDeadlocking) {
  // parallel_tasks called from inside a pool task must run its body
  // inline (in_parallel() guard): re-entering the pool from a worker
  // would self-deadlock the team, and oversubscribing never helps
  // deterministic CPU-bound work. Completion of this test IS the
  // no-deadlock assertion.
  NestedProbe probe;
  detail::pool_dispatch(
      32, /*width=*/4,
      [](void* ctx, std::size_t) {
        auto* p = static_cast<NestedProbe*>(ctx);
        p->outer.fetch_add(1);
        parallel_tasks(8, [&](std::size_t) {
          p->inner.fetch_add(1);
          if (!in_parallel()) p->inner_escaped.fetch_add(1);
        });
      },
      &probe);
  EXPECT_EQ(probe.outer.load(), 32u);
  EXPECT_EQ(probe.inner.load(), 32u * 8u);
  EXPECT_EQ(probe.inner_escaped.load(), 0u);
}

TEST(WorkerPool, UnevenTaskCostStillCoversEveryIndex) {
  // Dynamic claiming: wildly skewed bodies (one task does ~all the
  // work) must not strand indices behind a static partition.
  struct Skew {
    std::vector<std::atomic<std::uint32_t>> hits;
    std::atomic<std::uint64_t> sink{0};
    explicit Skew(std::size_t n) : hits(n) {}
  } probe(257);
  detail::pool_dispatch(
      257, /*width=*/4,
      [](void* ctx, std::size_t i) {
        auto* p = static_cast<Skew*>(ctx);
        p->hits[i].fetch_add(1);
        if (i == 0) {
          std::uint64_t x = 88172645463325252ull;
          for (int k = 0; k < 2000000; ++k) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
          }
          p->sink.fetch_add(x);
        }
      },
      &probe);
  for (std::size_t i = 0; i < 257; ++i) {
    EXPECT_EQ(probe.hits[i].load(), 1u) << "index " << i;
  }
}

TEST(WorkerPool, TemplateWrappersStayDeterministic) {
  // parallel_for's static slices through the pool must cover the range
  // exactly once regardless of thread setting (on a one-core box these
  // serialize inline; on CI they hit the pool — same contract).
  for (int t : {1, 2, 8}) {
    set_num_threads(t);
    std::vector<std::atomic<std::uint32_t>> hits(1000);
    parallel_for(std::size_t{0}, std::size_t{1000},
                 [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1u) << "t=" << t << " i=" << i;
    }
    std::vector<std::atomic<std::uint32_t>> dyn(777);
    parallel_for_dynamic(std::size_t{0}, std::size_t{777},
                         [&](std::size_t i) { dyn[i].fetch_add(1); }, 64);
    for (std::size_t i = 0; i < dyn.size(); ++i) {
      EXPECT_EQ(dyn[i].load(), 1u) << "t=" << t << " i=" << i;
    }
  }
  set_num_threads(0);
}

}  // namespace
}  // namespace graffix
