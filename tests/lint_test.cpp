// Self-tests for graffix-lint (tools/lint): fixture snippets that must
// trigger each rule R1-R4 exactly once, scoping negatives (allowlists,
// bench exemption), the suppression/budget machinery, and the directory
// walker. The fixtures live here (tests/ is outside the tree lint's
// scope), so quoting rule patterns below can never fail the lint gate.
#include "lint.hpp"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace lint = graffix::lint;

namespace {

std::size_t count_rule(const lint::Result& result, const char* rule) {
  std::size_t count = 0;
  for (const auto& d : result.diagnostics) {
    if (d.rule == rule) ++count;
  }
  return count;
}

}  // namespace

// --- R1: raw omp pragmas -------------------------------------------------

TEST(LintR1, RawOmpPragmaOutsideSubstrateFiresExactlyOnce) {
  const auto result = lint::lint_source("src/transform/foo.cpp", R"cpp(
void f(int* a, int n) {
#pragma omp parallel for
  for (int i = 0; i < n; ++i) a[i] = i;
}
)cpp");
  EXPECT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(count_rule(result, "R1"), 1u);
  EXPECT_EQ(result.diagnostics[0].line, 3);
}

TEST(LintR1, SubstrateAllowlistIsExempt) {
  // Both halves of the substrate: the header templates and the
  // worker-pool translation unit behind them.
  for (const char* path : {"src/util/parallel.hpp", "src/util/parallel.cpp"}) {
    const auto result = lint::lint_source(path, R"cpp(
void f(int* a, int n) {
#pragma omp parallel for
  for (int i = 0; i < n; ++i) a[i] = i;
}
)cpp");
    EXPECT_TRUE(result.clean()) << path;
  }
}

TEST(LintR1, PragmaQuotedInStringOrCommentDoesNotFire) {
  const auto result = lint::lint_source("src/transform/foo.cpp", R"cpp(
// A comment mentioning #pragma omp parallel is fine.
const char* s = "#pragma omp parallel for";
)cpp");
  EXPECT_TRUE(result.clean());
}

// --- R2: nondeterminism sources in library code --------------------------

TEST(LintR2, RandCallFiresExactlyOnce) {
  const auto result = lint::lint_source("src/gen/foo.cpp", R"cpp(
int f() { return rand(); }
)cpp");
  EXPECT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(count_rule(result, "R2"), 1u);
}

TEST(LintR2, RandomDeviceFiresExactlyOnce) {
  const auto result = lint::lint_source("src/gen/foo.cpp", R"cpp(
#include <random>
unsigned f() { return std::random_device{}(); }
)cpp");
  EXPECT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(count_rule(result, "R2"), 1u);
}

TEST(LintR2, UnseededMersenneTwisterFiresExactlyOnce) {
  const auto result = lint::lint_source("src/gen/foo.cpp", R"cpp(
#include <random>
std::mt19937 generator;
)cpp");
  EXPECT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(count_rule(result, "R2"), 1u);
}

TEST(LintR2, SeededMersenneTwisterIsAccepted) {
  const auto result = lint::lint_source("src/gen/foo.cpp", R"cpp(
#include <random>
std::mt19937 generator(12345u);
)cpp");
  EXPECT_TRUE(result.clean());
}

TEST(LintR2, WallClockReadFiresExactlyOnce) {
  const auto result = lint::lint_source("src/sim/foo.cpp", R"cpp(
#include <chrono>
auto f() { return std::chrono::steady_clock::now(); }
)cpp");
  EXPECT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(count_rule(result, "R2"), 1u);
}

TEST(LintR2, WallClockInTimerHeaderAndBenchIsExempt) {
  const char* fixture = R"cpp(
#include <chrono>
auto f() { return std::chrono::steady_clock::now(); }
)cpp";
  EXPECT_TRUE(lint::lint_source("src/util/timer.hpp", fixture).clean());
  EXPECT_TRUE(lint::lint_source("bench/harness.cpp", fixture).clean());
}

TEST(LintR2, RangeForOverUnorderedMapFiresExactlyOnce) {
  const auto result = lint::lint_source("src/transform/foo.cpp", R"cpp(
#include <unordered_map>
int f(const std::unordered_map<int, int>& counts) {
  int total = 0;
  for (const auto& [k, v] : counts) total += v;
  return total;
}
)cpp");
  EXPECT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(count_rule(result, "R2"), 1u);
  EXPECT_EQ(result.diagnostics[0].line, 5);
}

TEST(LintR2, RangeForOverVectorIsAccepted) {
  const auto result = lint::lint_source("src/transform/foo.cpp", R"cpp(
#include <vector>
int f(const std::vector<int>& values) {
  int total = 0;
  for (int v : values) total += v;
  return total;
}
)cpp");
  EXPECT_TRUE(result.clean());
}

TEST(LintR2, LibraryScopeOnlyBenchAndToolsAreExempt) {
  const char* fixture = R"cpp(
int f() { return rand(); }
)cpp";
  EXPECT_FALSE(lint::lint_source("src/core/foo.cpp", fixture).clean());
  EXPECT_TRUE(lint::lint_source("bench/bench_foo.cpp", fixture).clean());
  EXPECT_TRUE(lint::lint_source("tools/cli_commands.cpp", fixture).clean());
}

// --- R3: floating-point omp reduction ------------------------------------

TEST(LintR3, FloatingPointReductionFiresExactlyOnce) {
  // Path on the R1 allowlist, so the single diagnostic is the R3 one:
  // FP reductions are banned even inside the substrate.
  const auto result = lint::lint_source("src/util/parallel.hpp", R"cpp(
double f(const double* a, int n) {
  double total = 0.0;
#pragma omp parallel for reduction(+ : total)
  for (int i = 0; i < n; ++i) total += a[i];
  return total;
}
)cpp");
  EXPECT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(count_rule(result, "R3"), 1u);
  EXPECT_EQ(result.diagnostics[0].line, 4);
}

TEST(LintR3, IntegerReductionIsAccepted) {
  const auto result = lint::lint_source("src/util/parallel.hpp", R"cpp(
long f(const int* a, int n) {
  long total = 0;
#pragma omp parallel for reduction(+ : total)
  for (int i = 0; i < n; ++i) total += a[i];
  return total;
}
)cpp");
  EXPECT_TRUE(result.clean());
}

TEST(LintR3, ContinuationLinesAreJoined) {
  const auto result = lint::lint_source("src/util/parallel.hpp",
                                        "double g(int n) {\n"
                                        "  double acc = 0.0;\n"
                                        "#pragma omp parallel for \\\n"
                                        "    reduction(+ : acc)\n"
                                        "  for (int i = 0; i < n; ++i) acc += i;\n"
                                        "  return acc;\n"
                                        "}\n");
  EXPECT_EQ(count_rule(result, "R3"), 1u);
}

TEST(LintR3, SideChannelMergeCannotUseRawFpReduction) {
  // The ISSUE-8 temptation, spelled out: merging SideChannel per-record
  // FP partials with an omp reduction would reassociate the sums and
  // break the byte-identity contract. sim/engine.cpp is NOT on the R1
  // substrate allowlist, so a raw pragma fires R1 and the FP reduction
  // fires R3 — the shortcut is caught twice.
  const auto result = lint::lint_source("src/sim/engine.cpp", R"cpp(
void merge_grouped_wrong(const double* rec_sum, int n, double* total) {
  double acc = 0.0;
#pragma omp parallel for reduction(+ : acc)
  for (int i = 0; i < n; ++i) acc += rec_sum[i];
  *total = acc;
}
)cpp");
  EXPECT_EQ(count_rule(result, "R1"), 1u);
  EXPECT_EQ(count_rule(result, "R3"), 1u);
}

TEST(LintR3, SideChannelSerialMergeIdiomIsClean) {
  // The shape the real SideChannel::merge_grouped uses — a serial
  // ascending-record fold with a tag-byte early-out — carries no
  // pragmas and needs no suppressions; the engine stays budget-neutral.
  const auto result = lint::lint_source("src/sim/engine.cpp", R"cpp(
void merge_grouped(const double* rec_sum, const unsigned char* rec_tag,
                   int n, double* total) {
  double acc = *total;
  for (int i = 0; i < n; ++i) {
    if (rec_tag[i] != 0) acc += rec_sum[i];
  }
  *total = acc;
}
)cpp");
  EXPECT_TRUE(result.clean());
}

// --- R4: std::sort in transform/sim --------------------------------------

TEST(LintR4, StdSortInTransformFiresExactlyOnce) {
  const auto result = lint::lint_source("src/transform/foo.cpp", R"cpp(
#include <algorithm>
#include <vector>
void f(std::vector<int>& v) { std::sort(v.begin(), v.end()); }
)cpp");
  EXPECT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(count_rule(result, "R4"), 1u);
}

TEST(LintR4, StableSortIsAccepted) {
  const auto result = lint::lint_source("src/transform/foo.cpp", R"cpp(
#include <algorithm>
#include <vector>
void f(std::vector<int>& v) { std::stable_sort(v.begin(), v.end()); }
)cpp");
  EXPECT_TRUE(result.clean());
}

TEST(LintR4, SortOutsideTransformAndSimIsAccepted) {
  const char* fixture = R"cpp(
#include <algorithm>
#include <vector>
void f(std::vector<int>& v) { std::sort(v.begin(), v.end()); }
)cpp";
  EXPECT_TRUE(lint::lint_source("src/algorithms/foo.cpp", fixture).clean());
  EXPECT_TRUE(lint::lint_source("src/graph/foo.cpp", fixture).clean());
}

// --- Suppressions --------------------------------------------------------

TEST(LintSuppression, SameLineAllowSuppressesAndIsCounted) {
  const auto result = lint::lint_source("src/transform/foo.cpp", R"cpp(
#include <algorithm>
#include <vector>
void f(std::vector<int>& v) { std::sort(v.begin(), v.end()); }  // graffix-lint: allow(R4) ints sort totally
)cpp");
  EXPECT_TRUE(result.clean());
  ASSERT_EQ(result.suppressions.size(), 1u);
  EXPECT_EQ(result.suppressions[0].rule, "R4");
  EXPECT_EQ(result.suppressions[0].reason, "ints sort totally");
}

TEST(LintSuppression, PreviousLineAllowSuppresses) {
  const auto result = lint::lint_source("src/transform/foo.cpp", R"cpp(
#include <algorithm>
#include <vector>
void f(std::vector<int>& v) {
  // graffix-lint: allow(R4) ints sort totally
  std::sort(v.begin(), v.end());
}
)cpp");
  EXPECT_TRUE(result.clean());
  EXPECT_EQ(result.suppressions.size(), 1u);
}

TEST(LintSuppression, WrongRuleDoesNotSuppress) {
  const auto result = lint::lint_source("src/transform/foo.cpp", R"cpp(
#include <algorithm>
#include <vector>
void f(std::vector<int>& v) {
  // graffix-lint: allow(R1) wrong rule id
  std::sort(v.begin(), v.end());
}
)cpp");
  // The R4 diagnostic survives and the unmatched allow(R1) is itself
  // flagged as unused.
  EXPECT_EQ(count_rule(result, "R4"), 1u);
  EXPECT_EQ(count_rule(result, "SUP"), 1u);
}

TEST(LintSuppression, MissingReasonIsADiagnostic) {
  const auto result = lint::lint_source("src/transform/foo.cpp", R"cpp(
#include <algorithm>
#include <vector>
void f(std::vector<int>& v) {
  // graffix-lint: allow(R4)
  std::sort(v.begin(), v.end());
}
)cpp");
  // Reasonless suppressions never apply, so both the SUP diagnostic and
  // the original R4 diagnostic are reported.
  EXPECT_EQ(count_rule(result, "SUP"), 1u);
  EXPECT_EQ(count_rule(result, "R4"), 1u);
}

TEST(LintSuppression, UnusedSuppressionIsADiagnostic) {
  const auto result = lint::lint_source("src/transform/foo.cpp", R"cpp(
// graffix-lint: allow(R4) nothing to suppress here
int f() { return 1; }
)cpp");
  EXPECT_EQ(count_rule(result, "SUP"), 1u);
}

TEST(LintSuppression, DirectiveMustStartTheComment) {
  // Mentioning the directive mid-comment (e.g. when documenting it) must
  // not register a suppression.
  const auto result = lint::lint_source("src/transform/foo.cpp", R"cpp(
// The syntax is: graffix-lint: allow(R4) <reason>, on the flagged line.
int f() { return 1; }
)cpp");
  EXPECT_TRUE(result.clean());
}

// --- Directory walking + report ------------------------------------------

TEST(LintPaths, WalksDirectoriesAndAggregates) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::path(::testing::TempDir()) / "graffix_lint_walk" / "src";
  fs::create_directories(root / "transform");
  {
    std::ofstream out(root / "transform" / "bad.cpp");
    out << "#pragma omp parallel for\n";
  }
  {
    std::ofstream out(root / "transform" / "good.cpp");
    out << "int f() { return 1; }\n";
  }
  {
    std::ofstream out(root / "transform" / "notes.txt");
    out << "#pragma omp parallel for (ignored: not a source file)\n";
  }
  const auto result = lint::lint_paths({(root.parent_path()).string()});
  EXPECT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(count_rule(result, "R1"), 1u);
  fs::remove_all(root.parent_path());
}

TEST(LintPaths, MissingPathIsReported) {
  const auto result =
      lint::lint_paths({"/nonexistent/graffix/lint/path"});
  EXPECT_EQ(count_rule(result, "SUP"), 1u);
}

TEST(LintReport, BudgetListsSuppressionsPerRule) {
  const auto result = lint::lint_source("src/transform/foo.cpp", R"cpp(
#include <algorithm>
#include <vector>
void f(std::vector<int>& v) { std::sort(v.begin(), v.end()); }  // graffix-lint: allow(R4) ints sort totally
)cpp");
  const std::string report = lint::format_report(result);
  EXPECT_NE(report.find("diagnostics: 0"), std::string::npos);
  EXPECT_NE(report.find("suppression budget: 1 used"), std::string::npos);
  EXPECT_NE(report.find("R4: 1"), std::string::npos);
  EXPECT_NE(report.find("ints sort totally"), std::string::npos);
}
