// Self-tests for graffix-lint (tools/lint): fixture snippets that must
// trigger each rule R1-R4 exactly once, scoping negatives (allowlists,
// bench exemption), the suppression/budget machinery, and the directory
// walker. The fixtures live here (tests/ is outside the tree lint's
// scope), so quoting rule patterns below can never fail the lint gate.
#include "lint.hpp"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace lint = graffix::lint;

namespace {

std::size_t count_rule(const lint::Result& result, const char* rule) {
  std::size_t count = 0;
  for (const auto& d : result.diagnostics) {
    if (d.rule == rule) ++count;
  }
  return count;
}

}  // namespace

// --- R1: raw omp pragmas -------------------------------------------------

TEST(LintR1, RawOmpPragmaOutsideSubstrateFiresExactlyOnce) {
  const auto result = lint::lint_source("src/transform/foo.cpp", R"cpp(
void f(int* a, int n) {
#pragma omp parallel for
  for (int i = 0; i < n; ++i) a[i] = i;
}
)cpp");
  EXPECT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(count_rule(result, "R1"), 1u);
  EXPECT_EQ(result.diagnostics[0].line, 3);
}

TEST(LintR1, SubstrateAllowlistIsExempt) {
  // Both halves of the substrate: the header templates and the
  // worker-pool translation unit behind them.
  for (const char* path : {"src/util/parallel.hpp", "src/util/parallel.cpp"}) {
    const auto result = lint::lint_source(path, R"cpp(
void f(int* a, int n) {
#pragma omp parallel for
  for (int i = 0; i < n; ++i) a[i] = i;
}
)cpp");
    EXPECT_TRUE(result.clean()) << path;
  }
}

TEST(LintR1, PragmaQuotedInStringOrCommentDoesNotFire) {
  const auto result = lint::lint_source("src/transform/foo.cpp", R"cpp(
// A comment mentioning #pragma omp parallel is fine.
const char* s = "#pragma omp parallel for";
)cpp");
  EXPECT_TRUE(result.clean());
}

// --- R2: nondeterminism sources in library code --------------------------

TEST(LintR2, RandCallFiresExactlyOnce) {
  const auto result = lint::lint_source("src/gen/foo.cpp", R"cpp(
int f() { return rand(); }
)cpp");
  EXPECT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(count_rule(result, "R2"), 1u);
}

TEST(LintR2, RandomDeviceFiresExactlyOnce) {
  const auto result = lint::lint_source("src/gen/foo.cpp", R"cpp(
#include <random>
unsigned f() { return std::random_device{}(); }
)cpp");
  EXPECT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(count_rule(result, "R2"), 1u);
}

TEST(LintR2, UnseededMersenneTwisterFiresExactlyOnce) {
  const auto result = lint::lint_source("src/gen/foo.cpp", R"cpp(
#include <random>
std::mt19937 generator;
)cpp");
  EXPECT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(count_rule(result, "R2"), 1u);
}

TEST(LintR2, SeededMersenneTwisterIsAccepted) {
  const auto result = lint::lint_source("src/gen/foo.cpp", R"cpp(
#include <random>
std::mt19937 generator(12345u);
)cpp");
  EXPECT_TRUE(result.clean());
}

TEST(LintR2, WallClockReadFiresExactlyOnce) {
  const auto result = lint::lint_source("src/sim/foo.cpp", R"cpp(
#include <chrono>
auto f() { return std::chrono::steady_clock::now(); }
)cpp");
  EXPECT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(count_rule(result, "R2"), 1u);
}

TEST(LintR2, WallClockInTimerHeaderAndBenchIsExempt) {
  const char* fixture = R"cpp(
#include <chrono>
auto f() { return std::chrono::steady_clock::now(); }
)cpp";
  EXPECT_TRUE(lint::lint_source("src/util/timer.hpp", fixture).clean());
  EXPECT_TRUE(lint::lint_source("bench/harness.cpp", fixture).clean());
}

TEST(LintR2, RangeForOverUnorderedMapFiresExactlyOnce) {
  const auto result = lint::lint_source("src/transform/foo.cpp", R"cpp(
#include <unordered_map>
int f(const std::unordered_map<int, int>& counts) {
  int total = 0;
  for (const auto& [k, v] : counts) total += v;
  return total;
}
)cpp");
  EXPECT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(count_rule(result, "R2"), 1u);
  EXPECT_EQ(result.diagnostics[0].line, 5);
}

TEST(LintR2, RangeForOverVectorIsAccepted) {
  const auto result = lint::lint_source("src/transform/foo.cpp", R"cpp(
#include <vector>
int f(const std::vector<int>& values) {
  int total = 0;
  for (int v : values) total += v;
  return total;
}
)cpp");
  EXPECT_TRUE(result.clean());
}

TEST(LintR2, LibraryScopeOnlyBenchAndToolsAreExempt) {
  const char* fixture = R"cpp(
int f() { return rand(); }
)cpp";
  EXPECT_FALSE(lint::lint_source("src/core/foo.cpp", fixture).clean());
  EXPECT_TRUE(lint::lint_source("bench/bench_foo.cpp", fixture).clean());
  EXPECT_TRUE(lint::lint_source("tools/cli_commands.cpp", fixture).clean());
}

// --- R3: floating-point omp reduction ------------------------------------

TEST(LintR3, FloatingPointReductionFiresExactlyOnce) {
  // Path on the R1 allowlist, so the single diagnostic is the R3 one:
  // FP reductions are banned even inside the substrate.
  const auto result = lint::lint_source("src/util/parallel.hpp", R"cpp(
double f(const double* a, int n) {
  double total = 0.0;
#pragma omp parallel for reduction(+ : total)
  for (int i = 0; i < n; ++i) total += a[i];
  return total;
}
)cpp");
  EXPECT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(count_rule(result, "R3"), 1u);
  EXPECT_EQ(result.diagnostics[0].line, 4);
}

TEST(LintR3, IntegerReductionIsAccepted) {
  const auto result = lint::lint_source("src/util/parallel.hpp", R"cpp(
long f(const int* a, int n) {
  long total = 0;
#pragma omp parallel for reduction(+ : total)
  for (int i = 0; i < n; ++i) total += a[i];
  return total;
}
)cpp");
  EXPECT_TRUE(result.clean());
}

TEST(LintR3, ContinuationLinesAreJoined) {
  const auto result = lint::lint_source("src/util/parallel.hpp",
                                        "double g(int n) {\n"
                                        "  double acc = 0.0;\n"
                                        "#pragma omp parallel for \\\n"
                                        "    reduction(+ : acc)\n"
                                        "  for (int i = 0; i < n; ++i) acc += i;\n"
                                        "  return acc;\n"
                                        "}\n");
  EXPECT_EQ(count_rule(result, "R3"), 1u);
}

TEST(LintR3, SideChannelMergeCannotUseRawFpReduction) {
  // The ISSUE-8 temptation, spelled out: merging SideChannel per-record
  // FP partials with an omp reduction would reassociate the sums and
  // break the byte-identity contract. sim/engine.cpp is NOT on the R1
  // substrate allowlist, so a raw pragma fires R1 and the FP reduction
  // fires R3 — the shortcut is caught twice.
  const auto result = lint::lint_source("src/sim/engine.cpp", R"cpp(
void merge_grouped_wrong(const double* rec_sum, int n, double* total) {
  double acc = 0.0;
#pragma omp parallel for reduction(+ : acc)
  for (int i = 0; i < n; ++i) acc += rec_sum[i];
  *total = acc;
}
)cpp");
  EXPECT_EQ(count_rule(result, "R1"), 1u);
  EXPECT_EQ(count_rule(result, "R3"), 1u);
}

TEST(LintR3, SideChannelSerialMergeIdiomIsClean) {
  // The shape the real SideChannel::merge_grouped uses — a serial
  // ascending-record fold with a tag-byte early-out — carries no
  // pragmas and needs no suppressions; the engine stays budget-neutral.
  const auto result = lint::lint_source("src/sim/engine.cpp", R"cpp(
void merge_grouped(const double* rec_sum, const unsigned char* rec_tag,
                   int n, double* total) {
  double acc = *total;
  for (int i = 0; i < n; ++i) {
    if (rec_tag[i] != 0) acc += rec_sum[i];
  }
  *total = acc;
}
)cpp");
  EXPECT_TRUE(result.clean());
}

// --- R4: std::sort in transform/sim --------------------------------------

TEST(LintR4, StdSortInTransformFiresExactlyOnce) {
  const auto result = lint::lint_source("src/transform/foo.cpp", R"cpp(
#include <algorithm>
#include <vector>
void f(std::vector<int>& v) { std::sort(v.begin(), v.end()); }
)cpp");
  EXPECT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(count_rule(result, "R4"), 1u);
}

TEST(LintR4, StableSortIsAccepted) {
  const auto result = lint::lint_source("src/transform/foo.cpp", R"cpp(
#include <algorithm>
#include <vector>
void f(std::vector<int>& v) { std::stable_sort(v.begin(), v.end()); }
)cpp");
  EXPECT_TRUE(result.clean());
}

TEST(LintR4, SortOutsideTransformAndSimIsAccepted) {
  const char* fixture = R"cpp(
#include <algorithm>
#include <vector>
void f(std::vector<int>& v) { std::sort(v.begin(), v.end()); }
)cpp";
  EXPECT_TRUE(lint::lint_source("src/algorithms/foo.cpp", fixture).clean());
  EXPECT_TRUE(lint::lint_source("src/graph/foo.cpp", fixture).clean());
}

// --- Suppressions --------------------------------------------------------

TEST(LintSuppression, SameLineAllowSuppressesAndIsCounted) {
  const auto result = lint::lint_source("src/transform/foo.cpp", R"cpp(
#include <algorithm>
#include <vector>
void f(std::vector<int>& v) { std::sort(v.begin(), v.end()); }  // graffix-lint: allow(R4) ints sort totally
)cpp");
  EXPECT_TRUE(result.clean());
  ASSERT_EQ(result.suppressions.size(), 1u);
  EXPECT_EQ(result.suppressions[0].rule, "R4");
  EXPECT_EQ(result.suppressions[0].reason, "ints sort totally");
}

TEST(LintSuppression, PreviousLineAllowSuppresses) {
  const auto result = lint::lint_source("src/transform/foo.cpp", R"cpp(
#include <algorithm>
#include <vector>
void f(std::vector<int>& v) {
  // graffix-lint: allow(R4) ints sort totally
  std::sort(v.begin(), v.end());
}
)cpp");
  EXPECT_TRUE(result.clean());
  EXPECT_EQ(result.suppressions.size(), 1u);
}

TEST(LintSuppression, WrongRuleDoesNotSuppress) {
  const auto result = lint::lint_source("src/transform/foo.cpp", R"cpp(
#include <algorithm>
#include <vector>
void f(std::vector<int>& v) {
  // graffix-lint: allow(R1) wrong rule id
  std::sort(v.begin(), v.end());
}
)cpp");
  // The R4 diagnostic survives and the unmatched allow(R1) is itself
  // flagged as unused.
  EXPECT_EQ(count_rule(result, "R4"), 1u);
  EXPECT_EQ(count_rule(result, "SUP"), 1u);
}

TEST(LintSuppression, MissingReasonIsADiagnostic) {
  const auto result = lint::lint_source("src/transform/foo.cpp", R"cpp(
#include <algorithm>
#include <vector>
void f(std::vector<int>& v) {
  // graffix-lint: allow(R4)
  std::sort(v.begin(), v.end());
}
)cpp");
  // Reasonless suppressions never apply, so both the SUP diagnostic and
  // the original R4 diagnostic are reported.
  EXPECT_EQ(count_rule(result, "SUP"), 1u);
  EXPECT_EQ(count_rule(result, "R4"), 1u);
}

TEST(LintSuppression, UnusedSuppressionIsADiagnostic) {
  const auto result = lint::lint_source("src/transform/foo.cpp", R"cpp(
// graffix-lint: allow(R4) nothing to suppress here
int f() { return 1; }
)cpp");
  EXPECT_EQ(count_rule(result, "SUP"), 1u);
}

TEST(LintSuppression, DirectiveMustStartTheComment) {
  // Mentioning the directive mid-comment (e.g. when documenting it) must
  // not register a suppression.
  const auto result = lint::lint_source("src/transform/foo.cpp", R"cpp(
// The syntax is: graffix-lint: allow(R4) <reason>, on the flagged line.
int f() { return 1; }
)cpp");
  EXPECT_TRUE(result.clean());
}

// --- Directory walking + report ------------------------------------------

TEST(LintPaths, WalksDirectoriesAndAggregates) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::path(::testing::TempDir()) / "graffix_lint_walk" / "src";
  fs::create_directories(root / "transform");
  {
    std::ofstream out(root / "transform" / "bad.cpp");
    out << "#pragma omp parallel for\n";
  }
  {
    std::ofstream out(root / "transform" / "good.cpp");
    out << "int f() { return 1; }\n";
  }
  {
    std::ofstream out(root / "transform" / "notes.txt");
    out << "#pragma omp parallel for (ignored: not a source file)\n";
  }
  const auto result = lint::lint_paths({(root.parent_path()).string()});
  EXPECT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(count_rule(result, "R1"), 1u);
  fs::remove_all(root.parent_path());
}

TEST(LintPaths, MissingPathIsReported) {
  const auto result =
      lint::lint_paths({"/nonexistent/graffix/lint/path"});
  EXPECT_EQ(count_rule(result, "SUP"), 1u);
}

TEST(LintReport, BudgetListsSuppressionsPerRule) {
  const auto result = lint::lint_source("src/transform/foo.cpp", R"cpp(
#include <algorithm>
#include <vector>
void f(std::vector<int>& v) { std::sort(v.begin(), v.end()); }  // graffix-lint: allow(R4) ints sort totally
)cpp");
  const std::string report = lint::format_report(result);
  EXPECT_NE(report.find("diagnostics: 0"), std::string::npos);
  EXPECT_NE(report.find("suppression budget: 1 used"), std::string::npos);
  EXPECT_NE(report.find("R4: 1"), std::string::npos);
  EXPECT_NE(report.find("ints sort totally"), std::string::npos);
}

// --- R1 continuation (lexer phase-2 splicing) -----------------------------

TEST(LintR1, BackslashContinuedPragmaFires) {
  // Pre-lexer versions of the linter matched line-by-line, so a
  // directive split with a backslash continuation escaped R1 entirely.
  // Phase-2 splicing reassembles it before matching.
  const auto result = lint::lint_source("src/transform/foo.cpp",
                                        "void f(int* a, int n) {\n"
                                        "#pragma omp \\\n"
                                        "    parallel for\n"
                                        "  for (int i = 0; i < n; ++i) a[i] = i;\n"
                                        "}\n");
  EXPECT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(count_rule(result, "R1"), 1u);
  EXPECT_EQ(result.diagnostics[0].line, 2);
}

// --- R5: parallel-capture safety ------------------------------------------

TEST(LintR5, LaneTableMemberWriteFiresExactlyOnce) {
  // The seeded reconstruction of the pre-PR-6 bug: lane replay tables
  // lived as Engine members and were scattered into from concurrent
  // replay tasks. The loop counter `l` starts from a constant, so the
  // disjoint-slot taint sanction does NOT apply — exactly the write the
  // PR 6 fix moved into per-worker SweepScratch must fire.
  const auto result = lint::lint_source("src/sim/engine.hpp", R"cpp(
class Engine {
 public:
  void replay_grouped(int n_replay) {
    parallel_tasks(n_replay, [&](int rc) {
      for (int l = 0; l < lanes_; ++l) {
        lane_dst_[l] = rc;
      }
    });
  }

 private:
  int lanes_ = 0;
  std::vector<int> lane_dst_;
};
)cpp");
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(count_rule(result, "R5"), 1u);
  EXPECT_EQ(result.diagnostics[0].line, 7);
}

TEST(LintR5, SweepScratchLocalRefIsTheSanctionedFix) {
  // The shape PR 6 actually shipped: bind the per-worker SweepScratch
  // slot to a local reference and write through that. The channel type
  // sanctions the writes; zero diagnostics, zero suppressions needed.
  const auto result = lint::lint_source("src/sim/engine.hpp", R"cpp(
class Engine {
 public:
  void replay_grouped(int n_replay) {
    parallel_tasks(n_replay, [&](int rc) {
      SweepScratch& sc = scratch_[rc];
      for (int l = 0; l < lanes_; ++l) {
        sc.lane_dst[l] = rc;
      }
    });
  }

 private:
  int lanes_ = 0;
  std::vector<SweepScratch> scratch_;
};
)cpp");
  EXPECT_TRUE(result.clean());
  EXPECT_TRUE(result.suppressions.empty());
}

TEST(LintR5, MemberSlotIndexedByTaskParamIsClean) {
  // The disjoint-slot contract: out_[rc] with rc the task's own lambda
  // parameter cannot collide across tasks.
  const auto result = lint::lint_source("src/sim/engine.hpp", R"cpp(
class Engine {
 public:
  void replay_pass(int n) {
    parallel_tasks(n, [&](int rc) { out_[rc] = rc; });
  }

 private:
  std::vector<int> out_;
};
)cpp");
  EXPECT_TRUE(result.clean());
}

TEST(LintR5, RowCursorTaintSanctionsDerivedIndex) {
  // `pos` derives from the task parameter through its initializer, so
  // `targets[pos]` is the row-cursor scatter idiom (disjoint rows).
  const auto result = lint::lint_source("src/graph/foo.cpp", R"cpp(
void scatter(std::vector<int>& offsets, std::vector<int>& targets, int n) {
  parallel_for(0, n, [&](int u) {
    int pos = offsets[u];
    targets[pos] = u;
  });
}
)cpp");
  EXPECT_TRUE(result.clean());
}

TEST(LintR5, RangeForElementDoesNotInheritTaint) {
  // Distinct tasks' neighbor ranges can contain the same vertex, so a
  // range-for element subscript is NOT a disjoint slot — the write must
  // fire even though the range expression derives from the task param.
  const auto result = lint::lint_source("src/algorithms/foo.cpp", R"cpp(
void levels(std::vector<std::vector<int>>& nbrs, std::vector<int>& level,
            int n) {
  parallel_for(0, n, [&](int u) {
    for (int v : nbrs[u]) {
      level[v] = u;
    }
  });
}
)cpp");
  EXPECT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(count_rule(result, "R5"), 1u);
}

TEST(LintR5, ByRefCaptureAcrossBoundaryFires) {
  const auto result = lint::lint_source("src/core/foo.cpp", R"cpp(
int sum(const std::vector<int>& items) {
  int total = 0;
  parallel_for(std::size_t{0}, items.size(), [&](std::size_t i) {
    total += items[i];
  });
  return total;
}
)cpp");
  EXPECT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(count_rule(result, "R5"), 1u);
}

TEST(LintR5, AtomicAccumulatorIsClean) {
  const auto result = lint::lint_source("src/core/foo.cpp", R"cpp(
int sum(const std::vector<int>& items) {
  std::atomic<int> total{0};
  parallel_for(std::size_t{0}, items.size(), [&](std::size_t i) {
    total += items[i];
  });
  return total.load();
}
)cpp");
  EXPECT_TRUE(result.clean());
}

TEST(LintR5, HeldLockSanctionsTheWrite) {
  const auto result = lint::lint_source("src/core/foo.cpp", R"cpp(
int sum(int n) {
  std::mutex mu;
  int total = 0;
  parallel_for(0, n, [&](int i) {
    std::scoped_lock lk(mu);
    total += i;
  });
  return total;
}
)cpp");
  EXPECT_TRUE(result.clean());
}

TEST(LintR5, ByValueCaptureWritesHitACopy) {
  const auto result = lint::lint_source("src/core/foo.cpp", R"cpp(
void f(int n) {
  int x = 0;
  parallel_for(0, n, [x](int i) mutable { x += i; });
}
)cpp");
  EXPECT_TRUE(result.clean());
}

TEST(LintR5, GlobalWriteFromParallelRegionFires) {
  const auto result = lint::lint_source("src/core/foo.cpp", R"cpp(
int g_counter = 0;
void f(int n) {
  parallel_for(0, n, [&](int i) { g_counter += i; });
}
)cpp");
  EXPECT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(count_rule(result, "R5"), 1u);
}

TEST(LintR5, PropagatesThroughSameTuCallees) {
  // The replay_grouped functor path: the member write sits in a helper
  // the parallel lambda calls, not in the lambda itself. The fixpoint
  // marks the helper and the write still fires.
  const auto result = lint::lint_source("src/sim/foo.cpp", R"cpp(
struct Widget {
  void step(int i) { count_ = i; }
  void run(int n) {
    parallel_for(0, n, [&](int i) { step(i); });
  }
  int count_ = 0;
};
)cpp");
  EXPECT_EQ(count_rule(result, "R5"), 1u);
  EXPECT_EQ(result.diagnostics[0].line, 3);
}

TEST(LintR5, AllowAnnotationSuppressesWithReason) {
  const auto result = lint::lint_source("src/sim/engine.hpp", R"cpp(
class Engine {
 public:
  void replay_grouped(int n_replay) {
    parallel_tasks(n_replay, [&](int rc) {
      // graffix-lint: allow(R5) record ranges are disjoint by construction
      lane_dst_[0] = rc;
    });
  }

 private:
  std::vector<int> lane_dst_;
};
)cpp");
  EXPECT_TRUE(result.clean());
  ASSERT_EQ(result.suppressions.size(), 1u);
  EXPECT_EQ(result.suppressions[0].rule, "R5");
}

// --- R6: hot-path allocation ----------------------------------------------

TEST(LintR6, NewInParallelBodyFires) {
  const auto result = lint::lint_source("src/core/foo.cpp", R"cpp(
void f(int n) {
  parallel_for(0, n, [&](int i) {
    int* p = new int[8];
    use(p, i);
    delete[] p;
  });
}
)cpp");
  EXPECT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(count_rule(result, "R6"), 1u);
}

TEST(LintR6, MakeUniqueInParallelBodyFires) {
  const auto result = lint::lint_source("src/core/foo.cpp", R"cpp(
void f(int n) {
  parallel_for(0, n, [&](int i) {
    auto p = std::make_unique<int>(i);
    use(*p);
  });
}
)cpp");
  EXPECT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(count_rule(result, "R6"), 1u);
}

TEST(LintR6, VectorGrowthInParallelBodyFires) {
  const auto result = lint::lint_source("src/core/foo.cpp", R"cpp(
void f(int n) {
  parallel_for(0, n, [&](int i) {
    std::vector<int> tmp;
    tmp.push_back(i);
    use(tmp);
  });
}
)cpp");
  EXPECT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(count_rule(result, "R6"), 1u);
}

TEST(LintR6, SizedVectorInEngineSweepMethodFires) {
  // Engine sweep*/replay* methods are hot even where they are serial:
  // a sized std::vector there allocates on every sweep.
  const auto result = lint::lint_source("src/sim/engine.cpp", R"cpp(
void Engine::sweep_blocks(int n) {
  std::vector<int> tmp(n);
  use(tmp);
}
)cpp");
  EXPECT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(count_rule(result, "R6"), 1u);
}

TEST(LintR6, SizedVectorInColdMethodIsClean) {
  const auto result = lint::lint_source("src/sim/engine.cpp", R"cpp(
void Engine::load_topology(int n) {
  std::vector<int> tmp(n);
  use(tmp);
}
)cpp");
  EXPECT_TRUE(result.clean());
}

TEST(LintR6, ArenaVectorIsTheSanctionedAllocator) {
  const auto result = lint::lint_source("src/core/foo.cpp", R"cpp(
void f(int n) {
  parallel_for(0, n, [&](int i) {
    ArenaVector<int> tmp;
    tmp.push_back(i);
    use(tmp);
  });
}
)cpp");
  EXPECT_TRUE(result.clean());
}

TEST(LintR6, GrowthThroughReferenceIsChargedToTheOwner) {
  // parallel_append hands each task a segment owned by the substrate;
  // growing it through the reference parameter is the intended API.
  const auto result = lint::lint_source("src/core/foo.cpp", R"cpp(
void f(const std::vector<int>& in, std::vector<int>& out) {
  parallel_append(std::size_t{0}, in.size(), out,
                  [&](std::size_t i, std::vector<int>& seg) {
                    seg.push_back(in[i]);
                  });
}
)cpp");
  EXPECT_TRUE(result.clean());
}

TEST(LintR6, SlotOwnedGrowthByTaskIndexIsClean) {
  // block_lists[b].push_back where b is the task index builds disjoint
  // slot-owned output, not per-execution scratch.
  const auto result = lint::lint_source("src/core/foo.cpp", R"cpp(
void bucket(std::vector<std::vector<int>>& lists, int n) {
  parallel_for(0, n, [&](int b) { lists[b].push_back(b); });
}
)cpp");
  EXPECT_TRUE(result.clean());
}

// --- R7: serve protocol hygiene -------------------------------------------

TEST(LintR7, NonLiteralJsonKeyFires) {
  const auto result = lint::lint_source("src/serve/handlers.cpp", R"cpp(
void emit(JsonWriter& w, const std::string& key) {
  w.field_u64(key, 1);
}
)cpp");
  EXPECT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(count_rule(result, "R7"), 1u);
}

TEST(LintR7, LiteralKeysAreClean) {
  const auto result = lint::lint_source("src/serve/handlers.cpp", R"cpp(
void emit(JsonWriter& w) {
  w.open_object();
  w.field_u64("count", 1);
  w.open_array("items");
  w.field_string("name", "x");
}
)cpp");
  EXPECT_TRUE(result.clean());
}

TEST(LintR7, RawWriteOutsideTransportHomeFires) {
  const char* fixture = R"cpp(
void f(int fd) { printf("%d", fd); }
)cpp";
  // Everywhere in serve/ except FdTransport's own translation unit.
  EXPECT_EQ(count_rule(lint::lint_source("src/serve/handlers.cpp", fixture),
                       "R7"),
            1u);
  EXPECT_TRUE(lint::lint_source("src/serve/session.cpp", fixture).clean());
  // And outside serve/ the rule does not apply at all.
  EXPECT_TRUE(lint::lint_source("src/core/foo.cpp", fixture).clean());
}

TEST(LintR7, StderrDiagnosticsAreAllowed) {
  const auto result = lint::lint_source("src/serve/handlers.cpp", R"cpp(
void warn(const char* msg) { fprintf(stderr, "%s", msg); }
)cpp");
  EXPECT_TRUE(result.clean());
}

TEST(LintR7, CoutIsTheStdioTransport) {
  const auto result = lint::lint_source("src/serve/handlers.cpp", R"cpp(
void f(int x) { std::cout << x; }
)cpp");
  EXPECT_EQ(count_rule(result, "R7"), 1u);
}

TEST(LintR7, DeadErrorCodeEnumeratorFires) {
  const auto result = lint::lint_source("src/serve/protocol.hpp", R"cpp(
enum class ErrorCode { Ok = 0, Internal = 1 };
inline int code_of(ErrorCode c) {
  if (c == ErrorCode::Ok) return 0;
  return 1;
}
)cpp");
  // `Internal` is declared but never emitted anywhere in the linted set.
  ASSERT_EQ(count_rule(result, "R7"), 1u);
  EXPECT_NE(result.diagnostics[0].message.find("Internal"), std::string::npos);
}

TEST(LintR7, CaseLabelIsNotAnEmitSite) {
  // Dispatching ON a code is not emitting it: an enumerator whose only
  // appearance is a case label is still dead protocol vocabulary.
  const auto result = lint::lint_source("src/serve/protocol.hpp", R"cpp(
enum class ErrorCode { Ok = 0 };
inline void handle(ErrorCode c) {
  switch (c) {
    case ErrorCode::Ok:
      break;
  }
}
)cpp");
  EXPECT_EQ(count_rule(result, "R7"), 1u);
}

TEST(LintR7, ErrorCodeCoverageIsPooledAcrossFiles) {
  namespace fs = std::filesystem;
  const fs::path root = fs::path(::testing::TempDir()) / "graffix_lint_r7";
  fs::create_directories(root / "src" / "serve");
  {
    std::ofstream out(root / "src" / "serve" / "codes.hpp");
    out << "enum class ErrorCode { Ok = 0, Bad = 1 };\n";
  }
  {
    std::ofstream out(root / "src" / "serve" / "emit.cpp");
    out << "void emit_ok() { respond(ErrorCode::Ok); }\n";
  }
  const auto result = lint::lint_paths({root.string()});
  // `Ok` is covered by the emit in the OTHER file; only `Bad` is dead,
  // and the diagnostic points at the declaring header.
  ASSERT_EQ(count_rule(result, "R7"), 1u);
  EXPECT_NE(result.diagnostics[0].message.find("Bad"), std::string::npos);
  EXPECT_NE(result.diagnostics[0].file.find("codes.hpp"), std::string::npos);
  fs::remove_all(root);
}

// --- Relaxed profile for tests/ and examples/ -----------------------------

TEST(LintProfile, TestsAreExemptFromR2ButNotFromR5) {
  // rand() is fine in a test (R2 is src/-scoped)...
  EXPECT_TRUE(lint::lint_source("tests/foo_test.cpp",
                                "int f() { return rand(); }\n")
                  .clean());
  // ...but a racy by-ref accumulator in a test is still a racy by-ref
  // accumulator: the parallel rules follow the code everywhere.
  const auto result = lint::lint_source("tests/foo_test.cpp", R"cpp(
int sum(int n) {
  int total = 0;
  parallel_for(0, n, [&](int i) { total += i; });
  return total;
}
)cpp");
  EXPECT_EQ(count_rule(result, "R5"), 1u);
}

// --- JSON report ----------------------------------------------------------

TEST(LintReportJson, EmitsDiagnosticsSuppressionsAndCounts) {
  const auto result = lint::lint_source("src/transform/foo.cpp", R"cpp(
#include <algorithm>
#include <vector>
void f(std::vector<int>& v) { std::sort(v.begin(), v.end()); }
void g(std::vector<int>& v) { std::sort(v.begin(), v.end()); }  // graffix-lint: allow(R4) ints sort totally
)cpp");
  ASSERT_EQ(result.diagnostics.size(), 1u);
  ASSERT_EQ(result.suppressions.size(), 1u);
  const std::string json = lint::format_report_json(result);
  EXPECT_NE(json.find("\"diagnostics\": ["), std::string::npos);
  EXPECT_NE(json.find("\"suppressions\": ["), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"R4\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\": \"ints sort totally\""), std::string::npos);
  EXPECT_NE(json.find("\"total_diagnostics\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"total_suppressions\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"diagnostic_counts\""), std::string::npos);
  EXPECT_NE(json.find("\"suppression_counts\""), std::string::npos);
}

TEST(LintReportJson, EscapesReasonText) {
  const auto result = lint::lint_source("src/transform/foo.cpp", R"cpp(
#include <algorithm>
#include <vector>
void f(std::vector<int>& v) { std::sort(v.begin(), v.end()); }  // graffix-lint: allow(R4) keys are "quoted" literals
)cpp");
  const std::string json = lint::format_report_json(result);
  EXPECT_NE(json.find("keys are \\\"quoted\\\" literals"), std::string::npos);
}

// --- Budget file ----------------------------------------------------------

namespace {

std::string write_temp_budget(const char* name, const char* content) {
  namespace fs = std::filesystem;
  const fs::path p = fs::path(::testing::TempDir()) / name;
  std::ofstream out(p);
  out << content;
  return p.string();
}

lint::Result result_with_suppressions(std::size_t n) {
  lint::Result r;
  for (std::size_t i = 0; i < n; ++i) {
    r.suppressions.push_back({"src/x.cpp", static_cast<int>(i + 1), "R4",
                              "reason"});
  }
  return r;
}

}  // namespace

TEST(LintBudget, LoadParsesRulesAndTotal) {
  const std::string path = write_temp_budget("budget_ok",
                                             "# comment\n"
                                             "R4 2\n"
                                             "R6 21\n"
                                             "\n"
                                             "total 36\n");
  lint::Budget budget;
  std::string error;
  ASSERT_TRUE(lint::load_budget(path, budget, error)) << error;
  EXPECT_EQ(budget.per_rule.at("R4"), 2);
  EXPECT_EQ(budget.per_rule.at("R6"), 21);
  EXPECT_EQ(budget.total, 36);
}

TEST(LintBudget, MalformedLineIsAnError) {
  const std::string path = write_temp_budget("budget_bad", "R4 two\n");
  lint::Budget budget;
  std::string error;
  EXPECT_FALSE(lint::load_budget(path, budget, error));
  EXPECT_FALSE(error.empty());
}

TEST(LintBudget, MissingFileIsAnError) {
  lint::Budget budget;
  std::string error;
  EXPECT_FALSE(
      lint::load_budget("/nonexistent/graffix/lint_budget", budget, error));
  EXPECT_FALSE(error.empty());
}

TEST(LintBudget, PerRuleOverrunIsReported) {
  lint::Budget budget;
  budget.per_rule["R4"] = 1;
  const auto violations =
      lint::budget_violations(result_with_suppressions(2), budget);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("R4"), std::string::npos);
}

TEST(LintBudget, UnbudgetedRuleCountsAsZero) {
  lint::Budget budget;  // no R4 line at all
  const auto violations =
      lint::budget_violations(result_with_suppressions(1), budget);
  ASSERT_EQ(violations.size(), 1u);
}

TEST(LintBudget, TotalOverrunIsReported) {
  lint::Budget budget;
  budget.per_rule["R4"] = 5;
  budget.total = 1;
  const auto violations =
      lint::budget_violations(result_with_suppressions(2), budget);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("total"), std::string::npos);
}

TEST(LintBudget, WithinBudgetIsQuiet) {
  lint::Budget budget;
  budget.per_rule["R4"] = 2;
  budget.total = 2;
  EXPECT_TRUE(
      lint::budget_violations(result_with_suppressions(2), budget).empty());
}
