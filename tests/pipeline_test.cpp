// Pipeline (public API) tests: technique application and reset, artifact
// wiring into run(), projection back to node ids, preprocessing
// reporting, and exactness guarantees of the disabled-approximation
// configurations.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "core/pipeline.hpp"
#include "gen/rmat.hpp"
#include "graph/validate.hpp"

namespace graffix {
namespace {

Csr small_rmat(std::uint32_t scale = 9) {
  RmatParams p;
  p.scale = scale;
  p.edge_factor = 8;
  return generate_rmat(p);
}

TEST(Pipeline, StartsWithNoTechnique) {
  Pipeline pipeline(small_rmat());
  EXPECT_EQ(pipeline.technique(), Technique::None);
  EXPECT_EQ(&pipeline.current(), &pipeline.original());
  EXPECT_DOUBLE_EQ(pipeline.extra_space_fraction(), 0.0);
  EXPECT_EQ(pipeline.edges_added(), 0u);
}

TEST(Pipeline, ApplyCoalescingSwitchesCurrent) {
  Pipeline pipeline(small_rmat());
  transform::CoalescingKnobs knobs;
  knobs.connectedness_threshold = 0.3;
  const auto& result = pipeline.apply_coalescing(knobs);
  EXPECT_EQ(pipeline.technique(), Technique::Coalescing);
  EXPECT_NE(&pipeline.current(), &pipeline.original());
  EXPECT_TRUE(validate_graph(pipeline.current()).ok);
  EXPECT_GE(pipeline.preprocessing_seconds(), 0.0);
  EXPECT_EQ(pipeline.edges_added(), result.edges_added);
}

TEST(Pipeline, ValidateModeAcceptsAllTechniques) {
  // With GRAFFIX_VALIDATE on, every transform boundary re-validates its
  // output; a healthy pipeline must sail through all four techniques.
  ::setenv("GRAFFIX_VALIDATE", "1", 1);
  Pipeline pipeline(small_rmat());
  transform::CoalescingKnobs coalescing;
  coalescing.connectedness_threshold = 0.3;
  pipeline.apply_coalescing(coalescing);
  pipeline.apply_latency({});
  pipeline.apply_divergence({});
  transform::CombinedKnobs combined;
  combined.coalescing = coalescing;
  combined.latency = transform::LatencyKnobs{};
  combined.divergence = transform::DivergenceKnobs{};
  pipeline.apply_combined(combined);
  ::unsetenv("GRAFFIX_VALIDATE");
  EXPECT_EQ(pipeline.technique(), Technique::Combined);
  EXPECT_TRUE(validate_graph(pipeline.current()).ok);
}

TEST(Pipeline, ResetRestoresOriginal) {
  Pipeline pipeline(small_rmat());
  pipeline.apply_divergence({});
  EXPECT_EQ(pipeline.technique(), Technique::Divergence);
  pipeline.reset();
  EXPECT_EQ(pipeline.technique(), Technique::None);
  EXPECT_EQ(&pipeline.current(), &pipeline.original());
}

TEST(Pipeline, TechniquesReplaceEachOther) {
  Pipeline pipeline(small_rmat());
  pipeline.apply_latency({});
  pipeline.apply_divergence({});
  EXPECT_EQ(pipeline.technique(), Technique::Divergence);
}

TEST(Pipeline, SlotMappingIdentityWithoutCoalescing) {
  Pipeline pipeline(small_rmat());
  EXPECT_EQ(pipeline.slot_of_node(5), 5u);
  pipeline.apply_divergence({});
  EXPECT_EQ(pipeline.slot_of_node(5), 5u);
}

TEST(Pipeline, SlotMappingFollowsRenumbering) {
  Pipeline pipeline(small_rmat());
  const auto& result = pipeline.apply_coalescing({});
  for (NodeId v = 0; v < 10; ++v) {
    EXPECT_EQ(pipeline.slot_of_node(v), result.renumber.slot_of_node[v]);
  }
}

TEST(Pipeline, ProjectionRoundTrip) {
  Pipeline pipeline(small_rmat());
  pipeline.apply_coalescing({});
  std::vector<double> attr(pipeline.current().num_slots());
  for (std::size_t s = 0; s < attr.size(); ++s) attr[s] = double(s);
  const auto projected = pipeline.project(attr);
  ASSERT_EQ(projected.size(), pipeline.original().num_nodes());
  for (NodeId v = 0; v < 10; ++v) {
    EXPECT_DOUBLE_EQ(projected[v], double(pipeline.slot_of_node(v)));
  }
}

TEST(Pipeline, ExactIsomorphHasZeroPagerankError) {
  // connectedness > 1: pure renumbering; PR projected back must match the
  // exact run bit-for-bit up to float tolerance.
  Pipeline pipeline(small_rmat(8));
  transform::CoalescingKnobs knobs;
  knobs.connectedness_threshold = 1.5;
  pipeline.apply_coalescing(knobs);

  const auto exact = pipeline.run_exact(core::Algorithm::PR);
  const auto approx = pipeline.run(core::Algorithm::PR);
  const auto projected = pipeline.project(approx.attr);
  for (NodeId v = 0; v < pipeline.original().num_nodes(); ++v) {
    EXPECT_NEAR(projected[v], exact.attr[v], 1e-9) << v;
  }
}

TEST(Pipeline, RunWiresDivergenceOrder) {
  Pipeline pipeline(small_rmat(10));
  pipeline.apply_divergence({});
  const auto plain = pipeline.run_exact(core::Algorithm::PR);
  const auto transformed = pipeline.run(core::Algorithm::PR);
  // Bucketed warp order: better SIMD efficiency than the exact run.
  EXPECT_GT(transformed.stats.simd_efficiency(),
            plain.stats.simd_efficiency());
}

TEST(Pipeline, RunWiresLatencyClusters) {
  Pipeline pipeline(small_rmat(10));
  transform::LatencyKnobs knobs;
  knobs.cc_threshold = 0.2;
  knobs.near_delta = 0.2;
  const auto& result = pipeline.apply_latency(knobs);
  if (result.schedule.empty()) GTEST_SKIP() << "no clusters at this scale";
  const auto out = pipeline.run(core::Algorithm::PR);
  EXPECT_GT(out.stats.shared_accesses, 0u);
}

TEST(Pipeline, PreprocessingSecondsPositiveForRealWork) {
  Pipeline pipeline(small_rmat(11));
  pipeline.apply_coalescing({});
  EXPECT_GT(pipeline.preprocessing_seconds(), 0.0);
}

TEST(TechniqueName, AllNamesDistinct) {
  EXPECT_STREQ(technique_name(Technique::None), "none");
  EXPECT_STREQ(technique_name(Technique::Coalescing), "coalescing");
  EXPECT_STREQ(technique_name(Technique::Latency), "latency");
  EXPECT_STREQ(technique_name(Technique::Divergence), "divergence");
}

}  // namespace
}  // namespace graffix
