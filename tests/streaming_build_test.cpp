// Differential tests for the streaming CSR build path (DESIGN.md §9):
// for every Table-1 generator, the streaming build must produce a Csr
// BYTE-IDENTICAL to the materializing GraphBuilder path — at 1/2/8
// worker threads and chunk sizes {1, 4096, whole-stream} — plus the
// degenerate shapes (empty graph, single edge, self-loops-only) and the
// dedup/unweighted option combinations.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "gen/road_grid.hpp"
#include "gen/suite.hpp"
#include "graph/builder.hpp"
#include "graph/streaming_builder.hpp"
#include "util/parallel.hpp"

namespace graffix {
namespace {

/// Byte-level equality: spans must match element-for-element, weights
/// compared as bits (NaN-safe, -0.0 != +0.0).
void expect_csr_bytes_equal(const Csr& a, const Csr& b) {
  ASSERT_EQ(a.num_slots(), b.num_slots());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  const auto ao = a.offsets(), bo = b.offsets();
  ASSERT_EQ(ao.size(), bo.size());
  EXPECT_EQ(std::memcmp(ao.data(), bo.data(), ao.size_bytes()), 0);
  const auto at = a.targets(), bt = b.targets();
  ASSERT_EQ(at.size(), bt.size());
  EXPECT_EQ(std::memcmp(at.data(), bt.data(), at.size_bytes()), 0);
  const auto aw = a.weights(), bw = b.weights();
  ASSERT_EQ(aw.size(), bw.size());
  if (!aw.empty()) {
    EXPECT_EQ(std::memcmp(aw.data(), bw.data(), aw.size_bytes()), 0);
  }
}

// Worker counts the determinism contract is pinned at; 8 deliberately
// oversubscribes small CI machines (outputs must not care).
const int kThreadCounts[] = {1, 2, 8};
// 1 exercises per-edge chunking, 4096 forces mid-block chunk boundaries
// (kGenBlock = 16384), 0 = whole stream in one span.
const std::size_t kChunks[] = {1, 4096, 0};

class ScopedThreads {
 public:
  explicit ScopedThreads(int n) { set_num_threads(n); }
  ~ScopedThreads() { set_num_threads(0); }
};

template <typename Materialize, typename Stream>
void run_matrix(Materialize&& materialize, Stream&& stream) {
  const Csr reference = materialize();
  for (int threads : kThreadCounts) {
    ScopedThreads guard(threads);
    for (std::size_t chunk : kChunks) {
      SCOPED_TRACE(testing::Message()
                   << "threads=" << threads << " chunk=" << chunk);
      expect_csr_bytes_equal(reference, stream(chunk));
      // The materializing path must also be thread-count-invariant.
      expect_csr_bytes_equal(reference, materialize());
    }
  }
}

TEST(StreamingBuild, RmatMatchesMaterializing) {
  RmatParams p;
  p.scale = 12;  // 65536 edges = 4 generator blocks
  p.edge_factor = 16;
  run_matrix([&] { return generate_rmat(p); },
             [&](std::size_t chunk) { return generate_rmat_streaming(p, chunk); });
}

TEST(StreamingBuild, RmatUnweightedDedupMatchesMaterializing) {
  RmatParams p;
  p.scale = 11;
  p.edge_factor = 8;
  p.weighted = false;
  p.dedup = true;
  run_matrix([&] { return generate_rmat(p); },
             [&](std::size_t chunk) { return generate_rmat_streaming(p, chunk); });
}

TEST(StreamingBuild, RmatWeightedDedupMatchesMaterializing) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  p.dedup = true;
  run_matrix([&] { return generate_rmat(p); },
             [&](std::size_t chunk) { return generate_rmat_streaming(p, chunk); });
}

TEST(StreamingBuild, ErdosRenyiMatchesMaterializing) {
  ErdosRenyiParams p;
  p.scale = 12;
  p.edge_factor = 16;
  run_matrix([&] { return generate_erdos_renyi(p); },
             [&](std::size_t chunk) {
               return generate_erdos_renyi_streaming(p, chunk);
             });
}

TEST(StreamingBuild, RoadGridMatchesMaterializing) {
  RoadGridParams p;
  p.width = 64;
  p.height = 64;
  run_matrix([&] { return generate_road_grid(p); },
             [&](std::size_t chunk) {
               return generate_road_grid_streaming(p, chunk);
             });
}

TEST(StreamingBuild, AllPresetsMatchMaterializing) {
  for (GraphPreset preset : all_presets()) {
    const Csr reference = make_preset(preset, 8, 42);
    for (std::size_t chunk : kChunks) {
      SCOPED_TRACE(testing::Message()
                   << preset_name(preset) << " chunk=" << chunk);
      expect_csr_bytes_equal(reference, make_preset_streaming(preset, 8, 42, chunk));
    }
  }
}

TEST(StreamingBuild, EmptyGraph) {
  StreamingCsrOptions o;
  const Csr g = build_streaming_csr(NodeId{0}, o, [](const EdgeSink&) {});
  EXPECT_EQ(g.num_slots(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  const Csr g2 =
      build_streaming_csr(NodeId{16}, o, [](const EdgeSink&) {});
  EXPECT_EQ(g2.num_slots(), 16u);
  EXPECT_EQ(g2.num_edges(), 0u);
  for (NodeId u = 0; u < 16; ++u) EXPECT_EQ(g2.degree(u), 0u);
}

TEST(StreamingBuild, SingleEdge) {
  StreamingCsrOptions o;
  o.weighted = true;
  const std::vector<EdgeTriple> edges = {{2, 5, 7.5f}};
  const Csr g = build_streaming_csr(NodeId{8}, o, [&](const EdgeSink& sink) {
    sink(std::span<const EdgeTriple>(edges));
  });
  GraphBuilder b(8);
  b.set_weighted(true);
  b.add_edge(2, 5, 7.5f);
  expect_csr_bytes_equal(b.build(), g);
}

TEST(StreamingBuild, SelfLoopsOnlyDropsToEmpty) {
  StreamingCsrOptions o;
  o.drop_self_loops = true;
  const std::vector<EdgeTriple> edges = {{0, 0, 1.0f}, {3, 3, 1.0f}};
  const Csr g = build_streaming_csr(NodeId{4}, o, [&](const EdgeSink& sink) {
    // One edge per chunk, exercising the per-chunk self-loop filter.
    for (const EdgeTriple& e : edges) {
      sink(std::span<const EdgeTriple>(&e, 1));
    }
  });
  EXPECT_EQ(g.num_slots(), 4u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(StreamingBuild, DedupKeepsMinWeightAcrossChunks) {
  StreamingCsrOptions o;
  o.weighted = true;
  o.dedup = GraphBuilder::Dedup::KeepMinWeight;
  const std::vector<EdgeTriple> edges = {
      {1, 2, 5.0f}, {1, 2, 3.0f}, {1, 3, 9.0f}, {1, 2, 4.0f}, {0, 2, 1.0f}};
  const Csr g = build_streaming_csr(NodeId{4}, o, [&](const EdgeSink& sink) {
    sink(std::span<const EdgeTriple>(edges.data(), 2));
    sink(std::span<const EdgeTriple>(edges.data() + 2, 3));
  });
  GraphBuilder b(4);
  b.set_weighted(true);
  b.set_dedup(GraphBuilder::Dedup::KeepMinWeight);
  for (const EdgeTriple& e : edges) b.add_edge(e.src, e.dst, e.weight);
  expect_csr_bytes_equal(b.build(), g);
  ASSERT_EQ(g.degree(1), 2u);
  EXPECT_FLOAT_EQ(g.edge_weights(1)[0], 3.0f);  // min of the 1->2 multi-edge
}

TEST(StreamingBuild, EmitChunkingIsBoundaryInvariant) {
  // Concatenating emitted spans must not depend on the chunk size.
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 4;
  std::vector<EdgeTriple> whole, tiny;
  emit_rmat(p, 0, [&](std::span<const EdgeTriple> c) {
    whole.insert(whole.end(), c.begin(), c.end());
  });
  emit_rmat(p, 17, [&](std::span<const EdgeTriple> c) {
    EXPECT_LE(c.size(), 17u);
    tiny.insert(tiny.end(), c.begin(), c.end());
  });
  ASSERT_EQ(whole.size(), tiny.size());
  EXPECT_EQ(std::memcmp(whole.data(), tiny.data(),
                        whole.size() * sizeof(EdgeTriple)),
            0);
}

}  // namespace
}  // namespace graffix
