// Determinism-under-parallelism contract (DESIGN.md §7): every parallel
// path in the transform substrate must produce bit-identical output for
// every thread count. These tests run the same operation at 1, 2, and 8
// threads (oversubscription included on purpose — correctness must not
// depend on the hardware pool size) and compare outputs exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/sssp.hpp"
#include "core/runners.hpp"
#include "gen/suite.hpp"
#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/rebuild.hpp"
#include "sim/engine.hpp"
#include "transform/coalescing.hpp"
#include "transform/combined.hpp"
#include "transform/confluence.hpp"
#include "transform/divergence.hpp"
#include "transform/latency.hpp"
#include "util/parallel.hpp"
#include "util/prefix_sum.hpp"

namespace graffix {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

/// Pins the worker pool, runs fn, restores the hardware default.
template <typename Fn>
auto at_threads(int t, Fn&& fn) {
  set_num_threads(t);
  auto result = fn();
  set_num_threads(0);
  return result;
}

void expect_same_csr(const Csr& a, const Csr& b, const char* what) {
  ASSERT_EQ(a.num_slots(), b.num_slots()) << what;
  ASSERT_EQ(a.num_edges(), b.num_edges()) << what;
  EXPECT_TRUE(std::equal(a.offsets().begin(), a.offsets().end(),
                         b.offsets().begin()))
      << what << ": offsets differ";
  EXPECT_TRUE(std::equal(a.targets().begin(), a.targets().end(),
                         b.targets().begin()))
      << what << ": targets differ";
  ASSERT_EQ(a.has_weights(), b.has_weights()) << what;
  if (a.has_weights()) {
    EXPECT_TRUE(std::equal(a.weights().begin(), a.weights().end(),
                           b.weights().begin()))
        << what << ": weights differ";
  }
  ASSERT_EQ(a.has_holes(), b.has_holes()) << what;
  if (a.has_holes()) {
    EXPECT_TRUE(
        std::equal(a.holes().begin(), a.holes().end(), b.holes().begin()))
        << what << ": holes differ";
  }
}

// --- parallel_exclusive_scan_inplace ---------------------------------

TEST(ScanDeterminism, MatchesSerialAroundParallelThreshold) {
  // The scan falls back to the serial path below 1<<14 elements; cover
  // sizes straddling that boundary plus a multi-chunk size.
  constexpr std::size_t kThreshold = std::size_t{1} << 14;
  const std::size_t sizes[] = {1,          5,          kThreshold - 1,
                               kThreshold, kThreshold + 1, 3 * kThreshold + 7};
  for (std::size_t n : sizes) {
    std::vector<std::uint64_t> input(n);
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    for (auto& v : input) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      v = x % 1000;
    }
    std::vector<std::uint64_t> expected = input;
    const std::uint64_t expected_total =
        exclusive_scan_inplace(std::span<std::uint64_t>(expected));
    for (int t : kThreadCounts) {
      std::vector<std::uint64_t> got = input;
      const std::uint64_t total = at_threads(t, [&] {
        return parallel_exclusive_scan_inplace(std::span<std::uint64_t>(got));
      });
      EXPECT_EQ(total, expected_total) << "n=" << n << " threads=" << t;
      EXPECT_EQ(got, expected) << "n=" << n << " threads=" << t;
    }
  }
}

// --- rebuild helpers -------------------------------------------------

TEST(Rebuild, WithExtrasAppendsInOrder) {
  GraphBuilder b(3);
  b.set_weighted(true);
  b.add_edge(0, 1, 1.0f);
  b.add_edge(0, 2, 2.0f);
  b.add_edge(2, 0, 3.0f);
  const Csr base = b.build();

  std::vector<std::vector<ExtraArc>> extra(3);
  extra[0] = {{2, 9.0f}};
  extra[1] = {{0, 4.0f}, {2, 5.0f}};
  const Csr out = rebuild_with_extras(base, extra);

  ASSERT_EQ(out.num_edges(), 6u);
  const std::vector<EdgeId> offsets(out.offsets().begin(),
                                    out.offsets().end());
  EXPECT_EQ(offsets, (std::vector<EdgeId>{0, 3, 5, 6}));
  const std::vector<NodeId> targets(out.targets().begin(),
                                    out.targets().end());
  // Base adjacency first, then extras in list order (no re-sort, no
  // dedup — transform semantics).
  EXPECT_EQ(targets, (std::vector<NodeId>{1, 2, 2, 0, 2, 0}));
  ASSERT_TRUE(out.has_weights());
  const std::vector<Weight> weights(out.weights().begin(),
                                    out.weights().end());
  EXPECT_EQ(weights,
            (std::vector<Weight>{1.0f, 2.0f, 9.0f, 4.0f, 5.0f, 3.0f}));
}

TEST(Rebuild, WithEmptyExtrasReproducesBase) {
  const Csr base = make_preset(GraphPreset::Rmat26, 8, 3);
  const Csr out = rebuild_with_extras(base, {});
  expect_same_csr(base, out, "empty extras");
}

TEST(Rebuild, ConsumingOverloadMatchesConstOverload) {
  const Csr base = make_preset(GraphPreset::Rmat26, 8, 3);
  std::vector<std::vector<ExtraArc>> extra(base.num_slots());
  extra[1] = {{2, 9.0f}, {0, 1.0f}};
  extra[base.num_slots() - 1] = {{0, 2.5f}};
  const Csr ref = rebuild_with_extras(base, extra);
  Csr owned = base;
  const Csr got = rebuild_with_extras(std::move(owned), extra);
  expect_same_csr(ref, got, "consuming rebuild");
}

TEST(Rebuild, FromAdjacencyCarriesHolesAndWeights) {
  std::vector<std::vector<ExtraArc>> adj(3);
  adj[0] = {{1, 1.5f}, {2, 2.5f}};
  adj[2] = {{0, 3.5f}};
  const Csr out =
      rebuild_from_adjacency(adj, /*weighted=*/true, {0, 1, 0});

  ASSERT_EQ(out.num_slots(), 3u);
  ASSERT_EQ(out.num_edges(), 3u);
  EXPECT_TRUE(out.is_hole(1));
  EXPECT_FALSE(out.is_hole(0));
  const std::vector<EdgeId> offsets(out.offsets().begin(),
                                    out.offsets().end());
  EXPECT_EQ(offsets, (std::vector<EdgeId>{0, 2, 2, 3}));
  const std::vector<NodeId> targets(out.targets().begin(),
                                    out.targets().end());
  EXPECT_EQ(targets, (std::vector<NodeId>{1, 2, 0}));
  ASSERT_TRUE(out.has_weights());
  EXPECT_FLOAT_EQ(out.edge_weights(0)[1], 2.5f);
  EXPECT_FLOAT_EQ(out.edge_weights(2)[0], 3.5f);
}

TEST(Rebuild, DeterministicAcrossThreadCounts) {
  const Csr base = make_preset(GraphPreset::Rmat26, 11, 5);
  std::vector<std::vector<ExtraArc>> extra(base.num_slots());
  // Deterministic synthetic extras: every 3rd slot gains two arcs.
  for (NodeId u = 0; u < base.num_slots(); u += 3) {
    extra[u] = {{(u + 1) % base.num_slots(), 1.0f},
                {(u + 7) % base.num_slots(), 2.0f}};
  }
  const Csr ref =
      at_threads(1, [&] { return rebuild_with_extras(base, extra); });
  for (int t : {2, 8}) {
    const Csr got =
        at_threads(t, [&] { return rebuild_with_extras(base, extra); });
    expect_same_csr(ref, got, "rebuild_with_extras");
  }
}

// --- Csr::transpose / symmetrized ------------------------------------

TEST(CsrDeterminism, TransposeIdenticalAcrossThreadCounts) {
  const Csr g = make_preset(GraphPreset::Rmat26, 11, 7);
  // Large enough that the parallel counting-sort path engages at t > 1.
  ASSERT_GE(g.num_edges(), std::uint64_t{1} << 14);
  const Csr ref = at_threads(1, [&] { return g.transpose(); });
  for (int t : {2, 8}) {
    const Csr got = at_threads(t, [&] { return g.transpose(); });
    expect_same_csr(ref, got, "transpose");
  }
}

TEST(CsrDeterminism, DoubleTransposeIsAFixpoint) {
  // T(T(G)) canonicalizes each row to ascending target order, so a
  // further double transpose must reproduce it exactly.
  const Csr g = make_preset(GraphPreset::Rmat26, 10, 7);
  const Csr canon = at_threads(8, [&] { return g.transpose().transpose(); });
  EXPECT_EQ(canon.num_edges(), g.num_edges());
  ASSERT_EQ(canon.num_slots(), g.num_slots());
  const Csr again =
      at_threads(8, [&] { return canon.transpose().transpose(); });
  expect_same_csr(canon, again, "double transpose fixpoint");
}

TEST(CsrDeterminism, SymmetrizedIdenticalAcrossThreadCounts) {
  const Csr g = make_preset(GraphPreset::Rmat26, 11, 9);
  const Csr ref = at_threads(1, [&] { return g.symmetrized(); });
  for (int t : {2, 8}) {
    const Csr got = at_threads(t, [&] { return g.symmetrized(); });
    expect_same_csr(ref, got, "symmetrized");
  }
}

// --- transforms ------------------------------------------------------

TEST(TransformDeterminism, DivergenceBitIdentical) {
  const Csr g = make_preset(GraphPreset::Rmat26, 10, 7);
  const transform::DivergenceKnobs knobs;
  const auto ref =
      at_threads(1, [&] { return transform::divergence_transform(g, knobs); });
  EXPECT_GT(ref.edges_added, 0u);  // the approximation must engage
  for (int t : {2, 8}) {
    const auto got = at_threads(
        t, [&] { return transform::divergence_transform(g, knobs); });
    expect_same_csr(ref.graph, got.graph, "divergence graph");
    EXPECT_EQ(ref.warp_order, got.warp_order);
    EXPECT_EQ(ref.edges_added, got.edges_added);
    EXPECT_DOUBLE_EQ(ref.degree_uniformity_before,
                     got.degree_uniformity_before);
    EXPECT_DOUBLE_EQ(ref.degree_uniformity_after, got.degree_uniformity_after);
  }
}

TEST(TransformDeterminism, LatencyBitIdentical) {
  const Csr g = make_preset(GraphPreset::Rmat26, 10, 7);
  const transform::LatencyKnobs knobs;
  const auto ref =
      at_threads(1, [&] { return transform::latency_transform(g, knobs); });
  for (int t : {2, 8}) {
    const auto got =
        at_threads(t, [&] { return transform::latency_transform(g, knobs); });
    expect_same_csr(ref.graph, got.graph, "latency graph");
    EXPECT_EQ(ref.edges_added, got.edges_added);
    EXPECT_EQ(ref.schedule.resident, got.schedule.resident);
    ASSERT_EQ(ref.schedule.clusters.size(), got.schedule.clusters.size());
    for (std::size_t c = 0; c < ref.schedule.clusters.size(); ++c) {
      EXPECT_EQ(ref.schedule.clusters[c].members,
                got.schedule.clusters[c].members);
      EXPECT_EQ(ref.schedule.clusters[c].inner_iterations,
                got.schedule.clusters[c].inner_iterations);
    }
    EXPECT_DOUBLE_EQ(ref.mean_cc_before, got.mean_cc_before);
    EXPECT_DOUBLE_EQ(ref.mean_cc_after, got.mean_cc_after);
  }
}

TEST(TransformDeterminism, LatencyBatchedGreedyBitIdenticalAtScale) {
  // Aggressive knobs on a graph large enough that the batched greedy
  // rounds genuinely shard across workers (thousands of candidates per
  // round at scale 12): scenario-1/2 insertion must stay bit-identical
  // at 1, 2, and 8 threads.
  const Csr g = make_preset(GraphPreset::Rmat26, 12, 7);
  transform::LatencyKnobs knobs;
  knobs.cc_threshold = 0.4;
  knobs.near_delta = 0.3;
  knobs.edge_budget_fraction = 0.1;
  const auto ref =
      at_threads(1, [&] { return transform::latency_transform(g, knobs); });
  EXPECT_GT(ref.edges_added, 0u);  // the greedy phases must have fired
  for (int t : {2, 8}) {
    const auto got =
        at_threads(t, [&] { return transform::latency_transform(g, knobs); });
    expect_same_csr(ref.graph, got.graph, "batched latency graph");
    EXPECT_EQ(ref.edges_added, got.edges_added);
    EXPECT_EQ(ref.schedule.resident, got.schedule.resident);
    EXPECT_EQ(ref.batching.rounds, got.batching.rounds) << "threads=" << t;
    EXPECT_EQ(ref.batching.batched, got.batching.batched) << "threads=" << t;
    EXPECT_EQ(ref.batching.serial_steps, got.batching.serial_steps)
        << "threads=" << t;
  }
}

TEST(TransformDeterminism, ReplicateIntoHolesBitIdentical) {
  // Direct replicate_into_holes determinism (CoalescingBitIdentical
  // covers it only through the driver): reserve is serial by design, so
  // this pins the batched APPLY rounds across thread counts.
  const Csr g = make_preset(GraphPreset::Rmat26, 12, 7);
  const transform::RenumberResult renumber =
      transform::renumber_bfs_forest(g, 16);
  const Csr renumbered = transform::apply_renumbering(g, renumber);
  transform::CoalescingKnobs knobs;
  knobs.connectedness_threshold = 0.4;
  const auto ref = at_threads(1, [&] {
    return transform::replicate_into_holes(renumbered, renumber, knobs);
  });
  EXPECT_GT(ref.holes_filled, 0u);  // replication must have engaged
  for (int t : {2, 8}) {
    const auto got = at_threads(t, [&] {
      return transform::replicate_into_holes(renumbered, renumber, knobs);
    });
    expect_same_csr(ref.graph, got.graph, "replicate graph");
    EXPECT_EQ(ref.replicas.groups, got.replicas.groups);
    EXPECT_EQ(ref.replicas.group_of_slot, got.replicas.group_of_slot);
    EXPECT_EQ(ref.edges_moved, got.edges_moved);
    EXPECT_EQ(ref.edges_added, got.edges_added);
    EXPECT_EQ(ref.holes_filled, got.holes_filled);
    EXPECT_EQ(ref.batching.rounds, got.batching.rounds) << "threads=" << t;
  }
}

TEST(TransformDeterminism, CoalescingBitIdentical) {
  const Csr g = make_preset(GraphPreset::Rmat26, 10, 7);
  const transform::CoalescingKnobs knobs;
  const auto ref =
      at_threads(1, [&] { return transform::coalescing_transform(g, knobs); });
  for (int t : {2, 8}) {
    const auto got = at_threads(
        t, [&] { return transform::coalescing_transform(g, knobs); });
    expect_same_csr(ref.graph, got.graph, "coalescing graph");
    EXPECT_EQ(ref.renumber.slot_of_node, got.renumber.slot_of_node);
    EXPECT_EQ(ref.renumber.node_of_slot, got.renumber.node_of_slot);
    EXPECT_EQ(ref.replicas.groups, got.replicas.groups);
    EXPECT_EQ(ref.replicas.group_of_slot, got.replicas.group_of_slot);
    EXPECT_EQ(ref.edges_added, got.edges_added);
    EXPECT_EQ(ref.holes_filled, got.holes_filled);
  }
}

TEST(TransformDeterminism, CombinedBitIdentical) {
  const Csr g = make_preset(GraphPreset::Rmat26, 10, 7);
  transform::CombinedKnobs knobs;
  knobs.coalescing.emplace();
  knobs.latency.emplace();
  knobs.divergence.emplace();
  const auto ref =
      at_threads(1, [&] { return transform::combined_transform(g, knobs); });
  for (int t : {2, 8}) {
    const auto got =
        at_threads(t, [&] { return transform::combined_transform(g, knobs); });
    expect_same_csr(ref.graph, got.graph, "combined graph");
    EXPECT_EQ(ref.warp_order, got.warp_order);
    EXPECT_EQ(ref.replicas.groups, got.replicas.groups);
    EXPECT_EQ(ref.schedule.resident, got.schedule.resident);
    EXPECT_EQ(ref.edges_added, got.edges_added);
  }
}

// --- lockstep engine -------------------------------------------------

/// One gated Bellman-Ford-style sweep sequence over `items`: the functor
/// is order-sensitive (it reads distances written by earlier lanes of
/// the same sweep), so any accidental parallelism in the functional
/// phase would change both the attribute vector and the atomic counters.
struct EngineRun {
  sim::KernelStats stats;
  std::vector<double> dist;
};

/// Maximum-out-degree node: a source that definitely reaches work.
NodeId busiest_node(const Csr& graph) {
  NodeId best = 0, best_degree = 0;
  for (NodeId v = 0; v < graph.num_slots(); ++v) {
    if (!graph.is_hole(v) && graph.degree(v) > best_degree) {
      best = v;
      best_degree = graph.degree(v);
    }
  }
  return best;
}

EngineRun run_engine_sweeps(const Csr& graph, std::span<const sim::WorkItem> items,
                            NodeId source, int sweeps) {
  EngineRun r;
  sim::Engine engine(graph, sim::SimConfig{});
  sim::SweepOptions opts;
  opts.weighted = graph.has_weights();
  r.dist.assign(graph.num_slots(), std::numeric_limits<double>::infinity());
  r.dist[source] = 0.0;
  for (int s = 0; s < sweeps; ++s) {
    engine.sweep_gated(
        items, opts,
        [&](NodeId u) { return r.dist[u] != std::numeric_limits<double>::infinity(); },
        [&](NodeId u, NodeId v, Weight w) {
          const double nd = r.dist[u] + static_cast<double>(w);
          if (nd < r.dist[v]) {
            r.dist[v] = nd;
            return true;
          }
          return false;
        },
        r.stats);
  }
  return r;
}

TEST(EngineDeterminism, GoldenStatsAcrossThreadCounts) {
  // Scale 11 -> 64 warp blocks of 32 items: comfortably above the
  // kMinBlocksToShard threshold, so t > 1 actually shards Phase A.
  const Csr g = make_preset(GraphPreset::Rmat26, 11, 13);
  const auto items = sim::items_all_vertices(g);
  ASSERT_GE(items.size() / sim::SimConfig{}.warp_size, std::size_t{32});
  const NodeId source = busiest_node(g);

  const EngineRun ref =
      at_threads(1, [&] { return run_engine_sweeps(g, items, source, 4); });
  // The serial run must do real work for the comparison to mean anything.
  EXPECT_GT(ref.stats.warp_steps, 0u);
  EXPECT_GT(ref.stats.atomic_commits, 0u);
  EXPECT_GT(ref.stats.edge_transactions, 0u);
  for (int t : {2, 8}) {
    const EngineRun got =
        at_threads(t, [&] { return run_engine_sweeps(g, items, source, 4); });
    EXPECT_EQ(got.stats, ref.stats) << "threads=" << t;
    ASSERT_EQ(got.dist.size(), ref.dist.size());
    EXPECT_EQ(std::memcmp(got.dist.data(), ref.dist.data(),
                          got.dist.size() * sizeof(double)),
              0)
        << "threads=" << t << ": attribute bits differ";
  }
}

TEST(EngineDeterminism, TailWarpWithPartialLanes) {
  // Drop a few trailing items so the last warp block has fewer than
  // warp_size lanes — the sharded accounting phase must charge the
  // partial block exactly like the serial engine does.
  const Csr g = make_preset(GraphPreset::Rmat26, 11, 13);
  const auto all = sim::items_all_vertices(g);
  const std::uint32_t ws = sim::SimConfig{}.warp_size;
  const std::span<const sim::WorkItem> items(all.data(), all.size() - 3);
  ASSERT_NE(items.size() % ws, 0u);  // the tail warp is genuinely partial
  ASSERT_GE(items.size() / ws, std::size_t{32});
  const NodeId source = busiest_node(g);

  const EngineRun ref =
      at_threads(1, [&] { return run_engine_sweeps(g, items, source, 3); });
  EXPECT_GT(ref.stats.atomic_commits, 0u);
  for (int t : {2, 8}) {
    const EngineRun got =
        at_threads(t, [&] { return run_engine_sweeps(g, items, source, 3); });
    EXPECT_EQ(got.stats, ref.stats) << "threads=" << t;
    EXPECT_EQ(std::memcmp(got.dist.data(), ref.dist.data(),
                          got.dist.size() * sizeof(double)),
              0)
        << "threads=" << t;
  }
}

/// Like run_engine_sweeps, but forces the engine's chunking policy
/// (0 = automatic) and additionally gates out every source whose slot is
/// in [dead_lo, dead_hi) — with items_all_vertices that window can cover
/// one whole warp block, making the block dead for the entire run.
EngineRun run_engine_sweeps_chunked(const Csr& graph,
                                    std::span<const sim::WorkItem> items,
                                    NodeId source, int sweeps,
                                    std::size_t chunks, NodeId dead_lo,
                                    NodeId dead_hi) {
  EngineRun r;
  sim::Engine engine(graph, sim::SimConfig{});
  const sim::ScopedSweepChunks forced_chunks(engine, chunks);
  sim::SweepOptions opts;
  opts.weighted = graph.has_weights();
  r.dist.assign(graph.num_slots(), std::numeric_limits<double>::infinity());
  r.dist[source] = 0.0;
  for (int s = 0; s < sweeps; ++s) {
    engine.sweep_gated(
        items, opts,
        [&](NodeId u) {
          if (u >= dead_lo && u < dead_hi) return false;
          return r.dist[u] != std::numeric_limits<double>::infinity();
        },
        [&](NodeId u, NodeId v, Weight w) {
          const double nd = r.dist[u] + static_cast<double>(w);
          if (nd < r.dist[v]) {
            r.dist[v] = nd;
            return true;
          }
          return false;
        },
        r.stats);
  }
  return r;
}

TEST(EngineDeterminism, FusedAndShardedPathsShareGoldenStats) {
  // The same sweep sequence through all three execution paths — the
  // fused serial path (automatic policy at one thread), the forced
  // one-chunk two-phase path, and the forced 8-chunk sharded path at 8
  // threads — must produce one golden KernelStats + attribute vector.
  // The item list has a partial tail warp (3 items dropped) AND one
  // fully gated-out block, the two shapes where live-block compaction
  // and per-block metadata could plausibly diverge from the replay.
  const Csr g = make_preset(GraphPreset::Rmat26, 11, 13);
  const auto all = sim::items_all_vertices(g);
  // No holes in the preset, so item i's source is slot i and the window
  // [dead_b*ws, dead_b*ws + ws) below covers exactly warp block dead_b.
  ASSERT_EQ(all.size(), static_cast<std::size_t>(g.num_slots()));
  const std::uint32_t ws = sim::SimConfig{}.warp_size;
  const std::span<const sim::WorkItem> items(all.data(), all.size() - 3);
  ASSERT_NE(items.size() % ws, 0u);  // the tail warp is genuinely partial
  const std::size_t n_blocks = (items.size() + ws - 1) / ws;
  ASSERT_GE(n_blocks, std::size_t{16});
  const NodeId source = busiest_node(g);

  // Gate out every source of one full (non-tail) warp block that is not
  // the SSSP source's block, so the block stays dead all run.
  const std::size_t dead_b = (source / ws == 5) ? 6 : 5;
  const NodeId dead_lo = static_cast<NodeId>(dead_b * ws);
  const NodeId dead_hi = dead_lo + ws;
  bool dead_block_has_edges = false;
  for (NodeId u = dead_lo; u < dead_hi; ++u) {
    dead_block_has_edges = dead_block_has_edges || g.degree(u) > 0;
  }
  ASSERT_TRUE(dead_block_has_edges);  // skipping it must actually skip work

  const EngineRun fused = at_threads(1, [&] {
    return run_engine_sweeps_chunked(g, items, source, 3, 0, dead_lo, dead_hi);
  });
  EXPECT_GT(fused.stats.warp_steps, 0u);
  EXPECT_GT(fused.stats.atomic_commits, 0u);

  // The exclusion window must have engaged: an unrestricted run charges
  // more warp steps than one with a whole block gated out.
  const EngineRun unrestricted = at_threads(
      1, [&] { return run_engine_sweeps_chunked(g, items, source, 3, 0, 0, 0); });
  EXPECT_GT(unrestricted.stats.warp_steps, fused.stats.warp_steps);

  const EngineRun two_phase = at_threads(1, [&] {
    return run_engine_sweeps_chunked(g, items, source, 3, 1, dead_lo, dead_hi);
  });
  const EngineRun sharded = at_threads(8, [&] {
    return run_engine_sweeps_chunked(g, items, source, 3, 8, dead_lo, dead_hi);
  });
  EXPECT_EQ(two_phase.stats, fused.stats) << "two-phase 1-chunk vs fused";
  EXPECT_EQ(sharded.stats, fused.stats) << "sharded 8-chunk vs fused";
  ASSERT_EQ(two_phase.dist.size(), fused.dist.size());
  ASSERT_EQ(sharded.dist.size(), fused.dist.size());
  EXPECT_EQ(std::memcmp(two_phase.dist.data(), fused.dist.data(),
                        fused.dist.size() * sizeof(double)),
            0)
      << "two-phase attribute bits differ from fused";
  EXPECT_EQ(std::memcmp(sharded.dist.data(), fused.dist.data(),
                        fused.dist.size() * sizeof(double)),
            0)
      << "sharded attribute bits differ from fused";
}

// --- algorithm runners -----------------------------------------------

/// Full runner outputs (attr + stats + modeled seconds) must be
/// bit-identical at every thread count. BC additionally exercises the
/// source-parallel fork/absorb path.
void expect_run_identical(core::Algorithm alg, const Csr& graph,
                          const core::RunConfig& rc) {
  const core::RunOutput ref =
      at_threads(1, [&] { return core::run_algorithm(alg, graph, rc); });
  for (int t : {2, 8}) {
    const core::RunOutput got =
        at_threads(t, [&] { return core::run_algorithm(alg, graph, rc); });
    EXPECT_EQ(got.stats, ref.stats)
        << core::algorithm_name(alg) << " threads=" << t;
    EXPECT_EQ(got.sim_seconds, ref.sim_seconds)
        << core::algorithm_name(alg) << " threads=" << t;
    EXPECT_EQ(got.iterations, ref.iterations)
        << core::algorithm_name(alg) << " threads=" << t;
    ASSERT_EQ(got.attr.size(), ref.attr.size());
    if (!ref.attr.empty()) {
      EXPECT_EQ(std::memcmp(got.attr.data(), ref.attr.data(),
                            got.attr.size() * sizeof(double)),
                0)
          << core::algorithm_name(alg) << " threads=" << t
          << ": attribute bits differ";
    }
    EXPECT_EQ(got.scalar, ref.scalar)
        << core::algorithm_name(alg) << " threads=" << t;
  }
}

TEST(RunnerDeterminism, SsspBitIdenticalAcrossThreadCounts) {
  const Csr g = make_preset(GraphPreset::Rmat26, 10, 21);
  core::RunConfig rc;
  rc.seed = 21;
  expect_run_identical(core::Algorithm::SSSP, g, rc);
}

TEST(RunnerDeterminism, PageRankBitIdenticalAcrossThreadCounts) {
  const Csr g = make_preset(GraphPreset::Rmat26, 10, 21);
  core::RunConfig rc;
  rc.seed = 21;
  expect_run_identical(core::Algorithm::PR, g, rc);
}

TEST(RunnerDeterminism, BcSourceParallelBitIdentical) {
  const Csr g = make_preset(GraphPreset::Rmat26, 10, 21);
  core::RunConfig rc;
  rc.seed = 21;
  rc.bc_sample_count = 5;  // > 1 source engages the parallel source loop
  expect_run_identical(core::Algorithm::BC, g, rc);
}

TEST(RunnerDeterminism, BcTraceMatchesSerialCumulativeStats) {
  // The per-iteration trace is rebuilt by absorbing fork stats in source
  // order; it must equal the serial engine's cumulative trace exactly.
  const Csr g = make_preset(GraphPreset::Rmat26, 10, 33);
  core::RunConfig rc;
  rc.seed = 33;
  rc.bc_sample_count = 4;
  rc.collect_trace = true;
  const core::RunOutput ref =
      at_threads(1, [&] { return core::run_algorithm(core::Algorithm::BC, g, rc); });
  ASSERT_EQ(ref.trace.size(), std::size_t{4});
  for (int t : {2, 8}) {
    const core::RunOutput got = at_threads(
        t, [&] { return core::run_algorithm(core::Algorithm::BC, g, rc); });
    ASSERT_EQ(got.trace.size(), ref.trace.size()) << "threads=" << t;
    for (std::size_t i = 0; i < ref.trace.size(); ++i) {
      EXPECT_EQ(got.trace[i].iteration, ref.trace[i].iteration);
      EXPECT_EQ(got.trace[i].stats, ref.trace[i].stats)
          << "threads=" << t << " trace point " << i;
    }
  }
}

// --- host reference algorithms (cross-round ordering) ----------------

TEST(HostAlgorithmDeterminism, BellmanFordLongChainAcrossThreadCounts) {
  // Regression for the cross-round progress flag: the old relaxed
  // atomic-bool store/load pair was ordered against the next round's
  // check only by grace of the dispatch barrier; the deterministic
  // any-reduction makes the round count a pure function of which
  // relaxations succeeded. A long chain is the adversarial input — it
  // needs one round per hop, so a progress verdict lost between rounds
  // truncates the far distances instead of perturbing them subtly.
  constexpr NodeId kLen = 1500;
  GraphBuilder b(kLen);
  b.set_weighted(true);
  for (NodeId i = 0; i + 1 < kLen; ++i) {
    b.add_edge(i, i + 1, 1.0f + static_cast<float>(i % 7));
    // A few shortcuts so multiple candidates race for the same target.
    if (i % 97 == 0 && i + 5 < kLen) b.add_edge(i, i + 5, 40.0f);
  }
  const Csr g = b.build();
  const auto ref = sssp_dijkstra(g, 0);
  for (int t : kThreadCounts) {
    const auto got = at_threads(t, [&] { return sssp_bellman_ford(g, 0); });
    ASSERT_EQ(got.size(), ref.size()) << "threads=" << t;
    for (NodeId v = 0; v < kLen; ++v) {
      EXPECT_EQ(got[v], ref[v]) << "threads=" << t << " v=" << v;
    }
  }
}

TEST(HostAlgorithmDeterminism, ParallelBfsIdenticalAcrossThreadCounts) {
  // The frontier now flows through parallel_append + one sort; levels
  // and the implied traversal must be thread-count invariant.
  const Csr g = make_preset(GraphPreset::Rmat26, 11, 21);
  const auto ref = at_threads(1, [&] { return parallel_bfs(g, 0); });
  for (int t : {2, 8}) {
    const auto got = at_threads(t, [&] { return parallel_bfs(g, 0); });
    ASSERT_EQ(got.size(), ref.size()) << "threads=" << t;
    EXPECT_EQ(got, ref) << "threads=" << t;
  }
}

// --- confluence ------------------------------------------------------

TEST(ConfluenceDeterminism, FiniteMeanMergeBitIdentical) {
  // Many replica groups with awkward values (denormal-adjacent sums,
  // infinities to exercise the finite filter).
  constexpr NodeId kSlots = 3000;
  transform::ReplicaMap map;
  map.group_of_slot.assign(kSlots, kInvalidNode);
  for (NodeId base = 0; base + 3 <= kSlots; base += 3) {
    const NodeId gid = static_cast<NodeId>(map.groups.size());
    map.groups.push_back({base, base + 1, base + 2});
    for (NodeId s = base; s < base + 3; ++s) map.group_of_slot[s] = gid;
  }
  std::vector<float> init(kSlots);
  for (NodeId s = 0; s < kSlots; ++s) {
    init[s] = (s % 97 == 0) ? std::numeric_limits<float>::infinity()
                            : 0.1f * static_cast<float>(s % 1013) - 17.3f;
  }
  std::vector<float> ref = init;
  const std::size_t ref_merges = at_threads(1, [&] {
    return transform::merge_replicas_finite_mean(map, std::span<float>(ref));
  });
  for (int t : {2, 8}) {
    std::vector<float> got = init;
    const std::size_t merges = at_threads(t, [&] {
      return transform::merge_replicas_finite_mean(map,
                                                   std::span<float>(got));
    });
    EXPECT_EQ(merges, ref_merges);
    // Bit-identical floats: per-group accumulation order is fixed.
    EXPECT_EQ(std::memcmp(got.data(), ref.data(),
                          got.size() * sizeof(float)),
              0)
        << "threads=" << t;
  }
}

}  // namespace
}  // namespace graffix
