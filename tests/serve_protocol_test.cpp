// Wire-protocol contract for `graffix serve`: request parsing, response
// rendering, query correctness against the host references, transform
// publication, and the copy-on-write snapshot lifecycle. All server-level
// tests drive a real Server over a socketpair — the same byte path an
// external client uses.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <iterator>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/sssp.hpp"
#include "core/runners.hpp"
#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve_test_util.hpp"

namespace graffix::serve {
namespace {

using graffix::serve::testing::LineClient;
using graffix::serve::testing::connect_client;

/// Weighted diamond + tail + an isolated vertex (7 unreachable from 0).
Csr small_graph() {
  GraphBuilder b(8);
  b.add_edge(0, 1, 1.0F);
  b.add_edge(0, 2, 4.0F);
  b.add_edge(1, 2, 2.0F);
  b.add_edge(1, 3, 7.0F);
  b.add_edge(2, 3, 1.0F);
  b.add_edge(3, 4, 3.0F);
  b.add_edge(4, 5, 1.0F);
  b.add_edge(5, 6, 2.5F);
  b.add_edge(2, 6, 9.0F);
  return b.build();
}

bool contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

// ---- parse_request ------------------------------------------------------

TEST(ServeParse, AcceptsMinimalOps) {
  ParseResult p = parse_request(R"({"id":7,"op":"ping"})");
  ASSERT_TRUE(p.ok) << p.message;
  EXPECT_EQ(p.request.id, 7U);
  EXPECT_EQ(p.request.op, Op::Ping);

  p = parse_request(R"({"id":1,"op":"stats"})");
  ASSERT_TRUE(p.ok) << p.message;
  EXPECT_EQ(p.request.op, Op::Stats);

  p = parse_request(R"({"id":2,"op":"shutdown"})");
  ASSERT_TRUE(p.ok) << p.message;
  EXPECT_EQ(p.request.op, Op::Shutdown);
}

TEST(ServeParse, QueryFieldsRoundTrip) {
  const ParseResult p = parse_request(
      R"({"id":9,"op":"query","alg":"sssp","source":3,"nodes":[0,5],)"
      R"("variant":"sp","deadline_ms":12.5,"seed":7})");
  ASSERT_TRUE(p.ok) << p.message;
  EXPECT_EQ(p.request.alg, QueryAlg::Sssp);
  EXPECT_TRUE(p.request.has_source);
  EXPECT_EQ(p.request.source, 3U);
  ASSERT_EQ(p.request.nodes.size(), 2U);
  EXPECT_EQ(p.request.nodes[1], 5U);
  EXPECT_EQ(p.request.variant, "sp");
  EXPECT_DOUBLE_EQ(p.request.deadline_ms, 12.5);
  EXPECT_EQ(p.request.seed, 7U);
}

TEST(ServeParse, TypedErrorsForEveryMalformation) {
  // Not JSON at all.
  EXPECT_EQ(parse_request("{nope").code, ErrorCode::ParseError);
  // Valid JSON, not an object.
  EXPECT_EQ(parse_request("[1,2]").code, ErrorCode::ParseError);
  // Trailing garbage after a well-formed object.
  EXPECT_EQ(parse_request(R"({"id":1,"op":"ping"} x)").code,
            ErrorCode::ParseError);
  // Unknown discriminators.
  EXPECT_EQ(parse_request(R"({"id":1,"op":"dance"})").code,
            ErrorCode::UnknownOp);
  EXPECT_EQ(parse_request(R"({"id":1,"op":"query","alg":"apsp","source":0})").code,
            ErrorCode::UnknownAlgorithm);
  // Missing / mistyped required fields.
  EXPECT_EQ(parse_request(R"({"id":1,"op":"query","alg":"sssp"})").code,
            ErrorCode::BadRequest);
  EXPECT_EQ(parse_request(R"({"id":1,"op":"query","alg":"sssp","source":-4})").code,
            ErrorCode::BadSource);
  EXPECT_EQ(
      parse_request(
          R"({"id":1,"op":"query","alg":"sssp","source":0,"deadline_ms":-1})")
          .code,
      ErrorCode::BadRequest);
  // Renumbering transforms are rejected at parse (not servable).
  EXPECT_EQ(parse_request(R"({"id":1,"op":"transform","kind":"coalescing"})").code,
            ErrorCode::BadRequest);
}

TEST(ServeParse, ErrorFramesStillRecoverTheId) {
  const ParseResult p =
      parse_request(R"({"id":41,"op":"query","alg":"nope","source":0})");
  EXPECT_FALSE(p.ok);
  EXPECT_EQ(p.request.id, 41U);
}

TEST(ServeParse, EchoNodeCapEnforced) {
  std::string nodes = "[";
  for (std::size_t i = 0; i <= kMaxEchoNodes; ++i) {
    if (i != 0) nodes += ",";
    nodes += "0";
  }
  nodes += "]";
  const ParseResult p = parse_request(
      R"({"id":1,"op":"query","alg":"sssp","source":0,"nodes":)" + nodes + "}");
  EXPECT_EQ(p.code, ErrorCode::BadRequest);
}

TEST(ServeRender, FixedByteLayout) {
  EXPECT_EQ(render_error(3, ErrorCode::Overloaded, "full"),
            R"({"id":3,"ok":false,"error":{"code":"overloaded","message":"full"}})");
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "\"inf\"");
}

// ---- Live server --------------------------------------------------------

TEST(ServeProtocol, PingPongExactBytes) {
  Server server(small_graph());
  server.start();
  auto client = connect_client(server);
  client->send(R"({"id":11,"op":"ping"})");
  EXPECT_EQ(client->recv_or_die(), R"({"id":11,"ok":true,"pong":true})");
  server.stop();
}

TEST(ServeProtocol, SsspMatchesDijkstra) {
  const Csr graph = small_graph();
  Server server(graph);
  server.start();
  auto client = connect_client(server);
  client->send(
      R"({"id":1,"op":"query","alg":"sssp","source":0,"nodes":[0,3,4,6,7]})");
  const std::string line = client->recv_or_die();
  EXPECT_TRUE(contains(line, R"("ok":true)")) << line;
  EXPECT_TRUE(contains(line, R"("alg":"sssp")")) << line;
  EXPECT_TRUE(contains(line, R"("variant":"base","version":1)")) << line;

  const std::vector<Weight> golden = sssp_dijkstra(graph, 0);
  NodeId reachable = 0;
  for (const Weight d : golden) {
    if (d < kInfWeight) ++reachable;
  }
  EXPECT_TRUE(contains(line, "\"reached\":" + std::to_string(reachable)))
      << line;

  // Echo values: serve accumulates in double, the host golden in float —
  // compare numerically, not byte-wise.
  const std::size_t values_at = line.find("\"values\":[");
  ASSERT_NE(values_at, std::string::npos);
  const std::string values =
      line.substr(values_at + 10, line.find(']', values_at) - values_at - 10);
  std::vector<double> got;
  std::size_t pos = 0;
  while (pos < values.size()) {
    std::size_t comma = values.find(',', pos);
    if (comma == std::string::npos) comma = values.size();
    std::string item = values.substr(pos, comma - pos);
    got.push_back(item == "\"inf\""
                      ? std::numeric_limits<double>::infinity()
                      : std::stod(item));
    pos = comma + 1;
  }
  const NodeId echo[] = {0, 3, 4, 6, 7};
  ASSERT_EQ(got.size(), std::size(echo));
  for (std::size_t i = 0; i < std::size(echo); ++i) {
    const Weight want = golden[echo[i]];
    if (want >= kInfWeight) {
      EXPECT_TRUE(std::isinf(got[i])) << "node " << echo[i];
    } else {
      EXPECT_NEAR(got[i], static_cast<double>(want), 1e-6) << "node " << echo[i];
    }
  }
  server.stop();
}

TEST(ServeProtocol, BfsLevelsMatchHostBfs) {
  const Csr graph = small_graph();
  Server server(graph);
  server.start();
  auto client = connect_client(server);
  client->send(
      R"({"id":2,"op":"query","alg":"bfs","source":0,"nodes":[0,1,3,5,7]})");
  const std::string line = client->recv_or_die();
  EXPECT_TRUE(contains(line, R"("ok":true)")) << line;

  // BFS levels are small integers, which %.17g renders exactly; the
  // isolated vertex 7 renders as "inf".
  const std::vector<NodeId> levels = parallel_bfs(graph, 0);
  std::string want = "\"values\":[";
  const NodeId echo[] = {0, 1, 3, 5, 7};
  for (std::size_t i = 0; i < std::size(echo); ++i) {
    if (i != 0) want += ",";
    want += levels[echo[i]] == kInvalidNode
                ? "\"inf\""
                : std::to_string(levels[echo[i]]);
  }
  want += "]";
  EXPECT_TRUE(contains(line, want)) << line << "\nwant " << want;
  server.stop();
}

TEST(ServeProtocol, PagerankDigestMatchesRunner) {
  const Csr graph = small_graph();
  Server server(graph);
  server.start();
  auto client = connect_client(server);
  client->send(R"({"id":3,"op":"query","alg":"pagerank","nodes":[0]})");
  const std::string line = client->recv_or_die();
  EXPECT_TRUE(contains(line, R"("ok":true)")) << line;
  EXPECT_TRUE(contains(line, R"("alg":"pagerank")")) << line;

  core::RunConfig rc;
  const core::RunOutput out = core::run_algorithm(core::Algorithm::PR, graph, rc);
  const std::string digest =
      hex64(fnv1a64(out.attr.data(), out.attr.size() * sizeof(double)));
  EXPECT_TRUE(contains(line, "\"digest\":\"" + digest + "\"")) << line;
  server.stop();
}

TEST(ServeProtocol, BcWithExplicitSources) {
  Server server(small_graph());
  server.start();
  auto client = connect_client(server);
  client->send(R"({"id":4,"op":"query","alg":"bc","sources":[0,1],"nodes":[2]})");
  const std::string line = client->recv_or_die();
  EXPECT_TRUE(contains(line, R"("ok":true)")) << line;
  EXPECT_TRUE(contains(line, R"("alg":"bc")")) << line;
  server.stop();
}

TEST(ServeProtocol, RepeatedQueryIsByteIdentical) {
  Server server(small_graph());
  server.start();
  auto client = connect_client(server);
  const std::string req =
      R"({"id":5,"op":"query","alg":"sssp","source":1,"nodes":[3,6]})";
  client->send(req);
  const std::string first = client->recv_or_die();
  client->send(req);
  EXPECT_EQ(client->recv_or_die(), first);
  server.stop();
}

TEST(ServeProtocol, StatsReportsActivity) {
  Server server(small_graph());
  server.start();
  auto client = connect_client(server);
  client->send(R"({"id":1,"op":"query","alg":"bfs","source":0})");
  client->recv_or_die();
  client->send(R"({"id":2,"op":"stats"})");
  const std::string line = client->recv_or_die();
  EXPECT_TRUE(contains(line, R"("op":"stats")")) << line;
  EXPECT_TRUE(contains(line, R"("queries_ok":1)")) << line;
  EXPECT_TRUE(contains(line, R"("units":1)")) << line;
  EXPECT_TRUE(contains(line, R"("snapshots":1)")) << line;
  server.stop();
}

// ---- Transforms + copy-on-write snapshots -------------------------------

TEST(ServeTransform, PublishesNewVariant) {
  Server server(small_graph());
  server.start();
  auto client = connect_client(server);
  client->send(
      R"({"id":1,"op":"transform","kind":"sparsify","name":"sp","drop_fraction":0.3})");
  const std::string pub = client->recv_or_die();
  EXPECT_TRUE(contains(pub, R"("ok":true)")) << pub;
  EXPECT_TRUE(contains(pub, R"("variant":"sp","version":2)")) << pub;

  client->send(R"({"id":2,"op":"query","alg":"bfs","source":0,"variant":"sp"})");
  const std::string q = client->recv_or_die();
  EXPECT_TRUE(contains(q, R"("variant":"sp","version":2)")) << q;

  // The base variant is untouched.
  client->send(R"({"id":3,"op":"query","alg":"bfs","source":0})");
  EXPECT_TRUE(contains(client->recv_or_die(), R"("variant":"base","version":1)"));
  server.stop();
}

TEST(ServeTransform, DivergenceVariantServesWithWarpOrder) {
  Server server(small_graph());
  server.start();
  auto client = connect_client(server);
  client->send(
      R"({"id":1,"op":"transform","kind":"divergence","name":"div","threshold":0.5})");
  EXPECT_TRUE(contains(client->recv_or_die(), R"("ok":true)"));
  // Divergence preserves slot ids, so the SSSP fixpoint — and its digest
  // over slot order — must be unchanged on the transformed variant.
  client->send(R"({"id":2,"op":"query","alg":"sssp","source":0,"variant":"div"})");
  const std::string on_div = client->recv_or_die();
  client->send(R"({"id":3,"op":"query","alg":"sssp","source":0})");
  const std::string on_base = client->recv_or_die();
  const auto digest_of = [](const std::string& line) {
    const std::size_t at = line.find("\"digest\":");
    return line.substr(at, line.find(',', at) - at);
  };
  EXPECT_EQ(digest_of(on_div), digest_of(on_base));
  server.stop();
}

// Satellite: snapshot isolation. Queries admitted before a transform run
// against the pre-transform snapshot (same bytes as before), and the
// superseded graph is freed once its last reader drains.
TEST(ServeSnapshot, InFlightQueriesSeeOldSnapshotThenItIsFreed) {
  Server server(small_graph());
  server.start();
  auto client = connect_client(server);

  const std::string req =
      R"({"id":1,"op":"query","alg":"sssp","source":0,"nodes":[3,6]})";
  client->send(req);
  const std::string golden = client->recv_or_die();  // against base v1

  std::weak_ptr<const GraphSnapshot> old_snap;
  {
    std::shared_ptr<const GraphSnapshot> pin = server.snapshot_for_test("base");
    ASSERT_NE(pin, nullptr);
    EXPECT_EQ(pin->version, 1U);
    old_snap = pin;
  }

  // Park the dispatcher, admit queries (snapshot resolved NOW), then
  // overwrite "base" while they sit in the queue.
  server.hold_dispatch_for_test(true);
  client->send(req);
  client->send(
      R"({"id":2,"op":"transform","kind":"sparsify","name":"base","drop_fraction":0.9,"seed":1})");
  const std::string pub = client->recv_or_die();  // transforms run inline
  EXPECT_TRUE(contains(pub, R"("variant":"base","version":2)")) << pub;
  EXPECT_FALSE(old_snap.expired()) << "queued query must pin the old snapshot";

  server.hold_dispatch_for_test(false);
  EXPECT_EQ(client->recv_or_die(), golden)
      << "admitted-before-transform query must answer from the old snapshot";

  // The old snapshot's last reader has drained; the wave vector is
  // destroyed asynchronously after the responses are written, so poll.
  bool freed = false;
  for (int i = 0; i < 200 && !freed; ++i) {
    freed = old_snap.expired();
    if (!freed) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(freed) << "superseded snapshot must be freed after drain";

  // New queries run against the new snapshot.
  client->send(req);
  const std::string after = client->recv_or_die();
  EXPECT_TRUE(contains(after, R"("version":2)")) << after;
  server.stop();
}

}  // namespace
}  // namespace graffix::serve
