// Baseline-strategy tests: work decomposition per strategy, Tigr's
// virtual splitting bound, edge-load modes, and auxiliary cost hooks.
#include <gtest/gtest.h>

#include "baselines/strategy.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"

namespace graffix::baselines {
namespace {

Csr hub_graph() {
  // One hub with 100 edges plus a few small nodes.
  GraphBuilder b(128);
  for (NodeId j = 0; j < 100; ++j) b.add_edge(0, 1 + (j % 100));
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  return b.build();
}

TEST(Baselines, NamesAndFactory) {
  for (BaselineId id : all_baselines()) {
    const auto strategy = make_strategy(id);
    ASSERT_NE(strategy, nullptr);
    EXPECT_EQ(strategy->id(), id);
    EXPECT_NE(std::string(strategy->name()), "");
  }
  EXPECT_STREQ(baseline_name(BaselineId::TopologyDriven), "Baseline-I");
  EXPECT_STREQ(baseline_name(BaselineId::TigrLike), "Tigr");
  EXPECT_STREQ(baseline_name(BaselineId::GunrockLike), "Gunrock");
}

TEST(Baselines, TopologyDrivenIsNotDataDriven) {
  EXPECT_FALSE(make_strategy(BaselineId::TopologyDriven)->data_driven());
  EXPECT_TRUE(make_strategy(BaselineId::TigrLike)->data_driven());
  EXPECT_TRUE(make_strategy(BaselineId::GunrockLike)->data_driven());
}

TEST(Baselines, TopologyDrivenOneItemPerVertex) {
  Csr g = hub_graph();
  const auto strategy = make_strategy(BaselineId::TopologyDriven);
  std::vector<NodeId> active{0, 1, 2};
  std::vector<sim::WorkItem> items;
  strategy->make_work(g, active, items);
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].src, 0u);
  EXPECT_EQ(items[0].edge_count, 100u);
}

TEST(Baselines, TigrSplitsHighDegreeVertices) {
  Csr g = hub_graph();
  const auto strategy = make_strategy(BaselineId::TigrLike);
  std::vector<NodeId> active{0};
  std::vector<sim::WorkItem> items;
  strategy->make_work(g, active, items);
  // 100 edges with bound 32 -> 4 virtual nodes (32+32+32+4).
  ASSERT_EQ(items.size(), 4u);
  NodeId total = 0;
  for (const auto& item : items) {
    EXPECT_EQ(item.src, 0u);
    EXPECT_LE(item.edge_count, 32u);
    total += item.edge_count;
  }
  EXPECT_EQ(total, 100u);
  // Ranges are contiguous and non-overlapping.
  for (std::size_t i = 1; i < items.size(); ++i) {
    EXPECT_EQ(items[i].edge_begin,
              items[i - 1].edge_begin + items[i - 1].edge_count);
  }
}

TEST(Baselines, TigrKeepsZeroDegreeVertices) {
  GraphBuilder b(2);
  Csr g = b.build();
  const auto strategy = make_strategy(BaselineId::TigrLike);
  std::vector<NodeId> active{0, 1};
  std::vector<sim::WorkItem> items;
  strategy->make_work(g, active, items);
  EXPECT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].edge_count, 0u);
}

TEST(Baselines, EdgeLoadModes) {
  EXPECT_EQ(make_strategy(BaselineId::TopologyDriven)->edge_load_mode(),
            sim::EdgeLoadMode::Csr);
  EXPECT_EQ(make_strategy(BaselineId::TigrLike)->edge_load_mode(),
            sim::EdgeLoadMode::IdealWarpPacked);
  EXPECT_EQ(make_strategy(BaselineId::GunrockLike)->edge_load_mode(),
            sim::EdgeLoadMode::Csr);
}

TEST(Baselines, GunrockChargesFilter) {
  const auto gunrock = make_strategy(BaselineId::GunrockLike);
  const auto topo = make_strategy(BaselineId::TopologyDriven);
  EXPECT_GT(gunrock->aux_items_per_sweep(1000), 0u);
  EXPECT_EQ(topo->aux_items_per_sweep(1000), 0u);
}

TEST(Baselines, AllBaselinesListsThree) {
  EXPECT_EQ(all_baselines().size(), 3u);
}

}  // namespace
}  // namespace graffix::baselines
