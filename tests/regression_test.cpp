// Reproduction regression bands: the headline geomeans of the paper's
// tables, asserted with generous tolerances so a code change that breaks
// a technique's mechanism (not just shifts a constant) fails CI.
//
// Bands are centered on EXPERIMENTS.md's measured values at scale 10
// (a notch below the bench default to keep the suite fast); they are
// deliberately loose — the goal is "the technique still works", not
// bit-stability.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace graffix::core {
namespace {

ExperimentConfig config_for(Technique technique,
                            baselines::BaselineId baseline) {
  ExperimentConfig config;
  config.scale = 10;
  config.technique = technique;
  config.baseline = baseline;
  config.bc_sources = 3;
  config.algorithms = {Algorithm::SSSP, Algorithm::PR, Algorithm::BC};
  return config;
}

struct Band {
  Technique technique;
  baselines::BaselineId baseline;
  double min_speedup;
  double max_speedup;
  double max_inaccuracy_pct;
};

class ReproductionBand : public ::testing::TestWithParam<Band> {};

TEST_P(ReproductionBand, GeomeanWithinBand) {
  const Band band = GetParam();
  const auto rows = run_table(config_for(band.technique, band.baseline));
  const auto summary = summarize(rows);
  EXPECT_GE(summary.speedup, band.min_speedup)
      << technique_name(band.technique) << " vs "
      << baselines::baseline_name(band.baseline);
  EXPECT_LE(summary.speedup, band.max_speedup);
  EXPECT_LE(summary.inaccuracy_pct, band.max_inaccuracy_pct);
  // Per-cell sanity: nothing should collapse below half speed.
  for (const auto& row : rows) {
    EXPECT_GT(row.speedup, 0.5)
        << row.graph << " " << algorithm_name(row.algorithm);
    EXPECT_LT(row.inaccuracy_pct, 60.0)
        << row.graph << " " << algorithm_name(row.algorithm);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperTables, ReproductionBand,
    ::testing::Values(
        // Table 6/7/8 class (vs Baseline-I). Paper: 1.16 / 1.20 / 1.07.
        Band{Technique::Coalescing, baselines::BaselineId::TopologyDriven,
             1.00, 1.60, 12.0},
        // Latency needs cluster coverage to amortize staging; at this
        // test's scale 10 it hovers near break-even (1.1+ from scale 11).
        Band{Technique::Latency, baselines::BaselineId::TopologyDriven,
             0.90, 1.80, 15.0},
        Band{Technique::Divergence, baselines::BaselineId::TopologyDriven,
             0.95, 1.40, 12.0},
        // Tables 9-14 class (vs data-driven baselines). Paper: ~1.0-1.2.
        Band{Technique::Coalescing, baselines::BaselineId::TigrLike, 0.95,
             1.60, 12.0},
        Band{Technique::Divergence, baselines::BaselineId::GunrockLike, 0.90,
             1.40, 12.0},
        // Extension: the combined stack must stay a net win.
        Band{Technique::Combined, baselines::BaselineId::TopologyDriven,
             1.00, 2.00, 20.0}),
    [](const auto& info) {
      return std::string(technique_name(info.param.technique)) + "_vs_" +
             (info.param.baseline == baselines::BaselineId::TopologyDriven
                  ? "B1"
                  : info.param.baseline == baselines::BaselineId::TigrLike
                        ? "Tigr"
                        : "Gunrock");
    });

TEST(ReproductionShape, ExactBaselineOrderingHolds) {
  // Tables 2-4 shape: Tigr fastest, Baseline-I slowest, for SSSP.
  ExperimentConfig config = config_for(Technique::None,
                                       baselines::BaselineId::TopologyDriven);
  config.algorithms = {Algorithm::SSSP};
  double seconds[3] = {};
  int index = 0;
  for (auto baseline : baselines::all_baselines()) {
    config.baseline = baseline;
    const auto rows = run_exact_table(config);
    double total = 0;
    for (const auto& row : rows) total += row.exact_seconds;
    seconds[index++] = total;
  }
  const double b1 = seconds[0], tigr = seconds[1], gunrock = seconds[2];
  EXPECT_LT(tigr, b1);
  EXPECT_LT(gunrock, b1);
  EXPECT_LT(tigr, gunrock * 1.5);  // Tigr at least competitive with Gunrock
}

TEST(ReproductionShape, RoadPunishesTopologyDrivenSssp) {
  ExperimentConfig config = config_for(Technique::None,
                                       baselines::BaselineId::TopologyDriven);
  config.algorithms = {Algorithm::SSSP};
  const auto b1 = run_exact_table(config);
  config.baseline = baselines::BaselineId::GunrockLike;
  const auto gunrock = run_exact_table(config);
  // USA-road row: paper gap 152s vs 25s ~ 6x; require >= 2x here.
  double b1_road = 0, gunrock_road = 0;
  for (const auto& row : b1) {
    if (row.graph == "USA-road") b1_road = row.exact_seconds;
  }
  for (const auto& row : gunrock) {
    if (row.graph == "USA-road") gunrock_road = row.exact_seconds;
  }
  EXPECT_GT(b1_road / gunrock_road, 2.0);
}

}  // namespace
}  // namespace graffix::core
