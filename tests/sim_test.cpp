// SIMT engine tests: the substitution substrate's core contracts —
// transaction counting for known access patterns, divergence accounting,
// shared-memory residency, edge-load modes, atomic conflicts, and cost-
// model monotonicity.
#include <gtest/gtest.h>

#include <numeric>

#include "graph/builder.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace graffix::sim {
namespace {

/// n sources, each with one edge to a chosen destination.
Csr single_edge_graph(NodeId n, const std::vector<NodeId>& dsts) {
  GraphBuilder b(n);
  for (NodeId u = 0; u < dsts.size(); ++u) b.add_edge(u, dsts[u]);
  return b.build();
}

SimConfig test_config() {
  SimConfig cfg;
  cfg.warp_size = 32;
  cfg.transaction_bytes = 128;  // 32 x 4-byte attrs
  return cfg;
}

TEST(Engine, PerfectlyCoalescedGatherIsOneTransaction) {
  // 32 sources; source i points at node 32 + i: attribute gather touches
  // one contiguous 128-byte segment.
  std::vector<NodeId> dsts(32);
  std::iota(dsts.begin(), dsts.end(), NodeId{32});
  Csr g = single_edge_graph(64, dsts);
  Engine engine(g, test_config());
  KernelStats stats;
  auto items = items_all_vertices(g);
  items.resize(32);  // only the 32 sources
  engine.sweep(items, {}, [](NodeId, NodeId, Weight) { return false; }, stats);
  EXPECT_EQ(stats.warp_steps, 1u);
  EXPECT_EQ(stats.attr_transactions, 1u);
  EXPECT_EQ(stats.attr_ideal_transactions, 1u);
  EXPECT_DOUBLE_EQ(stats.coalescing_efficiency(), 1.0);
}

TEST(Engine, FullyScatteredGatherIsWarpSizeTransactions) {
  // Destinations 128 apart in id space -> each in its own segment.
  std::vector<NodeId> dsts(32);
  for (NodeId i = 0; i < 32; ++i) dsts[i] = 64 + i * 32;  // 32 ids * 4B = 128B
  Csr g = single_edge_graph(64 + 32 * 32, dsts);
  Engine engine(g, test_config());
  KernelStats stats;
  auto items = items_all_vertices(g);
  items.resize(32);
  engine.sweep(items, {}, [](NodeId, NodeId, Weight) { return false; }, stats);
  EXPECT_EQ(stats.attr_transactions, 32u);
  EXPECT_EQ(stats.attr_ideal_transactions, 1u);
  EXPECT_NEAR(stats.coalescing_efficiency(), 1.0 / 32.0, 1e-12);
}

TEST(Engine, UniformDegreesHaveFullSimdEfficiency) {
  GraphBuilder b(64);
  for (NodeId u = 0; u < 32; ++u) {
    b.add_edge(u, 32 + u);
    b.add_edge(u, 33 + u >= 64 ? 32 : 33 + u);
  }
  Csr g = b.build();
  Engine engine(g, test_config());
  KernelStats stats;
  auto items = items_all_vertices(g);
  items.resize(32);
  engine.sweep(items, {}, [](NodeId, NodeId, Weight) { return false; }, stats);
  EXPECT_DOUBLE_EQ(stats.simd_efficiency(), 1.0);
  EXPECT_EQ(stats.warp_steps, 2u);
}

TEST(Engine, SkewedDegreesWasteLanes) {
  // One hub with 32 edges among 31 degree-1 nodes: steps = 32, useful
  // lanes = 32 + 31.
  GraphBuilder b(128);
  for (NodeId j = 0; j < 32; ++j) b.add_edge(0, 64 + j);
  for (NodeId u = 1; u < 32; ++u) b.add_edge(u, 96 + u);
  Csr g = b.build();
  Engine engine(g, test_config());
  KernelStats stats;
  auto items = items_all_vertices(g);
  items.resize(32);
  engine.sweep(items, {}, [](NodeId, NodeId, Weight) { return false; }, stats);
  EXPECT_EQ(stats.warp_steps, 32u);
  EXPECT_EQ(stats.active_lanes, 32u + 31u);
  EXPECT_LT(stats.simd_efficiency(), 0.1);
}

TEST(Engine, IdealEdgeModeChargesOneEdgeTransactionPerStep) {
  std::vector<NodeId> dsts(32);
  for (NodeId i = 0; i < 32; ++i) dsts[i] = 32 + i;
  Csr g = single_edge_graph(64, dsts);
  Engine engine(g, test_config());
  auto items = items_all_vertices(g);
  items.resize(32);

  KernelStats csr_stats;
  SweepOptions csr_opts;
  csr_opts.edge_mode = EdgeLoadMode::Csr;
  engine.sweep(items, csr_opts, [](NodeId, NodeId, Weight) { return false; },
               csr_stats);

  KernelStats ideal_stats;
  SweepOptions ideal_opts;
  ideal_opts.edge_mode = EdgeLoadMode::IdealWarpPacked;
  engine.sweep(items, ideal_opts, [](NodeId, NodeId, Weight) { return false; },
               ideal_stats);

  EXPECT_EQ(ideal_stats.edge_transactions, 1u);
  EXPECT_GE(csr_stats.edge_transactions, 1u);
}

TEST(Engine, SharedResidencySkipsGlobalTransactions) {
  // All sources and destinations in one resident cluster.
  std::vector<NodeId> dsts(32);
  for (NodeId i = 0; i < 32; ++i) dsts[i] = (i + 1) % 32;
  Csr g = single_edge_graph(32, dsts);
  Engine engine(g, test_config());
  auto items = items_all_vertices(g);

  std::vector<NodeId> resident(32, 0);  // every slot in cluster 0
  SweepOptions opts;
  opts.resident = resident;
  KernelStats stats;
  engine.sweep(items, opts, [](NodeId, NodeId, Weight) { return false; },
               stats);
  EXPECT_EQ(stats.attr_transactions, 0u);
  EXPECT_EQ(stats.shared_accesses, 32u);
  EXPECT_DOUBLE_EQ(stats.shared_fraction(), 1.0);
}

TEST(Engine, SharedAttrSpaceCountsAllAsShared) {
  std::vector<NodeId> dsts{1, 2, 3};
  Csr g = single_edge_graph(8, dsts);
  Engine engine(g, test_config());
  auto items = items_all_vertices(g);
  SweepOptions opts;
  opts.attr_space = AttrSpace::Shared;
  KernelStats stats;
  engine.sweep(items, opts, [](NodeId, NodeId, Weight) { return false; },
               stats);
  EXPECT_EQ(stats.attr_transactions, 0u);
  EXPECT_EQ(stats.shared_accesses, 3u);
}

TEST(Engine, CommitsAndConflictsAreCounted) {
  // Two sources writing to the same destination in the same step.
  std::vector<NodeId> dsts{5, 5};
  Csr g = single_edge_graph(8, dsts);
  Engine engine(g, test_config());
  auto items = items_all_vertices(g);
  KernelStats stats;
  engine.sweep(items, {}, [](NodeId, NodeId, Weight) { return true; }, stats);
  EXPECT_EQ(stats.atomic_commits, 2u);
  EXPECT_EQ(stats.atomic_conflicts, 1u);
}

TEST(Engine, FunctorSeesEdgeWeights) {
  GraphBuilder b(4);
  b.set_weighted(true);
  b.add_edge(0, 1, 7.5f);
  Csr g = b.build();
  Engine engine(g, test_config());
  auto items = items_all_vertices(g);
  SweepOptions opts;
  opts.weighted = true;
  Weight seen = 0;
  KernelStats stats;
  engine.sweep(
      items, opts,
      [&](NodeId u, NodeId v, Weight w) {
        EXPECT_EQ(u, 0u);
        EXPECT_EQ(v, 1u);
        seen = w;
        return false;
      },
      stats);
  EXPECT_FLOAT_EQ(seen, 7.5f);
}

TEST(Engine, WeightedDoublesEdgeTraffic) {
  GraphBuilder b(4);
  b.set_weighted(true);
  b.add_edge(0, 1, 1.0f);
  Csr g = b.build();
  Engine engine(g, test_config());
  auto items = items_all_vertices(g);
  KernelStats unweighted, weighted;
  SweepOptions wopts;
  wopts.weighted = true;
  engine.sweep(items, {}, [](NodeId, NodeId, Weight) { return false; },
               unweighted);
  engine.sweep(items, wopts, [](NodeId, NodeId, Weight) { return false; },
               weighted);
  EXPECT_EQ(weighted.edge_transactions, 2 * unweighted.edge_transactions);
}

TEST(Engine, ChargeUniformKernelIsCoalesced) {
  Csr g = single_edge_graph(8, {});
  Engine engine(g, test_config());
  KernelStats stats;
  engine.charge_uniform_kernel(64, 1.0, stats);
  EXPECT_EQ(stats.sweeps, 1u);
  EXPECT_EQ(stats.aux_ops, 64u);
  EXPECT_EQ(stats.attr_transactions, stats.attr_ideal_transactions);
}

TEST(Engine, ChargeUniformKernelRoundsUpPartialTransactions) {
  // Regression: +0.5 rounding charged ZERO transactions to any kernel
  // touching fewer than transaction_bytes/2 bytes. A kernel that touches
  // any bytes owes at least one transaction (ceil semantics).
  Csr g = single_edge_graph(8, {});
  Engine engine(g, test_config());
  KernelStats one_item;
  engine.charge_uniform_kernel(1, 1.0, one_item);  // 4 B of a 128 B segment
  EXPECT_EQ(one_item.attr_transactions, 1u);

  KernelStats partial;
  engine.charge_uniform_kernel(33, 1.0, partial);  // 132 B -> 2 segments
  EXPECT_EQ(partial.attr_transactions, 2u);
}

TEST(Engine, NoLaunchChargeWhenDisabled) {
  Csr g = single_edge_graph(8, {0});
  Engine engine(g, test_config());
  auto items = items_all_vertices(g);
  SweepOptions opts;
  opts.charge_launch = false;
  KernelStats stats;
  engine.sweep(items, opts, [](NodeId, NodeId, Weight) { return false; },
               stats);
  EXPECT_EQ(stats.sweeps, 0u);
}

TEST(Engine, GatedLanesAreIdleButOccupySlots) {
  // Two sources with one edge each; gate excludes source 1.
  std::vector<NodeId> dsts{4, 5};
  Csr g = single_edge_graph(8, dsts);
  Engine engine(g, test_config());
  auto items = items_all_vertices(g);
  items.resize(2);
  KernelStats stats;
  engine.sweep_gated(
      items, {}, [](NodeId u) { return u == 0; },
      [](NodeId u, NodeId, Weight) {
        EXPECT_EQ(u, 0u);  // gated-out lane must never reach the functor
        return false;
      },
      stats);
  EXPECT_EQ(stats.active_lanes, 1u);
  EXPECT_EQ(stats.warp_steps, 1u);      // the gated-in lane still runs
  EXPECT_EQ(stats.lane_slots, 32u);     // idle lanes occupy the warp
  EXPECT_EQ(stats.attr_transactions, 1u);
}

TEST(Engine, AllLanesGatedOutSkipsSteps) {
  std::vector<NodeId> dsts{4, 5};
  Csr g = single_edge_graph(8, dsts);
  Engine engine(g, test_config());
  auto items = items_all_vertices(g);
  items.resize(2);
  KernelStats stats;
  engine.sweep_gated(
      items, {}, [](NodeId) { return false; },
      [](NodeId, NodeId, Weight) { return false; }, stats);
  EXPECT_EQ(stats.warp_steps, 0u);
  EXPECT_EQ(stats.attr_transactions, 0u);
}

TEST(Engine, EdgeStreamHitsCacheWithinSector) {
  // One lane with 16 consecutive edges: the adjacency stream spans
  // 16 x 4B = 64B = 2 sectors of 32B, so only 2 edge transactions.
  GraphBuilder b(32);
  for (NodeId j = 0; j < 16; ++j) b.add_edge(0, 8 + j);
  Csr g = b.build();
  SimConfig cfg = test_config();
  cfg.transaction_bytes = 32;
  Engine engine(g, cfg);
  auto items = items_all_vertices(g);
  items.resize(1);
  KernelStats stats;
  engine.sweep(items, {}, [](NodeId, NodeId, Weight) { return false; }, stats);
  EXPECT_EQ(stats.edge_transactions, 2u);
  EXPECT_EQ(stats.warp_steps, 16u);
}

TEST(Engine, EdgesResidentSuppressesEdgeTraffic) {
  GraphBuilder b(8);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  Csr g = b.build();
  Engine engine(g, test_config());
  auto items = items_all_vertices(g);
  SweepOptions opts;
  opts.edges_resident = true;
  KernelStats stats;
  engine.sweep(items, opts, [](NodeId, NodeId, Weight) { return false; },
               stats);
  EXPECT_EQ(stats.edge_transactions, 0u);
  EXPECT_GT(stats.shared_accesses, 0u);
}

TEST(Engine, BankConflictsOnStridedSharedAccess) {
  // 4 sources whose destinations are 32 apart: all four hit bank 0 with
  // distinct words -> 3 serialized accesses.
  std::vector<NodeId> dsts{32, 64, 96, 128};
  GraphBuilder b(256);
  for (NodeId u = 0; u < 4; ++u) b.add_edge(u, dsts[u]);
  Csr g = b.build();
  Engine engine(g, test_config());
  auto items = items_all_vertices(g);
  items.resize(4);
  SweepOptions opts;
  opts.attr_space = AttrSpace::Shared;
  KernelStats stats;
  engine.sweep(items, opts, [](NodeId, NodeId, Weight) { return false; },
               stats);
  EXPECT_EQ(stats.shared_accesses, 4u);
  EXPECT_EQ(stats.bank_conflicts, 3u);
}

TEST(Engine, SameWordSharedAccessBroadcastsFree) {
  // All lanes read the same destination word: broadcast, no conflicts.
  std::vector<NodeId> dsts(8, 40);
  GraphBuilder b(64);
  for (NodeId u = 0; u < 8; ++u) b.add_edge(u, 40);
  Csr g = b.build();
  Engine engine(g, test_config());
  auto items = items_all_vertices(g);
  items.resize(8);
  SweepOptions opts;
  opts.attr_space = AttrSpace::Shared;
  KernelStats stats;
  engine.sweep(items, opts, [](NodeId, NodeId, Weight) { return false; },
               stats);
  EXPECT_EQ(stats.bank_conflicts, 0u);
}

TEST(Engine, DistinctBanksConflictFree) {
  // Destinations 33..40: consecutive words land in distinct banks.
  GraphBuilder b(64);
  for (NodeId u = 0; u < 8; ++u) b.add_edge(u, 33 + u);
  Csr g = b.build();
  Engine engine(g, test_config());
  auto items = items_all_vertices(g);
  items.resize(8);
  SweepOptions opts;
  opts.attr_space = AttrSpace::Shared;
  KernelStats stats;
  engine.sweep(items, opts, [](NodeId, NodeId, Weight) { return false; },
               stats);
  EXPECT_EQ(stats.bank_conflicts, 0u);
}

TEST(SweepScratch, BankResizeInvalidatesSegmentStamps) {
  // Regression: resizing one epoch-stamped table rewinds `epoch` to 0,
  // so the OTHER table's stale stamps must be cleared too — otherwise a
  // stamp left at e.g. 3 reads as valid again the moment the rewound
  // epoch climbs back to 3, and insert_attr_seg falsely reports "already
  // present" (undercounting attribute transactions).
  SweepScratch sc;
  sc.ensure(32, 32);
  sc.epoch = 3;  // a few warp steps into a sweep
  EXPECT_EQ(sc.insert_attr_seg(42), 1u);
  EXPECT_EQ(sc.insert_attr_seg(42), 0u);

  sc.ensure(32, 64);  // bank table resizes; segment table keeps its size
  EXPECT_EQ(sc.epoch, 0u);
  // A fresh sweep reaches epoch 3 again: segment 42 must be new again.
  sc.epoch = 3;
  EXPECT_EQ(sc.insert_attr_seg(42), 1u);
}

TEST(SweepScratch, SegmentResizeInvalidatesBankStamps) {
  // Mirror image: a segment-table resize (warp size change) rewinds the
  // epoch, so bank stamps must be cleared or a stale stamp would read as
  // a same-step bank hit (overcounting conflicts).
  SweepScratch sc;
  sc.ensure(32, 32);
  sc.epoch = 5;
  sc.bank_epoch[7] = 5;  // lane touched bank 7 this step
  sc.bank_word[7] = 99;

  sc.ensure(64, 32);  // segment table resizes; bank table keeps its size
  EXPECT_EQ(sc.epoch, 0u);
  for (const std::uint64_t stamp : sc.bank_epoch) EXPECT_EQ(stamp, 0u);
}

TEST(CostModel, BankConflictsCostCycles) {
  const SimConfig cfg = test_config();
  CostModel model(cfg);
  KernelStats clean, conflicted;
  clean.shared_accesses = conflicted.shared_accesses = 100;
  conflicted.bank_conflicts = 50;
  EXPECT_GT(model.cycles(conflicted, 64).total_cycles(),
            model.cycles(clean, 64).total_cycles());
}

TEST(CostModel, FewerTransactionsMeansFewerCycles) {
  const SimConfig cfg = test_config();
  CostModel model(cfg);
  KernelStats many, few;
  many.warp_steps = few.warp_steps = 100;
  many.attr_transactions = 1000;
  few.attr_transactions = 100;
  EXPECT_LT(model.cycles(few, 64).total_cycles(),
            model.cycles(many, 64).total_cycles());
}

TEST(CostModel, SharedAccessesAreCheaperThanGlobal) {
  const SimConfig cfg = test_config();
  CostModel model(cfg);
  KernelStats global_run, shared_run;
  global_run.attr_transactions = 1000;
  shared_run.shared_accesses = 1000;
  EXPECT_LT(model.cycles(shared_run, 64).total_cycles(),
            model.cycles(global_run, 64).total_cycles());
}

TEST(CostModel, HidingFactorSaturates) {
  const SimConfig cfg = test_config();
  CostModel model(cfg);
  EXPECT_DOUBLE_EQ(model.hiding_factor(1), 1.0);
  EXPECT_DOUBLE_EQ(model.hiding_factor(1e9), cfg.max_overlap);
  EXPECT_GT(model.hiding_factor(2.0 * cfg.warps_to_hide),
            model.hiding_factor(cfg.warps_to_hide));
}

TEST(CostModel, SecondsArePositiveAndScaleWithWork) {
  const SimConfig cfg = test_config();
  CostModel model(cfg);
  KernelStats small, large;
  small.warp_steps = 10;
  small.attr_transactions = 10;
  large.warp_steps = 1000;
  large.attr_transactions = 1000;
  EXPECT_GT(model.seconds(small, 32), 0.0);
  EXPECT_GT(model.seconds(large, 32), model.seconds(small, 32));
}

/// Invariants that must hold for any warp width.
class EngineWarpWidth : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(EngineWarpWidth, LaneAccountingConsistent) {
  const std::uint32_t ws = GetParam();
  GraphBuilder b(256);
  Pcg32 rng(11);
  for (NodeId u = 0; u < 128; ++u) {
    const NodeId deg = rng.next_bounded(6);
    for (NodeId j = 0; j < deg; ++j) {
      b.add_edge(u, 128 + rng.next_bounded(128));
    }
  }
  Csr g = b.build();
  SimConfig cfg = test_config();
  cfg.warp_size = ws;
  Engine engine(g, cfg);
  auto items = items_all_vertices(g);
  KernelStats stats;
  std::uint64_t edges_seen = 0;
  engine.sweep(items, {},
               [&](NodeId, NodeId, Weight) {
                 ++edges_seen;
                 return false;
               },
               stats);
  // Every edge visited exactly once regardless of warp width.
  EXPECT_EQ(edges_seen, g.num_edges());
  EXPECT_EQ(stats.active_lanes, g.num_edges());
  // Lane slots are warp_size-granular and cover all active lanes.
  EXPECT_EQ(stats.lane_slots % ws, 0u);
  EXPECT_GE(stats.lane_slots, stats.active_lanes);
  // Transactions bounded by active lanes (each lane adds at most one
  // attr segment and one edge segment per step).
  EXPECT_LE(stats.attr_transactions, stats.active_lanes);
  EXPECT_LE(stats.edge_transactions, stats.active_lanes);
}

TEST_P(EngineWarpWidth, NarrowWarpsNeverLessEfficient) {
  // Skew hurts wide warps more: SIMD efficiency with warp width 4 must
  // be at least that of width 32 on a skewed degree layout.
  const std::uint32_t ws = GetParam();
  GraphBuilder b(512);
  for (NodeId j = 0; j < 64; ++j) b.add_edge(0, 64 + j);
  for (NodeId u = 1; u < 32; ++u) b.add_edge(u, 200 + u);
  Csr g = b.build();

  auto efficiency = [&](std::uint32_t width) {
    SimConfig cfg = test_config();
    cfg.warp_size = width;
    Engine engine(g, cfg);
    auto items = items_all_vertices(g);
    items.resize(32);
    KernelStats stats;
    engine.sweep(items, {}, [](NodeId, NodeId, Weight) { return false; },
                 stats);
    return stats.simd_efficiency();
  };
  EXPECT_GE(efficiency(4) + 1e-12, efficiency(ws * 2 > 64 ? 64 : ws * 2) -
                                       1e-12);
}

INSTANTIATE_TEST_SUITE_P(Widths, EngineWarpWidth,
                         ::testing::Values(4u, 8u, 16u, 32u, 64u));

TEST(Stats, Accumulation) {
  KernelStats a, b;
  a.warp_steps = 5;
  a.attr_transactions = 7;
  b.warp_steps = 3;
  b.attr_transactions = 2;
  a += b;
  EXPECT_EQ(a.warp_steps, 8u);
  EXPECT_EQ(a.attr_transactions, 9u);
}

TEST(Stats, EfficienciesDefaultToOne)
{
  KernelStats stats;
  EXPECT_DOUBLE_EQ(stats.simd_efficiency(), 1.0);
  EXPECT_DOUBLE_EQ(stats.coalescing_efficiency(), 1.0);
  EXPECT_DOUBLE_EQ(stats.shared_fraction(), 0.0);
}

}  // namespace
}  // namespace graffix::sim
