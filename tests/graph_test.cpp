// Unit tests for the graph substrate: CSR invariants, the builder
// (sorting, dedup, self loops), transpose/symmetrize, I/O round-trips,
// structural properties, and validation.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "graph/subgraph.hpp"
#include "graph/validate.hpp"

namespace graffix {
namespace {

/// A 20-node example in the spirit of the paper's Figure 1.
Csr figure1_graph() {
  GraphBuilder b(20);
  const std::pair<int, int> edges[] = {
      {0, 4},  {0, 5},  {0, 6},  {0, 7},  {0, 8},  {0, 13}, {0, 14},
      {1, 0},  {1, 10}, {1, 12}, {1, 15}, {1, 17}, {1, 18},
      {2, 0},  {2, 11}, {2, 19},
      {3, 19},
      {4, 5},  {6, 17}, {7, 15},
      {9, 8},  {16, 2},
  };
  for (auto [u, v] : edges) b.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  return b.build();
}

Csr diamond() {
  // 0 -> {1,2} -> 3
  GraphBuilder b(4);
  b.set_weighted(true);
  b.add_edge(0, 1, 1.0f);
  b.add_edge(0, 2, 2.0f);
  b.add_edge(1, 3, 3.0f);
  b.add_edge(2, 3, 4.0f);
  return b.build();
}

TEST(Builder, BuildsSortedCsr) {
  GraphBuilder b(4);
  b.add_edge(2, 1);
  b.add_edge(0, 3);
  b.add_edge(0, 1);
  Csr g = b.build();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  ASSERT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.neighbors(0)[0], 1u);
  EXPECT_EQ(g.neighbors(0)[1], 3u);
  EXPECT_EQ(g.degree(1), 0u);
  EXPECT_EQ(g.degree(2), 1u);
}

TEST(Builder, DedupKeepsMinWeight) {
  GraphBuilder b(2);
  b.set_weighted(true);
  b.set_dedup(GraphBuilder::Dedup::KeepMinWeight);
  b.add_edge(0, 1, 5.0f);
  b.add_edge(0, 1, 2.0f);
  b.add_edge(0, 1, 9.0f);
  Csr g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FLOAT_EQ(g.edge_weights(0)[0], 2.0f);
}

TEST(Builder, DropSelfLoops) {
  GraphBuilder b(3);
  b.set_drop_self_loops(true);
  b.add_edge(0, 0);
  b.add_edge(1, 2);
  b.add_edge(2, 2);
  Csr g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Builder, ParallelEdgesKeptWithoutDedup) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  Csr g = b.build();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Csr, EmptyGraph) {
  GraphBuilder b(0);
  Csr g = b.build();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Csr, HoleMaskReducesNodeCount) {
  // Three slots, middle one a hole with no edges.
  std::vector<EdgeId> offsets{0, 1, 1, 2};
  std::vector<NodeId> targets{2, 0};
  Csr g(std::move(offsets), std::move(targets), {}, {0, 1, 0});
  EXPECT_EQ(g.num_slots(), 3u);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_TRUE(g.is_hole(1));
  EXPECT_FALSE(g.is_hole(0));
  EXPECT_TRUE(validate_graph(g).ok);
}

TEST(Csr, TransposeReversesEdges) {
  Csr g = diamond();
  Csr t = g.transpose();
  EXPECT_EQ(t.num_edges(), g.num_edges());
  ASSERT_EQ(t.degree(3), 2u);
  EXPECT_EQ(t.neighbors(3)[0], 1u);
  EXPECT_EQ(t.neighbors(3)[1], 2u);
  // Weight follows the edge.
  EXPECT_FLOAT_EQ(t.edge_weights(3)[0], 3.0f);
  // Double transpose = original.
  Csr tt = t.transpose();
  EXPECT_EQ(std::vector<NodeId>(tt.targets().begin(), tt.targets().end()),
            std::vector<NodeId>(g.targets().begin(), g.targets().end()));
}

TEST(Csr, SymmetrizedContainsBothDirections) {
  Csr g = diamond();
  Csr s = g.symmetrized();
  // Every edge mirrored; diamond has 4 distinct arcs -> 8 arcs symmetric.
  EXPECT_EQ(s.num_edges(), 8u);
  auto has_edge = [&](NodeId u, NodeId v) {
    for (NodeId x : s.neighbors(u)) {
      if (x == v) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_edge(1, 0));
  EXPECT_TRUE(has_edge(3, 1));
  EXPECT_TRUE(has_edge(0, 1));
}

TEST(Csr, MemoryBytesGrowsWithEdges) {
  Csr small = diamond();
  Csr big = figure1_graph();
  EXPECT_GT(big.memory_bytes(), 0u);
  EXPECT_GT(big.memory_bytes(), small.memory_bytes() / 2);
}

TEST(Csr, MemoryBytesAccountsForEveryOwnedArray) {
  // Audit: offsets + targets + weights + holes must all be counted, at
  // allocated capacity — this number is the denominator of the bench
  // peak-RSS gate, so undercounting would loosen the gate.
  const Csr plain({0, 2, 3, 3}, {1, 2, 0}, {}, {});
  const std::size_t floor_plain = 4 * sizeof(EdgeId) + 3 * sizeof(NodeId);
  EXPECT_GE(plain.memory_bytes(), floor_plain);

  const Csr weighted({0, 2, 3, 3}, {1, 2, 0}, {1.0f, 2.0f, 3.0f}, {});
  EXPECT_GE(weighted.memory_bytes(),
            plain.memory_bytes() + 3 * sizeof(Weight));

  const Csr holed({0, 2, 3, 3}, {1, 2, 0}, {1.0f, 2.0f, 3.0f}, {0, 0, 1});
  EXPECT_GE(holed.memory_bytes(), weighted.memory_bytes() + 3);
}

TEST(Csr, TakePartsDisassemblesAndLeavesValidEmptyGraph) {
  Csr g({0, 2, 3, 3}, {1, 2, 0}, {1.0f, 2.0f, 3.0f}, {0, 0, 1});
  auto parts = std::move(g).take_parts();
  EXPECT_EQ(parts.offsets, (std::vector<EdgeId>{0, 2, 3, 3}));
  EXPECT_EQ(parts.targets, (std::vector<NodeId>{1, 2, 0}));
  EXPECT_EQ(parts.weights, (std::vector<Weight>{1.0f, 2.0f, 3.0f}));
  EXPECT_EQ(parts.holes, (std::vector<std::uint8_t>{0, 0, 1}));
  // The husk is a usable empty graph, not a booby trap.
  EXPECT_EQ(g.num_slots(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.has_weights());
  EXPECT_TRUE(validate_graph(g).ok);
}

TEST(Validate, DetectsHoleWithEdges) {
  std::vector<EdgeId> offsets{0, 1, 2};
  std::vector<NodeId> targets{1, 0};
  Csr g(std::move(offsets), std::move(targets), {}, {0, 1});
  EXPECT_FALSE(validate_graph(g).ok);
}

TEST(Validate, DetectsEdgeIntoHole) {
  std::vector<EdgeId> offsets{0, 1, 1};
  std::vector<NodeId> targets{1};
  Csr g(std::move(offsets), std::move(targets), {}, {0, 1});
  EXPECT_FALSE(validate_graph(g).ok);
}

TEST(Validate, AcceptsCleanGraph) {
  EXPECT_TRUE(validate_graph(figure1_graph()).ok);
}

TEST(Validate, DetectsNaNWeight) {
  std::vector<EdgeId> offsets{0, 1, 1};
  std::vector<NodeId> targets{1};
  std::vector<Weight> weights{std::numeric_limits<Weight>::quiet_NaN()};
  Csr g(std::move(offsets), std::move(targets), std::move(weights));
  const auto report = validate_graph(g);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.message.find("bad weight"), std::string::npos);
}

TEST(Validate, DetectsNegativeWeight) {
  std::vector<EdgeId> offsets{0, 1, 1};
  std::vector<NodeId> targets{1};
  std::vector<Weight> weights{-1.0f};
  Csr g(std::move(offsets), std::move(targets), std::move(weights));
  EXPECT_FALSE(validate_graph(g).ok);
}

TEST(Validate, DetectsNonMonotoneOffsets) {
  // The Csr constructor only pins offsets.back(); a decreasing interior
  // offset must be caught by validation, not by unsigned-underflow UB.
  std::vector<EdgeId> offsets{0, 2, 1, 3};
  std::vector<NodeId> targets{1, 2, 0};
  Csr g(std::move(offsets), std::move(targets));
  const auto report = validate_graph(g);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.message.find("not monotone"), std::string::npos);
}

TEST(Validate, ValidationEnabledReadsEnvironment) {
  ::unsetenv("GRAFFIX_VALIDATE");
  EXPECT_FALSE(validation_enabled());
  ::setenv("GRAFFIX_VALIDATE", "1", 1);
  EXPECT_TRUE(validation_enabled());
  ::setenv("GRAFFIX_VALIDATE", "0", 1);
  EXPECT_FALSE(validation_enabled());
  ::setenv("GRAFFIX_VALIDATE", "", 1);
  EXPECT_FALSE(validation_enabled());
  ::unsetenv("GRAFFIX_VALIDATE");
}

TEST(Properties, DegreeStats) {
  Csr g = diamond();
  const DegreeStats stats = degree_stats(g);
  EXPECT_EQ(stats.min, 0u);
  EXPECT_EQ(stats.max, 2u);
  EXPECT_DOUBLE_EQ(stats.mean, 1.0);
}

TEST(Properties, ClusteringCoefficientOfTriangle) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  Csr g = b.build();
  const auto cc = clustering_coefficients(g);
  EXPECT_DOUBLE_EQ(cc[0], 1.0);
  EXPECT_DOUBLE_EQ(cc[1], 1.0);
  EXPECT_DOUBLE_EQ(cc[2], 1.0);
  EXPECT_DOUBLE_EQ(average_clustering_coefficient(cc, g), 1.0);
}

TEST(Properties, ClusteringCoefficientOfStarIsZero) {
  GraphBuilder b(5);
  for (NodeId leaf = 1; leaf < 5; ++leaf) b.add_edge(0, leaf);
  Csr g = b.build();
  const auto cc = clustering_coefficients(g);
  EXPECT_DOUBLE_EQ(cc[0], 0.0);
}

TEST(Properties, BfsLevelsOnPath) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  Csr g = b.build();
  const auto levels = bfs_levels(g, 0);
  EXPECT_EQ(levels[0], 0u);
  EXPECT_EQ(levels[3], 3u);
}

TEST(Properties, BfsUnreachableIsInvalid) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  Csr g = b.build();
  const auto levels = bfs_levels(g, 0);
  EXPECT_EQ(levels[2], kInvalidNode);
}

TEST(Properties, PseudoDiameterOfPath) {
  GraphBuilder b(10);
  for (NodeId i = 0; i + 1 < 10; ++i) b.add_edge(i, i + 1);
  Csr g = b.build();
  EXPECT_EQ(pseudo_diameter(g), 9u);
}

TEST(Properties, InducedSubgraphDiameter) {
  Csr g = figure1_graph();
  const std::vector<NodeId> nodes{0, 4, 5, 6, 7};
  // Undirected induced: 0-4, 0-5, 0-6, 0-7, 4-5 -> diameter 2 (4 to 6).
  EXPECT_EQ(induced_subgraph_diameter(g, nodes), 2u);
}

TEST(Properties, DegreeHistogramBuckets) {
  // Degrees: 0 -> 7, 1 -> 6, 2 -> 3, rest small.
  Csr g = figure1_graph();
  const auto hist = degree_histogram(g);
  // Bucket 0: degree-0 nodes; bucket 3: degrees 4-7 (nodes 0 and 1).
  ASSERT_GE(hist.size(), 4u);
  EXPECT_EQ(hist[3], 2u);
  NodeId total = 0;
  for (NodeId c : hist) total += c;
  EXPECT_EQ(total, g.num_nodes());
}

TEST(Properties, MetricQuantiles) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  Csr g = b.build();
  const std::vector<double> metric{5.0, 1.0, 3.0, 2.0, 4.0};
  const std::vector<double> qs{0.0, 0.5, 0.99};
  const auto out = metric_quantiles(g, metric, qs);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], 3.0);
  EXPECT_DOUBLE_EQ(out[2], 5.0);
}

TEST(Properties, QuantilesSkipHoles) {
  std::vector<EdgeId> offsets{0, 0, 0, 0};
  Csr g(std::move(offsets), {}, {}, {0, 1, 0});
  const std::vector<double> metric{1.0, 100.0, 3.0};
  const std::vector<double> qs{0.99};
  const auto out = metric_quantiles(g, metric, qs);
  EXPECT_DOUBLE_EQ(out[0], 3.0);  // the hole's 100.0 is ignored
}

TEST(Properties, WeaklyConnectedComponents) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  Csr g = b.build();
  EXPECT_EQ(weakly_connected_components(g), 3u);
}

TEST(Subgraph, ExtractsInducedEdges) {
  Csr g = figure1_graph();
  const std::vector<NodeId> members{0, 4, 5, 13};
  const auto sub = induced_subgraph(g, members);
  EXPECT_EQ(sub.graph.num_nodes(), 4u);
  // Induced edges: 0->4, 0->5, 0->13, 4->5.
  EXPECT_EQ(sub.graph.num_edges(), 4u);
  EXPECT_EQ(sub.to_global(sub.to_local(4)), 4u);
  EXPECT_EQ(sub.to_local(1), kInvalidNode);
  // Edge 4->5 survives under local ids.
  const NodeId l4 = sub.to_local(4), l5 = sub.to_local(5);
  bool found = false;
  for (NodeId v : sub.graph.neighbors(l4)) found = found || v == l5;
  EXPECT_TRUE(found);
}

TEST(Subgraph, PreservesWeights) {
  Csr g = diamond();
  const std::vector<NodeId> members{0, 1, 3};
  const auto sub = induced_subgraph(g, members);
  EXPECT_EQ(sub.graph.num_edges(), 2u);  // 0->1, 1->3
  ASSERT_TRUE(sub.graph.has_weights());
  const NodeId l1 = sub.to_local(1);
  EXPECT_FLOAT_EQ(sub.graph.edge_weights(l1)[0], 3.0f);
}

TEST(Subgraph, DuplicatesIgnoredAndEmptyOk) {
  Csr g = diamond();
  const std::vector<NodeId> dups{2, 2, 2};
  const auto sub = induced_subgraph(g, dups);
  EXPECT_EQ(sub.graph.num_nodes(), 1u);
  EXPECT_EQ(sub.graph.num_edges(), 0u);
  const auto empty = induced_subgraph(g, std::vector<NodeId>{});
  EXPECT_EQ(empty.graph.num_nodes(), 0u);
}

class IoTest : public ::testing::Test {
 protected:
  std::string path(const char* name) {
    return (std::filesystem::temp_directory_path() /
            (std::string("graffix_io_") + name))
        .string();
  }
  void TearDown() override {
    for (const auto& p : created_) std::remove(p.c_str());
  }
  std::vector<std::string> created_;
};

TEST_F(IoTest, EdgeListRoundTrip) {
  Csr g = figure1_graph();
  const std::string p = path("edges.txt");
  created_.push_back(p);
  write_edge_list(g, p);
  Csr back = read_edge_list(p, /*weighted=*/false, g.num_nodes());
  EXPECT_EQ(back.num_nodes(), g.num_nodes());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  EXPECT_EQ(std::vector<NodeId>(back.targets().begin(), back.targets().end()),
            std::vector<NodeId>(g.targets().begin(), g.targets().end()));
}

TEST_F(IoTest, WeightedEdgeListRoundTrip) {
  Csr g = diamond();
  const std::string p = path("wedges.txt");
  created_.push_back(p);
  write_edge_list(g, p);
  Csr back = read_edge_list(p, /*weighted=*/true, g.num_nodes());
  ASSERT_TRUE(back.has_weights());
  EXPECT_FLOAT_EQ(back.edge_weights(0)[0], 1.0f);
  EXPECT_FLOAT_EQ(back.edge_weights(2)[0], 4.0f);
}

TEST_F(IoTest, BinaryRoundTripWithHolesAndWeights) {
  std::vector<EdgeId> offsets{0, 2, 2, 3};
  std::vector<NodeId> targets{2, 2, 0};
  std::vector<Weight> weights{1.5f, 2.5f, 3.5f};
  Csr g(std::move(offsets), std::move(targets), std::move(weights), {0, 1, 0});
  const std::string p = path("graph.bin");
  created_.push_back(p);
  write_binary(g, p);
  Csr back = read_binary(p);
  EXPECT_EQ(back.num_slots(), 3u);
  EXPECT_EQ(back.num_nodes(), 2u);
  EXPECT_TRUE(back.is_hole(1));
  EXPECT_FLOAT_EQ(back.edge_weights(0)[1], 2.5f);
}

TEST_F(IoTest, LongCommentLineDoesNotYieldBogusEdge) {
  // Regression: lines were read through a fixed 512-byte fgets buffer;
  // a comment longer than that was silently split, and when the tail of
  // the split started with digits it re-parsed as a phantom edge.
  const std::string p = path("longcomment.txt");
  created_.push_back(p);
  std::FILE* f = std::fopen(p.c_str(), "w");
  std::string comment = "# ";
  comment.append(509, 'x');  // the old buffer split exactly after 511 chars
  comment += "7 8\n";
  std::fputs(comment.c_str(), f);
  std::fputs("0 1\n", f);
  std::fclose(f);
  Csr g = read_edge_list(p, /*weighted=*/false, 2);
  EXPECT_EQ(g.num_nodes(), 2u);  // a phantom "7 8" edge would force 9
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.neighbors(0)[0], 1u);
}

TEST_F(IoTest, LongEdgeLineParsesWholeLine) {
  // An edge line whose numbers straddle the old 512-byte buffer boundary
  // was silently dropped (the first fragment held only one number).
  const std::string p = path("longedge.txt");
  created_.push_back(p);
  std::FILE* f = std::fopen(p.c_str(), "w");
  std::string line(510, ' ');
  line += "5 6\n";  // '5' lands at index 510, the last slot of the old read
  std::fputs(line.c_str(), f);
  std::fclose(f);
  Csr g = read_edge_list(p, /*weighted=*/false, 0);
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.num_nodes(), 7u);
  EXPECT_EQ(g.neighbors(5)[0], 6u);
}

TEST_F(IoTest, DimacsParsing) {
  const std::string p = path("road.gr");
  created_.push_back(p);
  std::FILE* f = std::fopen(p.c_str(), "w");
  std::fputs("c comment line\np sp 3 2\na 1 2 7\na 2 3 9\n", f);
  std::fclose(f);
  Csr g = read_dimacs(p);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_FLOAT_EQ(g.edge_weights(0)[0], 7.0f);
  EXPECT_EQ(g.neighbors(1)[0], 2u);
}

TEST_F(IoTest, MatrixMarketRoundTrip) {
  Csr g = diamond();
  const std::string p = path("graph.mtx");
  created_.push_back(p);
  write_matrix_market(g, p);
  Csr back = read_matrix_market(p);
  EXPECT_EQ(back.num_nodes(), g.num_nodes());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  ASSERT_TRUE(back.has_weights());
  EXPECT_FLOAT_EQ(back.edge_weights(0)[0], 1.0f);
  EXPECT_FLOAT_EQ(back.edge_weights(2)[0], 4.0f);
}

TEST_F(IoTest, MatrixMarketSymmetricMirrored) {
  const std::string p = path("sym.mtx");
  created_.push_back(p);
  std::FILE* f = std::fopen(p.c_str(), "w");
  std::fputs(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "% a comment\n"
      "3 3 2\n"
      "2 1\n"
      "3 2\n",
      f);
  std::fclose(f);
  Csr g = read_matrix_market(p);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 4u);  // both directions
  EXPECT_FALSE(g.has_weights());
  EXPECT_EQ(g.neighbors(0)[0], 1u);
  EXPECT_EQ(g.neighbors(1)[0], 0u);
}

TEST_F(IoTest, MatrixMarketRejectsGarbage) {
  const std::string p = path("bad.mtx");
  created_.push_back(p);
  std::FILE* f = std::fopen(p.c_str(), "w");
  std::fputs("hello world\n", f);
  std::fclose(f);
  EXPECT_THROW((void)read_matrix_market(p), std::runtime_error);
}

TEST_F(IoTest, MatrixMarketRejectsTruncation) {
  const std::string p = path("trunc.mtx");
  created_.push_back(p);
  std::FILE* f = std::fopen(p.c_str(), "w");
  std::fputs(
      "%%MatrixMarket matrix coordinate real general\n"
      "4 4 3\n"
      "1 2 1.5\n",
      f);
  std::fclose(f);
  EXPECT_THROW((void)read_matrix_market(p), std::runtime_error);
}

TEST_F(IoTest, MatrixMarketRejectsOutOfRangeEntry) {
  const std::string p = path("range.mtx");
  created_.push_back(p);
  std::FILE* f = std::fopen(p.c_str(), "w");
  std::fputs(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "5 1 1.0\n",
      f);
  std::fclose(f);
  EXPECT_THROW((void)read_matrix_market(p), std::runtime_error);
}

TEST_F(IoTest, TruncatedBinaryThrows) {
  Csr g = figure1_graph();
  const std::string p = path("cut.bin");
  created_.push_back(p);
  write_binary(g, p);
  // Chop the file in half.
  std::filesystem::resize_file(p, std::filesystem::file_size(p) / 2);
  EXPECT_THROW((void)read_binary(p), std::runtime_error);
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW((void)read_edge_list("/nonexistent/graffix.txt"),
               std::runtime_error);
  EXPECT_THROW((void)read_binary("/nonexistent/graffix.bin"),
               std::runtime_error);
}

TEST_F(IoTest, BadMagicThrows) {
  const std::string p = path("bad.bin");
  created_.push_back(p);
  std::FILE* f = std::fopen(p.c_str(), "wb");
  const std::uint64_t junk = 0xdeadbeef;
  std::fwrite(&junk, sizeof(junk), 1, f);
  std::fclose(f);
  EXPECT_THROW((void)read_binary(p), std::runtime_error);
}

}  // namespace
}  // namespace graffix
