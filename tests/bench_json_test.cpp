// Bench harness --json lifecycle: a rerun into the same path must
// atomically REPLACE the previous document (write the staging file,
// rename at finalize) instead of appending stale rows — the bug class
// this pins is a perf-tracking JSON that accumulates one copy of every
// table per rerun and silently corrupts trajectory tooling.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "harness.hpp"

namespace graffix::bench {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool file_exists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return static_cast<bool>(in);
}

std::vector<core::PreprocessReport> one_row(const char* graph) {
  core::PreprocessReport row;
  row.graph = graph;
  row.seconds = 1.25;
  row.extra_space_pct = 3.5;
  row.edges_added = 42;
  return {row};
}

TEST(BenchJson, RerunReplacesDocumentAtomically) {
  const std::string path =
      testing::TempDir() + "bench_json_rerun_test.json";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());

  // Run one: tables go to the staging file; the final path must not
  // appear until finalize (a crashed run leaves no half-document).
  set_json_output(path);
  EXPECT_EQ(json_output_path(), path);
  print_preprocessing_table("run-one table", one_row("graph-run-one"));
  EXPECT_FALSE(file_exists(path))
      << "document published before finalize — rename is not atomic";
  finalize_json_output();
  const std::string first = slurp(path);
  EXPECT_NE(first.find("graph-run-one"), std::string::npos);

  // Finalize is idempotent: a second call (the atexit hook firing after
  // an explicit finalize) must not clobber the published document.
  finalize_json_output();
  EXPECT_EQ(slurp(path), first);

  // Run two into the SAME path: while it is staging, readers still see
  // the complete first document; after finalize they see ONLY the
  // second — no stale rows carried over.
  set_json_output(path);
  print_preprocessing_table("run-two table", one_row("graph-run-two"));
  EXPECT_EQ(slurp(path), first)
      << "second run leaked into the published document before finalize";
  finalize_json_output();
  const std::string second = slurp(path);
  EXPECT_NE(second.find("graph-run-two"), std::string::npos);
  EXPECT_EQ(second.find("graph-run-one"), std::string::npos)
      << "rerun appended to the previous document instead of replacing it";

  // Disable JSON output so later tests (and the atexit hook) are no-ops,
  // then clean up.
  set_json_output("");
  std::remove(path.c_str());
}

TEST(BenchJson, EmptyPathDisablesOutput) {
  set_json_output("");
  EXPECT_TRUE(json_output_path().empty());
  // Must not crash or create files; tables just print.
  print_preprocessing_table("no-json table", one_row("graph-silent"));
  finalize_json_output();
}

}  // namespace
}  // namespace graffix::bench
