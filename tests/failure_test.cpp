// Failure injection: the library's hard invariants must trip loudly
// (GRAFFIX_CHECK aborts), not corrupt silently. Death tests pin the
// contracts at every API boundary that takes externally-built data.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/runners.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "sim/engine.hpp"
#include "transform/renumber.hpp"
#include "transform/validate.hpp"

#include <cstdlib>

namespace graffix {
namespace {

Csr tiny() {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  return b.build();
}

Csr with_hole() {
  std::vector<EdgeId> offsets{0, 1, 1, 2};
  std::vector<NodeId> targets{2, 0};
  return Csr(std::move(offsets), std::move(targets), {}, {0, 1, 0});
}

using FailureDeath = ::testing::Test;

TEST(FailureDeath, CsrRejectsMismatchedOffsets) {
  std::vector<EdgeId> offsets{0, 5};  // claims 5 edges
  std::vector<NodeId> targets{1};     // has 1
  EXPECT_DEATH((Csr{std::move(offsets), std::move(targets)}),
               "offsets/targets mismatch");
}

TEST(FailureDeath, CsrRejectsEmptyOffsets) {
  EXPECT_DEATH((Csr{std::vector<EdgeId>{}, std::vector<NodeId>{}}),
               "at least one entry");
}

TEST(FailureDeath, CsrRejectsBadWeightCount) {
  std::vector<EdgeId> offsets{0, 1};
  std::vector<NodeId> targets{0};
  std::vector<Weight> weights{1.0f, 2.0f};
  EXPECT_DEATH(
      (Csr{std::move(offsets), std::move(targets), std::move(weights)}),
      "weights size mismatch");
}

TEST(FailureDeath, CsrRejectsBadHoleMask) {
  std::vector<EdgeId> offsets{0, 1};
  std::vector<NodeId> targets{0};
  EXPECT_DEATH((Csr{std::move(offsets), std::move(targets), {}, {0, 1, 0}}),
               "hole mask size mismatch");
}

TEST(FailureDeath, RenumberRejectsBadChunkSize) {
  const Csr g = tiny();
  EXPECT_DEATH((void)transform::renumber_bfs_forest(g, 0), "chunk size");
  EXPECT_DEATH((void)transform::renumber_bfs_forest(g, 64), "chunk size");
}

TEST(FailureDeath, RenumberRejectsHoleGraphs) {
  const Csr g = with_hole();
  EXPECT_DEATH((void)transform::renumber_bfs_forest(g, 8),
               "untransformed graph");
}

TEST(FailureDeath, PipelineRejectsHoleGraphs) {
  EXPECT_DEATH((Pipeline{with_hole()}), "untransformed input graph");
}

TEST(FailureDeath, SsspRejectsHoleSource) {
  const Csr g = with_hole();
  core::RunConfig rc;
  rc.sssp_source = 1;  // a hole
  EXPECT_DEATH((void)core::run_algorithm(core::Algorithm::SSSP, g, rc),
               "bad source");
}

TEST(FailureDeath, SsspRejectsOutOfRangeSource) {
  const Csr g = tiny();
  core::RunConfig rc;
  rc.sssp_source = 99;
  EXPECT_DEATH((void)core::run_algorithm(core::Algorithm::SSSP, g, rc),
               "bad source");
}

TEST(FailureDeath, EngineRejectsAbsurdWarpSize) {
  const Csr g = tiny();
  sim::SimConfig cfg;
  cfg.warp_size = 0;
  EXPECT_DEATH((sim::Engine{g, cfg}), "warp size");
}

TEST(FailureDeath, WarpOrderMustCoverAllSlots) {
  const Csr g = tiny();
  std::vector<NodeId> short_order{0, 1};
  core::RunConfig rc;
  rc.warp_order = short_order;
  EXPECT_DEATH((void)core::run_algorithm(core::Algorithm::PR, g, rc),
               "warp order");
}

TEST(FailureDeath, ValidateHookAbortsWithPhaseName) {
  // Under GRAFFIX_VALIDATE the boundary hook must name the offending
  // phase in the abort message (that is the whole point of the hook).
  ::setenv("GRAFFIX_VALIDATE", "1", 1);
  std::vector<EdgeId> offsets{0, 1, 1};
  std::vector<NodeId> targets{1};
  const Csr bad(std::move(offsets), std::move(targets), {}, {0, 1});
  EXPECT_DEATH(transform::check_transform_phase("unit/bad-phase", bad),
               "transform phase 'unit/bad-phase'");
  ::unsetenv("GRAFFIX_VALIDATE");
}

TEST(FailureDeath, ValidateHookIsInertWhenDisabled) {
  ::unsetenv("GRAFFIX_VALIDATE");
  std::vector<EdgeId> offsets{0, 1, 1};
  std::vector<NodeId> targets{1};
  const Csr bad(std::move(offsets), std::move(targets), {}, {0, 1});
  transform::check_transform_phase("unit/ignored", bad);  // must not abort
}

}  // namespace
}  // namespace graffix
