// Batching contract for `graffix serve`: multi-source units produce
// byte-identical responses to per-query serial execution, at every
// thread count, under arbitrary client interleavings. Labeled `parallel`
// so the TSan shard exercises the concurrent paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "gen/suite.hpp"
#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "serve/batcher.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve_test_util.hpp"
#include "sim/engine.hpp"
#include "util/parallel.hpp"

namespace graffix::serve {
namespace {

using graffix::serve::testing::LineClient;
using graffix::serve::testing::connect_client;

constexpr int kThreadCounts[] = {1, 2, 8};

Csr bench_graph() { return make_preset(GraphPreset::LiveJournal, 8, 7); }

// ---- form_units ---------------------------------------------------------

TEST(ServeBatcher, GroupsCompatibleQueriesPreservingArrival) {
  std::vector<Request> reqs(6);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    reqs[i].op = Op::Query;
    reqs[i].alg = QueryAlg::Sssp;
    reqs[i].id = i;
  }
  reqs[2].alg = QueryAlg::Bfs;       // different alg: its own unit
  reqs[4].alg = QueryAlg::Pagerank;  // not batchable: singleton
  std::vector<const Request*> wave;
  for (const Request& r : reqs) wave.push_back(&r);

  const int snap_a = 0;
  const auto units = form_units(
      wave, [&](std::size_t) { return static_cast<const void*>(&snap_a); }, 32);
  // sssp{0,1,3,5}, bfs{2}, pr{4} — leaders in arrival order.
  ASSERT_EQ(units.size(), 3U);
  EXPECT_EQ(units[0], (std::vector<std::size_t>{0, 1, 3, 5}));
  EXPECT_EQ(units[1], (std::vector<std::size_t>{2}));
  EXPECT_EQ(units[2], (std::vector<std::size_t>{4}));
}

TEST(ServeBatcher, SplitsOnSnapshotAndLaneCap) {
  std::vector<Request> reqs(5);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    reqs[i].op = Op::Query;
    reqs[i].alg = QueryAlg::Sssp;
  }
  const int snap_a = 0;
  const int snap_b = 1;
  const auto units = form_units(
      std::vector<const Request*>{&reqs[0], &reqs[1], &reqs[2], &reqs[3],
                                  &reqs[4]},
      [&](std::size_t i) {
        return static_cast<const void*>(i == 2 ? &snap_b : &snap_a);
      },
      2);  // lane cap 2
  // a{0,1}, b{2}, a{3,4} — the cap closes a unit, a new one opens.
  ASSERT_EQ(units.size(), 3U);
  EXPECT_EQ(units[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(units[1], (std::vector<std::size_t>{2}));
  EXPECT_EQ(units[2], (std::vector<std::size_t>{3, 4}));
}

// ---- Executor-level differential ----------------------------------------

TEST(ServeBatch, MultiSourceEqualsPerLaneSerialAtEveryThreadCount) {
  const auto snap = make_snapshot("base", 1, bench_graph(), {});
  const NodeId sources[] = {0, 1, 5, 9, 17, 33, 64, 100};
  const std::vector<NodeId> echo = {0, 2, 50, 111};

  for (const QueryAlg alg : {QueryAlg::Sssp, QueryAlg::Bfs}) {
    // Serial goldens: one lane per run, hardware-default threads.
    std::vector<LaneOutcome> golden;
    for (const NodeId s : sources) {
      LaneSpec lane;
      lane.source = s;
      lane.echo_nodes = echo;
      const MultiSourceOutcome one = run_multi_source(*snap, alg, {&lane, 1});
      ASSERT_FALSE(one.engine_busy);
      golden.push_back(one.lanes.front());
    }

    for (const int threads : kThreadCounts) {
      ScopedNumThreads pin(threads);
      std::vector<LaneSpec> lanes;
      for (const NodeId s : sources) {
        LaneSpec lane;
        lane.source = s;
        lane.echo_nodes = echo;
        lanes.push_back(std::move(lane));
      }
      const MultiSourceOutcome batched = run_multi_source(*snap, alg, lanes);
      ASSERT_FALSE(batched.engine_busy);
      ASSERT_EQ(batched.lanes.size(), golden.size());
      for (std::size_t k = 0; k < golden.size(); ++k) {
        EXPECT_EQ(batched.lanes[k].digest, golden[k].digest)
            << "alg " << query_alg_name(alg) << " lane " << k << " threads "
            << threads;
        EXPECT_EQ(batched.lanes[k].reached, golden[k].reached);
        EXPECT_EQ(batched.lanes[k].rounds, golden[k].rounds);
        EXPECT_EQ(batched.lanes[k].values, golden[k].values);
      }
    }
  }
}

// ---- Server-level differential ------------------------------------------

std::vector<std::string> query_frames() {
  const NodeId sources[] = {0, 1, 5, 9, 17, 33, 64, 100};
  std::vector<std::string> frames;
  for (std::size_t i = 0; i < std::size(sources); ++i) {
    frames.push_back(
        R"({"id":)" + std::to_string(i + 1) +
        R"(,"op":"query","alg":)" + (i % 2 == 0 ? R"("sssp")" : R"("bfs")") +
        R"(,"source":)" + std::to_string(sources[i]) + R"(,"nodes":[0,2,50]})");
  }
  return frames;
}

/// One query at a time against a lanes=1 server: the serial baseline.
std::map<std::uint64_t, std::string> serial_baseline(const Csr& graph) {
  ServerConfig cfg;
  cfg.max_batch_lanes = 1;
  Server server(graph, cfg);
  server.start();
  auto client = connect_client(server);
  std::map<std::uint64_t, std::string> out;
  for (const std::string& frame : query_frames()) {
    client->send(frame);
    const std::string line = client->recv_or_die();
    out[LineClient::extract_id(line)] = line;
  }
  server.stop();
  return out;
}

TEST(ServeBatch, BatchedServerMatchesSerialByteForByte) {
  const Csr graph = bench_graph();
  const auto golden = serial_baseline(graph);
  ASSERT_EQ(golden.size(), 8U);

  for (const int threads : kThreadCounts) {
    ScopedNumThreads pin(threads);
    ServerConfig cfg;
    cfg.max_batch_lanes = 8;
    Server server(graph, cfg);
    server.start();
    // Park the dispatcher so all 8 arrive in ONE wave — batching is then
    // guaranteed, not scheduling-dependent.
    server.hold_dispatch_for_test(true);
    auto client = connect_client(server);
    for (const std::string& frame : query_frames()) client->send(frame);
    server.hold_dispatch_for_test(false);
    const auto got = client->recv_by_id(8);
    EXPECT_EQ(got, golden) << "threads " << threads;
    const ServerMetrics m = server.metrics();
    EXPECT_GE(m.batches, 1U) << "wave must actually have batched";
    EXPECT_GE(m.batched_lanes, 4U);
    server.stop();
  }
}

// Satellite: randomized interleaving stress. N concurrent clients send a
// shuffled query mix; every response must be byte-identical to the serial
// baseline regardless of arrival order, wave composition, or thread count.
TEST(ServeBatch, RandomInterleavingsMatchSerial) {
  const Csr graph = bench_graph();
  const auto golden = serial_baseline(graph);

  constexpr int kClients = 8;
  constexpr int kRounds = 3;
  for (int round = 0; round < kRounds; ++round) {
    ServerConfig cfg;
    cfg.max_batch_lanes = 8;
    Server server(graph, cfg);
    server.start();

    std::vector<std::unique_ptr<LineClient>> clients;
    for (int c = 0; c < kClients; ++c) clients.push_back(connect_client(server));

    std::vector<std::thread> threads;
    std::vector<std::map<std::uint64_t, std::string>> received(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        // Deterministic per-thread shuffle; the OS scheduler supplies the
        // actual interleaving nondeterminism.
        std::vector<std::string> frames = query_frames();
        std::mt19937 rng(static_cast<std::uint32_t>(round * kClients + c));
        std::shuffle(frames.begin(), frames.end(), rng);
        for (const std::string& frame : frames) clients[c]->send(frame);
        received[c] = clients[c]->recv_by_id(frames.size());
      });
    }
    for (std::thread& t : threads) t.join();
    for (int c = 0; c < kClients; ++c) {
      EXPECT_EQ(received[c], golden) << "round " << round << " client " << c;
    }
    server.stop();
  }
}

// Satellite: the engine's reentrancy guard is queryable. A nested sweep
// attempt yields a typed refusal (engine_busy), never the GRAFFIX_CHECK
// abort the raw sweep_gated entry would raise.
TEST(ServeBatch, NestedSweepIsRefusedNotFatal) {
  const auto snap = make_snapshot("base", 1, bench_graph(), {});
  sim::Engine engine(snap->graph, sim::SimConfig{});
  EXPECT_FALSE(engine.in_sweep());

  bool checked = false;
  sim::SweepOptions opts;
  sim::KernelStats stats;
  engine.sweep_gated(
      snap->items, opts, [](NodeId) { return true; },
      [&](NodeId, NodeId, Weight) {
        if (!checked) {
          checked = true;
          EXPECT_TRUE(engine.in_sweep());
          // try_sweep refuses instead of aborting...
          EXPECT_FALSE(engine.try_sweep_gated(
              snap->items, opts, [](NodeId) { return true; },
              [](NodeId, NodeId, Weight) { return false; }, stats));
          // ...and the serve executor surfaces that as engine_busy.
          LaneSpec lane;
          lane.source = 0;
          const MultiSourceOutcome out =
              run_multi_source_on(engine, *snap, QueryAlg::Bfs, {&lane, 1});
          EXPECT_TRUE(out.engine_busy);
        }
        return false;
      },
      stats);
  EXPECT_TRUE(checked);
  EXPECT_FALSE(engine.in_sweep());

  // Outside a sweep the same calls succeed.
  LaneSpec lane;
  lane.source = 0;
  const MultiSourceOutcome out =
      run_multi_source_on(engine, *snap, QueryAlg::Bfs, {&lane, 1});
  EXPECT_FALSE(out.engine_busy);
  EXPECT_GT(out.lanes.front().reached, 1U);
}

}  // namespace
}  // namespace graffix::serve
