// Combined-technique tests (the paper's "they can be combined" claim):
// stage composition order, artifact wiring, hole-awareness of the later
// stages, exactness when every approximation is disabled, and bounded
// inaccuracy of the full stack.
#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.hpp"
#include "gen/permute.hpp"
#include "gen/rmat.hpp"
#include "graph/validate.hpp"
#include "metrics/accuracy.hpp"
#include "transform/combined.hpp"
#include "transform/sparsify.hpp"

namespace graffix {
namespace {

Csr small_rmat(std::uint32_t scale = 10) {
  RmatParams p;
  p.scale = scale;
  p.edge_factor = 8;
  return permute_vertices(generate_rmat(p), 3);
}

transform::CombinedKnobs all_three() {
  transform::CombinedKnobs knobs;
  knobs.coalescing = transform::CoalescingKnobs{.connectedness_threshold = 0.4};
  knobs.latency = transform::LatencyKnobs{.cc_threshold = 0.3, .near_delta = 0.2};
  knobs.divergence = transform::DivergenceKnobs{.degree_sim_threshold = 0.3};
  return knobs;
}

TEST(Combined, EmptySelectionIsIdentity) {
  Csr g = small_rmat(8);
  const auto result = transform::combined_transform(g, {});
  EXPECT_EQ(result.graph.num_edges(), g.num_edges());
  EXPECT_EQ(result.graph.num_slots(), g.num_slots());
  EXPECT_FALSE(result.renumber.has_value());
  EXPECT_TRUE(result.replicas.empty());
  EXPECT_TRUE(result.schedule.empty());
  EXPECT_TRUE(result.warp_order.empty());
  EXPECT_EQ(result.edges_added, 0u);
}

TEST(Combined, AllThreeStagesProduceValidGraph) {
  Csr g = small_rmat();
  const auto result = transform::combined_transform(g, all_three());
  EXPECT_TRUE(validate_graph(result.graph).ok);
  ASSERT_TRUE(result.renumber.has_value());
  // Divergence ran in preserve_order mode: no reorder artifact.
  EXPECT_TRUE(result.warp_order.empty());
  // Slot count comes from the renumbering (holes included).
  EXPECT_EQ(result.graph.num_slots(), result.renumber->num_slots);
  EXPECT_GE(result.preprocessing_seconds, 0.0);
}

TEST(Combined, LaterStagesPreserveSlotIds) {
  // Latency/divergence only add edges; every node keeps its slot and its
  // original out-neighbors as a prefix.
  Csr g = small_rmat();
  transform::CombinedKnobs coalescing_only;
  coalescing_only.coalescing = all_three().coalescing;
  const auto stage1 = transform::combined_transform(g, coalescing_only);
  const auto full = transform::combined_transform(g, all_three());
  ASSERT_EQ(full.graph.num_slots(), stage1.graph.num_slots());
  for (NodeId s = 0; s < full.graph.num_slots(); ++s) {
    EXPECT_EQ(full.graph.is_hole(s), stage1.graph.is_hole(s));
    const auto before = stage1.graph.neighbors(s);
    const auto after = full.graph.neighbors(s);
    ASSERT_GE(after.size(), before.size()) << "slot " << s;
    for (std::size_t i = 0; i < before.size(); ++i) {
      EXPECT_EQ(after[i], before[i]) << "slot " << s;
    }
  }
}

TEST(Combined, LatencyAndDivergenceComposeWithoutCoalescing) {
  Csr g = small_rmat();
  transform::CombinedKnobs knobs = all_three();
  knobs.coalescing.reset();
  const auto result = transform::combined_transform(g, knobs);
  EXPECT_TRUE(validate_graph(result.graph).ok);
  EXPECT_FALSE(result.renumber.has_value());
  // Without coalescing, divergence may reorder.
  EXPECT_EQ(result.warp_order.size(), result.graph.num_slots());
  EXPECT_FALSE(result.schedule.empty());
}

TEST(Combined, ExactWhenAllApproximationsDisabled) {
  Csr g = small_rmat(9);
  transform::CombinedKnobs knobs;
  knobs.coalescing =
      transform::CoalescingKnobs{.connectedness_threshold = 1.5};  // off
  knobs.latency = transform::LatencyKnobs{.edge_budget_fraction = 0.0};
  knobs.divergence = transform::DivergenceKnobs{.degree_sim_threshold = 0.0};
  const auto result = transform::combined_transform(g, knobs);
  EXPECT_EQ(result.edges_added, 0u);
  EXPECT_EQ(result.graph.num_edges(), g.num_edges());
}

TEST(CombinedPipeline, WiresAllArtifacts) {
  Pipeline pipeline(small_rmat());
  const auto& result = pipeline.apply_combined(all_three());
  EXPECT_EQ(pipeline.technique(), Technique::Combined);
  EXPECT_STREQ(technique_name(Technique::Combined), "combined");
  EXPECT_EQ(&pipeline.current(), &result.graph);

  const auto out = pipeline.run(core::Algorithm::PR);
  if (!result.schedule.empty()) {
    EXPECT_GT(out.stats.shared_accesses, 0u);
  }
  // Projection respects the renumbering.
  std::vector<double> attr(pipeline.current().num_slots());
  for (std::size_t s = 0; s < attr.size(); ++s) attr[s] = double(s);
  const auto projected = pipeline.project(attr);
  for (NodeId v = 0; v < 10; ++v) {
    EXPECT_DOUBLE_EQ(projected[v], double(pipeline.slot_of_node(v)));
  }
}

TEST(CombinedPipeline, InaccuracyBounded) {
  Pipeline pipeline(small_rmat());
  pipeline.apply_combined(all_three());
  const auto exact = pipeline.run_exact(core::Algorithm::PR);
  const auto approx = pipeline.run(core::Algorithm::PR);
  const auto error =
      metrics::attribute_error(exact.attr, pipeline.project(approx.attr));
  // Stacked approximations: more than any single technique, still sane.
  EXPECT_LT(error.inaccuracy_pct, 45.0);
  EXPECT_GT(approx.sim_seconds, 0.0);
}

TEST(CombinedPipeline, SsspStaysConservative) {
  Pipeline pipeline(small_rmat(9));
  pipeline.apply_combined(all_three());
  core::RunConfig rc;
  rc.sssp_source = 0;
  const auto exact = pipeline.run_exact(core::Algorithm::SSSP, rc);
  core::RunConfig ra;
  ra.sssp_source = pipeline.slot_of_node(0);
  const auto approx = pipeline.run(core::Algorithm::SSSP, ra);
  const auto projected = pipeline.project(approx.attr);
  // All added edges carry path-sum weights, so distances cannot shrink
  // below exact by more than the relax tolerance.
  for (NodeId v = 0; v < pipeline.original().num_nodes(); ++v) {
    if (std::isfinite(exact.attr[v]) && std::isfinite(projected[v])) {
      EXPECT_GT(projected[v], exact.attr[v] - 0.02 * (1.0 + exact.attr[v]))
          << v;
    }
  }
}

TEST(Sparsify, DropsRequestedFraction) {
  Csr g = small_rmat();
  transform::SparsifyKnobs knobs;
  knobs.drop_fraction = 0.2;
  const auto result = transform::sparsify_transform(g, knobs);
  EXPECT_TRUE(validate_graph(result.graph).ok);
  EXPECT_EQ(result.graph.num_edges() + result.edges_dropped, g.num_edges());
  const double dropped_fraction =
      static_cast<double>(result.edges_dropped) / g.num_edges();
  EXPECT_NEAR(dropped_fraction, 0.2, 0.05);
}

TEST(Sparsify, KeepsOneEdgePerVertex) {
  Csr g = small_rmat();
  transform::SparsifyKnobs knobs;
  knobs.drop_fraction = 0.99;
  const auto result = transform::sparsify_transform(g, knobs);
  for (NodeId u = 0; u < g.num_slots(); ++u) {
    if (g.degree(u) > 0) {
      EXPECT_GE(result.graph.degree(u), 1u) << u;
    }
  }
}

TEST(Sparsify, ZeroDropIsIdentity) {
  Csr g = small_rmat(8);
  transform::SparsifyKnobs knobs;
  knobs.drop_fraction = 0.0;
  const auto result = transform::sparsify_transform(g, knobs);
  EXPECT_EQ(result.edges_dropped, 0u);
  EXPECT_EQ(std::vector<NodeId>(result.graph.targets().begin(),
                                result.graph.targets().end()),
            std::vector<NodeId>(g.targets().begin(), g.targets().end()));
}

TEST(Sparsify, Deterministic) {
  Csr g = small_rmat(8);
  transform::SparsifyKnobs knobs;
  knobs.drop_fraction = 0.3;
  const auto a = transform::sparsify_transform(g, knobs);
  const auto b = transform::sparsify_transform(g, knobs);
  EXPECT_EQ(a.edges_dropped, b.edges_dropped);
  knobs.seed ^= 1;
  const auto c = transform::sparsify_transform(g, knobs);
  EXPECT_NE(std::vector<NodeId>(a.graph.targets().begin(),
                                a.graph.targets().end()),
            std::vector<NodeId>(c.graph.targets().begin(),
                                c.graph.targets().end()));
}

}  // namespace
}  // namespace graffix
