// Simulated-device runner tests: functional correctness of each
// algorithm against the host references (exact runs must agree), across
// all three baseline strategies, plus transform-artifact handling
// (warp order, replicas, clusters).
#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/bc.hpp"
#include "algorithms/mst.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/scc.hpp"
#include "algorithms/sssp.hpp"
#include "core/runners.hpp"
#include "gen/rmat.hpp"
#include "gen/road_grid.hpp"
#include "graph/builder.hpp"
#include "transform/coalescing.hpp"
#include "transform/divergence.hpp"
#include "transform/latency.hpp"

namespace graffix::core {
namespace {

Csr small_rmat(std::uint32_t scale = 9) {
  RmatParams p;
  p.scale = scale;
  p.edge_factor = 8;
  return generate_rmat(p);
}

class RunnersPerBaseline
    : public ::testing::TestWithParam<baselines::BaselineId> {};

TEST_P(RunnersPerBaseline, SsspMatchesDijkstra) {
  Csr g = small_rmat();
  RunConfig cfg;
  cfg.baseline = GetParam();
  cfg.sssp_source = 0;
  const RunOutput out = run_algorithm(Algorithm::SSSP, g, cfg);
  const auto exact = sssp_dijkstra(g, 0);
  ASSERT_EQ(out.attr.size(), g.num_slots());
  for (NodeId v = 0; v < g.num_slots(); ++v) {
    if (exact[v] == kInfWeight) {
      EXPECT_TRUE(std::isinf(out.attr[v])) << v;
    } else {
      // The runner's relaxation tolerance is confluence_epsilon-relative.
      EXPECT_NEAR(out.attr[v], exact[v],
                  0.01 * (1.0 + exact[v]))
          << v;
    }
  }
  EXPECT_GT(out.sim_seconds, 0.0);
  EXPECT_GT(out.iterations, 0u);
}

TEST_P(RunnersPerBaseline, PagerankMatchesHostReference) {
  Csr g = small_rmat();
  RunConfig cfg;
  cfg.baseline = GetParam();
  cfg.pr_tolerance = 1e-9;
  cfg.pr_max_iterations = 100;
  const RunOutput out = run_algorithm(Algorithm::PR, g, cfg);
  PagerankParams params;
  params.tolerance = 1e-9;
  params.max_iterations = 100;
  const auto exact = pagerank(g, params);
  for (NodeId v = 0; v < g.num_slots(); ++v) {
    EXPECT_NEAR(out.attr[v], exact.rank[v], 1e-5) << v;
  }
}

TEST_P(RunnersPerBaseline, BcMatchesBrandesOnSampledSources) {
  Csr g = small_rmat(8);
  const auto sources = sample_bc_sources(g, 4, 7);
  RunConfig cfg;
  cfg.baseline = GetParam();
  cfg.bc_sources = sources;
  const RunOutput out = run_algorithm(Algorithm::BC, g, cfg);
  const auto exact = betweenness_centrality(g, sources);
  for (NodeId v = 0; v < g.num_slots(); ++v) {
    EXPECT_NEAR(out.attr[v], exact[v], 1e-6 * (1.0 + std::abs(exact[v])))
        << v;
  }
}

TEST_P(RunnersPerBaseline, SccMatchesTarjan) {
  Csr g = small_rmat(8);
  RunConfig cfg;
  cfg.baseline = GetParam();
  const RunOutput out = run_algorithm(Algorithm::SCC, g, cfg);
  const auto exact = scc_tarjan(g);
  EXPECT_DOUBLE_EQ(out.scalar, static_cast<double>(exact.count));
}

TEST_P(RunnersPerBaseline, MstMatchesKruskal) {
  Csr g = small_rmat(8);
  RunConfig cfg;
  cfg.baseline = GetParam();
  const RunOutput out = run_algorithm(Algorithm::MST, g, cfg);
  const auto exact = mst_kruskal(g);
  EXPECT_NEAR(out.scalar, exact.total_weight,
              1e-4 * std::max(1.0, exact.total_weight));
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, RunnersPerBaseline,
                         ::testing::Values(baselines::BaselineId::TopologyDriven,
                                           baselines::BaselineId::TigrLike,
                                           baselines::BaselineId::GunrockLike));

TEST(Runners, SsspOnRoadGrid) {
  RoadGridParams p;
  p.width = 16;
  p.height = 16;
  Csr g = generate_road_grid(p);
  RunConfig cfg;
  cfg.baseline = baselines::BaselineId::GunrockLike;
  const RunOutput out = run_algorithm(Algorithm::SSSP, g, cfg);
  const auto exact = sssp_dijkstra(g, 0);
  for (NodeId v = 0; v < g.num_slots(); ++v) {
    if (exact[v] != kInfWeight) {
      EXPECT_NEAR(out.attr[v], exact[v],
                  0.01 * (1.0 + exact[v]))
          << v;
    }
  }
}

TEST(Runners, WarpOrderDoesNotChangeResults) {
  Csr g = small_rmat();
  const auto div = transform::divergence_transform(
      g, transform::DivergenceKnobs{.degree_sim_threshold = 0.0});
  // threshold 0: graph unchanged, only the order permutes.
  ASSERT_EQ(div.edges_added, 0u);
  RunConfig plain;
  plain.sssp_source = 0;
  RunConfig ordered = plain;
  ordered.warp_order = div.warp_order;
  const auto a = run_algorithm(Algorithm::SSSP, g, plain);
  const auto b = run_algorithm(Algorithm::SSSP, g, ordered);
  for (NodeId v = 0; v < g.num_slots(); ++v) {
    EXPECT_EQ(a.attr[v], b.attr[v]);
  }
}

TEST(Runners, BucketedOrderImprovesSimdEfficiency) {
  Csr g = small_rmat(11);
  const auto div = transform::divergence_transform(
      g, transform::DivergenceKnobs{.degree_sim_threshold = 0.0});
  RunConfig plain;
  RunConfig ordered = plain;
  ordered.warp_order = div.warp_order;
  const auto a = run_algorithm(Algorithm::PR, g, plain);
  const auto b = run_algorithm(Algorithm::PR, g, ordered);
  EXPECT_GT(b.stats.simd_efficiency(), a.stats.simd_efficiency());
}

TEST(Runners, ReplicasStayMergedInSssp) {
  Csr g = small_rmat(9);
  transform::CoalescingKnobs knobs;
  knobs.connectedness_threshold = 0.3;
  const auto coal = transform::coalescing_transform(g, knobs);
  if (coal.replicas.empty()) GTEST_SKIP() << "no replicas at this scale";
  RunConfig cfg;
  cfg.replicas = &coal.replicas;
  cfg.sssp_source = coal.renumber.slot_of_node[0];
  const auto out = run_algorithm(Algorithm::SSSP, coal.graph, cfg);
  // Confluence ran after the final iteration: all group members agree.
  for (const auto& group : coal.replicas.groups) {
    for (std::size_t i = 1; i < group.size(); ++i) {
      if (std::isfinite(out.attr[group[0]])) {
        EXPECT_DOUBLE_EQ(out.attr[group[i]], out.attr[group[0]]);
      }
    }
  }
}

TEST(Runners, ClustersImproveSharedFraction) {
  Csr g = small_rmat(10);
  transform::LatencyKnobs knobs;
  knobs.cc_threshold = 0.2;
  knobs.near_delta = 0.2;
  knobs.edge_budget_fraction = 0.05;
  const auto lat = transform::latency_transform(g, knobs);
  if (lat.schedule.empty()) GTEST_SKIP() << "no clusters formed";
  RunConfig plain;
  const auto without = run_algorithm(Algorithm::PR, lat.graph, plain);
  RunConfig clustered = plain;
  clustered.clusters = &lat.schedule;
  const auto with = run_algorithm(Algorithm::PR, lat.graph, clustered);
  EXPECT_GT(with.stats.shared_accesses, 0u);
  EXPECT_EQ(without.stats.shared_accesses, 0u);
}

TEST(Runners, TigrHasBetterCoalescingThanTopology) {
  Csr g = small_rmat(11);
  RunConfig topo;
  topo.baseline = baselines::BaselineId::TopologyDriven;
  RunConfig tigr;
  tigr.baseline = baselines::BaselineId::TigrLike;
  const auto a = run_algorithm(Algorithm::PR, g, topo);
  const auto b = run_algorithm(Algorithm::PR, g, tigr);
  // Tigr's edge-array coalescing: far fewer edge transactions per sweep.
  const double a_edge_per_sweep =
      static_cast<double>(a.stats.edge_transactions) / a.stats.sweeps;
  const double b_edge_per_sweep =
      static_cast<double>(b.stats.edge_transactions) / b.stats.sweeps;
  EXPECT_LT(b_edge_per_sweep, a_edge_per_sweep);
}

TEST(Runners, DeferredConfluenceDoesNotStall) {
  // Regression: when replication moves every outgoing edge of a region
  // onto replicas, SSSP with a deferred merge cadence must force a merge
  // instead of declaring a bogus fixpoint after one iteration.
  Csr g = small_rmat(10);
  transform::CoalescingKnobs knobs;
  knobs.connectedness_threshold = 0.3;
  const auto coal = transform::coalescing_transform(g, knobs);
  if (coal.replicas.empty()) GTEST_SKIP() << "no replicas at this scale";
  RunConfig every;
  every.replicas = &coal.replicas;
  every.sssp_source = coal.renumber.slot_of_node[0];
  RunConfig deferred = every;
  deferred.confluence_every = 8;
  const auto a = run_algorithm(Algorithm::SSSP, coal.graph, every);
  const auto b = run_algorithm(Algorithm::SSSP, coal.graph, deferred);
  EXPECT_GT(b.iterations, 1u);
  // Same reachability; distances agree loosely (cadence is approximate).
  std::size_t reached_a = 0, reached_b = 0;
  for (NodeId s = 0; s < coal.graph.num_slots(); ++s) {
    reached_a += std::isfinite(a.attr[s]);
    reached_b += std::isfinite(b.attr[s]);
  }
  EXPECT_EQ(reached_a, reached_b);
}

TEST(Runners, PullPagerankMatchesPush) {
  Csr g = small_rmat();
  RunConfig push;
  push.pr_tolerance = 1e-10;
  push.pr_max_iterations = 200;
  RunConfig pull = push;
  pull.pr_pull = true;
  const auto a = run_algorithm(Algorithm::PR, g, push);
  const auto b = run_algorithm(Algorithm::PR, g, pull);
  for (NodeId v = 0; v < g.num_slots(); ++v) {
    EXPECT_NEAR(a.attr[v], b.attr[v], 1e-8) << v;
  }
  // Pull mode issues no atomic commits.
  EXPECT_EQ(b.stats.atomic_commits, 0u);
  EXPECT_GT(a.stats.atomic_commits, 0u);
}

TEST(Runners, PullPagerankWorksWithClusters) {
  Csr g = small_rmat(10);
  transform::LatencyKnobs knobs;
  knobs.cc_threshold = 0.2;
  knobs.near_delta = 0.2;
  const auto lat = transform::latency_transform(g, knobs);
  if (lat.schedule.empty()) GTEST_SKIP() << "no clusters formed";
  RunConfig rc;
  rc.pr_pull = true;
  rc.clusters = &lat.schedule;
  const auto out = run_algorithm(Algorithm::PR, lat.graph, rc);
  EXPECT_GT(out.stats.shared_accesses, 0u);
  double total = 0;
  for (double r : out.attr) total += r;
  EXPECT_NEAR(total, 1.0, 0.05);
}

TEST(Runners, TraceRecordsEveryIteration) {
  Csr g = small_rmat(9);
  RunConfig cfg;
  cfg.collect_trace = true;
  for (Algorithm alg : all_algorithms()) {
    const auto out = run_algorithm(alg, g, cfg);
    ASSERT_EQ(out.trace.size(), out.iterations) << algorithm_name(alg);
    // Cumulative stats are monotone across the trace.
    for (std::size_t i = 1; i < out.trace.size(); ++i) {
      EXPECT_GE(out.trace[i].stats.warp_steps,
                out.trace[i - 1].stats.warp_steps);
      EXPECT_GE(out.trace[i].stats.attr_transactions,
                out.trace[i - 1].stats.attr_transactions);
    }
    // The last point matches the final stats.
    if (!out.trace.empty()) {
      EXPECT_LE(out.trace.back().stats.warp_steps, out.stats.warp_steps);
    }
  }
}

TEST(Runners, TraceOffByDefault) {
  Csr g = small_rmat(8);
  const auto out = run_algorithm(Algorithm::PR, g, {});
  EXPECT_TRUE(out.trace.empty());
}

TEST(Runners, AlgorithmNamesAndOrder) {
  EXPECT_STREQ(algorithm_name(Algorithm::SSSP), "SSSP");
  EXPECT_STREQ(algorithm_name(Algorithm::BC), "BC");
  const auto all = all_algorithms();
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all[0], Algorithm::SSSP);
  EXPECT_EQ(all[4], Algorithm::BC);
}

TEST(Runners, EmptySourceBcSamplesDeterministically) {
  Csr g = small_rmat(8);
  RunConfig cfg;
  cfg.bc_sample_count = 3;
  cfg.seed = 11;
  const auto a = run_algorithm(Algorithm::BC, g, cfg);
  const auto b = run_algorithm(Algorithm::BC, g, cfg);
  EXPECT_EQ(a.attr, b.attr);
}

}  // namespace
}  // namespace graffix::core
