// Replication (Algorithm 2, step 2) tests: replicas only occupy former
// holes, replica groups are consistent, edges are conserved
// (moved + added), the connectedness threshold gates replication, and
// the full coalescing driver produces valid graphs with exactness when
// replication is disabled.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>

#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "gen/rmat.hpp"
#include "gen/road_grid.hpp"
#include "gen/suite.hpp"
#include "graph/validate.hpp"
#include "transform/coalescing.hpp"
#include "transform/validate.hpp"

namespace graffix::transform {
namespace {

Csr small_rmat(std::uint32_t scale = 9, std::uint32_t ef = 8) {
  RmatParams p;
  p.scale = scale;
  p.edge_factor = ef;
  return generate_rmat(p);
}

CoalescingKnobs default_knobs(double threshold = 0.3) {
  CoalescingKnobs knobs;
  knobs.chunk_size = 16;
  knobs.connectedness_threshold = threshold;
  return knobs;
}

TEST(Replicate, TransformedGraphIsValid) {
  const auto result = coalescing_transform(small_rmat(), default_knobs());
  EXPECT_TRUE(validate_graph(result.graph).ok);
}

TEST(Replicate, ReplicasOccupyFormerHolesOnly) {
  Csr g = small_rmat();
  const auto result = coalescing_transform(g, default_knobs());
  // Every replica slot must be a hole of the pure renumbering.
  for (const auto& group : result.replicas.groups) {
    ASSERT_GE(group.size(), 2u);
    // Primary is a real node.
    EXPECT_FALSE(result.renumber.is_hole_slot(group[0]));
    for (std::size_t i = 1; i < group.size(); ++i) {
      EXPECT_TRUE(result.renumber.is_hole_slot(group[i]))
          << "replica slot " << group[i];
      // And it is no longer a hole in the final graph.
      EXPECT_FALSE(result.graph.is_hole(group[i]));
    }
  }
  EXPECT_LE(result.holes_filled, result.holes_total);
}

TEST(Replicate, GroupOfSlotIsConsistent) {
  const auto result = coalescing_transform(small_rmat(), default_knobs());
  const ReplicaMap& map = result.replicas;
  for (std::size_t gid = 0; gid < map.groups.size(); ++gid) {
    for (NodeId s : map.groups[gid]) {
      EXPECT_EQ(map.group_of_slot[s], static_cast<NodeId>(gid));
    }
  }
  // Slots not in any group have no group id.
  std::set<NodeId> grouped;
  for (const auto& g : map.groups) grouped.insert(g.begin(), g.end());
  for (NodeId s = 0; s < result.graph.num_slots(); ++s) {
    if (!grouped.count(s)) {
      EXPECT_EQ(map.group_of_slot[s], kInvalidNode);
    }
  }
}

TEST(ReplicaGroups, TransformOutputPassesBijectivityCheck) {
  const auto result = coalescing_transform(small_rmat(), default_knobs());
  ASSERT_FALSE(result.replicas.empty());
  EXPECT_TRUE(validate_replica_groups(result.graph, result.replicas).ok);
}

TEST(ReplicaGroups, EmptyMapIsValid) {
  const Csr g = small_rmat();
  EXPECT_TRUE(validate_replica_groups(g, ReplicaMap{}).ok);
}

TEST(ReplicaGroups, DetectsSlotListedTwice) {
  auto result = coalescing_transform(small_rmat(), default_knobs());
  ASSERT_GE(result.replicas.groups.size(), 2u);
  // Smuggle a member of group 0 into group 1 as well.
  result.replicas.groups[1].push_back(result.replicas.groups[0][0]);
  const auto report =
      validate_replica_groups(result.graph, result.replicas);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.message.find("more than one"), std::string::npos);
}

TEST(ReplicaGroups, DetectsBrokenBackMap) {
  auto result = coalescing_transform(small_rmat(), default_knobs());
  ASSERT_FALSE(result.replicas.empty());
  // A listed member whose group_of_slot entry points elsewhere.
  result.replicas.group_of_slot[result.replicas.groups[0][0]] = kInvalidNode;
  const auto report =
      validate_replica_groups(result.graph, result.replicas);
  EXPECT_FALSE(report.ok);
}

TEST(ReplicaGroups, DetectsAssignmentWithoutMembership) {
  auto result = coalescing_transform(small_rmat(), default_knobs());
  ASSERT_FALSE(result.replicas.empty());
  // An unlisted slot claiming membership breaks the member count.
  const NodeId slots = result.graph.num_slots();
  for (NodeId s = 0; s < slots; ++s) {
    if (result.replicas.group_of_slot[s] == kInvalidNode) {
      result.replicas.group_of_slot[s] = 0;
      break;
    }
  }
  EXPECT_FALSE(validate_replica_groups(result.graph, result.replicas).ok);
}

TEST(ReplicaGroups, DetectsEmptyGroup) {
  auto result = coalescing_transform(small_rmat(), default_knobs());
  ASSERT_FALSE(result.replicas.empty());
  result.replicas.groups.push_back({});
  EXPECT_FALSE(validate_replica_groups(result.graph, result.replicas).ok);
}

TEST(ReplicaGroups, DetectsWrongSlotCount) {
  auto result = coalescing_transform(small_rmat(), default_knobs());
  ASSERT_FALSE(result.replicas.empty());
  result.replicas.group_of_slot.pop_back();
  EXPECT_FALSE(validate_replica_groups(result.graph, result.replicas).ok);
}

TEST(Replicate, EdgeCountConserved) {
  Csr g = small_rmat();
  const auto result = coalescing_transform(g, default_knobs());
  // Moved edges keep the total; added 2-hop edges are on top.
  EXPECT_EQ(result.graph.num_edges(), g.num_edges() + result.edges_added);
}

TEST(Replicate, ThresholdAboveOneDisablesReplication) {
  Csr g = small_rmat();
  const auto result = coalescing_transform(g, default_knobs(1.1));
  EXPECT_TRUE(result.replicas.empty());
  EXPECT_EQ(result.edges_added, 0u);
  EXPECT_EQ(result.graph.num_edges(), g.num_edges());
}

TEST(Replicate, LowerThresholdReplicatesMore) {
  Csr g = small_rmat(10, 16);
  const auto strict = coalescing_transform(g, default_knobs(0.9));
  const auto loose = coalescing_transform(g, default_knobs(0.2));
  EXPECT_GE(loose.replicas.replica_count(), strict.replicas.replica_count());
}

TEST(Replicate, ExactIsomorphPreservesSssp) {
  // With replication off, the transform is exact: SSSP results match the
  // original modulo the slot permutation (the key property test).
  Csr g = small_rmat(8);
  const auto result = coalescing_transform(g, default_knobs(1.1));
  const auto d_orig = sssp_dijkstra(g, 0);
  const auto d_slots = sssp_dijkstra(result.graph,
                                     result.renumber.slot_of_node[0]);
  const std::vector<Weight> d_proj = project_to_nodes<Weight>(
      result.renumber, std::span<const Weight>(d_slots));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(d_orig[v], d_proj[v]) << "node " << v;
  }
}

TEST(Replicate, ExactIsomorphPreservesPagerank) {
  Csr g = small_rmat(8);
  const auto result = coalescing_transform(g, default_knobs(1.1));
  const auto pr_orig = pagerank(g);
  const auto pr_new = pagerank(result.graph);
  const std::vector<double> pr_proj = project_to_nodes<double>(
      result.renumber, std::span<const double>(pr_new.rank));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(pr_orig.rank[v], pr_proj[v], 1e-9) << "node " << v;
  }
}

TEST(Replicate, NewEdgesPerReplicaRespectCap) {
  Csr g = small_rmat(10, 16);
  CoalescingKnobs knobs = default_knobs(0.3);
  knobs.max_new_edges_per_replica = 2;
  const auto result = coalescing_transform(g, knobs);
  EXPECT_LE(result.edges_added,
            2ull * result.replicas.replica_count());
}

TEST(Replicate, ReplicaEdgesStayInsideTheirChunk) {
  Csr g = small_rmat(10, 16);
  CoalescingKnobs knobs = default_knobs(0.3);
  const auto result = coalescing_transform(g, knobs);
  const std::uint32_t k = knobs.chunk_size;
  for (const auto& group : result.replicas.groups) {
    for (std::size_t i = 1; i < group.size(); ++i) {
      const NodeId replica = group[i];
      const auto nbrs = result.graph.neighbors(replica);
      if (nbrs.empty()) continue;
      // All of a replica's edges target one chunk (the chunk it was
      // created for).
      const NodeId chunk = nbrs[0] / k;
      for (NodeId v : nbrs) {
        EXPECT_EQ(v / k, chunk) << "replica " << replica;
      }
    }
  }
}

TEST(Replicate, RoadNetworkUsesLowerThreshold) {
  // Road networks have small uniform degrees; replication should still
  // find candidates at the paper's 0.4 threshold.
  RoadGridParams p;
  p.width = 32;
  p.height = 32;
  Csr g = generate_road_grid(p);
  const auto result = coalescing_transform(g, default_knobs(0.4));
  EXPECT_TRUE(validate_graph(result.graph).ok);
}

// --- golden regression ------------------------------------------------
// Digests captured from the pre-batching serial implementation. They pin
// the exact output of replicate_into_holes — graph bits, replica groups,
// and counters — so the hole-placement rewrites (per-level free-chunk
// lists, precomputed parent-chunk hints, reserve/apply batching) are
// provably behavior-preserving, not merely plausible.

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 1099511628211ull;
}

std::uint64_t digest_csr(const Csr& g) {
  std::uint64_t h = 1469598103934665603ull;
  h = fnv(h, g.num_slots());
  h = fnv(h, g.num_edges());
  for (auto o : g.offsets()) h = fnv(h, o);
  for (auto t : g.targets()) h = fnv(h, t);
  if (g.has_weights()) {
    for (auto w : g.weights()) {
      std::uint32_t bits;
      std::memcpy(&bits, &w, sizeof(bits));
      h = fnv(h, bits);
    }
  }
  if (g.has_holes()) {
    for (auto x : g.holes()) h = fnv(h, x);
  }
  return h;
}

TEST(Replicate, GoldenOutputUnchangedFromSerialBaseline) {
  struct Golden {
    GraphPreset preset;
    double threshold;
    NodeId holes_total, holes_filled;
    std::uint64_t moved, added, digest;
  };
  const Golden goldens[] = {
      {GraphPreset::Rmat26, 0.6, 32, 15, 996, 35, 0x9abc7eac41d2b24full},
      {GraphPreset::LiveJournal, 0.6, 48, 8, 200, 17, 0xaa2e2df3517c9f15ull},
      {GraphPreset::UsaRoad, 0.4, 368, 32, 69, 8, 0xe2e5080cc3dd0e83ull},
  };
  for (const Golden& gold : goldens) {
    const Csr g = make_preset(gold.preset, 10, 7);
    const RenumberResult renumber = renumber_bfs_forest(g, 16);
    const Csr renumbered = apply_renumbering(g, renumber);
    CoalescingKnobs knobs;
    knobs.connectedness_threshold = gold.threshold;
    const auto result = replicate_into_holes(renumbered, renumber, knobs);
    EXPECT_EQ(result.holes_total, gold.holes_total);
    EXPECT_EQ(result.holes_filled, gold.holes_filled);
    EXPECT_EQ(result.edges_moved, gold.moved);
    EXPECT_EQ(result.edges_added, gold.added);
    std::uint64_t h = digest_csr(result.graph);
    for (const auto& group : result.replicas.groups) {
      for (NodeId s : group) h = fnv(h, s);
    }
    for (NodeId s : result.replicas.group_of_slot) h = fnv(h, s);
    EXPECT_EQ(h, gold.digest) << preset_name(gold.preset);
  }
}

TEST(Replicate, ExtraSpaceFractionIsReported) {
  const auto result = coalescing_transform(small_rmat(), default_knobs());
  // Renumbering adds holes; replication adds edges -> strictly positive.
  EXPECT_GT(result.extra_space_fraction, 0.0);
  EXPECT_LT(result.extra_space_fraction, 1.0);
}

}  // namespace
}  // namespace graffix::transform
