// Metric tests: the inaccuracy definitions from §5, speedup, geomean,
// and the ASCII table renderer.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "metrics/accuracy.hpp"
#include "metrics/table.hpp"

namespace graffix::metrics {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(AttributeError, ZeroForIdenticalVectors) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const auto err = attribute_error(a, a);
  EXPECT_DOUBLE_EQ(err.inaccuracy_pct, 0.0);
  EXPECT_EQ(err.compared, 3u);
  EXPECT_EQ(err.mismatched_reach, 0u);
}

TEST(AttributeError, KnownRelativeError) {
  const std::vector<double> exact{10.0, 10.0};
  const std::vector<double> approx{11.0, 9.0};
  const auto err = attribute_error(exact, approx);
  // mean |diff| = 1, mean exact = 10 -> 10%.
  EXPECT_DOUBLE_EQ(err.inaccuracy_pct, 10.0);
}

TEST(AttributeError, BothInfiniteAgree) {
  const std::vector<double> exact{kInf, 5.0};
  const std::vector<double> approx{kInf, 5.0};
  const auto err = attribute_error(exact, approx);
  EXPECT_EQ(err.compared, 1u);
  EXPECT_DOUBLE_EQ(err.inaccuracy_pct, 0.0);
}

TEST(AttributeError, ReachabilityMismatchCounted) {
  const std::vector<double> exact{kInf, 5.0};
  const std::vector<double> approx{3.0, 5.0};
  const auto err = attribute_error(exact, approx);
  EXPECT_EQ(err.mismatched_reach, 1u);
  EXPECT_EQ(err.compared, 1u);
}

TEST(AttributeError, ZeroExactMeanHandled) {
  const std::vector<double> exact{0.0, 0.0};
  const std::vector<double> identical{0.0, 0.0};
  EXPECT_DOUBLE_EQ(attribute_error(exact, identical).inaccuracy_pct, 0.0);
  const std::vector<double> off{1.0, 0.0};
  EXPECT_DOUBLE_EQ(attribute_error(exact, off).inaccuracy_pct, 100.0);
}

TEST(ScalarInaccuracy, RelativeDifference) {
  EXPECT_DOUBLE_EQ(scalar_inaccuracy_pct(100.0, 88.0), 12.0);
  EXPECT_DOUBLE_EQ(scalar_inaccuracy_pct(100.0, 112.0), 12.0);
  EXPECT_DOUBLE_EQ(scalar_inaccuracy_pct(50.0, 50.0), 0.0);
}

TEST(Speedup, Ratio) {
  EXPECT_DOUBLE_EQ(speedup(2.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(speedup(1.0, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(speedup(1.0, 0.0), 0.0);
}

TEST(Geomean, KnownValues) {
  const std::vector<double> v{1.0, 4.0};
  EXPECT_DOUBLE_EQ(geomean(v), 2.0);
  const std::vector<double> single{3.0};
  EXPECT_DOUBLE_EQ(geomean(single), 3.0);
  EXPECT_DOUBLE_EQ(geomean({}), 1.0);
}

TEST(Geomean, MatchesPaperStyleAggregation) {
  // Table 6 style: geomean of speedups 1.22, 1.13, 1.18, 1.15, 1.17.
  const std::vector<double> v{1.22, 1.13, 1.18, 1.15, 1.17};
  const double gm = geomean(v);
  EXPECT_NEAR(gm, 1.17, 0.01);
}

TEST(Table, RendersHeadersAndRows) {
  Table t({"Graph", "Speedup", "Inaccuracy"});
  t.add_row({"rmat26", Table::speedup(1.22), Table::pct(12)});
  t.add_rule();
  t.add_row({"Geomean", Table::speedup(1.16), Table::pct(10)});
  const std::string out = t.render();
  EXPECT_NE(out.find("rmat26"), std::string::npos);
  EXPECT_NE(out.find("1.22x"), std::string::npos);
  EXPECT_NE(out.find("12%"), std::string::npos);
  EXPECT_NE(out.find("Geomean"), std::string::npos);
  // Header and rows share column boundaries ('|' count per line).
  std::size_t bars = 0;
  for (char c : out.substr(0, out.find('\n'))) bars += c == '+';
  EXPECT_GE(bars, 4u);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::speedup(1.5), "1.50x");
  EXPECT_EQ(Table::pct(12.4, 0), "12%");
  EXPECT_EQ(Table::pct(12.44, 1), "12.4%");
}

}  // namespace
}  // namespace graffix::metrics
