// Divergence transform (§4) tests: the warp order is a permutation
// grouping similar degrees, degree uniformity improves, only 2-hop edges
// with summed weights are added, the degreeSim threshold gates boosting,
// and the budget holds.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <utility>
#include <vector>

#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "graph/validate.hpp"
#include "transform/divergence.hpp"

namespace graffix::transform {
namespace {

Csr small_rmat(std::uint32_t scale = 10) {
  RmatParams p;
  p.scale = scale;
  p.edge_factor = 8;
  return generate_rmat(p);
}

DivergenceKnobs knobs(double threshold = 0.3) {
  DivergenceKnobs k;
  k.degree_sim_threshold = threshold;
  return k;
}

TEST(Divergence, OutputIsValid) {
  const auto result = divergence_transform(small_rmat(), knobs());
  EXPECT_TRUE(validate_graph(result.graph).ok);
}

TEST(Divergence, ConsumingOverloadMatchesConstOverload) {
  Csr g = small_rmat();
  const auto ref = divergence_transform(g, knobs());
  const auto got = divergence_transform(std::move(g), knobs());
  EXPECT_EQ(got.edges_added, ref.edges_added);
  EXPECT_EQ(got.warp_order, ref.warp_order);
  EXPECT_EQ(std::vector<EdgeId>(ref.graph.offsets().begin(),
                                ref.graph.offsets().end()),
            std::vector<EdgeId>(got.graph.offsets().begin(),
                                got.graph.offsets().end()));
  EXPECT_EQ(std::vector<NodeId>(ref.graph.targets().begin(),
                                ref.graph.targets().end()),
            std::vector<NodeId>(got.graph.targets().begin(),
                                got.graph.targets().end()));
  EXPECT_EQ(std::vector<Weight>(ref.graph.weights().begin(),
                                ref.graph.weights().end()),
            std::vector<Weight>(got.graph.weights().begin(),
                                got.graph.weights().end()));
  EXPECT_DOUBLE_EQ(got.extra_space_fraction, ref.extra_space_fraction);
}

TEST(Divergence, WarpOrderIsPermutation) {
  Csr g = small_rmat();
  const auto result = divergence_transform(g, knobs());
  ASSERT_EQ(result.warp_order.size(), g.num_nodes());
  std::vector<NodeId> sorted = result.warp_order;
  std::sort(sorted.begin(), sorted.end());
  for (NodeId i = 0; i < g.num_nodes(); ++i) {
    ASSERT_EQ(sorted[i], i);
  }
}

TEST(Divergence, OrderIsByDescendingDegreeBucket) {
  // Bucket sort: power-of-two degree buckets, descending; within a
  // bucket the original id order is preserved (stability).
  Csr g = small_rmat();
  const auto result = divergence_transform(g, knobs());
  // Mirror of the transform's bucketing: degrees below 8 share a bucket.
  auto bucket_of = [](NodeId d) {
    return d < 8 ? 3u : 32u - static_cast<unsigned>(__builtin_clz(d));
  };
  for (std::size_t i = 1; i < result.warp_order.size(); ++i) {
    const NodeId prev = result.warp_order[i - 1];
    const NodeId cur = result.warp_order[i];
    const auto bp = bucket_of(g.degree(prev));
    const auto bc = bucket_of(g.degree(cur));
    EXPECT_GE(bp, bc);
    if (bp == bc) {
      EXPECT_LT(prev, cur);  // stable within bucket
    }
  }
}

TEST(Divergence, UniformityImprovesOnSkewedGraph) {
  const auto result = divergence_transform(small_rmat(), knobs(0.3));
  EXPECT_GE(result.degree_uniformity_after,
            result.degree_uniformity_before - 1e-12);
}

TEST(Divergence, ZeroThresholdAddsNoEdges) {
  Csr g = small_rmat();
  const auto result = divergence_transform(g, knobs(0.0));
  EXPECT_EQ(result.edges_added, 0u);
  EXPECT_EQ(result.graph.num_edges(), g.num_edges());
}

TEST(Divergence, HigherThresholdAddsMoreEdges) {
  Csr g = small_rmat();
  const auto low = divergence_transform(g, knobs(0.1));
  const auto high = divergence_transform(g, knobs(0.5));
  EXPECT_GE(high.edges_added, low.edges_added);
}

TEST(Divergence, BudgetBoundsInsertions) {
  Csr g = small_rmat();
  DivergenceKnobs k = knobs(0.6);
  k.edge_budget_fraction = 0.01;
  const auto result = divergence_transform(g, k);
  EXPECT_LE(result.edges_added,
            static_cast<std::uint64_t>(0.01 * g.num_edges()) + 1);
}

TEST(Divergence, OnlyAddsEdgesInPlace) {
  Csr g = small_rmat();
  const auto result = divergence_transform(g, knobs(0.4));
  for (NodeId u = 0; u < g.num_slots(); ++u) {
    const auto before = g.neighbors(u);
    const auto after = result.graph.neighbors(u);
    ASSERT_GE(after.size(), before.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
      EXPECT_EQ(after[i], before[i]);
    }
  }
}

TEST(Divergence, NewEdgesAreTwoHopWithSummedWeights) {
  Csr g = small_rmat();
  DivergenceKnobs k = knobs(0.4);
  const auto result = divergence_transform(g, k);
  ASSERT_GT(result.edges_added, 0u);
  std::size_t checked = 0;
  for (NodeId u = 0; u < g.num_slots() && checked < 50; ++u) {
    const auto old_deg = g.degree(u);
    const auto new_nbrs = result.graph.neighbors(u);
    const auto new_wts = result.graph.edge_weights(u);
    for (std::size_t i = old_deg; i < new_nbrs.size(); ++i) {
      const NodeId q = new_nbrs[i];
      // q must be reachable from u in exactly two hops with matching sum.
      bool valid = false;
      const auto mids = g.neighbors(u);
      const auto mws = g.edge_weights(u);
      for (std::size_t m = 0; m < mids.size() && !valid; ++m) {
        const auto hops = g.neighbors(mids[m]);
        const auto hws = g.edge_weights(mids[m]);
        for (std::size_t h = 0; h < hops.size(); ++h) {
          if (hops[h] == q &&
              std::abs(mws[m] + hws[h] - new_wts[i]) < 1e-4f) {
            valid = true;
            break;
          }
        }
      }
      EXPECT_TRUE(valid) << "edge " << u << "->" << q;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(Divergence, BoostedDegreesApproachWarpTarget) {
  Csr g = small_rmat();
  DivergenceKnobs k = knobs(0.3);
  k.boost_to = 0.85;
  const auto result = divergence_transform(g, k);
  const auto& order = result.warp_order;
  const std::uint32_t ws = k.warp_size;
  for (std::size_t base = 0; base + ws <= order.size(); base += ws) {
    NodeId max_deg = 0;
    for (std::uint32_t i = 0; i < ws; ++i) {
      max_deg = std::max(max_deg, g.degree(order[base + i]));
    }
    const auto target = static_cast<NodeId>(k.boost_to * max_deg);
    for (std::uint32_t i = 0; i < ws; ++i) {
      const NodeId u = order[base + i];
      const NodeId d = g.degree(u);
      if (d == 0 || d >= target) continue;
      const double sim = 1.0 - static_cast<double>(d) / max_deg;
      if (sim <= k.degree_sim_threshold) {
        // Boosted (unless the graph lacked enough 2-hop candidates or the
        // budget ran out): new degree must not exceed the target.
        EXPECT_LE(result.graph.degree(u), target);
      } else {
        // Not boosted: degree unchanged.
        EXPECT_EQ(result.graph.degree(u), d);
      }
    }
  }
}

TEST(Divergence, NoSelfLoopsOrDuplicateTargets) {
  const auto result = divergence_transform(small_rmat(), knobs(0.5));
  for (NodeId u = 0; u < result.graph.num_slots(); ++u) {
    std::set<NodeId> seen;
    for (NodeId v : result.graph.neighbors(u)) {
      EXPECT_NE(v, u);
      // Duplicates may exist in the raw generator output; inserted edges
      // must not add any *new* duplicates beyond the original ones.
      seen.insert(v);
    }
  }
}

TEST(Divergence, UniformGraphNeedsFewEdges) {
  // ER degrees are tight: after bucket sorting, deficits are small.
  ErdosRenyiParams p;
  p.scale = 10;
  p.edge_factor = 8;
  Csr g = generate_erdos_renyi(p);
  const auto skewed = divergence_transform(small_rmat(), knobs(0.3));
  const auto uniform = divergence_transform(g, knobs(0.3));
  const double skew_frac =
      static_cast<double>(skewed.edges_added) / skewed.graph.num_edges();
  const double uni_frac =
      static_cast<double>(uniform.edges_added) / uniform.graph.num_edges();
  // The uniform graph should need no more relative augmentation.
  EXPECT_LE(uni_frac, skew_frac + 0.05);
}

}  // namespace
}  // namespace graffix::transform
