// Cross-module property sweeps (parameterized over the whole Table 1
// suite and knob grids): the structural invariants that must hold for
// EVERY graph regime and EVERY knob setting, not just the hand-picked
// unit-test instances.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "core/pipeline.hpp"
#include "gen/suite.hpp"
#include "graph/validate.hpp"
#include "metrics/accuracy.hpp"
#include "transform/coalescing.hpp"
#include "transform/combined.hpp"
#include "transform/divergence.hpp"
#include "transform/latency.hpp"

namespace graffix {
namespace {

constexpr std::uint32_t kScale = 9;

class SuiteProperty : public ::testing::TestWithParam<GraphPreset> {
 protected:
  Csr graph() const { return make_preset(GetParam(), kScale); }
};

TEST_P(SuiteProperty, RenumberingIsATotalBijection) {
  const Csr g = graph();
  for (std::uint32_t k : {4u, 16u}) {
    const auto r = transform::renumber_bfs_forest(g, k);
    std::vector<std::uint8_t> seen(r.num_slots, 0);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const NodeId s = r.slot_of_node[v];
      ASSERT_LT(s, r.num_slots);
      ASSERT_FALSE(seen[s]) << "slot " << s << " reused (k=" << k << ")";
      seen[s] = 1;
    }
    ASSERT_EQ(r.num_slots % k, 0u);
  }
}

TEST_P(SuiteProperty, CoalescingOutputAlwaysValid) {
  const Csr g = graph();
  for (double threshold : {0.2, 0.6}) {
    transform::CoalescingKnobs knobs;
    knobs.connectedness_threshold = threshold;
    const auto result = transform::coalescing_transform(g, knobs);
    const auto report = validate_graph(result.graph);
    EXPECT_TRUE(report.ok)
        << preset_name(GetParam()) << " thr=" << threshold << ": "
        << report.message;
    EXPECT_EQ(result.graph.num_edges(), g.num_edges() + result.edges_added);
    // Replica groups never exceed the cap.
    for (const auto& group : result.replicas.groups) {
      EXPECT_LE(group.size(), knobs.max_replicas_per_node + 1);
    }
  }
}

TEST_P(SuiteProperty, LatencyOutputAlwaysValid) {
  const Csr g = graph();
  for (double threshold : {0.15, 0.45}) {
    transform::LatencyKnobs knobs;
    knobs.cc_threshold = threshold;
    knobs.near_delta = 0.25;
    const auto result = transform::latency_transform(g, knobs);
    EXPECT_TRUE(validate_graph(result.graph).ok) << preset_name(GetParam());
    // Disjoint cluster membership matching the resident index.
    std::set<NodeId> members;
    for (std::size_t c = 0; c < result.schedule.clusters.size(); ++c) {
      for (NodeId m : result.schedule.clusters[c].members) {
        EXPECT_TRUE(members.insert(m).second);
        EXPECT_EQ(result.schedule.resident[m], static_cast<NodeId>(c));
      }
    }
  }
}

TEST_P(SuiteProperty, DivergenceOutputAlwaysValid) {
  const Csr g = graph();
  for (double threshold : {0.15, 0.45}) {
    transform::DivergenceKnobs knobs;
    knobs.degree_sim_threshold = threshold;
    const auto result = transform::divergence_transform(g, knobs);
    EXPECT_TRUE(validate_graph(result.graph).ok) << preset_name(GetParam());
    // warp_order is a permutation of all slots.
    std::vector<NodeId> sorted = result.warp_order;
    std::sort(sorted.begin(), sorted.end());
    for (NodeId i = 0; i < g.num_slots(); ++i) ASSERT_EQ(sorted[i], i);
    // Degree normalization never overshoots: uniformity is monotone.
    EXPECT_GE(result.degree_uniformity_after,
              result.degree_uniformity_before - 1e-12);
  }
}

TEST_P(SuiteProperty, CombinedOutputAlwaysValid) {
  const Csr g = graph();
  transform::CombinedKnobs knobs;
  knobs.coalescing = transform::CoalescingKnobs{.connectedness_threshold = 0.4};
  knobs.latency = transform::LatencyKnobs{.cc_threshold = 0.3};
  knobs.divergence = transform::DivergenceKnobs{.degree_sim_threshold = 0.3};
  const auto result = transform::combined_transform(g, knobs);
  EXPECT_TRUE(validate_graph(result.graph).ok) << preset_name(GetParam());
  // No cluster member belongs to a replica group (the composition rule).
  for (const auto& cluster : result.schedule.clusters) {
    for (NodeId m : cluster.members) {
      if (!result.replicas.group_of_slot.empty()) {
        EXPECT_EQ(result.replicas.group_of_slot[m], kInvalidNode);
      }
    }
  }
}

TEST_P(SuiteProperty, ExactIsomorphPreservesPagerankEverywhere) {
  const Csr g = graph();
  Pipeline pipeline(g);
  transform::CoalescingKnobs knobs;
  knobs.connectedness_threshold = 1.5;  // replication off -> exact
  pipeline.apply_coalescing(knobs);
  const auto exact = pipeline.run_exact(core::Algorithm::PR);
  const auto approx = pipeline.run(core::Algorithm::PR);
  const auto error =
      metrics::attribute_error(exact.attr, pipeline.project(approx.attr));
  EXPECT_LT(error.inaccuracy_pct, 1e-6) << preset_name(GetParam());
}

TEST_P(SuiteProperty, SsspNeverUndershootsExact) {
  // Added edges always carry path-sum weights: approximate distances can
  // never beat the true shortest paths (beyond the relax tolerance).
  const Csr g = graph();
  Pipeline pipeline(g);
  transform::DivergenceKnobs knobs;
  knobs.degree_sim_threshold = 0.4;
  pipeline.apply_divergence(knobs);
  core::RunConfig rc;
  rc.sssp_source = 0;
  const auto exact = pipeline.run_exact(core::Algorithm::SSSP, rc);
  const auto approx = pipeline.run(core::Algorithm::SSSP, rc);
  for (NodeId v = 0; v < g.num_slots(); ++v) {
    if (std::isfinite(exact.attr[v]) && std::isfinite(approx.attr[v])) {
      EXPECT_GT(approx.attr[v], exact.attr[v] - 0.02 * (1.0 + exact.attr[v]))
          << preset_name(GetParam()) << " node " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPresets, SuiteProperty,
                         ::testing::ValuesIn(all_presets()),
                         [](const auto& info) {
                           std::string name = preset_name(info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace graffix
