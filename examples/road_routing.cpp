// Road-network routing: exercises the latency (shared-memory) and
// divergence techniques on the long-diameter regime, where the paper's
// road-network rows behave differently from the power-law graphs (lower
// thresholds, §5.2-5.4). Prints the per-technique speedup/inaccuracy for
// SSSP plus the SIMT-level evidence (SIMD efficiency, shared fraction).
//
//   $ ./road_routing [side]
#include <cstdio>

#include "core/graffix.hpp"

int main(int argc, char** argv) {
  using namespace graffix;
  const NodeId side = argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 96;

  RoadGridParams params;
  params.width = side;
  params.height = side;
  params.diagonal_fraction = 0.1;
  Csr graph = generate_road_grid(params);
  std::printf("road grid %ux%u: %u nodes, %llu edges, pseudo-diameter %u\n",
              side, side, graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()),
              pseudo_diameter(graph));

  Pipeline pipeline(std::move(graph));
  const NodeId source = 0;

  core::RunConfig rc;
  rc.sssp_source = source;
  const auto exact = pipeline.run_exact(core::Algorithm::SSSP, rc);
  std::printf("\nexact SSSP (Baseline-I): %.4f simulated s, %u iterations, "
              "SIMD efficiency %.3f\n",
              exact.sim_seconds, exact.iterations,
              exact.stats.simd_efficiency());

  // Latency technique at the road-tuned threshold.
  {
    transform::LatencyKnobs knobs;
    knobs.cc_threshold = 0.25;
    knobs.near_delta = 0.25;
    pipeline.apply_latency(knobs);
    core::RunConfig arc;
    arc.sssp_source = source;
    const auto out = pipeline.run(core::Algorithm::SSSP, arc);
    const auto error =
        metrics::attribute_error(exact.attr, pipeline.project(out.attr));
    std::printf("latency technique : %.2fx speedup, %.2f%% inaccuracy, "
                "%.1f%% of gathers from shared memory\n",
                metrics::speedup(exact.sim_seconds, out.sim_seconds),
                error.inaccuracy_pct, 100.0 * out.stats.shared_fraction());
  }

  // Divergence technique at the road-tuned threshold.
  {
    transform::DivergenceKnobs knobs;
    knobs.degree_sim_threshold = 0.35;
    pipeline.apply_divergence(knobs);
    core::RunConfig arc;
    arc.sssp_source = source;
    const auto out = pipeline.run(core::Algorithm::SSSP, arc);
    const auto error =
        metrics::attribute_error(exact.attr, pipeline.project(out.attr));
    std::printf("divergence technique: %.2fx speedup, %.2f%% inaccuracy, "
                "SIMD efficiency %.3f -> %.3f\n",
                metrics::speedup(exact.sim_seconds, out.sim_seconds),
                error.inaccuracy_pct, exact.stats.simd_efficiency(),
                out.stats.simd_efficiency());
  }

  // And the data-driven comparison the road regime is famous for.
  {
    core::RunConfig gunrock;
    gunrock.sssp_source = source;
    gunrock.baseline = baselines::BaselineId::GunrockLike;
    const auto out = pipeline.run_exact(core::Algorithm::SSSP, gunrock);
    std::printf("\nfor reference, exact data-driven (Gunrock-like) SSSP: "
                "%.4f simulated s (%.1fx over topology-driven)\n",
                out.sim_seconds, exact.sim_seconds / out.sim_seconds);
  }
  return 0;
}
