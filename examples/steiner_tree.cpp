// Steiner-tree approximation — the paper's own amortization example (§1):
// the classic 2-approximation of Kou, Markowsky and Berman runs SSSP from
// every terminal, so the one-time Graffix preprocessing is amortized over
// many executions on the same graph.
//
// Pipeline: pick k terminals; run (approximate) SSSP from each terminal
// on the transformed graph; build the terminal distance graph; take its
// MST; the sum of the chosen terminal-to-terminal shortest paths is the
// 2-approximate Steiner cost. We report the cost computed with exact SSSP
// vs Graffix-approximate SSSP and the simulated-time saved across the k
// runs.
//
//   $ ./steiner_tree [num_terminals]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/graffix.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace graffix;
  using namespace graffix;
  const std::size_t num_terminals = argc > 1 ? std::atoi(argv[1]) : 6;

  // A road-like network: the paper motivates Steiner trees with network
  // design and wiring layout.
  RoadGridParams params;
  params.width = 72;
  params.height = 72;
  Csr graph = generate_road_grid(params);
  std::printf("road network: %u nodes, %llu edges\n", graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()));

  // Deterministic, well-spread terminals.
  Pcg32 rng = make_stream(7, 0x57e1);
  std::vector<NodeId> terminals;
  while (terminals.size() < num_terminals) {
    const NodeId t = rng.next_bounded(graph.num_nodes());
    if (graph.degree(t) > 0 &&
        std::find(terminals.begin(), terminals.end(), t) == terminals.end()) {
      terminals.push_back(t);
    }
  }

  Pipeline pipeline(std::move(graph));
  // Road networks use the lower connectedness threshold (§5.2).
  pipeline.apply_coalescing({.connectedness_threshold = 0.4});
  std::printf("preprocessing: %.3fs (amortized over %zu SSSP runs)\n",
              pipeline.preprocessing_seconds(), terminals.size());

  // Two distance oracles for the library's KMB implementation: exact
  // simulated SSSP on the original graph, and Graffix-approximate SSSP
  // on the transformed graph (projected back to node ids).
  double exact_seconds = 0.0, approx_seconds = 0.0;
  const DistanceOracle exact_oracle = [&](NodeId source) {
    core::RunConfig rc;
    rc.sssp_source = source;
    const auto out = pipeline.run_exact(core::Algorithm::SSSP, rc);
    exact_seconds += out.sim_seconds;
    return std::vector<double>(out.attr.begin(), out.attr.end());
  };
  const DistanceOracle approx_oracle = [&](NodeId source) {
    core::RunConfig rc;
    rc.sssp_source = pipeline.slot_of_node(source);
    const auto out = pipeline.run(core::Algorithm::SSSP, rc);
    approx_seconds += out.sim_seconds;
    return pipeline.project(out.attr);
  };

  const auto exact = steiner_2approx(terminals, exact_oracle);
  const auto approx = steiner_2approx(terminals, approx_oracle);
  std::printf("2-approx Steiner cost: exact SSSP %.2f | Graffix SSSP %.2f "
              "(%.2f%% off)%s\n",
              exact.cost, approx.cost,
              metrics::scalar_inaccuracy_pct(exact.cost, approx.cost),
              exact.connected ? "" : " [terminals not connected]");
  std::printf("simulated time for %zu SSSP runs: %.4fs -> %.4fs (%.2fx)\n",
              terminals.size(), exact_seconds, approx_seconds,
              metrics::speedup(exact_seconds, approx_seconds));
  return 0;
}
