// Quickstart: the 60-second tour of the Graffix public API.
//
//   1. build (or load) a graph,
//   2. wrap it in a Pipeline and apply one approximation technique,
//   3. run an algorithm on the simulated GPU, exactly and approximately,
//   4. project the approximate result back to the original node ids and
//      compare.
//
//   $ ./quickstart [edge_list.txt]
#include <cstdio>

#include "core/graffix.hpp"

int main(int argc, char** argv) {
  using namespace graffix;

  // 1. A graph: either the user's edge list or a small R-MAT instance.
  Csr graph;
  if (argc > 1) {
    graph = read_edge_list(argv[1], /*weighted=*/true);
    std::printf("loaded %s: %u nodes, %llu edges\n", argv[1],
                graph.num_nodes(),
                static_cast<unsigned long long>(graph.num_edges()));
  } else {
    RmatParams params;
    params.scale = 12;
    params.edge_factor = 16;
    graph = permute_vertices(generate_rmat(params), /*seed=*/1);
    std::printf("generated rmat-12: %u nodes, %llu edges\n",
                graph.num_nodes(),
                static_cast<unsigned long long>(graph.num_edges()));
  }

  // 2. Apply the coalescing technique (renumber + replicate, §2 of the
  //    paper) at the paper's power-law defaults.
  Pipeline pipeline(std::move(graph));
  const auto& report = pipeline.apply_coalescing({
      .chunk_size = 16,
      .connectedness_threshold = 0.6,
  });
  std::printf(
      "transform: %u holes (%u filled by replicas), %llu edges added, "
      "+%.1f%% space, %.3fs preprocessing\n",
      report.holes_total, report.holes_filled,
      static_cast<unsigned long long>(report.edges_added),
      100.0 * report.extra_space_fraction, pipeline.preprocessing_seconds());

  // 3. PageRank, exact (original graph) and approximate (transformed).
  const auto exact = pipeline.run_exact(core::Algorithm::PR);
  const auto approx = pipeline.run(core::Algorithm::PR);
  std::printf("exact : %.4f simulated ms, %u iterations\n",
              exact.sim_seconds * 1e3, exact.iterations);
  std::printf("approx: %.4f simulated ms, %u iterations -> %.2fx speedup\n",
              approx.sim_seconds * 1e3, approx.iterations,
              metrics::speedup(exact.sim_seconds, approx.sim_seconds));

  // 4. Accuracy: project per-slot ranks back onto the input's node ids.
  const auto projected = pipeline.project(approx.attr);
  const auto error = metrics::attribute_error(exact.attr, projected);
  std::printf("inaccuracy: %.2f%% (paper's Table 6 PR band: 5-7%%)\n",
              error.inaccuracy_pct);
  std::printf("coalescing: %.3f -> %.3f gather transactions per edge\n",
              exact.stats.gather_transactions_per_lane(),
              approx.stats.gather_transactions_per_lane());
  return 0;
}
