// Top-k betweenness estimation — the paper's §1 motivating use case:
// "we may estimate a set of k nodes with the largest betweenness
// centrality in a network faster without computing the exact BC values".
//
// We compute sampled-source BC exactly and with the Graffix coalescing
// transform, and compare the top-k sets (Jaccard overlap) and the rank
// correlation of the scores — the quality measures that actually matter
// for this workload, on top of the paper's mean-absolute-error metric.
//
//   $ ./topk_betweenness [k]
#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "core/graffix.hpp"

int main(int argc, char** argv) {
  using namespace graffix;
  const std::size_t k = argc > 1 ? std::atoi(argv[1]) : 10;

  RmatParams params;
  params.scale = 12;
  params.edge_factor = 16;
  Csr graph = permute_vertices(generate_rmat(params), /*seed=*/3);
  std::printf("social-network proxy: %u nodes, %llu edges\n",
              graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()));

  Pipeline pipeline(std::move(graph));
  pipeline.apply_coalescing({.connectedness_threshold = 0.6});

  const auto sources = sample_bc_sources(pipeline.original(), 8, /*seed=*/11);
  std::vector<NodeId> source_slots(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    source_slots[i] = pipeline.slot_of_node(sources[i]);
  }

  core::RunConfig exact_rc;
  exact_rc.bc_sources = sources;
  const auto exact = pipeline.run_exact(core::Algorithm::BC, exact_rc);

  core::RunConfig approx_rc;
  approx_rc.bc_sources = source_slots;
  const auto approx = pipeline.run(core::Algorithm::BC, approx_rc);
  const auto projected = pipeline.project(approx.attr);

  auto top_k = [&](const std::vector<double>& scores) {
    std::vector<NodeId> ids(pipeline.original().num_nodes());
    for (NodeId v = 0; v < ids.size(); ++v) ids[v] = v;
    std::partial_sort(ids.begin(), ids.begin() + k, ids.end(),
                      [&](NodeId a, NodeId b) { return scores[a] > scores[b]; });
    ids.resize(k);
    return ids;
  };
  const auto exact_top = top_k(exact.attr);
  const auto approx_top = top_k(projected);

  const std::set<NodeId> exact_set(exact_top.begin(), exact_top.end());
  std::size_t overlap = 0;
  for (NodeId v : approx_top) overlap += exact_set.count(v);

  std::printf("top-%zu overlap: %zu/%zu (Jaccard %.2f)\n", k, overlap, k,
              static_cast<double>(overlap) / (2.0 * k - overlap));
  std::printf("BC inaccuracy (paper metric): %.2f%%\n",
              metrics::attribute_error(exact.attr, projected).inaccuracy_pct);
  std::printf("simulated time: %.4fs -> %.4fs (%.2fx speedup)\n",
              exact.sim_seconds, approx.sim_seconds,
              metrics::speedup(exact.sim_seconds, approx.sim_seconds));
  std::printf("top-%zu exact ids : ", k);
  for (NodeId v : exact_top) std::printf("%u ", v);
  std::printf("\ntop-%zu approx ids: ", k);
  for (NodeId v : approx_top) std::printf("%u ", v);
  std::printf("\n");
  return 0;
}
