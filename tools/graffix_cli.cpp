#include <cstring>

#include "cli_commands.hpp"

int main(int argc, char** argv) {
  using namespace graffix::cli;
  const Args args = parse_args(argc, argv);
  if (args.command == "generate") return cmd_generate(args);
  if (args.command == "stats") return cmd_stats(args);
  if (args.command == "transform") return cmd_transform(args);
  if (args.command == "run") return cmd_run(args);
  if (args.command == "compare") return cmd_compare(args);
  if (args.command == "serve") return cmd_serve(args);
  if (args.command == "help" || args.command == "--help") {
    return cmd_help(args);
  }
  std::fprintf(stderr, "graffix: unknown command '%s' (try 'graffix help')\n",
               args.command.c_str());
  return 2;
}
