#include "cli_commands.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "algorithms/bc.hpp"
#include "core/graffix.hpp"
#include "serve/server.hpp"

namespace graffix::cli {

namespace {

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "graffix: %s\n", message.c_str());
  std::exit(2);
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Technique application from CLI flags; shared by transform and run.
void apply_from_args(Pipeline& pipeline, Technique technique,
                     const Args& args) {
  switch (technique) {
    case Technique::None:
      break;
    case Technique::Coalescing: {
      transform::CoalescingKnobs knobs;
      knobs.chunk_size =
          static_cast<std::uint32_t>(args.get_int("chunk", 16));
      knobs.connectedness_threshold = args.get_double("threshold", 0.6);
      pipeline.apply_coalescing(knobs);
      break;
    }
    case Technique::Latency: {
      transform::LatencyKnobs knobs;
      knobs.cc_threshold = args.get_double("threshold", 0.4);
      knobs.near_delta = args.get_double("near-delta", 0.25);
      knobs.edge_budget_fraction = args.get_double("budget", 0.05);
      pipeline.apply_latency(knobs);
      break;
    }
    case Technique::Divergence: {
      transform::DivergenceKnobs knobs;
      knobs.degree_sim_threshold = args.get_double("threshold", 0.3);
      knobs.boost_to = args.get_double("boost-to", 0.85);
      pipeline.apply_divergence(knobs);
      break;
    }
    case Technique::Combined: {
      transform::CombinedKnobs knobs;
      knobs.coalescing = transform::CoalescingKnobs{
          .connectedness_threshold = args.get_double("threshold", 0.6)};
      knobs.latency = transform::LatencyKnobs{
          .cc_threshold = args.get_double("cc-threshold", 0.4)};
      knobs.divergence = transform::DivergenceKnobs{
          .degree_sim_threshold = args.get_double("degreesim", 0.3)};
      pipeline.apply_combined(knobs);
      break;
    }
  }
}

GraphPreset parse_preset(const std::string& name) {
  for (GraphPreset preset : all_presets()) {
    if (name == preset_name(preset)) return preset;
  }
  die("unknown preset '" + name +
      "' (expected rmat26, random26, LiveJournal, USA-road or twitter)");
}

}  // namespace

const std::string* Args::find(const std::string& key) const {
  for (const auto& [k, v] : options) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Args::get(const std::string& key,
                      const std::string& fallback) const {
  const std::string* value = find(key);
  return value != nullptr ? *value : fallback;
}

double Args::get_double(const std::string& key, double fallback) const {
  const std::string* value = find(key);
  return value != nullptr ? std::atof(value->c_str()) : fallback;
}

long Args::get_int(const std::string& key, long fallback) const {
  const std::string* value = find(key);
  return value != nullptr ? std::atol(value->c_str()) : fallback;
}

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc < 2) {
    args.command = "help";
    return args;
  }
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      std::string key = token.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        args.options.emplace_back(std::move(key), argv[++i]);
      } else {
        args.options.emplace_back(std::move(key), "true");
      }
    } else if (token == "-o" && i + 1 < argc) {
      args.options.emplace_back("output", argv[++i]);
    } else {
      args.positional.push_back(std::move(token));
    }
  }
  return args;
}

Csr load_graph(const Args& args, const std::string& path) {
  for (GraphPreset preset : all_presets()) {
    if (path == preset_name(preset)) {
      return make_preset(preset,
                         static_cast<std::uint32_t>(args.get_int("scale", 12)),
                         static_cast<std::uint64_t>(args.get_int("seed", 42)));
    }
  }
  try {
    if (ends_with(path, ".bin")) return read_binary(path);
    if (ends_with(path, ".gr")) return read_dimacs(path);
    if (ends_with(path, ".mtx")) return read_matrix_market(path);
    return read_edge_list(path, /*weighted=*/true);
  } catch (const std::exception& e) {
    die(e.what());
  }
}

Technique parse_technique(const std::string& name) {
  if (name == "none") return Technique::None;
  if (name == "coalescing") return Technique::Coalescing;
  if (name == "latency") return Technique::Latency;
  if (name == "divergence") return Technique::Divergence;
  if (name == "combined") return Technique::Combined;
  die("unknown technique '" + name +
      "' (expected none, coalescing, latency, divergence or combined)");
}

core::Algorithm parse_algorithm(const std::string& name) {
  for (core::Algorithm alg : core::all_algorithms()) {
    std::string lower = core::algorithm_name(alg);
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    if (name == lower) return alg;
  }
  die("unknown algorithm '" + name + "' (expected sssp, mst, scc, pr or bc)");
}

int cmd_generate(const Args& args) {
  if (args.positional.empty()) die("usage: graffix generate <preset> -o file");
  const GraphPreset preset = parse_preset(args.positional[0]);
  const auto scale = static_cast<std::uint32_t>(args.get_int("scale", 12));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const Csr graph = make_preset(preset, scale, seed);
  const std::string output = args.get("output", "");
  if (output.empty()) die("missing -o <file>");
  if (ends_with(output, ".bin")) {
    write_binary(graph, output);
  } else if (ends_with(output, ".mtx")) {
    write_matrix_market(graph, output);
  } else {
    write_edge_list(graph, output);
  }
  std::printf("wrote %s: %u nodes, %llu edges\n", output.c_str(),
              graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()));
  return 0;
}

int cmd_stats(const Args& args) {
  if (args.positional.empty()) die("usage: graffix stats <graph>");
  const Csr graph = load_graph(args, args.positional[0]);
  const DegreeStats degrees = degree_stats(graph);
  const auto cc = clustering_coefficients(graph);
  metrics::Table table({"Property", "Value"});
  table.add_row({"slots", std::to_string(graph.num_slots())});
  table.add_row({"nodes", std::to_string(graph.num_nodes())});
  table.add_row({"edges", std::to_string(graph.num_edges())});
  table.add_row({"weighted", graph.has_weights() ? "yes" : "no"});
  table.add_row({"holes", std::to_string(graph.num_slots() - graph.num_nodes())});
  table.add_row({"max degree", std::to_string(degrees.max)});
  table.add_row({"mean degree", metrics::Table::num(degrees.mean, 2)});
  table.add_row({"degree stddev", metrics::Table::num(degrees.stddev, 2)});
  table.add_row({"pseudo-diameter", std::to_string(pseudo_diameter(graph))});
  table.add_row({"avg clustering coeff",
                 metrics::Table::num(
                     average_clustering_coefficient(cc, graph), 4)});
  table.add_row({"weakly conn. components",
                 std::to_string(weakly_connected_components(graph))});
  const auto report = validate_graph(graph);
  table.add_row({"valid", report.ok ? "yes" : report.message});
  table.print();

  // Degree histogram: the quickest skew diagnostic.
  const auto hist = degree_histogram(graph);
  metrics::Table hist_table({"Degree range", "Nodes"});
  for (std::size_t bucket = 0; bucket < hist.size(); ++bucket) {
    if (hist[bucket] == 0) continue;
    std::string range =
        bucket == 0 ? "0"
                    : std::to_string(1u << (bucket - 1)) + ".." +
                          std::to_string((1u << bucket) - 1);
    hist_table.add_row({std::move(range), std::to_string(hist[bucket])});
  }
  hist_table.print();
  return report.ok ? 0 : 1;
}

int cmd_transform(const Args& args) {
  if (args.positional.empty()) {
    die("usage: graffix transform <graph> --technique T [knobs] -o file");
  }
  Csr graph = load_graph(args, args.positional[0]);
  const Technique technique =
      parse_technique(args.get("technique", "coalescing"));
  Pipeline pipeline(std::move(graph));
  apply_from_args(pipeline, technique, args);
  std::printf("%s: %llu edges added, +%.1f%% space, %.3fs\n",
              technique_name(technique),
              static_cast<unsigned long long>(pipeline.edges_added()),
              100.0 * pipeline.extra_space_fraction(),
              pipeline.preprocessing_seconds());
  const std::string output = args.get("output", "");
  if (!output.empty()) {
    write_binary(pipeline.current(), output);
    std::printf("wrote %s (%u slots, %llu edges)\n", output.c_str(),
                pipeline.current().num_slots(),
                static_cast<unsigned long long>(pipeline.current().num_edges()));
    if (technique == Technique::Coalescing || technique == Technique::Combined) {
      std::printf("note: the file stores graph structure only; replica "
                  "groups (needed for confluence) are not persisted — use "
                  "'graffix run --technique %s' to execute with them.\n",
                  technique_name(technique));
    }
  }
  return 0;
}

int cmd_run(const Args& args) {
  if (args.positional.empty()) {
    die("usage: graffix run <graph> --algorithm A [--technique T]");
  }
  Csr graph = load_graph(args, args.positional[0]);
  const core::Algorithm algorithm =
      parse_algorithm(args.get("algorithm", "pr"));
  const Technique technique = parse_technique(args.get("technique", "none"));

  Pipeline pipeline(std::move(graph));
  apply_from_args(pipeline, technique, args);

  // Deterministic sources shared by both runs.
  NodeId source = 0, best_degree = 0;
  for (NodeId v = 0; v < pipeline.original().num_slots(); ++v) {
    if (pipeline.original().degree(v) > best_degree) {
      best_degree = pipeline.original().degree(v);
      source = v;
    }
  }
  const auto bc_nodes = sample_bc_sources(
      pipeline.original(),
      static_cast<std::size_t>(args.get_int("bc-sources", 4)),
      static_cast<std::uint64_t>(args.get_int("seed", 42)));
  std::vector<NodeId> bc_slots(bc_nodes.size());
  for (std::size_t i = 0; i < bc_nodes.size(); ++i) {
    bc_slots[i] = pipeline.slot_of_node(bc_nodes[i]);
  }

  const std::string trace_path = args.get("trace", "");

  core::RunConfig exact_rc;
  exact_rc.sssp_source = source;
  exact_rc.bc_sources = bc_nodes;
  exact_rc.collect_trace = !trace_path.empty();
  const auto exact = pipeline.run_exact(algorithm, exact_rc);
  std::printf("exact : %.6f simulated s, %u iterations\n", exact.sim_seconds,
              exact.iterations);
  if (technique == Technique::None) return 0;

  core::RunConfig approx_rc;
  approx_rc.sssp_source = pipeline.slot_of_node(source);
  approx_rc.bc_sources = bc_slots;
  approx_rc.collect_trace = !trace_path.empty();
  const auto approx = pipeline.run(algorithm, approx_rc);
  if (!trace_path.empty()) {
    std::FILE* trace = std::fopen(trace_path.c_str(), "w");
    if (trace == nullptr) die("cannot open trace file " + trace_path);
    std::fprintf(trace,
                 "run,iteration,attr_tx,edge_tx,shared,simd_efficiency,"
                 "coalescing_efficiency\n");
    auto dump = [&](const char* tag, const core::RunOutput& out) {
      for (const auto& point : out.trace) {
        std::fprintf(trace, "%s,%u,%llu,%llu,%llu,%.4f,%.4f\n", tag,
                     point.iteration,
                     static_cast<unsigned long long>(
                         point.stats.attr_transactions),
                     static_cast<unsigned long long>(
                         point.stats.edge_transactions),
                     static_cast<unsigned long long>(
                         point.stats.shared_accesses),
                     point.stats.simd_efficiency(),
                     point.stats.coalescing_efficiency());
      }
    };
    dump("exact", exact);
    dump("approx", approx);
    std::fclose(trace);
    std::printf("trace: %s (%zu + %zu points)\n", trace_path.c_str(),
                exact.trace.size(), approx.trace.size());
  }
  std::printf("approx: %.6f simulated s, %u iterations\n", approx.sim_seconds,
              approx.iterations);
  std::printf("speedup: %.2fx\n",
              metrics::speedup(exact.sim_seconds, approx.sim_seconds));
  double inaccuracy = 0.0;
  switch (algorithm) {
    case core::Algorithm::SSSP:
    case core::Algorithm::PR:
    case core::Algorithm::BC:
      inaccuracy = metrics::attribute_error(exact.attr,
                                            pipeline.project(approx.attr))
                       .inaccuracy_pct;
      break;
    case core::Algorithm::SCC:
    case core::Algorithm::MST:
      inaccuracy = metrics::scalar_inaccuracy_pct(exact.scalar, approx.scalar);
      break;
  }
  std::printf("inaccuracy: %.2f%%\n", inaccuracy);
  return 0;
}

int cmd_compare(const Args& args) {
  if (args.positional.empty()) {
    die("usage: graffix compare <graph> [--algorithm A]");
  }
  Csr graph = load_graph(args, args.positional[0]);
  const core::Algorithm algorithm =
      parse_algorithm(args.get("algorithm", "pr"));

  Pipeline pipeline(std::move(graph));
  NodeId source = 0, best_degree = 0;
  for (NodeId v = 0; v < pipeline.original().num_slots(); ++v) {
    if (pipeline.original().degree(v) > best_degree) {
      best_degree = pipeline.original().degree(v);
      source = v;
    }
  }
  const auto bc_nodes = sample_bc_sources(
      pipeline.original(),
      static_cast<std::size_t>(args.get_int("bc-sources", 4)),
      static_cast<std::uint64_t>(args.get_int("seed", 42)));

  core::RunConfig exact_rc;
  exact_rc.sssp_source = source;
  exact_rc.bc_sources = bc_nodes;
  const auto exact = pipeline.run_exact(algorithm, exact_rc);

  metrics::Table table(
      {"Technique", "Speedup", "Inaccuracy", "Preprocess (s)"});
  const Technique techniques[] = {Technique::Coalescing, Technique::Latency,
                                  Technique::Divergence, Technique::Combined};
  for (Technique technique : techniques) {
    apply_from_args(pipeline, technique, args);
    std::vector<NodeId> bc_slots(bc_nodes.size());
    for (std::size_t i = 0; i < bc_nodes.size(); ++i) {
      bc_slots[i] = pipeline.slot_of_node(bc_nodes[i]);
    }
    core::RunConfig rc;
    rc.sssp_source = pipeline.slot_of_node(source);
    rc.bc_sources = bc_slots;
    const auto approx = pipeline.run(algorithm, rc);
    double inaccuracy = 0.0;
    switch (algorithm) {
      case core::Algorithm::SSSP:
      case core::Algorithm::PR:
      case core::Algorithm::BC:
        inaccuracy = metrics::attribute_error(exact.attr,
                                              pipeline.project(approx.attr))
                         .inaccuracy_pct;
        break;
      case core::Algorithm::SCC:
      case core::Algorithm::MST:
        inaccuracy =
            metrics::scalar_inaccuracy_pct(exact.scalar, approx.scalar);
        break;
    }
    table.add_row({technique_name(technique),
                   metrics::Table::speedup(metrics::speedup(
                       exact.sim_seconds, approx.sim_seconds)),
                   metrics::Table::pct(inaccuracy, 1),
                   metrics::Table::num(pipeline.preprocessing_seconds(), 4)});
  }
  std::printf("exact %s: %.6f simulated s\n",
              core::algorithm_name(algorithm), exact.sim_seconds);
  table.print();
  return 0;
}

int cmd_serve(const Args& args) {
  if (args.positional.empty()) die("serve needs a graph file or preset name");
  Csr graph = load_graph(args, args.positional[0]);
  serve::ServerConfig config;
  config.queue_capacity =
      static_cast<std::size_t>(args.get_int("queue", 1024));
  config.max_batch_lanes =
      static_cast<std::uint32_t>(args.get_int("lanes", serve::kMaxBatchLanes));
  config.default_deadline_ms = args.get_double("deadline-ms", 0.0);
  std::fprintf(stderr,
               "graffix serve: %u nodes, %llu edges resident; reading "
               "stdin (op: query/stats/transform/ping/shutdown)\n",
               graph.num_nodes(),
               static_cast<unsigned long long>(graph.num_edges()));
  serve::Server server(std::move(graph), config);
  server.start();
  const long port_arg = args.get_int("port", -1);
  if (port_arg >= 0) {
    const std::uint16_t port =
        server.listen_tcp(static_cast<std::uint16_t>(port_arg));
    if (port == 0) die("failed to bind a loopback TCP port");
    std::fprintf(stderr, "graffix serve: listening on 127.0.0.1:%u\n", port);
  }
  server.run_stdio();
  server.stop();
  // Shutdown report: the final metrics line goes to stderr so stdout
  // stays a pure response stream for scripted clients.
  std::fprintf(stderr, "%s\n", server.stats_json(0).c_str());
  return 0;
}

int cmd_help(const Args&) {
  std::puts(
      "graffix — approximate GPU graph-processing transforms (ICPP'20)\n"
      "\n"
      "usage: graffix <command> [args]\n"
      "\n"
      "commands:\n"
      "  generate <preset> --scale N [--seed S] -o out.{bin,txt}\n"
      "  stats     <graph|preset>  structural properties + validation\n"
      "  transform <graph|preset> --technique T [--threshold X] -o out.bin\n"
      "  run       <graph|preset> --algorithm A [--technique T]\n"
      "  compare   <graph|preset> [--algorithm A]  all techniques at once\n"
      "            [--trace out.csv]  per-iteration stats timeline\n"
      "  serve     <graph|preset> [--port P] [--queue N] [--lanes K]\n"
      "            [--deadline-ms D]  resident daemon, JSON lines on\n"
      "            stdin/stdout (see DESIGN.md \u00a710)\n"
      "\n"
      "graphs: path (.bin graffix binary, .gr DIMACS, .mtx MatrixMarket,\n"
      "        else edge list)\n"
      "        or a preset name (rmat26, random26, LiveJournal, USA-road,\n"
      "        twitter) with --scale\n"
      "techniques: none coalescing latency divergence combined\n"
      "algorithms: sssp mst scc pr bc");
  return 0;
}

}  // namespace graffix::cli
