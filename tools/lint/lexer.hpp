// graffix-lint lexer — the shared first layer of the analyzer.
//
// Splits a C++ translation unit into per-line {code, comment} text with
// string/char literals blanked (so a rule pattern quoted in a literal or
// a comment never fires), then optionally into a flat token stream for
// the scope-aware parse layer (parse.hpp).
//
// Faithful to translation phase 2: backslash-newline sequences are
// spliced BEFORE any other scanning, so a continued `#pragma omp \`
// directive is one logical line (the R1/R3 matching surface). The
// spliced content attributes to the first physical line; continued
// physical lines yield empty entries so line numbering stays 1:1 with
// the file. Splicing is suspended inside raw string literals, where the
// standard reverts it.
//
// Other handled corners (each pinned by tests/lexer_test.cpp):
//   - raw strings with custom delimiters R"delim(...)delim", blanked to
//     a quote pair so they still read as a string token;
//   - block comments do not nest; `//` directly after a closing quote
//     is a comment, `//` inside a literal is not;
//   - digit separators: the `'` in 1'000'000 does not open a char
//     literal (but the `'` in u8'a' does).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace graffix::lint {

struct ScannedLine {
  std::string code;     // literals blanked to their delimiters
  std::string comment;  // comment text, delimiters stripped
};

[[nodiscard]] std::vector<ScannedLine> scan_lines(std::string_view content);

struct Token {
  enum class Kind { Ident, Number, String, CharLit, Punct };
  Kind kind = Kind::Punct;
  std::string text;
  int line = 0;  // 1-based physical line (splices report the first line)
};

/// Tokenizes the scanned code text. Preprocessor lines (first non-space
/// code char is '#') are skipped entirely: the line-level rules own
/// those, and pp-conditionals would unbalance brace matching.
[[nodiscard]] std::vector<Token> tokenize(
    const std::vector<ScannedLine>& lines);

}  // namespace graffix::lint
