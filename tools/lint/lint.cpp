#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

namespace graffix::lint {

namespace {

// ---------------------------------------------------------------------------
// Scanner: split a translation unit into per-line code text (comments and
// string/char literals blanked out) and per-line comment text (delimiters
// stripped). Rules match against code; suppressions are read from comments,
// so a rule pattern quoted in a string or a comment never fires.
// ---------------------------------------------------------------------------

struct ScannedLine {
  std::string code;
  std::string comment;
};

std::vector<ScannedLine> scan(std::string_view content) {
  enum class State { Normal, LineComment, BlockComment, String, Char, Raw };
  std::vector<ScannedLine> lines(1);
  State state = State::Normal;
  std::string raw_delim;  // raw-string closing delimiter: ")<delim>\""

  auto cur = [&]() -> ScannedLine& { return lines.back(); };
  const std::size_t n = content.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = content[i];
    const char next = i + 1 < n ? content[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::LineComment) state = State::Normal;
      // Unterminated literals at EOL: keep state for block comments and
      // raw strings (legitimately multi-line); reset the rest defensively.
      if (state == State::String || state == State::Char) state = State::Normal;
      lines.emplace_back();
      continue;
    }
    switch (state) {
      case State::Normal:
        if (c == '/' && next == '/') {
          state = State::LineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::BlockComment;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   content[i - 1])) &&
                               content[i - 1] != '_'))) {
          // Raw string literal R"delim( ... )delim"
          std::size_t j = i + 2;
          std::string delim;
          while (j < n && content[j] != '(' && content[j] != '\n') {
            delim.push_back(content[j]);
            ++j;
          }
          if (j < n && content[j] == '(') {
            raw_delim = ")" + delim + "\"";
            state = State::Raw;
            cur().code.push_back(' ');
            i = j;
          } else {
            cur().code.push_back(c);
          }
        } else if (c == '"') {
          state = State::String;
          cur().code.push_back('"');
        } else if (c == '\'') {
          state = State::Char;
          cur().code.push_back('\'');
        } else {
          cur().code.push_back(c);
        }
        break;
      case State::LineComment:
        cur().comment.push_back(c);
        break;
      case State::BlockComment:
        if (c == '*' && next == '/') {
          state = State::Normal;
          ++i;
        } else {
          cur().comment.push_back(c);
        }
        break;
      case State::String:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::Normal;
          cur().code.push_back('"');
        }
        break;
      case State::Char:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::Normal;
          cur().code.push_back('\'');
        }
        break;
      case State::Raw:
        if (c == ')' && content.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = State::Normal;
        }
        break;
    }
  }
  return lines;
}

// ---------------------------------------------------------------------------
// Path scoping
// ---------------------------------------------------------------------------

std::string normalized(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

bool path_contains(const std::string& path, std::string_view piece) {
  const auto pos = path.find(piece);
  if (pos == std::string::npos) return false;
  // Require a component boundary on the left so "mysrc/x" != "src/x".
  return pos == 0 || path[pos - 1] == '/';
}

struct Scope {
  bool substrate_allowlisted;  // R1 allowlist
  bool in_src;                 // R2 applies
  bool timer_allowlisted;      // R2 wall-clock allowlist
  bool in_transform_or_sim;    // R4 applies
};

Scope scope_of(const std::string& path) {
  Scope s{};
  // The substrate pair (header templates + the worker-pool translation
  // unit behind them) plus the deterministic scan are the only places a
  // raw omp pragma is a policy decision rather than a drive-by.
  s.substrate_allowlisted = path_contains(path, "util/parallel.hpp") ||
                            path_contains(path, "util/parallel.cpp") ||
                            path_contains(path, "util/prefix_sum.hpp");
  s.in_src = path_contains(path, "src/");
  s.timer_allowlisted = path_contains(path, "util/timer.hpp");
  s.in_transform_or_sim =
      path_contains(path, "src/transform/") || path_contains(path, "src/sim/");
  return s;
}

// ---------------------------------------------------------------------------
// Matching helpers over the joined code text
// ---------------------------------------------------------------------------

struct CodeIndex {
  std::string text;                     // all code lines joined with '\n'
  std::vector<std::size_t> line_start;  // offset of each line in text
};

CodeIndex join_code(const std::vector<ScannedLine>& lines) {
  CodeIndex idx;
  for (const auto& line : lines) {
    idx.line_start.push_back(idx.text.size());
    idx.text += line.code;
    idx.text.push_back('\n');
  }
  return idx;
}

int line_of(const CodeIndex& idx, std::size_t offset) {
  const auto it = std::upper_bound(idx.line_start.begin(),
                                   idx.line_start.end(), offset);
  return static_cast<int>(it - idx.line_start.begin());
}

/// All whole-word identifiers declared as std::unordered_{map,set} in the
/// file: `unordered_map<...> name` / `unordered_set<...>& name`.
std::vector<std::string> unordered_container_names(const CodeIndex& idx) {
  std::vector<std::string> names;
  static const std::regex kDecl(R"(\bunordered_(?:map|set)\s*<)");
  const std::string& t = idx.text;
  for (auto it = std::sregex_iterator(t.begin(), t.end(), kDecl);
       it != std::sregex_iterator(); ++it) {
    std::size_t p = static_cast<std::size_t>(it->position()) + it->length();
    int depth = 1;  // just consumed the '<'
    while (p < t.size() && depth > 0) {
      if (t[p] == '<') ++depth;
      if (t[p] == '>') --depth;
      ++p;
    }
    while (p < t.size() &&
           (std::isspace(static_cast<unsigned char>(t[p])) || t[p] == '&' ||
            t[p] == '*')) {
      ++p;
    }
    std::string name;
    while (p < t.size() && (std::isalnum(static_cast<unsigned char>(t[p])) ||
                            t[p] == '_')) {
      name.push_back(t[p]);
      ++p;
    }
    if (!name.empty() && name != "const") names.push_back(name);
  }
  return names;
}

/// Identifiers declared with a bare float/double type (heuristic; catches
/// the scalar accumulators an omp reduction clause would name).
std::vector<std::string> fp_scalar_names(const CodeIndex& idx) {
  std::vector<std::string> names;
  static const std::regex kDecl(R"(\b(?:double|float)\s+(\w+))");
  const std::string& t = idx.text;
  for (auto it = std::sregex_iterator(t.begin(), t.end(), kDecl);
       it != std::sregex_iterator(); ++it) {
    names.push_back((*it)[1].str());
  }
  return names;
}

bool contains_word(const std::string& haystack, const std::string& word) {
  std::size_t pos = 0;
  while ((pos = haystack.find(word, pos)) != std::string::npos) {
    const bool left_ok =
        pos == 0 || (!std::isalnum(static_cast<unsigned char>(
                         haystack[pos - 1])) &&
                     haystack[pos - 1] != '_');
    const std::size_t end = pos + word.size();
    const bool right_ok =
        end >= haystack.size() ||
        (!std::isalnum(static_cast<unsigned char>(haystack[end])) &&
         haystack[end] != '_');
    if (left_ok && right_ok) return true;
    ++pos;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

struct PendingSuppression {
  int line = 0;
  std::string rule;
  std::string reason;
  bool used = false;
  bool reported = false;  // already produced a SUP diagnostic (bad reason)
};

std::string trim(std::string s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.erase(s.begin());
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.pop_back();
  }
  return s;
}

}  // namespace

Result lint_source(std::string path_label, std::string_view content) {
  const std::string path = normalized(std::move(path_label));
  const Scope scope = scope_of(path);
  const std::vector<ScannedLine> lines = scan(content);
  const CodeIndex idx = join_code(lines);

  std::vector<Diagnostic> raw;
  auto diag = [&](int line, const char* rule, std::string message) {
    raw.push_back({path, line, rule, std::move(message)});
  };

  // --- Suppression directives (must start the comment) -------------------
  std::vector<PendingSuppression> pending;
  static const std::regex kAllow(
      R"(^\s*graffix-lint\s*:\s*allow\(\s*(R[0-9]+)\s*\)\s*(.*)$)");
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    if (std::regex_search(lines[i].comment, m, kAllow)) {
      PendingSuppression sup;
      sup.line = static_cast<int>(i) + 1;
      sup.rule = m[1].str();
      sup.reason = trim(m[2].str());
      if (sup.reason.empty()) {
        raw.push_back({path, sup.line, "SUP",
                       "suppression for " + sup.rule +
                           " has no reason; write `allow(" + sup.rule +
                           ") <why this is safe>`"});
        sup.reported = true;
      }
      pending.push_back(std::move(sup));
    }
  }

  // --- R1: raw omp pragmas outside the substrate allowlist ----------------
  if (!scope.substrate_allowlisted) {
    static const std::regex kOmp(R"(^[ \t]*#[ \t]*pragma[ \t]+omp\b)");
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (std::regex_search(lines[i].code, kOmp)) {
        diag(static_cast<int>(i) + 1, "R1",
             "raw `#pragma omp` outside util/parallel.{hpp,cpp} / "
             "util/prefix_sum.hpp; use the effective_workers()-clamped "
             "wrappers (parallel_for[_dynamic], parallel_for_each_dynamic, "
             "parallel_exclusive_scan_inplace)");
      }
    }
  }

  // --- R2: nondeterminism sources in library code -------------------------
  if (scope.in_src) {
    struct Pattern {
      const std::regex re;
      const char* what;
    };
    static const Pattern kSources[] = {
        {std::regex(R"(\b(?:rand|srand|drand48|lrand48|random)\s*\()"),
         "C rand()-family call; use util/rng.hpp streams seeded from the "
         "experiment seed"},
        {std::regex(R"(\brandom_device\b)"),
         "std::random_device is nondeterministic; derive seeds with "
         "SplitMix64 from the experiment seed"},
        {std::regex(R"(\bmt19937(?:_64)?\s+\w+\s*(?:;|\{\s*\}))"),
         "unseeded std::mt19937; library randomness must come from "
         "util/rng.hpp streams seeded from the experiment seed"},
    };
    const std::string& t = idx.text;
    for (const Pattern& p : kSources) {
      for (auto it = std::sregex_iterator(t.begin(), t.end(), p.re);
           it != std::sregex_iterator(); ++it) {
        diag(line_of(idx, static_cast<std::size_t>(it->position())), "R2",
             p.what);
      }
    }
    if (!scope.timer_allowlisted) {
      static const std::regex kClock(
          R"(\b(?:steady_clock|system_clock|high_resolution_clock)\b|\b(?:gettimeofday|clock_gettime|timespec_get)\s*\(|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\))");
      for (auto it = std::sregex_iterator(t.begin(), t.end(), kClock);
           it != std::sregex_iterator(); ++it) {
        diag(line_of(idx, static_cast<std::size_t>(it->position())), "R2",
             "wall-clock read outside util/timer.hpp; route timing through "
             "WallTimer/ScopedAccumulator (telemetry only, never outputs)");
      }
    }
    // Range-for over an unordered container: iteration order is
    // implementation-defined, so it may never feed an output path.
    const std::vector<std::string> unordered = unordered_container_names(idx);
    if (!unordered.empty()) {
      static const std::regex kFor(R"(\bfor\s*\()");
      for (auto it = std::sregex_iterator(t.begin(), t.end(), kFor);
           it != std::sregex_iterator(); ++it) {
        const auto open =
            static_cast<std::size_t>(it->position()) + it->length() - 1;
        std::size_t p = open + 1;
        int depth = 1;
        std::size_t colon = std::string::npos;
        while (p < t.size() && depth > 0) {
          const char c = t[p];
          if (c == '(' || c == '[' || c == '{') ++depth;
          if (c == ')' || c == ']' || c == '}') --depth;
          if (c == ':' && depth == 1) {
            const bool scope_colon =
                (p > 0 && t[p - 1] == ':') || (p + 1 < t.size() && t[p + 1] == ':');
            if (!scope_colon && colon == std::string::npos) colon = p;
          }
          ++p;
        }
        if (colon == std::string::npos || p == 0) continue;
        const std::string range_expr = t.substr(colon + 1, p - colon - 2);
        for (const std::string& name : unordered) {
          if (contains_word(range_expr, name)) {
            diag(line_of(idx, static_cast<std::size_t>(it->position())), "R2",
                 "range-for over std::unordered container `" + name +
                     "`; iteration order is implementation-defined and may "
                     "not feed any output (fix the order or certify with a "
                     "suppression)");
            break;
          }
        }
      }
    }
  }

  // --- R3: floating-point omp reduction (any file) ------------------------
  {
    const std::vector<std::string> fp_names = fp_scalar_names(idx);
    static const std::regex kPragma(R"(^[ \t]*#[ \t]*pragma[ \t]+omp\b)");
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (!std::regex_search(lines[i].code, kPragma)) continue;
      // Join backslash-continued directive lines.
      std::string directive = lines[i].code;
      std::size_t j = i;
      while (!directive.empty() && trim(directive).back() == '\\' &&
             j + 1 < lines.size()) {
        directive = trim(directive);
        directive.pop_back();
        ++j;
        directive += " " + lines[j].code;
      }
      static const std::regex kReduction(R"(\breduction\s*\(([^)]*)\))");
      std::smatch m;
      std::string rest = directive;
      if (std::regex_search(rest, m, kReduction)) {
        const std::string clause = m[1].str();
        const auto colon = clause.find(':');
        const std::string vars =
            colon == std::string::npos ? clause : clause.substr(colon + 1);
        for (const std::string& name : fp_names) {
          if (contains_word(vars, name)) {
            diag(static_cast<int>(i) + 1, "R3",
                 "floating-point omp reduction over `" + name +
                     "`: FP addition is not associative, so the team order "
                     "changes the result; reduce serially over a "
                     "deterministic per-block array instead");
            break;
          }
        }
      }
    }
  }

  // --- R4: std::sort in src/transform/ and src/sim/ -----------------------
  if (scope.in_transform_or_sim) {
    static const std::regex kSort(R"(\bstd\s*::\s*sort\s*\()");
    const std::string& t = idx.text;
    for (auto it = std::sregex_iterator(t.begin(), t.end(), kSort);
         it != std::sregex_iterator(); ++it) {
      diag(line_of(idx, static_cast<std::size_t>(it->position())), "R4",
           "std::sort in transform/sim code: tie order feeds the CSR "
           "layout. Use std::stable_sort, or certify that the comparator "
           "is a total order on element values with an allow(R4) "
           "annotation");
    }
  }

  // --- Apply suppressions -------------------------------------------------
  Result result;
  for (Diagnostic& d : raw) {
    bool suppressed = false;
    if (d.rule != "SUP") {
      for (PendingSuppression& sup : pending) {
        if (sup.rule == d.rule && !sup.reason.empty() &&
            (sup.line == d.line || sup.line == d.line - 1)) {
          if (!sup.used) {
            result.suppressions.push_back({path, sup.line, sup.rule,
                                           sup.reason});
            sup.used = true;
          }
          suppressed = true;
          break;
        }
      }
    }
    if (!suppressed) result.diagnostics.push_back(std::move(d));
  }
  for (const PendingSuppression& sup : pending) {
    if (!sup.used && !sup.reported) {
      result.diagnostics.push_back(
          {path, sup.line, "SUP",
           "unused suppression for " + sup.rule +
               " (no matching diagnostic on this or the next line); delete "
               "it"});
    }
  }
  std::sort(result.diagnostics.begin(), result.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return result;
}

Result lint_paths(const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  Result result;
  auto is_source = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
  };
  for (const std::string& root : paths) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (auto it = fs::recursive_directory_iterator(root, ec);
           it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file(ec) && is_source(it->path())) {
          files.push_back(it->path().string());
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      result.diagnostics.push_back(
          {root, 0, "SUP", "path does not exist or is not readable"});
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      result.diagnostics.push_back({file, 0, "SUP", "failed to read file"});
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string content = buffer.str();
    Result one = lint_source(file, content);
    result.diagnostics.insert(result.diagnostics.end(),
                              one.diagnostics.begin(), one.diagnostics.end());
    result.suppressions.insert(result.suppressions.end(),
                               one.suppressions.begin(),
                               one.suppressions.end());
  }
  return result;
}

std::string format_report(const Result& result) {
  std::ostringstream out;
  out << "graffix-lint report\n";
  out << "diagnostics: " << result.diagnostics.size() << "\n";
  for (const Diagnostic& d : result.diagnostics) {
    out << d.file << ":" << d.line << ": [" << d.rule << "] " << d.message
        << "\n";
  }
  out << "\nsuppression budget: " << result.suppressions.size()
      << " used\n";
  for (const char* rule : {"R1", "R2", "R3", "R4"}) {
    std::size_t count = 0;
    for (const SuppressionUse& s : result.suppressions) {
      if (s.rule == rule) ++count;
    }
    out << "  " << rule << ": " << count << "\n";
    for (const SuppressionUse& s : result.suppressions) {
      if (s.rule == rule) {
        out << "    " << s.file << ":" << s.line << " -- " << s.reason << "\n";
      }
    }
  }
  return out.str();
}

}  // namespace graffix::lint
